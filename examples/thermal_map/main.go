// Thermal map: the paper's Figure 5 (power and thermal profiles).
//
// The example runs the analysis pipeline on the paper-sized benchmark under
// the scattered-hotspot workload and prints the power profile and the
// thermal profile on the 40x40 grid, both as ASCII heat maps and as raw
// matrices written next to the binary, plus the SPICE deck of the thermal
// RC network that was solved (the paper's thermal simulator emits exactly
// such a netlist).
//
// Run with:
//
//	go run ./examples/thermal_map
package main

import (
	"fmt"
	"log"
	"os"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/flow"
	"thermplace/internal/spice"
	"thermplace/internal/thermal"
)

func main() {
	lib := celllib.Default65nm()
	design, err := bench.Generate(lib, bench.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	workload := bench.ScatteredSmallHotspots()

	cfg := flow.DefaultConfig()
	f := flow.New(design, workload, cfg)
	an, err := f.AnalyzeBaseline()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design %q under workload %q\n", design.Name, workload.Name)
	fmt.Printf("core %.0f x %.0f um, total power %.2f mW\n",
		an.Placement.FP.Core.W(), an.Placement.FP.Core.H(), an.Power.Total()*1e3)
	fmt.Printf("peak temperature %.2f C (%.2f C above the %.0f C ambient), max gradient %.3f C\n",
		an.Thermal.PeakC, an.Thermal.PeakRise, an.Thermal.AmbientC, an.Thermal.GradientC)

	fmt.Println("\npower profile (Figure 5, left — hot = @):")
	fmt.Print(an.PowerMap.ASCIIHeatmap())
	fmt.Println("\nthermal profile (Figure 5, right — hot = @):")
	fmt.Print(an.Thermal.Surface.ASCIIHeatmap())

	fmt.Println("\nper-unit power:")
	for unit, p := range an.Power.PerUnit() {
		if unit == "" {
			unit = "(glue)"
		}
		fmt.Printf("  %-10s %8.3f mW\n", unit, p*1e3)
	}

	// Raw matrices, in the same orientation as the paper's plots.
	if err := os.WriteFile("fig5_power_map.txt", []byte(an.PowerMap.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("fig5_thermal_map.txt", []byte(an.Thermal.Surface.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	// The thermal RC network as a SPICE deck.
	circuit, err := thermal.BuildNetwork(an.PowerMap, cfg.Thermal)
	if err != nil {
		log.Fatal(err)
	}
	deck, err := os.Create("thermal_network.sp")
	if err != nil {
		log.Fatal(err)
	}
	defer deck.Close()
	if err := spice.WriteDeck(deck, circuit, "steady-state thermal network of "+design.Name); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwritten: fig5_power_map.txt, fig5_thermal_map.txt, thermal_network.sp")
	fmt.Printf("thermal network size: %d nodes, %d elements\n", circuit.NumNodes(), circuit.NumElements())
}
