// Scattered hotspots: the paper's first test set (Figure 6).
//
// The paper-sized nine-unit benchmark (about 12,000 cells at 1 GHz) runs a
// workload in which four small units switch heavily, producing four small
// scattered hotspots. The example sweeps the area overhead for the three
// strategies — Default (uniform utilization relaxation), Empty Row Insertion
// and Hotspot Wrapper — and prints the temperature-reduction curves of the
// paper's Figure 6.
//
// Run with (takes a few seconds):
//
//	go run ./examples/scattered_hotspots
package main

import (
	"fmt"
	"log"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/core"
	"thermplace/internal/flow"
)

func main() {
	lib := celllib.Default65nm()
	design, err := bench.Generate(lib, bench.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	workload := bench.ScatteredSmallHotspots()
	fmt.Printf("benchmark %q: %d cells, workload %q\n", design.Name, design.NumInstances(), workload.Name)

	cfg := flow.DefaultConfig() // 40x40x9 thermal grid, 85% starting utilization
	f := flow.New(design, workload, cfg)

	result, err := core.SweepEfficiency(f, core.SweepOptions{
		Overheads: []float64{0.08, 0.16, 0.24, 0.32, 0.40},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbaseline: peak rise %.2f C above ambient, %d hotspots\n",
		result.Baseline.Thermal.PeakRise, len(result.Baseline.Hotspots))
	for _, h := range result.Baseline.Hotspots {
		fmt.Printf("  hotspot #%d: rise %.2f C, %.1f%% of the core\n",
			h.ID, h.PeakRise, 100*h.FracOfArea(result.Baseline.Placement.FP.Core))
	}

	fmt.Printf("\n%-9s %15s %17s\n", "strategy", "area overhead", "temp reduction")
	for _, s := range []core.Strategy{core.StrategyDefault, core.StrategyERI, core.StrategyHW} {
		for _, p := range result.PointsFor(s) {
			fmt.Printf("%-9s %14.1f%% %16.1f%%\n", p.Strategy, p.AreaOverhead*100, p.TempReduction*100)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Figure 6): ERI and HW above Default, ERI slightly above HW,")
	fmt.Println("and all three improving as the area overhead grows.")
}
