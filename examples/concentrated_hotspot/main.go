// Concentrated hotspot: the paper's second test set (Table I).
//
// The workload drives only the largest unit (the 32x32 multiplier) hard,
// producing a single large concentrated hotspot. The hotspot-wrapper method
// is not suitable for large hotspots, so — exactly as in the paper — the
// example compares only the Default strategy against Empty Row Insertion at
// matched area overheads (the paper uses 16.1% / 20 rows and 32.2% / 40
// rows) and also reports the timing overhead of the transform.
//
// Run with (takes a few seconds):
//
//	go run ./examples/concentrated_hotspot
package main

import (
	"fmt"
	"log"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/core"
	"thermplace/internal/flow"
	"thermplace/internal/timing"
)

func main() {
	lib := celllib.Default65nm()
	design, err := bench.Generate(lib, bench.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	workload := bench.ConcentratedLargeHotspot()
	fmt.Printf("benchmark %q: %d cells, workload %q\n", design.Name, design.NumInstances(), workload.Name)

	cfg := flow.DefaultConfig()
	f := flow.New(design, workload, cfg)

	result, err := core.ConcentratedExperiment(f, core.DefaultConcentratedOptions())
	if err != nil {
		log.Fatal(err)
	}
	base := result.Baseline
	fmt.Printf("\nbaseline: core %.0f x %.0f um, peak rise %.2f C, hottest hotspot covers %.1f%% of the core\n",
		base.Placement.FP.Core.W(), base.Placement.FP.Core.H(),
		base.Thermal.PeakRise, 100*base.Hotspots[0].FracOfArea(base.Placement.FP.Core))

	fmt.Printf("\n%-9s %-18s %6s %15s %16s\n", "strategy", "core [um x um]", "rows", "area overhead", "temp reduction")
	for _, row := range result.Rows {
		rows := "-"
		if row.Rows > 0 {
			rows = fmt.Sprintf("%d", row.Rows)
		}
		fmt.Printf("%-9s %7.0f x %-9.0f %6s %14.1f%% %15.1f%%\n",
			row.Strategy, row.CoreW, row.CoreH, rows, row.AreaOverhead*100, row.TempReduction*100)
	}
	fmt.Println("\npaper Table I for reference: Default 16.1% -> 11.3%, 32.2% -> 20.2%;")
	fmt.Println("ERI 20 rows -> 13.1%, 40 rows -> 28.6%.")

	// Timing overhead of the strongest ERI point, as the paper reports
	// "maximum timing overhead ... around 2%".
	baseTiming, err := timing.Analyze(design, base.Placement, timing.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	eriPlacement, err := core.EmptyRowInsertion(base.Placement, base.Hotspots[:1],
		core.DefaultERIOptions(core.RowsForAreaOverhead(base.Placement, 0.32)))
	if err != nil {
		log.Fatal(err)
	}
	eriTiming, err := timing.Analyze(design, eriPlacement, timing.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncritical path: %.1f ps -> %.1f ps (timing overhead %.2f%%, paper reports about 2%%)\n",
		baseTiming.CriticalPathPs, eriTiming.CriticalPathPs, timing.Overhead(baseTiming, eriTiming)*100)
}
