// Quickstart: the smallest useful end-to-end run of the library.
//
// It generates a reduced synthetic benchmark, places it, extracts switching
// activity with random vectors, estimates power, solves the steady-state
// thermal network, and finally applies Empty Row Insertion to the hotspots,
// printing the peak temperature before and after.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/core"
	"thermplace/internal/flow"
)

func main() {
	// 1. A cell library and a gate-level design. Default65nm is the built-in
	//    synthetic 65 nm-class library; SmallConfig is a four-unit benchmark
	//    of a few hundred cells.
	lib := celllib.Default65nm()
	design, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %q: %d cells, %d nets\n", design.Name, design.NumInstances(), design.NumNets())

	// 2. A workload: the 8-bit multiplier toggles a lot, everything else is
	//    nearly idle, so the multiplier becomes the hotspot.
	workload := bench.Workload{
		Name:     "hot multiplier",
		Activity: map[string]float64{"mult8": 0.6},
		Default:  0.05,
	}

	// 3. The analysis flow: place at 85% utilization, simulate, estimate
	//    power, solve the thermal grid, locate hotspots.
	cfg := flow.FastConfig() // a coarser grid than the paper's 40x40, for speed
	f := flow.New(design, workload, cfg)
	baseline, err := f.AnalyzeBaseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: core %.0f x %.0f um, power %.2f mW, peak rise %.2f C, %d hotspot(s)\n",
		baseline.Placement.FP.Core.W(), baseline.Placement.FP.Core.H(),
		baseline.Power.Total()*1e3, baseline.Thermal.PeakRise, len(baseline.Hotspots))

	// 4. The paper's Empty Row Insertion: add ~20% area as empty rows right
	//    at the hotspots and measure again.
	rows := core.RowsForAreaOverhead(baseline.Placement, 0.20)
	optimized, err := core.EmptyRowInsertion(baseline.Placement, baseline.Hotspots, core.DefaultERIOptions(rows))
	if err != nil {
		log.Fatal(err)
	}
	after, err := f.Analyze(optimized)
	if err != nil {
		log.Fatal(err)
	}
	overhead := optimized.FP.CoreArea()/baseline.Placement.FP.CoreArea() - 1
	reduction := (baseline.Thermal.PeakRise - after.Thermal.PeakRise) / baseline.Thermal.PeakRise
	fmt.Printf("ERI (%d rows, %.1f%% area overhead): peak rise %.2f C -> %.2f C (%.1f%% reduction)\n",
		rows, overhead*100, baseline.Thermal.PeakRise, after.Thermal.PeakRise, reduction*100)

	// 5. A quick look at the thermal map.
	fmt.Println("\nthermal map after ERI (hot = @):")
	fmt.Print(after.Thermal.Surface.ASCIIHeatmap())
}
