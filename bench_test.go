// Benchmarks that regenerate the paper's evaluation (one benchmark per table
// and figure) plus ablation benches for the design choices called out in
// README.md's design notes. Key result quantities are attached to every
// benchmark run via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports alongside the runtime cost
// of producing them.
package thermplace_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/congestion"
	"thermplace/internal/core"
	"thermplace/internal/flow"
	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
	"thermplace/internal/power"
	"thermplace/internal/serve"
	"thermplace/internal/spice"
	"thermplace/internal/thermal"
	"thermplace/internal/timing"
)

// The paper-sized benchmark is expensive to generate and place, so it is
// built once and shared (read-only) by all benchmarks.
var (
	paperOnce   sync.Once
	paperDesign *netlist.Design
)

func paperBenchmark(b *testing.B) *netlist.Design {
	b.Helper()
	paperOnce.Do(func() {
		d, err := bench.Generate(celllib.Default65nm(), bench.DefaultConfig())
		if err != nil {
			b.Fatalf("generating paper benchmark: %v", err)
		}
		paperDesign = d
	})
	return paperDesign
}

func paperFlow(b *testing.B, wl bench.Workload) *flow.Flow {
	b.Helper()
	cfg := flow.DefaultConfig()
	f := flow.New(paperBenchmark(b), wl, cfg)
	b.Cleanup(f.Close) // release the pooled solvers' worker goroutines
	return f
}

// BenchmarkFig5_Profiles regenerates Figure 5: the power and thermal
// profiles of test set 1 (four scattered small hotspots) on the 40x40 grid.
// Reported metrics: total power (mW), peak temperature rise (C), detected
// hotspots.
func BenchmarkFig5_Profiles(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	// This series tracks the activity->power->thermal profile pipeline
	// across revisions; the timing/congestion co-analysis is measured
	// separately (BenchmarkFig5_ProfilesCoAnalysis and
	// BenchmarkFig6_CoAnalysisSweep), so it is off here.
	f.Config.CoAnalysis = false
	var an *flow.Analysis
	for i := 0; i < b.N; i++ {
		// Analyze the (cached) baseline placement directly: AnalyzeBaseline
		// now caches the whole analysis, which would turn this loop into a
		// cache hit instead of the power→thermal pipeline it measures.
		p, err := f.Baseline()
		if err != nil {
			b.Fatal(err)
		}
		an, err = f.Analyze(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(an.Power.Total()*1e3, "power_mW")
	b.ReportMetric(an.Thermal.PeakRise, "peak_rise_C")
	b.ReportMetric(float64(len(an.Hotspots)), "hotspots")
	b.ReportMetric(an.Thermal.GradientC, "gradient_C")
}

// BenchmarkFig5_ProfilesCoAnalysis runs the same profile extraction with
// the timing/congestion co-analysis enabled (the DefaultConfig setting),
// making the marginal cost of the derated-timing and congestion reports
// visible next to the plain pipeline above.
func BenchmarkFig5_ProfilesCoAnalysis(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	var an *flow.Analysis
	for i := 0; i < b.N; i++ {
		p, err := f.Baseline()
		if err != nil {
			b.Fatal(err)
		}
		an, err = f.Analyze(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(an.Thermal.PeakRise, "peak_rise_C")
	b.ReportMetric(an.Timing.CriticalPathPs, "critical_path_ps")
	b.ReportMetric(float64(an.Congestion.Overflows), "overflow_bins")
	b.ReportMetric(an.HPWL, "hpwl_um")
}

// BenchmarkFig6_EfficiencySweep regenerates Figure 6: temperature reduction
// versus area overhead for the Default, ERI and HW strategies on the
// scattered-hotspot workload. Reported metrics: the reduction (in percent)
// of each strategy at roughly 16% and 32% area overhead.
//
// The flow is shared across iterations, so from the second sweep on the
// baseline analysis is a cache hit (AnalyzeBaseline caches since the
// incremental pipeline landed) — deliberately so: repeated sweeps on a
// warm flow are the product's what-if-query shape, and the uncached
// baseline pipeline is measured by BenchmarkFig5_Profiles and the
// fresh-flow-per-op BenchmarkScenarioFamilies.
func BenchmarkFig6_EfficiencySweep(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	opts := core.SweepOptions{Overheads: []float64{0.16, 0.32}}
	var res *core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.SweepEfficiency(f, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	report := func(s core.Strategy, label string) {
		pts := res.PointsFor(s)
		for i, p := range pts {
			suffix := "16"
			if i == 1 {
				suffix = "32"
			}
			b.ReportMetric(p.TempReduction*100, label+suffix+"_pct")
		}
	}
	report(core.StrategyDefault, "default")
	report(core.StrategyERI, "eri")
	report(core.StrategyHW, "hw")
}

// BenchmarkFig6_EfficiencySweepIncremental is the Figure 6 sweep through
// the delta-driven incremental pipeline (SweepOptions.Incremental): Default
// points reflow from the cached baseline, ERI/HW power reports update
// through placement deltas, and thermal solves warm-start from their
// lineage parents. The sweep output is bit-identical to
// BenchmarkFig6_EfficiencySweep's (asserted by the harness); only the time
// differs.
func BenchmarkFig6_EfficiencySweepIncremental(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	opts := core.SweepOptions{Overheads: []float64{0.16, 0.32}, Incremental: true}
	var res *core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.SweepEfficiency(f, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, p := range res.PointsFor(core.StrategyERI) {
		suffix := "16"
		if i == 1 {
			suffix = "32"
		}
		b.ReportMetric(p.TempReduction*100, "eri"+suffix+"_pct")
	}
}

// BenchmarkFig6_CoAnalysisSweep is the multi-objective sweep: every point
// carries temperature-derated timing (4%/10C cell, 5%/10C wire above the
// solved surface field) and routing congestion alongside the thermal
// metrics, and the Pareto front is extracted from the joint records. The
// reported metrics pin the co-analysis outputs the smoke run watches.
func BenchmarkFig6_CoAnalysisSweep(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	opts := core.SweepOptions{Overheads: []float64{0.16, 0.32}, Incremental: true}
	var res *core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.SweepEfficiency(f, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	worstSlack, overflows := 0.0, 0
	for _, p := range res.Points {
		if p.WorstSlackPs < worstSlack {
			worstSlack = p.WorstSlackPs
		}
		overflows += p.CongestionOverflows
	}
	b.ReportMetric(float64(len(res.ParetoFront())), "pareto_points")
	b.ReportMetric(worstSlack, "worst_slack_ps")
	b.ReportMetric(float64(overflows), "total_overflow_bins")
}

// BenchmarkFig6_AdaptiveSweep is the two-phase multi-fidelity sweep over a
// design space an order of magnitude denser than Figure 6's: the overhead
// axis is densified 12x and crossed with two floorplan aspect ratios, then
// candidates are triaged on calibrated coarse-grid estimates so only the
// estimated Pareto front (plus a safety margin) is measured exactly. The
// reported metrics pin the triage economics: how many grid candidates were
// enumerated, what fraction never reached the exact phase, and how many
// exact solves the run actually paid for.
func BenchmarkFig6_AdaptiveSweep(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	opts := core.SweepOptions{
		Overheads:   []float64{0.16, 0.32},
		Incremental: true,
		Adaptive: &core.AdaptiveOptions{
			GridScale: 12,
			Margin:    0.05,
			Aspects:   []float64{1.0, 2.0},
		},
	}
	var res *core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.SweepEfficiency(f, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	ts := res.Triage
	b.ReportMetric(float64(ts.Candidates), "grid_candidates")
	b.ReportMetric(100*float64(ts.Candidates-ts.Survivors)/float64(ts.Candidates), "triaged_pct")
	b.ReportMetric(float64(ts.CoarseSolves), "coarse_solves")
	b.ReportMetric(float64(ts.ExactSolves), "exact_solves")
	b.ReportMetric(float64(len(res.ParetoFront())), "pareto_points")
	b.ReportMetric(ts.MaxEstErrC, "max_est_err_c")
}

// BenchmarkTable1_ConcentratedHotspot regenerates Table I: Default versus
// ERI on the single large concentrated hotspot at the paper's two area
// overheads (16.1% with 20 rows and 32.2% with 40 rows).
func BenchmarkTable1_ConcentratedHotspot(b *testing.B) {
	f := paperFlow(b, bench.ConcentratedLargeHotspot())
	var res *core.ConcentratedResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.ConcentratedExperiment(f, core.DefaultConcentratedOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	labels := []string{"default16_pct", "default32_pct", "eri20rows_pct", "eri40rows_pct"}
	for i, row := range res.Rows {
		if i < len(labels) {
			b.ReportMetric(row.TempReduction*100, labels[i])
		}
	}
}

// BenchmarkTimingOverhead measures the claim from Section IV that the
// transforms cost "around 2%" in timing: the critical-path increase of an
// ERI placement at ~32% area overhead over the compact baseline.
func BenchmarkTimingOverhead(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	base, err := f.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	baseT, err := timing.Analyze(paperBenchmark(b), base.Placement, timing.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rows := core.RowsForAreaOverhead(base.Placement, 0.32)
	var overhead float64
	for i := 0; i < b.N; i++ {
		eriP, err := core.EmptyRowInsertion(base.Placement, base.Hotspots, core.DefaultERIOptions(rows))
		if err != nil {
			b.Fatal(err)
		}
		eriT, err := timing.Analyze(paperBenchmark(b), eriP, timing.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		overhead = timing.Overhead(baseT, eriT)
	}
	b.ReportMetric(baseT.CriticalPathPs, "base_path_ps")
	b.ReportMetric(overhead*100, "timing_overhead_pct")
}

// BenchmarkCongestionByproduct quantifies the Section III-A remark that
// empty-row insertion reduces routing congestion in the hotspot region.
func BenchmarkCongestionByproduct(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	base, err := f.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	rows := core.RowsForAreaOverhead(base.Placement, 0.16)
	var before, after *congestion.Report
	for i := 0; i < b.N; i++ {
		before = congestion.Estimate(base.Placement, congestion.DefaultOptions())
		eriP, err := core.EmptyRowInsertion(base.Placement, base.Hotspots, core.DefaultERIOptions(rows))
		if err != nil {
			b.Fatal(err)
		}
		after = congestion.Estimate(eriP, congestion.DefaultOptions())
	}
	region := base.Hotspots[0].Rect
	b.ReportMetric(before.RegionUtilization(region), "hotspot_congestion_before")
	b.ReportMetric(after.RegionUtilization(region), "hotspot_congestion_after")
}

// --- Ablation benches (design choices called out in README.md) -------------

// BenchmarkAblation_Solvers compares the three linear solvers on the same
// mid-sized thermal network (correctness is asserted in the spice and
// thermal unit tests; this reports their cost).
func BenchmarkAblation_Solvers(b *testing.B) {
	pm := geom.NewGrid(20, 20, geom.Rect{Xlo: 0, Ylo: 0, Xhi: 200, Yhi: 200})
	pm.Fill(0.02 / 400)
	for iy := 8; iy < 12; iy++ {
		for ix := 8; ix < 12; ix++ {
			pm.Add(ix, iy, 0.01/16)
		}
	}
	for _, m := range []spice.Method{spice.MethodCG, spice.MethodGaussSeidel, spice.MethodDense} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := thermal.DefaultConfig()
			cfg.NX, cfg.NY = 20, 20
			cfg.Stack = thermal.Stack{
				{Name: "si", Thickness: 60, Conductivity: 110},
				{Name: "active", Thickness: 5, Conductivity: 80, Power: true},
				{Name: "beol", Thickness: 20, Conductivity: 2},
			}
			cfg.Solver = m
			var res *thermal.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = thermal.Solve(pm, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PeakRise, "peak_rise_C")
			b.ReportMetric(float64(res.Iterations), "iterations")
		})
	}
}

// BenchmarkAblation_HotspotThreshold sweeps the hotspot-detection threshold
// and reports how many hotspots the scattered workload produces and how much
// an ERI pass targeted at them achieves.
func BenchmarkAblation_HotspotThreshold(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	base, err := f.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	rows := core.RowsForAreaOverhead(base.Placement, 0.24)
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		b.Run(fracName(frac), func(b *testing.B) {
			spots := hotspot.Detect(base.Thermal.RiseMap(), hotspot.Options{ThresholdFrac: frac, MinCells: 2})
			if len(spots) == 0 {
				b.Skip("no hotspots at this threshold")
			}
			var red float64
			for i := 0; i < b.N; i++ {
				p, err := core.EmptyRowInsertion(base.Placement, spots, core.DefaultERIOptions(rows))
				if err != nil {
					b.Fatal(err)
				}
				an, err := f.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
				red = (base.Thermal.PeakRise - an.Thermal.PeakRise) / base.Thermal.PeakRise
			}
			b.ReportMetric(float64(len(spots)), "hotspots")
			b.ReportMetric(red*100, "eri_reduction_pct")
		})
	}
}

func fracName(f float64) string {
	switch f {
	case 0.3:
		return "frac=0.3"
	case 0.5:
		return "frac=0.5"
	case 0.7:
		return "frac=0.7"
	default:
		return "frac=0.9"
	}
}

// BenchmarkAblation_ERIPolicy compares the paper's interleaved empty-row
// insertion against inserting the same rows as one contiguous block.
func BenchmarkAblation_ERIPolicy(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	base, err := f.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	rows := core.RowsForAreaOverhead(base.Placement, 0.24)
	for _, interleave := range []bool{true, false} {
		name := "interleaved"
		if !interleave {
			name = "block"
		}
		b.Run(name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				p, err := core.EmptyRowInsertion(base.Placement, base.Hotspots,
					core.ERIOptions{Rows: rows, Interleave: interleave})
				if err != nil {
					b.Fatal(err)
				}
				an, err := f.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
				red = (base.Thermal.PeakRise - an.Thermal.PeakRise) / base.Thermal.PeakRise
			}
			b.ReportMetric(red*100, "reduction_pct")
		})
	}
}

// BenchmarkAblation_WrapperWidth sweeps the whitespace-ring width of the
// hotspot wrapper on a relaxed placement.
func BenchmarkAblation_WrapperWidth(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	base, err := f.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	relaxed, err := f.PlaceAt(f.Config.Utilization / 1.24)
	if err != nil {
		b.Fatal(err)
	}
	defAn, err := f.Analyze(relaxed)
	if err != nil {
		b.Fatal(err)
	}
	spots := hotspot.Detect(defAn.Thermal.RiseMap(), hotspot.Options{ThresholdFrac: 0.75, MinCells: 2})
	if len(spots) == 0 {
		b.Skip("no tight hotspots on the relaxed placement")
	}
	powerOf := func(inst *netlist.Instance) float64 { return defAn.Power.InstancePower(inst) }
	for _, ringRows := range []float64{1, 2, 4} {
		b.Run(ringName(ringRows), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultWrapperOptions(powerOf)
				opts.RingWidth = ringRows * relaxed.FP.RowHeight
				p, err := core.HotspotWrapper(relaxed, spots, opts)
				if err != nil {
					b.Fatal(err)
				}
				an, err := f.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
				red = (base.Thermal.PeakRise - an.Thermal.PeakRise) / base.Thermal.PeakRise
			}
			b.ReportMetric(red*100, "reduction_pct")
		})
	}
}

func ringName(rows float64) string {
	switch rows {
	case 1:
		return "ring=1row"
	case 2:
		return "ring=2rows"
	default:
		return "ring=4rows"
	}
}

// BenchmarkAblation_GridResolution compares thermal-grid resolutions against
// the paper's 40x40 choice.
func BenchmarkAblation_GridResolution(b *testing.B) {
	design := paperBenchmark(b)
	wl := bench.ScatteredSmallHotspots()
	for _, n := range []int{20, 40, 64} {
		b.Run(gridName(n), func(b *testing.B) {
			cfg := flow.DefaultConfig()
			cfg.Thermal.NX = n
			cfg.Thermal.NY = n
			f := flow.New(design, wl, cfg)
			defer f.Close()
			var an *flow.Analysis
			for i := 0; i < b.N; i++ {
				var err error
				an, err = f.AnalyzeBaseline()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(an.Thermal.PeakRise, "peak_rise_C")
			b.ReportMetric(float64(len(an.Hotspots)), "hotspots")
		})
	}
}

func gridName(n int) string {
	switch n {
	case 20:
		return "grid=20x20"
	case 40:
		return "grid=40x40"
	default:
		return "grid=64x64"
	}
}

// --- Component micro-benchmarks --------------------------------------------

// BenchmarkPlacement12kCells measures placing the full paper benchmark.
func BenchmarkPlacement12kCells(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	for i := 0; i < b.N; i++ {
		if _, err := f.PlaceAt(0.85); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalSolve40x40x9 measures one steady-state solve of the
// paper's thermal grid.
func BenchmarkThermalSolve40x40x9(b *testing.B) {
	cfg := thermal.DefaultConfig()
	pm := geom.NewGrid(cfg.NX, cfg.NY, geom.Rect{Xlo: 0, Ylo: 0, Xhi: 224, Yhi: 226})
	pm.Fill(0.025 / float64(cfg.NX*cfg.NY))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.Solve(pm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalSolveGrid sweeps the thermal grid size and compares the
// legacy SPICE-circuit path against the structured-grid fast path — with
// its default multigrid preconditioner ("fast") and the Jacobi fallback
// ("fast-jacobi") — both cold (fresh solver per solve, the "first sweep
// point" cost) and reused (warm-started re-solve, the steady-state sweep
// cost, multigrid). Each sub-benchmark
// reports ns/solve and allocs/solve via b.ReportMetric so future PRs have a
// perf trajectory to track. Run with -benchtime 1x for a quick look: the
// spice path at 160x160x9 (230k nodes) takes seconds per solve.
func BenchmarkThermalSolveGrid(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		cfg := thermal.DefaultConfig()
		cfg.NX, cfg.NY = n, n
		// Keep the cell size at the paper's ~9 um by scaling the die with
		// the grid, and keep total power fixed.
		region := geom.Rect{Xlo: 0, Ylo: 0, Xhi: 9 * float64(n), Yhi: 9 * float64(n)}
		pm := geom.NewGrid(n, n, region)
		pm.Fill(0.015 / float64(n*n))
		for iy := n / 5; iy < n/5+n/8; iy++ {
			for ix := n / 5; ix < n/5+n/8; ix++ {
				pm.Add(ix, iy, 0.010/float64(n/8*n/8))
			}
		}
		solveOnce := func(b *testing.B, solve func() error) {
			b.Helper()
			b.ReportAllocs() // the allocs/op column is allocs/solve: one solve per op
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := solve(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/solve")
		}
		b.Run(fmt.Sprintf("grid=%dx%dx9/spice", n, n), func(b *testing.B) {
			scfg := cfg
			scfg.UseSpice = true
			solveOnce(b, func() error { _, err := thermal.Solve(pm, scfg); return err })
		})
		b.Run(fmt.Sprintf("grid=%dx%dx9/fast", n, n), func(b *testing.B) {
			solveOnce(b, func() error { _, err := thermal.Solve(pm, cfg); return err })
		})
		b.Run(fmt.Sprintf("grid=%dx%dx9/fast-jacobi", n, n), func(b *testing.B) {
			jcfg := cfg
			jcfg.Precond = thermal.PrecondJacobi
			solveOnce(b, func() error { _, err := thermal.Solve(pm, jcfg); return err })
		})
		b.Run(fmt.Sprintf("grid=%dx%dx9/fast-reuse", n, n), func(b *testing.B) {
			s, err := thermal.NewSolver(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Solve(pm); err != nil { // prime structure + warm start
				b.Fatal(err)
			}
			solveOnce(b, func() error { _, err := s.Solve(pm); return err })
		})
	}
}

// --- Scenario-family benchmarks --------------------------------------------

// Generated scenarios are expensive at 25k/50k cells, so each (family, size)
// is built once and shared read-only by the scenario benchmarks.
var (
	scenarioMu    sync.Mutex
	scenarioCache = map[string]*bench.Generated{}
)

func scenarioBenchmark(b *testing.B, fam bench.Family, cells int) *bench.Generated {
	b.Helper()
	key := fmt.Sprintf("%s/%d", fam, cells)
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if g, ok := scenarioCache[key]; ok {
		return g
	}
	g, err := bench.Scenario{Family: fam, Seed: 1, TargetCells: cells}.Generate(celllib.Default65nm())
	if err != nil {
		b.Fatalf("generating %s at %d cells: %v", fam, cells, err)
	}
	scenarioCache[key] = g
	return g
}

func scenarioFlow(b *testing.B, g *bench.Generated, gridN int) *flow.Flow {
	b.Helper()
	cfg := flow.ScenarioConfig(g.Scenario)
	if gridN > 0 {
		cfg.Thermal.NX, cfg.Thermal.NY = gridN, gridN
	}
	f := flow.New(g.Design, g.Workload, cfg)
	b.Cleanup(f.Close)
	return f
}

// BenchmarkScenarioGeneration measures building 25k- and 50k-cell netlists,
// the generator-scaling lever called out on the roadmap.
func BenchmarkScenarioGeneration(b *testing.B) {
	lib := celllib.Default65nm()
	for _, cells := range []int{25000, 50000} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			sc := bench.Scenario{Family: bench.FamilyPaperSynth9, Seed: 1, TargetCells: cells}
			var n int
			for i := 0; i < b.N; i++ {
				g, err := sc.Generate(lib)
				if err != nil {
					b.Fatal(err)
				}
				n = g.Design.NumInstances()
			}
			b.ReportMetric(float64(n), "cells")
		})
	}
}

// BenchmarkScenarioPlacement measures placing 25k- and 50k-cell scenario
// designs (the paper benchmark stops at 12k).
func BenchmarkScenarioPlacement(b *testing.B) {
	for _, cells := range []int{25000, 50000} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			g := scenarioBenchmark(b, bench.FamilyPaperSynth9, cells)
			f := scenarioFlow(b, g, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.PlaceAt(g.Scenario.Utilization); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioFullFlow runs the whole pipeline — place, simulate,
// power, thermal, hotspots — on large scenarios with the 80x80 and 160x160
// thermal grids, the resolutions the solver benchmarks exercise only in
// isolation.
func BenchmarkScenarioFullFlow(b *testing.B) {
	cases := []struct {
		fam   bench.Family
		cells int
		grid  int
	}{
		{bench.FamilyHotspotCluster, 25000, 80},
		{bench.FamilyWideDatapath, 50000, 160},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("family=%s/cells=%d/grid=%dx%d", c.fam, c.cells, c.grid, c.grid), func(b *testing.B) {
			g := scenarioBenchmark(b, c.fam, c.cells)
			// A fresh flow per iteration: the flow caches placement,
			// activity and pooled solvers, so reusing one would time warm
			// re-solves instead of the full pipeline.
			var an *flow.Analysis
			for i := 0; i < b.N; i++ {
				f := scenarioFlow(b, g, c.grid)
				var err error
				an, err = f.AnalyzeBaseline()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.Design.NumInstances()), "cells")
			b.ReportMetric(an.Thermal.PeakRise, "peak_rise_C")
			b.ReportMetric(float64(len(an.Hotspots)), "hotspots")
		})
	}
}

// BenchmarkScenarioSweep runs the concurrent efficiency sweep on a 25k-cell
// scenario with the 80x80 grid: the sweep engine on a workload well past
// the paper's size.
func BenchmarkScenarioSweep(b *testing.B) {
	for _, incremental := range []bool{false, true} {
		name := "fromscratch"
		if incremental {
			name = "incremental"
		}
		b.Run(name, func(b *testing.B) {
			g := scenarioBenchmark(b, bench.FamilyHotspotCluster, 25000)
			f := scenarioFlow(b, g, 80)
			opts := core.SweepOptions{Overheads: []float64{0.16, 0.32}, Incremental: incremental}
			var res *core.SweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.SweepEfficiency(f, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, pt := range res.PointsFor(core.StrategyERI) {
				b.ReportMetric(pt.TempReduction*100, fmt.Sprintf("eri%d_pct", int(pt.AreaOverhead*100+0.5)))
			}
		})
	}
}

// BenchmarkScenarioFamilies is the per-family smoke benchmark CI archives:
// one small seed of every family through the full flow on the paper's
// 40x40 grid, reporting the family's thermal signature.
func BenchmarkScenarioFamilies(b *testing.B) {
	for _, fam := range bench.Families() {
		b.Run("family="+string(fam), func(b *testing.B) {
			g := scenarioBenchmark(b, fam, 4000)
			// Fresh flow per iteration so every op is the cold full flow,
			// not a warm cached re-solve.
			var an *flow.Analysis
			for i := 0; i < b.N; i++ {
				f := scenarioFlow(b, g, 0)
				var err error
				an, err = f.AnalyzeBaseline()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.Design.NumInstances()), "cells")
			b.ReportMetric(an.Thermal.PeakRise, "peak_rise_C")
			b.ReportMetric(float64(len(an.Hotspots)), "hotspots")
		})
	}
}

// BenchmarkLogicSimActivity measures random-vector activity extraction on
// the paper benchmark (128 cycles).
func BenchmarkLogicSimActivity(b *testing.B) {
	design := paperBenchmark(b)
	wl := bench.ScatteredSmallHotspots()
	stim := logicsim.RandomStimulus(1, func(port string) float64 {
		return wl.ActivityFor(splitUnit(port))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logicsim.RunRandom(design, 128, stim); err != nil {
			b.Fatal(err)
		}
	}
}

func splitUnit(port string) string {
	for i := 0; i < len(port); i++ {
		if port[i] == '_' {
			return port[:i]
		}
	}
	return port
}

// BenchmarkPowerEstimation measures per-cell power estimation plus power-map
// binning on a placed paper benchmark.
func BenchmarkPowerEstimation(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	p, err := f.Baseline()
	if err != nil {
		b.Fatal(err)
	}
	act, err := f.Activity()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := power.Estimate(paperBenchmark(b), p, act, 1e9)
		power.Map(rep, p, 40, 40)
	}
}

// BenchmarkSTA measures a full static timing analysis of the placed paper
// benchmark.
func BenchmarkSTA(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	p, err := f.Baseline()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *timing.Report
	for i := 0; i < b.N; i++ {
		rep, err = timing.Analyze(paperBenchmark(b), p, timing.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.CriticalPathPs, "critical_path_ps")
}

// BenchmarkBenchmarkGeneration measures building the 12k-cell netlist.
func BenchmarkBenchmarkGeneration(b *testing.B) {
	lib := celllib.Default65nm()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Generate(lib, bench.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFillerInsertion measures whitespace filling with dummy cells.
func BenchmarkFillerInsertion(b *testing.B) {
	f := paperFlow(b, bench.ScatteredSmallHotspots())
	p, err := f.PlaceAt(0.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		place.InsertFillers(p)
	}
}

// BenchmarkThermserveQueries drives the resident-design query server the way
// its production shape intends — concurrent what-if queries over HTTP/JSON
// against a warm flow — and reports service metrics alongside the runtime
// cost: completed queries per second, the shed rate under the configured
// admission bounds, and the p99 end-to-end latency. The query mix covers the
// cached-baseline fast path, a re-placement analysis, an ERI delta and a
// one-point sweep.
func BenchmarkThermserveQueries(b *testing.B) {
	sc := bench.Scenario{Family: bench.FamilyPaperSynth9, Seed: 7, TargetCells: 800}
	gen, err := sc.Generate(celllib.Default65nm())
	if err != nil {
		b.Fatal(err)
	}
	fcfg := flow.ScenarioConfig(gen.Scenario)
	fcfg.SimCycles = 32
	fcfg.RefinePasses = 0
	fcfg.Thermal.NX, fcfg.Thermal.NY = 16, 16
	srv := serve.NewServer(serve.Config{MaxInFlight: 4, MaxQueue: 8})
	b.Cleanup(srv.Close)
	if err := srv.AddDesign(context.Background(), "bench", gen.Design, gen.Workload, fcfg, nil); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	client := ts.Client()

	paths := []string{
		"/analyze?design=bench&util=" + strconv.FormatFloat(fcfg.Utilization, 'g', -1, 64),
		"/analyze?design=bench&util=0.7",
		"/delta?design=bench&strategy=eri&rows=2",
		"/sweep?design=bench&overheads=0.3",
	}
	var (
		mu              sync.Mutex
		latencies       []float64 // milliseconds
		completed, shed int
		seq             atomic.Int64
	)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			url := ts.URL + paths[int(seq.Add(1))%len(paths)]
			t0 := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			switch resp.StatusCode {
			case http.StatusOK:
				completed++
				latencies = append(latencies, ms)
			case http.StatusServiceUnavailable:
				shed++ // admission bound under concurrent fire: expected
			default:
				mu.Unlock()
				b.Errorf("query %s: unexpected status %d", url, resp.StatusCode)
				return
			}
			mu.Unlock()
		}
	})
	b.StopTimer()
	if completed+shed == 0 {
		b.Fatal("no queries ran")
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(100*float64(shed)/float64(completed+shed), "shed_pct")
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		b.ReportMetric(latencies[len(latencies)*99/100], "p99_ms")
	}
}
