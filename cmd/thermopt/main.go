// Command thermopt is the paper's "area management tool": it takes a design
// and workload, measures the baseline placement, and applies one of the
// post-placement temperature-reduction strategies (default utilization
// relaxation, empty row insertion, or hotspot wrapper), reporting the peak
// temperature before and after and the area and timing overheads.
//
// Usage:
//
//	thermopt -bench paper -workload scattered -strategy eri  -rows 20
//	thermopt -bench paper -workload concentrated -strategy default -overhead 0.32
//	thermopt -bench paper -workload scattered -strategy hw -overhead 0.16 -def-out hw.def
package main

import (
	"flag"
	"fmt"
	"os"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/core"
	"thermplace/internal/def"
	"thermplace/internal/flow"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
	"thermplace/internal/timing"
)

func main() {
	var (
		netlistPath = flag.String("netlist", "", "Verilog-lite netlist to optimize (alternative to -bench)")
		libPath     = flag.String("lib", "", "Liberty-lite cell library (defaults to the built-in 65nm library)")
		benchName   = flag.String("bench", "paper", "built-in benchmark when no netlist is given: paper or small")
		workloadStr = flag.String("workload", "scattered", "workload: scattered, concentrated, or uniform:<activity>")
		strategyStr = flag.String("strategy", "eri", "strategy to apply: default, eri or hw")
		util        = flag.Float64("util", 0.85, "baseline placement utilization")
		rows        = flag.Int("rows", 0, "empty rows to insert (ERI); 0 derives the count from -overhead")
		overhead    = flag.Float64("overhead", 0.16, "target fractional area overhead (default/hw, and eri when -rows is 0)")
		gridN       = flag.Int("grid", 40, "thermal grid resolution per side")
		cycles      = flag.Int("cycles", 128, "random simulation cycles")
		seed        = flag.Int64("seed", 1, "random stimulus seed")
		defOut      = flag.String("def-out", "", "write the optimized placement as DEF-lite to this path")
	)
	flag.Parse()

	lib, err := loadLibrary(*libPath)
	if err != nil {
		fatal(err)
	}
	design, err := loadDesign(*netlistPath, *benchName, lib)
	if err != nil {
		fatal(err)
	}
	wl, err := parseWorkload(*workloadStr)
	if err != nil {
		fatal(err)
	}
	strategy, err := core.ParseStrategy(*strategyStr)
	if err != nil {
		fatal(err)
	}

	cfg := flow.DefaultConfig()
	cfg.Utilization = *util
	cfg.SimCycles = *cycles
	cfg.Seed = *seed
	cfg.Thermal.NX = *gridN
	cfg.Thermal.NY = *gridN
	f := flow.New(design, wl, cfg)

	fmt.Printf("analyzing baseline at utilization %.2f ...\n", *util)
	base, err := f.AnalyzeBaseline()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline: core %.1f x %.1f um, power %.2f mW, peak rise %.3f C, %d hotspots\n",
		base.Placement.FP.Core.W(), base.Placement.FP.Core.H(),
		base.Power.Total()*1e3, base.Thermal.PeakRise, len(base.Hotspots))
	if len(base.Hotspots) == 0 {
		fatal(fmt.Errorf("no hotspots detected; nothing to optimize"))
	}
	baseTiming, err := timing.Analyze(design, base.Placement, timing.DefaultOptions())
	if err != nil {
		fatal(err)
	}

	var optimized *place.Placement
	switch strategy {
	case core.StrategyDefault:
		optimized, err = f.PlaceAt(*util / (1 + *overhead))
	case core.StrategyERI:
		n := *rows
		if n <= 0 {
			n = core.RowsForAreaOverhead(base.Placement, *overhead)
		}
		fmt.Printf("inserting %d empty rows at the hotspots ...\n", n)
		optimized, err = core.EmptyRowInsertion(base.Placement, base.Hotspots, core.DefaultERIOptions(n))
	case core.StrategyHW:
		relaxed, perr := f.PlaceAt(*util / (1 + *overhead))
		if perr != nil {
			fatal(perr)
		}
		relAn, perr := f.Analyze(relaxed)
		if perr != nil {
			fatal(perr)
		}
		powerOf := func(inst *netlist.Instance) float64 { return relAn.Power.InstancePower(inst) }
		fmt.Printf("wrapping %d hotspots on the relaxed placement ...\n", len(relAn.Hotspots))
		optimized, err = core.HotspotWrapper(relaxed, relAn.Hotspots, core.DefaultWrapperOptions(powerOf))
	}
	if err != nil {
		fatal(err)
	}

	after, err := f.Analyze(optimized)
	if err != nil {
		fatal(err)
	}
	afterTiming, err := timing.Analyze(design, optimized, timing.DefaultOptions())
	if err != nil {
		fatal(err)
	}

	areaOv := optimized.FP.CoreArea()/base.Placement.FP.CoreArea() - 1
	tempRed := (base.Thermal.PeakRise - after.Thermal.PeakRise) / base.Thermal.PeakRise
	fmt.Printf("\nstrategy          : %s\n", strategy)
	fmt.Printf("core              : %.1f x %.1f um\n", optimized.FP.Core.W(), optimized.FP.Core.H())
	fmt.Printf("area overhead     : %.1f%%\n", areaOv*100)
	fmt.Printf("peak rise         : %.3f C -> %.3f C\n", base.Thermal.PeakRise, after.Thermal.PeakRise)
	fmt.Printf("temp reduction    : %.1f%%\n", tempRed*100)
	fmt.Printf("gradient          : %.3f C -> %.3f C\n", base.Thermal.GradientC, after.Thermal.GradientC)
	fmt.Printf("timing overhead   : %.2f%% (critical path %.1f ps -> %.1f ps)\n",
		timing.Overhead(baseTiming, afterTiming)*100, baseTiming.CriticalPathPs, afterTiming.CriticalPathPs)

	if *defOut != "" {
		out, err := os.Create(*defOut)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		if err := def.Write(out, optimized); err != nil {
			fatal(err)
		}
		fmt.Printf("optimized placement written to %s\n", *defOut)
	}
}

func loadLibrary(path string) (*celllib.Library, error) {
	if path == "" {
		return celllib.Default65nm(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return celllib.ParseLiberty(f)
}

func loadDesign(netlistPath, benchName string, lib *celllib.Library) (*netlist.Design, error) {
	if netlistPath != "" {
		f, err := os.Open(netlistPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseVerilog(f, lib)
	}
	switch benchName {
	case "paper":
		return bench.Generate(lib, bench.DefaultConfig())
	case "small":
		return bench.Generate(lib, bench.SmallConfig())
	default:
		return nil, fmt.Errorf("unknown built-in benchmark %q (want paper or small)", benchName)
	}
}

func parseWorkload(s string) (bench.Workload, error) {
	switch s {
	case "scattered":
		return bench.ScatteredSmallHotspots(), nil
	case "concentrated":
		return bench.ConcentratedLargeHotspot(), nil
	default:
		if len(s) > 8 && s[:8] == "uniform:" {
			var a float64
			if _, err := fmt.Sscanf(s[8:], "%g", &a); err != nil {
				return bench.Workload{}, fmt.Errorf("bad uniform activity in %q", s)
			}
			return bench.UniformWorkload(a), nil
		}
		if s == "uniform" {
			return bench.UniformWorkload(0.25), nil
		}
		return bench.Workload{}, fmt.Errorf("unknown workload %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermopt:", err)
	os.Exit(1)
}
