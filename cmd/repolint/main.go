// Command repolint runs the repository's custom analyzers — the structural
// enforcement of the pipeline's determinism, cancellation and
// error-provenance contracts — over the given package patterns and exits
// non-zero when any finding survives.
//
//	go run ./cmd/repolint ./...
//
// It is part of the tier-1 local check and runs blocking in CI's lint job.
// The standard go/analysis passes (printf, lostcancel, copylocks, ...) are
// covered by `go vet` in the same job; repolint carries only the checks
// specific to this repository's contracts. See internal/analysis/checks
// for what each analyzer enforces and README's "Invariants & linting"
// section for the //repolint:allow escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"

	"thermplace/internal/analysis"
	"thermplace/internal/analysis/checks"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's contract analyzers over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
