// Command benchgen generates the synthetic benchmark circuits used by the
// experiments: a gate-level Verilog-lite netlist composed of arithmetic
// units (the paper's circuit has nine units and about 12,000 cells) plus the
// Liberty-lite cell library it references.
//
// Beyond the fixed paper benchmark, -family selects a seeded scenario
// family: a parameterized generator that scales to a target cell count and
// derives a per-unit workload, reproducibly from the seed.
//
// Usage:
//
//	benchgen -out design.v -lib library.lib             # paper benchmark
//	benchgen -small -out small.v                        # reduced benchmark
//	benchgen -units mult:32,mult:16,alu:32 -out my.v    # custom unit list
//	benchgen -family hotspot-cluster -seed 3 -cells 25000 -out hc25k.v
//	benchgen -families                                  # list families
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/netlist"
)

func main() {
	var (
		outPath  = flag.String("out", "design.v", "output Verilog-lite netlist path")
		libPath  = flag.String("lib", "", "optional output path for the Liberty-lite cell library")
		small    = flag.Bool("small", false, "generate the reduced benchmark instead of the paper-sized one")
		units    = flag.String("units", "", "custom comma-separated unit list, e.g. mult:32,adder:16,alu:8,mac:16,cmp:32,csadd:64")
		family   = flag.String("family", "", "scenario family to generate (see -families); overrides -small/-units")
		seed     = flag.Int64("seed", 1, "scenario RNG seed (with -family)")
		cells    = flag.Int("cells", 12000, "approximate target standard-cell count (with -family)")
		clockGHz = flag.Float64("clock", 1.0, "clock frequency in GHz (recorded in the summary only)")
		list     = flag.Bool("families", false, "list the scenario families and exit")
		quiet    = flag.Bool("q", false, "suppress the summary printed to stdout")
	)
	flag.Parse()

	if *list {
		for _, f := range bench.Families() {
			fmt.Println(f)
		}
		return
	}

	lib := celllib.Default65nm()
	var (
		design *netlist.Design
		cfg    bench.Config
		wl     *bench.Workload
	)
	if *family != "" {
		fam, err := bench.ParseFamily(*family)
		if err != nil {
			fatal(err)
		}
		gen, err := bench.Scenario{
			Family:      fam,
			Seed:        *seed,
			TargetCells: *cells,
			ClockGHz:    *clockGHz,
		}.Generate(lib)
		if err != nil {
			fatal(err)
		}
		design, cfg, wl = gen.Design, gen.Config, &gen.Workload
	} else {
		var err error
		cfg, err = buildConfig(*small, *units, *clockGHz)
		if err != nil {
			fatal(err)
		}
		design, err = bench.Generate(lib, cfg)
		if err != nil {
			fatal(err)
		}
	}

	out, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	defer out.Close()
	if err := netlist.WriteVerilog(out, design); err != nil {
		fatal(err)
	}

	if *libPath != "" {
		lf, err := os.Create(*libPath)
		if err != nil {
			fatal(err)
		}
		defer lf.Close()
		if err := celllib.WriteLiberty(lf, lib); err != nil {
			fatal(err)
		}
	}

	if !*quiet {
		fmt.Printf("design   : %s\n", design.Name)
		fmt.Printf("cells    : %d\n", design.NumInstances())
		fmt.Printf("nets     : %d\n", design.NumNets())
		fmt.Printf("cell area: %.1f um^2\n", design.TotalCellArea())
		fmt.Printf("clock    : %.2f GHz\n", cfg.ClockGHz)
		fmt.Printf("units    :\n")
		for _, u := range design.Units() {
			act := ""
			if wl != nil {
				act = fmt.Sprintf("  activity %.2f", wl.ActivityFor(u))
			}
			fmt.Printf("  %-10s %6d cells%s\n", u, len(design.InstancesInUnit(u)), act)
		}
		if wl != nil {
			fmt.Printf("workload : %s (default activity %.2f, hot units: %s)\n",
				wl.Name, wl.Default, strings.Join(hotUnits(*wl), ", "))
		}
		fmt.Printf("written  : %s\n", *outPath)
		if *libPath != "" {
			fmt.Printf("library  : %s\n", *libPath)
		}
	}
}

// hotUnits lists the workload's explicitly heated units, hottest first.
func hotUnits(wl bench.Workload) []string {
	var names []string
	for u, a := range wl.Activity {
		if a >= 2*wl.Default {
			names = append(names, u)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if wl.Activity[names[i]] != wl.Activity[names[j]] {
			return wl.Activity[names[i]] > wl.Activity[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) == 0 {
		return []string{"none"}
	}
	return names
}

// buildConfig resolves the non-scenario flags into a benchmark
// configuration.
func buildConfig(small bool, units string, clockGHz float64) (bench.Config, error) {
	switch {
	case units != "":
		cfg := bench.Config{Name: "custom", ClockGHz: clockGHz}
		for i, spec := range strings.Split(units, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), ":", 2)
			if len(parts) != 2 {
				return cfg, fmt.Errorf("benchgen: unit spec %q must look like kind:width", spec)
			}
			width, err := strconv.Atoi(parts[1])
			if err != nil || width <= 0 {
				return cfg, fmt.Errorf("benchgen: bad width in unit spec %q", spec)
			}
			kind, err := parseKind(parts[0])
			if err != nil {
				return cfg, err
			}
			cfg.Units = append(cfg.Units, bench.UnitSpec{
				Name:  fmt.Sprintf("%s%d_u%d", parts[0], width, i),
				Kind:  kind,
				Width: width,
			})
		}
		return cfg, nil
	case small:
		cfg := bench.SmallConfig()
		cfg.ClockGHz = clockGHz
		return cfg, nil
	default:
		cfg := bench.DefaultConfig()
		cfg.ClockGHz = clockGHz
		return cfg, nil
	}
}

func parseKind(s string) (bench.UnitKind, error) {
	switch strings.ToLower(s) {
	case "mult", "multiplier":
		return bench.KindMultiplier, nil
	case "adder", "add", "rca":
		return bench.KindRippleAdder, nil
	case "csadd", "csa", "carryselect":
		return bench.KindCarrySelectAdder, nil
	case "mac":
		return bench.KindMAC, nil
	case "alu":
		return bench.KindALU, nil
	case "cmp", "comparator":
		return bench.KindComparator, nil
	default:
		return 0, fmt.Errorf("benchgen: unknown unit kind %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
