// Command benchjson converts `go test -bench` text output into a JSON
// artifact so CI can archive the performance trajectory of every PR
// (BENCH_*.json). It reads benchmark output on stdin and writes a JSON
// array of runs, keeping the standard ns/op / B/op / allocs/op columns and
// every custom b.ReportMetric column (peak_rise_C, eri32_pct, ...).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem . | benchjson -o BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Run is one benchmark result line.
type Run struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var runs []Run
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass through on stderr so CI logs keep the raw table without
		// corrupting the JSON when it goes to stdout.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			runs = append(runs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(runs) == 0 {
		// An empty artifact means the bench regex matched nothing or the
		// output format changed; fail loudly instead of archiving `null`.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark line of the form
//
//	BenchmarkName-8   5   209835264 ns/op   12.32 eri16_pct   28516302 B/op
//
// (the value always precedes its unit column).
func parseLine(line string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Run{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	r := Run{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Run{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
