// Command benchjson converts `go test -bench` text output into a JSON
// artifact so CI can archive the performance trajectory of every PR
// (BENCH_*.json). It reads benchmark output on stdin and writes a JSON
// array of runs, keeping the standard ns/op / B/op / allocs/op columns and
// every custom b.ReportMetric column (peak_rise_C, eri32_pct, ...).
//
// It also diffs two such artifacts: `benchjson -baseline BENCH_baseline.json
// -diff BENCH_smoke.json` compares a fresh run against a committed baseline
// and prints per-benchmark (and per scenario family) ns/op regressions,
// exiting 3 when any regression exceeds -regress percent. CI runs the diff
// as a non-blocking step, so the trajectory is visible on every PR without
// a noisy single-run failure gate.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem . | benchjson -o BENCH_results.json
//	benchjson -baseline BENCH_baseline.json -diff BENCH_smoke.json
//	benchjson -baseline BENCH_baseline.json -diff BENCH_smoke.json -families Fig6_AdaptiveSweep,Fig5_Profiles
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Run is one benchmark result line.
type Run struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json to diff against (requires -diff)")
	diffFile := flag.String("diff", "", "fresh BENCH_*.json to compare to -baseline (skips stdin conversion)")
	regress := flag.Float64("regress", 10, "ns/op regression percentage that flips the diff exit code to 3")
	families := flag.String("families", "", "comma-separated family filter for -diff (see familyOf); empty means all")
	flag.Parse()

	if *diffFile != "" || *baseline != "" {
		if *diffFile == "" || *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -baseline and -diff must be given together")
			os.Exit(1)
		}
		os.Exit(runDiff(*baseline, *diffFile, *regress, familyFilter(*families)))
	}
	if *families != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -families only applies to -diff")
		os.Exit(1)
	}

	var runs []Run
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass through on stderr so CI logs keep the raw table without
		// corrupting the JSON when it goes to stdout.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			runs = append(runs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(runs) == 0 {
		// An empty artifact means the bench regex matched nothing or the
		// output format changed; fail loudly instead of archiving `null`.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark line of the form
//
//	BenchmarkName-8   5   209835264 ns/op   12.32 eri16_pct   28516302 B/op
//
// (the value always precedes its unit column).
func parseLine(line string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Run{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	r := Run{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Run{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// loadRuns reads a benchjson artifact.
func loadRuns(path string) (map[string]Run, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var runs []Run
	if err := json.Unmarshal(data, &runs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Run, len(runs))
	var order []string
	for _, r := range runs {
		name := canonicalName(r.Name)
		if _, dup := byName[name]; !dup {
			order = append(order, name)
		}
		byName[name] = r
	}
	return byName, order, nil
}

// canonicalName strips the trailing -GOMAXPROCS suffix so artifacts from
// machines with different core counts compare.
func canonicalName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// familyOf extracts the scenario family from a sub-benchmark path (the
// "family=..." segment), falling back to the top-level benchmark name, so
// regressions aggregate per family across benchmarks.
func familyOf(name string) string {
	for _, seg := range strings.Split(name, "/") {
		if fam, ok := strings.CutPrefix(seg, "family="); ok {
			return fam
		}
	}
	return strings.TrimPrefix(strings.SplitN(name, "/", 2)[0], "Benchmark")
}

// familyFilter parses the -families flag into a set keyed by family name;
// nil means no filtering. Blank segments are dropped so trailing commas are
// harmless.
func familyFilter(spec string) map[string]bool {
	if spec == "" {
		return nil
	}
	set := map[string]bool{}
	for _, f := range strings.Split(spec, ",") {
		if f = strings.TrimSpace(f); f != "" {
			set[f] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	return set
}

// runDiff compares fresh results against the committed baseline and returns
// the process exit code: 0 when no ns/op regression exceeds the threshold,
// 3 otherwise (missing benchmarks are reported but do not fail — the
// baseline regenerates on the next refresh). A non-nil only set restricts
// the comparison to benchmarks in those scenario families.
func runDiff(basePath, freshPath string, regressPct float64, only map[string]bool) int {
	base, _, err := loadRuns(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fresh, order, err := loadRuns(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}

	type famAgg struct{ base, cur float64 }
	families := map[string]*famAgg{}
	var famOrder []string
	worst := 0.0
	fmt.Printf("%-64s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	matched := 0
	for _, name := range order {
		if only != nil && !only[familyOf(name)] {
			continue
		}
		matched++
		cur := fresh[name]
		curNs := cur.Metrics["ns/op"]
		ref, ok := base[name]
		if !ok {
			fmt.Printf("%-64s %14s %14.0f %8s\n", name, "(new)", curNs, "-")
			continue
		}
		refNs := ref.Metrics["ns/op"]
		if refNs <= 0 || curNs <= 0 {
			continue
		}
		pct := (curNs/refNs - 1) * 100
		if pct > worst {
			worst = pct
		}
		fmt.Printf("%-64s %14.0f %14.0f %+7.1f%%\n", name, refNs, curNs, pct)
		fam := familyOf(name)
		agg, ok := families[fam]
		if !ok {
			agg = &famAgg{}
			families[fam] = agg
			famOrder = append(famOrder, fam)
		}
		agg.base += refNs
		agg.cur += curNs
	}
	for name := range base {
		if only != nil && !only[familyOf(name)] {
			continue
		}
		if _, ok := fresh[name]; !ok {
			fmt.Printf("%-64s %14s\n", name, "(missing from fresh run)")
		}
	}
	if only != nil && matched == 0 {
		// A filter that matches nothing is almost always a typo in a family
		// name; succeeding silently would hide a regression from CI.
		fmt.Fprintln(os.Stderr, "benchjson: -families matched no benchmarks in the fresh artifact")
		return 1
	}
	fmt.Printf("\nper-family ns/op (summed over the family's benchmarks):\n")
	for _, fam := range famOrder {
		agg := families[fam]
		fmt.Printf("  %-30s %+7.1f%%\n", fam, (agg.cur/agg.base-1)*100)
	}
	if worst > regressPct {
		fmt.Printf("\nworst regression %+.1f%% exceeds the %.0f%% threshold\n", worst, regressPct)
		return 3
	}
	fmt.Printf("\nworst regression %+.1f%% within the %.0f%% threshold\n", worst, regressPct)
	return 0
}
