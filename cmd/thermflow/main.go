// Command thermflow runs the full analysis pipeline of the paper's Figure 2
// on a gate-level design: placement at a chosen utilization, random-vector
// logic simulation for switching activity, power estimation, steady-state
// thermal simulation on the 3-D RC grid, and hotspot localization.
//
// The design can be read from a Verilog-lite netlist (see cmd/benchgen) or
// generated on the fly with -bench. Results are printed as a report; the
// power and thermal maps, the placement (DEF-lite) and the thermal network
// (SPICE deck) can optionally be written to files.
//
// Usage:
//
//	thermflow -bench paper -workload scattered -util 0.85
//	thermflow -netlist design.v -lib library.lib -workload uniform:0.3 \
//	          -def out.def -thermal-map thermal.txt -power-map power.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/congestion"
	"thermplace/internal/core"
	"thermplace/internal/def"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/netlist"
	"thermplace/internal/spice"
	"thermplace/internal/thermal"
	"thermplace/internal/timing"
)

func main() {
	var (
		netlistPath = flag.String("netlist", "", "Verilog-lite netlist to analyze (alternative to -bench)")
		libPath     = flag.String("lib", "", "Liberty-lite cell library (defaults to the built-in 65nm library)")
		benchName   = flag.String("bench", "paper", "built-in benchmark to generate when no netlist is given: paper or small")
		workload    = flag.String("workload", "scattered", "workload: scattered, concentrated, or uniform:<activity>")
		util        = flag.Float64("util", 0.85, "placement utilization factor")
		cycles      = flag.Int("cycles", 128, "random simulation cycles for activity extraction")
		seed        = flag.Int64("seed", 1, "random stimulus seed")
		gridN       = flag.Int("grid", 40, "thermal grid resolution per side (the paper uses 40)")
		defOut      = flag.String("def", "", "write the placement as DEF-lite to this path")
		spiceOut    = flag.String("spice", "", "write the thermal RC network as a SPICE deck to this path")
		thermalOut  = flag.String("thermal-map", "", "write the thermal map (matrix of degrees C) to this path")
		powerOut    = flag.String("power-map", "", "write the power map (matrix of watts per cell) to this path")
		heat        = flag.Bool("heatmap", false, "print an ASCII heat map of the die to stdout")
		withTiming  = flag.Bool("timing", true, "run static timing analysis")
		withCongest = flag.Bool("congestion", true, "run the routing congestion estimate")
		precond     = flag.String("precond", "auto", "thermal CG preconditioner: auto, mg or jacobi")
		withSweep   = flag.Bool("sweep", false, "additionally run the Figure 6 efficiency sweep on this design/workload")
		workers     = flag.Int("workers", 0, "concurrent sweep points with -sweep (0 = GOMAXPROCS, 1 = sequential)")
		incr        = flag.Bool("incremental", false, "with -sweep, derive sweep points incrementally from the baseline (delta-driven pipeline; bit-identical output)")
		adaptive    = flag.Bool("adaptive", false, "with -sweep, run the two-phase multi-fidelity sweep: densify the overhead grid, triage candidates on coarse-grid estimates, measure only the estimated Pareto front exactly")
		gridScale   = flag.Int("grid-scale", 4, "with -adaptive, densification factor of the overhead grid")
		margin      = flag.Float64("margin", 0.25, "with -adaptive, triage safety margin as a fraction of the estimated rise range")
		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); Ctrl-C also cancels cleanly")
	)
	flag.Parse()

	// A SIGINT/SIGTERM (or the -timeout deadline) cancels the analysis
	// pipeline cooperatively: in-flight thermal solves abort within a few CG
	// iterations and every worker goroutine drains before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	lib, err := loadLibrary(*libPath)
	if err != nil {
		fatal(err)
	}
	design, err := loadDesign(*netlistPath, *benchName, lib)
	if err != nil {
		fatal(err)
	}
	wl, err := parseWorkload(*workload)
	if err != nil {
		fatal(err)
	}

	cfg := flow.DefaultConfig()
	cfg.Utilization = *util
	cfg.SimCycles = *cycles
	cfg.Seed = *seed
	cfg.Thermal.NX = *gridN
	cfg.Thermal.NY = *gridN
	pk, err := thermal.ParsePrecond(*precond)
	if err != nil {
		fatal(err)
	}
	cfg.Thermal.Precond = pk
	f := flow.New(design, wl, cfg)
	defer f.Close()

	an, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("design            : %s (%d cells, %d nets)\n", design.Name, design.NumInstances(), design.NumNets())
	fmt.Printf("workload          : %s\n", wl.Name)
	fmt.Printf("core              : %.1f x %.1f um (utilization %.2f)\n",
		an.Placement.FP.Core.W(), an.Placement.FP.Core.H(), an.Placement.Utilization())
	bd := an.Power.TotalBreakdown()
	fmt.Printf("total power       : %.3f mW (internal %.3f, load %.3f, clock %.3f, leakage %.3f)\n",
		an.Power.Total()*1e3, bd.Internal*1e3, bd.Load*1e3, bd.Clock*1e3, bd.Leakage*1e3)
	fmt.Printf("ambient           : %.1f C\n", an.Thermal.AmbientC)
	fmt.Printf("peak temperature  : %.2f C (rise %.2f C)\n", an.Thermal.PeakC, an.Thermal.PeakRise)
	fmt.Printf("mean temperature  : %.2f C\n", an.Thermal.MeanC())
	fmt.Printf("max gradient      : %.3f C between adjacent grid cells\n", an.Thermal.GradientC)
	fmt.Printf("hotspots          : %d\n", len(an.Hotspots))
	for _, h := range an.Hotspots {
		fmt.Printf("  #%d rise %.2f C, area %.0f um^2 (%.1f%% of core), bbox %v\n",
			h.ID, h.PeakRise, h.AreaUm2, 100*h.FracOfArea(an.Placement.FP.Core), h.Rect)
	}

	// The flow already ran temperature-derated timing and congestion as part
	// of the co-analysis (DefaultConfig enables it); fall back to a direct
	// call only when the analyzers were disabled or released.
	if *withTiming {
		rep := an.Timing
		if rep == nil {
			topts := timing.DefaultOptions()
			topts.TemperatureMap = an.Thermal.Surface
			if rep, err = timing.Analyze(design, an.Placement, topts); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("critical path     : %.1f ps (max %.3f GHz, slack %.1f ps at 1 GHz)\n",
			rep.CriticalPathPs, rep.MaxFrequencyGHz, rep.SlackPs)
	}
	if *withCongest {
		rep := an.Congestion
		if rep == nil {
			rep = congestion.Estimate(an.Placement, congestion.DefaultOptions())
		}
		fmt.Printf("wirelength        : %.0f um\n", rep.TotalWirelength)
		fmt.Printf("congestion        : mean %.3f, max %.3f, %d overflowing bins\n",
			rep.MeanUtilization, rep.MaxUtilization, rep.Overflows)
	}
	if *heat {
		fmt.Println("thermal heat map (hot = @):")
		fmt.Print(an.Thermal.Surface.ASCIIHeatmap())
	}

	if *withSweep {
		sopts := core.SweepOptions{
			Workers:     *workers,
			Incremental: *incr,
		}
		if *adaptive {
			sopts.Adaptive = &core.AdaptiveOptions{GridScale: *gridScale, Margin: *margin}
		}
		res, err := core.SweepEfficiencyCtx(ctx, f, sopts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("efficiency sweep  : baseline rise %.3f C, %d points\n",
			res.Baseline.Thermal.PeakRise, len(res.Points))
		if ts := res.Triage; ts != nil {
			fmt.Printf("adaptive triage   : %d/%d candidates pruned on coarse estimates (%d coarse + %d exact solves, max est err %.3f C)\n",
				ts.Candidates-ts.Survivors, ts.Candidates, ts.CoarseSolves, ts.ExactSolves, ts.MaxEstErrC)
		}
		pareto := map[int]bool{}
		for _, idx := range res.ParetoFront() {
			pareto[idx] = true
		}
		for i, pt := range res.Points {
			mark := " "
			if pareto[i] {
				mark = "*" // on the multi-objective Pareto front
			}
			fmt.Printf("  %s %-8s overhead %5.1f%%  reduction %5.1f%%  rise %.3f C  slack %7.1f ps  hpwl %.0f um  overflow %d\n",
				mark, pt.Strategy, pt.AreaOverhead*100, pt.TempReduction*100, pt.PeakRise,
				pt.WorstSlackPs, pt.HPWL, pt.CongestionOverflows)
		}
	}

	if *defOut != "" {
		if err := writeFile(*defOut, func(f *os.File) error { return def.Write(f, an.Placement) }); err != nil {
			fatal(err)
		}
		fmt.Printf("placement written : %s\n", *defOut)
	}
	if *spiceOut != "" {
		circuit, err := thermal.BuildNetwork(an.PowerMap, cfg.Thermal)
		if err != nil {
			fatal(err)
		}
		if err := writeFile(*spiceOut, func(f *os.File) error {
			return spice.WriteDeck(f, circuit, "thermal RC network for "+design.Name)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("spice deck written: %s\n", *spiceOut)
	}
	if *thermalOut != "" {
		if err := os.WriteFile(*thermalOut, []byte(an.Thermal.Surface.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("thermal map       : %s\n", *thermalOut)
	}
	if *powerOut != "" {
		if err := os.WriteFile(*powerOut, []byte(an.PowerMap.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("power map         : %s\n", *powerOut)
	}
}

func loadLibrary(path string) (*celllib.Library, error) {
	if path == "" {
		return celllib.Default65nm(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return celllib.ParseLiberty(f)
}

func loadDesign(netlistPath, benchName string, lib *celllib.Library) (*netlist.Design, error) {
	if netlistPath != "" {
		f, err := os.Open(netlistPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseVerilog(f, lib)
	}
	switch benchName {
	case "paper":
		return bench.Generate(lib, bench.DefaultConfig())
	case "small":
		return bench.Generate(lib, bench.SmallConfig())
	default:
		return nil, fmt.Errorf("unknown built-in benchmark %q (want paper or small)", benchName)
	}
}

func parseWorkload(s string) (bench.Workload, error) {
	switch {
	case s == "scattered":
		return bench.ScatteredSmallHotspots(), nil
	case s == "concentrated":
		return bench.ConcentratedLargeHotspot(), nil
	case strings.HasPrefix(s, "uniform"):
		activity := 0.25
		if parts := strings.SplitN(s, ":", 2); len(parts) == 2 {
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return bench.Workload{}, fmt.Errorf("bad uniform activity %q", parts[1])
			}
			activity = v
		}
		return bench.UniformWorkload(activity), nil
	default:
		return bench.Workload{}, fmt.Errorf("unknown workload %q (want scattered, concentrated or uniform:<a>)", s)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func fatal(err error) {
	code := fault.ExitCode(err)
	if code == fault.ExitCanceled {
		// A signal or the -timeout deadline fired; the pipeline unwound
		// cleanly (solvers drained, no partial state). ExitCanceled (130)
		// is the conventional interrupted-by-signal exit status.
		fmt.Fprintln(os.Stderr, "thermflow: canceled:", err)
	} else {
		fmt.Fprintln(os.Stderr, "thermflow:", err)
	}
	os.Exit(code)
}
