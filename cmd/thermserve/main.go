// Command thermserve is the fault-tolerant what-if query server: it loads
// one or more scenario families once, keeps their analysis flows resident
// (placed baseline, activity, solver pools, warm-start fields) and answers
// concurrent HTTP/JSON queries about them — what happens to the thermal
// profile at a different utilization, with empty rows inserted, with hotspot
// wrappers applied, or across a small efficiency sweep.
//
// Robustness is the point: bounded admission with load shedding (503 +
// Retry-After), per-request deadlines that cancel in-flight solves, a
// circuit breaker that pins a misbehaving multigrid preconditioner to the
// Jacobi fallback (responses flagged "degraded"), a memory-budgeted LRU of
// solved states, and graceful drain on SIGTERM. See internal/serve.
//
// Usage:
//
//	thermserve -listen :8080 -families paper-synth9,hotspot-cluster -cells 4000
//	curl 'localhost:8080/analyze?design=paper-synth9&util=0.7'
//	curl 'localhost:8080/delta?design=paper-synth9&strategy=eri&rows=4'
//	curl 'localhost:8080/sweep?design=paper-synth9&overheads=0.1,0.2'
//	curl 'localhost:8080/statz'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen   = flag.String("listen", ":8080", "address to serve HTTP on")
		families = flag.String("families", "", "comma-separated scenario families to load (default: all)")
		seed     = flag.Int64("seed", 1, "scenario generation seed")
		cells    = flag.Int("cells", 4000, "approximate cell count per design")
		gridN    = flag.Int("grid", 0, "thermal grid resolution per side (0 = scenario default)")
		cycles   = flag.Int("cycles", 0, "random simulation cycles for activity extraction (0 = scenario default)")
		inflight = flag.Int("inflight", 4, "max concurrently executing queries per design")
		queue    = flag.Int("queue", 16, "max queued queries per design before shedding")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-request deadline (requests may override with deadline_ms)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-drain timeout on SIGTERM before stragglers are canceled")
		cacheMB  = flag.Int64("cache-mb", 64, "per-design solved-state cache budget in MiB (negative disables)")
		trips    = flag.Int("breaker-trips", 3, "consecutive solver faults that open a design's multigrid circuit breaker")
		cooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker pins the Jacobi fallback before probing")
	)
	flag.Parse()

	// SIGINT/SIGTERM triggers the graceful drain; a second signal during the
	// drain kills the process the conventional way (the handler is reset).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	want := bench.Families()
	if *families != "" {
		want = want[:0]
		for _, name := range strings.Split(*families, ",") {
			want = append(want, bench.Family(strings.TrimSpace(name)))
		}
	}

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	srv := serve.NewServer(serve.Config{
		MaxInFlight:     *inflight,
		MaxQueue:        *queue,
		DefaultDeadline: *deadline,
		BreakerTrips:    *trips,
		BreakerCooldown: *cooldown,
		CacheBytes:      cacheBytes,
	})
	defer srv.Close()

	lib := celllib.Default65nm()
	for _, fam := range want {
		sc := bench.Scenario{Family: fam, Seed: *seed, TargetCells: *cells}
		gen, err := sc.Generate(lib)
		if err != nil {
			return fatal(fmt.Errorf("generating %s: %w", fam, err))
		}
		fcfg := flow.ScenarioConfig(gen.Scenario)
		if *gridN > 0 {
			fcfg.Thermal.NX, fcfg.Thermal.NY = *gridN, *gridN
		}
		if *cycles > 0 {
			fcfg.SimCycles = *cycles
		}
		t0 := time.Now()
		if err := srv.AddDesign(ctx, string(fam), gen.Design, gen.Workload, fcfg, nil); err != nil {
			return fatal(fmt.Errorf("warming up %s: %w", fam, err))
		}
		snap := srv.StatsFor(string(fam))
		fmt.Printf("thermserve: loaded %-18s %6d cells, baseline warm in %v (degradations: %d)\n",
			fam, gen.Design.NumInstances(), time.Since(t0).Round(time.Millisecond), snap.MGSetupFailures+snap.SolveRetries)
	}

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("thermserve: serving %d designs on %s\n", len(srv.Designs()), *listen)

	select {
	case err := <-errc:
		// The listener died before any signal: a genuine failure.
		return fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM force-kills

	fmt.Fprintf(os.Stderr, "thermserve: signal received, draining (timeout %v)\n", *drain)
	canceled := srv.Drain(*drain)
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	if canceled > 0 {
		// The drain window expired with queries still running: the shutdown
		// was a cancellation (exit 130), not a clean completion.
		fmt.Fprintf(os.Stderr, "thermserve: drain timeout: canceled %d in-flight queries\n", canceled)
		return fault.ExitCode(fault.Canceled(context.Canceled))
	}
	fmt.Fprintln(os.Stderr, "thermserve: drained cleanly")
	return fault.ExitOK
}

// fatal prints the error and maps it to the shared exit-code convention:
// 130 for cancellation-induced exits (a signal during warm-up), 1 otherwise.
func fatal(err error) int {
	if errors.Is(err, http.ErrServerClosed) {
		return fault.ExitOK
	}
	fmt.Fprintln(os.Stderr, "thermserve:", err)
	return fault.ExitCode(err)
}
