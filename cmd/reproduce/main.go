// Command reproduce regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark:
//
//	fig5    power and thermal profiles of test set 1 (40x40 matrices)
//	fig6    temperature reduction vs area overhead for Default / ERI / HW
//	        (test set 1: four scattered small hotspots)
//	table1  Default vs ERI on a single large concentrated hotspot
//	timing  maximum timing overhead of the transforms (the paper's ~2% claim)
//	congestion  routing-congestion by-product of empty row insertion
//	all     everything above
//
// Absolute temperatures depend on the package calibration (see the design notes in README.md);
// the reproduced quantities are the relative reductions the paper reports.
//
// Usage:
//
//	reproduce -exp all
//	reproduce -exp fig6 -outdir results/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/congestion"
	"thermplace/internal/core"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/netlist"
	"thermplace/internal/thermal"
	"thermplace/internal/timing"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to reproduce: fig5, fig6, table1, timing, congestion or all")
		outdir    = flag.String("outdir", "", "optional directory for matrix dumps (fig5)")
		small     = flag.Bool("small", false, "use the reduced benchmark (fast smoke run, smaller effects)")
		gridN     = flag.Int("grid", 40, "thermal grid resolution per side (the paper uses 40)")
		cycles    = flag.Int("cycles", 128, "random simulation cycles for activity extraction")
		seed      = flag.Int64("seed", 1, "random stimulus seed")
		util      = flag.Float64("util", 0.85, "baseline placement utilization")
		workers   = flag.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = sequential)")
		precond   = flag.String("precond", "auto", "thermal CG preconditioner: auto, mg or jacobi")
		incr      = flag.Bool("incremental", false, "derive sweep points incrementally from the baseline (delta-driven pipeline; bit-identical output)")
		adaptive  = flag.Bool("adaptive", false, "with fig6, run the two-phase multi-fidelity sweep: densify the overhead grid, triage candidates on coarse-grid estimates, measure only the estimated Pareto front exactly")
		gridScale = flag.Int("grid-scale", 4, "with -adaptive, densification factor of the overhead grid")
		margin    = flag.Float64("margin", 0.25, "with -adaptive, triage safety margin as a fraction of the estimated rise range")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); Ctrl-C also cancels cleanly")
	)
	flag.Parse()
	pk, err := thermal.ParsePrecond(*precond)
	if err != nil {
		fatal(err)
	}
	sweepOpts := core.SweepOptions{Workers: *workers, Incremental: *incr}
	if *adaptive {
		sweepOpts.Adaptive = &core.AdaptiveOptions{GridScale: *gridScale, Margin: *margin}
	}

	// A SIGINT/SIGTERM (or the -timeout deadline) cancels the analysis
	// pipeline cooperatively: the in-flight thermal solves abort within a few
	// CG iterations and every worker goroutine drains before the process
	// exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	lib := celllib.Default65nm()
	cfgBench := bench.DefaultConfig()
	if *small {
		cfgBench = bench.SmallConfig()
	}
	design, err := bench.Generate(lib, cfgBench)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark: %s, %d standard cells, %d nets, clock %.1f GHz\n\n",
		design.Name, design.NumInstances(), design.NumNets(), cfgBench.ClockGHz)

	mkFlow := func(wl bench.Workload) *flow.Flow {
		cfg := flow.DefaultConfig()
		cfg.Utilization = *util
		cfg.SimCycles = *cycles
		cfg.Seed = *seed
		cfg.ClockHz = cfgBench.ClockHz()
		cfg.Thermal.NX = *gridN
		cfg.Thermal.NY = *gridN
		cfg.Thermal.Precond = pk
		return flow.New(design, wl, cfg)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	if want("fig5") {
		ran = true
		runFig5(ctx, mkFlow(scatteredWorkload(*small)), *outdir)
	}
	if want("fig6") {
		ran = true
		runFig6(ctx, mkFlow(scatteredWorkload(*small)), sweepOpts)
	}
	if want("table1") {
		ran = true
		runTable1(ctx, mkFlow(concentratedWorkload(*small)), *small)
	}
	if want("timing") {
		ran = true
		runTiming(ctx, design, mkFlow(scatteredWorkload(*small)))
	}
	if want("congestion") {
		ran = true
		runCongestion(ctx, mkFlow(scatteredWorkload(*small)))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// scatteredWorkload is the paper's test set 1 (four small scattered
// hotspots); on the reduced benchmark the hottest unit is the multiplier.
func scatteredWorkload(small bool) bench.Workload {
	if small {
		return bench.Workload{Name: "scattered-small(reduced)",
			Activity: map[string]float64{"mult8": 0.55, "alu8": 0.5}, Default: 0.04}
	}
	return bench.ScatteredSmallHotspots()
}

// concentratedWorkload is the paper's test set 2 (one large hotspot).
func concentratedWorkload(small bool) bench.Workload {
	if small {
		return bench.Workload{Name: "concentrated(reduced)",
			Activity: map[string]float64{"mult8": 0.55}, Default: 0.04}
	}
	return bench.ConcentratedLargeHotspot()
}

func runFig5(ctx context.Context, f *flow.Flow, outdir string) {
	fmt.Println("=== Figure 5: power and thermal profiles of test set 1 ===")
	an, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("total power %.2f mW over %.0f x %.0f um; peak rise %.2f C; %d hotspots\n",
		an.Power.Total()*1e3, an.Placement.FP.Core.W(), an.Placement.FP.Core.H(),
		an.Thermal.PeakRise, len(an.Hotspots))
	fmt.Println("\npower profile (W per grid cell, hot = @):")
	fmt.Print(an.PowerMap.ASCIIHeatmap())
	fmt.Println("\nthermal profile (degrees C, hot = @):")
	fmt.Print(an.Thermal.Surface.ASCIIHeatmap())
	for _, h := range an.Hotspots {
		fmt.Printf("hotspot #%d: rise %.2f C, %.1f%% of core, bbox %v\n",
			h.ID, h.PeakRise, 100*h.FracOfArea(an.Placement.FP.Core), h.Rect)
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			fatal(err)
		}
		power := filepath.Join(outdir, "fig5_power_map.txt")
		therm := filepath.Join(outdir, "fig5_thermal_map.txt")
		if err := os.WriteFile(power, []byte(an.PowerMap.String()), 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(therm, []byte(an.Thermal.Surface.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("matrices written to %s and %s\n", power, therm)
	}
	fmt.Println()
}

func runFig6(ctx context.Context, f *flow.Flow, sweepOpts core.SweepOptions) {
	fmt.Println("=== Figure 6: thermal efficiency of the various techniques (test set 1) ===")
	opts := core.DefaultSweepOptions()
	opts.Workers = sweepOpts.Workers
	opts.Incremental = sweepOpts.Incremental
	opts.Adaptive = sweepOpts.Adaptive
	res, err := core.SweepEfficiencyCtx(ctx, f, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline: utilization %.2f, peak rise %.3f C, %d hotspots\n\n",
		res.BaselineUtilization, res.Baseline.Thermal.PeakRise, len(res.Baseline.Hotspots))
	if ts := res.Triage; ts != nil {
		fmt.Printf("adaptive triage: %d/%d candidates pruned on coarse estimates (%d coarse + %d exact solves, max est err %.3f C)\n\n",
			ts.Candidates-ts.Survivors, ts.Candidates, ts.CoarseSolves, ts.ExactSolves, ts.MaxEstErrC)
	}
	pareto := map[int]bool{}
	for _, idx := range res.ParetoFront() {
		pareto[idx] = true
	}
	fmt.Printf("%-11s %14s %18s %12s %12s %12s %10s\n",
		"strategy", "area overhead", "temp reduction", "peak rise", "worst slack", "hpwl", "overflow")
	for _, s := range []core.Strategy{core.StrategyDefault, core.StrategyERI, core.StrategyHW} {
		for i, p := range res.Points {
			if p.Strategy != s {
				continue
			}
			mark := " "
			if pareto[i] {
				mark = "*" // on the multi-objective Pareto front
			}
			rows := ""
			if p.Rows > 0 {
				rows = fmt.Sprintf("  (%d rows)", p.Rows)
			}
			fmt.Printf("%s %-9s %13.1f%% %17.1f%% %10.3f C %9.1f ps %9.0f um %10d%s\n",
				mark, p.Strategy, p.AreaOverhead*100, p.TempReduction*100, p.PeakRise,
				p.WorstSlackPs, p.HPWL, p.CongestionOverflows, rows)
		}
	}
	fmt.Println("\n* = on the Pareto front over (area, peak rise, critical path, hpwl, overflow).")
	fmt.Println("paper reference (shape): both ERI and HW curves lie above Default, ERI")
	fmt.Println("slightly above HW, and effectiveness grows with the area overhead.")
	fmt.Println()
}

func runTable1(ctx context.Context, f *flow.Flow, small bool) {
	fmt.Println("=== Table I: concentrated hotspot, Default vs Empty Row Insertion ===")
	opts := core.DefaultConcentratedOptions()
	if small {
		// The paper's literal 20/40 row counts only make sense on the
		// paper-sized benchmark; on the reduced one derive the counts from
		// the same area overheads instead.
		opts.ERIRows = nil
	}
	res, err := core.ConcentratedExperimentCtx(ctx, f, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline core %.0f x %.0f um, peak rise %.3f C\n\n",
		res.Baseline.Placement.FP.Core.W(), res.Baseline.Placement.FP.Core.H(), res.Baseline.Thermal.PeakRise)
	fmt.Printf("%-9s %-16s %6s %15s %16s\n", "strategy", "area [um x um]", "rows", "area overhead", "temp reduction")
	for _, row := range res.Rows {
		rows := "-"
		if row.Rows > 0 {
			rows = fmt.Sprintf("%d", row.Rows)
		}
		fmt.Printf("%-9s %6.0f x %-8.0f %6s %14.1f%% %15.1f%%\n",
			row.Strategy, row.CoreW, row.CoreH, rows, row.AreaOverhead*100, row.TempReduction*100)
	}
	fmt.Println("\npaper reference: Default 16.1% -> 11.3%, 32.2% -> 20.2%;")
	fmt.Println("                 ERI 20 rows (16.1%) -> 13.1%, 40 rows (32.2%) -> 28.6%.")
	fmt.Println()
}

func runTiming(ctx context.Context, design *netlist.Design, f *flow.Flow) {
	fmt.Println("=== Timing overhead of the transforms (paper: around 2%) ===")
	base, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		fatal(err)
	}
	baseT, err := timing.Analyze(design, base.Placement, timing.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline critical path: %.1f ps (max %.3f GHz)\n", baseT.CriticalPathPs, baseT.MaxFrequencyGHz)

	for _, ov := range []float64{0.161, 0.322} {
		rows := core.RowsForAreaOverhead(base.Placement, ov)
		eriP, err := core.EmptyRowInsertion(base.Placement, base.Hotspots, core.DefaultERIOptions(rows))
		if err != nil {
			fatal(err)
		}
		eriT, err := timing.Analyze(design, eriP, timing.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ERI (%d rows, %4.1f%% area): %.1f ps  -> overhead %.2f%%\n",
			rows, ov*100, eriT.CriticalPathPs, timing.Overhead(baseT, eriT)*100)
	}

	relaxed, err := f.PlaceAt(f.Config.Utilization / 1.16)
	if err != nil {
		fatal(err)
	}
	relAn, err := f.AnalyzeCtx(ctx, relaxed)
	if err != nil {
		fatal(err)
	}
	powerOf := func(inst *netlist.Instance) float64 { return relAn.Power.InstancePower(inst) }
	hwP, err := core.HotspotWrapper(relaxed, relAn.Hotspots, core.DefaultWrapperOptions(powerOf))
	if err != nil {
		fatal(err)
	}
	relT, err := timing.Analyze(design, relaxed, timing.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	hwT, err := timing.Analyze(design, hwP, timing.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("HW (vs its default)   : %.1f ps  -> overhead %.2f%%\n",
		hwT.CriticalPathPs, timing.Overhead(relT, hwT)*100)
	fmt.Println()
}

func runCongestion(ctx context.Context, f *flow.Flow) {
	fmt.Println("=== Congestion by-product of empty row insertion (Section III-A) ===")
	base, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		fatal(err)
	}
	before := congestion.Estimate(base.Placement, congestion.DefaultOptions())
	rows := core.RowsForAreaOverhead(base.Placement, 0.16)
	eriP, err := core.EmptyRowInsertion(base.Placement, base.Hotspots, core.DefaultERIOptions(rows))
	if err != nil {
		fatal(err)
	}
	after := congestion.Estimate(eriP, congestion.DefaultOptions())
	region := base.Hotspots[0].Rect
	fmt.Printf("%-28s %12s %12s\n", "", "baseline", "after ERI")
	fmt.Printf("%-28s %12.3f %12.3f\n", "mean congestion (die)", before.MeanUtilization, after.MeanUtilization)
	fmt.Printf("%-28s %12.3f %12.3f\n", "max congestion (die)", before.MaxUtilization, after.MaxUtilization)
	fmt.Printf("%-28s %12.3f %12.3f\n", "mean congestion (hotspot)", before.RegionUtilization(region), after.RegionUtilization(region))
	fmt.Printf("%-28s %12d %12d\n", "overflowing bins", before.Overflows, after.Overflows)
	fmt.Println()
}

func fatal(err error) {
	code := fault.ExitCode(err)
	if code == fault.ExitCanceled {
		// A signal or the -timeout deadline fired; the pipeline unwound
		// cleanly (solvers drained, no partial state). ExitCanceled (130)
		// is the conventional interrupted-by-signal exit status.
		fmt.Fprintln(os.Stderr, "reproduce: canceled:", err)
	} else {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
	}
	os.Exit(code)
}
