module thermplace

go 1.24
