// Package thermplace reproduces "Post-placement Temperature Reduction
// Techniques" (Liu, Nannarelli, Calimera, Macii, Poncino — DATE 2010):
// post-placement whitespace-allocation techniques (Empty Row Insertion and
// Hotspot Wrapper) that lower peak on-chip temperature by reducing power
// density exactly where the thermal hotspots are, together with every
// substrate the paper's flow depends on — a synthetic 65 nm cell library and
// benchmark generator, a gate-level logic simulator for switching activity,
// a power estimator, a row-based placer, a steady-state 3-D RC thermal
// simulator with a SPICE-like resistive-network solver, hotspot detection,
// static timing analysis and congestion estimation.
//
// The implementation lives under internal/; the command-line tools under
// cmd/ (benchgen, thermflow, thermopt, reproduce) and the runnable examples
// under examples/ are the intended entry points. bench_test.go at this level
// regenerates every table and figure of the paper's evaluation as Go
// benchmarks. See README.md for the quickstart, package map, solver
// architecture and design notes.
package thermplace
