package sparse

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"thermplace/internal/fault"
)

// spdStencil returns a strictly diagonally dominant (hence SPD) 7-point
// system with a deterministic right-hand side.
func spdStencil(nx, ny, nl int) (*SymCSR, []float64) {
	m := NewStencil7(nx, ny, nl)
	for i := range m.Diag {
		m.Diag[i] = 8
	}
	for i := range m.Val {
		m.Val[i] = -1
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%13) + 1
	}
	return m, b
}

// TestNewMGMalformedStencil is the regression for the former coarse-operator
// panic (buildCoarsening): a matrix whose adjacency does not match the
// claimed grid geometry must surface as a typed fault.ErrSetup, not crash.
func TestNewMGMalformedStencil(t *testing.T) {
	// A 4x4x4 stencil has 64 unknowns, so claiming it is an 8x2x4 grid
	// passes the size check but breaks the adjacency the coarsening relies
	// on.
	// CoarsestN below 64 forces the coarsening (the default 128 would solve
	// 64 unknowns directly and never look at the adjacency).
	m, _ := spdStencil(4, 4, 4)
	mg, err := NewMG(m, 8, 2, 4, MGOptions{CoarsestN: 16})
	if err == nil {
		t.Fatalf("NewMG accepted a malformed stencil: %v levels", mg.Levels())
	}
	var se *fault.ErrSetup
	if !errors.As(err, &se) {
		t.Fatalf("malformed stencil error not a fault.ErrSetup: %v", err)
	}
	if se.Stage != "coarsen" {
		t.Fatalf("wrong setup stage %q: %v", se.Stage, err)
	}

	// The size mismatch rejection is typed too.
	if _, err := NewMG(m, 5, 5, 5, MGOptions{}); err == nil || !errors.As(err, &se) {
		t.Fatalf("grid-mismatch error not a fault.ErrSetup: %v", err)
	}
}

// TestCGNotConvergedTyped pins the fields of the typed non-convergence
// error: the iteration count equals the exhausted budget and the residual
// matches the returned residual.
func TestCGNotConvergedTyped(t *testing.T) {
	m, b := spdStencil(12, 12, 3)
	cg := NewCG(m, CGOptions{Tolerance: 1e-12, MaxIterations: 2, Workers: 1})
	x := make([]float64, m.N)
	iters, residual, err := cg.Solve(b, x)
	if err == nil {
		t.Fatalf("2-iteration budget unexpectedly converged (residual %g)", residual)
	}
	var nc *fault.ErrNotConverged
	if !errors.As(err, &nc) {
		t.Fatalf("non-convergence not typed: %v", err)
	}
	if nc.Iters != 2 || nc.Iters != iters {
		t.Fatalf("ErrNotConverged.Iters = %d, want %d (returned %d)", nc.Iters, 2, iters)
	}
	if nc.Residual != residual || !(nc.Residual > 1e-12) {
		t.Fatalf("ErrNotConverged.Residual = %g, returned %g", nc.Residual, residual)
	}
}

// TestCGCancelMidSolve asserts that a canceled context aborts the iteration
// with a typed error, the solver stays usable, and no goroutines leak
// (cancel mid-Solve + Close after cancel).
func TestCGCancelMidSolve(t *testing.T) {
	m, b := spdStencil(24, 24, 4)
	base := runtime.NumGoroutine()
	cg := NewCG(m, CGOptions{Workers: 4, Tolerance: 1e-12})
	x := make([]float64, m.N)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // fires on the first per-iteration check
	if _, _, err := cg.SolveCtx(ctx, b, x); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("canceled solve did not report fault.ErrCanceled: %v", err)
	}

	// A deadline-based cancel additionally matches ErrBudgetExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := cg.SolveCtx(dctx, b, x); !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Fatalf("deadline solve did not report fault.ErrBudgetExceeded: %v", err)
	}

	// The solver still solves after an abort.
	for i := range x {
		x[i] = 0
	}
	if _, _, err := cg.SolveCtx(context.Background(), b, x); err != nil {
		t.Fatalf("solve after cancel: %v", err)
	}
	cg.Close()
	waitGoroutines(t, base)
}

// TestMGApplyCtxCancel asserts the per-cycle cancellation check of the
// multigrid preconditioner.
func TestMGApplyCtxCancel(t *testing.T) {
	m, b := spdStencil(16, 16, 3)
	mg, err := NewMG(m, 16, 16, 3, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Refresh(); err != nil {
		t.Fatal(err)
	}
	z := make([]float64, m.N)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := mg.ApplyCtx(ctx, b, z); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("canceled ApplyCtx did not report fault.ErrCanceled: %v", err)
	}
	// With a live context the result matches Apply exactly.
	want := make([]float64, m.N)
	mg.Apply(b, want)
	live, liveCancel := context.WithCancel(context.Background())
	defer liveCancel()
	if err := mg.ApplyCtx(live, b, z); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if z[i] != want[i] {
			t.Fatalf("ApplyCtx differs from Apply at %d: %g vs %g", i, z[i], want[i])
		}
	}
}

// TestPoolPanicContained asserts that a panic inside a pool task does not
// kill the worker goroutine, deadlock the sibling tasks or leak goroutines:
// it is rethrown on the caller as a located *fault.ErrPanic and the pool
// stays usable.
func TestPoolPanicContained(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(3)
	if !p.Parallel(3) {
		t.Fatal("pool refused parallel run")
	}

	caught := func() (pe *fault.ErrPanic) {
		defer func() {
			if v := recover(); v != nil {
				pe = fault.Recovered("test caller", v)
			}
		}()
		p.Run(3, func(w int) float64 {
			if w == 1 {
				panic("injected task panic")
			}
			return float64(w)
		})
		return nil
	}()
	if caught == nil {
		t.Fatal("worker panic was swallowed")
	}
	if caught.Where != "sparse.Pool worker 1" {
		t.Fatalf("panic not located at the crashing worker: %q", caught.Where)
	}
	if caught.Value != "injected task panic" {
		t.Fatalf("panic value lost: %v", caught.Value)
	}

	// The pool still runs the next operation normally.
	sum := p.Run(3, func(w int) float64 { return float64(w + 1) })
	if sum != 6 {
		t.Fatalf("pool broken after contained panic: sum = %g, want 6", sum)
	}
	p.Close()
	waitGoroutines(t, base)
}

// TestCGPanicContained asserts that a panicking preconditioner surfaces as a
// typed error from SolveCtx, not a crash, and the CG keeps working.
func TestCGPanicContained(t *testing.T) {
	m, b := spdStencil(12, 12, 3)
	cg := NewCG(m, CGOptions{Workers: 1})
	cg.SetPrecond(panicPrecond{})
	x := make([]float64, m.N)
	_, _, err := cg.Solve(b, x)
	var pe *fault.ErrPanic
	if !errors.As(err, &pe) {
		t.Fatalf("preconditioner panic not contained: %v", err)
	}
	cg.SetPrecond(nil)
	for i := range x {
		x[i] = 0
	}
	if _, _, err := cg.Solve(b, x); err != nil {
		t.Fatalf("solve after contained panic: %v", err)
	}
}

type panicPrecond struct{}

func (panicPrecond) Apply(r, z []float64) { panic("injected preconditioner panic") }
