package sparse

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to base, failing
// with a full stack dump if it does not settle.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCGCloseReleasesWorkers is the goroutine-leak regression for the CG
// worker pool: repeated create / parallel-solve / Close cycles must leave
// the goroutine count where it started, and a closed solver must keep
// working serially.
func TestCGCloseReleasesWorkers(t *testing.T) {
	m := NewStencil7(24, 24, 4)
	// Strictly diagonally dominant symmetric stencil: SPD by construction.
	for i := range m.Diag {
		m.Diag[i] = 8
	}
	for i := range m.Val {
		m.Val[i] = -1
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%7) + 1
	}

	base := runtime.NumGoroutine()
	var last *CG
	for cycle := 0; cycle < 8; cycle++ {
		cg := NewCG(m, CGOptions{Workers: 4})
		if cg.Workers() != 4 {
			t.Fatalf("explicit worker count not honored: %d", cg.Workers())
		}
		x := make([]float64, m.N)
		if _, _, err := cg.Solve(b, x); err != nil {
			t.Fatal(err)
		}
		cg.Close()
		cg.Close() // Close must be idempotent
		last = cg
	}
	waitGoroutines(t, base)

	// A closed solver still solves, serially, without restarting the pool.
	x := make([]float64, m.N)
	if _, _, err := last.Solve(b, x); err != nil {
		t.Fatalf("solve after Close: %v", err)
	}
	waitGoroutines(t, base)
}
