package sparse

import (
	"fmt"
	"runtime"
	"sync"

	"thermplace/internal/fault"
)

// Pool is a set of parked worker goroutines executing row-partitioned
// operations. It is shared by the kernels in this package that want
// parallelism without per-solve goroutine churn: the CG iteration ops and
// the multigrid red-black smoother run on the same pool, so a thermal
// solver owns exactly one set of workers regardless of how many operators
// are stacked inside it.
//
// The goroutines are started lazily on the first parallel run and parked on
// their channels between runs. A Pool is not safe for concurrent Run calls;
// the solvers in this repository issue strictly sequential operations.
type Pool struct {
	workers int
	ops     []chan func(w int) float64
	wg      sync.WaitGroup
	partial []float64
	started bool
	closed  bool

	// panicMu guards panicErr, the first panic a worker contained during
	// the run in flight; Run rethrows it on the calling goroutine.
	panicMu  sync.Mutex
	panicErr *fault.ErrPanic
}

// NewPool creates a pool of the given size. workers <= 0 picks GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.partial = make([]float64, workers*padStride)
		p.ops = make([]chan func(w int) float64, workers)
		for i := range p.ops {
			p.ops[i] = make(chan func(w int) float64, 1)
		}
	}
	return p
}

// AutoWorkers returns the pool size the package would pick for an n-row
// system: GOMAXPROCS capped so every worker owns at least minRowsPerWorker
// rows (and at least 1).
func AutoWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if byRows := n / minRowsPerWorker; w > byRows {
		w = byRows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Parallel reports whether a k-way partitioned operation runs on the pool,
// starting the worker goroutines lazily. It returns false once the pool is
// closed or when k < 2; callers then run their serial fallback.
func (p *Pool) Parallel(k int) bool {
	if p == nil || k < 2 || p.workers < 2 || p.closed {
		return false
	}
	if !p.started {
		for w := 0; w < p.workers; w++ {
			//repolint:allow bareGo(Pool is itself the solver concurrency primitive the rule points to)
			go p.worker(w)
		}
		p.started = true
	}
	return true
}

// Run executes task(w) for w = 0..k-1 on the pool workers and returns the
// per-worker results summed in worker order (so reductions are bit-stable
// for a fixed k). Callers must have obtained Parallel(k) == true; k must
// not exceed Workers().
//
// A panic inside a task does not kill the worker goroutine or deadlock the
// sibling workers: the worker contains it, the siblings finish their ranges,
// and Run rethrows the first contained panic — as a located *fault.ErrPanic
// — on the calling goroutine, where the owning solver's recovery converts it
// into an ordinary error. The pool stays usable afterwards.
func (p *Pool) Run(k int, task func(w int) float64) float64 {
	p.wg.Add(k)
	for w := 0; w < k; w++ {
		p.ops[w] <- task
	}
	p.wg.Wait()
	p.panicMu.Lock()
	pe := p.panicErr
	p.panicErr = nil
	p.panicMu.Unlock()
	if pe != nil {
		panic(pe)
	}
	sum := 0.0
	for w := 0; w < k; w++ {
		sum += p.partial[w*padStride]
	}
	return sum
}

func (p *Pool) worker(w int) {
	for task := range p.ops[w] {
		p.runTask(w, task)
	}
}

// runTask executes one task, containing a panic so the worker survives and
// the barrier in Run is always released.
func (p *Pool) runTask(w int, task func(w int) float64) {
	defer p.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			p.panicMu.Lock()
			if p.panicErr == nil {
				p.panicErr = fault.Recovered(fmt.Sprintf("sparse.Pool worker %d", w), v)
			}
			p.panicMu.Unlock()
		}
	}()
	p.partial[w*padStride] = task(w)
}

// Close stops the worker goroutines. Operations issued afterwards run
// serially on the calling goroutine. Close is idempotent.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	if p.started {
		for _, ch := range p.ops {
			close(ch)
		}
		p.started = false
	}
	p.closed = true
}
