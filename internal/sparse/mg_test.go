package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// fillThermalLike fills a 7-point stencil with conductance-style values
// mirroring the thermal system's structure: anisotropic lateral/vertical
// links plus an ambient tie on the bottom layer and the side walls (which
// keeps the matrix non-singular, like the real boundary conditions).
func fillThermalLike(m *SymCSR, nx, ny, nl int) {
	const gx, gy, gz, gamb = 2.2e-3, 2.2e-3, 4.5e-4, 3.9e-5
	nxy := nx * ny
	for i := 0; i < m.N; i++ {
		l := i / nxy
		rem := i % nxy
		iy, ix := rem/nx, rem%nx
		d := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := int(m.Col[k])
			var g float64
			switch {
			case j == i-1 || j == i+1:
				g = gx
			case j == i-nx || j == i+nx:
				g = gy
			default:
				g = gz
			}
			m.Val[k] = -g
			d += g
		}
		if l == 0 {
			d += gamb
		}
		if ix == 0 || ix == nx-1 || iy == 0 || iy == ny-1 {
			d += gamb * 0.01
		}
		m.Diag[i] = d
	}
}

func refreshedMG(t *testing.T, m *SymCSR, nx, ny, nl int, opt MGOptions) *MG {
	t.Helper()
	mg, err := NewMG(m, nx, ny, nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Refresh(); err != nil {
		t.Fatal(err)
	}
	return mg
}

// TestMGApplyIsSymmetric verifies the W-cycle is a symmetric operator — the
// property CG depends on — by materializing B column by column on a small
// grid and comparing B[i][j] against B[j][i].
func TestMGApplyIsSymmetric(t *testing.T) {
	nx, ny, nl := 5, 4, 3
	m := NewStencil7(nx, ny, nl)
	fillThermalLike(m, nx, ny, nl)
	mg := refreshedMG(t, m, nx, ny, nl, MGOptions{CoarsestN: 8})
	if mg.Levels() < 2 {
		t.Fatalf("want a multi-level hierarchy, got %d levels", mg.Levels())
	}
	n := m.N
	b := make([][]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := make([]float64, n)
		mg.Apply(e, col)
		b[j] = col
		e[j] = 0
	}
	scale := 0.0
	for j := range b {
		if v := math.Abs(b[j][j]); v > scale {
			scale = v
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if d := math.Abs(b[i][j] - b[j][i]); d > 1e-12*scale {
				t.Fatalf("B[%d][%d]=%g but B[%d][%d]=%g (asymmetry %g)", i, j, b[i][j], j, i, b[j][i], d)
			}
		}
	}
	// Positive definiteness spot check: e_iᵀ B e_i > 0.
	for i := 0; i < n; i++ {
		if b[i][i] <= 0 {
			t.Fatalf("B[%d][%d] = %g, want positive", i, i, b[i][i])
		}
	}
}

// TestMGPCGMatchesJacobiPCG solves the same thermal-like system with both
// preconditioners and requires matching solutions with a several-fold
// iteration reduction from multigrid.
func TestMGPCGMatchesJacobiPCG(t *testing.T) {
	nx, ny, nl := 40, 40, 9
	m := NewStencil7(nx, ny, nl)
	fillThermalLike(m, nx, ny, nl)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.Float64() * 1e-3
	}
	xj := make([]float64, m.N)
	ij, _, err := NewCG(m, CGOptions{Tolerance: 1e-11, Workers: 1}).Solve(b, xj)
	if err != nil {
		t.Fatal(err)
	}
	mg := refreshedMG(t, m, nx, ny, nl, MGOptions{})
	xm := make([]float64, m.N)
	im, res, err := NewCG(m, CGOptions{Tolerance: 1e-11, Workers: 1, Precond: mg}).Solve(b, xm)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-11 {
		t.Fatalf("MG-PCG residual %g above tolerance", res)
	}
	worst := 0.0
	for i := range xm {
		if d := math.Abs(xm[i] - xj[i]); d > worst {
			worst = d
		}
	}
	// Solutions are ~1e2 K scale here; 1e-6 relative agreement mirrors the
	// thermal equivalence bound.
	if worst > 1e-6 {
		t.Fatalf("MG-PCG deviates from Jacobi-PCG by %g", worst)
	}
	if im*3 > ij {
		t.Fatalf("MG-PCG took %d iterations, Jacobi-PCG %d: want at least a 3x reduction", im, ij)
	}
}

// TestMGIterationCountGridIndependent sweeps the lateral resolution up to
// 160x160 with the paper's 9 layers and requires an essentially flat
// MG-PCG iteration count (the W-cycle property). The <15-iteration bound of
// the real thermal system (whose package coupling is stronger than this
// synthetic's) is asserted in internal/thermal's equivalence test.
func TestMGIterationCountGridIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("large-grid convergence sweep skipped in -short mode")
	}
	prev := 0
	for _, n := range []int{40, 80, 160} {
		m := NewStencil7(n, n, 9)
		fillThermalLike(m, n, n, 9)
		b := make([]float64, m.N)
		for i := range b {
			b[i] = 1e-4
		}
		mg := refreshedMG(t, m, n, n, 9, MGOptions{})
		x := make([]float64, m.N)
		iters, _, err := NewCG(m, CGOptions{Tolerance: 1e-9, Workers: 1, Precond: mg}).Solve(b, x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		t.Logf("grid %dx%dx9: %d levels, %d MG-PCG iterations", n, n, mg.Levels(), iters)
		if iters >= 20 {
			t.Errorf("grid %dx%dx9: %d iterations, want < 20", n, n, iters)
		}
		if prev > 0 && iters > prev+3 {
			t.Errorf("iteration count grew from %d to %d between grid sizes; want near-flat", prev, iters)
		}
		prev = iters
	}
}

// TestMGRefreshTracksValueChanges changes the fine-matrix values in place
// (as the thermal solver does on a die-geometry change) and checks that a
// Refresh brings the hierarchy back in sync.
func TestMGRefreshTracksValueChanges(t *testing.T) {
	nx, ny, nl := 12, 12, 5
	m := NewStencil7(nx, ny, nl)
	fillThermalLike(m, nx, ny, nl)
	mg := refreshedMG(t, m, nx, ny, nl, MGOptions{CoarsestN: 64})
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%5) * 1e-4
	}
	x1 := make([]float64, m.N)
	c := NewCG(m, CGOptions{Tolerance: 1e-12, Workers: 1, Precond: mg})
	if _, _, err := c.Solve(b, x1); err != nil {
		t.Fatal(err)
	}
	for i := range m.Val {
		m.Val[i] *= 2
	}
	for i := range m.Diag {
		m.Diag[i] *= 2
	}
	if err := mg.Refresh(); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, m.N)
	if _, _, err := c.Solve(b, x2); err != nil {
		t.Fatal(err)
	}
	// Scaling A by 2 halves the solution.
	for i := range x2 {
		if math.Abs(x2[i]-x1[i]/2) > 1e-8*math.Abs(x1[i]/2)+1e-15 {
			t.Fatalf("x2[%d] = %g, want %g", i, x2[i], x1[i]/2)
		}
	}
}

func TestMGRejectsDimensionMismatch(t *testing.T) {
	m := NewStencil7(4, 4, 2)
	if _, err := NewMG(m, 5, 4, 2, MGOptions{}); err == nil {
		t.Fatal("mismatched grid dimensions must be rejected")
	}
	if _, err := NewMG(m, 4, 4, 2, MGOptions{PreSmooth: 1, PostSmooth: 2}); err == nil {
		t.Fatal("unequal pre/post smoothing (an asymmetric cycle) must be rejected")
	}
}

// TestMGSingleLevelIsDirect: a grid below the coarsest threshold degenerates
// to a dense direct solve, which preconditions CG to convergence in one
// iteration.
func TestMGSingleLevelIsDirect(t *testing.T) {
	nx, ny, nl := 4, 4, 3
	m := NewStencil7(nx, ny, nl)
	fillThermalLike(m, nx, ny, nl)
	mg := refreshedMG(t, m, nx, ny, nl, MGOptions{})
	if mg.Levels() != 1 {
		t.Fatalf("48 unknowns should be a single direct level, got %d levels", mg.Levels())
	}
	b := make([]float64, m.N)
	b[5] = 1e-3
	x := make([]float64, m.N)
	iters, _, err := NewCG(m, CGOptions{Tolerance: 1e-10, Workers: 1, Precond: mg}).Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if iters > 2 {
		t.Fatalf("direct-preconditioned CG took %d iterations", iters)
	}
}

// TestCGPersistentPoolReuse drives many solves through one parallel CG and
// then closes it, checking the answers stay identical and a closed solver
// still solves (serially).
func TestCGPersistentPoolReuse(t *testing.T) {
	m := laplacian2D(40, 40)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	ref := make([]float64, m.N)
	if _, _, err := NewCG(m, CGOptions{Workers: 1, Tolerance: 1e-11}).Solve(b, ref); err != nil {
		t.Fatal(err)
	}
	c := NewCG(m, CGOptions{Workers: 3, Tolerance: 1e-11})
	for round := 0; round < 3; round++ {
		x := make([]float64, m.N)
		if _, _, err := c.Solve(b, x); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-8 {
				t.Fatalf("round %d: x[%d] = %g, want %g", round, i, x[i], ref[i])
			}
		}
	}
	c.Close()
	c.Close() // idempotent
	x := make([]float64, m.N)
	if _, _, err := c.Solve(b, x); err != nil {
		t.Fatalf("solve after Close: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-ref[i]) > 1e-8 {
			t.Fatalf("after Close: x[%d] = %g, want %g", i, x[i], ref[i])
		}
	}
}

// TestMGPooledSmootherBitIdentical runs the same W-cycle serially and on a
// multi-worker pool and requires exactly identical output: rows of one
// red-black color never read each other, so the partitioned sweeps must
// reproduce the serial ones bit for bit, which is what lets the thermal
// solver parallelize the smoother without perturbing any solve downstream.
func TestMGPooledSmootherBitIdentical(t *testing.T) {
	nx, ny, nl := 40, 40, 9 // 14400 rows: enough for a 3-way fine-level split
	m := NewStencil7(nx, ny, nl)
	fillThermalLike(m, nx, ny, nl)
	serial := refreshedMG(t, m, nx, ny, nl, MGOptions{})

	pool := NewPool(3)
	defer pool.Close()
	pooled := refreshedMG(t, m, nx, ny, nl, MGOptions{Pool: pool})
	if pooled.levels[0].kw < 2 {
		t.Fatalf("fine level not pooled (kw=%d); test needs a parallel smoother", pooled.levels[0].kw)
	}

	rng := rand.New(rand.NewSource(11))
	r := make([]float64, m.N)
	for i := range r {
		r[i] = rng.Float64() - 0.5
	}
	zs := make([]float64, m.N)
	zp := make([]float64, m.N)
	serial.Apply(r, zs)
	pooled.Apply(r, zp)
	for i := range zs {
		if zs[i] != zp[i] {
			t.Fatalf("pooled cycle differs at row %d: %v vs %v", i, zp[i], zs[i])
		}
	}

	// The full preconditioned solve must also be bit-identical when CG and
	// MG share the pool.
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.Float64() * 1e-3
	}
	solve := func(mg *MG, p *Pool) []float64 {
		cg := NewCG(m, CGOptions{Precond: mg, Pool: p, Workers: 3})
		defer cg.Close()
		x := make([]float64, m.N)
		if _, _, err := cg.Solve(b, x); err != nil {
			t.Fatal(err)
		}
		return x
	}
	xs := solve(serial, nil)
	xp := solve(pooled, pool)
	for i := range xs {
		if xs[i] != xp[i] {
			t.Fatalf("pooled solve differs at row %d: %v vs %v", i, xp[i], xs[i])
		}
	}
}
