// Package sparse provides the numerical kernel of the structured-grid
// thermal fast path: a symmetric sparse matrix in compressed-sparse-row
// form, a preconditioned conjugate-gradient solver whose matrix-vector
// products and reductions run on a persistent goroutine pool, and a
// geometric multigrid preconditioner (MG) specialized to the 7-point
// stencil of a structured nx-by-ny-by-nl grid.
//
// Unlike package spice, which assembles nodal equations from a netlist of
// named elements, this package works on plain integer-indexed vectors: the
// caller (package thermal) maps grid cells to contiguous indices once and
// never touches strings or maps on the solve path. All numeric buffers and
// the worker pool are reusable across solves, so a re-solve with a new
// right-hand side allocates nothing and spawns no goroutines.
package sparse

// SymCSR is a symmetric positive-definite matrix stored as a diagonal
// vector plus the off-diagonal entries of every row in CSR form. The full
// off-diagonal pattern is stored (both (i,j) and (j,i)), which keeps the
// matrix-vector product a pure row-parallel loop.
type SymCSR struct {
	// N is the number of rows (= columns).
	N int
	// RowPtr has length N+1; the off-diagonal entries of row i are
	// Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	// Col holds the column index of every off-diagonal entry.
	Col []int32
	// Val holds the value of every off-diagonal entry.
	Val []float64
	// Diag holds the diagonal entries.
	Diag []float64
}

// NewSymCSR allocates an n-by-n matrix with room for nnzOff off-diagonal
// entries. RowPtr, Col and Val are allocated at full capacity but start
// zeroed; the caller fills them in row order.
func NewSymCSR(n, nnzOff int) *SymCSR {
	return &SymCSR{
		N:      n,
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, nnzOff),
		Val:    make([]float64, nnzOff),
		Diag:   make([]float64, n),
	}
}

// NewStencil7 builds the sparsity pattern of the 7-point stencil on an
// nx-by-ny-by-nl structured grid, where node (l, ix, iy) has index
// (l*ny+iy)*nx + ix. The off-diagonal columns of every row are emitted in
// ascending order — z-1, y-1, x-1, x+1, y+1, z+1 — which callers filling
// values rely on. Values start zeroed.
func NewStencil7(nx, ny, nl int) *SymCSR {
	nxy := nx * ny
	lateral := 2 * ((nx-1)*ny + nx*(ny-1)) * nl
	vertical := 2 * nxy * (nl - 1)
	m := NewSymCSR(nxy*nl, lateral+vertical)
	k := int32(0)
	for l := 0; l < nl; l++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := (l*ny+iy)*nx + ix
				m.RowPtr[i] = k
				if l > 0 {
					m.Col[k] = int32(i - nxy)
					k++
				}
				if iy > 0 {
					m.Col[k] = int32(i - nx)
					k++
				}
				if ix > 0 {
					m.Col[k] = int32(i - 1)
					k++
				}
				if ix+1 < nx {
					m.Col[k] = int32(i + 1)
					k++
				}
				if iy+1 < ny {
					m.Col[k] = int32(i + nx)
					k++
				}
				if l+1 < nl {
					m.Col[k] = int32(i + nxy)
					k++
				}
			}
		}
	}
	m.RowPtr[m.N] = k
	return m
}

// MatVec computes y = A*x.
func (m *SymCSR) MatVec(x, y []float64) { m.matVecRange(x, y, 0, m.N) }

// matVecRange computes y[lo:hi] = (A*x)[lo:hi].
func (m *SymCSR) matVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := m.Diag[i] * x[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		y[i] = sum
	}
}

// Residual computes r = b - A*x and returns r·r, fused in one pass.
func (m *SymCSR) residualRange(b, x, r []float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		sum := m.Diag[i] * x[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		r[i] = b[i] - sum
		s += r[i] * r[i]
	}
	return s
}
