package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// laplacian1D builds the classic tridiagonal SPD matrix (2 on the diagonal,
// -1 off) with Dirichlet ends.
func laplacian1D(n int) *SymCSR {
	nnz := 2*n - 2
	m := NewSymCSR(n, nnz)
	k := int32(0)
	for i := 0; i < n; i++ {
		m.RowPtr[i] = k
		m.Diag[i] = 2
		if i > 0 {
			m.Col[k], m.Val[k] = int32(i-1), -1
			k++
		}
		if i+1 < n {
			m.Col[k], m.Val[k] = int32(i+1), -1
			k++
		}
	}
	m.RowPtr[n] = k
	return m
}

// laplacian2D builds the 5-point SPD grid Laplacian on an nx-by-ny grid with
// a small diagonal shift (every node weakly tied to a reference), mirroring
// the structure of the thermal system.
func laplacian2D(nx, ny int) *SymCSR {
	n := nx * ny
	deg := 0
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			if ix > 0 {
				deg++
			}
			if ix+1 < nx {
				deg++
			}
			if iy > 0 {
				deg++
			}
			if iy+1 < ny {
				deg++
			}
		}
	}
	m := NewSymCSR(n, deg)
	k := int32(0)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			m.RowPtr[i] = k
			d := 0.01 // tie to reference keeps the matrix non-singular
			add := func(j int) {
				m.Col[k], m.Val[k] = int32(j), -1
				k++
				d++
			}
			if iy > 0 {
				add(i - nx)
			}
			if ix > 0 {
				add(i - 1)
			}
			if ix+1 < nx {
				add(i + 1)
			}
			if iy+1 < ny {
				add(i + nx)
			}
			m.Diag[i] = d
		}
	}
	m.RowPtr[n] = k
	return m
}

func residualNorm(m *SymCSR, b, x []float64) float64 {
	r := make([]float64, m.N)
	m.MatVec(x, r)
	s, bs := 0.0, 0.0
	for i := range r {
		d := b[i] - r[i]
		s += d * d
		bs += b[i] * b[i]
	}
	return math.Sqrt(s) / math.Sqrt(bs)
}

func TestCGSolvesTridiagonal(t *testing.T) {
	n := 50
	m := laplacian1D(n)
	// Manufactured solution.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i) / 5)
	}
	b := make([]float64, n)
	m.MatVec(want, b)
	x := make([]float64, n)
	iters, res, err := NewCG(m, CGOptions{Tolerance: 1e-12}).Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Fatalf("expected iterative work, got %d iterations", iters)
	}
	if res > 1e-12 {
		t.Fatalf("residual %g above tolerance", res)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestCGParallelMatchesSerial(t *testing.T) {
	m := laplacian2D(40, 40)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.Float64()
	}
	xs := make([]float64, m.N)
	if _, _, err := NewCG(m, CGOptions{Workers: 1, Tolerance: 1e-11}).Solve(b, xs); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4} {
		c := NewCG(m, CGOptions{Workers: workers, Tolerance: 1e-11})
		if c.Workers() != workers {
			t.Fatalf("explicit worker request %d not honored, got %d", workers, c.Workers())
		}
		xp := make([]float64, m.N)
		if _, _, err := c.Solve(b, xp); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range xp {
			if math.Abs(xp[i]-xs[i]) > 1e-8 {
				t.Fatalf("workers=%d: x[%d] = %g, serial %g", workers, i, xp[i], xs[i])
			}
		}
	}
}

func TestCGWarmStartConvergesFaster(t *testing.T) {
	m := laplacian2D(30, 30)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	c := NewCG(m, CGOptions{Workers: 1})
	cold := make([]float64, m.N)
	coldIters, _, err := c.Solve(b, cold)
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution: must converge immediately.
	again := make([]float64, m.N)
	copy(again, cold)
	warmIters, res, err := c.Solve(b, again)
	if err != nil {
		t.Fatal(err)
	}
	if warmIters != 0 {
		t.Fatalf("warm start from the solution took %d iterations", warmIters)
	}
	if res > 1e-9 {
		t.Fatalf("warm-start residual %g", res)
	}
	// Warm start from a nearby RHS's solution: must beat the cold count.
	b2 := make([]float64, m.N)
	for i := range b2 {
		b2[i] = 1.05
	}
	near := make([]float64, m.N)
	copy(near, cold)
	nearIters, _, err := c.Solve(b2, near)
	if err != nil {
		t.Fatal(err)
	}
	if nearIters >= coldIters {
		t.Fatalf("warm start (%d iterations) no better than cold start (%d)", nearIters, coldIters)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := laplacian1D(10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 3 // stale warm-start content must be cleared
	}
	iters, res, err := NewCG(m, CGOptions{}).Solve(make([]float64, 10), x)
	if err != nil || iters != 0 || res != 0 {
		t.Fatalf("zero RHS: iters=%d res=%g err=%v", iters, res, err)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, v)
		}
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	m := laplacian1D(10)
	if _, _, err := NewCG(m, CGOptions{}).Solve(make([]float64, 9), make([]float64, 10)); err == nil {
		t.Fatal("mismatched vector length must fail")
	}
}

func TestCGNotPositiveDefinite(t *testing.T) {
	m := laplacian1D(5)
	for i := range m.Diag {
		m.Diag[i] = -2 // makes the matrix negative definite
	}
	b := []float64{1, 1, 1, 1, 1}
	if _, _, err := NewCG(m, CGOptions{}).Solve(b, make([]float64, 5)); err == nil {
		t.Fatal("negative-definite system must be rejected")
	}
}

func TestCGMaxIterations(t *testing.T) {
	m := laplacian2D(20, 20)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i % 7)
	}
	_, _, err := NewCG(m, CGOptions{MaxIterations: 2, Tolerance: 1e-14}).Solve(b, make([]float64, m.N))
	if err == nil {
		t.Fatal("unreachable tolerance within 2 iterations must error")
	}
}

func TestCGReuseAfterMatrixValueChange(t *testing.T) {
	// The thermal solver refreshes matrix values in place when the die
	// geometry changes; the bound CG must pick the new values up.
	m := laplacian2D(15, 15)
	c := NewCG(m, CGOptions{Workers: 1})
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x1 := make([]float64, m.N)
	if _, _, err := c.Solve(b, x1); err != nil {
		t.Fatal(err)
	}
	for i := range m.Diag {
		m.Diag[i] *= 2
	}
	for i := range m.Val {
		m.Val[i] *= 2
	}
	x2 := make([]float64, m.N)
	copy(x2, x1) // warm start from the old solution
	if _, _, err := c.Solve(b, x2); err != nil {
		t.Fatal(err)
	}
	if got := residualNorm(m, b, x2); got > 1e-8 {
		t.Fatalf("solution stale after value refresh: residual %g", got)
	}
	// Scaling A by 2 halves the solution.
	for i := range x2 {
		if math.Abs(x2[i]-x1[i]/2) > 1e-6 {
			t.Fatalf("x2[%d] = %g, want %g", i, x2[i], x1[i]/2)
		}
	}
}

func TestWorkersAutoCap(t *testing.T) {
	// In auto mode tiny systems must not spin up a pool at all.
	if w := NewCG(laplacian1D(100), CGOptions{}).Workers(); w != 1 {
		t.Fatalf("100-row system got %d workers in auto mode, want 1", w)
	}
}
