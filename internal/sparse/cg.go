package sparse

import (
	"context"
	"fmt"
	"math"

	"thermplace/internal/fault"
)

// Preconditioner approximates the inverse of the solver's matrix. Apply must
// implement a fixed symmetric positive-definite linear operation (the same
// operator on every call) for the preconditioned conjugate-gradient
// iteration to converge; warm state of any kind inside Apply would silently
// break CG's orthogonality recurrences.
type Preconditioner interface {
	// Apply sets z ≈ A⁻¹r. r must not be modified.
	Apply(r, z []float64)
}

// CtxPreconditioner is a Preconditioner that can abort mid-application when
// a context fires. SolveCtx prefers ApplyCtx when the preconditioner
// implements it, so a cancellation lands inside an expensive application
// (e.g. between multigrid cycles) rather than only between CG iterations.
// When the context never fires, ApplyCtx must be exactly Apply.
type CtxPreconditioner interface {
	Preconditioner
	// ApplyCtx sets z ≈ A⁻¹r, or returns a fault.ErrCanceled-matching error
	// (leaving z unspecified) once ctx fires.
	ApplyCtx(ctx context.Context, r, z []float64) error
}

// CGOptions tunes the conjugate-gradient solver.
type CGOptions struct {
	// Tolerance is the relative residual ||b - A*x|| / ||b|| at which the
	// iteration stops. Zero means the default of 1e-9.
	Tolerance float64
	// MaxIterations bounds the iteration count. Zero means 10*N.
	MaxIterations int
	// Workers is the number of goroutines used for matrix-vector products
	// and reductions; an explicit value is honored as given (clamped to the
	// shared Pool's size when one is supplied). Zero picks GOMAXPROCS,
	// capped so every worker owns at least minRowsPerWorker rows. 1 runs
	// everything on the calling goroutine.
	Workers int
	// Precond replaces the built-in Jacobi (diagonal) preconditioner. The
	// multigrid preconditioner in this package (MG) drops the iteration
	// count of large structured systems several-fold; nil keeps Jacobi.
	Precond Preconditioner
	// Pool is an existing worker pool to run on, so a solver stack (CG plus
	// a multigrid preconditioner) shares one set of goroutines. Nil makes
	// the CG own a private pool, released by Close; a shared pool is left
	// running — its owner closes it.
	Pool *Pool
}

// minRowsPerWorker keeps the per-iteration synchronization cost well below
// the arithmetic cost of a worker's row range.
const minRowsPerWorker = 4096

// padStride spaces the per-worker partial sums one cache line apart.
const padStride = 8

// CG is a reusable preconditioned conjugate-gradient solver bound to one
// matrix (Jacobi by default, or the Preconditioner given in the options).
// The scratch vectors and the worker pool live as long as the solver: the
// pool goroutines are started on the first parallel Solve and then parked
// between solves, so repeated warm-started re-solves pay neither allocation
// nor goroutine startup. Call Close to release the pool when the solver is
// no longer needed; a closed solver still works, serially. A CG value is
// not safe for concurrent use.
type CG struct {
	m   *SymCSR
	opt CGOptions

	r, z, p, ap []float64

	// Per-solve state shared with the workers. The barrier in Pool.Run
	// orders writes to alpha/beta/b/x before the workers read them.
	b, x        []float64
	alpha, beta float64

	workers int
	bounds  []int
	// pool runs the partitioned ops; tasks is one prebuilt closure per op
	// code so a solve allocates nothing per iteration. ownPool marks a
	// private pool that Close releases (a shared pool outlives the CG).
	pool    *Pool
	ownPool bool
	tasks   [opCount]func(w int) float64
}

// Worker op codes.
const (
	opResidual = iota // r = b - A*x, partial r·r
	opMatVec          // ap = A*p
	opDotPAp          // partial p·ap
	opUpdateXR        // x += alpha*p, r -= alpha*ap, partial r·r
	opPrecond         // z = r / diag, partial r·z
	opUpdateP         // p = z + beta*p
	opDotRZ           // partial r·z (external preconditioner)
	opCount
)

// NewCG builds a solver for m. The matrix may be modified between Solve
// calls (for example when the grid geometry changes) as long as its pattern
// dimensions stay the same.
func NewCG(m *SymCSR, opt CGOptions) *CG {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-9
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 10 * m.N
	}
	w := opt.Workers
	if w <= 0 {
		w = AutoWorkers(m.N)
	}
	if opt.Pool != nil && w > opt.Pool.Workers() {
		w = opt.Pool.Workers()
	}
	if w > m.N {
		w = m.N
	}
	if w < 1 {
		w = 1
	}
	c := &CG{
		m:       m,
		opt:     opt,
		r:       make([]float64, m.N),
		z:       make([]float64, m.N),
		p:       make([]float64, m.N),
		ap:      make([]float64, m.N),
		workers: w,
	}
	if w > 1 {
		c.bounds = chunkBounds(m.N, w)
		if opt.Pool != nil {
			c.pool = opt.Pool
		} else {
			c.pool = NewPool(w)
			c.ownPool = true
		}
		for op := 0; op < opCount; op++ {
			op := op
			c.tasks[op] = func(w int) float64 {
				return c.runRange(op, c.bounds[w], c.bounds[w+1])
			}
		}
	}
	return c
}

// Workers returns the degree of parallelism the solver settled on.
func (c *CG) Workers() int { return c.workers }

// SetPrecond replaces the preconditioner for subsequent solves (nil restores
// the built-in Jacobi). The thermal solver's degradation path uses it to
// retry a non-converged multigrid-preconditioned solve on plain Jacobi.
func (c *CG) SetPrecond(p Preconditioner) { c.opt.Precond = p }

// MaxIterations returns the current iteration budget.
func (c *CG) MaxIterations() int { return c.opt.MaxIterations }

// SetMaxIterations replaces the iteration budget for subsequent solves;
// n <= 0 is ignored.
func (c *CG) SetMaxIterations(n int) {
	if n > 0 {
		c.opt.MaxIterations = n
	}
}

// Close stops the persistent worker goroutines of a privately owned pool
// (a shared CGOptions.Pool is left running for its owner to close).
// Subsequent Solve calls still work but run serially on the calling
// goroutine. Close is idempotent.
func (c *CG) Close() {
	if c.ownPool {
		c.pool.Close()
	}
}

// Solve solves A*x = b, using the incoming contents of x as the initial
// guess (warm start). On success x holds the solution; it returns the
// iteration count and the final relative residual. It is SolveCtx with a
// context that never fires.
func (c *CG) Solve(b, x []float64) (iters int, residual float64, err error) {
	return c.SolveCtx(context.Background(), b, x)
}

// SolveCtx is Solve with cancellation: the context is checked once per CG
// iteration (and, with a CtxPreconditioner, once per preconditioner cycle),
// so even a large solve aborts within a few matrix-vector products of the
// context firing. An abort returns an error matching fault.ErrCanceled and
// leaves x mid-iteration — do not warm-start from it. When the context never
// fires, the iteration is bit-identical to Solve.
//
// A panic inside the solve — in a worker task, or in the preconditioner —
// is contained and returned as a located *fault.ErrPanic instead of
// crashing the caller; the solver and its pool remain usable.
func (c *CG) SolveCtx(ctx context.Context, b, x []float64) (iters int, residual float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			iters, residual = 0, 0
			err = fault.Recovered("sparse.CG.Solve", v)
		}
	}()
	n := c.m.N
	if len(b) != n || len(x) != n {
		return 0, 0, fmt.Errorf("sparse: vector length %d/%d does not match matrix size %d", len(b), len(x), n)
	}
	bnorm2 := 0.0
	for _, v := range b {
		bnorm2 += v * v
	}
	if bnorm2 == 0 {
		// A is positive definite, so the unique solution is x = 0.
		for i := range x {
			x[i] = 0
		}
		return 0, 0, nil
	}
	bnorm := math.Sqrt(bnorm2)

	c.b, c.x = b, x
	defer func() { c.b, c.x = nil, nil }()

	// done != nil only for cancelable contexts: Background/TODO skip the
	// per-iteration check entirely, keeping the never-fires path free.
	done := ctx.Done()

	rr := c.run(opResidual)
	residual = math.Sqrt(rr) / bnorm
	if residual <= c.opt.Tolerance {
		return 0, residual, nil
	}
	rz, perr := c.precond(ctx)
	if perr != nil {
		return 0, residual, perr
	}
	copy(c.p, c.z)
	for iters = 1; iters <= c.opt.MaxIterations; iters++ {
		if done != nil {
			if cerr := ctx.Err(); cerr != nil {
				return iters - 1, residual, fault.Canceled(cerr)
			}
		}
		c.run(opMatVec)
		pap := c.run(opDotPAp)
		if pap <= 0 {
			return iters, residual, fmt.Errorf("sparse: CG breakdown (non-positive curvature); matrix not positive definite")
		}
		c.alpha = rz / pap
		rr = c.run(opUpdateXR)
		residual = math.Sqrt(rr) / bnorm
		if residual <= c.opt.Tolerance {
			return iters, residual, nil
		}
		rzNew, perr := c.precond(ctx)
		if perr != nil {
			return iters, residual, perr
		}
		c.beta = rzNew / rz
		rz = rzNew
		c.run(opUpdateP)
	}
	return c.opt.MaxIterations, residual, fmt.Errorf("sparse: CG: %w",
		&fault.ErrNotConverged{Iters: c.opt.MaxIterations, Residual: residual})
}

// precond computes z = M⁻¹r and returns r·z: fused with the reduction for
// the built-in Jacobi, a preconditioner call plus a reduction pass
// otherwise. A CtxPreconditioner is given the context so cancellation can
// land between its internal cycles.
func (c *CG) precond(ctx context.Context) (float64, error) {
	if c.opt.Precond == nil {
		return c.run(opPrecond), nil
	}
	if cp, ok := c.opt.Precond.(CtxPreconditioner); ok && ctx.Done() != nil {
		if err := cp.ApplyCtx(ctx, c.r, c.z); err != nil {
			return 0, err
		}
	} else {
		c.opt.Precond.Apply(c.r, c.z)
	}
	return c.run(opDotRZ), nil
}

// run executes one op over all rows, either inline or on the worker pool,
// and returns the summed partial result (0 for ops without a reduction).
func (c *CG) run(op int) float64 {
	if !c.pool.Parallel(c.workers) {
		return c.runRange(op, 0, c.m.N)
	}
	return c.pool.Run(c.workers, c.tasks[op])
}

// runRange executes one op over rows [lo, hi) and returns its partial sum.
func (c *CG) runRange(op, lo, hi int) float64 {
	switch op {
	case opResidual:
		return c.m.residualRange(c.b, c.x, c.r, lo, hi)
	case opMatVec:
		c.m.matVecRange(c.p, c.ap, lo, hi)
	case opDotPAp:
		s := 0.0
		for i := lo; i < hi; i++ {
			s += c.p[i] * c.ap[i]
		}
		return s
	case opUpdateXR:
		alpha, s := c.alpha, 0.0
		x, r, p, ap := c.x, c.r, c.p, c.ap
		for i := lo; i < hi; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			s += r[i] * r[i]
		}
		return s
	case opPrecond:
		s := 0.0
		r, z, diag := c.r, c.z, c.m.Diag
		for i := lo; i < hi; i++ {
			z[i] = r[i] / diag[i]
			s += r[i] * z[i]
		}
		return s
	case opUpdateP:
		beta := c.beta
		p, z := c.p, c.z
		for i := lo; i < hi; i++ {
			p[i] = z[i] + beta*p[i]
		}
	case opDotRZ:
		s := 0.0
		r, z := c.r, c.z
		for i := lo; i < hi; i++ {
			s += r[i] * z[i]
		}
		return s
	}
	return 0
}
