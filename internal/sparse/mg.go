package sparse

import (
	"context"
	"fmt"
	"math"

	"thermplace/internal/fault"
)

// MGOptions tunes the geometric multigrid preconditioner.
type MGOptions struct {
	// PreSmooth and PostSmooth are the number of Gauss-Seidel sweeps before
	// and after the coarse-grid correction. Zero means 1. The cycle is only
	// a symmetric operator (a CG requirement) when the two are equal, so
	// NewMG rejects unequal non-zero values.
	PreSmooth, PostSmooth int
	// CoarsestN stops the coarsening once a level has at most this many
	// unknowns; that level is solved directly by dense Cholesky. Zero means
	// 128: the factorization is O(n³) and runs on every Refresh, and the
	// W-cycle hits the coarsest level 2^(levels-1) times per application,
	// so a small direct level beats a shallow hierarchy on both counts.
	CoarsestN int
	// VCycle selects the plain V-cycle (one coarse-grid correction per
	// level). The default is the W-cycle — two corrections per level —
	// whose iteration counts stay flat as the grid grows; with 4x
	// coarsening per level it costs only ~2x the fine-grid work of a
	// V-cycle.
	VCycle bool
	// Pool runs the red-black smoother, residual and prolongation of the
	// large levels on a shared worker pool (typically the same pool as the
	// enclosing CG). Rows of one color never read each other, so the
	// parallel sweeps are bit-identical to the serial ones for any worker
	// count. Nil keeps every level serial. The pool is never closed by the
	// MG; its owner closes it.
	Pool *Pool
}

// MG is a geometric multigrid V-cycle specialized to the 7-point stencil of
// an nx-by-ny-by-nl structured grid (node (l, ix, iy) at (l*ny+iy)*nx + ix,
// the layout of NewStencil7 and of the thermal solver). It implements
// Preconditioner, so it plugs into CG via CGOptions.Precond.
//
// The hierarchy coarsens 2x in x and y while keeping all nl layers — the
// thermal stack has only a handful of layers and carries the strong
// boundary coupling, so flattening it buys nothing. Each coarse operator is
// the Galerkin product PᵀAP with piecewise-constant interpolation over the
// 2x2 cell aggregates, which keeps every level a 7-point stencil on the
// same SymCSR layout (each fine off-diagonal either crosses to exactly one
// neighbouring aggregate or collapses onto the coarse diagonal). Smoothing
// is red-black Gauss-Seidel — the 7-point stencil is bipartite under
// (ix+iy+l) parity — applied red-then-black before the correction and
// black-then-red after, which makes the V-cycle a fixed symmetric
// positive-definite operator as CG requires. The coarsest level is solved
// exactly by dense Cholesky.
//
// The fine matrix is referenced, not copied: after changing its values
// (e.g. a die-geometry refresh), call Refresh to rebuild the coarse
// operators and the coarsest factorization. The sparsity-dependent setup
// (aggregates, Galerkin scatter targets, red-black ordering) is computed
// once in NewMG; Refresh is a single O(nnz) accumulation pass per level.
// An MG value is not safe for concurrent use.
type MG struct {
	levels []*mgLevel
	opt    MGOptions

	// ctx and ctxErr carry the cancellation state of an ApplyCtx in flight:
	// cycle checks ctx at every level entry and records the abort in ctxErr,
	// unwinding without touching the remaining levels. Both are nil for
	// plain Apply.
	ctx    context.Context
	ctxErr error
}

type mgLevel struct {
	nx, ny, nl int
	m          *SymCSR

	// red and black split the rows by (ix+iy+l) parity for the smoother.
	red, black []int32

	// b, x and r are the per-level right-hand side, iterate and residual;
	// r2 and x2 carry the second correction of a W-cycle. Each is only
	// allocated on the levels that use it (level 0 works on the caller's
	// vectors, the coarsest level never computes a residual, and only
	// intermediate levels take a W-cycle second correction).
	b, x, r, r2, x2 []float64

	// parent maps each node to its aggregate on the next-coarser level;
	// offTarget maps each off-diagonal entry to the coarse Val index it
	// accumulates into, or to ^diagIndex when the entry is internal to an
	// aggregate and collapses onto the coarse diagonal. Both are nil on the
	// coarsest level.
	parent    []int32
	offTarget []int32

	// chol is the dense lower-triangular Cholesky factor of the coarsest
	// level (row-major n*n), nil elsewhere.
	chol []float64

	// pool and kw enable kw-way parallel smoothing/residual/prolongation on
	// this level (nil/0 on levels too small to split). curB/curX/curR/curCX
	// carry the vectors of the operation in flight to the prebuilt tasks,
	// which partition work by the precomputed bounds; the red-black
	// independence of the 7-point stencil makes every parallel sweep
	// bit-identical to the serial one.
	pool                              *Pool
	kw                                int
	redBounds, blackBounds, rowBounds []int
	curB, curX, curR, curCX           []float64
	redTask, blackTask, zeroRedTask   func(w int) float64
	residTask, prolongTask            func(w int) float64
}

// NewMG builds the multigrid hierarchy for m, which must be the 7-point
// stencil of an nx-by-ny-by-nl grid in NewStencil7 layout. Matrix values
// may still be zero at this point; call Refresh once they are filled (and
// again after every in-place value change).
func NewMG(m *SymCSR, nx, ny, nl int, opt MGOptions) (*MG, error) {
	if nx < 1 || ny < 1 || nl < 1 || nx*ny*nl != m.N {
		return nil, &fault.ErrSetup{Stage: "grid",
			Err: fmt.Errorf("sparse: MG grid %dx%dx%d does not match matrix size %d", nx, ny, nl, m.N)}
	}
	if opt.PreSmooth <= 0 {
		opt.PreSmooth = 1
	}
	// A cycle with unequal pre/post smoothing is not a symmetric operator;
	// CG would silently diverge. Reject the misconfiguration instead of
	// ignoring the field.
	if opt.PostSmooth > 0 && opt.PostSmooth != opt.PreSmooth {
		return nil, &fault.ErrSetup{Stage: "smoother",
			Err: fmt.Errorf("sparse: MG needs PostSmooth == PreSmooth for a symmetric cycle (got %d/%d)", opt.PreSmooth, opt.PostSmooth)}
	}
	opt.PostSmooth = opt.PreSmooth
	if opt.CoarsestN <= 0 {
		opt.CoarsestN = 128
	}

	g := &MG{opt: opt}
	lv := newMGLevel(m, nx, ny, nl)
	g.levels = append(g.levels, lv)
	for lv.m.N > opt.CoarsestN {
		nxc, nyc := (lv.nx+1)/2, (lv.ny+1)/2
		if nxc*nyc*lv.nl >= lv.m.N {
			break // cannot coarsen further (nx = ny = 1)
		}
		coarse := newMGLevel(NewStencil7(nxc, nyc, lv.nl), nxc, nyc, lv.nl)
		if err := lv.buildCoarsening(coarse); err != nil {
			return nil, &fault.ErrSetup{Stage: "coarsen", Err: err}
		}
		g.levels = append(g.levels, coarse)
		lv = coarse
	}
	last := len(g.levels) - 1
	g.levels[last].chol = make([]float64, g.levels[last].m.N*g.levels[last].m.N)
	for i, lv := range g.levels {
		n := lv.m.N
		if i > 0 {
			// Restriction target and coarse iterate, written by the parent
			// level; level 0 works on the caller's r/z directly.
			lv.b = make([]float64, n)
			lv.x = make([]float64, n)
		}
		if i < last {
			lv.r = make([]float64, n) // residual before restriction
		}
		if i > 0 && i < last {
			// Second W-cycle correction; the coarsest solve is exact, so
			// it never takes one.
			lv.r2 = make([]float64, n)
			lv.x2 = make([]float64, n)
		}
	}
	if opt.Pool != nil && opt.Pool.Workers() > 1 {
		for _, lv := range g.levels {
			lv.setupPool(opt.Pool)
		}
	}
	return g, nil
}

// chunkBounds splits [0, n) into k contiguous ranges.
func chunkBounds(n, k int) []int {
	b := make([]int, k+1)
	for i := 0; i <= k; i++ {
		b[i] = i * n / k
	}
	return b
}

// setupPool attaches the shared pool to a level large enough to benefit and
// prebuilds the partitioned tasks so a cycle allocates nothing.
func (lv *mgLevel) setupPool(p *Pool) {
	k := p.Workers()
	if byRows := lv.m.N / minRowsPerWorker; k > byRows {
		k = byRows
	}
	if k < 2 || lv.chol != nil {
		return
	}
	lv.pool = p
	lv.kw = k
	lv.redBounds = chunkBounds(len(lv.red), k)
	lv.blackBounds = chunkBounds(len(lv.black), k)
	lv.rowBounds = chunkBounds(lv.m.N, k)
	lv.redTask = func(w int) float64 {
		lv.gsRows(lv.curB, lv.curX, lv.red[lv.redBounds[w]:lv.redBounds[w+1]])
		return 0
	}
	lv.blackTask = func(w int) float64 {
		lv.gsRows(lv.curB, lv.curX, lv.black[lv.blackBounds[w]:lv.blackBounds[w+1]])
		return 0
	}
	lv.zeroRedTask = func(w int) float64 {
		b, x, diag := lv.curB, lv.curX, lv.m.Diag
		for _, i := range lv.red[lv.redBounds[w]:lv.redBounds[w+1]] {
			x[i] = b[i] / diag[i]
		}
		return 0
	}
	lv.residTask = func(w int) float64 {
		lv.m.residualRange(lv.curB, lv.curX, lv.curR, lv.rowBounds[w], lv.rowBounds[w+1])
		return 0
	}
	lv.prolongTask = func(w int) float64 {
		x, cx := lv.curX, lv.curCX
		for i := lv.rowBounds[w]; i < lv.rowBounds[w+1]; i++ {
			x[i] += cx[lv.parent[i]]
		}
		return 0
	}
}

func newMGLevel(m *SymCSR, nx, ny, nl int) *mgLevel {
	lv := &mgLevel{nx: nx, ny: ny, nl: nl, m: m}
	for l := 0; l < nl; l++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := int32((l*ny+iy)*nx + ix)
				if (ix+iy+l)%2 == 0 {
					lv.red = append(lv.red, i)
				} else {
					lv.black = append(lv.black, i)
				}
			}
		}
	}
	return lv
}

// Aggregate returns the piecewise-constant aggregation map from a fine
// nx-by-ny-by-nl grid onto a coarse cnx-by-cny grid with the same nl layers:
// out[i] is the coarse node of fine node i, both in the (l*ny+iy)*nx + ix
// layout of NewStencil7. Fine cell ix lands in coarse cell ix*cnx/nx (the
// proportional map), which for cnx = ceil(nx/2) is exactly the 2x-coarsened
// aggregate map of the MG hierarchy — MG's buildCoarsening and the thermal
// solver's CoarseFactor power-map restriction both go through it, so a
// downsampled operator and the hierarchy's own coarse levels agree on which
// fine cells pool together.
func Aggregate(nx, ny, nl, cnx, cny int) []int32 {
	parent := make([]int32, nx*ny*nl)
	for l := 0; l < nl; l++ {
		for iy := 0; iy < ny; iy++ {
			ciy := iy * cny / ny
			for ix := 0; ix < nx; ix++ {
				parent[(l*ny+iy)*nx+ix] = int32((l*cny+ciy)*cnx + ix*cnx/nx)
			}
		}
	}
	return parent
}

// Restrict applies the transpose of piecewise-constant interpolation: coarse
// is zeroed and every fine entry is summed into its aggregate, in fine-index
// order (float addition order is fixed, so the result is reproducible). This
// is the restriction MG's cycle applies to residuals, exported for callers
// that downsample grid-shaped data (power maps) with the same operator.
func Restrict(fine []float64, parent []int32, coarse []float64) {
	for i := range coarse {
		coarse[i] = 0
	}
	for i, p := range parent {
		coarse[p] += fine[i]
	}
}

// buildCoarsening computes the aggregate map onto coarse and the Galerkin
// scatter target of every fine off-diagonal entry. It reports an error —
// rather than panicking — when the matrix is not the 7-point stencil of the
// claimed grid (every crossing link of a true stencil lands on a 7-point
// coarse neighbour by construction, so a miss means the caller's geometry
// and matrix disagree).
func (lv *mgLevel) buildCoarsening(coarse *mgLevel) error {
	lv.parent = Aggregate(lv.nx, lv.ny, lv.nl, coarse.nx, coarse.ny)
	cm := coarse.m
	lv.offTarget = make([]int32, len(lv.m.Col))
	for i := 0; i < lv.m.N; i++ {
		pi := lv.parent[i]
		for k := lv.m.RowPtr[i]; k < lv.m.RowPtr[i+1]; k++ {
			pj := lv.parent[lv.m.Col[k]]
			if pi == pj {
				lv.offTarget[k] = ^pi
				continue
			}
			t := int32(-1)
			for ck := cm.RowPtr[pi]; ck < cm.RowPtr[pi+1]; ck++ {
				if cm.Col[ck] == pj {
					t = ck
					break
				}
			}
			if t < 0 {
				return fmt.Errorf("sparse: MG coarse entry (%d,%d) missing: matrix is not the 7-point stencil of a %dx%dx%d grid",
					pi, pj, lv.nx, lv.ny, lv.nl)
			}
			lv.offTarget[k] = t
		}
	}
	return nil
}

// Refresh rebuilds the coarse-level operators from the current fine-matrix
// values (Galerkin products level by level) and refactorizes the coarsest
// level. Call it after every in-place change to the fine matrix values.
func (g *MG) Refresh() error {
	for l := 0; l+1 < len(g.levels); l++ {
		fine, coarse := g.levels[l], g.levels[l+1]
		cd, cv := coarse.m.Diag, coarse.m.Val
		for i := range cd {
			cd[i] = 0
		}
		for i := range cv {
			cv[i] = 0
		}
		for i, p := range fine.parent {
			cd[p] += fine.m.Diag[i]
		}
		for k, t := range fine.offTarget {
			if t >= 0 {
				cv[t] += fine.m.Val[k]
			} else {
				cd[^t] += fine.m.Val[k]
			}
		}
	}
	if err := g.levels[len(g.levels)-1].factorize(); err != nil {
		return &fault.ErrSetup{Stage: "factorize", Err: err}
	}
	return nil
}

// factorize computes the dense Cholesky factor of the coarsest operator.
func (lv *mgLevel) factorize() error {
	n := lv.m.N
	a := lv.chol
	for i := range a {
		a[i] = 0
	}
	for i := 0; i < n; i++ {
		a[i*n+i] = lv.m.Diag[i]
		for k := lv.m.RowPtr[i]; k < lv.m.RowPtr[i+1]; k++ {
			a[i*n+int(lv.m.Col[k])] = lv.m.Val[k]
		}
	}
	// In-place lower Cholesky.
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 {
			return fmt.Errorf("sparse: MG coarsest level not positive definite (pivot %d: %g)", j, d)
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	return nil
}

// solveDirect solves the coarsest system by forward/back substitution.
func (lv *mgLevel) solveDirect(b, x []float64) {
	n := lv.m.N
	a := lv.chol
	// L y = b
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * x[k]
		}
		x[i] = s / a[i*n+i]
	}
	// Lᵀ x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * x[k]
		}
		x[i] = s / a[i*n+i]
	}
}

// Apply runs one V-cycle on r: z = B·r with B the fixed SPD multigrid
// operator. r is left untouched. It delegates to ApplyCtx with a background
// context, whose nil-Done fast path is exactly the uninstrumented cycle.
func (g *MG) Apply(r, z []float64) {
	_ = g.ApplyCtx(context.Background(), r, z)
}

// ApplyCtx is Apply with cancellation: the context is checked at every level
// entry of the (recursive) cycle, so an abort lands within one smoothing
// sweep of the context firing even on the largest grids. On cancellation it
// returns an error matching fault.ErrCanceled and leaves z unspecified; the
// enclosing CG iteration discards it and aborts. With a context that never
// fires, ApplyCtx is exactly Apply.
func (g *MG) ApplyCtx(ctx context.Context, r, z []float64) error {
	if ctx.Done() == nil {
		g.cycle(0, r, z)
		return nil
	}
	g.ctx, g.ctxErr = ctx, nil
	g.cycle(0, r, z)
	err := g.ctxErr
	g.ctx, g.ctxErr = nil, nil
	return err
}

// Levels returns the depth of the hierarchy (1 = direct solve only).
func (g *MG) Levels() int { return len(g.levels) }

// cycle runs the V-cycle at one level: x = (approximate A⁻¹)·b with a zero
// initial iterate.
func (g *MG) cycle(l int, b, x []float64) {
	if g.ctx != nil {
		if g.ctxErr != nil {
			return // already aborted: unwind without more work
		}
		if cerr := g.ctx.Err(); cerr != nil {
			g.ctxErr = fault.Canceled(cerr)
			return
		}
	}
	lv := g.levels[l]
	if lv.chol != nil {
		lv.solveDirect(b, x)
		return
	}
	// The cycle starts from a zero iterate, so the first red half-sweep
	// collapses to x = b/diag; it writes every red row and the black
	// half-sweep only reads red neighbours (the stencil is bipartite), so
	// no explicit zeroing of x is needed.
	lv.zeroRed(b, x)
	lv.gsPass(b, x, black)
	for s := 1; s < g.opt.PreSmooth; s++ {
		lv.gsPass(b, x, red)
		lv.gsPass(b, x, black)
	}
	lv.residual(b, x, lv.r)
	next := g.levels[l+1]
	Restrict(lv.r, lv.parent, next.b)
	g.cycle(l+1, next.b, next.x)
	if !g.opt.VCycle && next.chol == nil {
		// W-cycle: a second correction against the coarse residual. The
		// compound step v + M(b - Av) is still a fixed symmetric
		// positive-definite operator (error propagation (I-MA)²), so CG
		// stays valid.
		next.residual(next.b, next.x, next.r2)
		g.cycle(l+1, next.r2, next.x2)
		for i, v := range next.x2 {
			next.x[i] += v
		}
	}
	lv.prolong(x, next.x)
	for s := 0; s < g.opt.PostSmooth; s++ {
		lv.gsPass(b, x, black)
		lv.gsPass(b, x, red)
	}
}

// Color classes of the red-black smoother.
const (
	red = iota
	black
)

// zeroRed runs the zero-iterate shortcut of the first red half-sweep.
func (lv *mgLevel) zeroRed(b, x []float64) {
	if lv.pool.Parallel(lv.kw) {
		lv.curB, lv.curX = b, x
		lv.pool.Run(lv.kw, lv.zeroRedTask)
		return
	}
	for _, i := range lv.red {
		x[i] = b[i] / lv.m.Diag[i]
	}
}

// gsPass runs one Gauss-Seidel half-sweep over the given color class,
// partitioned across the pool workers on levels that carry one. Rows of one
// color only read the other color's entries, so the result is identical for
// any partition.
func (lv *mgLevel) gsPass(b, x []float64, color int) {
	if lv.pool.Parallel(lv.kw) {
		lv.curB, lv.curX = b, x
		if color == red {
			lv.pool.Run(lv.kw, lv.redTask)
		} else {
			lv.pool.Run(lv.kw, lv.blackTask)
		}
		return
	}
	if color == red {
		lv.gsRows(b, x, lv.red)
	} else {
		lv.gsRows(b, x, lv.black)
	}
}

// gsRows applies the Gauss-Seidel update to the given rows.
func (lv *mgLevel) gsRows(b, x []float64, rows []int32) {
	m := lv.m
	for _, i := range rows {
		s := b[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s -= m.Val[k] * x[m.Col[k]]
		}
		x[i] = s / m.Diag[i]
	}
}

// residual computes r = b - A*x, row-partitioned on pooled levels.
func (lv *mgLevel) residual(b, x, r []float64) {
	if lv.pool.Parallel(lv.kw) {
		lv.curB, lv.curX, lv.curR = b, x, r
		lv.pool.Run(lv.kw, lv.residTask)
		return
	}
	lv.m.residualRange(b, x, r, 0, lv.m.N)
}

// prolong adds the coarse correction back onto the fine iterate.
func (lv *mgLevel) prolong(x, coarseX []float64) {
	if lv.pool.Parallel(lv.kw) {
		lv.curX, lv.curCX = x, coarseX
		lv.pool.Run(lv.kw, lv.prolongTask)
		return
	}
	for i, p := range lv.parent {
		x[i] += coarseX[p]
	}
}
