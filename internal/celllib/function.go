package celllib

import "fmt"

// Func identifies the boolean function computed by a cell master's output.
// The event-driven logic simulator evaluates these directly, which keeps the
// library and the simulator in a single consistent vocabulary.
type Func int

// Supported cell functions. Input ordering follows the master's input pin
// declaration order (A, B, C, ... / D for flip-flops / S for mux select).
const (
	// FuncNone marks cells with no logic function (filler cells).
	FuncNone Func = iota
	// FuncConst0 drives constant 0 (tie-low cell).
	FuncConst0
	// FuncConst1 drives constant 1 (tie-high cell).
	FuncConst1
	// FuncBuf is a non-inverting buffer.
	FuncBuf
	// FuncInv is an inverter.
	FuncInv
	// FuncAnd2 is a 2-input AND.
	FuncAnd2
	// FuncNand2 is a 2-input NAND.
	FuncNand2
	// FuncNand3 is a 3-input NAND.
	FuncNand3
	// FuncOr2 is a 2-input OR.
	FuncOr2
	// FuncNor2 is a 2-input NOR.
	FuncNor2
	// FuncNor3 is a 3-input NOR.
	FuncNor3
	// FuncXor2 is a 2-input XOR.
	FuncXor2
	// FuncXnor2 is a 2-input XNOR.
	FuncXnor2
	// FuncAoi21 computes !((A & B) | C).
	FuncAoi21
	// FuncOai21 computes !((A | B) & C).
	FuncOai21
	// FuncMux2 computes S ? B : A with inputs (A, B, S).
	FuncMux2
	// FuncMaj3 computes the 3-input majority (full-adder carry).
	FuncMaj3
	// FuncXor3 computes A ^ B ^ C (full-adder sum).
	FuncXor3
	// FuncDFF is a rising-edge D flip-flop; evaluation is handled by the
	// sequential machinery of the simulator, not by Eval.
	FuncDFF
)

var funcNames = map[Func]string{
	FuncNone:   "NONE",
	FuncConst0: "CONST0",
	FuncConst1: "CONST1",
	FuncBuf:    "BUF",
	FuncInv:    "INV",
	FuncAnd2:   "AND2",
	FuncNand2:  "NAND2",
	FuncNand3:  "NAND3",
	FuncOr2:    "OR2",
	FuncNor2:   "NOR2",
	FuncNor3:   "NOR3",
	FuncXor2:   "XOR2",
	FuncXnor2:  "XNOR2",
	FuncAoi21:  "AOI21",
	FuncOai21:  "OAI21",
	FuncMux2:   "MUX2",
	FuncMaj3:   "MAJ3",
	FuncXor3:   "XOR3",
	FuncDFF:    "DFF",
}

var funcByName = func() map[string]Func {
	m := make(map[string]Func, len(funcNames))
	for f, n := range funcNames {
		m[n] = f
	}
	return m
}()

// String returns the canonical textual name of the function.
func (f Func) String() string {
	if n, ok := funcNames[f]; ok {
		return n
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// ParseFunc converts a textual function name back into a Func value.
func ParseFunc(s string) (Func, error) {
	if f, ok := funcByName[s]; ok {
		return f, nil
	}
	return FuncNone, fmt.Errorf("celllib: unknown function %q", s)
}

// NumInputs returns the number of logic inputs the function expects.
// Sequential (DFF) returns 1 (the D pin); clock handling is separate.
func (f Func) NumInputs() int {
	switch f {
	case FuncNone, FuncConst0, FuncConst1:
		return 0
	case FuncBuf, FuncInv, FuncDFF:
		return 1
	case FuncAnd2, FuncNand2, FuncOr2, FuncNor2, FuncXor2, FuncXnor2:
		return 2
	case FuncNand3, FuncNor3, FuncAoi21, FuncOai21, FuncMux2, FuncMaj3, FuncXor3:
		return 3
	default:
		return 0
	}
}

// Eval computes the combinational output for the given input values.
// It panics when the number of inputs does not match NumInputs, which is
// always a netlist-construction bug. FuncDFF must not be evaluated here.
func (f Func) Eval(in []bool) bool {
	if len(in) != f.NumInputs() {
		panic(fmt.Sprintf("celllib: %s expects %d inputs, got %d", f, f.NumInputs(), len(in)))
	}
	switch f {
	case FuncConst0, FuncNone:
		return false
	case FuncConst1:
		return true
	case FuncBuf:
		return in[0]
	case FuncInv:
		return !in[0]
	case FuncAnd2:
		return in[0] && in[1]
	case FuncNand2:
		return !(in[0] && in[1])
	case FuncNand3:
		return !(in[0] && in[1] && in[2])
	case FuncOr2:
		return in[0] || in[1]
	case FuncNor2:
		return !(in[0] || in[1])
	case FuncNor3:
		return !(in[0] || in[1] || in[2])
	case FuncXor2:
		return in[0] != in[1]
	case FuncXnor2:
		return in[0] == in[1]
	case FuncAoi21:
		return !((in[0] && in[1]) || in[2])
	case FuncOai21:
		return !((in[0] || in[1]) && in[2])
	case FuncMux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	case FuncMaj3:
		return (in[0] && in[1]) || (in[1] && in[2]) || (in[0] && in[2])
	case FuncXor3:
		return in[0] != in[1] != in[2]
	case FuncDFF:
		panic("celllib: FuncDFF is sequential and cannot be combinationally evaluated")
	default:
		panic(fmt.Sprintf("celllib: cannot evaluate %v", f))
	}
}
