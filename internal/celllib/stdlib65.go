package celllib

// Default65nm returns the built-in synthetic 65 nm-class library used by the
// benchmark generator and the examples.
//
// Numbers are calibrated to publicly known 65 nm low-power library ballparks:
// row height 2.0 um, site width 0.2 um, Vdd 1.0 V, input pin capacitance
// around 1-2 fF, per-switch internal energy of a few femtojoules and leakage
// of tens of nanowatts per gate. Absolute accuracy is not required by the
// reproduction (the paper reports only relative temperature reductions); the
// library only has to produce realistic relative power densities.
func Default65nm() *Library {
	lib := NewLibrary("core65lite", 2.0, 0.2, 1.0)
	lib.WireCapPerUm = 0.2 // fF / um
	lib.WireResPerUm = 1.0 // ohm / um

	inPin := func(name string, capFF float64) Pin { return Pin{Name: name, Dir: Input, Cap: capFF} }
	outPin := func(name string) Pin { return Pin{Name: name, Dir: Output} }

	type spec struct {
		name      string
		width     float64 // um
		fn        Func
		inputs    []Pin
		driveRes  float64 // kOhm
		intrinsic float64 // ps
		leakage   float64 // nW
		energy    float64 // fJ per output switch
		seq       bool
	}

	combo := []spec{
		{"INV_X1", 0.6, FuncInv, []Pin{inPin("A", 1.2)}, 4.5, 10, 10, 1.0, false},
		{"INV_X2", 0.8, FuncInv, []Pin{inPin("A", 2.4)}, 2.3, 9, 18, 1.8, false},
		{"INV_X4", 1.2, FuncInv, []Pin{inPin("A", 4.8)}, 1.2, 8, 34, 3.4, false},
		{"BUF_X1", 1.0, FuncBuf, []Pin{inPin("A", 1.3)}, 3.8, 22, 16, 1.8, false},
		{"BUF_X2", 1.4, FuncBuf, []Pin{inPin("A", 2.5)}, 2.0, 20, 28, 3.0, false},
		{"NAND2_X1", 0.8, FuncNand2, []Pin{inPin("A", 1.4), inPin("B", 1.4)}, 5.0, 14, 14, 1.5, false},
		{"NAND2_X2", 1.2, FuncNand2, []Pin{inPin("A", 2.7), inPin("B", 2.7)}, 2.6, 13, 26, 2.7, false},
		{"NAND3_X1", 1.0, FuncNand3, []Pin{inPin("A", 1.5), inPin("B", 1.5), inPin("C", 1.5)}, 5.6, 18, 18, 2.0, false},
		{"NOR2_X1", 0.8, FuncNor2, []Pin{inPin("A", 1.4), inPin("B", 1.4)}, 5.4, 15, 13, 1.5, false},
		{"NOR3_X1", 1.0, FuncNor3, []Pin{inPin("A", 1.5), inPin("B", 1.5), inPin("C", 1.5)}, 6.2, 20, 17, 2.0, false},
		{"AND2_X1", 1.0, FuncAnd2, []Pin{inPin("A", 1.3), inPin("B", 1.3)}, 4.8, 24, 17, 2.1, false},
		{"OR2_X1", 1.0, FuncOr2, []Pin{inPin("A", 1.3), inPin("B", 1.3)}, 4.9, 25, 17, 2.1, false},
		{"XOR2_X1", 1.6, FuncXor2, []Pin{inPin("A", 2.0), inPin("B", 2.0)}, 5.2, 30, 28, 3.6, false},
		{"XNOR2_X1", 1.6, FuncXnor2, []Pin{inPin("A", 2.0), inPin("B", 2.0)}, 5.2, 30, 28, 3.6, false},
		{"AOI21_X1", 1.2, FuncAoi21, []Pin{inPin("A", 1.5), inPin("B", 1.5), inPin("C", 1.6)}, 5.5, 19, 19, 2.2, false},
		{"OAI21_X1", 1.2, FuncOai21, []Pin{inPin("A", 1.5), inPin("B", 1.5), inPin("C", 1.6)}, 5.5, 19, 19, 2.2, false},
		{"MUX2_X1", 1.8, FuncMux2, []Pin{inPin("A", 1.6), inPin("B", 1.6), inPin("S", 2.2)}, 5.0, 28, 30, 3.2, false},
		{"MAJ3_X1", 2.0, FuncMaj3, []Pin{inPin("A", 1.8), inPin("B", 1.8), inPin("C", 1.8)}, 5.4, 32, 32, 3.8, false},
		{"XOR3_X1", 2.4, FuncXor3, []Pin{inPin("A", 2.2), inPin("B", 2.2), inPin("C", 2.2)}, 5.8, 40, 40, 5.0, false},
		{"TIE0_X1", 0.6, FuncConst0, nil, 8.0, 0, 4, 0.1, false},
		{"TIE1_X1", 0.6, FuncConst1, nil, 8.0, 0, 4, 0.1, false},
		{"DFF_X1", 3.6, FuncDFF, []Pin{inPin("D", 1.6), inPin("CK", 1.0)}, 4.6, 55, 60, 6.5, true},
		{"DFF_X2", 4.2, FuncDFF, []Pin{inPin("D", 2.8), inPin("CK", 1.4)}, 2.4, 50, 90, 9.0, true},
	}
	for _, s := range combo {
		pins := append(append([]Pin{}, s.inputs...), outPin("Z"))
		lib.MustAddMaster(&Master{
			Name:         s.name,
			Width:        s.width,
			Pins:         pins,
			Function:     s.fn,
			DriveRes:     s.driveRes,
			Intrinsic:    s.intrinsic,
			Leakage:      s.leakage,
			SwitchEnergy: s.energy,
			Sequential:   s.seq,
		})
	}

	// Filler (dummy) cells: no transistors, zero power, used to preserve
	// power/ground rail continuity when whitespace is allocated.
	for _, f := range []struct {
		name  string
		width float64
	}{
		{"FILL1", 0.2},
		{"FILL2", 0.4},
		{"FILL4", 0.8},
		{"FILL8", 1.6},
		{"FILL16", 3.2},
		{"FILL32", 6.4},
		{"FILL64", 12.8},
	} {
		lib.MustAddMaster(&Master{
			Name:     f.name,
			Width:    f.width,
			Function: FuncNone,
			Filler:   true,
		})
	}
	return lib
}
