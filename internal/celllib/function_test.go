package celllib

import (
	"testing"
	"testing/quick"
)

func TestFuncEvalTruthTables(t *testing.T) {
	b := func(bits ...int) []bool {
		out := make([]bool, len(bits))
		for i, v := range bits {
			out[i] = v != 0
		}
		return out
	}
	cases := []struct {
		fn   Func
		in   []bool
		want bool
	}{
		{FuncConst0, nil, false},
		{FuncConst1, nil, true},
		{FuncBuf, b(1), true},
		{FuncBuf, b(0), false},
		{FuncInv, b(1), false},
		{FuncInv, b(0), true},
		{FuncAnd2, b(1, 1), true},
		{FuncAnd2, b(1, 0), false},
		{FuncNand2, b(1, 1), false},
		{FuncNand2, b(0, 1), true},
		{FuncNand3, b(1, 1, 1), false},
		{FuncNand3, b(1, 0, 1), true},
		{FuncOr2, b(0, 0), false},
		{FuncOr2, b(0, 1), true},
		{FuncNor2, b(0, 0), true},
		{FuncNor2, b(1, 0), false},
		{FuncNor3, b(0, 0, 0), true},
		{FuncNor3, b(0, 1, 0), false},
		{FuncXor2, b(1, 0), true},
		{FuncXor2, b(1, 1), false},
		{FuncXnor2, b(1, 1), true},
		{FuncXnor2, b(1, 0), false},
		{FuncAoi21, b(1, 1, 0), false},
		{FuncAoi21, b(0, 1, 0), true},
		{FuncAoi21, b(0, 0, 1), false},
		{FuncOai21, b(0, 0, 1), true},
		{FuncOai21, b(1, 0, 1), false},
		{FuncOai21, b(1, 1, 0), true},
		{FuncMux2, b(1, 0, 0), true},  // S=0 -> A
		{FuncMux2, b(1, 0, 1), false}, // S=1 -> B
		{FuncMaj3, b(1, 1, 0), true},
		{FuncMaj3, b(1, 0, 0), false},
		{FuncXor3, b(1, 1, 1), true},
		{FuncXor3, b(1, 1, 0), false},
		{FuncXor3, b(1, 0, 0), true},
	}
	for _, c := range cases {
		if got := c.fn.Eval(c.in); got != c.want {
			t.Errorf("%s%v = %v, want %v", c.fn, c.in, got, c.want)
		}
	}
}

func TestFuncNumInputs(t *testing.T) {
	cases := map[Func]int{
		FuncNone: 0, FuncConst0: 0, FuncConst1: 0,
		FuncBuf: 1, FuncInv: 1, FuncDFF: 1,
		FuncAnd2: 2, FuncNand2: 2, FuncOr2: 2, FuncNor2: 2, FuncXor2: 2, FuncXnor2: 2,
		FuncNand3: 3, FuncNor3: 3, FuncAoi21: 3, FuncOai21: 3, FuncMux2: 3, FuncMaj3: 3, FuncXor3: 3,
	}
	for fn, want := range cases {
		if got := fn.NumInputs(); got != want {
			t.Errorf("%s.NumInputs() = %d, want %d", fn, got, want)
		}
	}
}

func TestFuncStringRoundTrip(t *testing.T) {
	for fn := range funcNames {
		parsed, err := ParseFunc(fn.String())
		if err != nil {
			t.Errorf("ParseFunc(%s): %v", fn, err)
			continue
		}
		if parsed != fn {
			t.Errorf("round trip %s -> %s", fn, parsed)
		}
	}
	if _, err := ParseFunc("NOT_A_FUNC"); err == nil {
		t.Error("ParseFunc should reject unknown names")
	}
}

func TestFuncEvalArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	FuncNand2.Eval([]bool{true})
}

func TestFuncDFFEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic evaluating DFF combinationally")
		}
	}()
	FuncDFF.Eval([]bool{true})
}

// Property: De Morgan equivalences hold between the library functions.
func TestDeMorganProperties(t *testing.T) {
	f := func(a, b bool) bool {
		in := []bool{a, b}
		if FuncNand2.Eval(in) != !FuncAnd2.Eval(in) {
			return false
		}
		if FuncNor2.Eval(in) != !FuncOr2.Eval(in) {
			return false
		}
		if FuncXnor2.Eval(in) != !FuncXor2.Eval(in) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MAJ3 and XOR3 implement a correct full adder for all inputs.
func TestFullAdderProperty(t *testing.T) {
	f := func(a, b, c bool) bool {
		toInt := func(v bool) int {
			if v {
				return 1
			}
			return 0
		}
		sum := toInt(a) + toInt(b) + toInt(c)
		in := []bool{a, b, c}
		gotSum := toInt(FuncXor3.Eval(in))
		gotCarry := toInt(FuncMaj3.Eval(in))
		return gotCarry*2+gotSum == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AOI21/OAI21 match their gate-level definitions.
func TestAoiOaiProperty(t *testing.T) {
	f := func(a, b, c bool) bool {
		in := []bool{a, b, c}
		if FuncAoi21.Eval(in) != !((a && b) || c) {
			return false
		}
		if FuncOai21.Eval(in) != !((a || b) && c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
