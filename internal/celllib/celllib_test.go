package celllib

import (
	"strings"
	"testing"
)

func TestDefault65nmSanity(t *testing.T) {
	lib := Default65nm()
	if lib.Name != "core65lite" {
		t.Fatalf("library name = %q", lib.Name)
	}
	if lib.RowHeight <= 0 || lib.SiteWidth <= 0 || lib.Vdd <= 0 {
		t.Fatal("technology parameters must be positive")
	}
	if lib.NumMasters() < 20 {
		t.Fatalf("expected a reasonably rich library, got %d masters", lib.NumMasters())
	}
	for _, name := range []string{"INV_X1", "NAND2_X1", "XOR2_X1", "DFF_X1", "MAJ3_X1", "XOR3_X1", "FILL1", "FILL64"} {
		if lib.Master(name) == nil {
			t.Errorf("missing expected master %q", name)
		}
	}
}

func TestMasterWidthsAreSiteMultiples(t *testing.T) {
	lib := Default65nm()
	for _, m := range lib.Masters() {
		snapped := lib.SnapToSite(m.Width)
		if diff := snapped - m.Width; diff > 1e-9 {
			t.Errorf("master %s width %g is not a site multiple (snaps to %g)", m.Name, m.Width, snapped)
		}
	}
}

func TestFillersHaveZeroPower(t *testing.T) {
	lib := Default65nm()
	fillers := lib.Fillers()
	if len(fillers) < 3 {
		t.Fatalf("expected several filler sizes, got %d", len(fillers))
	}
	for _, f := range fillers {
		if !f.Filler {
			t.Errorf("%s returned by Fillers but not marked Filler", f.Name)
		}
		if f.Leakage != 0 || f.SwitchEnergy != 0 {
			t.Errorf("filler %s must consume zero power", f.Name)
		}
		if f.Function != FuncNone {
			t.Errorf("filler %s must have no logic function", f.Name)
		}
	}
	// Fillers must be sorted by decreasing width.
	for i := 1; i < len(fillers); i++ {
		if fillers[i].Width > fillers[i-1].Width {
			t.Fatalf("Fillers not sorted by decreasing width: %v then %v", fillers[i-1].Width, fillers[i].Width)
		}
	}
}

func TestMasterAccessors(t *testing.T) {
	lib := Default65nm()
	nand := lib.Master("NAND2_X1")
	if nand == nil {
		t.Fatal("NAND2_X1 missing")
	}
	if got := nand.Inputs(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Inputs = %v", got)
	}
	if nand.OutputPin() != "Z" {
		t.Fatalf("OutputPin = %q", nand.OutputPin())
	}
	if nand.PinCap("A") <= 0 {
		t.Fatal("pin A must have positive capacitance")
	}
	if nand.PinCap("nope") != 0 {
		t.Fatal("unknown pin must have zero capacitance")
	}
	if tot := nand.InputCapTotal(); tot != nand.PinCap("A")+nand.PinCap("B") {
		t.Fatalf("InputCapTotal = %v", tot)
	}
	if a := nand.Area(lib.RowHeight); a != nand.Width*lib.RowHeight {
		t.Fatalf("Area = %v", a)
	}
}

func TestAddMasterValidation(t *testing.T) {
	lib := NewLibrary("t", 2, 0.2, 1)
	ok := &Master{Name: "G", Width: 1, Pins: []Pin{{Name: "A", Dir: Input, Cap: 1}, {Name: "Z", Dir: Output}}, Function: FuncInv}
	if err := lib.AddMaster(ok); err != nil {
		t.Fatalf("AddMaster(ok) = %v", err)
	}
	cases := []struct {
		name string
		m    *Master
	}{
		{"empty name", &Master{Width: 1}},
		{"duplicate", &Master{Name: "G", Width: 1, Pins: ok.Pins}},
		{"bad width", &Master{Name: "W", Width: 0, Pins: ok.Pins}},
		{"no output", &Master{Name: "N", Width: 1, Pins: []Pin{{Name: "A", Dir: Input}}}},
		{"powered filler", &Master{Name: "F", Width: 1, Filler: true, Leakage: 5}},
	}
	for _, c := range cases {
		if err := lib.AddMaster(c.m); err == nil {
			t.Errorf("AddMaster(%s) should fail", c.name)
		}
	}
}

func TestSnapToSite(t *testing.T) {
	lib := NewLibrary("t", 2, 0.2, 1)
	cases := []struct{ in, want float64 }{
		{0.2, 0.2}, {0.25, 0.4}, {0.39, 0.4}, {0.4, 0.4}, {1.0, 1.0}, {1.01, 1.2},
	}
	for _, c := range cases {
		if got := lib.SnapToSite(c.in); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("SnapToSite(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMastersSorted(t *testing.T) {
	lib := Default65nm()
	ms := lib.Masters()
	for i := 1; i < len(ms); i++ {
		if ms[i].Name < ms[i-1].Name {
			t.Fatal("Masters() must be sorted by name")
		}
	}
}

func TestPinDirString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Fatal("PinDir.String mismatch")
	}
}

func TestLibertyRoundTrip(t *testing.T) {
	lib := Default65nm()
	var buf strings.Builder
	if err := WriteLiberty(&buf, lib); err != nil {
		t.Fatalf("WriteLiberty: %v", err)
	}
	got, err := ParseLiberty(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseLiberty: %v", err)
	}
	if got.Name != lib.Name || got.Vdd != lib.Vdd || got.RowHeight != lib.RowHeight || got.SiteWidth != lib.SiteWidth {
		t.Fatalf("library header mismatch: %+v", got)
	}
	if got.WireCapPerUm != lib.WireCapPerUm || got.WireResPerUm != lib.WireResPerUm {
		t.Fatal("wire parameters did not round-trip")
	}
	if got.NumMasters() != lib.NumMasters() {
		t.Fatalf("master count %d != %d", got.NumMasters(), lib.NumMasters())
	}
	for _, want := range lib.Masters() {
		m := got.Master(want.Name)
		if m == nil {
			t.Fatalf("master %s lost in round trip", want.Name)
		}
		if m.Width != want.Width || m.Function != want.Function || m.DriveRes != want.DriveRes ||
			m.Intrinsic != want.Intrinsic || m.Leakage != want.Leakage || m.SwitchEnergy != want.SwitchEnergy ||
			m.Sequential != want.Sequential || m.Filler != want.Filler {
			t.Errorf("master %s attributes changed: got %+v want %+v", want.Name, m, want)
		}
		if len(m.Pins) != len(want.Pins) {
			t.Errorf("master %s pin count %d != %d", want.Name, len(m.Pins), len(want.Pins))
		}
		for _, p := range want.Pins {
			if m.PinCap(p.Name) != p.Cap {
				t.Errorf("master %s pin %s cap mismatch", want.Name, p.Name)
			}
		}
	}
}

func TestParseLibertyErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"truncated", "library(x) { voltage : 1.0;"},
		{"bad attribute", "library(x) { bogus : 1.0; }"},
		{"bad number", "library(x) { voltage : abc; }"},
		{"bad cell attr", "library(x) { cell(C) { nonsense : 2; } }"},
		{"bad pin dir", "library(x) { cell(C) { width : 1; function : \"INV\"; pin(A) { direction : sideways; } pin(Z) { direction : output; } } }"},
		{"bad function", "library(x) { cell(C) { width : 1; function : \"WAT\"; pin(Z) { direction : output; } } }"},
		{"duplicate cell", "library(x) { cell(C) { width : 1; function : \"INV\"; pin(Z) { direction : output; } } cell(C) { width : 1; function : \"INV\"; pin(Z) { direction : output; } } }"},
	}
	for _, c := range cases {
		if _, err := ParseLiberty(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseLibertyWithComments(t *testing.T) {
	in := `// a comment line
library(tiny) {
  voltage : 1.2; // trailing comment
  cell(INV) {
    width : 0.6;
    function : "INV";
    pin(A) { direction : input; cap : 1.5; }
    pin(Z) { direction : output; }
  }
}`
	lib, err := ParseLiberty(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseLiberty: %v", err)
	}
	if lib.Vdd != 1.2 {
		t.Fatalf("Vdd = %v", lib.Vdd)
	}
	m := lib.Master("INV")
	if m == nil || m.Function != FuncInv || m.PinCap("A") != 1.5 {
		t.Fatalf("parsed master wrong: %+v", m)
	}
}
