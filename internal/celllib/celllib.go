// Package celllib models the standard-cell library used by the synthesis,
// placement, power and timing stages.
//
// The paper's experiments use an STM 65 nm commercial library; since that
// library is proprietary, this package provides a synthetic 65 nm-class
// library (see Default65nm) with areas, capacitances, energies and leakage
// in the right ballpark, plus a small "Liberty-lite" text format so that
// libraries can be stored on disk and exchanged between tools.
//
// Only single-output combinational cells, a D flip-flop and zero-power
// filler (dummy) cells are modelled: that is all the post-placement
// temperature-reduction flow requires.
package celllib

import (
	"fmt"
	"sort"
)

// PinDir is the direction of a cell pin.
type PinDir int

const (
	// Input marks a cell input pin.
	Input PinDir = iota
	// Output marks a cell output pin.
	Output
)

func (d PinDir) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Pin describes one pin of a cell master.
type Pin struct {
	Name string
	Dir  PinDir
	// Cap is the pin input capacitance in femtofarads. Output pins have
	// zero capacitance (their drive is modelled by Master.DriveRes).
	Cap float64
}

// Master is a standard-cell library element ("cell master" / "lib cell").
type Master struct {
	// Name is the library cell name, e.g. "NAND2_X1".
	Name string
	// Width is the physical cell width in micrometres. All cells are one
	// row high (Library.RowHeight).
	Width float64
	// Pins lists the cell pins; inputs first by convention, but code must
	// not rely on ordering.
	Pins []Pin
	// Function is the combinational logic function of the (single) output.
	// Sequential and filler cells use FuncDFF and FuncNone respectively.
	Function Func
	// DriveRes is the equivalent output drive resistance in kilo-ohms, used
	// by the timing model (delay = Intrinsic + DriveRes * Cload).
	DriveRes float64
	// Intrinsic is the intrinsic (no-load) delay in picoseconds.
	Intrinsic float64
	// Leakage is the static leakage power in nanowatts at nominal
	// temperature and voltage.
	Leakage float64
	// SwitchEnergy is the internal energy dissipated per output transition
	// in femtojoules (excluding the energy spent charging the external
	// load, which power estimation adds from net capacitance).
	SwitchEnergy float64
	// Sequential marks storage elements (flip-flops).
	Sequential bool
	// Filler marks dummy cells: no active transistors, zero power. They
	// only guarantee power/ground rail continuity, exactly as in the paper.
	Filler bool

	// inputs caches the input pin names in declaration order. AddMaster
	// populates it; Pins must not change afterwards. Masters built outside
	// a Library (tests) leave it nil and Inputs falls back to a scan.
	inputs []string
}

// Area returns the cell area in um^2 given the library row height.
func (m *Master) Area(rowHeight float64) float64 { return m.Width * rowHeight }

// Inputs returns the names of the input pins in declaration order. The
// returned slice is shared (memoized by AddMaster); callers must not
// mutate it.
func (m *Master) Inputs() []string {
	if m.inputs != nil {
		return m.inputs
	}
	var in []string
	for _, p := range m.Pins {
		if p.Dir == Input {
			in = append(in, p.Name)
		}
	}
	return in
}

// OutputPin returns the name of the output pin, or "" for filler cells.
func (m *Master) OutputPin() string {
	for _, p := range m.Pins {
		if p.Dir == Output {
			return p.Name
		}
	}
	return ""
}

// PinCap returns the input capacitance of the named pin (0 when unknown).
func (m *Master) PinCap(name string) float64 {
	for _, p := range m.Pins {
		if p.Name == name {
			return p.Cap
		}
	}
	return 0
}

// InputCapTotal returns the sum of all input pin capacitances in fF.
func (m *Master) InputCapTotal() float64 {
	total := 0.0
	for _, p := range m.Pins {
		if p.Dir == Input {
			total += p.Cap
		}
	}
	return total
}

// Library is a named collection of cell masters plus the technology
// parameters shared by all of them.
type Library struct {
	// Name identifies the library, e.g. "core65lite".
	Name string
	// RowHeight is the standard-cell row height in micrometres.
	RowHeight float64
	// SiteWidth is the placement site width in micrometres; all cell
	// widths are integer multiples of it.
	SiteWidth float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// WireCapPerUm is the estimated routing capacitance per micrometre of
	// wirelength in femtofarads, used for net-load power and delay.
	WireCapPerUm float64
	// WireResPerUm is the estimated routing resistance per micrometre in
	// ohms, used by the Elmore wire-delay model.
	WireResPerUm float64

	masters map[string]*Master
}

// NewLibrary creates an empty library with the given technology parameters.
func NewLibrary(name string, rowHeight, siteWidth, vdd float64) *Library {
	return &Library{
		Name:         name,
		RowHeight:    rowHeight,
		SiteWidth:    siteWidth,
		Vdd:          vdd,
		WireCapPerUm: 0.2,
		WireResPerUm: 1.0,
		masters:      make(map[string]*Master),
	}
}

// AddMaster registers a cell master; it returns an error when a master with
// the same name already exists or the master is malformed.
func (l *Library) AddMaster(m *Master) error {
	if m.Name == "" {
		return fmt.Errorf("celllib: master with empty name")
	}
	if _, ok := l.masters[m.Name]; ok {
		return fmt.Errorf("celllib: duplicate master %q", m.Name)
	}
	if m.Width <= 0 {
		return fmt.Errorf("celllib: master %q has non-positive width %g", m.Name, m.Width)
	}
	if !m.Filler && m.OutputPin() == "" {
		return fmt.Errorf("celllib: non-filler master %q has no output pin", m.Name)
	}
	if m.Filler && (m.Leakage != 0 || m.SwitchEnergy != 0) {
		return fmt.Errorf("celllib: filler master %q must have zero power", m.Name)
	}
	// Memoize the input pin list: simulation and timing walk Inputs once
	// per instance visit, and recomputing it allocated tens of thousands
	// of small slices per analysis on the paper benchmark.
	if m.inputs == nil {
		m.inputs = m.Inputs()
	}
	l.masters[m.Name] = m
	return nil
}

// MustAddMaster is AddMaster that panics on error; used for the built-in
// library definition where failure is a programming bug.
func (l *Library) MustAddMaster(m *Master) {
	if err := l.AddMaster(m); err != nil {
		panic(err)
	}
}

// Master returns the named master, or nil when it is not in the library.
func (l *Library) Master(name string) *Master { return l.masters[name] }

// Masters returns all masters sorted by name.
func (l *Library) Masters() []*Master {
	out := make([]*Master, 0, len(l.masters))
	for _, m := range l.masters {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumMasters returns the number of masters in the library.
func (l *Library) NumMasters() int { return len(l.masters) }

// Fillers returns the filler masters sorted by decreasing width, the order
// in which a gap-filling pass wants to try them.
func (l *Library) Fillers() []*Master {
	var out []*Master
	for _, m := range l.masters {
		if m.Filler {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Width != out[j].Width {
			return out[i].Width > out[j].Width
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SnapToSite rounds w up to the nearest multiple of the site width.
func (l *Library) SnapToSite(w float64) float64 {
	sites := int(w / l.SiteWidth)
	if float64(sites)*l.SiteWidth < w-1e-9 {
		sites++
	}
	return float64(sites) * l.SiteWidth
}
