package celllib

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a tiny "Liberty-lite" text format so that cell
// libraries can be written to disk and read back by the command-line tools.
// The format is a heavily simplified cousin of the Synopsys Liberty (.lib)
// syntax: nested group(name) { ... } blocks with attribute : value;
// statements. Only the attributes this flow needs are supported.

// WriteLiberty writes the library in Liberty-lite form to w.
func WriteLiberty(w io.Writer, lib *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library(%s) {\n", lib.Name)
	fmt.Fprintf(bw, "  voltage : %g;\n", lib.Vdd)
	fmt.Fprintf(bw, "  row_height : %g;\n", lib.RowHeight)
	fmt.Fprintf(bw, "  site_width : %g;\n", lib.SiteWidth)
	fmt.Fprintf(bw, "  wire_cap_per_um : %g;\n", lib.WireCapPerUm)
	fmt.Fprintf(bw, "  wire_res_per_um : %g;\n", lib.WireResPerUm)
	for _, m := range lib.Masters() {
		fmt.Fprintf(bw, "  cell(%s) {\n", m.Name)
		fmt.Fprintf(bw, "    width : %g;\n", m.Width)
		fmt.Fprintf(bw, "    function : \"%s\";\n", m.Function)
		if m.DriveRes != 0 {
			fmt.Fprintf(bw, "    drive_res : %g;\n", m.DriveRes)
		}
		if m.Intrinsic != 0 {
			fmt.Fprintf(bw, "    intrinsic_delay : %g;\n", m.Intrinsic)
		}
		if m.Leakage != 0 {
			fmt.Fprintf(bw, "    leakage : %g;\n", m.Leakage)
		}
		if m.SwitchEnergy != 0 {
			fmt.Fprintf(bw, "    switch_energy : %g;\n", m.SwitchEnergy)
		}
		if m.Sequential {
			fmt.Fprintf(bw, "    sequential : true;\n")
		}
		if m.Filler {
			fmt.Fprintf(bw, "    filler : true;\n")
		}
		// Stable pin order: inputs in declaration order, then outputs.
		pins := append([]Pin{}, m.Pins...)
		sort.SliceStable(pins, func(i, j int) bool { return pins[i].Dir < pins[j].Dir })
		for _, p := range pins {
			if p.Dir == Input {
				fmt.Fprintf(bw, "    pin(%s) { direction : input; cap : %g; }\n", p.Name, p.Cap)
			} else {
				fmt.Fprintf(bw, "    pin(%s) { direction : output; }\n", p.Name)
			}
		}
		fmt.Fprintf(bw, "  }\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// libertyParser is a small recursive-descent parser over a token stream.
type libertyParser struct {
	toks []string
	pos  int
}

// ParseLiberty reads a Liberty-lite library from r.
func ParseLiberty(r io.Reader) (*Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("celllib: reading liberty input: %w", err)
	}
	p := &libertyParser{toks: tokenizeLiberty(string(data))}
	return p.parseLibrary()
}

// tokenizeLiberty splits the input into tokens: identifiers/numbers, quoted
// strings (quotes stripped) and the punctuation ( ) { } : ; .
func tokenizeLiberty(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case strings.ContainsRune("(){}:;", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			toks = append(toks, s[i+1:j])
			i = j + 1
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r(){}:;\"", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *libertyParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *libertyParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *libertyParser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("celllib: liberty parse error: expected %q, got %q (token %d)", tok, got, p.pos-1)
	}
	return nil
}

// parseGroupHeader parses `keyword ( name ) {` and returns the name.
func (p *libertyParser) parseGroupHeader(keyword string) (string, error) {
	if err := p.expect(keyword); err != nil {
		return "", err
	}
	if err := p.expect("("); err != nil {
		return "", err
	}
	name := p.next()
	if err := p.expect(")"); err != nil {
		return "", err
	}
	if err := p.expect("{"); err != nil {
		return "", err
	}
	return name, nil
}

func (p *libertyParser) parseLibrary() (*Library, error) {
	name, err := p.parseGroupHeader("library")
	if err != nil {
		return nil, err
	}
	lib := NewLibrary(name, 2.0, 0.2, 1.0)
	for {
		switch p.peek() {
		case "}":
			p.next()
			return lib, nil
		case "":
			return nil, fmt.Errorf("celllib: liberty parse error: unexpected end of input in library %q", name)
		case "cell":
			m, err := p.parseCell()
			if err != nil {
				return nil, err
			}
			if err := lib.AddMaster(m); err != nil {
				return nil, err
			}
		default:
			attr, val, err := p.parseAttribute()
			if err != nil {
				return nil, err
			}
			if err := applyLibraryAttr(lib, attr, val); err != nil {
				return nil, err
			}
		}
	}
}

func applyLibraryAttr(lib *Library, attr, val string) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("celllib: library attribute %s: %w", attr, err)
	}
	switch attr {
	case "voltage":
		lib.Vdd = f
	case "row_height":
		lib.RowHeight = f
	case "site_width":
		lib.SiteWidth = f
	case "wire_cap_per_um":
		lib.WireCapPerUm = f
	case "wire_res_per_um":
		lib.WireResPerUm = f
	default:
		return fmt.Errorf("celllib: unknown library attribute %q", attr)
	}
	return nil
}

// parseAttribute parses `name : value ;` and returns (name, value).
func (p *libertyParser) parseAttribute() (string, string, error) {
	name := p.next()
	if err := p.expect(":"); err != nil {
		return "", "", err
	}
	val := p.next()
	if err := p.expect(";"); err != nil {
		return "", "", err
	}
	return name, val, nil
}

func (p *libertyParser) parseCell() (*Master, error) {
	name, err := p.parseGroupHeader("cell")
	if err != nil {
		return nil, err
	}
	m := &Master{Name: name}
	for {
		switch p.peek() {
		case "}":
			p.next()
			return m, nil
		case "":
			return nil, fmt.Errorf("celllib: liberty parse error: unexpected end of input in cell %q", name)
		case "pin":
			pin, err := p.parsePin()
			if err != nil {
				return nil, err
			}
			m.Pins = append(m.Pins, pin)
		default:
			attr, val, err := p.parseAttribute()
			if err != nil {
				return nil, err
			}
			if err := applyCellAttr(m, attr, val); err != nil {
				return nil, err
			}
		}
	}
}

func applyCellAttr(m *Master, attr, val string) error {
	parseF := func() (float64, error) {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("celllib: cell %q attribute %s: %w", m.Name, attr, err)
		}
		return f, nil
	}
	switch attr {
	case "width":
		f, err := parseF()
		if err != nil {
			return err
		}
		m.Width = f
	case "drive_res":
		f, err := parseF()
		if err != nil {
			return err
		}
		m.DriveRes = f
	case "intrinsic_delay":
		f, err := parseF()
		if err != nil {
			return err
		}
		m.Intrinsic = f
	case "leakage":
		f, err := parseF()
		if err != nil {
			return err
		}
		m.Leakage = f
	case "switch_energy":
		f, err := parseF()
		if err != nil {
			return err
		}
		m.SwitchEnergy = f
	case "function":
		fn, err := ParseFunc(val)
		if err != nil {
			return err
		}
		m.Function = fn
	case "sequential":
		m.Sequential = val == "true"
	case "filler":
		m.Filler = val == "true"
	default:
		return fmt.Errorf("celllib: unknown cell attribute %q in cell %q", attr, m.Name)
	}
	return nil
}

func (p *libertyParser) parsePin() (Pin, error) {
	name, err := p.parseGroupHeader("pin")
	if err != nil {
		return Pin{}, err
	}
	pin := Pin{Name: name}
	for {
		switch p.peek() {
		case "}":
			p.next()
			return pin, nil
		case "":
			return Pin{}, fmt.Errorf("celllib: liberty parse error: unexpected end of input in pin %q", name)
		default:
			attr, val, err := p.parseAttribute()
			if err != nil {
				return Pin{}, err
			}
			switch attr {
			case "direction":
				if val == "input" {
					pin.Dir = Input
				} else if val == "output" {
					pin.Dir = Output
				} else {
					return Pin{}, fmt.Errorf("celllib: pin %q has unknown direction %q", name, val)
				}
			case "cap":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Pin{}, fmt.Errorf("celllib: pin %q cap: %w", name, err)
				}
				pin.Cap = f
			default:
				return Pin{}, fmt.Errorf("celllib: unknown pin attribute %q in pin %q", attr, name)
			}
		}
	}
}
