package core

import (
	"math"
	"testing"
)

// adaptiveKey identifies a sweep point across runs (the candidate it came
// from), independent of how the run triaged.
type adaptiveKey struct {
	strategy Strategy
	rows     int
	aspect   float64
	util     float64
}

func keyOf(p *EfficiencyPoint) adaptiveKey {
	return adaptiveKey{strategy: p.Strategy, rows: p.Rows, aspect: p.Aspect, util: p.Utilization}
}

// TestAdaptiveSweepMatchesExhaustive pins the exactness contract of the
// adaptive sweep: every surviving point is bit-identical (struct ==) to the
// same candidate's point in the exhaustive run over the same densified
// grid, and the 2D Pareto front of the exhaustive run is exactly the front
// of the adaptive run.
func TestAdaptiveSweepMatchesExhaustive(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	base := SweepOptions{
		Overheads:   []float64{0.05, 0.40},
		Incremental: true,
		Workers:     4,
	}
	aspects := []float64{1.0, 2.5}
	exOpts := base
	exOpts.Adaptive = &AdaptiveOptions{GridScale: 3, Margin: math.Inf(1), CoarseFactor: 2, Aspects: aspects}
	exhaustive, err := SweepEfficiency(f, exOpts)
	if err != nil {
		t.Fatal(err)
	}
	adOpts := base
	adOpts.Adaptive = &AdaptiveOptions{GridScale: 3, Margin: 0.04, CoarseFactor: 2, Aspects: aspects}
	adaptive, err := SweepEfficiency(f, adOpts)
	if err != nil {
		t.Fatal(err)
	}

	ts := adaptive.Triage
	if ts == nil {
		t.Fatal("adaptive sweep must record triage stats")
	}
	if ex := exhaustive.Triage; ex == nil || ex.Survivors != ex.Candidates {
		t.Fatalf("exhaustive mode must keep every candidate, got %+v", ex)
	}
	if ts.Candidates != exhaustive.Triage.Candidates {
		t.Fatalf("candidate grids differ: %d vs %d", ts.Candidates, exhaustive.Triage.Candidates)
	}
	if ts.Survivors >= ts.Candidates {
		t.Fatalf("triage kept all %d candidates; margin %g should have dropped some", ts.Candidates, ts.Margin)
	}
	if ts.CoarseSolves == 0 || ts.ExactSolves == 0 {
		t.Fatalf("solve counters not recorded: %+v", ts)
	}
	if len(adaptive.Points) >= len(exhaustive.Points) {
		t.Fatalf("adaptive run measured %d points, exhaustive %d; nothing was saved",
			len(adaptive.Points), len(exhaustive.Points))
	}

	// Every adaptive point must be the exhaustive run's measurement of the
	// same candidate, bit for bit.
	exact := make(map[adaptiveKey]EfficiencyPoint, len(exhaustive.Points))
	for _, p := range exhaustive.Points {
		exact[keyOf(&p)] = p
	}
	for _, p := range adaptive.Points {
		ref, ok := exact[keyOf(&p)]
		if !ok {
			t.Fatalf("adaptive point %+v has no exhaustive counterpart", p)
		}
		if p != ref {
			t.Fatalf("adaptive point differs from exhaustive measurement:\n  adaptive:   %+v\n  exhaustive: %+v", p, ref)
		}
	}

	// The true (exhaustive) 2D front must survive triage, and the adaptive
	// front must consist of exactly those points.
	trueFront := make(map[adaptiveKey]bool)
	for _, i := range exhaustive.Front2D() {
		trueFront[keyOf(&exhaustive.Points[i])] = true
	}
	adFront := make(map[adaptiveKey]bool)
	for _, i := range adaptive.Front2D() {
		adFront[keyOf(&adaptive.Points[i])] = true
	}
	for k := range trueFront {
		if !adFront[k] {
			t.Fatalf("true front point %+v missing from the adaptive front", k)
		}
	}
	for k := range adFront {
		if !trueFront[k] {
			t.Fatalf("adaptive front point %+v is not on the true front", k)
		}
	}

	// Error accounting: the histogram covers every est-vs-exact pair.
	histTotal := 0
	for _, n := range ts.ErrHist {
		histTotal += n
	}
	if histTotal == 0 {
		t.Fatal("error histogram is empty")
	}
	if math.IsNaN(ts.MaxEstErrC) || ts.MaxEstErrC < 0 {
		t.Fatalf("non-physical MaxEstErrC %g", ts.MaxEstErrC)
	}
}

// TestAdaptiveInjectionBreaksFront drives the negative-injection knob: a
// biased coarse estimate must push true-front points out of the survivor
// set, which the harness turns into a failed run.
func TestAdaptiveInjectionBreaksFront(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	base := SweepOptions{
		Overheads:   []float64{0.05, 0.40},
		Incremental: true,
		Workers:     4,
	}
	aspects := []float64{1.0, 2.5}
	exOpts := base
	exOpts.Adaptive = &AdaptiveOptions{GridScale: 3, Margin: math.Inf(1), CoarseFactor: 2, Aspects: aspects}
	exhaustive, err := SweepEfficiency(f, exOpts)
	if err != nil {
		t.Fatal(err)
	}
	adOpts := base
	adOpts.Adaptive = &AdaptiveOptions{
		GridScale: 3, Margin: 0.04, CoarseFactor: 2, Aspects: aspects,
		InjectEstRiseBiasC: 1000,
	}
	broken, err := SweepEfficiency(f, adOpts)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[adaptiveKey]bool, len(broken.Points))
	for _, p := range broken.Points {
		have[keyOf(&p)] = true
	}
	missing := 0
	for _, i := range exhaustive.Front2D() {
		if !have[keyOf(&exhaustive.Points[i])] {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("a 1000C estimate bias dropped no true-front point; the injection knob is dead")
	}
}

// TestAdaptiveMaxExactTruncates checks the explicit exact-phase budget.
func TestAdaptiveMaxExactTruncates(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	opts := SweepOptions{
		Overheads:   []float64{0.05, 0.40},
		Incremental: true,
		Workers:     2,
		Adaptive: &AdaptiveOptions{
			GridScale: 2, Margin: math.Inf(1), CoarseFactor: 2, MaxExact: 3,
		},
	}
	r, err := SweepEfficiency(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := r.Triage
	if ts.Anchors == 0 {
		t.Fatal("adaptive sweep recorded no calibration anchors")
	}
	if len(r.Points) > 3+ts.Anchors {
		t.Fatalf("MaxExact 3 (+%d anchors) but %d points measured", ts.Anchors, len(r.Points))
	}
	if ts.Truncated != ts.Survivors-ts.Anchors-3 {
		t.Fatalf("Truncated %d, want Survivors %d - Anchors %d - 3", ts.Truncated, ts.Survivors, ts.Anchors)
	}
}

// TestAdaptiveValidation rejects nonsensical options.
func TestAdaptiveValidation(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	for _, af := range []AdaptiveOptions{
		{CoarseFactor: 1},
		{Margin: -0.1, CoarseFactor: 2},
		{Margin: math.NaN(), CoarseFactor: 2},
	} {
		af := af
		if _, err := SweepEfficiency(f, SweepOptions{Adaptive: &af}); err == nil {
			t.Fatalf("options %+v must be rejected", af)
		}
	}
}
