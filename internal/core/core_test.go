package core

import (
	"math"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/flow"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
)

func TestStrategyParsing(t *testing.T) {
	for _, s := range []string{"default", "eri", "hw"} {
		st, err := ParseStrategy(s)
		if err != nil || !st.Valid() {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, st, err)
		}
	}
	if _, err := ParseStrategy("magic"); err == nil {
		t.Error("unknown strategy must fail to parse")
	}
	if Strategy("nope").Valid() {
		t.Error("invalid strategy must not validate")
	}
}

// hotFlow builds a flow over the small benchmark with one hot unit.
func hotFlow(t *testing.T, hotUnit string) *flow.Flow {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl := bench.Workload{Name: "hot-" + hotUnit, Activity: map[string]float64{hotUnit: 0.6}, Default: 0.03}
	return flow.New(d, wl, flow.FastConfig())
}

func TestEmptyRowInsertionTransform(t *testing.T) {
	f := hotFlow(t, "mult8")
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Hotspots) == 0 {
		t.Fatal("baseline must have hotspots")
	}
	const rows = 6
	p, err := EmptyRowInsertion(base.Placement, base.Hotspots, DefaultERIOptions(rows))
	if err != nil {
		t.Fatal(err)
	}
	// The original placement must be untouched.
	if base.Placement.FP.NumRows() == p.FP.NumRows() {
		t.Fatal("ERI must add rows to the clone")
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("ERI output not legal: %v", errs[0])
	}
	// Core grows by exactly rows * rowHeight in height, width unchanged.
	if p.FP.NumRows() != base.Placement.FP.NumRows()+rows {
		t.Fatalf("row count %d, want %d", p.FP.NumRows(), base.Placement.FP.NumRows()+rows)
	}
	if math.Abs(p.FP.Core.W()-base.Placement.FP.Core.W()) > 1e-9 {
		t.Fatal("ERI must not change the core width")
	}
	wantH := base.Placement.FP.Core.H() + float64(rows)*p.FP.RowHeight
	if math.Abs(p.FP.Core.H()-wantH) > 1e-9 {
		t.Fatalf("core height %g, want %g", p.FP.Core.H(), wantH)
	}
	// Area overhead helpers agree with the real geometry.
	overhead := p.FP.CoreArea()/base.Placement.FP.CoreArea() - 1
	if math.Abs(overhead-AreaOverheadForRows(base.Placement, rows)) > 1e-9 {
		t.Fatalf("overhead %g vs helper %g", overhead, AreaOverheadForRows(base.Placement, rows))
	}
	if got := RowsForAreaOverhead(base.Placement, overhead); got != rows {
		t.Fatalf("RowsForAreaOverhead round trip: %d != %d", got, rows)
	}
	// Cells keep their x coordinates (only vertical shifts), and no cell
	// moves down.
	movedX := 0
	for _, inst := range f.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		lb, _ := base.Placement.Loc(inst)
		ln, _ := p.Loc(inst)
		if math.Abs(lb.X-ln.X) > 1e-9 {
			movedX++
		}
		if ln.Y < lb.Y-1e-9 {
			t.Fatalf("cell %s moved down: %g -> %g", inst.Name, lb.Y, ln.Y)
		}
	}
	if movedX > f.Design.NumInstances()/20 {
		t.Fatalf("%d cells changed x position; ERI should only shift rows vertically", movedX)
	}
	// The whitespace freed by the inserted rows is filled with dummy cells.
	if p.FillerArea() <= base.Placement.FillerArea() {
		t.Fatal("ERI must add filler area")
	}

	// Validation errors.
	if _, err := EmptyRowInsertion(base.Placement, base.Hotspots, DefaultERIOptions(0)); err == nil {
		t.Error("zero rows must fail")
	}
	if _, err := EmptyRowInsertion(base.Placement, nil, DefaultERIOptions(4)); err == nil {
		t.Error("no hotspots must fail")
	}
}

func TestEmptyRowInsertionReducesPeakTemperature(t *testing.T) {
	f := hotFlow(t, "mult8")
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	rows := RowsForAreaOverhead(base.Placement, 0.20)
	p, err := EmptyRowInsertion(base.Placement, base.Hotspots, DefaultERIOptions(rows))
	if err != nil {
		t.Fatal(err)
	}
	an, err := f.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if an.Thermal.PeakRise >= base.Thermal.PeakRise {
		t.Fatalf("ERI must reduce the peak rise: %g -> %g", base.Thermal.PeakRise, an.Thermal.PeakRise)
	}
	red := (base.Thermal.PeakRise - an.Thermal.PeakRise) / base.Thermal.PeakRise
	t.Logf("ERI with %d rows (%.1f%% area): %.1f%% peak reduction", rows,
		100*(p.FP.CoreArea()/base.Placement.FP.CoreArea()-1), 100*red)
	if red < 0.02 {
		t.Fatalf("ERI reduction %.2f%% too small to be meaningful", red*100)
	}
}

func TestHotspotWrapperTransform(t *testing.T) {
	f := hotFlow(t, "mult8")
	// HW is applied on a relaxed (Default) placement, as in the paper.
	relaxed, err := f.PlaceAt(f.Config.Utilization / 1.3)
	if err != nil {
		t.Fatal(err)
	}
	defAn, err := f.Analyze(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if len(defAn.Hotspots) == 0 {
		t.Fatal("relaxed placement must still have hotspots")
	}
	powerOf := func(inst *netlist.Instance) float64 { return defAn.Power.InstancePower(inst) }
	p, err := HotspotWrapper(relaxed, defAn.Hotspots, DefaultWrapperOptions(powerOf))
	if err != nil {
		t.Fatal(err)
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("HW output not legal: %v", errs[0])
	}
	// The core outline must not change: HW only re-arranges cells.
	if p.FP.Core != relaxed.FP.Core {
		t.Fatal("HW must not change the core outline")
	}
	// The original placement must be untouched: compare a few locations.
	same := true
	for _, inst := range f.Design.Instances()[:50] {
		lb, okB := relaxed.Loc(inst)
		ln, okN := p.Loc(inst)
		if okB != okN || lb != ln {
			same = false
			break
		}
	}
	if !same {
		// Fine: locations may differ in the clone; what matters is that the
		// original still validates and was not mutated structurally.
	}
	if errs := relaxed.Validate(); len(errs) != 0 {
		t.Fatalf("HW mutated its input placement: %v", errs[0])
	}

	// Error paths.
	if _, err := HotspotWrapper(relaxed, defAn.Hotspots, WrapperOptions{}); err == nil {
		t.Error("missing PowerOf must fail")
	}
	if _, err := HotspotWrapper(relaxed, nil, DefaultWrapperOptions(powerOf)); err == nil {
		t.Error("no hotspots must fail")
	}
}

func TestHotspotWrapperImprovesOnDefault(t *testing.T) {
	f := hotFlow(t, "mult8")
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := f.PlaceAt(f.Config.Utilization / 1.3)
	if err != nil {
		t.Fatal(err)
	}
	defAn, err := f.Analyze(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	powerOf := func(inst *netlist.Instance) float64 { return defAn.Power.InstancePower(inst) }
	// As in the sweep, the wrapper targets a tighter hotspot definition (the
	// cells that are the source of the hotspot) than the broad warm area ERI
	// uses.
	spots := hotspot.Detect(defAn.Thermal.RiseMap(), hotspot.Options{ThresholdFrac: 0.75, MinCells: 2})
	if len(spots) == 0 {
		t.Skip("no tight hotspots detected on the relaxed placement of the reduced benchmark")
	}
	hwPlacement, err := HotspotWrapper(relaxed, spots, DefaultWrapperOptions(powerOf))
	if err != nil {
		t.Fatal(err)
	}
	hwAn, err := f.Analyze(hwPlacement)
	if err != nil {
		t.Fatal(err)
	}
	baseRise := base.Thermal.PeakRise
	defRed := (baseRise - defAn.Thermal.PeakRise) / baseRise
	hwRed := (baseRise - hwAn.Thermal.PeakRise) / baseRise
	t.Logf("default reduction %.1f%%, HW reduction %.1f%%", defRed*100, hwRed*100)
	// The paper's claim: at the same area overhead, HW achieves at least the
	// Default reduction (Figure 6, HW curve above Default). Allow a small
	// tolerance for the coarse fast-test grid.
	if hwRed < defRed-0.02 {
		t.Fatalf("HW reduction %.3f should not be materially worse than Default %.3f", hwRed, defRed)
	}
}

func TestHotCellsSpreadByWrapper(t *testing.T) {
	f := hotFlow(t, "mult8")
	relaxed, err := f.PlaceAt(f.Config.Utilization / 1.4)
	if err != nil {
		t.Fatal(err)
	}
	defAn, err := f.Analyze(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	powerOf := func(inst *netlist.Instance) float64 { return defAn.Power.InstancePower(inst) }
	p, err := HotspotWrapper(relaxed, defAn.Hotspots, DefaultWrapperOptions(powerOf))
	if err != nil {
		t.Fatal(err)
	}
	// Measure the cell area inside the hottest hotspot's rect before and
	// after: the wrapper must not increase it (it spreads hot cells and
	// evicts cold ones).
	spot := defAn.Hotspots[0].Rect
	before := 0.0
	for _, inst := range relaxed.InstancesInRect(spot) {
		before += inst.Master.Area(relaxed.FP.RowHeight)
	}
	after := 0.0
	for _, inst := range p.InstancesInRect(spot) {
		after += inst.Master.Area(p.FP.RowHeight)
	}
	if after > before+1e-6 {
		t.Fatalf("wrapper increased cell area inside the hotspot: %g -> %g", before, after)
	}
}

func TestSweepEfficiencyReproducesFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	f := hotFlow(t, "mult8")
	opts := SweepOptions{Overheads: []float64{0.10, 0.25}}
	res, err := SweepEfficiency(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline == nil || len(res.Points) == 0 {
		t.Fatal("sweep returned no points")
	}
	def := res.PointsFor(StrategyDefault)
	eri := res.PointsFor(StrategyERI)
	hw := res.PointsFor(StrategyHW)
	if len(def) != 2 || len(eri) != 2 || len(hw) != 2 {
		t.Fatalf("expected 2 points per strategy, got %d/%d/%d", len(def), len(eri), len(hw))
	}
	for _, pts := range [][]EfficiencyPoint{def, eri, hw} {
		for _, p := range pts {
			if p.TempReduction < -0.05 {
				t.Fatalf("strategy %s at %.2f overhead made things worse: %.3f", p.Strategy, p.AreaOverhead, p.TempReduction)
			}
			if p.AreaOverhead <= 0 {
				t.Fatalf("non-positive area overhead recorded: %+v", p)
			}
		}
		// Effectiveness increases with area overhead (the paper's
		// observation), with a small tolerance for solver noise.
		if pts[1].TempReduction < pts[0].TempReduction-0.02 {
			t.Fatalf("strategy %s: reduction should grow with overhead: %.3f then %.3f",
				pts[0].Strategy, pts[0].TempReduction, pts[1].TempReduction)
		}
	}
	// The headline result: the targeted techniques beat blind area increase
	// at comparable overheads.
	for i := range def {
		t.Logf("overhead ~%.0f%%: default %.1f%%, ERI %.1f%% (rows=%d), HW %.1f%%",
			def[i].AreaOverhead*100, def[i].TempReduction*100, eri[i].TempReduction*100, eri[i].Rows, hw[i].TempReduction*100)
		if eri[i].TempReduction < def[i].TempReduction-0.02 {
			t.Errorf("ERI (%.3f) should not be materially below Default (%.3f) at overhead %.2f",
				eri[i].TempReduction, def[i].TempReduction, def[i].AreaOverhead)
		}
		if hw[i].TempReduction < def[i].TempReduction-0.02 {
			t.Errorf("HW (%.3f) should not be materially below Default (%.3f) at overhead %.2f",
				hw[i].TempReduction, def[i].TempReduction, def[i].AreaOverhead)
		}
	}
}

// TestSweepFastPathMatchesSpiceOracle runs the same sweep through the
// structured-grid fast path (with its solver reuse and warm starts across
// points) and through the legacy SPICE oracle, and requires identical
// efficiency curves. This is the end-to-end guarantee that the fast path
// changes nothing about the paper's reproduced results.
func TestSweepFastPathMatchesSpiceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep skipped in -short mode")
	}
	run := func(useSpice bool) *SweepResult {
		f := hotFlow(t, "mult8")
		f.Config.Thermal.UseSpice = useSpice
		res, err := SweepEfficiency(f, SweepOptions{Overheads: []float64{0.15}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	oracle := run(true)
	if math.Abs(fast.Baseline.PeakRise()-oracle.Baseline.PeakRise()) > 1e-6 {
		t.Fatalf("baseline peak rise: fast %g vs oracle %g",
			fast.Baseline.PeakRise(), oracle.Baseline.PeakRise())
	}
	if len(fast.Points) != len(oracle.Points) {
		t.Fatalf("point count: fast %d vs oracle %d", len(fast.Points), len(oracle.Points))
	}
	for i, fp := range fast.Points {
		op := oracle.Points[i]
		if fp.Strategy != op.Strategy {
			t.Fatalf("point %d strategy mismatch: %s vs %s", i, fp.Strategy, op.Strategy)
		}
		if math.Abs(fp.PeakRise-op.PeakRise) > 1e-6 {
			t.Fatalf("point %d (%s): peak rise fast %g vs oracle %g",
				i, fp.Strategy, fp.PeakRise, op.PeakRise)
		}
		if math.Abs(fp.TempReduction-op.TempReduction) > 1e-6 {
			t.Fatalf("point %d (%s): reduction fast %g vs oracle %g",
				i, fp.Strategy, fp.TempReduction, op.TempReduction)
		}
	}
}

func TestConcentratedExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("concentrated experiment skipped in -short mode")
	}
	f := hotFlow(t, "mult8")
	res, err := ConcentratedExperiment(f, ConcentratedOptions{Overheads: []float64{0.16}, ERIRows: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected one Default and one ERI row, got %d", len(res.Rows))
	}
	defRow, eriRow := res.Rows[0], res.Rows[1]
	if defRow.Strategy != StrategyDefault || eriRow.Strategy != StrategyERI {
		t.Fatalf("unexpected row order: %+v", res.Rows)
	}
	t.Logf("Table-I style: Default %.1f%% @ %.1f%% area, ERI %.1f%% @ %.1f%% area (%d rows)",
		defRow.TempReduction*100, defRow.AreaOverhead*100, eriRow.TempReduction*100, eriRow.AreaOverhead*100, eriRow.Rows)
	// ERI must be at least as good as Default at matched overhead (Table I).
	if eriRow.TempReduction < defRow.TempReduction-0.02 {
		t.Errorf("ERI (%.3f) should not be materially below Default (%.3f)", eriRow.TempReduction, defRow.TempReduction)
	}
	// Overheads should be close to the request.
	if math.Abs(defRow.AreaOverhead-0.16) > 0.08 || math.Abs(eriRow.AreaOverhead-0.16) > 0.08 {
		t.Errorf("area overheads drifted: default %.3f, ERI %.3f", defRow.AreaOverhead, eriRow.AreaOverhead)
	}
}

func TestSweepPropagatesPipelineErrors(t *testing.T) {
	lib := celllib.Default65nm()
	d := netlist.NewDesign("loop", lib)
	u1, _ := d.AddInstance("u1", "INV_X1", "u")
	u2, _ := d.AddInstance("u2", "INV_X1", "u")
	n1 := d.GetOrCreateNet("n1")
	n2 := d.GetOrCreateNet("n2")
	_ = d.Connect(u1, "A", n2)
	_ = d.Connect(u1, "Z", n1)
	_ = d.Connect(u2, "A", n1)
	_ = d.Connect(u2, "Z", n2)
	f := flow.New(d, bench.UniformWorkload(0.2), flow.FastConfig())
	if _, err := SweepEfficiency(f, SweepOptions{Overheads: []float64{0.1}}); err == nil {
		t.Fatal("sweep on an unsimulatable design must fail")
	}
	if _, err := ConcentratedExperiment(f, DefaultConcentratedOptions()); err == nil {
		t.Fatal("concentrated experiment on an unsimulatable design must fail")
	}
}

// TestConcurrentSweepBitIdenticalToSequential runs the same sweep
// sequentially (Workers=1) and concurrently (Workers=4) on fresh flows and
// requires exactly identical output: same point order and bit-identical
// floats. This is what the baseline-seeded warm starts, the slot-indexed
// recording and the deterministic power-map accumulation order buy. Run
// with -race to check the worker group and the flow solver pool.
func TestConcurrentSweepBitIdenticalToSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep skipped in -short mode")
	}
	run := func(workers int) *SweepResult {
		f := hotFlow(t, "mult8")
		defer f.Close()
		res, err := SweepEfficiency(f, SweepOptions{
			Overheads: []float64{0.10, 0.20, 0.30},
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	con := run(4)

	if seq.Baseline.PeakRise() != con.Baseline.PeakRise() {
		t.Fatalf("baseline peak rise differs: %g vs %g", seq.Baseline.PeakRise(), con.Baseline.PeakRise())
	}
	if len(seq.Points) != len(con.Points) {
		t.Fatalf("point count differs: %d vs %d", len(seq.Points), len(con.Points))
	}
	for i := range seq.Points {
		s, c := seq.Points[i], con.Points[i]
		if s.Strategy != c.Strategy || s.Rows != c.Rows {
			t.Fatalf("point %d identity differs: %s/%d vs %s/%d", i, s.Strategy, s.Rows, c.Strategy, c.Rows)
		}
		// Bit-identical, not approximately equal: == on floats is the test.
		if s.PeakRise != c.PeakRise || s.TempReduction != c.TempReduction ||
			s.AreaOverhead != c.AreaOverhead || s.Utilization != c.Utilization {
			t.Fatalf("point %d (%s) differs between sequential and concurrent runs:\n  seq %+v\n  con %+v",
				i, s.Strategy, s, c)
		}
	}
}

// TestSweepStrategySubsets checks the concurrent engine honors strategy
// selection, including the HW-without-Default case that still needs the
// Default placements internally.
func TestSweepStrategySubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	f := hotFlow(t, "mult8")
	defer f.Close()
	res, err := SweepEfficiency(f, SweepOptions{
		Overheads:  []float64{0.15},
		Strategies: []Strategy{StrategyHW},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Strategy != StrategyHW {
			t.Fatalf("unexpected strategy %s in HW-only sweep", p.Strategy)
		}
	}
	res, err = SweepEfficiency(f, SweepOptions{
		Overheads:  []float64{0.15},
		Strategies: []Strategy{StrategyERI},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Strategy != StrategyERI {
		t.Fatalf("ERI-only sweep returned %+v", res.Points)
	}
}
