package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// EfficiencyPoint is one point of the paper's Figure 6: a strategy applied
// at a given area overhead and the peak-temperature reduction it achieved.
type EfficiencyPoint struct {
	Strategy Strategy
	// AreaOverhead is the fractional core-area increase over the baseline
	// placement (0.16 means +16.1%).
	AreaOverhead float64
	// TempReduction is the fractional reduction of the peak temperature
	// rise relative to the baseline (0.131 means 13.1%).
	TempReduction float64
	// PeakRise is the absolute peak rise above ambient of this point in K.
	PeakRise float64
	// Rows is the number of empty rows inserted (ERI points only).
	Rows int
	// Utilization is the placement utilization of this point.
	Utilization float64
	// Aspect is the core aspect ratio of this point's floorplan. The
	// adaptive sweep sets it (its candidate grid has an aspect axis);
	// classic sweeps leave it zero — every point uses the flow's configured
	// aspect.
	Aspect float64

	// CriticalPathPs is the temperature-derated critical path of the point
	// in picoseconds, and WorstSlackPs the slack against the flow's clock
	// period (both zero when flow.Config.CoAnalysis is off).
	CriticalPathPs float64
	WorstSlackPs   float64
	// HPWL is the total half-perimeter wirelength of the point in um.
	HPWL float64
	// CongestionOverflows counts the routing bins whose estimated
	// utilization exceeds 1; CongestionMaxUtil is the worst bin.
	CongestionOverflows int
	CongestionMaxUtil   float64
	// Analysis carries the full measurement for further inspection (may be
	// nil when KeepAnalyses is false).
	Analysis *flow.Analysis
	// Placement is the placement measured at this point (may be nil when
	// KeepAnalyses is false).
	Placement *place.Placement
}

// SweepOptions controls an efficiency sweep.
type SweepOptions struct {
	// Overheads are the target fractional area overheads for the Default
	// and HW strategies, e.g. {0.05, 0.1, 0.2, 0.3, 0.4}.
	Overheads []float64
	// ERIRows are the empty-row counts for the ERI strategy; when empty,
	// row counts approximating Overheads are used.
	ERIRows []int
	// Strategies selects which strategies to sweep; empty means all three.
	Strategies []Strategy
	// Wrapper configures the HW transform; its PowerOf is filled in from
	// the corresponding Default analysis when nil.
	Wrapper WrapperOptions
	// WrapperDetection re-detects hotspots for the HW strategy with its own
	// (typically tighter) threshold: wrappers are built around the cells
	// that are the source of the hotspot, whereas ERI targets the broader
	// warm area around it. A zero value selects ThresholdFrac 0.75.
	WrapperDetection hotspot.Options
	// KeepAnalyses retains the full analysis and placement of every point
	// (memory heavy for large sweeps).
	KeepAnalyses bool
	// Workers bounds how many sweep points are evaluated concurrently.
	// Zero picks GOMAXPROCS; 1 evaluates the points sequentially in order.
	// Every point is a pure function of its declared lineage (thermal warm
	// starts are seeded from the parent's field: the baseline for Default
	// and ERI points, the same-overhead Default point for HW points — a
	// chain that lives entirely inside one task), so the sweep output is
	// bit-identical for every worker count.
	Workers int
	// Incremental derives each Default point's placement from the cached
	// baseline (flow.ReflowAt instead of a from-scratch PlaceAt) and
	// re-estimates power through the placement deltas the transforms
	// report (power.Report.Update instead of a full re-estimate). The
	// derived placements and updated reports are bit-identical to the
	// from-scratch ones, so the sweep output is == either way; any
	// incremental-path failure falls back to the from-scratch pipeline for
	// that point. Combine with flow.Config.PowerDeltaGateW to additionally
	// skip thermal solves whose power map barely moved (an approximation —
	// see the gate's documentation).
	Incremental bool
	// Adaptive, when non-nil, switches the sweep to the two-phase
	// multi-fidelity mode (see AdaptiveOptions): a densified candidate grid
	// is triaged with cheap coarse-fidelity estimates and only the
	// estimated Pareto front (plus a safety margin) is re-run through the
	// exact pipeline above. The returned points are exact; Triage records
	// what the coarse phase did.
	Adaptive *AdaptiveOptions
}

// DefaultSweepOptions reproduces the x-axis range of the paper's Figure 6:
// area overheads from about 5% to 40%.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Overheads: []float64{0.05, 0.10, 0.16, 0.24, 0.32, 0.40},
	}
}

// SweepResult is the outcome of an efficiency sweep.
type SweepResult struct {
	// Baseline is the analysis of the compact starting placement that every
	// reduction is measured against.
	Baseline *flow.Analysis
	// BaselineUtilization is the utilization of the baseline placement.
	BaselineUtilization float64
	// Points are the measured efficiency points, grouped by strategy in the
	// order Default, ERI, HW, each sorted by increasing area overhead.
	// Every point is an exact measurement — an adaptive sweep never emits
	// its coarse estimates as points.
	Points []EfficiencyPoint
	// Triage records what the coarse phase of an adaptive sweep did (nil
	// for a classic sweep).
	Triage *TriageStats
}

// coMetrics copies the co-analysis scalars of an analysis into the point
// (zeros when the flow ran without Config.CoAnalysis). This runs before the
// sweep releases the analysis' heavy state, so the point records survive
// ReleaseHeavy.
func (pt *EfficiencyPoint) coMetrics(an *flow.Analysis) *EfficiencyPoint {
	pt.HPWL = an.HPWL
	if an.Timing != nil {
		pt.CriticalPathPs = an.Timing.CriticalPathPs
		pt.WorstSlackPs = an.Timing.SlackPs
	}
	if an.Congestion != nil {
		pt.CongestionOverflows = an.Congestion.Overflows
		pt.CongestionMaxUtil = an.Congestion.MaxUtilization
	}
	return pt
}

// ParetoFront returns the indices into Points of the multi-objective Pareto
// front: the points no other point weakly dominates under joint
// minimization of area overhead, peak temperature rise, critical-path
// delay, wirelength and congestion overflow. A point dominates another when
// it is no worse in every objective and strictly better in at least one;
// ties (identical vectors) stay on the front. The result depends only on
// the point values and their deterministic order, so it is bit-identical
// across worker counts like the points themselves.
func (r *SweepResult) ParetoFront() []int {
	objectives := func(p *EfficiencyPoint) [5]float64 {
		return [5]float64{p.AreaOverhead, p.PeakRise, p.CriticalPathPs, p.HPWL, float64(p.CongestionOverflows)}
	}
	dominates := func(a, b [5]float64) bool {
		strict := false
		for k := range a {
			if a[k] > b[k] {
				return false
			}
			if a[k] < b[k] {
				strict = true
			}
		}
		return strict
	}
	var front []int
	for i := range r.Points {
		oi := objectives(&r.Points[i])
		dominated := false
		for j := range r.Points {
			if j != i && dominates(objectives(&r.Points[j]), oi) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Front2D returns the indices into Points of the Pareto front restricted to
// the adaptive sweep's two triage objectives — area overhead and peak
// temperature rise — under the same weak-dominance semantics as
// ParetoFront. It is the front the adaptive margin guarantee is stated on:
// an adaptive run whose margin covers the coarse estimation error yields
// the same Front2D point set as the exhaustive run over the same grid.
func (r *SweepResult) Front2D() []int {
	dominates := func(a, b *EfficiencyPoint) bool {
		if a.AreaOverhead > b.AreaOverhead || a.PeakRise > b.PeakRise {
			return false
		}
		return a.AreaOverhead < b.AreaOverhead || a.PeakRise < b.PeakRise
	}
	var front []int
	for i := range r.Points {
		dominated := false
		for j := range r.Points {
			if j != i && dominates(&r.Points[j], &r.Points[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// PointsFor returns the points of one strategy in sweep order.
func (r *SweepResult) PointsFor(s Strategy) []EfficiencyPoint {
	var out []EfficiencyPoint
	for _, p := range r.Points {
		if p.Strategy == s {
			out = append(out, p)
		}
	}
	return out
}

// reduction computes the fractional peak-rise reduction of a versus base.
func reduction(base, a float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - a) / base
}

func wantStrategy(opts SweepOptions, s Strategy) bool {
	if len(opts.Strategies) == 0 {
		return true
	}
	for _, x := range opts.Strategies {
		if x == s {
			return true
		}
	}
	return false
}

// SweepEfficiency reproduces the paper's Figure 6 experiment on the flow's
// design and workload: it measures the baseline placement, then for every
// requested area overhead measures the Default strategy (utilization
// relaxation), the ERI strategy (empty rows targeted at the baseline's
// hotspots) and the HW strategy (wrappers applied on top of the Default
// placement of the same overhead), and reports the peak-temperature
// reduction of each point.
//
// The points are independent given the baseline, so they are evaluated on a
// bounded worker group (see SweepOptions.Workers): one task per overhead
// runs the Default point and then the HW point that depends on it, and one
// task per row count runs an ERI point. Results are recorded into
// per-strategy slots and assembled in the sequential order afterwards, so
// both the values (thermal warm starts are seeded from the baseline field)
// and the ordering are bit-identical to a Workers=1 run.
func SweepEfficiency(f *flow.Flow, opts SweepOptions) (*SweepResult, error) {
	return SweepEfficiencyCtx(context.Background(), f, opts)
}

// SweepEfficiencyCtx is SweepEfficiency with cancellation: the context is
// threaded into every sweep point's thermal solve (checked per CG
// iteration), so a mid-sweep cancel aborts the in-flight points within
// milliseconds and skips the queued ones, returning an error matching
// fault.ErrCanceled. When the context never fires the sweep result is
// bit-identical to SweepEfficiency.
//
// Point failures carry provenance: the returned error names the design, the
// strategy and the point index it came from (extractable with errors.As on
// *fault.ProvenanceError), and a panic inside a point task is contained as a
// located *fault.ErrPanic rather than crashing the sweep.
func SweepEfficiencyCtx(ctx context.Context, f *flow.Flow, opts SweepOptions) (*SweepResult, error) {
	if len(opts.Overheads) == 0 {
		// Default only the overhead range; the caller's Workers, Strategies
		// and retention settings stay in force.
		opts.Overheads = DefaultSweepOptions().Overheads
	}
	if opts.Adaptive != nil {
		return sweepAdaptive(ctx, f, opts)
	}
	baseUtil := f.Config.Utilization
	baseline, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: sweep baseline: %w", err)
	}
	if len(baseline.Hotspots) == 0 {
		return nil, fmt.Errorf("core: baseline has no detectable hotspots; nothing to optimize")
	}
	baseRise := baseline.Thermal.PeakRise
	baseArea := baseline.Placement.FP.CoreArea()
	result := &SweepResult{Baseline: baseline, BaselineUtilization: baseUtil}

	wantDefault := wantStrategy(opts, StrategyDefault)
	wantHW := wantStrategy(opts, StrategyHW)
	wantERI := wantStrategy(opts, StrategyERI)

	detect := opts.WrapperDetection
	if detect.ThresholdFrac == 0 {
		detect.ThresholdFrac = 0.75
	}
	if detect.MinCells == 0 {
		detect.MinCells = 2
	}

	// Point slots, indexed by position in Overheads / rowCounts. A nil slot
	// after the run means the point was skipped (HW with no tight hotspots).
	var defaults, hws, eris []*EfficiencyPoint
	var rowCounts []int
	if wantERI {
		rowCounts = opts.ERIRows
		if len(rowCounts) == 0 {
			//repolint:allow ctxpair(geometry-only derivation over a handful of overheads; no solves inside)
			for _, ov := range opts.Overheads {
				rowCounts = append(rowCounts, RowsForAreaOverhead(baseline.Placement, ov))
			}
		}
		eris = make([]*EfficiencyPoint, len(rowCounts))
	}

	keep := func(pt *EfficiencyPoint, an *flow.Analysis, p *place.Placement) *EfficiencyPoint {
		if opts.KeepAnalyses {
			pt.Analysis = an
			pt.Placement = p
		}
		return pt
	}

	var tasks []func(context.Context) error
	design := f.Design.Name
	// provenance tags a point failure with where it came from, so a sweep
	// over many designs/strategies reports "which point broke", not just
	// "something broke".
	provenance := func(err error, s Strategy, point int) error {
		return fault.WithProvenance(err, design, string(s), point)
	}

	// One task per overhead: the Default point, then the HW point that
	// pipelines behind it. Lineage is threaded explicitly: the Default
	// point declares the baseline as its parent and the HW point declares
	// its same-overhead Default point, so every thermal solve warm-starts
	// from the nearest previously solved field — a chain that lives
	// entirely inside this task, which is what keeps the sweep output
	// independent of worker count. With opts.Incremental the Default
	// placement reflows from the cached baseline and the HW power report
	// updates through the wrapper's delta instead of re-running the full
	// pipeline (bit-identical either way; errors fall back to the
	// from-scratch path for that point).
	if wantDefault || wantHW {
		defaults = make([]*EfficiencyPoint, len(opts.Overheads))
		hws = make([]*EfficiencyPoint, len(opts.Overheads))
		for i, ov := range opts.Overheads {
			i, ov := i, ov
			tasks = append(tasks, func(tctx context.Context) error {
				util := baseUtil / (1 + ov)
				var p *place.Placement
				var delta *place.Delta
				if opts.Incremental {
					if rp, rd, rerr := f.ReflowAt(util); rerr == nil {
						p, delta = rp, rd
					}
				}
				if p == nil {
					var err error
					p, err = f.PlaceAt(util)
					if err != nil {
						return provenance(fmt.Errorf("core: default point %+v: %w", ov, err), StrategyDefault, i)
					}
				}
				an, err := f.AnalyzeWithCtx(tctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
				if err != nil {
					return provenance(fmt.Errorf("core: default point %+v: %w", ov, err), StrategyDefault, i)
				}
				if wantDefault {
					defaults[i] = keep((&EfficiencyPoint{
						Strategy:      StrategyDefault,
						AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
						TempReduction: reduction(baseRise, an.Thermal.PeakRise),
						PeakRise:      an.Thermal.PeakRise,
						Utilization:   util,
					}).coMetrics(an), an, p)
				}
				if !wantHW {
					return nil
				}
				// HW strategy: wrapper insertion on top of this Default
				// placement. The wrapper targets a tighter hotspot
				// definition than ERI does: it isolates the cells that are
				// the source of each hotspot rather than the whole warm
				// area around them.
				spots := hotspot.Detect(an.Thermal.RiseMap(), detect)
				if !opts.KeepAnalyses && f.Config.PowerDeltaGateW <= 0 {
					// Nothing downstream needs the Default point's thermal
					// layers or power map (the HW child only consumes the
					// placement, power report, hotspots and seed state), so
					// release them before the wrapper + solve instead of
					// pinning them for the rest of the task. A positive gate
					// keeps them: the child compares against the parent's
					// power map and may reuse its thermal result.
					an.ReleaseHeavy()
				}
				if len(spots) == 0 {
					return nil
				}
				defPow := an.Power
				wopts := opts.Wrapper
				if wopts.PowerOf == nil {
					wopts.PowerOf = func(inst *netlist.Instance) float64 { return defPow.InstancePower(inst) }
				}
				if wopts.HotCellFactor == 0 {
					wopts.HotCellFactor = 1.0
				}
				var hp *place.Placement
				var hdelta *place.Delta
				if opts.Incremental {
					hp, hdelta, err = HotspotWrapperDelta(an.Placement, spots, wopts)
				} else {
					// From-scratch path: skip the delta recording, too.
					hp, err = HotspotWrapper(an.Placement, spots, wopts)
				}
				if err != nil {
					return provenance(fmt.Errorf("core: HW at overhead %.2f: %w", ov, err), StrategyHW, i)
				}
				han, err := f.AnalyzeWithCtx(tctx, hp, flow.AnalyzeOptions{Parent: an, Delta: hdelta})
				if err != nil {
					return provenance(fmt.Errorf("core: HW at overhead %.2f: %w", ov, err), StrategyHW, i)
				}
				hws[i] = keep((&EfficiencyPoint{
					Strategy:      StrategyHW,
					AreaOverhead:  han.Placement.FP.CoreArea()/baseArea - 1,
					TempReduction: reduction(baseRise, han.Thermal.PeakRise),
					PeakRise:      han.Thermal.PeakRise,
					Utilization:   baseUtil / (han.Placement.FP.CoreArea() / baseArea),
				}).coMetrics(han), han, hp)
				return nil
			})
		}
	}

	// One task per ERI point: empty rows inserted at the baseline's
	// hotspots, analyzed against the baseline as lineage parent (and
	// through the insertion's delta when incremental).
	for j, rows := range rowCounts {
		j, rows := j, rows
		tasks = append(tasks, func(tctx context.Context) error {
			var p *place.Placement
			var delta *place.Delta
			var err error
			if opts.Incremental {
				p, delta, err = EmptyRowInsertionDelta(baseline.Placement, baseline.Hotspots, DefaultERIOptions(rows))
			} else {
				// From-scratch path: skip the delta recording, too.
				p, err = EmptyRowInsertion(baseline.Placement, baseline.Hotspots, DefaultERIOptions(rows))
			}
			if err != nil {
				return provenance(fmt.Errorf("core: ERI %d rows: %w", rows, err), StrategyERI, j)
			}
			an, err := f.AnalyzeWithCtx(tctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
			if err != nil {
				return provenance(fmt.Errorf("core: ERI %d rows: %w", rows, err), StrategyERI, j)
			}
			eris[j] = keep((&EfficiencyPoint{
				Strategy:      StrategyERI,
				AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
				TempReduction: reduction(baseRise, an.Thermal.PeakRise),
				PeakRise:      an.Thermal.PeakRise,
				Rows:          rows,
				Utilization:   baseUtil / (an.Placement.FP.CoreArea() / baseArea),
			}).coMetrics(an), an, p)
			return nil
		})
	}

	if err := runTasks(ctx, tasks, opts.Workers); err != nil {
		return nil, err
	}

	// Assemble in the sequential order: Default points in overhead order,
	// then ERI points in row order, then HW points in overhead order.
	for _, pt := range defaults {
		if pt != nil {
			result.Points = append(result.Points, *pt)
		}
	}
	for _, pt := range eris {
		if pt != nil {
			result.Points = append(result.Points, *pt)
		}
	}
	for _, pt := range hws {
		if pt != nil {
			result.Points = append(result.Points, *pt)
		}
	}
	return result, nil
}

// runTasks executes the tasks on a bounded worker group. workers <= 0 picks
// GOMAXPROCS; workers == 1 runs the tasks inline in order.
//
// A failed task aborts the rest of the group: tasks that have not started
// yet are skipped, and the in-flight siblings are canceled through the
// derived context every task receives (each task checks it inside its
// thermal solve, so a long-running sibling aborts within milliseconds
// instead of running to completion). The lowest-index genuine error among
// the tasks that ran is returned; a sibling that merely reports the
// abort-cancellation never masks the failure that triggered it, even when it
// ran at a lower index. An external cancellation of ctx aborts the same way
// and surfaces as an error matching fault.ErrCanceled.
//
// A panic inside a task is contained as a located *fault.ErrPanic and
// treated exactly like any other task error — the sweep caller gets an
// error, not a crash, and no worker goroutine is lost.
func runTasks(ctx context.Context, tasks []func(context.Context) error, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	if workers <= 1 {
		for i, t := range tasks {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("core: sweep: %w", fault.Canceled(cerr))
			}
			if err := runOneTask(tctx, i, t); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//repolint:allow bareGo(runTasks is itself the sweep concurrency primitive the rule points to)
		go func() {
			defer wg.Done()
			for idx := range next {
				if failed.Load() {
					continue
				}
				if err := runOneTask(tctx, idx, tasks[idx]); err != nil {
					errs[idx] = err
					failed.Store(true)
					tcancel() // abort the in-flight siblings
				}
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()

	// Prefer the lowest-index error that is not itself the
	// abort-cancellation: with workers > 1, a sibling at a lower index may
	// legitimately fail with ErrCanceled as a *consequence* of the real
	// failure, and returning it would hide the cause.
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, fault.ErrCanceled) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		// The caller's context fired: every error above (if any) is the
		// cancellation itself.
		return fmt.Errorf("core: sweep: %w", fault.Canceled(cerr))
	}
	return canceled
}

// runOneTask runs one sweep task, containing a panic as a located typed
// error so a crashing point cannot take down the worker group.
func runOneTask(ctx context.Context, idx int, task func(context.Context) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: sweep task %d: %w", idx,
				fault.Recovered(fmt.Sprintf("core sweep task %d", idx), v))
		}
	}()
	return task(ctx)
}

// ConcentratedRow is one row of the paper's Table I.
type ConcentratedRow struct {
	Strategy      Strategy
	CoreW, CoreH  float64
	Rows          int
	AreaOverhead  float64
	TempReduction float64
	PeakRise      float64
}

// ConcentratedOptions configures the Table I experiment.
type ConcentratedOptions struct {
	// Overheads are the two (or more) area-overhead points; the paper uses
	// 16.1% and 32.2%.
	Overheads []float64
	// ERIRows are the matching empty-row counts; the paper uses 20 and 40.
	// When empty, counts matching Overheads are derived from the baseline.
	ERIRows []int
	// KeepAnalyses retains each row's analysis (not exported in the row,
	// but reachable through the returned analyses slice).
	KeepAnalyses bool
}

// DefaultConcentratedOptions mirrors Table I of the paper.
func DefaultConcentratedOptions() ConcentratedOptions {
	return ConcentratedOptions{
		Overheads: []float64{0.161, 0.322},
		ERIRows:   []int{20, 40},
	}
}

// ConcentratedResult is the reproduced Table I.
type ConcentratedResult struct {
	Baseline *flow.Analysis
	Rows     []ConcentratedRow
}

// ConcentratedExperiment reproduces Table I: for a workload producing one
// large concentrated hotspot, it compares the Default strategy at the given
// area overheads against Empty Row Insertion with the given row counts
// (the wrapper method "is not suitable for large hotspots", so it is not
// part of this experiment, exactly as in the paper).
func ConcentratedExperiment(f *flow.Flow, opts ConcentratedOptions) (*ConcentratedResult, error) {
	return ConcentratedExperimentCtx(context.Background(), f, opts)
}

// ConcentratedExperimentCtx is ConcentratedExperiment with cancellation: the
// context is threaded into every row's thermal solve, so a cancel aborts the
// experiment mid-row with an error matching fault.ErrCanceled. When the
// context never fires the result is bit-identical to ConcentratedExperiment.
func ConcentratedExperimentCtx(ctx context.Context, f *flow.Flow, opts ConcentratedOptions) (*ConcentratedResult, error) {
	if len(opts.Overheads) == 0 {
		opts = DefaultConcentratedOptions()
	}
	baseline, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: concentrated baseline: %w", err)
	}
	if len(baseline.Hotspots) == 0 {
		return nil, fmt.Errorf("core: concentrated baseline has no hotspots")
	}
	baseRise := baseline.Thermal.PeakRise
	baseArea := baseline.Placement.FP.CoreArea()
	out := &ConcentratedResult{Baseline: baseline}

	for _, ov := range opts.Overheads {
		util := f.Config.Utilization / (1 + ov)
		p, err := f.PlaceAt(util)
		if err != nil {
			return nil, err
		}
		an, err := f.AnalyzeCtx(ctx, p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ConcentratedRow{
			Strategy:      StrategyDefault,
			CoreW:         p.FP.Core.W(),
			CoreH:         p.FP.Core.H(),
			AreaOverhead:  p.FP.CoreArea()/baseArea - 1,
			TempReduction: reduction(baseRise, an.Thermal.PeakRise),
			PeakRise:      an.Thermal.PeakRise,
		})
	}

	rowCounts := opts.ERIRows
	if len(rowCounts) == 0 {
		//repolint:allow ctxpair(geometry-only derivation over a handful of overheads; no solves inside)
		for _, ov := range opts.Overheads {
			rowCounts = append(rowCounts, RowsForAreaOverhead(baseline.Placement, ov))
		}
	}
	for _, rows := range rowCounts {
		p, err := EmptyRowInsertion(baseline.Placement, baseline.Hotspots[:1], DefaultERIOptions(rows))
		if err != nil {
			return nil, err
		}
		an, err := f.AnalyzeCtx(ctx, p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ConcentratedRow{
			Strategy:      StrategyERI,
			CoreW:         p.FP.Core.W(),
			CoreH:         p.FP.Core.H(),
			Rows:          rows,
			AreaOverhead:  p.FP.CoreArea()/baseArea - 1,
			TempReduction: reduction(baseRise, an.Thermal.PeakRise),
			PeakRise:      an.Thermal.PeakRise,
		})
	}
	return out, nil
}
