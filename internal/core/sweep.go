package core

import (
	"fmt"

	"thermplace/internal/flow"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// EfficiencyPoint is one point of the paper's Figure 6: a strategy applied
// at a given area overhead and the peak-temperature reduction it achieved.
type EfficiencyPoint struct {
	Strategy Strategy
	// AreaOverhead is the fractional core-area increase over the baseline
	// placement (0.16 means +16.1%).
	AreaOverhead float64
	// TempReduction is the fractional reduction of the peak temperature
	// rise relative to the baseline (0.131 means 13.1%).
	TempReduction float64
	// PeakRise is the absolute peak rise above ambient of this point in K.
	PeakRise float64
	// Rows is the number of empty rows inserted (ERI points only).
	Rows int
	// Utilization is the placement utilization of this point.
	Utilization float64
	// Analysis carries the full measurement for further inspection (may be
	// nil when KeepAnalyses is false).
	Analysis *flow.Analysis
	// Placement is the placement measured at this point (may be nil when
	// KeepAnalyses is false).
	Placement *place.Placement
}

// SweepOptions controls an efficiency sweep.
type SweepOptions struct {
	// Overheads are the target fractional area overheads for the Default
	// and HW strategies, e.g. {0.05, 0.1, 0.2, 0.3, 0.4}.
	Overheads []float64
	// ERIRows are the empty-row counts for the ERI strategy; when empty,
	// row counts approximating Overheads are used.
	ERIRows []int
	// Strategies selects which strategies to sweep; empty means all three.
	Strategies []Strategy
	// Wrapper configures the HW transform; its PowerOf is filled in from
	// the corresponding Default analysis when nil.
	Wrapper WrapperOptions
	// WrapperDetection re-detects hotspots for the HW strategy with its own
	// (typically tighter) threshold: wrappers are built around the cells
	// that are the source of the hotspot, whereas ERI targets the broader
	// warm area around it. A zero value selects ThresholdFrac 0.75.
	WrapperDetection hotspot.Options
	// KeepAnalyses retains the full analysis and placement of every point
	// (memory heavy for large sweeps).
	KeepAnalyses bool
}

// DefaultSweepOptions reproduces the x-axis range of the paper's Figure 6:
// area overheads from about 5% to 40%.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Overheads: []float64{0.05, 0.10, 0.16, 0.24, 0.32, 0.40},
	}
}

// SweepResult is the outcome of an efficiency sweep.
type SweepResult struct {
	// Baseline is the analysis of the compact starting placement that every
	// reduction is measured against.
	Baseline *flow.Analysis
	// BaselineUtilization is the utilization of the baseline placement.
	BaselineUtilization float64
	// Points are the measured efficiency points, grouped by strategy in the
	// order Default, ERI, HW, each sorted by increasing area overhead.
	Points []EfficiencyPoint
}

// PointsFor returns the points of one strategy in sweep order.
func (r *SweepResult) PointsFor(s Strategy) []EfficiencyPoint {
	var out []EfficiencyPoint
	for _, p := range r.Points {
		if p.Strategy == s {
			out = append(out, p)
		}
	}
	return out
}

// reduction computes the fractional peak-rise reduction of a versus base.
func reduction(base, a float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - a) / base
}

func wantStrategy(opts SweepOptions, s Strategy) bool {
	if len(opts.Strategies) == 0 {
		return true
	}
	for _, x := range opts.Strategies {
		if x == s {
			return true
		}
	}
	return false
}

// SweepEfficiency reproduces the paper's Figure 6 experiment on the flow's
// design and workload: it measures the baseline placement, then for every
// requested area overhead measures the Default strategy (utilization
// relaxation), the ERI strategy (empty rows targeted at the baseline's
// hotspots) and the HW strategy (wrappers applied on top of the Default
// placement of the same overhead), and reports the peak-temperature
// reduction of each point.
func SweepEfficiency(f *flow.Flow, opts SweepOptions) (*SweepResult, error) {
	if len(opts.Overheads) == 0 {
		opts = DefaultSweepOptions()
	}
	baseUtil := f.Config.Utilization
	baseline, err := f.AnalyzeBaseline()
	if err != nil {
		return nil, fmt.Errorf("core: sweep baseline: %w", err)
	}
	if len(baseline.Hotspots) == 0 {
		return nil, fmt.Errorf("core: baseline has no detectable hotspots; nothing to optimize")
	}
	baseRise := baseline.Thermal.PeakRise
	baseArea := baseline.Placement.FP.CoreArea()
	result := &SweepResult{Baseline: baseline, BaselineUtilization: baseUtil}

	record := func(pt EfficiencyPoint, an *flow.Analysis, p *place.Placement) {
		if opts.KeepAnalyses {
			pt.Analysis = an
			pt.Placement = p
		}
		result.Points = append(result.Points, pt)
	}

	// Default strategy: relax the utilization so the core grows by the
	// requested overhead.
	defaultAnalyses := make(map[float64]*flow.Analysis)
	if wantStrategy(opts, StrategyDefault) || wantStrategy(opts, StrategyHW) {
		for _, ov := range opts.Overheads {
			util := baseUtil / (1 + ov)
			p, err := f.PlaceAt(util)
			if err != nil {
				return nil, fmt.Errorf("core: default point %+v: %w", ov, err)
			}
			an, err := f.Analyze(p)
			if err != nil {
				return nil, fmt.Errorf("core: default point %+v: %w", ov, err)
			}
			defaultAnalyses[ov] = an
			if wantStrategy(opts, StrategyDefault) {
				record(EfficiencyPoint{
					Strategy:      StrategyDefault,
					AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
					TempReduction: reduction(baseRise, an.Thermal.PeakRise),
					PeakRise:      an.Thermal.PeakRise,
					Utilization:   util,
				}, an, p)
			}
		}
	}

	// ERI strategy: empty rows inserted at the baseline's hotspots.
	if wantStrategy(opts, StrategyERI) {
		rowCounts := opts.ERIRows
		if len(rowCounts) == 0 {
			for _, ov := range opts.Overheads {
				rowCounts = append(rowCounts, RowsForAreaOverhead(baseline.Placement, ov))
			}
		}
		for _, rows := range rowCounts {
			p, err := EmptyRowInsertion(baseline.Placement, baseline.Hotspots, DefaultERIOptions(rows))
			if err != nil {
				return nil, fmt.Errorf("core: ERI %d rows: %w", rows, err)
			}
			an, err := f.Analyze(p)
			if err != nil {
				return nil, fmt.Errorf("core: ERI %d rows: %w", rows, err)
			}
			record(EfficiencyPoint{
				Strategy:      StrategyERI,
				AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
				TempReduction: reduction(baseRise, an.Thermal.PeakRise),
				PeakRise:      an.Thermal.PeakRise,
				Rows:          rows,
				Utilization:   baseUtil / (an.Placement.FP.CoreArea() / baseArea),
			}, an, p)
		}
	}

	// HW strategy: wrapper insertion on top of each Default placement. The
	// wrapper targets a tighter hotspot definition than ERI does: it
	// isolates the cells that are the source of each hotspot rather than
	// the whole warm area around them.
	if wantStrategy(opts, StrategyHW) {
		detect := opts.WrapperDetection
		if detect.ThresholdFrac == 0 {
			detect.ThresholdFrac = 0.75
		}
		if detect.MinCells == 0 {
			detect.MinCells = 2
		}
		for _, ov := range opts.Overheads {
			defAn := defaultAnalyses[ov]
			if defAn == nil {
				continue
			}
			spots := hotspot.Detect(defAn.Thermal.RiseMap(), detect)
			if len(spots) == 0 {
				continue
			}
			wopts := opts.Wrapper
			if wopts.PowerOf == nil {
				rep := defAn.Power
				wopts.PowerOf = func(inst *netlist.Instance) float64 { return rep.InstancePower(inst) }
			}
			if wopts.HotCellFactor == 0 {
				wopts.HotCellFactor = 1.0
			}
			p, err := HotspotWrapper(defAn.Placement, spots, wopts)
			if err != nil {
				return nil, fmt.Errorf("core: HW at overhead %.2f: %w", ov, err)
			}
			an, err := f.Analyze(p)
			if err != nil {
				return nil, fmt.Errorf("core: HW at overhead %.2f: %w", ov, err)
			}
			record(EfficiencyPoint{
				Strategy:      StrategyHW,
				AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
				TempReduction: reduction(baseRise, an.Thermal.PeakRise),
				PeakRise:      an.Thermal.PeakRise,
				Utilization:   baseUtil / (an.Placement.FP.CoreArea() / baseArea),
			}, an, p)
		}
	}
	return result, nil
}

// ConcentratedRow is one row of the paper's Table I.
type ConcentratedRow struct {
	Strategy      Strategy
	CoreW, CoreH  float64
	Rows          int
	AreaOverhead  float64
	TempReduction float64
	PeakRise      float64
}

// ConcentratedOptions configures the Table I experiment.
type ConcentratedOptions struct {
	// Overheads are the two (or more) area-overhead points; the paper uses
	// 16.1% and 32.2%.
	Overheads []float64
	// ERIRows are the matching empty-row counts; the paper uses 20 and 40.
	// When empty, counts matching Overheads are derived from the baseline.
	ERIRows []int
	// KeepAnalyses retains each row's analysis (not exported in the row,
	// but reachable through the returned analyses slice).
	KeepAnalyses bool
}

// DefaultConcentratedOptions mirrors Table I of the paper.
func DefaultConcentratedOptions() ConcentratedOptions {
	return ConcentratedOptions{
		Overheads: []float64{0.161, 0.322},
		ERIRows:   []int{20, 40},
	}
}

// ConcentratedResult is the reproduced Table I.
type ConcentratedResult struct {
	Baseline *flow.Analysis
	Rows     []ConcentratedRow
}

// ConcentratedExperiment reproduces Table I: for a workload producing one
// large concentrated hotspot, it compares the Default strategy at the given
// area overheads against Empty Row Insertion with the given row counts
// (the wrapper method "is not suitable for large hotspots", so it is not
// part of this experiment, exactly as in the paper).
func ConcentratedExperiment(f *flow.Flow, opts ConcentratedOptions) (*ConcentratedResult, error) {
	if len(opts.Overheads) == 0 {
		opts = DefaultConcentratedOptions()
	}
	baseline, err := f.AnalyzeBaseline()
	if err != nil {
		return nil, fmt.Errorf("core: concentrated baseline: %w", err)
	}
	if len(baseline.Hotspots) == 0 {
		return nil, fmt.Errorf("core: concentrated baseline has no hotspots")
	}
	baseRise := baseline.Thermal.PeakRise
	baseArea := baseline.Placement.FP.CoreArea()
	out := &ConcentratedResult{Baseline: baseline}

	for _, ov := range opts.Overheads {
		util := f.Config.Utilization / (1 + ov)
		p, err := f.PlaceAt(util)
		if err != nil {
			return nil, err
		}
		an, err := f.Analyze(p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ConcentratedRow{
			Strategy:      StrategyDefault,
			CoreW:         p.FP.Core.W(),
			CoreH:         p.FP.Core.H(),
			AreaOverhead:  p.FP.CoreArea()/baseArea - 1,
			TempReduction: reduction(baseRise, an.Thermal.PeakRise),
			PeakRise:      an.Thermal.PeakRise,
		})
	}

	rowCounts := opts.ERIRows
	if len(rowCounts) == 0 {
		for _, ov := range opts.Overheads {
			rowCounts = append(rowCounts, RowsForAreaOverhead(baseline.Placement, ov))
		}
	}
	for _, rows := range rowCounts {
		p, err := EmptyRowInsertion(baseline.Placement, baseline.Hotspots[:1], DefaultERIOptions(rows))
		if err != nil {
			return nil, err
		}
		an, err := f.Analyze(p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ConcentratedRow{
			Strategy:      StrategyERI,
			CoreW:         p.FP.Core.W(),
			CoreH:         p.FP.Core.H(),
			Rows:          rows,
			AreaOverhead:  p.FP.CoreArea()/baseArea - 1,
			TempReduction: reduction(baseRise, an.Thermal.PeakRise),
			PeakRise:      an.Thermal.PeakRise,
		})
	}
	return out, nil
}
