// Package core implements the paper's contribution: post-placement
// temperature-reduction techniques that allocate whitespace where the
// thermal hotspots are, instead of spreading it blindly over the die.
//
// Three strategies are provided:
//
//   - Default: the reference strategy of the paper — relax the placement
//     row-utilization factor so the same cells occupy a larger core. The
//     whitespace (and hence the power-density reduction) is uniform.
//   - Empty Row Insertion (ERI): insert empty layout rows, filled with
//     zero-power dummy cells, interleaved with the populated rows of the
//     hotspot region. Only the hotspot's area grows, so the whole area
//     overhead is spent where the temperature is highest.
//   - Hotspot Wrapper (HW): surround each (small) hotspot with a ring of
//     filler cells, evict the cells that do not belong to the hotspot from
//     the wrapped region, and spread the remaining hot cells uniformly
//     inside it.
//
// All three operate on a finished placement and return a new placement;
// package flow measures the resulting peak temperature. The Sweep functions
// reproduce the paper's evaluation: Figure 6 (temperature reduction versus
// area overhead for the three strategies on scattered small hotspots) and
// Table I (Default versus ERI on a single large concentrated hotspot).
package core

import "fmt"

// Strategy identifies one of the area-management strategies.
type Strategy string

const (
	// StrategyDefault is uniform whitespace from utilization relaxation.
	StrategyDefault Strategy = "default"
	// StrategyERI is the paper's Empty Row Insertion.
	StrategyERI Strategy = "eri"
	// StrategyHW is the paper's Hotspot Wrapper.
	StrategyHW Strategy = "hw"
)

// Valid reports whether the strategy is one of the known values.
func (s Strategy) Valid() bool {
	switch s {
	case StrategyDefault, StrategyERI, StrategyHW:
		return true
	}
	return false
}

// ParseStrategy converts a string to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	st := Strategy(s)
	if !st.Valid() {
		return "", fmt.Errorf("core: unknown strategy %q (want default, eri or hw)", s)
	}
	return st, nil
}
