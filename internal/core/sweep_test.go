package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/flow"
	"thermplace/internal/netlist"
)

// TestRunTasksErrorSelection pins the error contract of the sweep's worker
// group: the lowest-index error among the tasks that ran is returned.
func TestRunTasksErrorSelection(t *testing.T) {
	sentinel := errors.New("task 2 failed")
	for _, workers := range []int{1, 3, 16} {
		tasks := make([]func(context.Context) error, 6)
		for i := range tasks {
			i := i
			tasks[i] = func(context.Context) error {
				if i == 2 {
					return sentinel
				}
				return nil
			}
		}
		if err := runTasks(context.Background(), tasks, workers); !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: got %v, want the single failing task's error", workers, err)
		}
	}

	// With several failing tasks, Workers=1 deterministically surfaces the
	// first; concurrent runs may skip later tasks after the first failure
	// but must still return one of the injected errors.
	e1, e3 := errors.New("t1"), errors.New("t3")
	mkTasks := func() []func(context.Context) error {
		tasks := make([]func(context.Context) error, 5)
		for i := range tasks {
			i := i
			tasks[i] = func(context.Context) error {
				switch i {
				case 1:
					return e1
				case 3:
					return e3
				}
				return nil
			}
		}
		return tasks
	}
	if err := runTasks(context.Background(), mkTasks(), 1); !errors.Is(err, e1) {
		t.Fatalf("sequential run must return the first error, got %v", err)
	}
	if err := runTasks(context.Background(), mkTasks(), 4); !errors.Is(err, e1) && !errors.Is(err, e3) {
		t.Fatalf("concurrent run returned an unexpected error: %v", err)
	}
}

// TestRunTasksWorkerClamping checks that worker counts beyond the task
// count (and non-positive counts) still run every task exactly once.
func TestRunTasksWorkerClamping(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 2, 64} {
		var ran atomic.Int32
		tasks := make([]func(context.Context) error, 3)
		for i := range tasks {
			tasks[i] = func(context.Context) error { ran.Add(1); return nil }
		}
		if err := runTasks(context.Background(), tasks, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := ran.Load(); got != 3 {
			t.Fatalf("workers=%d: ran %d of 3 tasks", workers, got)
		}
	}
}

// comparePoints requires two sweep results to be exactly identical: same
// point identities in order and bit-identical floats.
func comparePoints(t *testing.T, label string, a, b *SweepResult) {
	t.Helper()
	if a.Baseline.PeakRise() != b.Baseline.PeakRise() {
		t.Fatalf("%s: baseline differs: %v vs %v", label, a.Baseline.PeakRise(), b.Baseline.PeakRise())
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: point count differs: %d vs %d", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		x, y := a.Points[i], b.Points[i]
		if x.Strategy != y.Strategy || x.Rows != y.Rows ||
			x.PeakRise != y.PeakRise || x.TempReduction != y.TempReduction ||
			x.AreaOverhead != y.AreaOverhead || x.Utilization != y.Utilization {
			t.Fatalf("%s: point %d differs:\n  a %+v\n  b %+v", label, i, x, y)
		}
	}
}

// TestSweepWorkersEdgeCases checks the documented Workers semantics: zero
// picks GOMAXPROCS, negative values behave like zero, and any setting is
// bit-identical to the sequential sweep.
func TestSweepWorkersEdgeCases(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep comparison skipped in -short mode")
	}
	run := func(workers int) *SweepResult {
		f := hotFlow(t, "mult8")
		defer f.Close()
		res, err := SweepEfficiency(f, SweepOptions{
			Overheads: []float64{0.2},
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{0, -2, 7} {
		comparePoints(t, fmt.Sprintf("workers=%d", workers), ref, run(workers))
	}
}

// TestSweepSinglePoint checks the degenerate single-overhead sweep: one
// Default point, one ERI point, at most one HW point, all positive.
func TestSweepSinglePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	f := hotFlow(t, "mult8")
	defer f.Close()
	res, err := SweepEfficiency(f, SweepOptions{Overheads: []float64{0.25}, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.PointsFor(StrategyDefault)); n != 1 {
		t.Errorf("single-overhead sweep produced %d Default points", n)
	}
	if n := len(res.PointsFor(StrategyERI)); n != 1 {
		t.Errorf("single-overhead sweep produced %d ERI points", n)
	}
	if n := len(res.PointsFor(StrategyHW)); n > 1 {
		t.Errorf("single-overhead sweep produced %d HW points", n)
	}
	for _, pt := range res.Points {
		if pt.AreaOverhead <= 0 {
			t.Errorf("%s point has non-positive area overhead %v", pt.Strategy, pt.AreaOverhead)
		}
	}
	// A single ERI row count must also produce exactly one ERI point.
	res, err = SweepEfficiency(f, SweepOptions{
		Overheads:  []float64{0.25},
		ERIRows:    []int{4},
		Strategies: []Strategy{StrategyERI},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Rows != 4 {
		t.Fatalf("ERI-only single-point sweep returned %+v", res.Points)
	}
}

// TestSweepConcurrentErrorPropagation checks that a failing worker aborts a
// concurrent sweep with an error, not a partial result or a hang.
func TestSweepConcurrentErrorPropagation(t *testing.T) {
	d := netlist.NewDesign("loop", celllib.Default65nm())
	u1, _ := d.AddInstance("u1", "INV_X1", "u")
	u2, _ := d.AddInstance("u2", "INV_X1", "u")
	n1 := d.GetOrCreateNet("n1")
	n2 := d.GetOrCreateNet("n2")
	_ = d.Connect(u1, "A", n2)
	_ = d.Connect(u1, "Z", n1)
	_ = d.Connect(u2, "A", n1)
	_ = d.Connect(u2, "Z", n2)
	for _, workers := range []int{4, -1} {
		f := flow.New(d, bench.UniformWorkload(0.2), flow.FastConfig())
		res, err := SweepEfficiency(f, SweepOptions{
			Overheads: []float64{0.1, 0.2, 0.3},
			Workers:   workers,
		})
		f.Close()
		if err == nil {
			t.Fatalf("workers=%d: sweep on an unsimulatable design returned %+v, want error", workers, res)
		}
	}
}

// TestSweepIncrementalBitIdentical is the engine-level half of the
// incremental pipeline's guarantee: a sweep whose Default points reflow
// from the cached baseline and whose power reports update through
// placement deltas must be == (on every float) to the from-scratch sweep,
// sequentially and concurrently.
func TestSweepIncrementalBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep comparison skipped in -short mode")
	}
	run := func(incremental bool, workers int) *SweepResult {
		f := hotFlow(t, "mult8")
		defer f.Close()
		res, err := SweepEfficiency(f, SweepOptions{
			Overheads:   []float64{0.15, 0.3},
			Workers:     workers,
			Incremental: incremental,
		})
		if err != nil {
			t.Fatalf("incremental=%v workers=%d: %v", incremental, workers, err)
		}
		return res
	}
	ref := run(false, 1)
	comparePoints(t, "incremental sequential", ref, run(true, 1))
	comparePoints(t, "incremental concurrent", ref, run(true, 4))
}

// TestSweepIncrementalWithGateStaysClose opts into the power-delta
// approximation gate on top of the incremental sweep and checks the results
// stay within the gate's expected influence (the gate only ever skips
// solves whose inputs barely moved).
func TestSweepIncrementalWithGateStaysClose(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep comparison skipped in -short mode")
	}
	f := hotFlow(t, "mult8")
	defer f.Close()
	f.Config.PowerDeltaGateW = 1e-9
	res, err := SweepEfficiency(f, SweepOptions{
		Overheads:   []float64{0.2},
		Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := hotFlow(t, "mult8")
	defer g.Close()
	ref, err := SweepEfficiency(g, SweepOptions{Overheads: []float64{0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(ref.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(res.Points), len(ref.Points))
	}
	for i := range res.Points {
		a, b := res.Points[i], ref.Points[i]
		if d := a.PeakRise - b.PeakRise; d > 1e-3 || d < -1e-3 {
			t.Fatalf("gated point %d drifted %v C from the exact sweep", i, d)
		}
	}
}

// TestERIDeltaComposesWithDefaultDelta follows the incremental lineage one
// step further than the sweep does: a Default point reflowed from the
// baseline (full delta) with an ERI insertion stacked on top (sparse
// delta). The merged baseline→ERI delta must be full — the reflow moved
// everything — and updating the baseline power report across it must equal
// a from-scratch estimate of the final placement bit for bit.
func TestERIDeltaComposesWithDefaultDelta(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	defPl, d1, err := f.ReflowAt(f.Config.Utilization / 1.2)
	if err != nil {
		t.Fatal(err)
	}
	defAn, err := f.AnalyzeWith(defPl, flow.AnalyzeOptions{Parent: base, Delta: d1})
	if err != nil {
		t.Fatal(err)
	}
	if len(defAn.Hotspots) == 0 {
		t.Skip("relaxed placement has no hotspots to target")
	}
	eriPl, d2, err := EmptyRowInsertionDelta(defPl, defAn.Hotspots, DefaultERIOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Empty() || d2.IsFull() {
		t.Fatalf("ERI delta should be surgical, got full=%v empty=%v", d2.IsFull(), d2.Empty())
	}
	merged := d1.Merge(d2)
	if !merged.IsFull() {
		t.Fatal("full Default delta composed with ERI delta must stay full")
	}
	// Updating across the merged (full) delta falls back to the full pass
	// and must equal a fresh estimate; updating the Default report across
	// just the ERI delta must too.
	eriAn, err := f.AnalyzeWith(eriPl, flow.AnalyzeOptions{Parent: defAn, Delta: d2})
	if err != nil {
		t.Fatal(err)
	}
	fromMerged := base.Power.Update(eriPl, merged)
	if got, want := fromMerged.Total(), eriAn.Power.Total(); got != want {
		t.Fatalf("merged-delta power %v != delta-updated power %v", got, want)
	}
}

// TestParetoFrontDegenerateCases pins the front extraction on the shapes an
// adaptive sweep can legitimately produce: duplicate measurements (ties stay
// on the front), a single-point sweep, and a set where one point dominates
// everything else. The cases are built directly on SweepResult, so they hold
// for any producer of Points.
func TestParetoFrontDegenerateCases(t *testing.T) {
	pt := func(area, rise, crit, hpwl float64, over int) EfficiencyPoint {
		return EfficiencyPoint{
			AreaOverhead: area, PeakRise: rise,
			CriticalPathPs: crit, HPWL: hpwl, CongestionOverflows: over,
		}
	}

	t.Run("duplicates", func(t *testing.T) {
		r := &SweepResult{Points: []EfficiencyPoint{
			pt(0.1, 5, 100, 1000, 0),
			pt(0.1, 5, 100, 1000, 0), // identical vector: a tie, not dominated
			pt(0.2, 6, 110, 1100, 1), // strictly worse everywhere
		}}
		if got := r.ParetoFront(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("ParetoFront with duplicates = %v, want [0 1]", got)
		}
		if got := r.Front2D(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("Front2D with duplicates = %v, want [0 1]", got)
		}
	})

	t.Run("single-point", func(t *testing.T) {
		r := &SweepResult{Points: []EfficiencyPoint{pt(0.16, 4, 90, 900, 0)}}
		if got := r.ParetoFront(); len(got) != 1 || got[0] != 0 {
			t.Fatalf("single-point ParetoFront = %v", got)
		}
		if got := r.Front2D(); len(got) != 1 || got[0] != 0 {
			t.Fatalf("single-point Front2D = %v", got)
		}
	})

	t.Run("empty", func(t *testing.T) {
		r := &SweepResult{}
		if got := r.ParetoFront(); len(got) != 0 {
			t.Fatalf("empty ParetoFront = %v", got)
		}
		if got := r.Front2D(); len(got) != 0 {
			t.Fatalf("empty Front2D = %v", got)
		}
	})

	t.Run("all-dominated", func(t *testing.T) {
		r := &SweepResult{Points: []EfficiencyPoint{
			pt(0.3, 9, 130, 1300, 2),
			pt(0.2, 8, 120, 1200, 1),
			pt(0.1, 5, 100, 1000, 0), // dominates everything above
		}}
		if got := r.ParetoFront(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("all-dominated ParetoFront = %v, want [2]", got)
		}
		if got := r.Front2D(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("all-dominated Front2D = %v, want [2]", got)
		}
	})

	// Incomparable points (each better on one axis) all stay on the front.
	t.Run("antichain", func(t *testing.T) {
		r := &SweepResult{Points: []EfficiencyPoint{
			pt(0.1, 9, 100, 1000, 0),
			pt(0.2, 7, 100, 1000, 0),
			pt(0.3, 5, 100, 1000, 0),
		}}
		if got := r.Front2D(); len(got) != 3 {
			t.Fatalf("antichain Front2D = %v, want all three", got)
		}
	})
}

// TestAdaptiveTriageStatsNaNFree pins the NaN-free guarantee of the triage
// statistics a real adaptive run attaches to its SweepResult: every recorded
// scalar is finite and the fronts over the exact points are well defined.
func TestAdaptiveTriageStatsNaNFree(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	r, err := SweepEfficiency(f, SweepOptions{
		Overheads:   []float64{0.05, 0.40},
		Incremental: true,
		Workers:     2,
		Adaptive:    &AdaptiveOptions{GridScale: 2, Margin: 0.04, CoarseFactor: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := r.Triage
	if ts == nil {
		t.Fatal("adaptive run recorded no triage stats")
	}
	for name, v := range map[string]float64{
		"Margin":     ts.Margin,
		"MaxEstErrC": ts.MaxEstErrC,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("triage stat %s = %v, want finite", name, v)
		}
	}
	for _, p := range r.Points {
		for name, v := range map[string]float64{
			"AreaOverhead": p.AreaOverhead, "PeakRise": p.PeakRise,
			"TempReduction": p.TempReduction, "Utilization": p.Utilization,
			"Aspect": p.Aspect,
		} {
			if math.IsNaN(v) {
				t.Fatalf("point %+v has NaN %s", p, name)
			}
		}
	}
	if got := r.ParetoFront(); len(got) == 0 {
		t.Fatal("adaptive result has an empty Pareto front")
	}
	if got := r.Front2D(); len(got) == 0 {
		t.Fatal("adaptive result has an empty 2D front")
	}
}
