package core

import (
	"fmt"
	"math"

	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// WrapperOptions tunes the Hotspot Wrapper transform.
type WrapperOptions struct {
	// PowerOf returns the estimated power of an instance in watts; it is
	// used to decide which cells are "the source of the hotspot" (kept
	// inside the wrapper) and which are bystanders (moved outside).
	// It must not be nil.
	PowerOf func(*netlist.Instance) float64
	// RingWidth is the width of the whitespace ring around each wrapped
	// region in micrometres. Zero selects a default of two row heights.
	RingWidth float64
	// ExpandFactor is the factor by which the wrapped region's area exceeds
	// the detected hotspot's bounding box, so the hot cells end up with
	// more room than they currently occupy. Zero selects the default of
	// 1 / utilization of the starting placement (i.e. the wrapper soaks up
	// the placement's average whitespace share), clamped to [1.2, 3].
	ExpandFactor float64
	// HotCellFactor marks a cell as hot when its power exceeds
	// HotCellFactor times the average cell power inside the detected
	// hotspot box. Zero selects the default of 1.0.
	HotCellFactor float64
	// MaxHotspots bounds how many hotspots are wrapped (hottest first).
	// Zero means all.
	MaxHotspots int
}

// DefaultWrapperOptions returns the settings used in the experiments.
func DefaultWrapperOptions(powerOf func(*netlist.Instance) float64) WrapperOptions {
	return WrapperOptions{PowerOf: powerOf, HotCellFactor: 1.0}
}

// HotspotWrapper applies the paper's second technique to each detected
// hotspot: a wrapper region around the hotspot is isolated by a "whitespace
// ring" of filler cells, the cells that do not belong to the hotspot are
// moved outside the wrapper, and the remaining hot cells are redistributed
// uniformly over the wrapped region so they are no longer tightly grouped.
// The core outline does not change, so the area overhead is whatever
// whitespace the starting placement already had: the paper applies HW on
// top of a Default utilization-relaxed placement.
//
// The transform never modifies its input placement.
func HotspotWrapper(p *place.Placement, spots []hotspot.Hotspot, opts WrapperOptions) (*place.Placement, error) {
	out, _, err := hotspotWrapper(p, spots, opts, false)
	return out, err
}

// HotspotWrapperDelta is HotspotWrapper with change tracking: it
// additionally returns the place.Delta between the input placement and the
// wrapped result — the hot cells that were spread, the bystanders that were
// pushed out, whatever the legalizer then touched, and the nets those moves
// dirtied. Wrapping is a local edit, so the delta is typically small and
// the incremental sweep re-estimates only a fraction of the power report
// for an HW point.
func HotspotWrapperDelta(p *place.Placement, spots []hotspot.Hotspot, opts WrapperOptions) (*place.Placement, *place.Delta, error) {
	return hotspotWrapper(p, spots, opts, true)
}

func hotspotWrapper(p *place.Placement, spots []hotspot.Hotspot, opts WrapperOptions, record bool) (*place.Placement, *place.Delta, error) {
	if opts.PowerOf == nil {
		return nil, nil, fmt.Errorf("core: wrapper needs a PowerOf function")
	}
	if len(spots) == 0 {
		return nil, nil, fmt.Errorf("core: wrapper needs at least one hotspot")
	}
	if opts.RingWidth <= 0 {
		opts.RingWidth = 2 * p.FP.RowHeight
	}
	if opts.HotCellFactor <= 0 {
		opts.HotCellFactor = 1.0
	}
	if opts.ExpandFactor <= 0 {
		util := p.Utilization()
		if util <= 0 || util >= 1 {
			opts.ExpandFactor = 1.5
		} else {
			opts.ExpandFactor = geom.Clamp(1/util, 1.2, 3.0)
		}
	}
	if opts.MaxHotspots > 0 && len(spots) > opts.MaxHotspots {
		spots = spots[:opts.MaxHotspots]
	}

	out := p.Clone()
	if record {
		out.BeginDelta()
	}
	core := out.FP.Core

	for _, h := range spots {
		hotBox := h.Rect.Intersect(core)
		if hotBox.Empty() {
			continue
		}
		// The wrapped (outer) region: the hotspot bounding box grown so its
		// area increases by ExpandFactor, clipped to the core.
		growth := (math.Sqrt(opts.ExpandFactor) - 1) / 2
		outer := hotBox.Expand(growth * (hotBox.W() + hotBox.H()) / 2).Intersect(core)
		// The inner region (where the hot cells will live) excludes the
		// whitespace ring.
		inner := outer.Expand(-opts.RingWidth).Intersect(core)
		if inner.Empty() || inner.W() < 4*out.FP.SiteWidth || inner.H() < out.FP.RowHeight {
			// Hotspot too small to wrap meaningfully; skip it.
			continue
		}

		// Partition the cells inside the wrapped region. "Hot" cells — the
		// source of the hotspot — are those whose power exceeds the design
		// average (times HotCellFactor); they stay and are spread out.
		// Everything else is a bystander that gets moved outside the
		// wrapper, exactly as the paper's exclusive move bounds would do.
		inside := out.InstancesInRect(outer)
		if len(inside) == 0 {
			continue
		}
		designTotal, designCount := 0.0, 0
		for _, inst := range out.Design.Instances() {
			if inst.IsFiller() {
				continue
			}
			designTotal += opts.PowerOf(inst)
			designCount++
		}
		threshold := 0.0
		if designCount > 0 {
			threshold = designTotal / float64(designCount) * opts.HotCellFactor
		}
		var hotCells, coldCells []*netlist.Instance
		for _, inst := range inside {
			if opts.PowerOf(inst) >= threshold {
				hotCells = append(hotCells, inst)
			} else {
				coldCells = append(coldCells, inst)
			}
		}
		if len(hotCells) == 0 {
			continue
		}

		// The hot cells must fit in the inner region with some slack; when
		// they do not, give up on the ring for this hotspot and use the
		// full wrapped region instead of failing.
		hotWidth := 0.0
		for _, inst := range hotCells {
			hotWidth += inst.Master.Width
		}
		rowCapacity := func(r geom.Rect) float64 {
			rows := int(r.H() / out.FP.RowHeight)
			return float64(rows) * r.W()
		}
		if hotWidth > 0.9*rowCapacity(inner) {
			inner = outer
		}
		if hotWidth > 0.95*rowCapacity(inner) {
			// Even the full wrapper cannot hold the hot cells with slack;
			// wrapping would concentrate rather than spread them, so skip.
			continue
		}

		// Move the cold cells just outside the wrapper: each is pushed out
		// past the nearer edge (plus the ring), and the legalizer then finds
		// them real sites in the surrounding whitespace. This mirrors the
		// "exclusive move bound" a commercial tool would use.
		for _, inst := range coldCells {
			l, _ := out.Loc(inst)
			c := out.Center(inst)
			distLeft := c.X - outer.Xlo
			distRight := outer.Xhi - c.X
			distDown := c.Y - outer.Ylo
			distUp := outer.Yhi - c.Y
			minDist := distLeft
			target := geom.Point{X: outer.Xlo - opts.RingWidth - inst.Master.Width, Y: l.Y}
			if distRight < minDist {
				minDist = distRight
				target = geom.Point{X: outer.Xhi + opts.RingWidth, Y: l.Y}
			}
			if distDown < minDist {
				minDist = distDown
				target = geom.Point{X: l.X, Y: outer.Ylo - opts.RingWidth - out.FP.RowHeight}
			}
			if distUp < minDist {
				target = geom.Point{X: l.X, Y: outer.Yhi + opts.RingWidth}
			}
			// Clamp into the core; the legalizer resolves any pile-ups.
			target.X = geom.Clamp(target.X, core.Xlo, core.Xhi-inst.Master.Width)
			target.Y = geom.Clamp(target.Y, core.Ylo, core.Yhi-out.FP.RowHeight)
			row := out.FP.RowAt(target.Y + out.FP.RowHeight/2)
			out.SetLoc(inst, place.Loc{X: target.X, Y: row.Y, Row: row.Index})
		}

		// Redistribute the hot cells uniformly over the inner region by
		// scaling their positions about the hotspot centre. Scaling (rather
		// than re-packing) keeps every cell's neighbours unchanged, so the
		// disturbance to wirelength and timing stays local, as the paper
		// requires; the legalizer then snaps the scaled positions onto rows
		// and sites.
		cx, cy := hotBox.Center().X, hotBox.Center().Y
		sx := inner.W() / hotBox.W()
		sy := inner.H() / hotBox.H()
		if sx < 1 {
			sx = 1
		}
		if sy < 1 {
			sy = 1
		}
		icx, icy := inner.Center().X, inner.Center().Y
		for _, inst := range hotCells {
			l, _ := out.Loc(inst)
			c := out.Center(inst)
			nx := icx + (c.X-cx)*sx - inst.Master.Width/2
			ny := icy + (c.Y-cy)*sy - out.FP.RowHeight/2
			nx = geom.Clamp(nx, inner.Xlo, inner.Xhi-inst.Master.Width)
			ny = geom.Clamp(ny, inner.Ylo, inner.Yhi-out.FP.RowHeight)
			row := out.FP.RowAt(ny + out.FP.RowHeight/2)
			l.X, l.Y, l.Row = nx, row.Y, row.Index
			out.SetLoc(inst, l)
		}
	}

	place.Legalize(out)
	place.InsertFillers(out)
	if !record {
		return out, nil, nil
	}
	return out, out.EndDelta(), nil
}
