package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"thermplace/internal/fault"
)

// waitGoroutines polls until the goroutine count returns to base, failing
// with a full stack dump if it does not settle.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunTasksCancelsSiblings is the regression for the abort contract: once
// a task fails, an in-flight sibling must be canceled through its context —
// not left to run to completion — and queued tasks must never start. The
// failing task's error must surface even though the canceled sibling ran at
// a lower index.
func TestRunTasksCancelsSiblings(t *testing.T) {
	sentinel := errors.New("task 1 failed")
	started := make(chan struct{})
	var slowCanceled atomic.Bool
	var ran [4]atomic.Bool
	tasks := []func(context.Context) error{
		// Task 0: a long task that only finishes early if the abort
		// cancellation reaches it.
		func(ctx context.Context) error {
			close(started)
			select {
			case <-ctx.Done():
				slowCanceled.Store(true)
				return fault.Canceled(ctx.Err())
			case <-time.After(10 * time.Second):
				return errors.New("sibling was never canceled")
			}
		},
		// Task 1 fails once task 0 is in flight.
		func(context.Context) error {
			<-started
			return sentinel
		},
		func(context.Context) error { ran[2].Store(true); return nil },
		func(context.Context) error { ran[3].Store(true); return nil },
	}
	start := time.Now()
	err := runTasks(context.Background(), tasks, 2)
	if !errors.Is(err, sentinel) {
		t.Fatalf("abort returned %v, want the failing task's error (a canceled sibling must not mask it)", err)
	}
	if !slowCanceled.Load() {
		t.Fatal("in-flight sibling was not canceled on failure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v: the sibling ran to completion instead of being canceled", elapsed)
	}
	if ran[2].Load() || ran[3].Load() {
		t.Fatal("queued tasks started after a recorded failure")
	}
}

// TestRunTasksExternalCancel asserts that canceling the caller's context
// aborts the group with a typed error on both the sequential and the
// concurrent path.
func TestRunTasksExternalCancel(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		tasks := make([]func(context.Context) error, 8)
		for i := range tasks {
			tasks[i] = func(tctx context.Context) error {
				if ran.Add(1) == 1 {
					cancel() // fire mid-run, from inside the first task
				}
				<-tctx.Done()
				return fault.Canceled(tctx.Err())
			}
		}
		err := runTasks(ctx, tasks, workers)
		cancel()
		if !errors.Is(err, fault.ErrCanceled) {
			t.Fatalf("workers=%d: external cancel returned %v, want fault.ErrCanceled", workers, err)
		}
		if got := ran.Load(); got > int32(workers) {
			t.Fatalf("workers=%d: %d tasks started after the cancel", workers, got)
		}
	}
}

// TestRunTasksPanicContained asserts that a panicking task surfaces as a
// located typed error instead of crashing the worker group.
func TestRunTasksPanicContained(t *testing.T) {
	for _, workers := range []int{1, 3} {
		tasks := []func(context.Context) error{
			func(context.Context) error { return nil },
			func(context.Context) error { panic("task exploded") },
			func(context.Context) error { return nil },
		}
		err := runTasks(context.Background(), tasks, workers)
		var pe *fault.ErrPanic
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: task panic not contained: %v", workers, err)
		}
		if pe.Value != "task exploded" {
			t.Fatalf("workers=%d: panic value lost: %v", workers, pe.Value)
		}
	}
}

// TestRunTasksPanicDuringCancel asserts the error-preference contract when a
// sibling panics while the group's context is already canceled: the panic is
// a genuine failure and must surface as the located *fault.ErrPanic, never
// masked by the cancellation the other siblings are reporting.
func TestRunTasksPanicDuringCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	tasks := []func(context.Context) error{
		// Cancels the group once the sibling is in flight, so both tasks are
		// executing when the cancellation lands (a recorded failure would
		// otherwise skip the not-yet-started sibling).
		func(tctx context.Context) error {
			<-started
			cancel()
			<-tctx.Done()
			return fault.Canceled(tctx.Err())
		},
		// Panics only after the cancellation has fired.
		func(tctx context.Context) error {
			close(started)
			<-tctx.Done()
			panic("sibling exploded during cancellation")
		},
	}
	err := runTasks(ctx, tasks, 2)
	var pe *fault.ErrPanic
	if !errors.As(err, &pe) {
		t.Fatalf("panic during cancellation returned %v, want the contained *fault.ErrPanic", err)
	}
	if pe.Value != "sibling exploded during cancellation" {
		t.Fatalf("panic value lost: %v", pe.Value)
	}
	if errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("panic error also matches ErrCanceled, so exit-code mapping would report 130 for a crash: %v", err)
	}

	// The sequential path, by contrast, never starts a task under an
	// already-canceled context: there is nothing to panic, and the typed
	// cancellation is the whole story.
	err = runTasks(ctx, []func(context.Context) error{
		func(context.Context) error { panic("must not run") },
	}, 1)
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("sequential path under a canceled context returned %v, want fault.ErrCanceled", err)
	}
}

// TestSweepCancelMidSweep cancels a sweep stalled inside a thermal solve and
// asserts the typed error and the zero-leak guarantee (the harness
// additionally asserts the <100ms latency bound on the paper-scale sweep).
func TestSweepCancelMidSweep(t *testing.T) {
	base := runtime.NumGoroutine()
	f := hotFlow(t, "mult8")
	// Solve 1 is the baseline; stalling solve 2 parks the first sweep point.
	f.Config.Thermal.Inject = &fault.Injector{StallCGSolveN: 2}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	_, err := SweepEfficiencyCtx(ctx, f, SweepOptions{Overheads: []float64{0.2}, Workers: 2})
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("canceled sweep returned %v, want fault.ErrCanceled", err)
	}
	if f.FaultStats().Canceled == 0 {
		t.Fatal("cancellation not recorded in the flow's fault stats")
	}
	f.Close()
	waitGoroutines(t, base)
}

// TestSweepNotConvergedExtraction pins the error taxonomy across the full
// wrapping chain: an injected CG non-convergence inside one sweep point must
// be extractable from the sweep's returned error both as the typed
// *fault.ErrNotConverged and as a *fault.ProvenanceError naming the design,
// the strategy and the point that failed.
func TestSweepNotConvergedExtraction(t *testing.T) {
	f := hotFlow(t, "mult8")
	defer f.Close()
	// Solve 1 is the baseline; solve 2 is the first Default point with
	// Workers=1. FailRetry makes the Jacobi fallback fail too, so the
	// non-convergence surfaces instead of degrading.
	f.Config.Thermal.Inject = &fault.Injector{FailCGSolveN: 2, FailRetry: true}
	_, err := SweepEfficiency(f, SweepOptions{Overheads: []float64{0.2}, Workers: 1})
	if err == nil {
		t.Fatal("sweep with a doubly-failed solve reported success")
	}
	var nc *fault.ErrNotConverged
	if !errors.As(err, &nc) {
		t.Fatalf("ErrNotConverged not extractable through core/flow wrapping: %v", err)
	}
	if nc.Iters <= 0 {
		t.Fatalf("ErrNotConverged lost its fields through wrapping: %+v", nc)
	}
	var pv *fault.ProvenanceError
	if !errors.As(err, &pv) {
		t.Fatalf("sweep error carries no provenance: %v", err)
	}
	if pv.Design != f.Design.Name || pv.Strategy != string(StrategyDefault) || pv.Point != 0 {
		t.Fatalf("wrong provenance %q/%q point %d: %v", pv.Design, pv.Strategy, pv.Point, err)
	}

	// The sweep works once the injection is disarmed (counter already past).
	f.Config.Thermal.Inject = nil
	if _, err := SweepEfficiency(f, SweepOptions{Overheads: []float64{0.2}, Workers: 1}); err != nil {
		t.Fatalf("sweep after surfaced failure: %v", err)
	}
}

// TestSweepCtxBitIdentical asserts the never-fires half of the context
// contract at the sweep level: SweepEfficiencyCtx with a live cancelable
// context is == (every float) to SweepEfficiency.
func TestSweepCtxBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep comparison skipped in -short mode")
	}
	run := func(ctx context.Context) *SweepResult {
		f := hotFlow(t, "mult8")
		defer f.Close()
		res, err := SweepEfficiencyCtx(ctx, f, SweepOptions{Overheads: []float64{0.2}, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	comparePoints(t, "live-context sweep", run(context.Background()), run(ctx))
}
