package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"thermplace/internal/fault"
	"thermplace/internal/floorplan"
	"thermplace/internal/flow"
	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
	"thermplace/internal/thermal"
)

// AdaptiveOptions configures the two-phase multi-fidelity sweep
// (SweepOptions.Adaptive). Phase 1 enumerates a densified candidate grid —
// the base overhead axis refined GridScale times, crossed with the Aspects
// axis — and scores every candidate with a cheap coarse-fidelity estimate:
// no placement is built; the baseline power map is transformed
// geometrically into the candidate's floorplan and solved on a CoarseFactor
// downsampled thermal grid. The coarse model's bias is systematic and
// nearly linear in area overhead, so the estimates are calibrated with a
// two-point scheme: the exact/coarse rise ratio is interpolated linearly in
// area between the baseline (area 0) and one exact anchor measurement per
// estimate family (the largest-area Default and ERI candidates, whose exact
// measurements are reused as sweep points). Phase 2 re-runs only the
// estimated Pareto front (plus every candidate within Margin of it) through
// the exact incremental pipeline; the sweep's points are those exact
// measurements, bit-identical to an exhaustive run's measurements of the
// same candidates.
type AdaptiveOptions struct {
	// GridScale densifies the overhead axis: the candidate grid spans the
	// base Overheads range with len(Overheads)*GridScale uniformly spaced
	// points. 0 or 1 keeps the base overheads verbatim.
	GridScale int
	// Margin widens the survivor set around the estimated front. Candidate
	// s is triaged away only when some candidate q dominates it by more
	// than the margin in the estimated objective: q.area <= s.area and
	// q.estRise <= s.estRise - Margin*S, S being the rise range over the
	// candidates (with at least one strict inequality, so duplicates keep
	// each other alive). The margin applies to the rise axis only — area
	// overhead is computed exactly from candidate geometry and carries no
	// estimation error to absorb. Margin 0 keeps exactly the estimated
	// front; the true exact front is preserved whenever every pair's
	// differential rise-estimation error |err_s - err_q| stays below
	// Margin*S. +Inf disables triage entirely — every candidate survives
	// to the exact phase, the exhaustive reference mode the harness
	// compares against.
	Margin float64
	// MaxExact, when positive, caps how many survivors are re-run exactly:
	// survivors are kept in deterministic candidate order and the excess is
	// dropped and counted in TriageStats.Truncated — an explicit budget,
	// never a silent cap. The calibration anchors are exempt (their exact
	// measurements are already in hand when the budget is applied).
	MaxExact int
	// CoarseFactor is the thermal grid downsampling factor of the estimate
	// phase (thermal.Config.CoarseFactor). 0 selects 4; values below 2 are
	// otherwise rejected (a factor of 1 would make "triage" as expensive as
	// the exact phase).
	CoarseFactor int
	// Aspects is the core aspect-ratio axis of the candidate grid, applied
	// to Default and HW candidates (ERI stretches the baseline placement,
	// whose aspect is fixed). Empty means the flow's configured aspect
	// only.
	Aspects []float64

	// InjectEstRiseBiasC is a fault-injection hook for the bench harness:
	// it biases the estimated peak rise of every odd-indexed candidate by
	// the given amount (in C) before triage, deterministically corrupting
	// the coarse phase so the exactness check on the adaptive front must
	// fail. Zero injects nothing.
	InjectEstRiseBiasC float64
}

// TriageStats records what the coarse phase of an adaptive sweep did.
type TriageStats struct {
	// Candidates is the size of the enumerated candidate grid; Survivors of
	// them passed the margin triage (including estimate-less candidates
	// that survive conservatively, e.g. an HW candidate whose coarse rise
	// map shows no hotspot to wrap). Survivors minus Truncated reached the
	// exact phase.
	Candidates int
	Survivors  int
	// CoarseSolves counts the downsampled thermal solves of phase 1
	// (including the coarse baseline calibration solve); ExactSolves the
	// full-fidelity pipeline runs of phase 2.
	CoarseSolves int
	ExactSolves  int
	// ExtraParents counts triaged-away Default candidates that were
	// measured exactly anyway because a surviving HW candidate needed its
	// Default placement as lineage parent; they are not reported as points.
	ExtraParents int
	// Anchors counts the exact calibration measurements of phase 1 (at most
	// one per estimate family). Anchor points always appear in the result —
	// they are exact measurements already paid for — and are exempt from the
	// MaxExact budget.
	Anchors int
	// Truncated counts survivors dropped by the MaxExact budget.
	Truncated int
	// Margin echoes the dominance margin the triage ran with.
	Margin float64
	// ErrHist is the histogram of relative est-vs-exact peak-rise error
	// over the surviving candidates: <1%, <2%, <5%, <10%, >=10%.
	ErrHist [5]int
	// MaxEstErrC is the largest absolute est-vs-exact peak-rise difference
	// observed over the surviving candidates, in C.
	MaxEstErrC float64
}

// addErr records one est-vs-exact comparison into the histogram.
func (ts *TriageStats) addErr(estRise, exactRise float64) {
	err := math.Abs(estRise - exactRise)
	if err > ts.MaxEstErrC {
		ts.MaxEstErrC = err
	}
	rel := 1.0
	if exactRise > 0 {
		rel = err / exactRise
	}
	switch {
	case rel < 0.01:
		ts.ErrHist[0]++
	case rel < 0.02:
		ts.ErrHist[1]++
	case rel < 0.05:
		ts.ErrHist[2]++
	case rel < 0.10:
		ts.ErrHist[3]++
	default:
		ts.ErrHist[4]++
	}
}

// adaptiveCandidate is one cell of the densified design-space grid, carried
// through both phases.
type adaptiveCandidate struct {
	index    int // position in the deterministic enumeration order
	strategy Strategy
	overhead float64 // target fractional area overhead (Default/HW)
	rows     int     // ERI only
	aspect   float64
	util     float64 // placement utilization (Default/HW)

	// Phase-1 estimate. estArea is exact (derived from the candidate's
	// floorplan geometry); rawRise is the uncalibrated coarse-solve peak
	// rise and estRise the calibrated estimate. estValid is false when no
	// estimate could be formed (the candidate then survives
	// conservatively). anchored marks the calibration anchors, measured
	// exactly during phase 1.
	estValid bool
	estArea  float64
	rawRise  float64
	estRise  float64
	survives bool
	anchored bool

	// Phase-2 exact measurement (nil when triaged away, truncated, or the
	// exact transform skipped the point, e.g. HW with nothing to wrap).
	point *EfficiencyPoint
}

// adaptiveOverheads densifies the base overhead axis to len(base)*scale
// uniformly spaced points spanning the base range.
func adaptiveOverheads(base []float64, scale int) []float64 {
	if scale <= 1 || len(base) == 0 {
		return base
	}
	lo, hi := base[0], base[0]
	for _, v := range base {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	n := len(base) * scale
	if n < 2 || lo == hi {
		return base
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// coarsePool is the adaptive sweep's private pool of downsampled thermal
// solvers. Every solve is seeded from the same coarse-baseline field, so
// the estimates are independent of which pooled solver (and hence which
// worker schedule) ran them.
type coarsePool struct {
	cfg  thermal.Config
	seed []float64

	mu   sync.Mutex
	free []*thermal.Solver

	solves atomic.Int64
}

func (cp *coarsePool) solve(ctx context.Context, pm *geom.Grid) (*thermal.Result, error) {
	cp.mu.Lock()
	var s *thermal.Solver
	if n := len(cp.free); n > 0 {
		s, cp.free = cp.free[n-1], cp.free[:n-1]
	}
	cp.mu.Unlock()
	if s == nil {
		var err error
		s, err = thermal.NewSolver(cp.cfg)
		if err != nil {
			return nil, err
		}
	}
	if cp.seed != nil {
		if err := s.SeedState(cp.seed); err != nil {
			s.Close()
			return nil, err
		}
	}
	res, err := s.SolveCtx(ctx, pm)
	if err != nil {
		s.Close()
		return nil, err
	}
	cp.solves.Add(1)
	cp.mu.Lock()
	cp.free = append(cp.free, s)
	cp.mu.Unlock()
	return res, nil
}

func (cp *coarsePool) close() {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for _, s := range cp.free {
		s.Close()
	}
	cp.free = nil
}

// rebinInto maps every cell of src into dst by relative position (src's
// region is stretched onto dst's region), conserving total power. It is the
// placement-free model of a utilization/aspect reflow: cells keep their
// relative coordinates while the die stretches around them.
func rebinInto(dst, src *geom.Grid) {
	sx := dst.Region.W() / src.Region.W()
	sy := dst.Region.H() / src.Region.H()
	for iy := 0; iy < src.NY; iy++ {
		for ix := 0; ix < src.NX; ix++ {
			v := src.At(ix, iy)
			if v == 0 {
				continue
			}
			c := src.CellCenter(ix, iy)
			dst.AddAt(geom.Point{
				X: dst.Region.Xlo + (c.X-src.Region.Xlo)*sx,
				Y: dst.Region.Ylo + (c.Y-src.Region.Ylo)*sy,
			}, v)
		}
	}
}

// sweepAdaptive runs the two-phase multi-fidelity sweep. See
// AdaptiveOptions for the scheme and SweepEfficiencyCtx for the contract it
// shares with the classic sweep (cancellation, provenance, determinism
// across worker counts).
func sweepAdaptive(ctx context.Context, f *flow.Flow, opts SweepOptions) (*SweepResult, error) {
	af := *opts.Adaptive
	if af.CoarseFactor == 0 {
		af.CoarseFactor = 4
	}
	if af.CoarseFactor < 2 {
		return nil, fmt.Errorf("core: adaptive sweep needs CoarseFactor >= 2, got %d", af.CoarseFactor)
	}
	if math.IsNaN(af.Margin) || af.Margin < 0 {
		return nil, fmt.Errorf("core: adaptive sweep needs a non-negative Margin, got %g", af.Margin)
	}
	baseUtil := f.Config.Utilization
	baseline, err := f.AnalyzeBaselineCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive sweep baseline: %w", err)
	}
	if len(baseline.Hotspots) == 0 {
		return nil, fmt.Errorf("core: baseline has no detectable hotspots; nothing to optimize")
	}
	if baseline.PowerMap == nil {
		return nil, fmt.Errorf("core: adaptive sweep needs the baseline power map (was it released?)")
	}
	baseRise := baseline.Thermal.PeakRise
	baseArea := baseline.Placement.FP.CoreArea()
	stats := &TriageStats{Margin: af.Margin}
	result := &SweepResult{Baseline: baseline, BaselineUtilization: baseUtil, Triage: stats}

	wantDefault := wantStrategy(opts, StrategyDefault)
	wantHW := wantStrategy(opts, StrategyHW)
	wantERI := wantStrategy(opts, StrategyERI)

	detect := opts.WrapperDetection
	if detect.ThresholdFrac == 0 {
		detect.ThresholdFrac = 0.75
	}
	if detect.MinCells == 0 {
		detect.MinCells = 2
	}

	// ---- Candidate enumeration (deterministic order: Default by
	// aspect-major/overhead-minor, then ERI by row count, then HW). ----
	overheads := adaptiveOverheads(opts.Overheads, af.GridScale)
	aspects := af.Aspects
	if len(aspects) == 0 {
		aspects = []float64{f.Config.AspectRatio}
	}
	var rowCounts []int
	if wantERI {
		rowCounts = opts.ERIRows
		if len(rowCounts) == 0 {
			// Row granularity quantizes the overhead axis, so consecutive
			// densified overheads often map to the same row count; dedupe.
			for _, ov := range overheads {
				r := RowsForAreaOverhead(baseline.Placement, ov)
				if n := len(rowCounts); n == 0 || rowCounts[n-1] != r {
					rowCounts = append(rowCounts, r)
				}
			}
		}
	}

	var cands []*adaptiveCandidate
	add := func(c *adaptiveCandidate) *adaptiveCandidate {
		c.index = len(cands)
		cands = append(cands, c)
		return c
	}
	// defaultAt[a][i] pairs the Default and HW candidates of one grid cell.
	var defaultAt, hwAt [][]*adaptiveCandidate
	if wantDefault || wantHW {
		defaultAt = make([][]*adaptiveCandidate, len(aspects))
		hwAt = make([][]*adaptiveCandidate, len(aspects))
		for ai, asp := range aspects {
			defaultAt[ai] = make([]*adaptiveCandidate, len(overheads))
			for i, ov := range overheads {
				defaultAt[ai][i] = add(&adaptiveCandidate{
					strategy: StrategyDefault, overhead: ov, aspect: asp,
					util: baseUtil / (1 + ov),
				})
			}
		}
	}
	var eriCands []*adaptiveCandidate
	for _, rows := range rowCounts {
		eriCands = append(eriCands, add(&adaptiveCandidate{
			strategy: StrategyERI, rows: rows, aspect: f.Config.AspectRatio,
		}))
	}
	if wantHW {
		for ai, asp := range aspects {
			hwAt[ai] = make([]*adaptiveCandidate, len(overheads))
			for i, ov := range overheads {
				hwAt[ai][i] = add(&adaptiveCandidate{
					strategy: StrategyHW, overhead: ov, aspect: asp,
					util: baseUtil / (1 + ov),
				})
			}
		}
	}
	stats.Candidates = len(cands)

	// ---- Phase 1: coarse-fidelity estimates, placement-free. ----
	ccfg := f.Config.Thermal
	ccfg.CoarseFactor = af.CoarseFactor
	cnx, cny := ccfg.GridDims()
	pool := &coarsePool{cfg: ccfg}
	defer pool.close()

	// Calibration solve: the baseline through the coarse model (the solver
	// restricts the full-resolution baseline power map itself). The
	// exact/coarse baseline rise ratio anchors the calibration at area 0,
	// and the solved coarse-baseline field becomes the fixed warm-start
	// seed of every candidate solve — determinism does not depend on worker
	// scheduling.
	s0, err := thermal.NewSolver(ccfg)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive coarse solver: %w", err)
	}
	cbase, err := s0.SolveCtx(ctx, baseline.PowerMap)
	if err != nil {
		s0.Close()
		return nil, fmt.Errorf("core: adaptive coarse baseline: %w", err)
	}
	if cbase.PeakRise <= 0 {
		s0.Close()
		return nil, fmt.Errorf("core: adaptive coarse baseline lost the temperature rise")
	}
	pool.seed = s0.State()
	pool.free = append(pool.free, s0)
	pool.solves.Add(1)

	basePM := baseline.PowerMap
	baseFP := baseline.Placement.FP

	// estDefault builds the coarse estimate of a Default candidate: the
	// exact candidate floorplan (bit-identical to what PlaceAtAspect will
	// build), the baseline power map rebinned into it, one coarse solve.
	// It returns the coarse rise map for the stacked HW estimate.
	estDefault := func(tctx context.Context, c *adaptiveCandidate) (*geom.Grid, *thermal.Result, error) {
		fp, err := floorplan.New(f.Design, floorplan.Config{
			Utilization: c.util, AspectRatio: c.aspect,
		})
		if err != nil {
			return nil, nil, err
		}
		pm := geom.NewGrid(cnx, cny, fp.Core)
		rebinInto(pm, basePM)
		res, err := pool.solve(tctx, pm)
		if err != nil {
			return nil, nil, err
		}
		c.estArea = fp.CoreArea()/baseArea - 1
		c.rawRise = res.PeakRise
		c.estValid = true
		return pm, res, nil
	}

	// estHW stacks the wrapper model on a Default estimate: hotspots are
	// detected on the coarse rise map, and each hotspot's power is spread
	// over the region the wrapper would redistribute its hot cells into.
	// The core outline (and hence the area) is the parent's.
	estHW := func(tctx context.Context, c, parent *adaptiveCandidate, defPM *geom.Grid, defRes *thermal.Result) error {
		spots := hotspot.Detect(defRes.RiseMap(), detect)
		if opts.Wrapper.MaxHotspots > 0 && len(spots) > opts.Wrapper.MaxHotspots {
			spots = spots[:opts.Wrapper.MaxHotspots]
		}
		if len(spots) == 0 {
			// No estimate: the exact path may still find (and wrap) tighter
			// hotspots, so the candidate survives conservatively rather
			// than being triaged on a guess.
			return nil
		}
		core := defPM.Region
		ring := opts.Wrapper.RingWidth
		if ring <= 0 {
			ring = 2 * baseFP.RowHeight
		}
		expand := opts.Wrapper.ExpandFactor
		if expand <= 0 {
			expand = geom.Clamp(1/c.util, 1.2, 3.0)
		}
		pm := defPM.Clone()
		moved := false
		for _, h := range spots {
			hotBox := h.Rect.Intersect(core)
			if hotBox.Empty() {
				continue
			}
			growth := (math.Sqrt(expand) - 1) / 2
			outer := hotBox.Expand(growth * (hotBox.W() + hotBox.H()) / 2).Intersect(core)
			inner := outer.Expand(-ring).Intersect(core)
			if inner.Empty() || inner.W() < 4*baseFP.SiteWidth || inner.H() < baseFP.RowHeight {
				continue
			}
			// Move the power of the cells whose centers sit in the hotspot
			// box onto the wrapper's inner region, uniformly — the coarse
			// model of "spread the hot cells over the wrapped region".
			w := 0.0
			for iy := 0; iy < pm.NY; iy++ {
				for ix := 0; ix < pm.NX; ix++ {
					if hotBox.Contains(pm.CellCenter(ix, iy)) {
						w += pm.At(ix, iy)
						pm.Set(ix, iy, 0)
					}
				}
			}
			if w > 0 {
				pm.SpreadRect(inner, w)
				moved = true
			}
		}
		if !moved {
			// Wrapper model had no effect (every hotspot too small to
			// wrap): survive conservatively, like the no-spots case.
			return nil
		}
		res, err := pool.solve(tctx, pm)
		if err != nil {
			return err
		}
		c.estArea = parent.estArea
		c.rawRise = res.PeakRise
		c.estValid = true
		return nil
	}

	design := f.Design.Name
	provenance := func(err error, s Strategy, point int) error {
		return fault.WithProvenance(err, design, string(s), point)
	}

	var estTasks []func(context.Context) error
	if wantDefault || wantHW {
		for ai := range aspects {
			for i := range overheads {
				ai, i := ai, i
				estTasks = append(estTasks, func(tctx context.Context) error {
					d := defaultAt[ai][i]
					defPM, defRes, err := estDefault(tctx, d)
					if err != nil {
						return provenance(fmt.Errorf("core: adaptive estimate, default %.3f: %w", d.overhead, err), StrategyDefault, d.index)
					}
					if !wantHW {
						return nil
					}
					h := hwAt[ai][i]
					if err := estHW(tctx, h, d, defPM, defRes); err != nil {
						return provenance(fmt.Errorf("core: adaptive estimate, HW %.3f: %w", h.overhead, err), StrategyHW, h.index)
					}
					return nil
				})
			}
		}
	}
	for _, c := range eriCands {
		c := c
		estTasks = append(estTasks, func(tctx context.Context) error {
			insertions, err := eriInsertionRows(baseFP, baseline.Hotspots, DefaultERIOptions(c.rows))
			if err != nil {
				return provenance(fmt.Errorf("core: adaptive estimate, ERI %d rows: %w", c.rows, err), StrategyERI, c.index)
			}
			// Stretch the baseline power map through the insertion points:
			// each cell shifts up by one row height per empty row inserted
			// at or below its row — the same piecewise shift the exact
			// transform applies to the cells themselves.
			region := basePM.Region
			region.Yhi += float64(c.rows) * baseFP.RowHeight
			pm := geom.NewGrid(cnx, cny, region)
			for iy := 0; iy < basePM.NY; iy++ {
				for ix := 0; ix < basePM.NX; ix++ {
					v := basePM.At(ix, iy)
					if v == 0 {
						continue
					}
					ct := basePM.CellCenter(ix, iy)
					row := baseFP.RowAt(ct.Y).Index
					shift := countLE(insertions, row)
					pm.AddAt(geom.Point{X: ct.X, Y: ct.Y + float64(shift)*baseFP.RowHeight}, v)
				}
			}
			res, err := pool.solve(tctx, pm)
			if err != nil {
				return provenance(fmt.Errorf("core: adaptive estimate, ERI %d rows: %w", c.rows, err), StrategyERI, c.index)
			}
			c.estArea = AreaOverheadForRows(baseline.Placement, c.rows)
			c.rawRise = res.PeakRise
			c.estValid = true
			return nil
		})
	}
	if err := runTasks(ctx, estTasks, opts.Workers); err != nil {
		return nil, err
	}

	// ---- Exact-measurement helpers, shared by the calibration anchors and
	// phase 2: one code path, so an anchor's point is bit-identical to what
	// the exact phase would have measured for the same candidate. ----
	var exactSolves atomic.Int64
	keep := func(pt *EfficiencyPoint, an *flow.Analysis, p *place.Placement) *EfficiencyPoint {
		if opts.KeepAnalyses {
			pt.Analysis = an
			pt.Placement = p
		}
		return pt
	}
	measureDefault := func(tctx context.Context, asp float64, d *adaptiveCandidate, record bool) (*flow.Analysis, error) {
		var p *place.Placement
		var delta *place.Delta
		if opts.Incremental && asp == f.Config.AspectRatio {
			if rp, rd, rerr := f.ReflowAt(d.util); rerr == nil {
				p, delta = rp, rd
			}
		}
		if p == nil {
			var err error
			p, err = f.PlaceAtAspect(d.util, asp)
			if err != nil {
				return nil, provenance(fmt.Errorf("core: adaptive default %.3f: %w", d.overhead, err), StrategyDefault, d.index)
			}
		}
		an, err := f.AnalyzeWithCtx(tctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
		if err != nil {
			return nil, provenance(fmt.Errorf("core: adaptive default %.3f: %w", d.overhead, err), StrategyDefault, d.index)
		}
		exactSolves.Add(1)
		if record {
			d.point = keep((&EfficiencyPoint{
				Strategy:      StrategyDefault,
				AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
				TempReduction: reduction(baseRise, an.Thermal.PeakRise),
				PeakRise:      an.Thermal.PeakRise,
				Utilization:   d.util,
				Aspect:        asp,
			}).coMetrics(an), an, p)
		}
		return an, nil
	}
	measureERI := func(tctx context.Context, c *adaptiveCandidate) error {
		var p *place.Placement
		var delta *place.Delta
		var err error
		if opts.Incremental {
			p, delta, err = EmptyRowInsertionDelta(baseline.Placement, baseline.Hotspots, DefaultERIOptions(c.rows))
		} else {
			p, err = EmptyRowInsertion(baseline.Placement, baseline.Hotspots, DefaultERIOptions(c.rows))
		}
		if err != nil {
			return provenance(fmt.Errorf("core: adaptive ERI %d rows: %w", c.rows, err), StrategyERI, c.index)
		}
		an, err := f.AnalyzeWithCtx(tctx, p, flow.AnalyzeOptions{Parent: baseline, Delta: delta})
		if err != nil {
			return provenance(fmt.Errorf("core: adaptive ERI %d rows: %w", c.rows, err), StrategyERI, c.index)
		}
		exactSolves.Add(1)
		c.point = keep((&EfficiencyPoint{
			Strategy:      StrategyERI,
			AreaOverhead:  an.Placement.FP.CoreArea()/baseArea - 1,
			TempReduction: reduction(baseRise, an.Thermal.PeakRise),
			PeakRise:      an.Thermal.PeakRise,
			Rows:          c.rows,
			Utilization:   baseUtil / (an.Placement.FP.CoreArea() / baseArea),
			Aspect:        c.aspect,
		}).coMetrics(an), an, p)
		return nil
	}

	// ---- Two-point calibration. The downsampled model's bias is
	// systematic and nearly linear in area overhead, with a different slope
	// per estimate family (the rebin, ERI-stretch and wrapper-spread
	// transforms distort the power map differently). One exact anchor per
	// family — the largest-area candidate, where the bias is largest —
	// fixes the slope; the coarse baseline fixes the intercept. Anchors run
	// through the exact pipeline above, so their measurements are reused
	// verbatim as sweep points (and as HW lineage parents): when the
	// anchors sit on the true front, as the largest temperature reducers
	// usually do, the calibration is free.
	rb := baseRise / cbase.PeakRise
	lerpRatio := func(anchor *adaptiveCandidate, exactRise float64) func(float64) float64 {
		if anchor == nil || !anchor.estValid || anchor.rawRise <= 0 || anchor.estArea <= 0 {
			return func(float64) float64 { return rb }
		}
		r1 := exactRise / anchor.rawRise
		a1 := anchor.estArea
		return func(a float64) float64 { return rb + (r1-rb)*(a/a1) }
	}
	calDefault := func(float64) float64 { return rb }
	calERI := calDefault
	var anchorDefAn *flow.Analysis
	if wantDefault || wantHW {
		di := 0
		for i, ov := range overheads {
			if ov > overheads[di] {
				di = i
			}
		}
		d0 := defaultAt[0][di]
		if d0.estValid {
			an, err := measureDefault(ctx, aspects[0], d0, wantDefault)
			if err != nil {
				return nil, err
			}
			d0.anchored = true
			anchorDefAn = an
			calDefault = lerpRatio(d0, an.Thermal.PeakRise)
			stats.Anchors++
		}
	}
	if wantERI && len(eriCands) > 0 {
		e0 := eriCands[0]
		for _, c := range eriCands[1:] {
			if c.rows > e0.rows {
				e0 = c
			}
		}
		if e0.estValid {
			if err := measureERI(ctx, e0); err != nil {
				return nil, err
			}
			e0.anchored = true
			calERI = lerpRatio(e0, e0.point.PeakRise)
			stats.Anchors++
		}
	}
	for _, c := range cands {
		if !c.estValid {
			continue
		}
		// HW estimates ride the Default calibration: they are built on the
		// same rebinned power map, and the wrapper spread does not change
		// the downsampling bias profile enough to warrant a third anchor.
		if c.strategy == StrategyERI {
			c.estRise = c.rawRise * calERI(c.estArea)
		} else {
			c.estRise = c.rawRise * calDefault(c.estArea)
		}
	}

	// Deterministic fault injection for the harness' negative check: bias
	// every odd-indexed estimate so the triage provably drops true-front
	// points.
	if af.InjectEstRiseBiasC != 0 {
		for _, c := range cands {
			if c.estValid && c.index%2 == 1 {
				c.estRise += af.InjectEstRiseBiasC
			}
		}
	}

	// ---- Triage: margin-dominance on (area overhead, estimated rise). ----
	triage(cands, af.Margin)
	for _, c := range cands {
		if c.anchored {
			// Anchor measurements are already in hand; dropping them would
			// discard paid-for exact data.
			c.survives = true
		}
		if c.survives {
			stats.Survivors++
		}
	}
	if af.MaxExact > 0 {
		kept := 0
		for _, c := range cands {
			if !c.survives || c.anchored {
				continue
			}
			if kept < af.MaxExact {
				kept++
			} else {
				c.survives = false
				stats.Truncated++
			}
		}
	}
	stats.CoarseSolves = int(pool.solves.Load())

	// ---- Phase 2: exact refinement of the survivors, on the same task
	// shape (and with the same lineage threading) as the classic sweep. ----
	var exactTasks []func(context.Context) error
	var extraParents atomic.Int64
	if wantDefault || wantHW {
		for ai, asp := range aspects {
			for i := range overheads {
				d := defaultAt[ai][i]
				var h *adaptiveCandidate
				if wantHW {
					h = hwAt[ai][i]
				}
				needDefault := wantDefault && d.survives
				needHW := h != nil && h.survives
				if !needHW && (!needDefault || d.anchored) {
					continue
				}
				if !needDefault && needHW && !d.anchored {
					extraParents.Add(1)
				}
				asp, d, h := asp, d, h
				exactTasks = append(exactTasks, func(tctx context.Context) error {
					an := anchorDefAn
					if !d.anchored {
						var err error
						an, err = measureDefault(tctx, asp, d, needDefault)
						if err != nil {
							return err
						}
					}
					if !needHW {
						return nil
					}
					spots := hotspot.Detect(an.Thermal.RiseMap(), detect)
					if !d.anchored && !opts.KeepAnalyses && f.Config.PowerDeltaGateW <= 0 {
						an.ReleaseHeavy()
					}
					if len(spots) == 0 {
						return nil
					}
					defPow := an.Power
					wopts := opts.Wrapper
					if wopts.PowerOf == nil {
						wopts.PowerOf = func(inst *netlist.Instance) float64 { return defPow.InstancePower(inst) }
					}
					if wopts.HotCellFactor == 0 {
						wopts.HotCellFactor = 1.0
					}
					var hp *place.Placement
					var hdelta *place.Delta
					if opts.Incremental {
						hp, hdelta, err = HotspotWrapperDelta(an.Placement, spots, wopts)
					} else {
						hp, err = HotspotWrapper(an.Placement, spots, wopts)
					}
					if err != nil {
						return provenance(fmt.Errorf("core: adaptive HW %.3f: %w", h.overhead, err), StrategyHW, h.index)
					}
					han, err := f.AnalyzeWithCtx(tctx, hp, flow.AnalyzeOptions{Parent: an, Delta: hdelta})
					if err != nil {
						return provenance(fmt.Errorf("core: adaptive HW %.3f: %w", h.overhead, err), StrategyHW, h.index)
					}
					exactSolves.Add(1)
					h.point = keep((&EfficiencyPoint{
						Strategy:      StrategyHW,
						AreaOverhead:  han.Placement.FP.CoreArea()/baseArea - 1,
						TempReduction: reduction(baseRise, han.Thermal.PeakRise),
						PeakRise:      han.Thermal.PeakRise,
						Utilization:   baseUtil / (han.Placement.FP.CoreArea() / baseArea),
						Aspect:        asp,
					}).coMetrics(han), han, hp)
					return nil
				})
			}
		}
	}
	for _, c := range eriCands {
		if !c.survives || c.anchored {
			continue
		}
		c := c
		exactTasks = append(exactTasks, func(tctx context.Context) error {
			return measureERI(tctx, c)
		})
	}
	if err := runTasks(ctx, exactTasks, opts.Workers); err != nil {
		return nil, err
	}
	stats.ExactSolves = int(exactSolves.Load())
	stats.ExtraParents = int(extraParents.Load())

	// Assemble in candidate-enumeration order (Default, ERI, HW — the
	// classic sweep's grouping) and fold the est-vs-exact errors into the
	// histogram.
	for _, c := range cands {
		if c.point == nil {
			continue
		}
		if c.estValid {
			stats.addErr(c.estRise, c.point.PeakRise)
		}
		result.Points = append(result.Points, *c.point)
	}
	return result, nil
}

// countLE returns how many values of the sorted slice are <= x.
func countLE(sorted []int, x int) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// triage marks the surviving candidates: a candidate is dropped only when
// another candidate dominates its estimate with at least margin*range to
// spare on the estimated-rise axis (area is exact, so plain dominance
// applies there; the strict-improvement requirement keeps duplicates
// alive). Estimate-less candidates always survive. A margin of +Inf
// disables triage.
func triage(cands []*adaptiveCandidate, margin float64) {
	if math.IsInf(margin, 1) {
		for _, c := range cands {
			c.survives = true
		}
		return
	}
	// Rise range over the valid estimates.
	first := true
	var loR, hiR float64
	for _, c := range cands {
		if !c.estValid {
			continue
		}
		if first {
			loR, hiR = c.estRise, c.estRise
			first = false
			continue
		}
		loR, hiR = math.Min(loR, c.estRise), math.Max(hiR, c.estRise)
	}
	mR := margin * (hiR - loR)
	for _, s := range cands {
		if !s.estValid {
			s.survives = true
			continue
		}
		s.survives = true
		for _, q := range cands {
			if q == s || !q.estValid {
				continue
			}
			if q.estArea <= s.estArea && q.estRise <= s.estRise-mR &&
				(q.estArea < s.estArea || q.estRise < s.estRise) {
				s.survives = false
				break
			}
		}
	}
}
