package core

import (
	"fmt"
	"sort"

	"thermplace/internal/floorplan"
	"thermplace/internal/hotspot"
	"thermplace/internal/place"
)

// ERIOptions tunes the Empty Row Insertion transform.
type ERIOptions struct {
	// Rows is the total number of empty rows to insert. It must be positive.
	Rows int
	// Interleave controls the insertion pattern inside the hotspot row
	// span: true (the paper's scheme, and the default used when the options
	// come from DefaultERIOptions) spreads the empty rows so that populated
	// and empty rows alternate as evenly as possible; false inserts them as
	// one contiguous block at the centre of the hotspot, which is the
	// ablation variant benchmarked in bench_test.go.
	Interleave bool
}

// DefaultERIOptions returns the paper's interleaved scheme with the given
// row count.
func DefaultERIOptions(rows int) ERIOptions { return ERIOptions{Rows: rows, Interleave: true} }

// EmptyRowInsertion applies the paper's first technique: empty layout rows
// are inserted in proximity of the hotspots, the rows above shift upward,
// the core grows by Rows*rowHeight, and the freed whitespace is filled with
// dummy cells. The cells themselves keep their horizontal positions, so the
// disturbance to the original placement (and hence the timing overhead) is
// minimal.
//
// The row budget is divided between the hotspots proportionally to the
// number of placement rows each hotspot spans. The transform never modifies
// its input; it returns a new placement with its own stretched floorplan.
func EmptyRowInsertion(p *place.Placement, spots []hotspot.Hotspot, opts ERIOptions) (*place.Placement, error) {
	out, _, err := emptyRowInsertion(p, spots, opts, false)
	return out, err
}

// EmptyRowInsertionDelta is EmptyRowInsertion with change tracking: it
// additionally returns the place.Delta between the input placement and the
// stretched result — the cells the row shift displaced (plus anything the
// legalizer touched), their old and new rows, and the nets those moves
// dirtied. The delta is what lets the incremental sweep re-evaluate only
// the affected part of the power report for an ERI point.
func EmptyRowInsertionDelta(p *place.Placement, spots []hotspot.Hotspot, opts ERIOptions) (*place.Placement, *place.Delta, error) {
	return emptyRowInsertion(p, spots, opts, true)
}

// eriInsertionRows computes where EmptyRowInsertion would insert its empty
// rows: the sorted original row indices (an insertion at index k means "a
// new empty row appears below original row k", repeats allowed). It is the
// geometry half of the transform, shared with the adaptive sweep's
// coarse-fidelity estimator, which stretches the baseline power map through
// exactly these insertion points without building the placement.
func eriInsertionRows(fp *floorplan.Floorplan, spots []hotspot.Hotspot, opts ERIOptions) ([]int, error) {
	if opts.Rows <= 0 {
		return nil, fmt.Errorf("core: ERI needs a positive row count, got %d", opts.Rows)
	}
	if len(spots) == 0 {
		return nil, fmt.Errorf("core: ERI needs at least one hotspot")
	}

	// Row span of each hotspot in the original floorplan.
	type span struct{ lo, hi int }
	spans := make([]span, 0, len(spots))
	totalRows := 0
	for _, h := range spots {
		lo := fp.RowAt(h.Rect.Ylo).Index
		hi := fp.RowAt(h.Rect.Yhi - 1e-9).Index
		if hi < lo {
			lo, hi = hi, lo
		}
		spans = append(spans, span{lo, hi})
		totalRows += hi - lo + 1
	}

	// Distribute the row budget over the hotspots proportionally to their
	// row spans (larger hotspots receive more empty rows).
	budget := make([]int, len(spans))
	assigned := 0
	for i, s := range spans {
		share := opts.Rows * (s.hi - s.lo + 1) / totalRows
		budget[i] = share
		assigned += share
	}
	for i := 0; assigned < opts.Rows; i = (i + 1) % len(budget) {
		budget[i]++
		assigned++
	}

	// Compute the insertion points.
	var insertions []int
	for i, s := range spans {
		n := budget[i]
		if n == 0 {
			continue
		}
		spanRows := s.hi - s.lo + 1
		if opts.Interleave {
			for k := 0; k < n; k++ {
				// Even spread across the span; repeats are fine (two empty
				// rows below the same populated row).
				pos := s.lo + (k*spanRows+spanRows/2)/n
				if pos > s.hi+1 {
					pos = s.hi + 1
				}
				insertions = append(insertions, pos)
			}
		} else {
			mid := (s.lo + s.hi + 1) / 2
			for k := 0; k < n; k++ {
				insertions = append(insertions, mid)
			}
		}
	}
	sort.Ints(insertions)
	return insertions, nil
}

func emptyRowInsertion(p *place.Placement, spots []hotspot.Hotspot, opts ERIOptions, record bool) (*place.Placement, *place.Delta, error) {
	out := p.Clone()
	fp := out.FP
	insertions, err := eriInsertionRows(fp, spots, opts)
	if err != nil {
		return nil, nil, err
	}
	if record {
		out.BeginDelta()
	}

	// Stretch the floorplan. Insertions are applied from the highest index
	// down so that previously computed (original-index) positions stay
	// valid.
	for i := len(insertions) - 1; i >= 0; i-- {
		if err := fp.InsertRows(insertions[i], 1); err != nil {
			return nil, nil, fmt.Errorf("core: ERI: %w", err)
		}
	}

	// Shift every cell up by one row height per insertion at or below its
	// original row.
	shiftOf := func(row int) int {
		// insertions is sorted; count entries <= row.
		n := sort.SearchInts(insertions, row+1)
		return n
	}
	for _, inst := range out.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		l, ok := out.Loc(inst)
		if !ok {
			continue
		}
		shift := shiftOf(l.Row)
		if shift == 0 {
			continue
		}
		l.Row += shift
		l.Y = fp.Rows[l.Row].Y
		out.SetLoc(inst, l)
	}

	place.Legalize(out)
	place.InsertFillers(out)
	if !record {
		return out, nil, nil
	}
	return out, out.EndDelta(), nil
}

// AreaOverheadForRows returns the fractional core-area overhead caused by
// inserting the given number of empty rows into the placement's floorplan.
func AreaOverheadForRows(p *place.Placement, rows int) float64 {
	base := p.FP.CoreArea()
	extra := float64(rows) * p.FP.RowHeight * p.FP.Core.W()
	return extra / base
}

// RowsForAreaOverhead returns the number of empty rows that produces
// approximately the requested fractional area overhead (at least 1).
func RowsForAreaOverhead(p *place.Placement, overhead float64) int {
	perRow := p.FP.RowHeight * p.FP.Core.W() / p.FP.CoreArea()
	rows := int(overhead/perRow + 0.5)
	if rows < 1 {
		rows = 1
	}
	return rows
}
