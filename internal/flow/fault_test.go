package flow

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"thermplace/internal/fault"
	"thermplace/internal/place"
)

// TestAnalyzeCtxBitIdenticalAndCancelable covers both halves of the context
// contract at the flow layer: a context that never fires leaves every float
// of the analysis identical to Analyze, and a canceled context aborts with a
// typed error without leaking the pooled solver's goroutines.
func TestAnalyzeCtxBitIdenticalAndCancelable(t *testing.T) {
	base := runtime.NumGoroutine()
	f := smallFlow(t)
	p, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	live, liveCancel := context.WithCancel(context.Background())
	defer liveCancel()
	got, err := f.AnalyzeCtx(live, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Thermal.PeakC != want.Thermal.PeakC || got.Thermal.GradientC != want.Thermal.GradientC {
		t.Fatalf("AnalyzeCtx differs from Analyze: peak %v vs %v, gradient %v vs %v",
			got.Thermal.PeakC, want.Thermal.PeakC, got.Thermal.GradientC, want.Thermal.GradientC)
	}
	gv, wv := got.Thermal.Surface.Values(), want.Thermal.Surface.Values()
	for i := range gv {
		if gv[i] != wv[i] {
			t.Fatalf("surface cell %d differs: %g vs %g", i, gv[i], wv[i])
		}
	}

	// Cancellation before the solve surfaces as fault.ErrCanceled. A stalled
	// solve is exercised separately via the injector.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.AnalyzeCtx(ctx, p); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("canceled analysis did not report fault.ErrCanceled: %v", err)
	}
	f.Close()
	waitGoroutines(t, base)
}

// TestAnalyzeCancelMidSolveNoLeak cancels an analysis stalled inside the
// thermal solve (injected stall on the first solve) and asserts the typed
// error, the per-flow stats, and that Close after the cancel leaks nothing.
func TestAnalyzeCancelMidSolveNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	f := smallFlow(t)
	f.Config.Thermal.Inject = &fault.Injector{StallCGSolveN: 1}
	p, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	if _, err := f.AnalyzeCtx(ctx, p); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("stalled analysis did not report fault.ErrCanceled: %v", err)
	}
	if f.FaultStats().Canceled == 0 {
		t.Fatal("cancellation not aggregated into the per-flow fault.Stats")
	}

	// The flow recovers: the next analysis (solve 2, not stalled) succeeds.
	if _, err := f.AnalyzeCtx(context.Background(), p); err != nil {
		t.Fatalf("analysis after cancellation: %v", err)
	}
	f.Close()
	waitGoroutines(t, base)
}

// TestStallAnalyzeProbe covers the flow-level wiring of the service chaos
// probe: an analysis within the armed StallAnalyzeN prefix parks before
// doing any work and unparks only through its context, surfacing the typed
// cancellation; ordinals past the prefix are untouched. The zero-delta no-op
// (parent + empty delta + same placement) answers before the probe and must
// not consume an ordinal.
func TestStallAnalyzeProbe(t *testing.T) {
	base := runtime.NumGoroutine()
	f := smallFlow(t)
	defer f.Close()
	in := &fault.Injector{}
	f.Config.Thermal.Inject = in
	an, err := f.AnalyzeBaseline() // analysis ordinal 1, before arming
	if err != nil {
		t.Fatal(err)
	}

	in.StallAnalyzeN = 2 // ordinal 2 stalls; ordinal 3 onward passes

	// The zero-delta no-op consumes no ordinal: the stall stays armed.
	if again, err := f.AnalyzeWithCtx(context.Background(), an.Placement,
		AnalyzeOptions{Parent: an, Delta: &place.Delta{}}); err != nil || again != an {
		t.Fatalf("zero-delta no-op returned (%v, %v), want the parent analysis back", again, err)
	}

	// Ordinal 2: parks until the context fires, then reports the typed
	// cancellation promptly instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := f.AnalyzeCtx(ctx, an.Placement)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the park
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, fault.ErrCanceled) {
			t.Fatalf("stalled analysis returned %v, want fault.ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled analysis did not unpark on cancellation")
	}

	// Ordinal 3 is past the prefix: the same call now succeeds, and the
	// result is bit-identical to the unprobed baseline.
	redo, err := f.AnalyzeCtx(context.Background(), an.Placement)
	if err != nil {
		t.Fatalf("analysis past the stall prefix failed: %v", err)
	}
	if redo.Thermal.PeakRise != an.Thermal.PeakRise {
		t.Fatalf("post-stall analysis diverged: peak rise %v vs %v", redo.Thermal.PeakRise, an.Thermal.PeakRise)
	}
	f.Close()
	waitGoroutines(t, base)
}

// TestCorruptPowerMapDetected asserts that an injected corruption of the
// power profile is caught before the thermal solve, as a typed setup error
// naming the power-map stage.
func TestCorruptPowerMapDetected(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	f.Config.Thermal.Inject = &fault.Injector{CorruptPowerW: math.NaN()}
	p, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	_, aerr := f.Analyze(p)
	if aerr == nil {
		t.Fatal("corrupted power map reached the thermal solver undetected")
	}
	var se *fault.ErrSetup
	if !errors.As(aerr, &se) || se.Stage != "power-map" {
		t.Fatalf("corruption not reported as a power-map setup error: %v", aerr)
	}

	// The injector corrupts only the first map: the next analysis is clean.
	if _, err := f.Analyze(p); err != nil {
		t.Fatalf("analysis after contained corruption: %v", err)
	}
}

// TestFlowAggregatesSolverFaults asserts that solver-level degradations are
// visible through Flow.FaultStats.
func TestFlowAggregatesSolverFaults(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	f.Config.Thermal.Inject = &fault.Injector{FailCGSolveN: 1}
	p, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Analyze(p); err != nil {
		t.Fatalf("degraded analysis failed instead of retrying: %v", err)
	}
	if got := f.FaultStats().SolveRetries; got != 1 {
		t.Fatalf("FaultStats().SolveRetries = %d, want 1", got)
	}
}
