package flow

import (
	"testing"

	"thermplace/internal/place"
)

// TestReflowAtMatchesPlaceAt requires the incremental placement path to be
// bit-identical to the from-scratch one at sweep-typical utilizations.
func TestReflowAtMatchesPlaceAt(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	for _, util := range []float64{0.60, 0.71, 0.92} {
		inc, delta, err := f.ReflowAt(util)
		if err != nil {
			t.Fatalf("ReflowAt(%v): %v", util, err)
		}
		if !delta.IsFull() {
			t.Fatalf("ReflowAt(%v): want full delta, got %+v", util, delta)
		}
		scratch, err := f.PlaceAt(util)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range f.Design.Instances() {
			if inst.IsFiller() {
				continue
			}
			li, iok := inc.Loc(inst)
			ls, sok := scratch.Loc(inst)
			if iok != sok || li != ls {
				t.Fatalf("util %v: %s at %v/%v, want %v/%v", util, inst.Name, li, iok, ls, sok)
			}
		}
		if ih, sh := inc.TotalHPWL(), scratch.TotalHPWL(); ih != sh {
			t.Fatalf("util %v: HPWL %v vs %v", util, ih, sh)
		}
	}
}

// TestReflowAtZeroDeltaReturnsCachedAnalysis is the zero-delta no-op
// contract: reflowing to the baseline utilization hands back the cached
// baseline placement with an empty delta, and AnalyzeWith resolves that to
// the cached baseline analysis without re-running anything.
func TestReflowAtZeroDeltaReturnsCachedAnalysis(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	p, delta, err := f.ReflowAt(f.Config.Utilization)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("want empty delta at the baseline utilization, got %+v", delta)
	}
	if p != base.Placement {
		t.Fatal("want the cached baseline placement, got a fresh one")
	}
	an, err := f.AnalyzeWith(p, AnalyzeOptions{Parent: base, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if an != base {
		t.Fatal("zero-delta analysis must return the cached baseline analysis")
	}
	// And AnalyzeBaseline itself is cached across calls.
	again, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Fatal("AnalyzeBaseline must return the cached analysis on a second call")
	}
}

// TestAnalyzeWithDeltaBitIdentical analyzes a derived placement through
// the delta path (Report.Update + lineage-seeded solve) and through the
// from-scratch path on an identical twin flow, requiring == results — the
// flow-level half of the incremental sweep's bit-identity guarantee.
func TestAnalyzeWithDeltaBitIdentical(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}

	// Derive an edited placement under delta recording (an ERI-style row
	// disturbance).
	edited := base.Placement.Clone()
	edited.BeginDelta()
	insts := f.Design.Instances()
	for i := 7; i < len(insts) && i < 300; i += 23 {
		inst := insts[i]
		if inst.IsFiller() {
			continue
		}
		l, ok := edited.Loc(inst)
		if !ok {
			continue
		}
		row := (l.Row + 2) % edited.FP.NumRows()
		edited.SetLoc(inst, place.Loc{X: l.X, Y: edited.FP.Rows[row].Y, Row: row})
	}
	place.Legalize(edited)
	place.InsertFillers(edited)
	delta := edited.EndDelta()
	if delta.Empty() || delta.IsFull() {
		t.Fatalf("edit should record a surgical delta, got full=%v empty=%v", delta.IsFull(), delta.Empty())
	}

	inc, err := f.AnalyzeWith(edited, AnalyzeOptions{Parent: base, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}

	// From-scratch reference on a fresh flow (identical config/workload),
	// analyzed with the same lineage seeding but no delta.
	g := New(f.Design, f.Workload, f.Config)
	defer g.Close()
	gbase, err := g.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.AnalyzeWith(edited.Clone(), AnalyzeOptions{Parent: gbase})
	if err != nil {
		t.Fatal(err)
	}

	if inc.Power.Total() != ref.Power.Total() {
		t.Fatalf("power differs: %v vs %v", inc.Power.Total(), ref.Power.Total())
	}
	iv, rv := inc.PowerMap.Values(), ref.PowerMap.Values()
	for i := range iv {
		if iv[i] != rv[i] {
			t.Fatalf("power map differs at cell %d: %v vs %v", i, iv[i], rv[i])
		}
	}
	if inc.Thermal.PeakRise != ref.Thermal.PeakRise {
		t.Fatalf("peak rise differs: %v vs %v", inc.Thermal.PeakRise, ref.Thermal.PeakRise)
	}
	it, rt := inc.Thermal.Surface.Values(), ref.Thermal.Surface.Values()
	for i := range it {
		if it[i] != rt[i] {
			t.Fatalf("thermal map differs at cell %d: %v vs %v", i, it[i], rt[i])
		}
	}
}

// TestPowerDeltaGateSkipsSolves opts into the approximation gate and
// verifies an unchanged-power child skips its solve (sharing the parent's
// thermal result), while the default gate of zero never skips.
func TestPowerDeltaGateSkipsSolves(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}

	// A clone with no moves: same power map bit for bit.
	twin := base.Placement.Clone()
	twin.BeginDelta()
	delta := twin.EndDelta()

	// Default gate (0): the solve runs.
	an, err := f.AnalyzeWith(twin, AnalyzeOptions{Parent: base, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.GateSkips(); got != 0 {
		t.Fatalf("gate disabled but %d solves skipped", got)
	}
	if an.Thermal == base.Thermal {
		t.Fatal("without a gate the child must have its own thermal result")
	}

	f.Config.PowerDeltaGateW = 1e-12
	gated, err := f.AnalyzeWith(twin.Clone(), AnalyzeOptions{Parent: base, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.GateSkips(); got != 1 {
		t.Fatalf("gate enabled on an identical power map: want 1 skip, got %d", got)
	}
	if gated.Thermal != base.Thermal {
		t.Fatal("a gated analysis must reuse the parent's thermal result")
	}
	if gated.PeakRise() != base.PeakRise() {
		t.Fatal("gated analysis changed the peak rise")
	}
}

// TestCoAnalysisPopulatedAndIncremental verifies the co-analysis contract:
// every analysis under DefaultConfig carries a temperature-derated timing
// report, a congestion report and the HPWL — and on the gate-skip path
// (where the child shares the parent's thermal field, so the timing options
// resolve identically) the incremental dirty-cone update is bit-identical
// to a from-scratch analysis of the same placement.
func TestCoAnalysisPopulatedAndIncremental(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if base.Timing == nil || base.Congestion == nil {
		t.Fatal("co-analysis reports must be populated under DefaultConfig-derived configs")
	}
	if base.Timing.CriticalPathPs <= 0 || base.HPWL <= 0 {
		t.Fatalf("degenerate co-analysis: critical path %v ps, HPWL %v", base.Timing.CriticalPathPs, base.HPWL)
	}
	if base.Timing.SlackPs == 0 {
		t.Fatal("slack must be wired from the config clock")
	}

	// Force the gate open so the child shares the parent's thermal result,
	// then move a handful of cells through a recorded delta.
	f.Config.PowerDeltaGateW = 1e9
	twin := base.Placement.Clone()
	twin.BeginDelta()
	moved := 0
	for _, inst := range f.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		l, ok := twin.Loc(inst)
		if !ok {
			continue
		}
		if l.X+8*twin.FP.SiteWidth < twin.FP.Core.Xhi-inst.Master.Width {
			l.X += 8 * twin.FP.SiteWidth
		} else {
			l.X -= 8 * twin.FP.SiteWidth
		}
		twin.SetLoc(inst, l)
		if moved++; moved == 12 {
			break
		}
	}
	delta := twin.EndDelta()
	gated, err := f.AnalyzeWith(twin, AnalyzeOptions{Parent: base, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Thermal != base.Thermal {
		t.Fatal("gate open: child must share the parent's thermal result")
	}
	if gated.Timing == base.Timing {
		t.Fatal("moved cells must produce a fresh timing report")
	}

	// From-scratch reference under the exact options the flow resolved.
	ta, err := f.timingAnalyzer()
	if err != nil {
		t.Fatal(err)
	}
	full := ta.Analyze(twin, f.timingOptions(base.Thermal))
	if full.CriticalPathPs != gated.Timing.CriticalPathPs || full.SlackPs != gated.Timing.SlackPs {
		t.Fatalf("incremental timing differs: full cp %v slack %v vs inc cp %v slack %v",
			full.CriticalPathPs, full.SlackPs, gated.Timing.CriticalPathPs, gated.Timing.SlackPs)
	}
	if len(full.ArrivalPs) != len(gated.Timing.ArrivalPs) {
		t.Fatalf("arrival count differs: %d vs %d", len(full.ArrivalPs), len(gated.Timing.ArrivalPs))
	}
	changed := 0
	for name, at := range full.ArrivalPs {
		if iat, ok := gated.Timing.ArrivalPs[name]; !ok || iat != at {
			t.Fatalf("arrival at %q differs: full %v vs inc %v", name, at, iat)
		}
		if at != base.Timing.ArrivalPs[name] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("moves changed no arrival time; the incremental path was not exercised")
	}
}
