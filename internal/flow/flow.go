// Package flow wires the individual substrates into the paper's analysis
// pipeline (Figure 2 of the paper): gate-level netlist -> placement ->
// random-vector logic simulation -> power estimation -> thermal simulation
// -> hotspot localization. The post-placement area-management techniques in
// package core consume and produce placements; this package provides the
// "measure the temperature of this placement" half of the loop.
package flow

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"thermplace/internal/bench"
	"thermplace/internal/congestion"
	"thermplace/internal/fault"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
	"thermplace/internal/power"
	"thermplace/internal/thermal"
	"thermplace/internal/timing"
)

// Config collects every knob of the analysis pipeline.
type Config struct {
	// Utilization is the baseline placement utilization factor.
	Utilization float64
	// AspectRatio is the core aspect ratio (height / width).
	AspectRatio float64
	// SimCycles is the number of random-vector cycles used to extract
	// switching activity.
	SimCycles int
	// Seed seeds the random stimulus generator.
	Seed int64
	// ClockHz is the clock frequency for power estimation.
	ClockHz float64
	// RefinePasses is the number of detailed-placement improvement passes.
	RefinePasses int
	// Thermal configures the thermal grid and solver; its NX/NY also set
	// the power-map resolution.
	Thermal thermal.Config
	// HotspotOptions tunes hotspot detection on the resulting thermal map.
	HotspotOptions hotspot.Options
	// PowerDeltaGateW, when positive, lets a delta-driven analysis
	// (AnalyzeWith with both a Parent and a Delta — the incremental sweep
	// path; lineage-only analyses stay exact) skip the thermal solve
	// entirely when the
	// L∞ difference between its power map and its parent's — same grid,
	// same die region — stays below the gate, in watts per grid cell; the
	// parent's thermal result and hotspots are reused. This is an explicit
	// approximation knob: a skipped solve returns the parent's field
	// rather than the (near-identical) re-solved one, so sweeps run with a
	// positive gate trade the bit-identity guarantee for skipped solves.
	// Zero (the default) never skips.
	PowerDeltaGateW float64

	// CoAnalysis extends every analysis with the cross-domain byproducts
	// the paper's claims are stated in: a static timing analysis derated
	// with the solved temperature field, a probabilistic routing-congestion
	// estimate and the total wirelength (Analysis.Timing, .Congestion,
	// .HPWL). DefaultConfig enables it; the zero Config leaves it off.
	CoAnalysis bool
	// Timing configures the co-analysis STA. The zero value derives
	// everything from the flow: timing.DefaultOptions derates (4%/10C cell,
	// 5%/10C wire at a 25 C nominal), the clock period from ClockHz, and
	// the temperature map from each analysis' own solved surface field. A
	// non-zero value is used verbatim, except that a zero ClockPeriodPs is
	// still derived from ClockHz and a nil TemperatureMap still tracks the
	// solved field.
	Timing timing.Options
	// Congestion configures the co-analysis congestion estimate; zero
	// fields select congestion.DefaultOptions values.
	Congestion congestion.Options
}

// DefaultConfig returns the configuration used by the paper-scale
// experiments: 85% starting utilization, 1 GHz, 40x40x9 thermal grid. The
// flow only ever reads the surface (power-layer) temperature map, so the
// thermal solver is asked to skip materializing the other layers; clear
// Thermal.SurfaceOnly to get all of Analysis.Thermal.Layers back.
func DefaultConfig() Config {
	tcfg := thermal.DefaultConfig()
	tcfg.SurfaceOnly = true
	return Config{
		Utilization:    0.85,
		AspectRatio:    1.0,
		SimCycles:      128,
		Seed:           1,
		ClockHz:        1e9,
		RefinePasses:   1,
		Thermal:        tcfg,
		HotspotOptions: hotspot.DefaultOptions(),
		CoAnalysis:     true,
	}
}

// ScenarioConfig maps the physical-design knobs of a bench.Scenario —
// utilization, aspect ratio, clock, and stimulus seed — onto a flow
// configuration, so a generated scenario runs the pipeline under the
// conditions it was generated for. Grid resolution and simulation depth
// keep their defaults; callers tune them on the returned Config.
func ScenarioConfig(sc bench.Scenario) Config {
	sc = sc.Normalized()
	cfg := DefaultConfig()
	cfg.Utilization = sc.Utilization
	cfg.AspectRatio = sc.AspectRatio
	cfg.ClockHz = sc.ClockGHz * 1e9
	cfg.Seed = sc.Seed
	return cfg
}

// FastConfig returns a reduced configuration (coarser grid, fewer cycles)
// for tests and quick exploration.
func FastConfig() Config {
	cfg := DefaultConfig()
	cfg.SimCycles = 48
	cfg.RefinePasses = 0
	cfg.Thermal.NX = 20
	cfg.Thermal.NY = 20
	return cfg
}

// Flow binds a design and a workload to an analysis configuration and caches
// everything that is reusable across analyses: the workload-dependent (but
// placement-independent) switching activity, the deterministic baseline
// placement, and a pool of structured-grid thermal solvers. The solver pool
// is what makes a sweep cheap and concurrent: every ERI/HW/Default point
// reuses an assembled thermal system, and each solve warm-starts from the
// recorded first-solve temperature field — a fixed seed rather than
// "whatever the pooled solver computed last". Results are therefore
// independent of how analyses are scheduled across solvers provided the
// first fast-path analysis completes before the concurrent calls begin
// (run AnalyzeBaseline first, as the sweep does); when the very first
// solves race, whichever finishes first becomes the seed for the rest.
//
// Analyze (and everything it calls) is safe for concurrent use once the
// flow's Config is no longer being mutated; the concurrent sweep in package
// core relies on this. Mutating Config between calls remains allowed for
// sequential use.
type Flow struct {
	Design   *netlist.Design
	Workload bench.Workload
	Config   Config

	// mu guards every cache below.
	mu          sync.Mutex
	activity    *logicsim.Activity
	baseline    *place.Placement
	baselineKey placementKey

	// est is the power estimator bound to the cached activity and the
	// clock it was built for (placement-independent model terms).
	est      *power.Estimator
	estClock float64

	// baseAn caches the baseline analysis, so repeated AnalyzeBaseline
	// calls (every sweep starts with one) and the zero-delta Reflow no-op
	// return the same *Analysis instead of re-running the pipeline.
	baseAn        *Analysis
	baseAnKey     analysisKey
	baseAnThermal thermal.Config

	// pools holds one solver pool per distinct thermal configuration seen
	// recently (most recently used first, capped at maxSolverPools). The
	// adaptive sweep interleaves coarse-fidelity triage solves with exact
	// refinement solves; separate pools keyed by thermal.Config.Equal keep
	// both sets of assembled systems alive instead of rebuilding the
	// hierarchy on every fidelity switch.
	pools []*solverPool

	// ta is the cached timing analyzer of the design (levelized graph and
	// endpoint set, placement-independent), built on the first co-analysis;
	// taErr pins a failed construction so a broken netlist is not re-walked
	// per analysis.
	ta    *timing.Analyzer
	taErr error

	// stateSeq tags solved temperature fields; gateSkips counts thermal
	// solves skipped by the power-delta gate.
	stateSeq  atomic.Uint64
	gateSkips atomic.Uint64

	// stats aggregates the robustness counters of every solver the flow
	// runs — degradations, retries, contained panics, cancellations. It is
	// wired into each pooled solver unless Config.Thermal.Stats supplies an
	// external collector.
	stats fault.Stats
}

// FaultStats returns a snapshot of the flow's robustness counters: multigrid
// degradations, Jacobi retries, contained panics and observed cancellations
// across every thermal solve the flow has run.
func (f *Flow) FaultStats() fault.StatsSnapshot { return f.stats.Snapshot() }

// pooledSolver pairs a pooled thermal solver with the identity of the
// temperature field it currently holds.
type pooledSolver struct {
	s       *thermal.Solver
	stateID uint64
}

// solverPool holds the idle pooled solvers for one thermal configuration,
// plus the fixed warm-start seed recorded from the first completed solve at
// that configuration — the default seed for analyses without a lineage
// parent of matching fidelity. Its fields are guarded by the flow mutex.
type solverPool struct {
	cfg     thermal.Config // snapshot; Stack is a private copy
	solvers []pooledSolver
	seed    []float64
	seedID  uint64
}

func (pl *solverPool) defaultSeedLocked() *lineageSeed {
	if pl.seed == nil {
		return nil
	}
	return &lineageSeed{field: pl.seed, id: pl.seedID}
}

// maxSolverPools bounds how many thermal configurations keep live solver
// pools at once. The adaptive sweep needs exactly two (coarse triage +
// exact refinement); the cap evicts the least recently used pool beyond
// that, so a config-churning caller cannot accumulate assembled multigrid
// hierarchies without bound.
const maxSolverPools = 4

// analysisKey captures the comparable Config knobs that shape a baseline
// analysis (the thermal config is snapshotted and compared separately —
// its layer stack is a slice).
type analysisKey struct {
	pk    placementKey
	clock float64
	hs    hotspot.Options
	gate  float64
	co    bool
	topts timing.Options
	copts congestion.Options
}

func (f *Flow) analysisKey() analysisKey {
	return analysisKey{
		pk: f.placementKey(), clock: f.Config.ClockHz, hs: f.Config.HotspotOptions,
		gate: f.Config.PowerDeltaGateW, co: f.Config.CoAnalysis,
		topts: f.Config.Timing, copts: f.Config.Congestion,
	}
}

// New creates a flow for the design under the given workload.
func New(d *netlist.Design, wl bench.Workload, cfg Config) *Flow {
	return &Flow{Design: d, Workload: wl, Config: cfg}
}

// Activity returns the switching activity of the design under the flow's
// workload, simulating it on first use and caching the result: the paper's
// "power estimation based on annotated switching activity of randomly
// generated test vectors".
func (f *Flow) Activity() (*logicsim.Activity, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.activity != nil {
		return f.activity, nil
	}
	stim := logicsim.RandomStimulus(f.Config.Seed, func(port string) float64 {
		// strings.Cut instead of SplitN: same unit prefix, no slice
		// allocation per (port, cycle) lookup.
		unit, _, _ := strings.Cut(port, "_")
		return f.Workload.ActivityFor(unit)
	})
	act, err := logicsim.RunRandom(f.Design, f.Config.SimCycles, stim)
	if err != nil {
		return nil, fmt.Errorf("flow: activity simulation: %w", err)
	}
	f.activity = act
	return act, nil
}

// PlaceAt builds a floorplan at the given utilization and places the design
// into it (the "Logic and Physical Synthesis" box of the paper's flow).
func (f *Flow) PlaceAt(utilization float64) (*place.Placement, error) {
	return f.PlaceAtAspect(utilization, f.Config.AspectRatio)
}

// PlaceAtAspect is PlaceAt with an explicit core aspect ratio instead of
// the configured one — the adaptive sweep's aspect axis places candidate
// floorplans through it without mutating the shared flow Config.
func (f *Flow) PlaceAtAspect(utilization, aspect float64) (*place.Placement, error) {
	fp, err := floorplan.New(f.Design, floorplan.Config{
		Utilization: utilization,
		AspectRatio: aspect,
	})
	if err != nil {
		return nil, fmt.Errorf("flow: floorplanning at %.2f utilization: %w", utilization, err)
	}
	p, err := place.PlaceWithoutFillers(f.Design, fp)
	if err != nil {
		return nil, fmt.Errorf("flow: placement at %.2f utilization: %w", utilization, err)
	}
	if f.Config.RefinePasses > 0 {
		place.RefineHPWL(p, f.Config.RefinePasses)
	}
	// Fillers are inserted exactly once, on the final (possibly refined)
	// cell positions; inserting them before refinement would leave stale
	// fillers overlapping the swapped cells.
	place.InsertFillers(p)
	return p, nil
}

// Baseline places the design at the configured baseline utilization,
// building the placement on first use and caching it: placement is
// deterministic for a fixed design and utilization, and every sweep and
// experiment measures against this same compact placement. The cached
// placement is shared; callers must treat it as read-only (the core
// transforms clone before modifying).
func (f *Flow) Baseline() (*place.Placement, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := f.placementKey()
	if f.baseline != nil && f.baselineKey == key {
		return f.baseline, nil
	}
	p, err := f.PlaceAt(f.Config.Utilization)
	if err != nil {
		return nil, err
	}
	f.baseline = p
	f.baselineKey = key
	return p, nil
}

// placementKey captures every Config knob that shapes a baseline placement,
// so the cache is invalidated when any of them changes.
type placementKey struct {
	util, aspect float64
	refine       int
}

func (f *Flow) placementKey() placementKey {
	return placementKey{util: f.Config.Utilization, aspect: f.Config.AspectRatio, refine: f.Config.RefinePasses}
}

// lineageSeed is a warm-start temperature field tagged with the identity
// of the analysis that produced it.
type lineageSeed struct {
	field []float64
	id    uint64
}

// thermalSolve routes the analysis through a pooled structured-grid solver
// when the configuration allows it, falling back to thermal.Solve for
// oracle/non-CG configurations. Each concurrent caller checks out its own
// solver (growing the pool on demand) and every solve after the first is
// warm-started from a fixed seed — the caller's lineage parent when given,
// the pool's recorded first-solve (baseline) field otherwise — so the
// result of a solve depends only on its own inputs, not on which pooled
// solver ran it or what that solver computed before. A lineage seed of the
// wrong fidelity (a coarse analysis handed an exact parent, or the
// reverse) is ignored in favour of the pool's own default rather than
// erroring. Each pool is LIFO and every solver remembers which analysis'
// field it holds, so a Default→HW task chain typically checks out the
// solver that just produced its parent's field and skips the seed copy.
//
// On success it returns the solved temperature field (a copy, in solver
// node order) and its identity tag, for the caller to hand to child
// analyses as their lineage seed.
func (f *Flow) thermalSolve(ctx context.Context, pm *geom.Grid, tcfg thermal.Config, seed *lineageSeed) (*thermal.Result, []float64, uint64, error) {
	if tcfg.Stats == nil {
		// Aggregate solver robustness events into the per-flow counters
		// unless the caller wired an external collector. Stats (like Inject)
		// is deliberately outside thermal.Config.Equal, so this does not
		// invalidate the solver pool.
		tcfg.Stats = &f.stats
	}
	if !tcfg.FastPath() {
		res, err := thermal.SolveCtx(ctx, pm, tcfg)
		return res, nil, 0, err
	}
	ps, defSeed, pool, err := f.acquireSolver(tcfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if seed == nil || len(seed.field) != ps.s.Unknowns() {
		seed = defSeed
	}
	if seed != nil && (seed.id == 0 || seed.id != ps.stateID) {
		if err := ps.s.SeedState(seed.field); err != nil {
			return nil, nil, 0, err
		}
		ps.stateID = seed.id
	}
	res, err := ps.s.SolveCtx(ctx, pm)
	var state []float64
	var stateID uint64
	if err == nil {
		state = ps.s.State()
		stateID = f.stateSeq.Add(1)
		ps.stateID = stateID
	} else {
		ps.stateID = 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.poolLiveLocked(pool) {
		// The pool was evicted while we were solving. Drop the solver
		// rather than re-pooling it into a dead pool.
		ps.s.Close()
		return res, state, stateID, err
	}
	if err == nil && pool.seed == nil {
		pool.seed = state
		pool.seedID = stateID
	}
	pool.solvers = append(pool.solvers, ps)
	return res, state, stateID, err
}

// acquireSolver checks a solver for tcfg out of its configuration's pool,
// creating the pool on first use, and returns the pool's default warm-start
// seed (nil before its first completed solve) plus the pool itself, for the
// caller to return the solver to. Solver construction (stencil, multigrid
// hierarchy, Cholesky buffer) happens outside the flow mutex so concurrent
// pool growth does not serialize the other workers.
func (f *Flow) acquireSolver(tcfg thermal.Config) (pooledSolver, *lineageSeed, *solverPool, error) {
	f.mu.Lock()
	pool := f.poolForLocked(tcfg)
	seed := pool.defaultSeedLocked()
	if n := len(pool.solvers); n > 0 {
		ps := pool.solvers[n-1]
		pool.solvers = pool.solvers[:n-1]
		f.mu.Unlock()
		return ps, seed, pool, nil
	}
	f.mu.Unlock()

	s, err := thermal.NewSolver(tcfg)
	if err != nil {
		return pooledSolver{}, nil, nil, err
	}
	// Re-read the seed: another worker may have published it while this
	// solver was being built.
	f.mu.Lock()
	seed = pool.defaultSeedLocked()
	f.mu.Unlock()
	return pooledSolver{s: s}, seed, pool, nil
}

// poolForLocked returns the solver pool for tcfg, moving it to the front of
// the most-recently-used list and creating it when absent; the least
// recently used pool beyond maxSolverPools is closed and dropped.
func (f *Flow) poolForLocked(tcfg thermal.Config) *solverPool {
	for i, pl := range f.pools {
		if pl.cfg.Equal(tcfg) {
			copy(f.pools[1:i+1], f.pools[:i])
			f.pools[0] = pl
			return pl
		}
	}
	pl := &solverPool{cfg: tcfg}
	// Snapshot the stack: tcfg.Stack aliases the caller's slice, and Equal
	// must detect in-place layer mutations against the state the solvers
	// were actually built from.
	pl.cfg.Stack = append(thermal.Stack(nil), tcfg.Stack...)
	f.pools = append([]*solverPool{pl}, f.pools...)
	for len(f.pools) > maxSolverPools {
		last := f.pools[len(f.pools)-1]
		for _, ps := range last.solvers {
			ps.s.Close()
		}
		f.pools = f.pools[:len(f.pools)-1]
	}
	return pl
}

// poolLiveLocked reports whether the pool is still in the flow's pool list
// (it may have been evicted or Closed while a solver was checked out).
func (f *Flow) poolLiveLocked(pool *solverPool) bool {
	for _, pl := range f.pools {
		if pl == pool {
			return true
		}
	}
	return false
}

// GateSkips returns how many thermal solves the power-delta gate
// (Config.PowerDeltaGateW) has skipped over the flow's lifetime.
func (f *Flow) GateSkips() int { return int(f.gateSkips.Load()) }

// Close releases the worker pools of the pooled thermal solvers. The flow
// remains usable; solvers created afterwards build fresh pools.
func (f *Flow) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, pl := range f.pools {
		for _, ps := range pl.solvers {
			ps.s.Close()
		}
	}
	f.pools = nil
}

// Analysis is the full measurement of one placement.
type Analysis struct {
	Placement *place.Placement
	Power     *power.Report
	// PowerMap is the power per thermal-grid cell in watts (the paper's
	// power profile, Figure 5 left).
	PowerMap *geom.Grid
	// Thermal is the solved thermal result (Figure 5 right). When the
	// power-delta gate skipped the solve, it is shared with the parent
	// analysis; treat it as read-only.
	Thermal *thermal.Result
	// Hotspots are the detected hot regions, hottest first.
	Hotspots []hotspot.Hotspot

	// Timing is the static timing report of the placement, derated with the
	// solved temperature field (hot cells slow down). Nil when
	// Config.CoAnalysis is off or ReleaseHeavy dropped it.
	Timing *timing.Report
	// Congestion is the probabilistic routing-congestion estimate of the
	// placement. Nil when Config.CoAnalysis is off or ReleaseHeavy dropped
	// it.
	Congestion *congestion.Report
	// HPWL is the total half-perimeter wirelength of the placement in um
	// (zero when Config.CoAnalysis is off).
	HPWL float64

	// state is the full solved temperature field (solver node order,
	// including the layers SurfaceOnly omits from Thermal), the warm-start
	// seed a lineage child's solve starts from; stateID identifies it for
	// the pooled-solver seed-copy skip. Nil/0 when the solve ran outside
	// the structured-grid fast path.
	state   []float64
	stateID uint64
}

// PeakRise returns the peak temperature rise above ambient in kelvin.
func (a *Analysis) PeakRise() float64 { return a.Thermal.PeakRise }

// MemoryBytes estimates the retained size of the analysis' numeric payload
// — the solved-state warm-start field, the power map, the materialized
// thermal layers and the power report's per-instance breakdowns — which is
// what dominates a resident cached analysis. Shared structures (the
// placement, the design) are deliberately excluded: cached analyses of one
// design share them, so charging them per entry would overcount. The
// estimate is the accounting unit of the query server's solved-state LRU.
func (a *Analysis) MemoryBytes() int64 {
	const f64 = 8
	n := int64(0)
	n += f64 * int64(len(a.state))
	if a.PowerMap != nil {
		n += f64 * int64(len(a.PowerMap.Values()))
	}
	if a.Thermal != nil {
		for _, l := range a.Thermal.Layers {
			if l != nil {
				n += f64 * int64(len(l.Values()))
			}
		}
	}
	if a.Power != nil {
		n += a.Power.MemoryBytes()
	}
	if a.Timing != nil {
		n += a.Timing.MemoryBytes()
	}
	if a.Congestion != nil {
		n += a.Congestion.MemoryBytes()
	}
	n += int64(len(a.Hotspots)) * 128 // rect + cells bookkeeping, coarse
	return n
}

// AnalyzeOptions parameterizes a lineage-aware analysis.
type AnalyzeOptions struct {
	// Parent is the analysis the placement derives from (the baseline for
	// a Default or ERI sweep point, the Default point for the HW point
	// stacked on it). The thermal solve warm-starts from the parent's
	// solved field instead of the baseline's, and the power-delta gate
	// (Config.PowerDeltaGateW) compares power maps against the parent's.
	// Nil analyzes the placement standalone (baseline-seeded).
	Parent *Analysis
	// Delta describes how the placement differs from Parent.Placement, as
	// produced by place.Reflow, core.EmptyRowInsertionDelta or
	// core.HotspotWrapperDelta. A sparse delta routes power estimation
	// through Report.Update (re-evaluating only the dirty nets); a full or
	// nil delta re-estimates from scratch. An empty delta on the parent's
	// own placement returns the parent analysis unchanged.
	Delta *place.Delta
	// CoarseFactor, when 2 or larger, runs this one analysis at low
	// fidelity: the power map is binned directly at the downsampled grid
	// resolution (thermal.Config.GridDims), the thermal system is assembled
	// and solved at that resolution, hotspots are detected on the coarse
	// rise map, and the timing/congestion co-analysis is skipped — the
	// result carries only the cheap fields, like an analysis after
	// ReleaseHeavy (Timing, Congestion and HPWL stay zero). This is the
	// triage fidelity of the adaptive sweep: a fast estimate, not a
	// bit-identical measurement; exact reruns leave CoarseFactor zero. A
	// lineage Parent of a different fidelity still provides the power
	// report for the delta path but its temperature field is not used as a
	// warm-start seed (the resolutions differ).
	CoarseFactor int
}

// Analyze runs power estimation and thermal simulation on the placement and
// localizes the hotspots of the resulting thermal map.
//
// Analyze is safe for concurrent use with one caveat: the power estimate
// fills the placement's lazy net-bounding-box cache, so a *Placement may
// only be shared between concurrent Analyze calls if it has already been
// analyzed once (which warms the cache — the baseline in a sweep is exactly
// that case). Distinct placements need no coordination.
func (f *Flow) Analyze(p *place.Placement) (*Analysis, error) {
	return f.AnalyzeWithCtx(context.Background(), p, AnalyzeOptions{})
}

// AnalyzeCtx is Analyze with cancellation: the context is threaded into the
// thermal solve (checked per CG iteration), so even a large analysis aborts
// within milliseconds of the context firing, returning an error matching
// fault.ErrCanceled. When the context never fires the analysis is
// bit-identical to Analyze.
func (f *Flow) AnalyzeCtx(ctx context.Context, p *place.Placement) (*Analysis, error) {
	return f.AnalyzeWithCtx(ctx, p, AnalyzeOptions{})
}

// AnalyzeWith is Analyze with explicit lineage: the delta-driven analysis
// path of the incremental sweep. With a zero AnalyzeOptions it is exactly
// Analyze. With a parent and a delta it re-estimates power only where the
// delta is dirty, warm-starts the thermal solve from the parent's field,
// and (with a positive Config.PowerDeltaGateW) skips the solve outright
// when the power map moved less than the gate. Every path yields the same
// values as the from-scratch pipeline — bit-identical, except under a
// positive gate, which is documented as an approximation.
func (f *Flow) AnalyzeWith(p *place.Placement, opts AnalyzeOptions) (*Analysis, error) {
	return f.AnalyzeWithCtx(context.Background(), p, opts)
}

// AnalyzeWithCtx is AnalyzeWith with cancellation (see AnalyzeCtx).
func (f *Flow) AnalyzeWithCtx(ctx context.Context, p *place.Placement, opts AnalyzeOptions) (*Analysis, error) {
	if par := opts.Parent; par != nil && opts.Delta != nil && opts.Delta.Empty() && par.Placement == p &&
		opts.CoarseFactor < 2 {
		// Zero-delta no-op: the parent already measured this placement. A
		// coarse request must still run — the parent was measured at the
		// flow's configured fidelity, not the requested one.
		return par, nil
	}
	if in := f.Config.Thermal.Inject; in.StallAnalyze(in.NextAnalyze()) {
		// Injected stall (Injector.StallAnalyzeN): park until the caller
		// cancels, simulating an analysis that hangs before reaching the
		// solver — the overload the service chaos harness drives. The
		// ctx.Err() check below then reports the cancellation.
		<-ctx.Done()
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("flow: analysis: %w", fault.Canceled(cerr))
	}
	est, err := f.estimator()
	if err != nil {
		return nil, err
	}
	var rep *power.Report
	if par := opts.Parent; par != nil && opts.Delta != nil && !opts.Delta.IsFull() && par.Power != nil {
		rep = par.Power.Update(p, opts.Delta)
	} else {
		rep = est.Report(p)
	}
	tcfg := f.Config.Thermal
	if opts.CoarseFactor >= 2 {
		tcfg.CoarseFactor = opts.CoarseFactor
	}
	// Bin the power map directly at the solver's effective resolution: at
	// full fidelity that is NX x NY as always; at low fidelity the coarse
	// cells are filled in one pass instead of binning finely and
	// restricting (the solver accepts either).
	pmNX, pmNY := tcfg.GridDims()
	pm := power.Map(rep, p, pmNX, pmNY)
	tcfg.Inject.CorruptPower(pm.Values())
	if err := validatePowerMap(pm); err != nil {
		return nil, err
	}

	// The gate only arms on the delta-driven path (opts.Delta != nil, i.e.
	// an incremental sweep): a lineage-seeded but delta-less analysis is
	// the from-scratch pipeline and must stay exact even when the flow
	// carries a positive gate for its incremental runs.
	if par := opts.Parent; par != nil && opts.Delta != nil && f.Config.PowerDeltaGateW > 0 &&
		par.Thermal != nil && par.state != nil && par.PowerMap != nil &&
		par.PowerMap.NX == pm.NX && par.PowerMap.NY == pm.NY &&
		par.PowerMap.Region == pm.Region &&
		linfDiff(pm, par.PowerMap) <= f.Config.PowerDeltaGateW {
		// The power profile barely moved on the same grid geometry: the
		// parent's thermal field is (within the gate) this point's field.
		f.gateSkips.Add(1)
		an := &Analysis{
			Placement: p,
			Power:     rep,
			PowerMap:  pm,
			Thermal:   par.Thermal,
			Hotspots:  par.Hotspots,
			state:     par.state,
			stateID:   par.stateID,
		}
		// The shared thermal field means the child derates against the very
		// grid the parent's timing was computed on, which is what lets the
		// co-analysis take the incremental dirty-cone path below.
		if err := f.coAnalyze(an, opts); err != nil {
			return nil, err
		}
		return an, nil
	}

	var seed *lineageSeed
	if par := opts.Parent; par != nil && par.state != nil {
		seed = &lineageSeed{field: par.state, id: par.stateID}
	}
	tres, state, stateID, err := f.thermalSolve(ctx, pm, tcfg, seed)
	if err != nil {
		return nil, fmt.Errorf("flow: thermal simulation: %w", err)
	}
	spots := hotspot.Detect(tres.RiseMap(), f.Config.HotspotOptions)
	an := &Analysis{
		Placement: p,
		Power:     rep,
		PowerMap:  pm,
		Thermal:   tres,
		Hotspots:  spots,
		state:     state,
		stateID:   stateID,
	}
	if err := f.coAnalyze(an, opts); err != nil {
		return nil, err
	}
	return an, nil
}

// timingAnalyzer returns the cached timing graph of the design, building it
// on first use.
func (f *Flow) timingAnalyzer() (*timing.Analyzer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ta == nil && f.taErr == nil {
		f.ta, f.taErr = timing.NewAnalyzer(f.Design)
	}
	return f.ta, f.taErr
}

// timingOptions resolves Config.Timing for one analysis: a zero value means
// timing.DefaultOptions with the clock period derived from ClockHz, and a
// nil TemperatureMap tracks the analysis' own solved surface field. The
// surface is passed by pointer, so a gate-skipped child (which shares its
// parent's thermal result) resolves to options equal to its parent's — the
// precondition for the incremental timing path.
func (f *Flow) timingOptions(tres *thermal.Result) timing.Options {
	topts := f.Config.Timing
	if topts == (timing.Options{}) {
		topts = timing.DefaultOptions()
		topts.ClockPeriodPs = 0
	}
	if topts.ClockPeriodPs == 0 {
		if f.Config.ClockHz > 0 {
			topts.ClockPeriodPs = 1e12 / f.Config.ClockHz
		} else {
			topts.ClockPeriodPs = timing.DefaultOptions().ClockPeriodPs
		}
	}
	if topts.TemperatureMap == nil && tres != nil {
		topts.TemperatureMap = tres.Surface
	}
	return topts
}

// coAnalyze fills the analysis' timing, congestion and wirelength fields
// (Config.CoAnalysis). Timing takes the incremental dirty-cone path when the
// lineage parent carries a report computed under identical options —
// in practice the gate-skip case, where parent and child share the
// temperature field; everywhere else timing.Analyzer.Update falls back to
// the full propagation, which is bit-identical to a from-scratch
// timing.Analyze by construction (same cached graph, same operation order).
func (f *Flow) coAnalyze(an *Analysis, opts AnalyzeOptions) error {
	if !f.Config.CoAnalysis || opts.CoarseFactor >= 2 {
		// Low-fidelity analyses skip the co-analysis entirely: triage only
		// consumes area and peak rise, and STA/congestion would dominate
		// the cost of a coarse solve.
		return nil
	}
	ta, err := f.timingAnalyzer()
	if err != nil {
		return fmt.Errorf("flow: timing analysis: %w", err)
	}
	topts := f.timingOptions(an.Thermal)
	if par := opts.Parent; par != nil && opts.Delta != nil && par.Timing != nil {
		an.Timing = ta.Update(par.Timing, an.Placement, opts.Delta, topts)
	} else {
		an.Timing = ta.Analyze(an.Placement, topts)
	}
	an.Congestion = congestion.Estimate(an.Placement, f.Config.Congestion)
	an.HPWL = an.Placement.TotalHPWL()
	return nil
}

// estimator returns the cached power estimator for the flow's activity and
// clock, building it on first use.
func (f *Flow) estimator() (*power.Estimator, error) {
	act, err := f.Activity()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.est == nil || f.estClock != f.Config.ClockHz {
		f.est = power.NewEstimator(f.Design, act, f.Config.ClockHz)
		f.estClock = f.Config.ClockHz
	}
	return f.est, nil
}

// validatePowerMap rejects a power profile that cannot be physical — a NaN,
// infinite or negative per-cell power — before it reaches the thermal
// solver, where it would silently produce a garbage temperature field (CG
// happily "converges" on NaN-free nonsense for a mildly corrupted RHS). This
// is the detection point for the fault harness' corrupted-power injection.
func validatePowerMap(pm *geom.Grid) error {
	for i, v := range pm.Values() {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("flow: %w", &fault.ErrSetup{
				Stage: "power-map",
				Err:   fmt.Errorf("cell %d holds non-physical power %g W", i, v),
			})
		}
	}
	return nil
}

// linfDiff returns the largest absolute per-cell difference between two
// equally sized grids.
func linfDiff(a, b *geom.Grid) float64 {
	av, bv := a.Values(), b.Values()
	d := 0.0
	for i, v := range av {
		x := v - bv[i]
		if x < 0 {
			x = -x
		}
		if x > d {
			d = x
		}
	}
	return d
}

// AnalyzeBaseline places the design at the baseline utilization and
// analyzes the result, caching the analysis: every sweep and experiment
// measures against this same compact placement, and the incremental path's
// zero-delta no-op returns it directly. The cached analysis is shared;
// callers must treat it as read-only.
func (f *Flow) AnalyzeBaseline() (*Analysis, error) {
	return f.AnalyzeBaselineCtx(context.Background())
}

// AnalyzeBaselineCtx is AnalyzeBaseline with cancellation (see AnalyzeCtx).
// A cached baseline analysis is returned without consulting the context.
func (f *Flow) AnalyzeBaselineCtx(ctx context.Context) (*Analysis, error) {
	p, err := f.Baseline()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	key := f.analysisKey()
	if f.baseAn != nil && f.baseAnKey == key && f.baseAn.Placement == p &&
		f.baseAnThermal.Equal(f.Config.Thermal) {
		an := f.baseAn
		f.mu.Unlock()
		return an, nil
	}
	f.mu.Unlock()
	an, err := f.AnalyzeCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.baseAn, f.baseAnKey = an, key
	// Snapshot the thermal config (its Stack aliases the caller's slice).
	f.baseAnThermal = f.Config.Thermal
	f.baseAnThermal.Stack = append(thermal.Stack(nil), f.Config.Thermal.Stack...)
	f.mu.Unlock()
	return an, nil
}

// ReleaseHeavy drops the analysis' thermal result, power map and
// co-analysis reports, keeping exactly what a lineage child needs: the
// placement, the power report, the detected hotspots and the solved-field
// seed. The sweep calls it on Default-point analyses it will not retain
// (after copying the point's scalar metrics), so an in-flight task does not
// pin multi-layer grids or per-net timing state through the HW pass. Do not
// call it when the analysis feeds a gated child (Config.PowerDeltaGateW >
// 0): the gate compares against the parent's power map and reuses its
// thermal result, and the child's timing update starts from the parent's
// report.
func (an *Analysis) ReleaseHeavy() {
	an.Thermal = nil
	an.PowerMap = nil
	an.Timing = nil
	an.Congestion = nil
}

// ReflowAt derives the placement at the given utilization from the cached
// baseline placement (place.Placement.Reflow) instead of re-running global
// placement, applying the same refinement and filler passes as PlaceAt so
// the result is bit-identical to PlaceAt(utilization). At the baseline
// utilization itself it returns the cached baseline placement with an
// empty delta — the zero-delta no-op AnalyzeWith resolves to the cached
// baseline analysis.
func (f *Flow) ReflowAt(utilization float64) (*place.Placement, *place.Delta, error) {
	base, err := f.Baseline()
	if err != nil {
		return nil, nil, err
	}
	if utilization == f.Config.Utilization {
		return base, new(place.Delta), nil
	}
	p, delta, err := base.Reflow(utilization)
	if err != nil {
		return nil, nil, err
	}
	if f.Config.RefinePasses > 0 {
		place.RefineHPWL(p, f.Config.RefinePasses)
	}
	place.InsertFillers(p)
	return p, delta, nil
}
