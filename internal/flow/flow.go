// Package flow wires the individual substrates into the paper's analysis
// pipeline (Figure 2 of the paper): gate-level netlist -> placement ->
// random-vector logic simulation -> power estimation -> thermal simulation
// -> hotspot localization. The post-placement area-management techniques in
// package core consume and produce placements; this package provides the
// "measure the temperature of this placement" half of the loop.
package flow

import (
	"fmt"
	"strings"
	"sync"

	"thermplace/internal/bench"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
	"thermplace/internal/power"
	"thermplace/internal/thermal"
)

// Config collects every knob of the analysis pipeline.
type Config struct {
	// Utilization is the baseline placement utilization factor.
	Utilization float64
	// AspectRatio is the core aspect ratio (height / width).
	AspectRatio float64
	// SimCycles is the number of random-vector cycles used to extract
	// switching activity.
	SimCycles int
	// Seed seeds the random stimulus generator.
	Seed int64
	// ClockHz is the clock frequency for power estimation.
	ClockHz float64
	// RefinePasses is the number of detailed-placement improvement passes.
	RefinePasses int
	// Thermal configures the thermal grid and solver; its NX/NY also set
	// the power-map resolution.
	Thermal thermal.Config
	// HotspotOptions tunes hotspot detection on the resulting thermal map.
	HotspotOptions hotspot.Options
}

// DefaultConfig returns the configuration used by the paper-scale
// experiments: 85% starting utilization, 1 GHz, 40x40x9 thermal grid. The
// flow only ever reads the surface (power-layer) temperature map, so the
// thermal solver is asked to skip materializing the other layers; clear
// Thermal.SurfaceOnly to get all of Analysis.Thermal.Layers back.
func DefaultConfig() Config {
	tcfg := thermal.DefaultConfig()
	tcfg.SurfaceOnly = true
	return Config{
		Utilization:    0.85,
		AspectRatio:    1.0,
		SimCycles:      128,
		Seed:           1,
		ClockHz:        1e9,
		RefinePasses:   1,
		Thermal:        tcfg,
		HotspotOptions: hotspot.DefaultOptions(),
	}
}

// ScenarioConfig maps the physical-design knobs of a bench.Scenario —
// utilization, aspect ratio, clock, and stimulus seed — onto a flow
// configuration, so a generated scenario runs the pipeline under the
// conditions it was generated for. Grid resolution and simulation depth
// keep their defaults; callers tune them on the returned Config.
func ScenarioConfig(sc bench.Scenario) Config {
	sc = sc.Normalized()
	cfg := DefaultConfig()
	cfg.Utilization = sc.Utilization
	cfg.AspectRatio = sc.AspectRatio
	cfg.ClockHz = sc.ClockGHz * 1e9
	cfg.Seed = sc.Seed
	return cfg
}

// FastConfig returns a reduced configuration (coarser grid, fewer cycles)
// for tests and quick exploration.
func FastConfig() Config {
	cfg := DefaultConfig()
	cfg.SimCycles = 48
	cfg.RefinePasses = 0
	cfg.Thermal.NX = 20
	cfg.Thermal.NY = 20
	return cfg
}

// Flow binds a design and a workload to an analysis configuration and caches
// everything that is reusable across analyses: the workload-dependent (but
// placement-independent) switching activity, the deterministic baseline
// placement, and a pool of structured-grid thermal solvers. The solver pool
// is what makes a sweep cheap and concurrent: every ERI/HW/Default point
// reuses an assembled thermal system, and each solve warm-starts from the
// recorded first-solve temperature field — a fixed seed rather than
// "whatever the pooled solver computed last". Results are therefore
// independent of how analyses are scheduled across solvers provided the
// first fast-path analysis completes before the concurrent calls begin
// (run AnalyzeBaseline first, as the sweep does); when the very first
// solves race, whichever finishes first becomes the seed for the rest.
//
// Analyze (and everything it calls) is safe for concurrent use once the
// flow's Config is no longer being mutated; the concurrent sweep in package
// core relies on this. Mutating Config between calls remains allowed for
// sequential use.
type Flow struct {
	Design   *netlist.Design
	Workload bench.Workload
	Config   Config

	// mu guards every cache below.
	mu          sync.Mutex
	activity    *logicsim.Activity
	baseline    *place.Placement
	baselineKey placementKey

	// solvers holds the idle pooled thermal solvers for solverCfg; seed is
	// the temperature field of the first completed fast-path solve, copied
	// into every pooled solver before each subsequent solve.
	solvers   []*thermal.Solver
	solverCfg thermal.Config
	seed      []float64
}

// New creates a flow for the design under the given workload.
func New(d *netlist.Design, wl bench.Workload, cfg Config) *Flow {
	return &Flow{Design: d, Workload: wl, Config: cfg}
}

// Activity returns the switching activity of the design under the flow's
// workload, simulating it on first use and caching the result: the paper's
// "power estimation based on annotated switching activity of randomly
// generated test vectors".
func (f *Flow) Activity() (*logicsim.Activity, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.activity != nil {
		return f.activity, nil
	}
	stim := logicsim.RandomStimulus(f.Config.Seed, func(port string) float64 {
		unit := strings.SplitN(port, "_", 2)[0]
		return f.Workload.ActivityFor(unit)
	})
	act, err := logicsim.RunRandom(f.Design, f.Config.SimCycles, stim)
	if err != nil {
		return nil, fmt.Errorf("flow: activity simulation: %w", err)
	}
	f.activity = act
	return act, nil
}

// PlaceAt builds a floorplan at the given utilization and places the design
// into it (the "Logic and Physical Synthesis" box of the paper's flow).
func (f *Flow) PlaceAt(utilization float64) (*place.Placement, error) {
	fp, err := floorplan.New(f.Design, floorplan.Config{
		Utilization: utilization,
		AspectRatio: f.Config.AspectRatio,
	})
	if err != nil {
		return nil, fmt.Errorf("flow: floorplanning at %.2f utilization: %w", utilization, err)
	}
	p, err := place.PlaceWithoutFillers(f.Design, fp)
	if err != nil {
		return nil, fmt.Errorf("flow: placement at %.2f utilization: %w", utilization, err)
	}
	if f.Config.RefinePasses > 0 {
		place.RefineHPWL(p, f.Config.RefinePasses)
	}
	// Fillers are inserted exactly once, on the final (possibly refined)
	// cell positions; inserting them before refinement would leave stale
	// fillers overlapping the swapped cells.
	place.InsertFillers(p)
	return p, nil
}

// Baseline places the design at the configured baseline utilization,
// building the placement on first use and caching it: placement is
// deterministic for a fixed design and utilization, and every sweep and
// experiment measures against this same compact placement. The cached
// placement is shared; callers must treat it as read-only (the core
// transforms clone before modifying).
func (f *Flow) Baseline() (*place.Placement, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := f.placementKey()
	if f.baseline != nil && f.baselineKey == key {
		return f.baseline, nil
	}
	p, err := f.PlaceAt(f.Config.Utilization)
	if err != nil {
		return nil, err
	}
	f.baseline = p
	f.baselineKey = key
	return p, nil
}

// placementKey captures every Config knob that shapes a baseline placement,
// so the cache is invalidated when any of them changes.
type placementKey struct {
	util, aspect float64
	refine       int
}

func (f *Flow) placementKey() placementKey {
	return placementKey{util: f.Config.Utilization, aspect: f.Config.AspectRatio, refine: f.Config.RefinePasses}
}

// thermalSolve routes the analysis through a pooled structured-grid solver
// when the configuration allows it, falling back to thermal.Solve for
// oracle/non-CG configurations. Each concurrent caller checks out its own
// solver (growing the pool on demand) and every solve after the first is
// warm-started from the recorded first-solve temperature field, so the
// result of a solve depends only on its own inputs — not on which pooled
// solver ran it or what that solver computed before. The pool is
// invalidated when the thermal configuration changes.
func (f *Flow) thermalSolve(pm *geom.Grid, tcfg thermal.Config) (*thermal.Result, error) {
	if !tcfg.FastPath() {
		return thermal.Solve(pm, tcfg)
	}
	s, seed, err := f.acquireSolver(tcfg)
	if err != nil {
		return nil, err
	}
	if seed != nil {
		if err := s.SeedState(seed); err != nil {
			return nil, err
		}
	}
	res, err := s.Solve(pm)
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.solverCfg.Equal(tcfg) {
		// The configuration changed while we were solving; this solver's
		// pool is gone. Drop the solver rather than re-pooling it.
		s.Close()
		return res, err
	}
	if err == nil && f.seed == nil {
		f.seed = s.State()
	}
	f.solvers = append(f.solvers, s)
	return res, err
}

// acquireSolver checks a solver for tcfg out of the pool, rebuilding the
// pool when the thermal configuration changed, and returns the warm-start
// seed to load (nil on the very first solve). Solver construction (stencil,
// multigrid hierarchy, Cholesky buffer) happens outside the flow mutex so
// concurrent pool growth does not serialize the other workers.
func (f *Flow) acquireSolver(tcfg thermal.Config) (*thermal.Solver, []float64, error) {
	f.mu.Lock()
	if !f.solverCfg.Equal(tcfg) {
		for _, s := range f.solvers {
			s.Close()
		}
		f.solvers = nil
		f.seed = nil
		f.solverCfg = tcfg
		// Snapshot the stack: tcfg.Stack aliases the caller's slice, and
		// Equal must detect in-place layer mutations against the state the
		// solvers were actually built from.
		f.solverCfg.Stack = append(thermal.Stack(nil), tcfg.Stack...)
	}
	seed := f.seed
	if n := len(f.solvers); n > 0 {
		s := f.solvers[n-1]
		f.solvers = f.solvers[:n-1]
		f.mu.Unlock()
		return s, seed, nil
	}
	f.mu.Unlock()

	s, err := thermal.NewSolver(tcfg)
	if err != nil {
		return nil, nil, err
	}
	// Re-read the seed: another worker may have published it while this
	// solver was being built.
	f.mu.Lock()
	if f.solverCfg.Equal(tcfg) {
		seed = f.seed
	}
	f.mu.Unlock()
	return s, seed, nil
}

// Close releases the worker pools of the pooled thermal solvers. The flow
// remains usable; solvers created afterwards build fresh pools.
func (f *Flow) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.solvers {
		s.Close()
	}
	f.solvers = nil
	f.seed = nil
	f.solverCfg = thermal.Config{}
}

// Analysis is the full measurement of one placement.
type Analysis struct {
	Placement *place.Placement
	Power     *power.Report
	// PowerMap is the power per thermal-grid cell in watts (the paper's
	// power profile, Figure 5 left).
	PowerMap *geom.Grid
	// Thermal is the solved thermal result (Figure 5 right).
	Thermal *thermal.Result
	// Hotspots are the detected hot regions, hottest first.
	Hotspots []hotspot.Hotspot
}

// PeakRise returns the peak temperature rise above ambient in kelvin.
func (a *Analysis) PeakRise() float64 { return a.Thermal.PeakRise }

// Analyze runs power estimation and thermal simulation on the placement and
// localizes the hotspots of the resulting thermal map.
//
// Analyze is safe for concurrent use with one caveat: the power estimate
// fills the placement's lazy net-bounding-box cache, so a *Placement may
// only be shared between concurrent Analyze calls if it has already been
// analyzed once (which warms the cache — the baseline in a sweep is exactly
// that case). Distinct placements need no coordination.
func (f *Flow) Analyze(p *place.Placement) (*Analysis, error) {
	act, err := f.Activity()
	if err != nil {
		return nil, err
	}
	rep := power.Estimate(f.Design, p, act, f.Config.ClockHz)
	tcfg := f.Config.Thermal
	pm := power.Map(rep, p, tcfg.NX, tcfg.NY)
	tres, err := f.thermalSolve(pm, tcfg)
	if err != nil {
		return nil, fmt.Errorf("flow: thermal simulation: %w", err)
	}
	spots := hotspot.Detect(tres.RiseMap(), f.Config.HotspotOptions)
	return &Analysis{
		Placement: p,
		Power:     rep,
		PowerMap:  pm,
		Thermal:   tres,
		Hotspots:  spots,
	}, nil
}

// AnalyzeBaseline is a convenience wrapper: place at the baseline
// utilization and analyze the result.
func (f *Flow) AnalyzeBaseline() (*Analysis, error) {
	p, err := f.Baseline()
	if err != nil {
		return nil, err
	}
	return f.Analyze(p)
}
