package flow

import (
	"math"
	"sync"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// smallFlow builds a flow over the small benchmark with a workload that
// heats the 8-bit multiplier.
func smallFlow(t *testing.T) *Flow {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl := bench.Workload{
		Name:     "hot-mult8",
		Activity: map[string]float64{"mult8": 0.6},
		Default:  0.03,
	}
	return New(d, wl, FastConfig())
}

func TestActivityCachedAndWorkloadDriven(t *testing.T) {
	f := smallFlow(t)
	a1, err := f.Activity()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := f.Activity()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("activity must be cached between calls")
	}
	if a1.MeanActivity() <= 0 {
		t.Fatal("mean activity must be positive")
	}
	// The hot unit's cells must switch more than the cold units' cells.
	sumFor := func(unit string) float64 {
		total := 0.0
		for _, inst := range f.Design.InstancesInUnit(unit) {
			if out := inst.Master.OutputPin(); out != "" {
				if net := inst.Conn(out); net != nil {
					total += a1.For(net.Name)
				}
			}
		}
		return total / float64(len(f.Design.InstancesInUnit(unit)))
	}
	if sumFor("mult8") <= sumFor("add16") {
		t.Fatalf("hot unit mean activity %g should exceed cold unit %g", sumFor("mult8"), sumFor("add16"))
	}
}

func TestBaselineCachedAndAnalysesConsistent(t *testing.T) {
	f := smallFlow(t)
	p1, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("baseline placement must be cached between calls")
	}
	// Repeated analyses must agree: the cached thermal solver's warm start
	// must not drift the answer.
	a1, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a1.PeakRise() - a2.PeakRise()); d > 1e-9 {
		t.Fatalf("repeated analysis changed peak rise by %g C", d)
	}
}

func TestAnalyzeFastPathMatchesSpiceOracle(t *testing.T) {
	f := smallFlow(t)
	p, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := f.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	g := New(f.Design, f.Workload, f.Config)
	g.Config.Thermal.UseSpice = true
	oracle, err := g.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(fast.PeakRise() - oracle.PeakRise()); d > 1e-6 {
		t.Fatalf("fast path peak rise differs from spice oracle by %g C", d)
	}
}

func TestSolverCacheInvalidatedOnConfigChange(t *testing.T) {
	f := smallFlow(t)
	a1, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	// Coarsen the thermal grid mid-flight: the cached solver must be
	// rebuilt, not fed a mismatched power map.
	f.Config.Thermal.NX = 10
	f.Config.Thermal.NY = 10
	a2, err := f.Analyze(a1.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Thermal.Surface.NX != 10 {
		t.Fatalf("analysis used stale grid %d", a2.Thermal.Surface.NX)
	}
	// In-place mutation of a stack layer must also invalidate the cache:
	// the conductances change even though the slice header does not.
	before := a2.PeakRise()
	f.Config.Thermal.Stack[1].Conductivity /= 10
	a3, err := f.Analyze(a1.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a3.PeakRise()-before) < 1e-9 {
		t.Fatal("stack mutation did not change the thermal answer; stale solver reused")
	}
}

func TestBaselineCacheInvalidatedOnUtilizationChange(t *testing.T) {
	f := smallFlow(t)
	p1, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	f.Config.Utilization = 0.60
	p2, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 || p2.FP.CoreArea() <= p1.FP.CoreArea() {
		t.Fatal("utilization change must rebuild the baseline placement")
	}
}

func TestPlaceAtAndBaseline(t *testing.T) {
	f := smallFlow(t)
	p, err := f.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("baseline placement illegal: %v", errs[0])
	}
	got := p.Utilization()
	if math.Abs(got-f.Config.Utilization) > 0.1 {
		t.Fatalf("baseline utilization %g too far from target %g", got, f.Config.Utilization)
	}
	relaxed, err := f.PlaceAt(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.FP.CoreArea() <= p.FP.CoreArea() {
		t.Fatal("lower utilization must give a larger core")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	f := smallFlow(t)
	an, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if an.Power.Total() <= 0 {
		t.Fatal("power must be positive")
	}
	if an.PowerMap.Sum() <= 0 {
		t.Fatal("power map must be positive")
	}
	if math.Abs(an.PowerMap.Sum()-an.Power.Total()) > 1e-9*an.Power.Total() {
		t.Fatal("power map must conserve total power")
	}
	if an.PeakRise() <= 0 {
		t.Fatal("peak rise must be positive")
	}
	if len(an.Hotspots) == 0 {
		t.Fatal("the skewed workload must produce at least one hotspot")
	}
	// The hottest hotspot must overlap the hot unit's region.
	hotRegion := an.Placement.FP.RegionOf("mult8")
	if hotRegion == nil {
		t.Fatal("no region for mult8")
	}
	if !an.Hotspots[0].Rect.Intersects(hotRegion.Rect.Expand(20)) {
		t.Fatalf("hottest hotspot %v does not overlap the hot unit region %v",
			an.Hotspots[0].Rect, hotRegion.Rect)
	}
	// The thermal grid must cover the core.
	if an.Thermal.Surface.Region != an.Placement.FP.Core {
		t.Fatal("thermal map region must equal the core")
	}
}

func TestWorkloadChangesHotspotLocation(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(hotUnit string) *Analysis {
		wl := bench.Workload{Name: "hot-" + hotUnit, Activity: map[string]float64{hotUnit: 0.6}, Default: 0.03}
		f := New(d, wl, FastConfig())
		an, err := f.AnalyzeBaseline()
		if err != nil {
			t.Fatal(err)
		}
		return an
	}
	a := run("mult8")
	b := run("alu8")
	if len(a.Hotspots) == 0 || len(b.Hotspots) == 0 {
		t.Fatal("both workloads must produce hotspots")
	}
	// The hotspot must follow the hot unit: this is the knob the paper uses
	// to control hotspot size and position.
	fpA := a.Placement.FP
	if !a.Hotspots[0].Rect.Intersects(fpA.RegionOf("mult8").Rect.Expand(20)) {
		t.Error("mult8 workload hotspot not over mult8")
	}
	fpB := b.Placement.FP
	if !b.Hotspots[0].Rect.Intersects(fpB.RegionOf("alu8").Rect.Expand(20)) {
		t.Error("alu8 workload hotspot not over alu8")
	}
}

func TestAnalyzeRejectsBrokenDesign(t *testing.T) {
	lib := celllib.Default65nm()
	d := netlist.NewDesign("broken", lib)
	// A design with a combinational loop cannot be simulated.
	u1, _ := d.AddInstance("u1", "INV_X1", "u")
	u2, _ := d.AddInstance("u2", "INV_X1", "u")
	n1 := d.GetOrCreateNet("n1")
	n2 := d.GetOrCreateNet("n2")
	_ = d.Connect(u1, "A", n2)
	_ = d.Connect(u1, "Z", n1)
	_ = d.Connect(u2, "A", n1)
	_ = d.Connect(u2, "Z", n2)
	f := New(d, bench.UniformWorkload(0.2), FastConfig())
	if _, err := f.Activity(); err == nil {
		t.Fatal("activity extraction on a looped design must fail")
	}
}

func TestConfigs(t *testing.T) {
	def := DefaultConfig()
	if def.Thermal.NX != 40 || def.ClockHz != 1e9 || def.Utilization != 0.85 {
		t.Fatalf("unexpected default config: %+v", def)
	}
	fast := FastConfig()
	if fast.Thermal.NX >= def.Thermal.NX || fast.SimCycles >= def.SimCycles {
		t.Fatal("FastConfig must be cheaper than DefaultConfig")
	}
}

// TestConcurrentAnalyzeMatchesSequential drives Analyze from many
// goroutines at once (the concurrent sweep's usage pattern: baseline first,
// then independent placements in parallel) and checks every result against
// a sequential reference flow. Because every thermal solve after the first
// is warm-started from the recorded baseline field, the results must be
// bit-identical regardless of scheduling. Run with -race to check the
// solver pool and cache locking.
func TestConcurrentAnalyzeMatchesSequential(t *testing.T) {
	f := smallFlow(t)
	if _, err := f.AnalyzeBaseline(); err != nil {
		t.Fatal(err)
	}
	utils := []float64{0.80, 0.75, 0.70, 0.65, 0.60, 0.55}
	placements := make([]*place.Placement, len(utils))
	for i, u := range utils {
		p, err := f.PlaceAt(u)
		if err != nil {
			t.Fatal(err)
		}
		placements[i] = p
	}

	got := make([]float64, len(placements))
	var wg sync.WaitGroup
	errCh := make(chan error, len(placements))
	for i, p := range placements {
		wg.Add(1)
		go func(i int, p *place.Placement) {
			defer wg.Done()
			an, err := f.Analyze(p)
			if err != nil {
				errCh <- err
				return
			}
			got[i] = an.PeakRise()
		}(i, p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Sequential reference on a fresh flow with the same seeding pattern
	// (baseline first). The placements are reused: their geometry caches
	// are warm from the concurrent pass, which must not change results.
	ref := New(f.Design, f.Workload, f.Config)
	if _, err := ref.AnalyzeBaseline(); err != nil {
		t.Fatal(err)
	}
	for i, p := range placements {
		an, err := ref.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		if an.PeakRise() != got[i] {
			t.Fatalf("placement %d (util %.2f): concurrent peak rise %g != sequential %g",
				i, utils[i], got[i], an.PeakRise())
		}
	}
	f.Close()
	ref.Close()

	// The flow stays usable after Close.
	if _, err := f.AnalyzeBaseline(); err != nil {
		t.Fatal(err)
	}
}

// TestFlowCloseIdempotent closes a fresh and a used flow.
func TestFlowCloseIdempotent(t *testing.T) {
	f := smallFlow(t)
	f.Close()
	if _, err := f.AnalyzeBaseline(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close()
}
