package flow

import (
	"runtime"
	"testing"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
)

// waitGoroutines polls until the goroutine count returns to base, failing
// with a full stack dump if it does not settle.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFlowCloseReleasesGoroutines is the goroutine-leak regression for the
// flow's pooled thermal solvers: repeated Analyze + Close cycles must leave
// the goroutine count where it started, and a closed flow must rebuild a
// working pool on the next Analyze.
func TestFlowCloseReleasesGoroutines(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl := bench.Workload{Name: "hot-mult8", Activity: map[string]float64{"mult8": 0.6}, Default: 0.03}
	cfg := FastConfig()
	// The paper grid (40x40x9 unknowns) is large enough for the CG solvers
	// to start parallel worker pools, which is what Close must release.
	cfg.Thermal.NX, cfg.Thermal.NY = 40, 40

	base := runtime.NumGoroutine()
	for cycle := 0; cycle < 4; cycle++ {
		f := New(d, wl, cfg)
		if _, err := f.AnalyzeBaseline(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.AnalyzeBaseline(); err != nil { // seeded pooled re-solve
			t.Fatal(err)
		}
		f.Close()
		f.Close() // Close must be idempotent
	}
	waitGoroutines(t, base)

	// A closed flow stays usable: the next analysis builds a fresh pool,
	// and closing again releases it.
	f := New(d, wl, cfg)
	if _, err := f.AnalyzeBaseline(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitGoroutines(t, base)
}
