package flow

import (
	"math"
	"testing"

	"thermplace/internal/place"
)

// TestAnalyzeCoarse covers the low-fidelity analysis contract: the solve
// runs on the downsampled grid, the co-analysis is skipped, and the
// zero-delta no-op does not short-circuit a coarse request with an exact
// parent.
func TestAnalyzeCoarse(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	co, err := f.AnalyzeWith(base.Placement, AnalyzeOptions{
		Parent:       base,
		Delta:        new(place.Delta),
		CoarseFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if co == base {
		t.Fatal("coarse request must not resolve to the exact parent via the zero-delta no-op")
	}
	wantNX, wantNY := (f.Config.Thermal.NX+1)/2, (f.Config.Thermal.NY+1)/2
	if co.Thermal.Surface.NX != wantNX || co.Thermal.Surface.NY != wantNY {
		t.Fatalf("coarse surface is %dx%d, want %dx%d",
			co.Thermal.Surface.NX, co.Thermal.Surface.NY, wantNX, wantNY)
	}
	if co.PowerMap.NX != wantNX || co.PowerMap.NY != wantNY {
		t.Fatalf("coarse power map binned at %dx%d, want %dx%d",
			co.PowerMap.NX, co.PowerMap.NY, wantNX, wantNY)
	}
	if co.Timing != nil || co.Congestion != nil || co.HPWL != 0 {
		t.Fatal("coarse analysis must skip the timing/congestion co-analysis")
	}
	// Power is conserved by the coarser binning, so the estimate tracks the
	// exact rise: the margin the adaptive sweep covers, not a free-for-all.
	if co.PeakRise() <= 0 {
		t.Fatal("coarse analysis lost the temperature rise")
	}
	if rel := math.Abs(co.PeakRise()-base.PeakRise()) / base.PeakRise(); rel > 0.5 {
		t.Fatalf("coarse peak rise %g vs exact %g: %.0f%% off", co.PeakRise(), base.PeakRise(), rel*100)
	}
}

// TestAnalyzeCoarseDeterministic pins that a coarse analysis does not
// depend on what the pooled solvers computed before — not on an exact solve
// that warmed the pool, and not on a previous coarse solve.
func TestAnalyzeCoarseDeterministic(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	opts := AnalyzeOptions{Parent: base, Delta: new(place.Delta), CoarseFactor: 2}
	first, err := f.AnalyzeWith(base.Placement, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave an exact solve, then repeat the coarse one.
	if _, err := f.Analyze(base.Placement); err != nil {
		t.Fatal(err)
	}
	second, err := f.AnalyzeWith(base.Placement, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range first.Thermal.Surface.Values() {
		if second.Thermal.Surface.Values()[i] != v {
			t.Fatalf("coarse cell %d drifted between runs: %g vs %g",
				i, v, second.Thermal.Surface.Values()[i])
		}
	}
}

// TestSolverPoolsCoexist pins the multi-pool behaviour the adaptive sweep
// relies on: interleaving coarse and exact analyses keeps both assembled
// solvers alive, and the exact answer is bit-identical before and after
// coarse solves ran through the flow.
func TestSolverPoolsCoexist(t *testing.T) {
	f := smallFlow(t)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	exactBefore := base.PeakRise()
	for i := 0; i < 3; i++ {
		if _, err := f.AnalyzeWith(base.Placement, AnalyzeOptions{CoarseFactor: 4}); err != nil {
			t.Fatalf("coarse round %d: %v", i, err)
		}
		an, err := f.Analyze(base.Placement)
		if err != nil {
			t.Fatalf("exact round %d: %v", i, err)
		}
		if an.PeakRise() != exactBefore {
			t.Fatalf("exact peak rise drifted after coarse interleave: %g vs %g",
				an.PeakRise(), exactBefore)
		}
	}
	f.mu.Lock()
	pools := len(f.pools)
	f.mu.Unlock()
	if pools != 2 {
		t.Fatalf("expected 2 live solver pools (coarse + exact), have %d", pools)
	}
}

// TestPlaceAtAspect checks the explicit-aspect placement entry point: the
// configured-aspect call stays bit-identical to PlaceAt, and a different
// aspect reshapes the core without touching the shared Config.
func TestPlaceAtAspect(t *testing.T) {
	f := smallFlow(t)
	p1, err := f.PlaceAt(0.7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.PlaceAtAspect(0.7, f.Config.AspectRatio)
	if err != nil {
		t.Fatal(err)
	}
	if p1.FP.Core != p2.FP.Core {
		t.Fatalf("PlaceAtAspect at the configured aspect diverged: %v vs %v", p1.FP.Core, p2.FP.Core)
	}
	tall, err := f.PlaceAtAspect(0.7, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	w, h := tall.FP.Core.Xhi-tall.FP.Core.Xlo, tall.FP.Core.Yhi-tall.FP.Core.Ylo
	if h <= w {
		t.Fatalf("aspect 2.0 core should be taller than wide, got %gx%g", w, h)
	}
	if f.Config.AspectRatio != 1.0 {
		t.Fatal("PlaceAtAspect mutated the shared Config")
	}
}
