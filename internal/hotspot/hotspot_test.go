package hotspot

import (
	"math"
	"testing"

	"thermplace/internal/geom"
)

func riseMap(nx, ny int, side float64) *geom.Grid {
	return geom.NewGrid(nx, ny, geom.Rect{Xlo: 0, Ylo: 0, Xhi: side, Yhi: side})
}

func TestDetectNoRise(t *testing.T) {
	g := riseMap(10, 10, 100)
	if spots := Detect(g, DefaultOptions()); len(spots) != 0 {
		t.Fatalf("flat map should have no hotspots, got %d", len(spots))
	}
	if _, ok := Hottest(g, DefaultOptions()); ok {
		t.Fatal("Hottest should report none on a flat map")
	}
}

func TestDetectSingleHotspot(t *testing.T) {
	g := riseMap(10, 10, 100)
	g.Fill(1.0)
	// A 2x2 hot patch at (4..5, 6..7).
	for iy := 6; iy <= 7; iy++ {
		for ix := 4; ix <= 5; ix++ {
			g.Set(ix, iy, 10.0)
		}
	}
	spots := Detect(g, Options{ThresholdFrac: 0.8, MinCells: 1})
	if len(spots) != 1 {
		t.Fatalf("expected 1 hotspot, got %d", len(spots))
	}
	h := spots[0]
	if len(h.Cells) != 4 {
		t.Fatalf("hotspot has %d cells, want 4", len(h.Cells))
	}
	if h.PeakRise != 10 || math.Abs(h.MeanRise-10) > 1e-9 {
		t.Fatalf("peak/mean = %g/%g", h.PeakRise, h.MeanRise)
	}
	// Bounding box: cells are 10x10 um, so the patch covers x [40,60), y [60,80).
	want := geom.Rect{Xlo: 40, Ylo: 60, Xhi: 60, Yhi: 80}
	if h.Rect != want {
		t.Fatalf("bbox = %v, want %v", h.Rect, want)
	}
	if math.Abs(h.AreaUm2-400) > 1e-9 {
		t.Fatalf("area = %g, want 400", h.AreaUm2)
	}
	if f := h.FracOfArea(g.Region); math.Abs(f-0.04) > 1e-9 {
		t.Fatalf("area fraction = %g, want 0.04", f)
	}
}

func TestDetectMultipleHotspotsSortedAndConnected(t *testing.T) {
	g := riseMap(20, 20, 200)
	g.Fill(0.5)
	// Hotspot A: hotter, 3 cells in an L shape.
	g.Set(2, 2, 8)
	g.Set(3, 2, 8)
	g.Set(3, 3, 9)
	// Hotspot B: cooler but above threshold, 2 cells, far away.
	g.Set(15, 15, 7.5)
	g.Set(15, 16, 7.5)
	// A diagonal-only neighbour must NOT join component A (4-connectivity).
	g.Set(4, 4, 8)

	spots := Detect(g, Options{ThresholdFrac: 0.8, MinCells: 1})
	if len(spots) != 3 {
		t.Fatalf("expected 3 hotspots (L, diagonal singleton, far pair), got %d", len(spots))
	}
	// Sorted hottest first.
	if spots[0].PeakRise < spots[1].PeakRise || spots[1].PeakRise < spots[2].PeakRise {
		t.Fatal("hotspots not sorted by peak")
	}
	if spots[0].ID != 0 || spots[1].ID != 1 || spots[2].ID != 2 {
		t.Fatal("IDs must follow sort order")
	}
	// The hottest component contains 3 cells (the L), not 4.
	if len(spots[0].Cells) != 3 {
		t.Fatalf("hottest component has %d cells, want 3 (diagonal must not connect)", len(spots[0].Cells))
	}
	// MinCells filter drops the singleton.
	filtered := Detect(g, Options{ThresholdFrac: 0.8, MinCells: 2})
	if len(filtered) != 2 {
		t.Fatalf("MinCells=2 should leave 2 hotspots, got %d", len(filtered))
	}

	merged := MergedRect(spots)
	for _, h := range spots {
		if merged.Union(h.Rect) != merged {
			t.Fatal("MergedRect must contain every hotspot")
		}
	}
}

func TestDetectThresholdBehaviour(t *testing.T) {
	g := riseMap(10, 10, 100)
	g.Fill(4.9) // background just below half of peak 10
	g.Set(5, 5, 10)
	// With a 0.5 threshold the background (4.9 < 5.0) stays out.
	spots := Detect(g, Options{ThresholdFrac: 0.5, MinCells: 1})
	if len(spots) != 1 || len(spots[0].Cells) != 1 {
		t.Fatalf("expected a single one-cell hotspot, got %+v", spots)
	}
	// The threshold is relative to the spread above the mean, so even a very
	// low fraction never drags the below-mean background into the hotspot:
	// a nearly flat die does not degenerate into one whole-die hotspot.
	spots = Detect(g, Options{ThresholdFrac: 0.01, MinCells: 1})
	if len(spots) != 1 || len(spots[0].Cells) != 1 {
		t.Fatalf("low threshold must still exclude the below-mean background, got %+v", spots)
	}
	// Out-of-range thresholds fall back to the default rather than panic.
	if got := Detect(g, Options{ThresholdFrac: 5}); len(got) == 0 {
		t.Fatal("fallback threshold should still find the peak cell")
	}
}

func TestDetectFlatPositiveMap(t *testing.T) {
	g := riseMap(10, 10, 100)
	g.Fill(3.0)
	if spots := Detect(g, DefaultOptions()); len(spots) != 0 {
		t.Fatalf("a spatially flat map has no hotspots, got %d", len(spots))
	}
}

func TestHottest(t *testing.T) {
	g := riseMap(10, 10, 100)
	g.Set(1, 1, 3)
	g.Set(8, 8, 6)
	h, ok := Hottest(g, Options{ThresholdFrac: 0.4, MinCells: 1})
	if !ok {
		t.Fatal("expected a hotspot")
	}
	if h.PeakRise != 6 {
		t.Fatalf("hottest peak = %g, want 6", h.PeakRise)
	}
}

func TestClassify(t *testing.T) {
	region := geom.Rect{Xlo: 0, Ylo: 0, Xhi: 100, Yhi: 100}
	spots := []Hotspot{
		{ID: 0, Rect: geom.Rect{Xlo: 0, Ylo: 0, Xhi: 50, Yhi: 50}, AreaUm2: 2500},  // 25% of region
		{ID: 1, Rect: geom.Rect{Xlo: 60, Ylo: 60, Xhi: 70, Yhi: 70}, AreaUm2: 100}, // 1%
	}
	small, large := Classify(spots, region, 0.15)
	if len(large) != 1 || large[0].ID != 0 {
		t.Fatalf("large = %+v", large)
	}
	if len(small) != 1 || small[0].ID != 1 {
		t.Fatalf("small = %+v", small)
	}
	// Default threshold path.
	small, large = Classify(spots, region, 0)
	if len(large) != 1 || len(small) != 1 {
		t.Fatal("default largeFrac classification failed")
	}
}
