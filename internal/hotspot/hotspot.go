// Package hotspot localizes thermal hotspots on a temperature map: the
// groups of grid cells whose temperature rise is close to the peak. The
// post-placement techniques of the paper operate on exactly these regions —
// empty rows are inserted "in the area around a given hotspot" and wrappers
// are built around "the cells which are the source of the hotspot".
package hotspot

import (
	"sort"

	"thermplace/internal/geom"
)

// Hotspot is one connected region of near-peak temperature.
type Hotspot struct {
	// ID numbers hotspots from hottest (0) to coolest.
	ID int
	// Rect is the physical bounding box of the hotspot cells in um.
	Rect geom.Rect
	// Cells lists the (ix, iy) grid cells belonging to the hotspot.
	Cells [][2]int
	// PeakRise is the maximum temperature rise inside the hotspot (same
	// unit as the input map).
	PeakRise float64
	// MeanRise is the average rise over the hotspot cells.
	MeanRise float64
	// AreaUm2 is the physical area covered by the hotspot cells.
	AreaUm2 float64
}

// FracOfArea returns the hotspot area as a fraction of the given region
// (typically the core), used to classify small vs large hotspots.
func (h Hotspot) FracOfArea(region geom.Rect) float64 {
	if region.Area() <= 0 {
		return 0
	}
	return h.AreaUm2 / region.Area()
}

// Options tunes hotspot detection.
type Options struct {
	// ThresholdFrac positions the hot/cold threshold between the mean rise
	// and the peak rise: a cell is hot when
	//
	//	rise >= mean + ThresholdFrac * (peak - mean)
	//
	// Being relative to the spread rather than to the absolute peak keeps
	// detection meaningful on the fairly flat thermal maps that small,
	// well-cooled dies produce (the paper's own profiles vary by only a few
	// percent across the die). Zero means the default of 0.7.
	ThresholdFrac float64
	// MinCells drops connected components smaller than this many grid
	// cells. Zero means 1 (keep everything).
	MinCells int
}

// DefaultOptions returns the detection settings used by the experiments.
func DefaultOptions() Options { return Options{ThresholdFrac: 0.5, MinCells: 2} }

// Detect finds hotspots on a temperature-rise map (surface temperature minus
// ambient). It thresholds the map at mean + ThresholdFrac*(peak - mean),
// groups hot cells into 4-connected components, and returns them sorted
// hottest first. A map with no positive rise or no spatial variation yields
// no hotspots.
func Detect(rise *geom.Grid, opts Options) []Hotspot {
	if opts.ThresholdFrac <= 0 || opts.ThresholdFrac > 1 {
		opts.ThresholdFrac = 0.7
	}
	if opts.MinCells <= 0 {
		opts.MinCells = 1
	}
	peak, _, _ := rise.Max()
	if peak <= 0 {
		return nil
	}
	mean := rise.Mean()
	if peak-mean <= 0 {
		return nil
	}
	threshold := mean + opts.ThresholdFrac*(peak-mean)

	hot := func(ix, iy int) bool { return rise.At(ix, iy) >= threshold }
	visited := make([]bool, rise.NX*rise.NY)
	idx := func(ix, iy int) int { return iy*rise.NX + ix }

	var spots []Hotspot
	for iy := 0; iy < rise.NY; iy++ {
		for ix := 0; ix < rise.NX; ix++ {
			if visited[idx(ix, iy)] || !hot(ix, iy) {
				continue
			}
			// Flood fill the connected component.
			var cells [][2]int
			queue := [][2]int{{ix, iy}}
			visited[idx(ix, iy)] = true
			for len(queue) > 0 {
				c := queue[0]
				queue = queue[1:]
				cells = append(cells, c)
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := c[0]+d[0], c[1]+d[1]
					if nx < 0 || nx >= rise.NX || ny < 0 || ny >= rise.NY {
						continue
					}
					if !visited[idx(nx, ny)] && hot(nx, ny) {
						visited[idx(nx, ny)] = true
						queue = append(queue, [2]int{nx, ny})
					}
				}
			}
			if len(cells) < opts.MinCells {
				continue
			}
			spots = append(spots, makeHotspot(rise, cells))
		}
	}
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].PeakRise != spots[j].PeakRise {
			return spots[i].PeakRise > spots[j].PeakRise
		}
		return spots[i].AreaUm2 > spots[j].AreaUm2
	})
	for i := range spots {
		spots[i].ID = i
	}
	return spots
}

func makeHotspot(rise *geom.Grid, cells [][2]int) Hotspot {
	h := Hotspot{Cells: cells}
	var bbox geom.Rect
	sum := 0.0
	for i, c := range cells {
		r := rise.CellRect(c[0], c[1])
		if i == 0 {
			bbox = r
		} else {
			bbox = bbox.Union(r)
		}
		v := rise.At(c[0], c[1])
		sum += v
		if v > h.PeakRise {
			h.PeakRise = v
		}
		h.AreaUm2 += r.Area()
	}
	h.Rect = bbox
	h.MeanRise = sum / float64(len(cells))
	return h
}

// Hottest returns the single hottest hotspot, or a zero Hotspot and false
// when none exist.
func Hottest(rise *geom.Grid, opts Options) (Hotspot, bool) {
	spots := Detect(rise, opts)
	if len(spots) == 0 {
		return Hotspot{}, false
	}
	return spots[0], true
}

// MergedRect returns the union bounding box of all hotspots; useful when a
// single transformation must cover every hot region at once.
func MergedRect(spots []Hotspot) geom.Rect {
	var out geom.Rect
	for _, h := range spots {
		out = out.Union(h.Rect)
	}
	return out
}

// Classify splits hotspots into "small" and "large" relative to the region:
// a hotspot whose bounding box covers at least largeFrac of the region is
// large. The paper applies the wrapper technique only to small concentrated
// hotspots and prefers empty-row insertion for large ones.
func Classify(spots []Hotspot, region geom.Rect, largeFrac float64) (small, large []Hotspot) {
	if largeFrac <= 0 {
		largeFrac = 0.15
	}
	for _, h := range spots {
		if h.Rect.Area()/region.Area() >= largeFrac {
			large = append(large, h)
		} else {
			small = append(small, h)
		}
	}
	return small, large
}
