package place

import (
	"math"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

func placedSmall(t *testing.T, util float64) (*netlist.Design, *Placement) {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.Config{Utilization: util, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestPlaceProducesLegalPlacement(t *testing.T) {
	_, p := placedSmall(t, 0.85)
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("placement not legal: %v (and %d more)", errs[0], len(errs)-1)
	}
}

func TestPlaceAllCellsInsideUnitRegions(t *testing.T) {
	d, p := placedSmall(t, 0.80)
	for _, inst := range d.Instances() {
		if inst.IsFiller() || inst.Unit == "" {
			continue
		}
		reg := p.FP.RegionOf(inst.Unit)
		if reg == nil {
			t.Fatalf("no region for unit %q", inst.Unit)
		}
		c := p.Center(inst)
		// Allow a small tolerance: legalization snapping can push a cell a
		// site or a row across the region boundary.
		grown := reg.Rect.Expand(2 * p.FP.RowHeight)
		if !grown.ContainsClosed(c) {
			t.Errorf("cell %s (unit %s) at %v is far outside its region %v", inst.Name, inst.Unit, c, reg.Rect)
		}
	}
}

func TestPlaceUtilizationMatchesTarget(t *testing.T) {
	for _, util := range []float64{0.7, 0.85, 0.95} {
		_, p := placedSmall(t, util)
		got := p.Utilization()
		if got > util+1e-6 || got < util*0.85 {
			t.Errorf("placement utilization %g for target %g", got, util)
		}
	}
}

func TestPortsPlacedOnBoundary(t *testing.T) {
	d, p := placedSmall(t, 0.85)
	core := p.FP.Core
	for _, port := range d.Ports() {
		pt, ok := p.PortLoc(port)
		if !ok {
			t.Fatalf("port %q has no pad location", port.Name)
		}
		onEdge := math.Abs(pt.X-core.Xlo) < 1e-9 || math.Abs(pt.X-core.Xhi) < 1e-9 ||
			math.Abs(pt.Y-core.Ylo) < 1e-9 || math.Abs(pt.Y-core.Yhi) < 1e-9
		if !onEdge {
			t.Errorf("port %q pad %v not on the core boundary", port.Name, pt)
		}
	}
}

func TestHPWLAndDensity(t *testing.T) {
	d, p := placedSmall(t, 0.85)
	if p.TotalHPWL() <= 0 {
		t.Fatal("total HPWL must be positive")
	}
	// Individual net HPWL is non-negative and bounded by the core perimeter.
	bound := p.FP.Core.W() + p.FP.Core.H()
	for _, n := range d.Nets() {
		h := p.HPWL(n)
		if h < 0 || h > bound+1e-6 {
			t.Fatalf("net %s HPWL %g out of bounds", n.Name, h)
		}
	}
	// Density grid conserves the placed cell area.
	g := p.CellDensityGrid(16, 16)
	if math.Abs(g.Sum()-p.PlacedArea()) > 1e-6*p.PlacedArea() {
		t.Fatalf("density grid sum %g != placed area %g", g.Sum(), p.PlacedArea())
	}
	// Utilization grid values should hover around the target utilization.
	u := p.UtilizationGrid(8, 8)
	if u.Mean() < 0.3 || u.Mean() > 1.1 {
		t.Fatalf("mean local utilization %g implausible", u.Mean())
	}
}

func TestConnectivityOrderingKeepsNetsShort(t *testing.T) {
	// The region-constrained, connectivity-ordered placement should produce
	// substantially shorter wirelength than a random-order placement of the
	// same design at the same utilization.
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	good, err := Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	// Random-ish baseline: place all cells as one group in creation order
	// reversed across the whole core (destroys unit locality).
	bad := NewPlacement(d, fp.Clone())
	cells := []*netlist.Instance{}
	for _, inst := range d.Instances() {
		if !inst.IsFiller() {
			cells = append(cells, inst)
		}
	}
	// Interleave from both ends to scatter connected cells far apart.
	var scattered []*netlist.Instance
	for i, j := 0, len(cells)-1; i <= j; i, j = i+1, j-1 {
		scattered = append(scattered, cells[i])
		if i != j {
			scattered = append(scattered, cells[j])
		}
	}
	if err := placeInRegion(bad, scattered, bad.FP.Core); err != nil {
		t.Fatal(err)
	}
	placePorts(bad)
	Legalize(bad)
	if good.TotalHPWL() >= bad.TotalHPWL() {
		t.Fatalf("structured placement HPWL %g should beat scattered %g", good.TotalHPWL(), bad.TotalHPWL())
	}
}

func TestRefineHPWLImprovesOrKeepsWirelength(t *testing.T) {
	_, p := placedSmall(t, 0.85)
	before := p.TotalHPWL()
	swaps := RefineHPWL(p, 2)
	after := p.TotalHPWL()
	if after > before+1e-6 {
		t.Fatalf("refinement made wirelength worse: %g -> %g", before, after)
	}
	if swaps > 0 && after >= before {
		t.Fatalf("swaps accepted (%d) but wirelength did not improve", swaps)
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("refined placement not legal: %v", errs[0])
	}
}

func TestLegalizeFixesOverlapsAndOffGrid(t *testing.T) {
	d, p := placedSmall(t, 0.85)
	// Deliberately break the placement: pile several cells on one spot,
	// off-grid and off-row.
	broken := 0
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		l, ok := p.Loc(inst)
		if !ok {
			continue
		}
		if broken < 40 {
			l.X = p.FP.Core.Xlo + 1.234
			l.Y = p.FP.Core.Ylo + 2.5*p.FP.RowHeight
			p.SetLoc(inst, l)
			broken++
		}
	}
	if errs := p.Validate(); len(errs) == 0 {
		t.Fatal("test setup: placement should be broken before legalization")
	}
	Legalize(p)
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("legalizer left %d violations, e.g. %v", len(errs), errs[0])
	}
}

func TestInsertFillersFillsWhitespace(t *testing.T) {
	_, p := placedSmall(t, 0.75)
	area := InsertFillers(p)
	if area <= 0 {
		t.Fatal("filler insertion should add area at 75% utilization")
	}
	if math.Abs(area-p.FillerArea()) > 1e-9 {
		t.Fatalf("returned area %g != FillerArea %g", area, p.FillerArea())
	}
	// Fillers plus cells should cover nearly the whole core; the uncovered
	// remainder must be smaller than the smallest filler per gap, so in
	// total well below 2% of the core.
	covered := p.PlacedArea() + p.FillerArea()
	if covered < 0.98*p.FP.CoreArea() {
		t.Fatalf("cells+fillers cover only %g of core %g", covered, p.FP.CoreArea())
	}
	// Fillers must not overlap standard cells: spot-check via density grid
	// built from both (total must not exceed core area by more than epsilon).
	if covered > p.FP.CoreArea()*1.0001 {
		t.Fatalf("cells+fillers exceed core area: %g > %g", covered, p.FP.CoreArea())
	}
	// Fillers must lie inside the core and on their rows.
	for _, f := range p.Fillers {
		r := f.Rect(p.FP.RowHeight)
		if r.Xlo < p.FP.Core.Xlo-1e-9 || r.Xhi > p.FP.Core.Xhi+1e-9 {
			t.Fatalf("filler outside core: %v", r)
		}
		if math.Abs(f.Y-p.FP.Rows[f.Row].Y) > 1e-9 {
			t.Fatalf("filler not aligned to its row: %+v", f)
		}
	}
}

func TestWhitespacePerRow(t *testing.T) {
	_, p := placedSmall(t, 0.80)
	ws := p.WhitespacePerRow()
	if len(ws) != p.FP.NumRows() {
		t.Fatalf("whitespace rows = %d, want %d", len(ws), p.FP.NumRows())
	}
	total := 0.0
	for _, w := range ws {
		if w < -1e-6 {
			t.Fatalf("negative whitespace %g", w)
		}
		total += w
	}
	wantTotal := (p.FP.CoreArea() - p.PlacedArea()) / p.FP.RowHeight
	if math.Abs(total-wantTotal) > 1e-6*wantTotal {
		t.Fatalf("total whitespace %g != expected %g", total, wantTotal)
	}
}

func TestCloneIndependence(t *testing.T) {
	d, p := placedSmall(t, 0.85)
	c := p.Clone()
	inst := d.Instances()[0]
	orig, _ := p.Loc(inst)
	moved := orig
	moved.X += 10
	c.SetLoc(inst, moved)
	if got, _ := p.Loc(inst); got != orig {
		t.Fatal("modifying the clone must not affect the original")
	}
	c.FP.Core.Xhi += 100
	if p.FP.Core.Xhi == c.FP.Core.Xhi {
		t.Fatal("clone must deep-copy the floorplan")
	}
}

func TestInstancesInRect(t *testing.T) {
	_, p := placedSmall(t, 0.85)
	all := p.InstancesInRect(p.FP.Core.Expand(1))
	if len(all) == 0 {
		t.Fatal("core rect should contain all cells")
	}
	none := p.InstancesInRect(geom.Rect{Xlo: -100, Ylo: -100, Xhi: -50, Yhi: -50})
	if len(none) != 0 {
		t.Fatal("far-away rect should contain no cells")
	}
	// Half-core query returns fewer cells than the full core.
	half := p.InstancesInRect(geom.Rect{
		Xlo: p.FP.Core.Xlo, Ylo: p.FP.Core.Ylo,
		Xhi: p.FP.Core.Center().X, Yhi: p.FP.Core.Yhi,
	})
	if len(half) == 0 || len(half) >= len(all) {
		t.Fatalf("half-core query returned %d of %d cells", len(half), len(all))
	}
}

func TestValidateDetectsOverflowAndUnplaced(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d, fp)
	errs := p.Validate()
	if len(errs) == 0 {
		t.Fatal("unplaced design must fail validation")
	}
}

func TestPlaceRejectsOverfullRegion(t *testing.T) {
	// A floorplan at 100% utilization with a tiny aspect trick cannot fail,
	// so force failure by shrinking a region rect manually.
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range fp.Regions {
		reg.Rect = geom.Rect{Xlo: reg.Rect.Xlo, Ylo: reg.Rect.Ylo, Xhi: reg.Rect.Xlo + 3, Yhi: reg.Rect.Ylo + 3}
	}
	if _, err := Place(d, fp); err == nil {
		t.Fatal("placement into absurdly small regions must fail")
	}
}
