// Package place provides a row-based standard-cell placement engine: a
// placement data model (cell locations, fillers, wirelength and density
// queries), a region-constrained global placer, a Tetris-style legalizer and
// a filler-insertion pass. Together they stand in for the commercial
// floorplanning/placement tool (Synopsys IC Compiler) used by the paper.
package place

import (
	"fmt"
	"math"
	"sort"

	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

// Loc is the placed location of a cell instance: the lower-left corner of
// its bounding box and the row index it sits in.
type Loc struct {
	X, Y float64
	Row  int
}

// Filler is one dummy cell inserted into leftover row whitespace. Fillers
// are tracked in the placement rather than the netlist because they carry no
// electrical function; they exist to keep rail continuity and to make the
// whitespace accounting explicit, as in the paper.
type Filler struct {
	Master *celllib.Master
	X, Y   float64
	Row    int
}

// Rect returns the physical rectangle of the filler cell.
func (f Filler) Rect(rowHeight float64) geom.Rect {
	return geom.Rect{Xlo: f.X, Ylo: f.Y, Xhi: f.X + f.Master.Width, Yhi: f.Y + rowHeight}
}

// Placement binds a design to cell locations within a floorplan.
type Placement struct {
	Design *netlist.Design
	FP     *floorplan.Floorplan

	locs     map[*netlist.Instance]Loc
	portLocs map[*netlist.Port]geom.Point
	// Fillers are the dummy cells occupying whitespace.
	Fillers []Filler
}

// NewPlacement creates an empty placement for the design and floorplan.
func NewPlacement(d *netlist.Design, fp *floorplan.Floorplan) *Placement {
	return &Placement{
		Design:   d,
		FP:       fp,
		locs:     make(map[*netlist.Instance]Loc, d.NumInstances()),
		portLocs: make(map[*netlist.Port]geom.Point, len(d.Ports())),
	}
}

// SetLoc places (or re-places) the instance at loc.
func (p *Placement) SetLoc(inst *netlist.Instance, loc Loc) { p.locs[inst] = loc }

// Loc returns the location of the instance and whether it has been placed.
func (p *Placement) Loc(inst *netlist.Instance) (Loc, bool) {
	l, ok := p.locs[inst]
	return l, ok
}

// SetPortLoc records the physical position of a top-level port (pad).
func (p *Placement) SetPortLoc(port *netlist.Port, pt geom.Point) { p.portLocs[port] = pt }

// PortLoc returns the position of a port and whether it is known.
func (p *Placement) PortLoc(port *netlist.Port) (geom.Point, bool) {
	pt, ok := p.portLocs[port]
	return pt, ok
}

// CellRect returns the physical rectangle of a placed instance.
func (p *Placement) CellRect(inst *netlist.Instance) (geom.Rect, bool) {
	l, ok := p.locs[inst]
	if !ok {
		return geom.Rect{}, false
	}
	return geom.Rect{
		Xlo: l.X, Ylo: l.Y,
		Xhi: l.X + inst.Master.Width, Yhi: l.Y + p.FP.RowHeight,
	}, true
}

// Center returns the centre of a placed instance (zero point when unplaced).
func (p *Placement) Center(inst *netlist.Instance) geom.Point {
	r, ok := p.CellRect(inst)
	if !ok {
		return geom.Point{}
	}
	return r.Center()
}

// Clone returns a deep copy of the placement, including a cloned floorplan
// so that post-placement transforms never alias the original.
func (p *Placement) Clone() *Placement {
	out := &Placement{
		Design:   p.Design,
		FP:       p.FP.Clone(),
		locs:     make(map[*netlist.Instance]Loc, len(p.locs)),
		portLocs: make(map[*netlist.Port]geom.Point, len(p.portLocs)),
		Fillers:  append([]Filler(nil), p.Fillers...),
	}
	for k, v := range p.locs {
		out.locs[k] = v
	}
	for k, v := range p.portLocs {
		out.portLocs[k] = v
	}
	return out
}

// pinPoint returns the physical point of a net pin reference: the centre of
// the owning cell, or the port pad location.
func (p *Placement) pinPoint(ref netlist.PinRef) (geom.Point, bool) {
	if ref.IsPort() {
		pt, ok := p.portLocs[ref.Port]
		return pt, ok
	}
	if ref.Inst == nil {
		return geom.Point{}, false
	}
	r, ok := p.CellRect(ref.Inst)
	if !ok {
		return geom.Point{}, false
	}
	return r.Center(), true
}

// NetBBox returns the bounding box of all placed pins of the net. The box
// is accumulated point by point (no intermediate slice): this runs once per
// net per power estimate, which makes it one of the hottest loops of an
// analysis.
func (p *Placement) NetBBox(n *netlist.Net) geom.Rect {
	var box geom.Rect
	found := false
	include := func(pt geom.Point) {
		if !found {
			// A one-point box is degenerate (Empty() is true), so track
			// initialization explicitly rather than via emptiness.
			box = geom.Rect{Xlo: pt.X, Ylo: pt.Y, Xhi: pt.X, Yhi: pt.Y}
			found = true
			return
		}
		if pt.X < box.Xlo {
			box.Xlo = pt.X
		}
		if pt.Y < box.Ylo {
			box.Ylo = pt.Y
		}
		if pt.X > box.Xhi {
			box.Xhi = pt.X
		}
		if pt.Y > box.Yhi {
			box.Yhi = pt.Y
		}
	}
	if pt, ok := p.pinPoint(n.Driver); ok {
		include(pt)
	}
	for _, l := range n.Loads {
		if pt, ok := p.pinPoint(l); ok {
			include(pt)
		}
	}
	return box
}

// HPWL returns the half-perimeter wirelength of the net in um.
func (p *Placement) HPWL(n *netlist.Net) float64 { return p.NetBBox(n).HalfPerimeter() }

// TotalHPWL returns the summed half-perimeter wirelength of all nets.
func (p *Placement) TotalHPWL() float64 {
	total := 0.0
	for _, n := range p.Design.Nets() {
		total += p.HPWL(n)
	}
	return total
}

// CellDensityGrid returns an nx-by-ny grid over the core where each cell
// holds the standard-cell area (um^2) placed inside it, fillers excluded.
// Dividing by geom.Grid.CellArea gives the local utilization.
func (p *Placement) CellDensityGrid(nx, ny int) *geom.Grid {
	g := geom.NewGrid(nx, ny, p.FP.Core)
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		if r, ok := p.CellRect(inst); ok {
			g.SpreadRect(r, r.Area())
		}
	}
	return g
}

// UtilizationGrid returns the local utilization (0..1+) per grid cell.
func (p *Placement) UtilizationGrid(nx, ny int) *geom.Grid {
	g := p.CellDensityGrid(nx, ny)
	return g.Scale(1 / g.CellArea())
}

// PlacedArea returns the total placed non-filler cell area in um^2.
func (p *Placement) PlacedArea() float64 {
	total := 0.0
	for inst := range p.locs {
		if !inst.IsFiller() {
			total += inst.Master.Area(p.FP.RowHeight)
		}
	}
	return total
}

// Utilization returns placed cell area divided by core area, the paper's
// utilization-factor definition.
func (p *Placement) Utilization() float64 { return p.PlacedArea() / p.FP.CoreArea() }

// InstancesInRect returns the placed non-filler instances whose centres lie
// inside r.
func (p *Placement) InstancesInRect(r geom.Rect) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		if _, ok := p.locs[inst]; !ok {
			continue
		}
		if r.Contains(p.Center(inst)) {
			out = append(out, inst)
		}
	}
	return out
}

// rowOccupants returns placed instances in the given row sorted by x.
func (p *Placement) rowOccupants(row int) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range p.Design.Instances() {
		if l, ok := p.locs[inst]; ok && l.Row == row {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := p.locs[out[i]], p.locs[out[j]]
		if li.X != lj.X {
			return li.X < lj.X
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Validate checks the placement for physical legality: every non-filler
// instance placed, inside the core, aligned to rows and sites, and with no
// overlaps within a row. It returns all violations found (possibly empty).
func (p *Placement) Validate() []error {
	var errs []error
	fp := p.FP
	eps := 1e-6
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		l, ok := p.locs[inst]
		if !ok {
			errs = append(errs, fmt.Errorf("place: instance %q not placed", inst.Name))
			continue
		}
		r, _ := p.CellRect(inst)
		if r.Xlo < fp.Core.Xlo-eps || r.Xhi > fp.Core.Xhi+eps || r.Ylo < fp.Core.Ylo-eps || r.Yhi > fp.Core.Yhi+eps {
			errs = append(errs, fmt.Errorf("place: instance %q outside core: %v", inst.Name, r))
		}
		if l.Row < 0 || l.Row >= fp.NumRows() {
			errs = append(errs, fmt.Errorf("place: instance %q in invalid row %d", inst.Name, l.Row))
			continue
		}
		if rowY := fp.Rows[l.Row].Y; math.Abs(l.Y-rowY) > eps {
			errs = append(errs, fmt.Errorf("place: instance %q y=%g not aligned to row %d (y=%g)", inst.Name, l.Y, l.Row, rowY))
		}
		if site := fp.SiteWidth; math.Abs(math.Mod(l.X-fp.Core.Xlo, site)) > eps && math.Abs(math.Mod(l.X-fp.Core.Xlo, site)-site) > eps {
			errs = append(errs, fmt.Errorf("place: instance %q x=%g not aligned to site grid", inst.Name, l.X))
		}
	}
	// Overlap check per row.
	for row := 0; row < fp.NumRows(); row++ {
		occ := p.rowOccupants(row)
		for i := 1; i < len(occ); i++ {
			prev, cur := p.locs[occ[i-1]], p.locs[occ[i]]
			prevEnd := prev.X + occ[i-1].Master.Width
			if cur.X < prevEnd-eps {
				errs = append(errs, fmt.Errorf("place: overlap in row %d between %q and %q", row, occ[i-1].Name, occ[i].Name))
			}
		}
	}
	return errs
}

// WhitespacePerRow returns, for every row, the total unoccupied width in um
// (fillers are not counted as occupancy).
func (p *Placement) WhitespacePerRow() []float64 {
	out := make([]float64, p.FP.NumRows())
	for row := range out {
		used := 0.0
		for _, inst := range p.rowOccupants(row) {
			used += inst.Master.Width
		}
		out[row] = p.FP.Rows[row].Width() - used
	}
	return out
}
