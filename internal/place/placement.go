// Package place provides a row-based standard-cell placement engine: a
// placement data model (cell locations, fillers, wirelength and density
// queries), a region-constrained global placer, a Tetris-style legalizer and
// a filler-insertion pass. Together they stand in for the commercial
// floorplanning/placement tool (Synopsys IC Compiler) used by the paper.
package place

import (
	"fmt"
	"math"
	"sort"

	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

// Loc is the placed location of a cell instance: the lower-left corner of
// its bounding box and the row index it sits in.
type Loc struct {
	X, Y float64
	Row  int
}

// Filler is one dummy cell inserted into leftover row whitespace. Fillers
// are tracked in the placement rather than the netlist because they carry no
// electrical function; they exist to keep rail continuity and to make the
// whitespace accounting explicit, as in the paper.
type Filler struct {
	Master *celllib.Master
	X, Y   float64
	Row    int
}

// Rect returns the physical rectangle of the filler cell.
func (f Filler) Rect(rowHeight float64) geom.Rect {
	return geom.Rect{Xlo: f.X, Ylo: f.Y, Xhi: f.X + f.Master.Width, Yhi: f.Y + rowHeight}
}

// Placement binds a design to cell locations within a floorplan.
//
// Internally every per-instance, per-net and per-port attribute is stored in
// a dense slice keyed by the netlist ordinals (Instance.Ord, Net.Ord,
// Port.Ord) rather than in maps, and per-row occupancy lists are maintained
// incrementally by SetLoc, so row queries (rowOccupants, Validate,
// InsertFillers, WhitespacePerRow) cost O(row size) instead of a scan over
// all instances. Net bounding boxes are cached and invalidated per SetLoc.
//
// The placement assumes the design's structure (instances, nets, pin
// connections) is frozen once the placement exists: connecting new pins to
// an already-cached net afterwards would not invalidate its cached bounding
// box. All construction paths in this repository build the netlist fully
// before placing it.
type Placement struct {
	Design *netlist.Design
	FP     *floorplan.Floorplan

	insts []*netlist.Instance // Design.Instances(), indexed by ordinal
	nets  []*netlist.Net      // Design.Nets(), indexed by ordinal

	locs   []Loc  // by instance ordinal
	placed []bool // by instance ordinal

	portLocs  []geom.Point // by port ordinal
	portKnown []bool       // by port ordinal

	// rowOcc[row] lists the ordinals of the instances placed in that row,
	// kept sorted by (X, Name); rowPos[ord] is the instance's index within
	// its row list (-1 when unplaced or in a negative row). strays collects
	// placed instances with a negative row index, which cannot be bucketed.
	rowOcc [][]int32
	rowPos []int32
	strays []int32

	// misaligned[ord] marks a placed instance whose Y deviates from its
	// row's Y by more than half a row height (or whose row index is outside
	// the floorplan). While misalignedCount is zero, geometric queries may
	// prune by row index; otherwise they fall back to a full scan so the
	// row buckets never change observable results.
	misaligned      []bool
	misalignedCount int

	// netBox caches per-net pin bounding boxes; SetLoc and SetPortLoc
	// invalidate the nets touching the moved cell or port.
	netBox      []geom.Rect
	netBoxValid []bool

	// instNets[ord] lists the distinct net ordinals touching the instance,
	// in master pin order. It is derived from the (frozen) netlist once and
	// shared between clones.
	instNets [][]int32

	// unitOrder caches the per-unit connectivity-ordered cell lists the
	// global placer computed, so derived placements (Reflow) can re-spread
	// the design into a resized floorplan without re-running the BFS
	// ordering. It depends only on the frozen netlist and is shared between
	// clones; nil on placements not built by the global placer.
	unitOrder []unitGroup

	// rec, when non-nil, accumulates SetLoc moves into a Delta (see
	// BeginDelta/EndDelta). It is never shared: Clone drops it.
	rec *deltaRecorder

	// Fillers are the dummy cells occupying whitespace.
	Fillers []Filler
}

// NewPlacement creates an empty placement for the design and floorplan.
func NewPlacement(d *netlist.Design, fp *floorplan.Floorplan) *Placement {
	p := &Placement{
		Design:      d,
		FP:          fp,
		insts:       d.Instances(),
		nets:        d.Nets(),
		locs:        make([]Loc, d.NumInstances()),
		placed:      make([]bool, d.NumInstances()),
		portLocs:    make([]geom.Point, len(d.Ports())),
		portKnown:   make([]bool, len(d.Ports())),
		rowOcc:      make([][]int32, fp.NumRows()),
		rowPos:      make([]int32, d.NumInstances()),
		misaligned:  make([]bool, d.NumInstances()),
		netBox:      make([]geom.Rect, d.NumNets()),
		netBoxValid: make([]bool, d.NumNets()),
	}
	for i := range p.rowPos {
		p.rowPos[i] = -1
	}
	p.instNets = buildInstNets(d)
	return p
}

// buildInstNets collects, for every instance, the distinct ordinals of the
// nets on its pins, iterating in master pin order so the result (and every
// computation that walks it) is deterministic. All per-instance lists are
// sub-slices of one backing array: the pin count bounds the total size, so
// the backing never reallocates and the whole index costs two allocations.
func buildInstNets(d *netlist.Design) [][]int32 {
	insts := d.Instances()
	out := make([][]int32, len(insts))
	total := 0
	for _, inst := range insts {
		total += len(inst.Master.Pins)
	}
	backing := make([]int32, 0, total)
	for i, inst := range insts {
		start := len(backing)
		for _, pin := range inst.Master.Pins {
			n := inst.Conn(pin.Name)
			if n == nil {
				continue
			}
			ord := int32(n.Ord())
			dup := false
			for _, seen := range backing[start:] {
				if seen == ord {
					dup = true
					break
				}
			}
			if !dup {
				backing = append(backing, ord)
			}
		}
		out[i] = backing[start:len(backing):len(backing)]
	}
	return out
}

// ensureInst grows the per-instance slices when the design gained instances
// after the placement was created (which no current construction path does,
// but an index panic would be a far worse failure mode than a rebuild).
func (p *Placement) ensureInst(ord int) {
	if ord < len(p.locs) {
		return
	}
	p.insts = p.Design.Instances()
	p.nets = p.Design.Nets()
	n := p.Design.NumInstances()
	if ord >= n {
		n = ord + 1
	}
	grown := make([]Loc, n)
	copy(grown, p.locs)
	p.locs = grown
	p.placed = append(p.placed, make([]bool, n-len(p.placed))...)
	p.misaligned = append(p.misaligned, make([]bool, n-len(p.misaligned))...)
	pos := make([]int32, n)
	copy(pos, p.rowPos)
	for i := len(p.rowPos); i < n; i++ {
		pos[i] = -1
	}
	p.rowPos = pos
	p.instNets = buildInstNets(p.Design)
}

// rowAligned reports whether the location's Y sits within half a row height
// of its row's Y coordinate, the invariant the row-pruned geometric queries
// rely on.
func (p *Placement) rowAligned(l Loc) bool {
	if l.Row < 0 || l.Row >= len(p.FP.Rows) {
		return false
	}
	return math.Abs(l.Y-p.FP.Rows[l.Row].Y) <= p.FP.RowHeight/2
}

// SetLoc places (or re-places) the instance at loc, maintaining the per-row
// occupancy lists and invalidating the cached bounding boxes of the nets
// touching the instance.
func (p *Placement) SetLoc(inst *netlist.Instance, loc Loc) {
	ord := inst.Ord()
	p.ensureInst(ord)
	if p.rec != nil {
		if !p.placed[ord] {
			p.record(ord, false, 0)
		} else if p.locs[ord] != loc {
			p.record(ord, true, p.locs[ord].Row)
		}
	}
	if p.placed[ord] {
		if p.locs[ord] == loc {
			return
		}
		p.removeFromRow(ord)
		if p.misaligned[ord] {
			p.misaligned[ord] = false
			p.misalignedCount--
		}
	}
	p.locs[ord] = loc
	p.placed[ord] = true
	if loc.Row >= 0 {
		p.insertIntoRow(ord, inst, loc)
	} else {
		p.rowPos[ord] = -1
		p.strays = append(p.strays, int32(ord))
	}
	if !p.rowAligned(loc) {
		p.misaligned[ord] = true
		p.misalignedCount++
	}
	for _, netOrd := range p.instNets[ord] {
		if int(netOrd) < len(p.netBoxValid) {
			p.netBoxValid[netOrd] = false
		}
	}
}

// removeFromRow detaches a placed instance from its occupancy bucket (or
// from the stray list when its row was negative).
func (p *Placement) removeFromRow(ord int) {
	pos := p.rowPos[ord]
	if pos < 0 {
		for i, s := range p.strays {
			if s == int32(ord) {
				p.strays = append(p.strays[:i], p.strays[i+1:]...)
				break
			}
		}
		return
	}
	row := p.locs[ord].Row
	bucket := p.rowOcc[row]
	copy(bucket[pos:], bucket[pos+1:])
	bucket = bucket[:len(bucket)-1]
	p.rowOcc[row] = bucket
	for i := int(pos); i < len(bucket); i++ {
		p.rowPos[bucket[i]] = int32(i)
	}
	p.rowPos[ord] = -1
}

// insertIntoRow inserts the instance into its row bucket, keeping the bucket
// sorted by (X, Name). loc must already be stored in p.locs[ord].
func (p *Placement) insertIntoRow(ord int, inst *netlist.Instance, loc Loc) {
	for loc.Row >= len(p.rowOcc) {
		p.rowOcc = append(p.rowOcc, nil)
	}
	bucket := p.rowOcc[loc.Row]
	idx := sort.Search(len(bucket), func(i int) bool {
		o := bucket[i]
		if l := p.locs[o]; l.X != loc.X {
			return l.X > loc.X
		}
		return p.insts[o].Name > inst.Name
	})
	bucket = append(bucket, 0)
	copy(bucket[idx+1:], bucket[idx:])
	bucket[idx] = int32(ord)
	p.rowOcc[loc.Row] = bucket
	for i := idx; i < len(bucket); i++ {
		p.rowPos[bucket[i]] = int32(i)
	}
}

// Loc returns the location of the instance and whether it has been placed.
func (p *Placement) Loc(inst *netlist.Instance) (Loc, bool) {
	ord := inst.Ord()
	if ord >= len(p.locs) || !p.placed[ord] {
		return Loc{}, false
	}
	return p.locs[ord], true
}

// SetPortLoc records the physical position of a top-level port (pad).
func (p *Placement) SetPortLoc(port *netlist.Port, pt geom.Point) {
	ord := port.Ord()
	for ord >= len(p.portLocs) {
		p.portLocs = append(p.portLocs, geom.Point{})
		p.portKnown = append(p.portKnown, false)
	}
	p.portLocs[ord] = pt
	p.portKnown[ord] = true
	if n := port.Net; n != nil && n.Ord() < len(p.netBoxValid) {
		p.netBoxValid[n.Ord()] = false
	}
}

// PortLoc returns the position of a port and whether it is known.
func (p *Placement) PortLoc(port *netlist.Port) (geom.Point, bool) {
	ord := port.Ord()
	if ord >= len(p.portLocs) || !p.portKnown[ord] {
		return geom.Point{}, false
	}
	return p.portLocs[ord], true
}

// CellRect returns the physical rectangle of a placed instance.
func (p *Placement) CellRect(inst *netlist.Instance) (geom.Rect, bool) {
	l, ok := p.Loc(inst)
	if !ok {
		return geom.Rect{}, false
	}
	return geom.Rect{
		Xlo: l.X, Ylo: l.Y,
		Xhi: l.X + inst.Master.Width, Yhi: l.Y + p.FP.RowHeight,
	}, true
}

// Center returns the centre of a placed instance (zero point when unplaced).
func (p *Placement) Center(inst *netlist.Instance) geom.Point {
	r, ok := p.CellRect(inst)
	if !ok {
		return geom.Point{}
	}
	return r.Center()
}

// Clone returns a deep copy of the placement, including a cloned floorplan
// so that post-placement transforms never alias the original. The derived
// per-instance net lists are shared: they depend only on the (immutable)
// design.
func (p *Placement) Clone() *Placement {
	out := &Placement{
		Design:          p.Design,
		FP:              p.FP.Clone(),
		insts:           p.insts,
		nets:            p.nets,
		locs:            append([]Loc(nil), p.locs...),
		placed:          append([]bool(nil), p.placed...),
		portLocs:        append([]geom.Point(nil), p.portLocs...),
		portKnown:       append([]bool(nil), p.portKnown...),
		rowOcc:          make([][]int32, len(p.rowOcc)),
		rowPos:          append([]int32(nil), p.rowPos...),
		strays:          append([]int32(nil), p.strays...),
		misaligned:      append([]bool(nil), p.misaligned...),
		misalignedCount: p.misalignedCount,
		netBox:          append([]geom.Rect(nil), p.netBox...),
		netBoxValid:     append([]bool(nil), p.netBoxValid...),
		instNets:        p.instNets,
		unitOrder:       p.unitOrder,
		Fillers:         append([]Filler(nil), p.Fillers...),
	}
	for i, bucket := range p.rowOcc {
		out.rowOcc[i] = append([]int32(nil), bucket...)
	}
	return out
}

// pinPoint returns the physical point of a net pin reference: the centre of
// the owning cell, or the port pad location.
func (p *Placement) pinPoint(ref netlist.PinRef) (geom.Point, bool) {
	if ref.IsPort() {
		return p.PortLoc(ref.Port)
	}
	if ref.Inst == nil {
		return geom.Point{}, false
	}
	r, ok := p.CellRect(ref.Inst)
	if !ok {
		return geom.Point{}, false
	}
	return r.Center(), true
}

// NetBBox returns the bounding box of all placed pins of the net. The box is
// cached per net and invalidated by SetLoc/SetPortLoc for the nets touching
// the moved cell, so repeated wirelength and power queries on an unchanged
// placement cost a slice load instead of a pin scan.
func (p *Placement) NetBBox(n *netlist.Net) geom.Rect {
	ord := n.Ord()
	if ord < len(p.netBoxValid) && p.netBoxValid[ord] {
		return p.netBox[ord]
	}
	box := p.computeNetBBox(n)
	for ord >= len(p.netBox) {
		p.netBox = append(p.netBox, geom.Rect{})
		p.netBoxValid = append(p.netBoxValid, false)
	}
	p.netBox[ord] = box
	p.netBoxValid[ord] = true
	return box
}

// computeNetBBox accumulates the net's pin bounding box point by point (no
// intermediate slice), in the fixed order driver-then-loads so the result is
// bit-identical across recomputations.
func (p *Placement) computeNetBBox(n *netlist.Net) geom.Rect {
	var box geom.Rect
	found := false
	include := func(pt geom.Point) {
		if !found {
			// A one-point box is degenerate (Empty() is true), so track
			// initialization explicitly rather than via emptiness.
			box = geom.Rect{Xlo: pt.X, Ylo: pt.Y, Xhi: pt.X, Yhi: pt.Y}
			found = true
			return
		}
		if pt.X < box.Xlo {
			box.Xlo = pt.X
		}
		if pt.Y < box.Ylo {
			box.Ylo = pt.Y
		}
		if pt.X > box.Xhi {
			box.Xhi = pt.X
		}
		if pt.Y > box.Yhi {
			box.Yhi = pt.Y
		}
	}
	if pt, ok := p.pinPoint(n.Driver); ok {
		include(pt)
	}
	for _, l := range n.Loads {
		if pt, ok := p.pinPoint(l); ok {
			include(pt)
		}
	}
	return box
}

// HPWL returns the half-perimeter wirelength of the net in um.
func (p *Placement) HPWL(n *netlist.Net) float64 { return p.NetBBox(n).HalfPerimeter() }

// TotalHPWL returns the summed half-perimeter wirelength of all nets.
func (p *Placement) TotalHPWL() float64 {
	total := 0.0
	for _, n := range p.Design.Nets() {
		total += p.HPWL(n)
	}
	return total
}

// CellDensityGrid returns an nx-by-ny grid over the core where each cell
// holds the standard-cell area (um^2) placed inside it, fillers excluded.
// Dividing by geom.Grid.CellArea gives the local utilization.
func (p *Placement) CellDensityGrid(nx, ny int) *geom.Grid {
	g := geom.NewGrid(nx, ny, p.FP.Core)
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		if r, ok := p.CellRect(inst); ok {
			g.SpreadRect(r, r.Area())
		}
	}
	return g
}

// UtilizationGrid returns the local utilization (0..1+) per grid cell.
func (p *Placement) UtilizationGrid(nx, ny int) *geom.Grid {
	g := p.CellDensityGrid(nx, ny)
	return g.Scale(1 / g.CellArea())
}

// PlacedArea returns the total placed non-filler cell area in um^2.
func (p *Placement) PlacedArea() float64 {
	total := 0.0
	for ord, inst := range p.insts {
		if p.placed[ord] && !inst.IsFiller() {
			total += inst.Master.Area(p.FP.RowHeight)
		}
	}
	return total
}

// Utilization returns placed cell area divided by core area, the paper's
// utilization-factor definition.
func (p *Placement) Utilization() float64 { return p.PlacedArea() / p.FP.CoreArea() }

// InstancesInRect returns the placed non-filler instances whose centres lie
// inside r, in design creation order.
func (p *Placement) InstancesInRect(r geom.Rect) []*netlist.Instance {
	if p.misalignedCount > 0 {
		return p.instancesInRectScan(r)
	}
	// Every placed cell sits on its row (centre Y = row Y + rowHeight/2), so
	// only rows whose centre line can fall inside r need scanning. The range
	// is padded by one row to absorb the sub-half-row Y tolerance rowAligned
	// allows; the exact per-cell containment check below decides membership.
	fp := p.FP
	rh := fp.RowHeight
	lo := int(math.Floor((r.Ylo-fp.Core.Ylo-rh/2)/rh)) - 1
	hi := int(math.Ceil((r.Yhi-fp.Core.Ylo-rh/2)/rh)) + 1
	if lo < 0 {
		lo = 0
	}
	if hi >= len(p.rowOcc) {
		hi = len(p.rowOcc) - 1
	}
	var ords []int32
	for row := lo; row <= hi; row++ {
		for _, ord := range p.rowOcc[row] {
			inst := p.insts[ord]
			if inst.IsFiller() {
				continue
			}
			if r.Contains(p.Center(inst)) {
				ords = append(ords, ord)
			}
		}
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	out := make([]*netlist.Instance, len(ords))
	for i, ord := range ords {
		out[i] = p.insts[ord]
	}
	return out
}

// instancesInRectScan is the exact fallback used while any placed cell's Y
// is inconsistent with its row index.
func (p *Placement) instancesInRectScan(r geom.Rect) []*netlist.Instance {
	var out []*netlist.Instance
	for ord, inst := range p.insts {
		if inst.IsFiller() || !p.placed[ord] {
			continue
		}
		if r.Contains(p.Center(inst)) {
			out = append(out, inst)
		}
	}
	return out
}

// rowOccupants returns placed instances in the given row sorted by x (name
// breaking ties). The returned slice is a copy: callers may reorder it while
// re-placing cells without corrupting the underlying occupancy index.
func (p *Placement) rowOccupants(row int) []*netlist.Instance {
	if row < 0 || row >= len(p.rowOcc) {
		return nil
	}
	bucket := p.rowOcc[row]
	if len(bucket) == 0 {
		return nil
	}
	out := make([]*netlist.Instance, len(bucket))
	for i, ord := range bucket {
		out[i] = p.insts[ord]
	}
	return out
}

// Validate checks the placement for physical legality: every non-filler
// instance placed, inside the core, aligned to rows and sites, and with no
// overlaps within a row. It returns all violations found (possibly empty).
func (p *Placement) Validate() []error {
	var errs []error
	fp := p.FP
	eps := 1e-6
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		l, ok := p.Loc(inst)
		if !ok {
			errs = append(errs, fmt.Errorf("place: instance %q not placed", inst.Name))
			continue
		}
		r, _ := p.CellRect(inst)
		if r.Xlo < fp.Core.Xlo-eps || r.Xhi > fp.Core.Xhi+eps || r.Ylo < fp.Core.Ylo-eps || r.Yhi > fp.Core.Yhi+eps {
			errs = append(errs, fmt.Errorf("place: instance %q outside core: %v", inst.Name, r))
		}
		if l.Row < 0 || l.Row >= fp.NumRows() {
			errs = append(errs, fmt.Errorf("place: instance %q in invalid row %d", inst.Name, l.Row))
			continue
		}
		if rowY := fp.Rows[l.Row].Y; math.Abs(l.Y-rowY) > eps {
			errs = append(errs, fmt.Errorf("place: instance %q y=%g not aligned to row %d (y=%g)", inst.Name, l.Y, l.Row, rowY))
		}
		if site := fp.SiteWidth; math.Abs(math.Mod(l.X-fp.Core.Xlo, site)) > eps && math.Abs(math.Mod(l.X-fp.Core.Xlo, site)-site) > eps {
			errs = append(errs, fmt.Errorf("place: instance %q x=%g not aligned to site grid", inst.Name, l.X))
		}
	}
	// Overlap check per row, straight off the sorted occupancy lists.
	for row := 0; row < fp.NumRows() && row < len(p.rowOcc); row++ {
		bucket := p.rowOcc[row]
		for i := 1; i < len(bucket); i++ {
			prev, cur := p.insts[bucket[i-1]], p.insts[bucket[i]]
			prevEnd := p.locs[bucket[i-1]].X + prev.Master.Width
			if p.locs[bucket[i]].X < prevEnd-eps {
				errs = append(errs, fmt.Errorf("place: overlap in row %d between %q and %q", row, prev.Name, cur.Name))
			}
		}
	}
	return errs
}

// WhitespacePerRow returns, for every row, the total unoccupied width in um
// (fillers are not counted as occupancy).
func (p *Placement) WhitespacePerRow() []float64 {
	out := make([]float64, p.FP.NumRows())
	for row := range out {
		used := 0.0
		if row < len(p.rowOcc) {
			for _, ord := range p.rowOcc[row] {
				used += p.insts[ord].Master.Width
			}
		}
		out[row] = p.FP.Rows[row].Width() - used
	}
	return out
}
