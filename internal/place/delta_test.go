package place

import (
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
)

// samePlacement requires bit-identical cell coordinates, floorplans and
// filler lists.
func samePlacement(t *testing.T, want, got *Placement, label string) {
	t.Helper()
	if want.FP.Core != got.FP.Core {
		t.Fatalf("%s: core differs: %v vs %v", label, got.FP.Core, want.FP.Core)
	}
	if wn, gn := want.FP.NumRows(), got.FP.NumRows(); wn != gn {
		t.Fatalf("%s: row count differs: %d vs %d", label, gn, wn)
	}
	for _, inst := range want.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		wl, wok := want.Loc(inst)
		gl, gok := got.Loc(inst)
		if wok != gok || wl != gl {
			t.Fatalf("%s: %s placed at %v/%v, want %v/%v", label, inst.Name, gl, gok, wl, wok)
		}
	}
	for _, port := range want.Design.Ports() {
		wp, wok := want.PortLoc(port)
		gp, gok := got.PortLoc(port)
		if wok != gok || wp != gp {
			t.Fatalf("%s: port %s at %v/%v, want %v/%v", label, port.Name, gp, gok, wp, wok)
		}
	}
	if len(want.Fillers) != len(got.Fillers) {
		t.Fatalf("%s: filler count differs: %d vs %d", label, len(got.Fillers), len(want.Fillers))
	}
	for i := range want.Fillers {
		if want.Fillers[i] != got.Fillers[i] {
			t.Fatalf("%s: filler %d differs: %+v vs %+v", label, i, got.Fillers[i], want.Fillers[i])
		}
	}
}

// TestReflowMatchesFromScratch drives Reflow both below the baseline
// utilization (the sweep's relaxation direction) and above it (compaction)
// and requires the derived placement to be bit-identical to a from-scratch
// placement at the same utilization — the contract the incremental sweep's
// Default points rely on.
func TestReflowMatchesFromScratch(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	const baseUtil = 0.85
	fp, err := floorplan.New(d, floorplan.Config{Utilization: baseUtil, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := PlaceWithoutFillers(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, util := range []float64{0.60, 0.75, baseUtil, 0.92} {
		derived, delta, err := base.Reflow(util)
		if err != nil {
			t.Fatalf("reflow to %.2f: %v", util, err)
		}
		if !delta.IsFull() {
			t.Fatalf("reflow to %.2f: want a full delta, got %+v", util, delta)
		}
		RefineHPWL(derived, 1)
		InsertFillers(derived)

		fp2, err := floorplan.New(d, floorplan.Config{Utilization: util, AspectRatio: 1})
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := PlaceWithoutFillers(d, fp2)
		if err != nil {
			t.Fatal(err)
		}
		RefineHPWL(scratch, 1)
		InsertFillers(scratch)

		samePlacement(t, scratch, derived, "reflow")
		if errs := derived.Validate(); len(errs) != 0 {
			t.Fatalf("reflowed placement at %.2f not legal: %v", util, errs[0])
		}
		if hs, hd := scratch.TotalHPWL(), derived.TotalHPWL(); hs != hd {
			t.Fatalf("HPWL differs at %.2f: %v vs %v", util, hd, hs)
		}
	}
}

// TestReflowOfReflowedPlacement checks a derived placement can itself be
// reflowed (the shared unit order survives the derivation).
func TestReflowOfReflowedPlacement(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.Config{Utilization: 0.85, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := PlaceWithoutFillers(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	mid, _, err := base.Reflow(0.75)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := mid.Reflow(0.66)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := floorplan.New(d, floorplan.Config{Utilization: 0.66, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := PlaceWithoutFillers(d, fp2)
	if err != nil {
		t.Fatal(err)
	}
	samePlacement(t, scratch, again, "reflow-of-reflow")
}

// TestDeltaRecordingSurgical verifies BeginDelta/EndDelta capture exactly
// the touched instances, their old and new rows, and the nets on their
// pins.
func TestDeltaRecordingSurgical(t *testing.T) {
	d, p := placedSmall(t, 0.85)
	insts := d.Instances()
	a, b := insts[3], insts[57]
	la, _ := p.Loc(a)
	lb, _ := p.Loc(b)

	q := p.Clone()
	q.BeginDelta()
	// Move a to b's row, leave b alone via a no-op SetLoc.
	q.SetLoc(a, Loc{X: la.X, Y: lb.Y, Row: lb.Row})
	q.SetLoc(b, lb) // no-op: must not be recorded
	delta := q.EndDelta()

	if delta.IsFull() || delta.Empty() {
		t.Fatalf("want a surgical delta, got full=%v empty=%v", delta.IsFull(), delta.Empty())
	}
	if len(delta.Moved()) != 1 || int(delta.Moved()[0]) != a.Ord() {
		t.Fatalf("moved = %v, want just ordinal %d", delta.Moved(), a.Ord())
	}
	wantRows := map[int32]bool{int32(la.Row): true, int32(lb.Row): true}
	if len(delta.DirtyRows()) != len(wantRows) {
		t.Fatalf("dirty rows %v, want old+new rows %d,%d", delta.DirtyRows(), la.Row, lb.Row)
	}
	for _, r := range delta.DirtyRows() {
		if !wantRows[r] {
			t.Fatalf("unexpected dirty row %d (want %d and %d)", r, la.Row, lb.Row)
		}
	}
	if len(delta.DirtyNets()) != len(q.instNets[a.Ord()]) {
		t.Fatalf("dirty nets %v, want the %d nets touching %s", delta.DirtyNets(), len(q.instNets[a.Ord()]), a.Name)
	}
}

// TestDeltaMerge exercises composition: sparse∪sparse unions the sets,
// anything merged with a full delta is full.
func TestDeltaMerge(t *testing.T) {
	d1 := &Delta{moved: []int32{1, 5}, dirtyRows: []int32{0}, dirtyNets: []int32{2, 9}}
	d2 := &Delta{moved: []int32{5, 7}, dirtyRows: []int32{3}, dirtyNets: []int32{9, 11}}
	m := d1.Merge(d2)
	wantInts := func(got []int32, want ...int32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %v want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v want %v", got, want)
			}
		}
	}
	wantInts(m.Moved(), 1, 5, 7)
	wantInts(m.DirtyRows(), 0, 3)
	wantInts(m.DirtyNets(), 2, 9, 11)
	if !d1.Merge(FullDelta()).IsFull() || !FullDelta().Merge(d2).IsFull() {
		t.Fatal("merge with a full delta must be full")
	}
	if got := (&Delta{}).Merge(&Delta{}); !got.Empty() {
		t.Fatalf("empty∪empty = %+v, want empty", got)
	}
}
