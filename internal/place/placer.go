package place

import (
	"fmt"
	"math"
	"sort"

	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

// Place produces a legal region-constrained placement of the design inside
// the floorplan:
//
//   - every logical unit is placed inside its floorplan region,
//   - within a region, cells are packed row by row in connectivity order so
//     that most nets stay within a row or between adjacent rows (the
//     property the paper relies on for the near-zero timing overhead of
//     empty-row insertion),
//   - the whitespace implied by the utilization factor is distributed
//     uniformly inside each region, mimicking a commercial placer's
//     density-balanced result,
//   - top-level ports are assigned pad positions around the core boundary.
//
// The result is legalized and filler cells are inserted into the remaining
// gaps, so the returned placement passes Validate.
func Place(d *netlist.Design, fp *floorplan.Floorplan) (*Placement, error) {
	p, err := PlaceWithoutFillers(d, fp)
	if err != nil {
		return nil, err
	}
	InsertFillers(p)
	return p, nil
}

// PlaceWithoutFillers runs the same global placement and legalization as
// Place but skips the filler-insertion pass. Callers that refine the
// placement afterwards (flow.PlaceAt with RefinePasses > 0) use it so the
// whitespace is filled exactly once, on the final cell positions.
func PlaceWithoutFillers(d *netlist.Design, fp *floorplan.Floorplan) (*Placement, error) {
	p := NewPlacement(d, fp)
	groups, err := orderedUnitGroups(d, fp)
	if err != nil {
		return nil, err
	}
	p.unitOrder = groups
	if err := spreadUnits(p, groups); err != nil {
		return nil, err
	}
	placePorts(p)
	Legalize(p)
	return p, nil
}

// unitGroup is one logical unit's cells in the connectivity order the global
// placer packs them. The grouping and the BFS order depend only on the
// frozen netlist (region shapes never enter), so a placement caches its
// groups and derived placements (Reflow) reuse them verbatim.
type unitGroup struct {
	unit  string
	cells []*netlist.Instance
}

// orderedUnitGroups groups the non-filler instances by unit — untagged cells
// join the unit whose region carries the largest cell area, mirroring the
// floorplanner's area fold — and orders every group by connectivity.
func orderedUnitGroups(d *netlist.Design, fp *floorplan.Floorplan) ([]unitGroup, error) {
	groups := make(map[string][]*netlist.Instance)
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		groups[inst.Unit] = append(groups[inst.Unit], inst)
	}
	if untagged, ok := groups[""]; ok && len(groups) > 1 {
		delete(groups, "")
		largest, largestArea := "", -1.0
		for unit := range groups {
			if reg := fp.RegionOf(unit); reg != nil && reg.CellArea > largestArea {
				largest, largestArea = unit, reg.CellArea
			}
		}
		if largest == "" {
			return nil, fmt.Errorf("place: cannot assign untagged cells: no unit regions")
		}
		groups[largest] = append(groups[largest], untagged...)
	}

	unitNames := make([]string, 0, len(groups))
	for u := range groups {
		unitNames = append(unitNames, u)
	}
	sort.Strings(unitNames)

	out := make([]unitGroup, 0, len(unitNames))
	for _, unit := range unitNames {
		out = append(out, unitGroup{unit: unit, cells: orderByConnectivity(d, groups[unit])})
	}
	return out, nil
}

// spreadUnits packs every unit group into its floorplan region.
func spreadUnits(p *Placement, groups []unitGroup) error {
	for _, g := range groups {
		region := p.FP.Core
		if reg := p.FP.RegionOf(g.unit); reg != nil {
			region = reg.Rect
		}
		if err := placeInRegion(p, g.cells, region); err != nil {
			return fmt.Errorf("place: unit %q: %w", g.unit, err)
		}
	}
	return nil
}

// SpreadIntoRegion re-places the given cells uniformly across the rows
// overlapping the region, distributing the region's whitespace evenly.
// Cell order is preserved (so locality established by an earlier placement
// survives). It is the building block the hotspot-wrapper transform uses to
// "evenly redistribute the hot cells" inside the wrapper, and it leaves the
// placement in a pre-legalization state: callers should run Legalize and
// InsertFillers afterwards.
func SpreadIntoRegion(p *Placement, cells []*netlist.Instance, region geom.Rect) error {
	return placeInRegion(p, cells, region)
}

// orderByConnectivity orders cells with a breadth-first traversal of the
// connectivity graph restricted to the given cell set, starting from the
// first cell in creation order. Cells unreachable from earlier seeds start
// new BFS waves, so the result is a locality-preserving linear order.
// Membership and visit state are tracked in ordinal-indexed bit slices: the
// traversal touches every pin of every cell, and pointer-keyed maps used to
// dominate the whole placement profile here.
func orderByConnectivity(d *netlist.Design, cells []*netlist.Instance) []*netlist.Instance {
	inSet := make([]bool, d.NumInstances())
	for _, c := range cells {
		inSet[c.Ord()] = true
	}
	visited := make([]bool, d.NumInstances())
	out := make([]*netlist.Instance, 0, len(cells))
	queue := make([]*netlist.Instance, 0, len(cells))

	visit := func(inst *netlist.Instance) {
		if inst == nil || inst.Ord() >= len(inSet) || !inSet[inst.Ord()] || visited[inst.Ord()] {
			return
		}
		visited[inst.Ord()] = true
		queue = append(queue, inst)
	}

	head := 0
	for _, seed := range cells {
		if visited[seed.Ord()] {
			continue
		}
		visit(seed)
		for ; head < len(queue); head++ {
			cur := queue[head]
			out = append(out, cur)
			// Neighbours: all instances sharing a net with cur, visited in
			// the master's pin order so the traversal is deterministic.
			for _, pin := range cur.Master.Pins {
				net := cur.Conn(pin.Name)
				if net == nil {
					continue
				}
				// Skip very high fanout nets (clock-like) to avoid
				// collapsing locality.
				if len(net.Loads) > 32 {
					continue
				}
				visit(net.Driver.Inst)
				for _, l := range net.Loads {
					visit(l.Inst)
				}
			}
		}
	}
	return out
}

// placeInRegion packs the ordered cells into the rows overlapping the
// region, spreading the region's whitespace uniformly between cells.
func placeInRegion(p *Placement, cells []*netlist.Instance, region geom.Rect) error {
	if len(cells) == 0 {
		return nil
	}
	fp := p.FP
	// Rows overlapping the region by at least minOverlap vertically.
	rowsFor := func(minOverlap float64) []floorplan.Row {
		var rows []floorplan.Row
		for _, r := range fp.Rows {
			rr := r.Rect(fp.RowHeight)
			overlap := rr.Intersect(region)
			if overlap.H() >= minOverlap {
				rows = append(rows, floorplan.Row{
					Index: r.Index,
					Y:     r.Y,
					X0:    max(r.X0, region.Xlo),
					X1:    min(r.X1, region.Xhi),
				})
			}
		}
		return rows
	}
	capacityOf := func(rows []floorplan.Row) float64 {
		capacity := 0.0
		for _, r := range rows {
			capacity += r.Width()
		}
		return capacity
	}
	totalWidth := 0.0
	for _, c := range cells {
		totalWidth += c.Master.Width
	}
	rows := rowsFor(fp.RowHeight / 2)
	capacity := capacityOf(rows)
	// Row quantization can starve small regions: a region only fractionally
	// taller than its integral row count loses the partial row to the
	// half-height filter, and with many small units that loss can exceed the
	// utilization slack. Grow the row set progressively — partial-overlap
	// rows first, then row segments widened beyond the region — rather than
	// failing; the legalizer pulls any stragglers back to legality.
	if totalWidth > capacity {
		if grown := rowsFor(1e-9 * fp.RowHeight); capacityOf(grown) > capacity {
			rows, capacity = grown, capacityOf(grown)
		}
	}
	if totalWidth > capacity && len(rows) > 0 {
		deficit := totalWidth - capacity
		grow := deficit/float64(len(rows))/2 + fp.SiteWidth
		for i := range rows {
			full := fp.Rows[rows[i].Index]
			rows[i].X0 = max(full.X0, rows[i].X0-grow)
			rows[i].X1 = min(full.X1, rows[i].X1+grow)
		}
		capacity = capacityOf(rows)
		if totalWidth > capacity {
			// Last resort: use the full width of every overlapping row. The
			// cells drift outside their unit region, but the placement stays
			// feasible and Legalize keeps it legal.
			for i := range rows {
				full := fp.Rows[rows[i].Index]
				rows[i].X0, rows[i].X1 = full.X0, full.X1
			}
			capacity = capacityOf(rows)
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("no rows overlap region %v", region)
	}
	if totalWidth > capacity {
		return fmt.Errorf("cells (%.1f um) exceed region row capacity (%.1f um)", totalWidth, capacity)
	}
	// Distribute cells to rows proportionally to row width so every row gets
	// the same local utilization, then spread within the row. Only cells
	// placed by this call are tracked here: other units' cells in shared
	// boundary rows are never disturbed.
	targetPerRow := make([]float64, len(rows))
	for i, r := range rows {
		targetPerRow[i] = totalWidth * r.Width() / capacity
	}
	placedInRow := make([][]*netlist.Instance, len(rows))
	widthInRow := make([]float64, len(rows))
	ci := 0
	for i, r := range rows {
		for ci < len(cells) {
			c := cells[ci]
			if widthInRow[i]+c.Master.Width > r.Width() {
				break
			}
			// Stop once the proportional target is met (except in the last
			// row, which absorbs whatever remains and fits).
			if i < len(rows)-1 && widthInRow[i] >= targetPerRow[i] {
				break
			}
			placedInRow[i] = append(placedInRow[i], c)
			widthInRow[i] += c.Master.Width
			ci++
		}
	}
	// Leftovers from rounding or capacity-limited rows: append to any region
	// row that still has space for them.
	for i, r := range rows {
		if ci >= len(cells) {
			break
		}
		for ci < len(cells) && widthInRow[i]+cells[ci].Master.Width <= r.Width() {
			placedInRow[i] = append(placedInRow[i], cells[ci])
			widthInRow[i] += cells[ci].Master.Width
			ci++
		}
	}
	// Fragmentation fallback: the region has enough total capacity (checked
	// above) but no single row has room for the next cell. Put each stray
	// cell into the row with the most free space, accepting a temporary
	// overflow of at most one cell width; the legalizer run by Place spills
	// it into an adjacent row afterwards.
	for ci < len(cells) {
		best, bestFree := -1, -1.0
		for i, r := range rows {
			if free := r.Width() - widthInRow[i]; free > bestFree {
				best, bestFree = i, free
			}
		}
		c := cells[ci]
		placedInRow[best] = append(placedInRow[best], c)
		widthInRow[best] += c.Master.Width
		ci++
	}
	for i, r := range rows {
		spreadInRow(p, placedInRow[i], r, widthInRow[i])
	}
	return nil
}

// spreadInRow places the cells left to right in the row segment, inserting
// equal gaps so that the row's whitespace is uniformly distributed.
func spreadInRow(p *Placement, cells []*netlist.Instance, r floorplan.Row, usedWidth float64) {
	if len(cells) == 0 {
		return
	}
	fp := p.FP
	slack := r.Width() - usedWidth
	if slack < 0 {
		slack = 0
	}
	gap := slack / float64(len(cells)+1)
	x := r.X0 + gap
	for _, c := range cells {
		sx := snapDown(x-fp.Core.Xlo, fp.SiteWidth) + fp.Core.Xlo
		if sx < r.X0 {
			sx = r.X0
		}
		p.SetLoc(c, Loc{X: sx, Y: r.Y, Row: r.Index})
		x = sx + c.Master.Width + gap
	}
}

// placePorts assigns pad locations around the core boundary, inputs along
// the left and bottom edges and outputs along the right and top edges.
func placePorts(p *Placement) {
	var ins, outs []*netlist.Port
	for _, port := range p.Design.Ports() {
		if port.Dir == netlist.In {
			ins = append(ins, port)
		} else {
			outs = append(outs, port)
		}
	}
	core := p.FP.Core
	perim := func(ports []*netlist.Port, start, end geom.Point, altStart, altEnd geom.Point) {
		n := len(ports)
		if n == 0 {
			return
		}
		half := (n + 1) / 2
		for i, port := range ports {
			if i < half {
				t := float64(i+1) / float64(half+1)
				p.SetPortLoc(port, geom.Point{X: start.X + t*(end.X-start.X), Y: start.Y + t*(end.Y-start.Y)})
			} else {
				t := float64(i-half+1) / float64(n-half+1)
				p.SetPortLoc(port, geom.Point{X: altStart.X + t*(altEnd.X-altStart.X), Y: altStart.Y + t*(altEnd.Y-altStart.Y)})
			}
		}
	}
	perim(ins,
		geom.Point{X: core.Xlo, Y: core.Ylo}, geom.Point{X: core.Xlo, Y: core.Yhi},
		geom.Point{X: core.Xlo, Y: core.Ylo}, geom.Point{X: core.Xhi, Y: core.Ylo})
	perim(outs,
		geom.Point{X: core.Xhi, Y: core.Ylo}, geom.Point{X: core.Xhi, Y: core.Yhi},
		geom.Point{X: core.Xlo, Y: core.Yhi}, geom.Point{X: core.Xhi, Y: core.Yhi})
}

// RefineHPWL performs a bounded greedy detailed-placement pass: it sweeps
// every row and swaps adjacent cells when doing so reduces the total
// half-perimeter wirelength of the nets touching them. It returns the number
// of accepted swaps. The pass preserves legality (swapped cells exchange
// positions adjusted for their widths).
func RefineHPWL(p *Placement, passes int) int {
	accepted := 0
	for pass := 0; pass < passes; pass++ {
		improvedThisPass := 0
		for row := 0; row < p.FP.NumRows(); row++ {
			occ := p.rowOccupants(row)
			for i := 0; i+1 < len(occ); i++ {
				a, b := occ[i], occ[i+1]
				if delta := swapDelta(p, a, b); delta < -1e-9 {
					doSwap(p, a, b)
					occ[i], occ[i+1] = occ[i+1], occ[i]
					accepted++
					improvedThisPass++
				}
			}
		}
		if improvedThisPass == 0 {
			break
		}
	}
	return accepted
}

// swapDelta returns the change in HPWL caused by swapping adjacent cells a
// and b (negative is an improvement). A swap within a row changes only the
// two cells' X coordinates, so per net the bounding-box height is unchanged
// and the HPWL delta reduces to the change of the box width: the "before"
// width comes from the cached net bounding box and the "after" width from an
// X-only pin scan with the post-swap coordinates substituted in. No trial
// move mutates the placement and nothing is allocated per candidate swap.
func swapDelta(p *Placement, a, b *netlist.Instance) float64 {
	la, _ := p.Loc(a)
	lb, _ := p.Loc(b)
	if la.Y != lb.Y {
		// The width-only arithmetic below is exact only when both cells sit
		// at the same Y, which legalization guarantees. A pair sharing a row
		// index at different Y (possible only on a pre-legalized placement)
		// would additionally change net bbox heights when doSwap snaps both
		// cells to the left cell's Y; rather than mis-evaluate it, never
		// accept such a swap.
		return math.Inf(1)
	}
	left := la
	if lb.X < la.X {
		left = lb
	}
	// After the swap b goes first, then a (mirroring doSwap).
	newAX := left.X + b.Master.Width
	newBX := left.X
	aNets := p.instNets[a.Ord()]
	delta := 0.0
	for _, netOrd := range aNets {
		n := p.nets[netOrd]
		delta += p.netWidthIfSwapped(n, a, b, newAX, newBX) - p.NetBBox(n).W()
	}
	for _, netOrd := range p.instNets[b.Ord()] {
		shared := false
		for _, seen := range aNets {
			if seen == netOrd {
				shared = true
				break
			}
		}
		if shared {
			continue
		}
		n := p.nets[netOrd]
		delta += p.netWidthIfSwapped(n, a, b, newAX, newBX) - p.NetBBox(n).W()
	}
	return delta
}

// netWidthIfSwapped computes the width of the net's pin bounding box as it
// would be with instances a and b moved to X coordinates ax and bx, scanning
// pins in the same driver-then-loads order — and with the same
// CellRect().Center() arithmetic — as computeNetBBox, so the result matches
// a post-move recomputation bit for bit.
func (p *Placement) netWidthIfSwapped(n *netlist.Net, a, b *netlist.Instance, ax, bx float64) float64 {
	var xlo, xhi float64
	found := false
	pinX := func(ref netlist.PinRef) (float64, bool) {
		if ref.IsPort() {
			pt, ok := p.PortLoc(ref.Port)
			return pt.X, ok
		}
		if ref.Inst == nil {
			return 0, false
		}
		l, ok := p.Loc(ref.Inst)
		if !ok {
			return 0, false
		}
		x := l.X
		switch ref.Inst {
		case a:
			x = ax
		case b:
			x = bx
		}
		return (x + (x + ref.Inst.Master.Width)) / 2, true
	}
	if x, ok := pinX(n.Driver); ok {
		xlo, xhi = x, x
		found = true
	}
	for _, ld := range n.Loads {
		x, ok := pinX(ld)
		if !ok {
			continue
		}
		if !found {
			xlo, xhi = x, x
			found = true
			continue
		}
		if x < xlo {
			xlo = x
		}
		if x > xhi {
			xhi = x
		}
	}
	if !found || xhi <= xlo {
		// Mirror geom.Rect.W's degenerate-box clamp.
		return 0
	}
	return xhi - xlo
}

// doSwap exchanges the positions of two adjacent cells in a row, keeping the
// pair's left edge and packing order.
func doSwap(p *Placement, a, b *netlist.Instance) {
	la, _ := p.Loc(a)
	lb, _ := p.Loc(b)
	left := la
	if lb.X < la.X {
		left = lb
	}
	// b goes first, then a.
	p.SetLoc(b, Loc{X: left.X, Y: left.Y, Row: left.Row})
	p.SetLoc(a, Loc{X: left.X + b.Master.Width, Y: left.Y, Row: left.Row})
}

func snapDown(v, step float64) float64 {
	if step <= 0 {
		return v
	}
	n := int(v / step)
	return float64(n) * step
}
