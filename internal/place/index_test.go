package place

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

// refRowOccupants is the pre-index O(instances) reference implementation of
// rowOccupants: scan every placed instance, keep the row's, sort by (X, name).
func refRowOccupants(p *Placement, row int) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range p.Design.Instances() {
		if l, ok := p.Loc(inst); ok && l.Row == row {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li, _ := p.Loc(out[i])
		lj, _ := p.Loc(out[j])
		if li.X != lj.X {
			return li.X < lj.X
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// refInstancesInRect is the pre-index O(instances) reference implementation
// of InstancesInRect.
func refInstancesInRect(p *Placement, r geom.Rect) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		if _, ok := p.Loc(inst); !ok {
			continue
		}
		if r.Contains(p.Center(inst)) {
			out = append(out, inst)
		}
	}
	return out
}

func sameInstances(a, b []*netlist.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// freshHPWL rebuilds an uncached placement with the same cell and port
// locations and returns its total HPWL, exposing any stale entry in the
// original's net-bbox cache.
func freshHPWL(p *Placement) float64 {
	fresh := NewPlacement(p.Design, p.FP)
	for _, inst := range p.Design.Instances() {
		if l, ok := p.Loc(inst); ok {
			fresh.SetLoc(inst, l)
		}
	}
	for _, port := range p.Design.Ports() {
		if pt, ok := p.PortLoc(port); ok {
			fresh.SetPortLoc(port, pt)
		}
	}
	return fresh.TotalHPWL()
}

// TestIndexedQueriesMatchReference pins the incremental row-occupancy index
// and the cached geometry queries against the pre-index map-based
// implementations across a long randomized move sequence, including moves
// that break row/Y alignment (which must flip the queries to their exact
// fallback, not change results).
func TestIndexedQueriesMatchReference(t *testing.T) {
	d, p := placedSmall(t, 0.8)
	rng := rand.New(rand.NewSource(7))
	var cells []*netlist.Instance
	for _, inst := range d.Instances() {
		if !inst.IsFiller() {
			cells = append(cells, inst)
		}
	}
	fp := p.FP
	check := func(step int) {
		t.Helper()
		maxRow := fp.NumRows() + 2 // also probe rows beyond the floorplan
		for row := 0; row < maxRow; row++ {
			if got, want := p.rowOccupants(row), refRowOccupants(p, row); !sameInstances(got, want) {
				t.Fatalf("step %d: rowOccupants(%d): got %d cells, reference %d", step, row, len(got), len(want))
			}
		}
		for q := 0; q < 8; q++ {
			r := geom.NewRect(
				fp.Core.Xlo+rng.Float64()*fp.Core.W(), fp.Core.Ylo+rng.Float64()*fp.Core.H(),
				fp.Core.Xlo+rng.Float64()*fp.Core.W(), fp.Core.Ylo+rng.Float64()*fp.Core.H(),
			)
			if got, want := p.InstancesInRect(r), refInstancesInRect(p, r); !sameInstances(got, want) {
				t.Fatalf("step %d: InstancesInRect(%v): got %d cells, reference %d", step, r, len(got), len(want))
			}
		}
		if got, want := p.TotalHPWL(), freshHPWL(p); got != want {
			t.Fatalf("step %d: cached TotalHPWL %g != fresh recomputation %g", step, got, want)
		}
	}
	check(-1)
	for step := 0; step < 400; step++ {
		inst := cells[rng.Intn(len(cells))]
		row := rng.Intn(fp.NumRows() + 1) // occasionally out of the floorplan
		loc := Loc{
			X:   fp.Core.Xlo + rng.Float64()*fp.Core.W(),
			Row: row,
		}
		if row < fp.NumRows() {
			loc.Y = fp.Rows[row].Y
		} else {
			loc.Y = fp.Core.Yhi
		}
		if step%17 == 0 {
			// Break the Y/row invariant on purpose.
			loc.Y += fp.RowHeight * (rng.Float64()*4 - 2)
		}
		p.SetLoc(inst, loc)
		if step%25 == 0 {
			check(step)
		}
	}
	check(400)
}

// TestCloneSharesNothingMutable ensures clone mutations (which now go
// through the occupancy index) never leak into the original's buckets.
func TestCloneSharesNothingMutable(t *testing.T) {
	d, p := placedSmall(t, 0.85)
	c := p.Clone()
	before := len(p.rowOccupants(0))
	// Move every cell of row 0 of the clone away.
	for _, inst := range c.rowOccupants(0) {
		l, _ := c.Loc(inst)
		l.Row = 1
		l.Y = c.FP.Rows[1].Y
		c.SetLoc(inst, l)
	}
	if got := len(p.rowOccupants(0)); got != before {
		t.Fatalf("mutating clone changed original row occupancy: %d -> %d", before, got)
	}
	if got, want := p.TotalHPWL(), freshHPWL(p); got != want {
		t.Fatalf("original HPWL cache corrupted by clone mutation: %g != %g", got, want)
	}
	_ = d
}

// TestInsertFillersDeterministic verifies that two placements built
// independently from the same benchmark configuration produce byte-identical
// filler lists (the old X-only unstable re-sort inside InsertFillers could
// reorder equal-X occupants and emit fillers in a run-dependent order).
func TestInsertFillersDeterministic(t *testing.T) {
	render := func() string {
		lib := celllib.Default65nm()
		d, err := bench.Generate(lib, bench.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		fp, err := floorplan.New(d, floorplan.Config{Utilization: 0.75, AspectRatio: 1})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Place(d, fp)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range p.Fillers {
			fmt.Fprintf(&b, "%s %.17g %.17g %d\n", f.Master.Name, f.X, f.Y, f.Row)
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("no fillers inserted at 75% utilization")
	}
	for run := 1; run < 3; run++ {
		if got := render(); got != first {
			t.Fatalf("run %d produced a different filler list", run)
		}
	}
}

// TestLegalizeSpillsFarthestFromCentre is the regression test for the spill
// policy: when a row overflows because of a pile of cells at its left edge,
// the legalizer must evict from that pile (the cells farthest from the row
// centre) instead of evicting the right-most cells, which would displace
// innocent cells parked near the centre.
func TestLegalizeSpillsFarthestFromCentre(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.Config{Utilization: 0.5, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d, fp)
	var cells []*netlist.Instance
	for _, inst := range d.Instances() {
		if !inst.IsFiller() {
			cells = append(cells, inst)
		}
	}
	mid := fp.NumRows() / 2
	row := fp.Rows[mid]
	capacity := row.Width()
	ci := 0
	take := func(targetWidth float64) []*netlist.Instance {
		var out []*netlist.Instance
		w := 0.0
		for ci < len(cells) && w < targetWidth {
			out = append(out, cells[ci])
			w += cells[ci].Master.Width
			ci++
		}
		return out
	}
	// Centred cells: packed contiguously around the row centre, ~60% of
	// capacity. Their maximum distance from the centre is ~0.3 capacity.
	centred := take(0.6 * capacity)
	cw := 0.0
	for _, c := range centred {
		cw += c.Master.Width
	}
	x := row.X0 + (capacity-cw)/2
	inMid := make(map[*netlist.Instance]bool)
	for _, c := range centred {
		p.SetLoc(c, Loc{X: x, Y: row.Y, Row: mid})
		inMid[c] = true
		x += c.Master.Width
	}
	// The pile: ~60% of capacity dumped on the left edge (distance from the
	// centre ~0.5 capacity), overflowing the row by ~20%.
	pile := take(0.6 * capacity)
	for _, c := range pile {
		p.SetLoc(c, Loc{X: row.X0, Y: row.Y, Row: mid})
		inMid[c] = true
	}
	// Park everything else in the other rows at ~50% occupancy so spills
	// always find nearby space.
	for r := 0; r < fp.NumRows() && ci < len(cells); r++ {
		if r == mid {
			continue
		}
		for _, c := range take(0.5 * capacity) {
			p.SetLoc(c, Loc{X: fp.Rows[r].X0, Y: fp.Rows[r].Y, Row: r})
		}
	}
	if ci < len(cells) {
		t.Fatalf("test setup: %d cells left unplaced", len(cells)-ci)
	}

	Legalize(p)

	evicted := 0
	for inst := range inMid {
		l, _ := p.Loc(inst)
		if l.Row == mid {
			continue
		}
		evicted++
		for _, c := range centred {
			if c == inst {
				t.Fatalf("legalizer evicted centred cell %s; it must spill the edge pile", inst.Name)
			}
		}
	}
	if evicted == 0 {
		t.Fatal("test setup: overflow did not force any eviction")
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("legalized placement not legal: %v (and %d more)", errs[0], len(errs)-1)
	}
}

// TestRefineHPWLInvariants12k is the paper-scale property test: on the full
// 12k-cell benchmark, every refinement pass must keep the placement legal
// and must never increase the total wirelength, and the cached wirelength
// must stay coherent with a from-scratch recomputation.
func TestRefineHPWLInvariants12k(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale placement in -short mode")
	}
	d, err := bench.Generate(celllib.Default65nm(), bench.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.Config{Utilization: 0.85, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlaceWithoutFillers(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.TotalHPWL()
	for pass := 1; pass <= 4; pass++ {
		swaps := RefineHPWL(p, 1)
		cur := p.TotalHPWL()
		if cur > prev+1e-6 {
			t.Fatalf("pass %d: HPWL increased %g -> %g", pass, prev, cur)
		}
		if swaps > 0 && cur >= prev {
			t.Fatalf("pass %d: %d swaps accepted but HPWL did not improve (%g -> %g)", pass, swaps, prev, cur)
		}
		if errs := p.Validate(); len(errs) != 0 {
			t.Fatalf("pass %d: placement not legal: %v (and %d more)", pass, errs[0], len(errs)-1)
		}
		prev = cur
		if swaps == 0 {
			break
		}
	}
	if got, want := p.TotalHPWL(), freshHPWL(p); got != want {
		t.Fatalf("cached TotalHPWL %g != fresh recomputation %g", got, want)
	}
	InsertFillers(p)
	if errs := p.Validate(); len(errs) != 0 {
		t.Fatalf("final placement not legal: %v", errs[0])
	}
}
