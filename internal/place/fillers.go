package place

// InsertFillers fills every gap between placed cells (and between cells and
// the row ends) with the widest filler masters that fit, replacing any
// previously recorded fillers. Filler cells consume no power; they exist to
// keep the power/ground rails continuous across the whitespace the
// temperature-reduction techniques allocate, exactly as described in the
// paper, and to make whitespace accounting explicit.
//
// It returns the total filler area inserted in um^2.
func InsertFillers(p *Placement) float64 {
	fp := p.FP
	fillers := p.Design.Lib.Fillers()
	p.Fillers = p.Fillers[:0]
	if len(fillers) == 0 {
		return 0
	}
	minWidth := fillers[len(fillers)-1].Width
	totalArea := 0.0

	for row := 0; row < fp.NumRows(); row++ {
		r := fp.Rows[row]
		// rowOccupants is already sorted by (X, name); re-sorting it with an
		// X-only comparator used to reorder equal-X entries arbitrarily and
		// made the filler list non-deterministic.
		occ := p.rowOccupants(row)
		cursor := r.X0
		fillGap := func(from, to float64) {
			gap := to - from
			x := from
			for gap >= minWidth-1e-9 {
				placed := false
				for _, f := range fillers {
					if f.Width <= gap+1e-9 {
						p.Fillers = append(p.Fillers, Filler{Master: f, X: x, Y: r.Y, Row: row})
						totalArea += f.Width * fp.RowHeight
						x += f.Width
						gap -= f.Width
						placed = true
						break
					}
				}
				if !placed {
					break
				}
			}
		}
		for _, inst := range occ {
			l, _ := p.Loc(inst)
			if l.X > cursor {
				fillGap(cursor, l.X)
			}
			end := l.X + inst.Master.Width
			if end > cursor {
				cursor = end
			}
		}
		if cursor < r.X1 {
			fillGap(cursor, r.X1)
		}
	}
	return totalArea
}

// FillerArea returns the total area currently occupied by filler cells.
func (p *Placement) FillerArea() float64 {
	total := 0.0
	for _, f := range p.Fillers {
		total += f.Master.Width * p.FP.RowHeight
	}
	return total
}
