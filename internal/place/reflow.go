package place

import (
	"fmt"

	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
)

// Reflow derives the placement of the same design at a different
// utilization from this placement, without re-running global placement: the
// floorplan is rebuilt at the target utilization (relaxing it grows the
// core and the per-row whitespace; compacting shrinks them) and the cached
// per-unit connectivity order is re-spread into the resized rows. The
// spreading, port assignment and legalization arithmetic is exactly the
// from-scratch placer's, and the connectivity order depends only on the
// frozen netlist, so the result is bit-identical to
// PlaceWithoutFillers(design, floorplan.New(...)) at the target
// utilization — the guarantee the incremental sweep relies on. The skipped
// work is everything netlist-derived: the BFS ordering, the unit grouping
// and the per-instance net index, which the derived placement shares.
//
// The receiver is read only; its cell coordinates are never consulted — a
// resized floorplan displaces every row, which is why the returned Delta is
// FullDelta. Callers that refine or fill the from-scratch placement must
// apply the same passes to the reflowed one (flow.ReflowAt does).
func (p *Placement) Reflow(utilization float64) (*Placement, *Delta, error) {
	fp, err := floorplan.New(p.Design, floorplan.Config{
		Utilization: utilization,
		AspectRatio: p.FP.AspectRatio,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("place: reflow floorplan at %.3f utilization: %w", utilization, err)
	}
	groups := p.unitOrder
	if groups == nil {
		// The placement was not built by the global placer; derive the
		// order now (it is a function of the netlist alone, so this still
		// matches a from-scratch run).
		groups, err = orderedUnitGroups(p.Design, fp)
		if err != nil {
			return nil, nil, err
		}
	}
	out := newDerivedPlacement(p, fp, groups)
	if err := spreadUnits(out, groups); err != nil {
		return nil, nil, err
	}
	placePorts(out)
	Legalize(out)
	return out, FullDelta(), nil
}

// newDerivedPlacement creates an empty placement for the same design in a
// new floorplan, sharing every netlist-derived (floorplan-independent)
// index with the source placement instead of rebuilding it.
func newDerivedPlacement(p *Placement, fp *floorplan.Floorplan, groups []unitGroup) *Placement {
	out := &Placement{
		Design:      p.Design,
		FP:          fp,
		insts:       p.insts,
		nets:        p.nets,
		locs:        make([]Loc, len(p.locs)),
		placed:      make([]bool, len(p.placed)),
		portLocs:    make([]geom.Point, len(p.portLocs)),
		portKnown:   make([]bool, len(p.portKnown)),
		rowOcc:      make([][]int32, fp.NumRows()),
		rowPos:      make([]int32, len(p.rowPos)),
		misaligned:  make([]bool, len(p.misaligned)),
		netBox:      make([]geom.Rect, len(p.netBox)),
		netBoxValid: make([]bool, len(p.netBoxValid)),
		instNets:    p.instNets,
		unitOrder:   groups,
	}
	for i := range out.rowPos {
		out.rowPos[i] = -1
	}
	return out
}
