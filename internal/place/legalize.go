package place

import (
	"sort"

	"thermplace/internal/netlist"
)

// Legalize turns an arbitrary (possibly overlapping, off-grid) placement
// into a legal one while moving cells as little as possible:
//
//  1. every cell is snapped to its nearest row,
//  2. rows whose contents exceed their capacity spill the cell farthest
//     from the row centre into the nearest row with free space (the
//     cheapest eviction: it never disturbs the packed middle, and overflow
//     near either row edge is resolved locally instead of travelling across
//     the row),
//  3. within every row, cells keep their left-to-right order and are shifted
//     just enough to remove overlaps and stay inside the row, snapped to the
//     site grid.
//
// Row occupancy widths are tracked incrementally across the spill pass, so
// legalization never re-sums or re-sorts a row per eviction.
//
// This is a simplified Tetris/Abacus-style legalizer: adequate for the
// post-placement transforms, which only perturb cells locally.
func Legalize(p *Placement) {
	fp := p.FP
	// Pass 1: snap each cell to the nearest row, tracking per-row widths
	// (accumulated in design order — the capacity comparisons below are
	// float sums, and a different addition order could flip a marginal
	// spill decision).
	rowUsed := make([]float64, fp.NumRows())
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		l, ok := p.Loc(inst)
		if !ok {
			continue
		}
		row := fp.RowAt(l.Y + fp.RowHeight/2)
		l.Row = row.Index
		l.Y = row.Y
		p.SetLoc(inst, l)
		rowUsed[row.Index] += inst.Master.Width
	}
	// The row lists come straight off the occupancy index SetLoc maintains:
	// each bucket is already sorted by (X, name), exactly the order the
	// per-row sort used to produce.
	rowCells := make([][]*netlist.Instance, fp.NumRows())
	for row := 0; row < fp.NumRows(); row++ {
		rowCells[row] = rowOccupantsNonFiller(p, row)
	}

	// Pass 2: spill overfull rows into the nearest rows with space. Rows
	// are already sorted; the farthest-from-centre candidate is then always
	// at one of the two ends of the remaining span.
	for row := 0; row < fp.NumRows(); row++ {
		capacity := fp.Rows[row].Width()
		if rowUsed[row] <= capacity || len(rowCells[row]) == 0 {
			continue
		}
		cells := rowCells[row]
		centre := (fp.Rows[row].X0 + fp.Rows[row].X1) / 2
		lo, hi := 0, len(cells)-1
		for rowUsed[row] > capacity && lo <= hi {
			victim := cells[hi]
			fromLeft := false
			if distFromCentre(p, cells[lo], centre) > distFromCentre(p, cells[hi], centre) {
				victim = cells[lo]
				fromLeft = true
			}
			target := findRowWithSpace(p, rowUsed, row, victim.Master.Width)
			if target < 0 {
				// No space anywhere: keep the cell in place; Validate will
				// flag the overflow for the caller.
				break
			}
			l, _ := p.Loc(victim)
			l.Row = target
			l.Y = fp.Rows[target].Y
			p.SetLoc(victim, l)
			rowCells[target] = append(rowCells[target], victim)
			rowUsed[target] += victim.Master.Width
			rowUsed[row] -= victim.Master.Width
			if fromLeft {
				lo++
			} else {
				hi--
			}
		}
		rowCells[row] = cells[lo : hi+1]
	}

	// Pass 3: remove overlaps within each row with a two-sided sweep.
	for row := 0; row < fp.NumRows(); row++ {
		packRow(p, rowCells[row], fp.Rows[row].X0, fp.Rows[row].X1)
	}
}

// distFromCentre returns the horizontal distance of the cell's centre from
// the row centre.
func distFromCentre(p *Placement, inst *netlist.Instance, centre float64) float64 {
	l, _ := p.Loc(inst)
	d := l.X + inst.Master.Width/2 - centre
	if d < 0 {
		return -d
	}
	return d
}

// sortCellsByX orders the cells by x position, breaking ties by name so the
// order (and everything downstream of it) is deterministic. Already-sorted
// input (the common case: row lists come pre-sorted off the occupancy
// index, and only spill targets gain out-of-place cells) is detected in one
// pass and left alone.
func sortCellsByX(p *Placement, cells []*netlist.Instance) {
	if cellsSortedByX(p, cells) {
		return
	}
	sort.Slice(cells, func(i, j int) bool {
		li, _ := p.Loc(cells[i])
		lj, _ := p.Loc(cells[j])
		if li.X != lj.X {
			return li.X < lj.X
		}
		return cells[i].Name < cells[j].Name
	})
}

func cellsSortedByX(p *Placement, cells []*netlist.Instance) bool {
	for i := 1; i < len(cells); i++ {
		li, _ := p.Loc(cells[i-1])
		lj, _ := p.Loc(cells[i])
		if li.X > lj.X || (li.X == lj.X && cells[i-1].Name > cells[i].Name) {
			return false
		}
	}
	return true
}

// rowOccupantsNonFiller copies the row's occupancy bucket, dropping filler
// instances.
func rowOccupantsNonFiller(p *Placement, row int) []*netlist.Instance {
	if row < 0 || row >= len(p.rowOcc) {
		return nil
	}
	bucket := p.rowOcc[row]
	if len(bucket) == 0 {
		return nil
	}
	out := make([]*netlist.Instance, 0, len(bucket))
	for _, ord := range bucket {
		if inst := p.insts[ord]; !inst.IsFiller() {
			out = append(out, inst)
		}
	}
	return out
}

// findRowWithSpace returns the row index nearest to from that can absorb an
// extra cell of the given width according to the tracked row widths, or -1
// when none exists.
func findRowWithSpace(p *Placement, rowUsed []float64, from int, width float64) int {
	fp := p.FP
	for d := 1; d < fp.NumRows(); d++ {
		for _, row := range []int{from - d, from + d} {
			if row < 0 || row >= fp.NumRows() {
				continue
			}
			if rowUsed[row]+width <= fp.Rows[row].Width() {
				return row
			}
		}
	}
	return -1
}

// packRow removes overlaps between the cells of one row while keeping their
// left-to-right order, clamping everything into [x0, x1] and snapping to the
// site grid.
func packRow(p *Placement, cells []*netlist.Instance, x0, x1 float64) {
	if len(cells) == 0 {
		return
	}
	fp := p.FP
	sortCellsByX(p, cells)
	// Left-to-right sweep: push cells right so they do not overlap.
	prevEnd := x0
	for _, c := range cells {
		l, _ := p.Loc(c)
		x := l.X
		if x < prevEnd {
			x = prevEnd
		}
		x = snapDown(x-fp.Core.Xlo, fp.SiteWidth) + fp.Core.Xlo
		if x < prevEnd-1e-9 {
			x += fp.SiteWidth
		}
		l.X = x
		p.SetLoc(c, l)
		prevEnd = x + c.Master.Width
	}
	// If the row overflowed on the right, re-pack the row contiguously so
	// that it ends at x1 (or starts at x0 when even a contiguous packing is
	// tight), preserving cell order. Positions stay site-aligned because all
	// cell widths are site multiples.
	last := cells[len(cells)-1]
	lLast, _ := p.Loc(last)
	if lLast.X+last.Master.Width > x1+1e-9 {
		totalWidth := 0.0
		for _, c := range cells {
			totalWidth += c.Master.Width
		}
		start := snapDown(x1-totalWidth-fp.Core.Xlo, fp.SiteWidth) + fp.Core.Xlo
		if start < x0 {
			start = x0
		}
		x := start
		for _, c := range cells {
			l, _ := p.Loc(c)
			l.X = x
			p.SetLoc(c, l)
			x += c.Master.Width
		}
	}
}
