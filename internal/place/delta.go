package place

import "slices"

// Delta describes how a derived placement differs from the placement it was
// derived from: which instances moved, which rows their old and new
// positions touch, and which nets had a pin cell move (and so may have a
// changed bounding box / wirelength). It is the contract between the
// placement transforms that produce derived sweep points (Reflow,
// EmptyRowInsertionDelta, HotspotWrapperDelta in package core) and the
// downstream consumers that re-evaluate only what changed
// (power.Report.Update, the flow's power-map solve gate).
//
// A full delta stands for "assume everything moved": consumers fall back to
// their from-scratch path. Reflow returns a full delta — relaxing the
// utilization re-spreads every row — while the row-insertion and wrapper
// transforms record surgically which cells the edit and the subsequent
// legalization actually displaced.
//
// The moved/dirty sets are reported in ascending ordinal order, so every
// iteration over a delta is deterministic.
type Delta struct {
	full bool

	moved     []int32 // instance ordinals, ascending
	dirtyRows []int32 // row indices, ascending
	dirtyNets []int32 // net ordinals, ascending
}

// FullDelta returns the delta that invalidates everything.
func FullDelta() *Delta { return &Delta{full: true} }

// IsFull reports whether the delta stands for "assume everything moved".
func (d *Delta) IsFull() bool { return d != nil && d.full }

// Empty reports whether the delta records no change at all.
func (d *Delta) Empty() bool { return d != nil && !d.full && len(d.moved) == 0 }

// Moved returns the ordinals of the moved instances in ascending order.
// The slice is shared; callers must not modify it.
func (d *Delta) Moved() []int32 { return d.moved }

// DirtyRows returns the indices of the rows touched by a move (old or new
// position) in ascending order. No consumer reads it yet — it is the
// forward-looking half of the contract for row-scoped incremental
// legalization/re-placement (see ROADMAP), recorded now so the transforms
// do not need a second instrumentation pass later.
func (d *Delta) DirtyRows() []int32 { return d.dirtyRows }

// DirtyNets returns the ordinals of the nets with at least one moved pin
// cell in ascending order. Their cached bounding boxes were invalidated by
// the moves themselves (SetLoc); the list tells delta consumers which
// wirelength-dependent values to re-evaluate.
func (d *Delta) DirtyNets() []int32 { return d.dirtyNets }

// Merge returns the composition of d (A→B) with next (B→C): a delta valid
// for A→C. Either side being full makes the result full.
func (d *Delta) Merge(next *Delta) *Delta {
	if d == nil {
		return next
	}
	if next == nil {
		return d
	}
	if d.full || next.full {
		return FullDelta()
	}
	return &Delta{
		moved:     mergeSorted(d.moved, next.moved),
		dirtyRows: mergeSorted(d.dirtyRows, next.dirtyRows),
		dirtyNets: mergeSorted(d.dirtyNets, next.dirtyNets),
	}
}

// mergeSorted unions two ascending lists into a new ascending list.
func mergeSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	if len(b) == 0 {
		return append([]int32(nil), a...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// deltaRecorder accumulates the effect of SetLoc calls between BeginDelta
// and EndDelta.
type deltaRecorder struct {
	moved   []int32 // first-touch order; sorted at EndDelta
	touched []bool  // by instance ordinal
	rows    []bool  // by row index (grown on demand)
}

func (r *deltaRecorder) markRow(row int) {
	if row < 0 {
		return
	}
	for row >= len(r.rows) {
		r.rows = append(r.rows, false)
	}
	r.rows[row] = true
}

// BeginDelta starts recording placement changes: every subsequent SetLoc
// that actually moves an instance is folded into the delta returned by
// EndDelta. Recording nests with nothing and must be closed before the
// placement is shared; it exists for the derived-placement transforms,
// which clone, record, edit and legalize in one linear sequence.
func (p *Placement) BeginDelta() {
	p.rec = &deltaRecorder{touched: make([]bool, len(p.locs))}
}

// EndDelta stops recording and returns the accumulated delta relative to
// the placement state at BeginDelta.
func (p *Placement) EndDelta() *Delta {
	rec := p.rec
	p.rec = nil
	if rec == nil {
		return &Delta{}
	}
	d := &Delta{}
	// moved, ascending.
	d.moved = append(d.moved, rec.moved...)
	slices.Sort(d.moved)
	// Dirty rows from the recorded bitmap plus the instances' current rows.
	for _, ord := range d.moved {
		if p.placed[ord] {
			rec.markRow(p.locs[ord].Row)
		}
	}
	for row, dirty := range rec.rows {
		if dirty {
			d.dirtyRows = append(d.dirtyRows, int32(row))
		}
	}
	// Dirty nets: every net touching a moved instance, deduped via bitmap.
	netDirty := make([]bool, len(p.netBoxValid))
	for _, ord := range d.moved {
		for _, netOrd := range p.instNets[ord] {
			if int(netOrd) < len(netDirty) {
				netDirty[netOrd] = true
			}
		}
	}
	for netOrd, dirty := range netDirty {
		if dirty {
			d.dirtyNets = append(d.dirtyNets, int32(netOrd))
		}
	}
	return d
}

// record folds one real move into the active recorder. oldRow is the row
// the instance occupied before the move (ignored when it was unplaced).
func (p *Placement) record(ord int, wasPlaced bool, oldRow int) {
	rec := p.rec
	for ord >= len(rec.touched) {
		rec.touched = append(rec.touched, false)
	}
	if !rec.touched[ord] {
		rec.touched[ord] = true
		rec.moved = append(rec.moved, int32(ord))
	}
	if wasPlaced {
		rec.markRow(oldRow)
	}
}
