// Package def reads and writes placements in a DEF-lite exchange format, a
// small subset of the LEF/DEF conventions used by physical-design tools:
// distances are stored as integer database units (1000 per micrometre), the
// die area and per-component placed locations are recorded, and filler cells
// and pin (pad) locations are included so a placement can be fully
// reconstructed by the command-line tools.
package def

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// dbuPerUm is the database-unit resolution written into the DEF header.
const dbuPerUm = 1000

func toDBU(um float64) int    { return int(math.Round(um * dbuPerUm)) }
func fromDBU(dbu int) float64 { return float64(dbu) / dbuPerUm }

// Write emits the placement as DEF-lite.
func Write(w io.Writer, p *place.Placement) error {
	bw := bufio.NewWriter(w)
	fp := p.FP
	fmt.Fprintf(bw, "VERSION 5.8 ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", p.Design.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", dbuPerUm)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n",
		toDBU(fp.Core.Xlo), toDBU(fp.Core.Ylo), toDBU(fp.Core.Xhi), toDBU(fp.Core.Yhi))
	fmt.Fprintf(bw, "ROWHEIGHT %d ;\n", toDBU(fp.RowHeight))
	fmt.Fprintf(bw, "SITEWIDTH %d ;\n", toDBU(fp.SiteWidth))

	placed := 0
	for _, inst := range p.Design.Instances() {
		if _, ok := p.Loc(inst); ok {
			placed++
		}
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", placed+len(p.Fillers))
	for _, inst := range p.Design.Instances() {
		l, ok := p.Loc(inst)
		if !ok {
			continue
		}
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n", inst.Name, inst.Master.Name, toDBU(l.X), toDBU(l.Y))
	}
	for i, f := range p.Fillers {
		fmt.Fprintf(bw, "- FILLER_%d %s + FILLER ( %d %d ) N ;\n", i, f.Master.Name, toDBU(f.X), toDBU(f.Y))
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	var pins []*netlist.Port
	for _, port := range p.Design.Ports() {
		if _, ok := p.PortLoc(port); ok {
			pins = append(pins, port)
		}
	}
	fmt.Fprintf(bw, "PINS %d ;\n", len(pins))
	for _, port := range pins {
		pt, _ := p.PortLoc(port)
		dir := "INPUT"
		if port.Dir == netlist.Out {
			dir = "OUTPUT"
		}
		fmt.Fprintf(bw, "- %s + %s + PLACED ( %d %d ) ;\n", port.Name, dir, toDBU(pt.X), toDBU(pt.Y))
	}
	fmt.Fprintf(bw, "END PINS\n")
	fmt.Fprintf(bw, "END DESIGN\n")
	return bw.Flush()
}

// Read parses DEF-lite and reconstructs a placement for the given design.
// Component and pin names must exist in the design; fillers are restored as
// placement fillers.
func Read(r io.Reader, d *netlist.Design) (*place.Placement, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	var core geom.Rect
	rowHeight := d.Lib.RowHeight
	siteWidth := d.Lib.SiteWidth
	var p *place.Placement

	ensurePlacement := func() (*place.Placement, error) {
		if p != nil {
			return p, nil
		}
		if core.Empty() {
			return nil, fmt.Errorf("def: component section before DIEAREA")
		}
		nRows := int(math.Round(core.H() / rowHeight))
		if nRows < 1 {
			return nil, fmt.Errorf("def: die area %v smaller than one row", core)
		}
		fp := &floorplan.Floorplan{
			Core:      core,
			RowHeight: rowHeight,
			SiteWidth: siteWidth,
			Regions:   map[string]*floorplan.Region{},
		}
		for i := 0; i < nRows; i++ {
			fp.Rows = append(fp.Rows, floorplan.Row{
				Index: i,
				Y:     core.Ylo + float64(i)*rowHeight,
				X0:    core.Xlo,
				X1:    core.Xhi,
			})
		}
		p = place.NewPlacement(d, fp)
		return p, nil
	}

	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "VERSION"), strings.HasPrefix(line, "UNITS"),
			strings.HasPrefix(line, "DESIGN"), strings.HasPrefix(line, "COMPONENTS"),
			strings.HasPrefix(line, "PINS"), strings.HasPrefix(line, "END COMPONENTS"),
			strings.HasPrefix(line, "END PINS"), strings.HasPrefix(line, "END DESIGN"):
			// Header / section markers: nothing to extract.
		case strings.HasPrefix(line, "DIEAREA"):
			// DIEAREA ( x1 y1 ) ( x2 y2 ) ;
			nums := extractInts(fields)
			if len(nums) != 4 {
				return nil, fmt.Errorf("def: line %d: malformed DIEAREA", lineNo)
			}
			core = geom.Rect{Xlo: fromDBU(nums[0]), Ylo: fromDBU(nums[1]), Xhi: fromDBU(nums[2]), Yhi: fromDBU(nums[3])}
		case strings.HasPrefix(line, "ROWHEIGHT"):
			nums := extractInts(fields)
			if len(nums) != 1 {
				return nil, fmt.Errorf("def: line %d: malformed ROWHEIGHT", lineNo)
			}
			rowHeight = fromDBU(nums[0])
		case strings.HasPrefix(line, "SITEWIDTH"):
			nums := extractInts(fields)
			if len(nums) != 1 {
				return nil, fmt.Errorf("def: line %d: malformed SITEWIDTH", lineNo)
			}
			siteWidth = fromDBU(nums[0])
		case strings.HasPrefix(line, "- "):
			pl, err := ensurePlacement()
			if err != nil {
				return nil, err
			}
			if err := parseComponentOrPin(pl, d, fields, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("def: line %d: unrecognized statement %q", lineNo, line)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("def: reading input: %w", err)
	}
	if p == nil {
		return nil, fmt.Errorf("def: no placement data found")
	}
	return p, nil
}

// extractInts pulls every integer-looking token from the fields.
func extractInts(fields []string) []int {
	var out []int
	for _, f := range fields {
		if v, err := strconv.Atoi(f); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// parseComponentOrPin handles "- name ..." component, filler and pin lines.
func parseComponentOrPin(p *place.Placement, d *netlist.Design, fields []string, lineNo int) error {
	if len(fields) < 3 {
		return fmt.Errorf("def: line %d: malformed element line", lineNo)
	}
	name := fields[1]
	nums := extractInts(fields)
	if len(nums) < 2 {
		return fmt.Errorf("def: line %d: missing coordinates", lineNo)
	}
	x, y := fromDBU(nums[0]), fromDBU(nums[1])
	switch {
	case contains(fields, "FILLER"):
		master := d.Lib.Master(fields[2])
		if master == nil || !master.Filler {
			return fmt.Errorf("def: line %d: unknown filler master %q", lineNo, fields[2])
		}
		row := p.FP.RowAt(y + p.FP.RowHeight/2)
		p.Fillers = append(p.Fillers, place.Filler{Master: master, X: x, Y: row.Y, Row: row.Index})
	case contains(fields, "INPUT") || contains(fields, "OUTPUT"):
		port := d.Port(name)
		if port == nil {
			return fmt.Errorf("def: line %d: unknown pin %q", lineNo, name)
		}
		p.SetPortLoc(port, geom.Point{X: x, Y: y})
	default:
		inst := d.Instance(name)
		if inst == nil {
			return fmt.Errorf("def: line %d: unknown component %q", lineNo, name)
		}
		if inst.Master.Name != fields[2] {
			return fmt.Errorf("def: line %d: component %q master mismatch: %s vs %s", lineNo, name, fields[2], inst.Master.Name)
		}
		row := p.FP.RowAt(y + p.FP.RowHeight/2)
		p.SetLoc(inst, place.Loc{X: x, Y: row.Y, Row: row.Index})
	}
	return nil
}

func contains(fields []string, want string) bool {
	for _, f := range fields {
		if f == want {
			return true
		}
	}
	return false
}
