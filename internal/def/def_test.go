package def

import (
	"math"
	"strings"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

func placedSmall(t *testing.T) (*netlist.Design, *place.Placement) {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestDEFRoundTrip(t *testing.T) {
	d, p := placedSmall(t)
	var buf strings.Builder
	if err := Write(&buf, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"VERSION 5.8", "DESIGN synth_small", "DIEAREA", "COMPONENTS", "END COMPONENTS", "PINS", "END DESIGN"} {
		if !strings.Contains(text, want) {
			t.Errorf("DEF output missing %q", want)
		}
	}
	got, err := Read(strings.NewReader(text), d)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Core geometry must survive (within the 1/1000 um DBU rounding).
	if math.Abs(got.FP.Core.Xhi-p.FP.Core.Xhi) > 1e-3 || math.Abs(got.FP.Core.Yhi-p.FP.Core.Yhi) > 1e-3 {
		t.Fatalf("core changed: %v vs %v", got.FP.Core, p.FP.Core)
	}
	if got.FP.NumRows() != p.FP.NumRows() {
		t.Fatalf("row count changed: %d vs %d", got.FP.NumRows(), p.FP.NumRows())
	}
	// Every cell location must survive within DBU rounding.
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		lo, okO := p.Loc(inst)
		ln, okN := got.Loc(inst)
		if okO != okN {
			t.Fatalf("instance %q placement presence changed", inst.Name)
		}
		if !okO {
			continue
		}
		if math.Abs(lo.X-ln.X) > 1e-3 || math.Abs(lo.Y-ln.Y) > 1e-3 || lo.Row != ln.Row {
			t.Fatalf("instance %q moved: %+v vs %+v", inst.Name, lo, ln)
		}
	}
	// Fillers and pins survive.
	if len(got.Fillers) != len(p.Fillers) {
		t.Fatalf("filler count changed: %d vs %d", len(got.Fillers), len(p.Fillers))
	}
	for _, port := range d.Ports() {
		po, okO := p.PortLoc(port)
		pn, okN := got.PortLoc(port)
		if okO != okN {
			t.Fatalf("port %q location presence changed", port.Name)
		}
		if okO && (math.Abs(po.X-pn.X) > 1e-3 || math.Abs(po.Y-pn.Y) > 1e-3) {
			t.Fatalf("port %q moved", port.Name)
		}
	}
	// The reconstructed placement is still legal.
	if errs := got.Validate(); len(errs) != 0 {
		t.Fatalf("round-tripped placement invalid: %v", errs[0])
	}
	// And it computes the same wirelength.
	if math.Abs(got.TotalHPWL()-p.TotalHPWL()) > 1e-2*p.TotalHPWL() {
		t.Fatalf("HPWL changed: %g vs %g", got.TotalHPWL(), p.TotalHPWL())
	}
}

func TestReadErrors(t *testing.T) {
	d, _ := placedSmall(t)
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"component before diearea", "- mult8_g1 AND2_X1 + PLACED ( 0 0 ) N ;\n"},
		{"unknown component", "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\n- nosuch AND2_X1 + PLACED ( 0 0 ) N ;\n"},
		{"master mismatch", "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\n- mult8_g1 DFF_X1 + PLACED ( 0 0 ) N ;\n"},
		{"unknown pin", "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\n- nosuchpin + INPUT + PLACED ( 0 0 ) ;\n"},
		{"unknown filler", "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\n- FILLER_0 BOGUS + FILLER ( 0 0 ) N ;\n"},
		{"garbage line", "WHAT IS THIS ;\n"},
		{"bad diearea", "DIEAREA ( 0 0 ) ( 10000 ) ;\n"},
		{"tiny diearea", "DIEAREA ( 0 0 ) ( 100 100 ) ;\n- mult8_g1 AND2_X1 + PLACED ( 0 0 ) N ;\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.text), d); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadSkipsCommentsAndHeaders(t *testing.T) {
	d, _ := placedSmall(t)
	text := `# comment
VERSION 5.8 ;
DESIGN synth_small ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 50000 50000 ) ;
ROWHEIGHT 2000 ;
SITEWIDTH 200 ;
COMPONENTS 1 ;
- mult8_g1 AND2_X1 + PLACED ( 1000 2000 ) N ;
END COMPONENTS
END DESIGN
`
	p, err := Read(strings.NewReader(text), d)
	if err != nil {
		t.Fatal(err)
	}
	inst := d.Instance("mult8_g1")
	l, ok := p.Loc(inst)
	if !ok || math.Abs(l.X-1.0) > 1e-9 || math.Abs(l.Y-2.0) > 1e-9 || l.Row != 1 {
		t.Fatalf("parsed location wrong: %+v (ok=%v)", l, ok)
	}
}
