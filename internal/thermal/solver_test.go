package thermal

import (
	"math"
	"testing"

	"thermplace/internal/geom"
	"thermplace/internal/spice"
)

// maxLayerDelta returns the largest absolute per-cell temperature difference
// across all layers of two results.
func maxLayerDelta(t *testing.T, a, b *Result) float64 {
	t.Helper()
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("layer count mismatch: %d vs %d", len(a.Layers), len(b.Layers))
	}
	worst := 0.0
	for l := range a.Layers {
		ga, gb := a.Layers[l], b.Layers[l]
		for iy := 0; iy < ga.NY; iy++ {
			for ix := 0; ix < ga.NX; ix++ {
				if d := math.Abs(ga.At(ix, iy) - gb.At(ix, iy)); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

func TestFastPathSelection(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.FastPath() {
		t.Fatal("default config must take the fast path")
	}
	cfg.UseSpice = true
	if cfg.FastPath() {
		t.Fatal("UseSpice must force the oracle path")
	}
	cfg.UseSpice = false
	cfg.Solver = spice.MethodDense
	if cfg.FastPath() {
		t.Fatal("non-CG methods must go through the spice path")
	}
}

func TestConfigEqual(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	if !a.Equal(b) {
		t.Fatal("identical configs must compare equal")
	}
	b.Stack = DefaultStack()
	b.Stack[3].Conductivity *= 2
	if a.Equal(b) {
		t.Fatal("stack change must be detected")
	}
	c := DefaultConfig()
	c.NX = 41
	if a.Equal(c) {
		t.Fatal("grid change must be detected")
	}
	d := DefaultConfig()
	d.UseSpice = true
	if a.Equal(d) {
		t.Fatal("solver-path change must be detected")
	}
}

// TestSolverMatchesDenseOracle checks the fast path against the dense
// Cholesky oracle on small grids, where the dense solve is exact to machine
// precision.
func TestSolverMatchesDenseOracle(t *testing.T) {
	for _, size := range []int{4, 6, 9} {
		cfg := testConfig(size, size)
		cfg.Tolerance = 1e-12
		pm := geom.NewGrid(size, size, dieRegion(30*float64(size)))
		pm.Set(1, 1, 0.004)
		pm.Set(size-2, size-2, 0.002)
		pm.Set(size/2, size/2, 0.001)

		fast, err := Solve(pm, cfg)
		if err != nil {
			t.Fatalf("%dx%d fast: %v", size, size, err)
		}
		oracle := cfg
		oracle.UseSpice = true
		oracle.Solver = spice.MethodDense
		ref, err := Solve(pm, oracle)
		if err != nil {
			t.Fatalf("%dx%d dense oracle: %v", size, size, err)
		}
		if d := maxLayerDelta(t, fast, ref); d > 1e-6 {
			t.Fatalf("%dx%d: fast path deviates from dense oracle by %g C", size, size, d)
		}
		if math.Abs(fast.PeakRise-ref.PeakRise) > 1e-6 {
			t.Fatalf("%dx%d: peak rise %g vs oracle %g", size, size, fast.PeakRise, ref.PeakRise)
		}
	}
}

// TestSolverMatchesSpiceCGOnPaperGrid checks the fast path against the
// legacy spice CG path on the full 40x40x9 paper grid.
func TestSolverMatchesSpiceCGOnPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full 40x40x9 oracle comparison skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-11
	pm := geom.NewGrid(cfg.NX, cfg.NY, dieRegion(360))
	pm.Fill(0.012 / float64(cfg.NX*cfg.NY))
	for iy := 8; iy < 16; iy++ {
		for ix := 8; ix < 16; ix++ {
			pm.Add(ix, iy, 0.010/64)
		}
	}
	fast, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := cfg
	oracle.UseSpice = true
	ref, err := Solve(pm, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLayerDelta(t, fast, ref); d > 1e-6 {
		t.Fatalf("fast path deviates from spice CG oracle by %g C on the paper grid", d)
	}
	t.Logf("paper grid: fast %d iterations, spice %d iterations, max delta %g C",
		fast.Iterations, ref.Iterations, maxLayerDelta(t, fast, ref))
}

// TestMGMatchesJacobiAndSpiceOracle is the three-way equivalence check on
// the full paper grid: the multigrid-preconditioned fast path, the
// Jacobi-preconditioned fast path and the SPICE-circuit oracle must agree
// to 1e-6 C on every layer, and multigrid must cut the cold-start
// iteration count at least 3x (the measured reduction is ~11x, under 15
// iterations).
func TestMGMatchesJacobiAndSpiceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full 40x40x9 oracle comparison skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-11
	pm := geom.NewGrid(cfg.NX, cfg.NY, dieRegion(360))
	pm.Fill(0.012 / float64(cfg.NX*cfg.NY))
	for iy := 8; iy < 16; iy++ {
		for ix := 8; ix < 16; ix++ {
			pm.Add(ix, iy, 0.010/64)
		}
	}

	mgCfg := cfg
	mgCfg.Precond = PrecondMG
	mgRes, err := Solve(pm, mgCfg)
	if err != nil {
		t.Fatalf("MG-PCG: %v", err)
	}
	jacCfg := cfg
	jacCfg.Precond = PrecondJacobi
	jacRes, err := Solve(pm, jacCfg)
	if err != nil {
		t.Fatalf("Jacobi-PCG: %v", err)
	}
	oracle := cfg
	oracle.UseSpice = true
	ref, err := Solve(pm, oracle)
	if err != nil {
		t.Fatalf("spice oracle: %v", err)
	}

	if d := maxLayerDelta(t, mgRes, jacRes); d > 1e-6 {
		t.Fatalf("MG-PCG deviates from Jacobi-PCG by %g C", d)
	}
	if d := maxLayerDelta(t, mgRes, ref); d > 1e-6 {
		t.Fatalf("MG-PCG deviates from the spice oracle by %g C", d)
	}
	if mgRes.Iterations*3 > jacRes.Iterations {
		t.Errorf("MG-PCG took %d iterations vs Jacobi's %d: want at least 3x fewer",
			mgRes.Iterations, jacRes.Iterations)
	}
	t.Logf("paper grid (tol 1e-11): MG %d iterations, Jacobi %d, MG-vs-oracle delta %g C",
		mgRes.Iterations, jacRes.Iterations, maxLayerDelta(t, mgRes, ref))

	// At the production tolerance (1e-9) the cold start must stay under 15
	// iterations.
	defCfg := DefaultConfig()
	defCfg.Precond = PrecondMG
	defRes, err := Solve(pm, defCfg)
	if err != nil {
		t.Fatal(err)
	}
	if defRes.Iterations >= 15 {
		t.Errorf("MG-PCG cold start took %d iterations at default tolerance, want < 15", defRes.Iterations)
	}
}

// TestSurfaceOnlySkipsNonPowerLayers checks the SurfaceOnly flag on both
// solver paths: only the power layer is materialized and its content is
// identical to a full solve.
func TestSurfaceOnlySkipsNonPowerLayers(t *testing.T) {
	cfg := testConfig(10, 10)
	pm := geom.NewGrid(10, 10, dieRegion(250))
	pm.Set(4, 4, 0.004)
	full, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	surfCfg := cfg
	surfCfg.SurfaceOnly = true
	surf, err := Solve(pm, surfCfg)
	if err != nil {
		t.Fatal(err)
	}
	powerLayer := cfg.Stack.PowerLayer()
	if len(surf.Layers) != len(cfg.Stack) {
		t.Fatalf("Layers length %d, want %d", len(surf.Layers), len(cfg.Stack))
	}
	for l, g := range surf.Layers {
		if l == powerLayer {
			if g == nil {
				t.Fatal("power layer must be materialized")
			}
			continue
		}
		if g != nil {
			t.Fatalf("non-power layer %d materialized despite SurfaceOnly", l)
		}
	}
	if surf.Surface != surf.Layers[powerLayer] {
		t.Fatal("Surface must alias the power layer")
	}
	for iy := 0; iy < 10; iy++ {
		for ix := 0; ix < 10; ix++ {
			if surf.Surface.At(ix, iy) != full.Surface.At(ix, iy) {
				t.Fatalf("surface (%d,%d) differs: %g vs %g", ix, iy,
					surf.Surface.At(ix, iy), full.Surface.At(ix, iy))
			}
		}
	}

	// The SPICE path honors the flag the same way.
	spiceCfg := surfCfg
	spiceCfg.UseSpice = true
	sres, err := Solve(pm, spiceCfg)
	if err != nil {
		t.Fatal(err)
	}
	for l, g := range sres.Layers {
		if (g != nil) != (l == powerLayer) {
			t.Fatalf("spice path layer %d materialization wrong", l)
		}
	}
}

// TestSolverSeedState checks that seeding the warm-start field makes the
// solve independent of the solver's history: a pooled solver seeded with a
// recorded field reproduces another solver's result bit for bit.
func TestSolverSeedState(t *testing.T) {
	cfg := testConfig(12, 12)
	pmA := geom.NewGrid(12, 12, dieRegion(300))
	pmA.Set(3, 3, 0.005)
	pmB := geom.NewGrid(12, 12, dieRegion(300))
	pmB.Set(8, 8, 0.004)

	// Reference: solve A, record the state, solve B.
	s1, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Solve(pmA); err != nil {
		t.Fatal(err)
	}
	seed := s1.State()
	if seed == nil {
		t.Fatal("State must be non-nil after a solve")
	}
	want, err := s1.Solve(pmB)
	if err != nil {
		t.Fatal(err)
	}

	// A second solver with a different history, seeded before solving B,
	// must reproduce the result exactly.
	s2, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pmOther := geom.NewGrid(12, 12, dieRegion(300))
	pmOther.Set(6, 1, 0.009)
	if _, err := s2.Solve(pmOther); err != nil {
		t.Fatal(err)
	}
	if err := s2.SeedState(seed); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Solve(pmB)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLayerDelta(t, got, want); d != 0 {
		t.Fatalf("seeded solve differs from reference by %g C (want bit-identical)", d)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("seeded solve took %d iterations, reference %d", got.Iterations, want.Iterations)
	}

	if err := s2.SeedState(make([]float64, 3)); err == nil {
		t.Fatal("mismatched seed length must be rejected")
	}
	if s, _ := NewSolver(cfg); s.State() != nil {
		t.Fatal("State before any solve must be nil")
	}
}

// TestSolverReuseAndWarmStart re-solves with one Solver across changing
// power maps and die regions and checks every answer against a fresh
// cold-start solver. It pins the Jacobi preconditioner: with multigrid the
// small test grid converges in one iteration cold or warm, so the
// iteration-count comparison would be vacuous.
func TestSolverReuseAndWarmStart(t *testing.T) {
	cfg := testConfig(12, 12)
	cfg.Tolerance = 1e-11
	cfg.Precond = PrecondJacobi
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}

	coldIters := 0
	for step, tc := range []struct {
		side  float64
		power float64
	}{
		{300, 0.010},
		{300, 0.011}, // same geometry, slightly different power
		{330, 0.011}, // grown die: matrix values must refresh
		{300, 0.010}, // back to the first geometry
	} {
		pm := geom.NewGrid(12, 12, dieRegion(tc.side))
		pm.Fill(tc.power / 4 / 144)
		for iy := 4; iy < 8; iy++ {
			for ix := 4; ix < 8; ix++ {
				pm.Add(ix, iy, tc.power/2/16)
			}
		}
		got, err := s.Solve(pm)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		fresh, err := NewSolver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Solve(pm)
		if err != nil {
			t.Fatalf("step %d fresh: %v", step, err)
		}
		if d := maxLayerDelta(t, got, want); d > 1e-6 {
			t.Fatalf("step %d: reused solver deviates from fresh solver by %g C", step, d)
		}
		if step == 0 {
			coldIters = got.Iterations
		} else if tc.side == 300 && got.Iterations >= coldIters {
			t.Errorf("step %d: warm start took %d iterations, cold start %d", step, got.Iterations, coldIters)
		}
	}
}

// TestSolverWarmStartIdenticalSolveIsFree re-solving the identical problem
// must converge without CG iterations.
func TestSolverWarmStartIdenticalSolveIsFree(t *testing.T) {
	cfg := testConfig(10, 10)
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pm := geom.NewGrid(10, 10, dieRegion(250))
	pm.Set(5, 5, 0.006)
	first, err := s.Solve(pm)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Solve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if second.Iterations != 0 {
		t.Fatalf("identical re-solve took %d iterations, want 0", second.Iterations)
	}
	if d := maxLayerDelta(t, first, second); d != 0 {
		t.Fatalf("identical re-solve changed the answer by %g", d)
	}
	if first.Iterations == 0 {
		t.Fatal("first solve should have done iterative work")
	}
}

func TestSolverRejectsMismatchedPowerMap(t *testing.T) {
	s, err := NewSolver(testConfig(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(geom.NewGrid(7, 8, dieRegion(100))); err == nil {
		t.Fatal("mismatched power-map resolution must fail")
	}
}

func TestNewSolverValidates(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.Stack = nil
	if _, err := NewSolver(cfg); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

// TestSolverZeroPower mirrors TestZeroPowerStaysAtAmbient on the reusable
// solver, including after a powered solve (the warm-start state must not
// leak into the answer).
func TestSolverZeroPower(t *testing.T) {
	cfg := testConfig(6, 6)
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := geom.NewGrid(6, 6, dieRegion(150))
	hot.Set(3, 3, 0.004)
	if _, err := s.Solve(hot); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(geom.NewGrid(6, 6, dieRegion(150)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakRise) > 1e-7 {
		t.Fatalf("zero power after a hot solve must return to ambient, peak rise %g", res.PeakRise)
	}
}
