package thermal

import (
	"math"
	"testing"

	"thermplace/internal/geom"
	"thermplace/internal/spice"
)

func TestGridDims(t *testing.T) {
	cases := []struct {
		nx, ny, f      int
		wantNX, wantNY int
	}{
		{40, 40, 0, 40, 40},
		{40, 40, 1, 40, 40},
		{40, 40, 4, 10, 10},
		{40, 40, 2, 20, 20},
		{41, 40, 2, 21, 20}, // ceil division
		{40, 40, 30, 2, 2},  // clamped to the 2x2 minimum
		{6, 9, 3, 2, 3},
	}
	for _, c := range cases {
		cfg := testConfig(c.nx, c.ny)
		cfg.CoarseFactor = c.f
		nx, ny := cfg.GridDims()
		if nx != c.wantNX || ny != c.wantNY {
			t.Errorf("GridDims(%dx%d, factor %d) = %dx%d, want %dx%d",
				c.nx, c.ny, c.f, nx, ny, c.wantNX, c.wantNY)
		}
	}
}

func TestCoarseFactorConfigEqual(t *testing.T) {
	a := testConfig(40, 40)
	b := a
	b.CoarseFactor = 1
	if !a.Equal(b) {
		t.Fatal("factors 0 and 1 both mean full fidelity and must compare equal")
	}
	b.CoarseFactor = 4
	if a.Equal(b) {
		t.Fatal("an active coarse factor changes the assembled model and must not compare equal")
	}
	if !b.Equal(b) {
		t.Fatal("coarse config must equal itself")
	}
}

func TestCoarseFactorValidates(t *testing.T) {
	cfg := testConfig(8, 8)
	cfg.CoarseFactor = -1
	pm := geom.NewGrid(8, 8, dieRegion(240))
	if _, err := Solve(pm, cfg); err == nil {
		t.Fatal("negative coarse factor must be rejected")
	}
}

// coarseTestPM builds an uneven power map so the restriction is non-trivial.
func coarseTestPM(nx, ny int, region geom.Rect) *geom.Grid {
	pm := geom.NewGrid(nx, ny, region)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			pm.Set(ix, iy, 1e-5*float64(1+(ix*7+iy*3)%5))
		}
	}
	pm.Set(nx/3, ny/3, 0.004) // a hotspot off the grid diagonal
	return pm
}

// TestCoarseSolveIsDownsampledSolve pins the core property of the coarse
// mode: a CoarseFactor solver fed the full-resolution power map produces
// bit-for-bit the result of a plain solver built directly at the coarse
// dims and fed the restricted map. The coarse mode is one model, reachable
// two ways — not an approximation of uncertain provenance.
func TestCoarseSolveIsDownsampledSolve(t *testing.T) {
	region := dieRegion(360)
	fine := coarseTestPM(24, 24, region)

	coarse := testConfig(24, 24)
	coarse.CoarseFactor = 3
	sc, err := NewSolver(coarse)
	if err != nil {
		t.Fatalf("coarse solver: %v", err)
	}
	defer sc.Close()
	got, err := sc.SolveCtx(t.Context(), fine)
	if err != nil {
		t.Fatalf("coarse solve: %v", err)
	}

	// Reference: restrict by hand onto an 8x8 grid and solve at that size.
	restricted := geom.NewGrid(8, 8, region)
	for iy := 0; iy < 24; iy++ {
		for ix := 0; ix < 24; ix++ {
			restricted.Add(ix/3, iy/3, fine.At(ix, iy))
		}
	}
	ref, err := Solve(restricted, testConfig(8, 8))
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}

	if got.Surface.NX != 8 || got.Surface.NY != 8 {
		t.Fatalf("coarse surface is %dx%d, want 8x8", got.Surface.NX, got.Surface.NY)
	}
	if d := maxLayerDelta(t, got, ref); d != 0 {
		t.Fatalf("coarse-mode solve deviates from direct downsampled solve by %g C", d)
	}
	if got.PeakRise != ref.PeakRise {
		t.Fatalf("peak rise %g vs downsampled reference %g", got.PeakRise, ref.PeakRise)
	}

	// A pre-binned coarse map must be accepted and give the same answer.
	sc2, err := NewSolver(coarse)
	if err != nil {
		t.Fatalf("second coarse solver: %v", err)
	}
	defer sc2.Close()
	got2, err := sc2.SolveCtx(t.Context(), restricted)
	if err != nil {
		t.Fatalf("pre-binned solve: %v", err)
	}
	if d := maxLayerDelta(t, got, got2); d != 0 {
		t.Fatalf("pre-binned and restricted solves differ by %g C", d)
	}

	// Any other resolution is still a hard error.
	if _, err := sc.SolveCtx(t.Context(), geom.NewGrid(12, 12, region)); err == nil {
		t.Fatal("mismatched power map must be rejected")
	}
}

// TestCoarseSolveMatchesSpiceOracle checks that the oracle path applies the
// same restriction, so fast path and SPICE stay cross-validatable at low
// fidelity.
func TestCoarseSolveMatchesSpiceOracle(t *testing.T) {
	region := dieRegion(240)
	fine := coarseTestPM(12, 12, region)
	cfg := testConfig(12, 12)
	cfg.CoarseFactor = 3
	cfg.Tolerance = 1e-12

	fast, err := Solve(fine, cfg)
	if err != nil {
		t.Fatalf("fast: %v", err)
	}
	oracle := cfg
	oracle.UseSpice = true
	oracle.Solver = spice.MethodDense
	ref, err := Solve(fine, oracle)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if d := maxLayerDelta(t, fast, ref); d > 1e-6 {
		t.Fatalf("coarse fast path deviates from dense oracle by %g C", d)
	}
}

// TestCoarseSolveApproximatesExact bounds the estimation error the adaptive
// sweep's margin has to cover: smoothing a hotspot over larger cells must
// move the peak rise, but not wildly.
func TestCoarseSolveApproximatesExact(t *testing.T) {
	region := dieRegion(600)
	fine := coarseTestPM(20, 20, region)
	// Real power maps put hotspots over several grid cells (a hot unit spans
	// many standard cells); a patch — unlike a one-cell delta spike — keeps
	// its local density visible at the coarse resolution.
	for iy := 6; iy < 9; iy++ {
		for ix := 6; ix < 9; ix++ {
			fine.Set(ix, iy, 0.0012)
		}
	}
	exact, err := Solve(fine, testConfig(20, 20))
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	cfg := testConfig(20, 20)
	cfg.CoarseFactor = 2
	est, err := Solve(fine, cfg)
	if err != nil {
		t.Fatalf("coarse: %v", err)
	}
	if est.PeakRise <= 0 {
		t.Fatal("coarse estimate lost the rise entirely")
	}
	if rel := math.Abs(est.PeakRise-exact.PeakRise) / exact.PeakRise; rel > 0.35 {
		t.Fatalf("coarse peak rise %g vs exact %g: %.0f%% off, estimation mode useless",
			est.PeakRise, exact.PeakRise, rel*100)
	}
}
