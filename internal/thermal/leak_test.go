package thermal

import (
	"runtime"
	"testing"
	"time"

	"thermplace/internal/geom"
)

// waitGoroutines polls until the goroutine count returns to base, failing
// with a full stack dump if it does not settle.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSolverCloseReleasesGoroutines is the goroutine-leak regression for
// thermal.Solver: repeated build / solve / Close cycles — and one-shot
// thermal.Solve calls, which close their internal solver — must leave the
// goroutine count where it started.
func TestSolverCloseReleasesGoroutines(t *testing.T) {
	cfg := DefaultConfig() // 40x40x9: big enough for a parallel CG pool
	pm := geom.NewGrid(cfg.NX, cfg.NY, geom.Rect{Xlo: 0, Ylo: 0, Xhi: 360, Yhi: 360})
	pm.Fill(0.02 / float64(cfg.NX*cfg.NY))

	base := runtime.NumGoroutine()
	for cycle := 0; cycle < 5; cycle++ {
		s, err := NewSolver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(pm); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(pm); err != nil { // warm re-solve on the pool
			t.Fatal(err)
		}
		s.Close()
	}
	waitGoroutines(t, base)

	// The one-shot path must not leave its internal solver's pool behind.
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := Solve(pm, cfg); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, base)
}
