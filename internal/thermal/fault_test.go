package thermal

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"thermplace/internal/fault"
	"thermplace/internal/geom"
)

// faultTestPower builds the power map used by the robustness tests.
func faultTestPower(cfg Config) *geom.Grid {
	pm := geom.NewGrid(cfg.NX, cfg.NY, geom.Rect{Xlo: 0, Ylo: 0, Xhi: 360, Yhi: 360})
	pm.Fill(0.02 / float64(cfg.NX*cfg.NY))
	// A concentrated hotspot keeps the field non-trivial.
	pm.Values()[cfg.NX/2*cfg.NX+cfg.NX/2] += 0.005
	return pm
}

// surfaceMaxDiff returns the largest absolute surface-temperature difference
// between two results.
func surfaceMaxDiff(a, b *Result) float64 {
	av, bv := a.Surface.Values(), b.Surface.Values()
	m := 0.0
	for i := range av {
		if d := math.Abs(av[i] - bv[i]); d > m {
			m = d
		}
	}
	return m
}

// referenceSolve solves the same system on the plain Jacobi path, as the
// oracle for the degraded results.
func referenceSolve(t *testing.T, cfg Config, pm *geom.Grid) *Result {
	t.Helper()
	cfg.Precond = PrecondJacobi
	cfg.Stats, cfg.Inject = nil, nil
	res, err := Solve(pm, cfg)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	return res
}

// TestSolverDegradesOnMGSetupFailure asserts the graceful-degradation path
// for a multigrid setup failure: the solve completes on the Jacobi fallback,
// within tolerance of a clean Jacobi solve, and the event is counted.
func TestSolverDegradesOnMGSetupFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stats = &fault.Stats{}
	cfg.Inject = &fault.Injector{FailMGSetup: true}
	pm := faultTestPower(cfg)

	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.MGLevels() == 0 {
		t.Fatal("solver did not build a multigrid hierarchy to degrade from")
	}
	res, err := s.Solve(pm)
	if err != nil {
		t.Fatalf("degraded solve failed instead of falling back: %v", err)
	}
	if s.MGLevels() != 0 {
		t.Fatal("solver kept the multigrid preconditioner after a setup failure")
	}
	snap := cfg.Stats.Snapshot()
	if snap.MGSetupFailures == 0 {
		t.Fatal("MG setup failure not recorded in fault.Stats")
	}
	want := referenceSolve(t, cfg, pm)
	if d := surfaceMaxDiff(res, want); d > 1e-6 {
		t.Fatalf("degraded solve differs from Jacobi reference by %g C (> 1e-6)", d)
	}

	// The degradation is permanent but harmless: the next solve still works.
	if _, err := s.Solve(pm); err != nil {
		t.Fatalf("solve after degradation: %v", err)
	}
}

// TestSolverRetriesOnInjectedNonConvergence asserts the retry path: an
// injected non-convergence of the multigrid-preconditioned solve is retried
// once on Jacobi with a raised budget, succeeds, and is counted.
func TestSolverRetriesOnInjectedNonConvergence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stats = &fault.Stats{}
	cfg.Inject = &fault.Injector{FailCGSolveN: 1}
	pm := faultTestPower(cfg)

	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Solve(pm)
	if err != nil {
		t.Fatalf("retry path failed: %v", err)
	}
	snap := cfg.Stats.Snapshot()
	if snap.SolveRetries != 1 {
		t.Fatalf("SolveRetries = %d, want 1", snap.SolveRetries)
	}
	want := referenceSolve(t, cfg, pm)
	if d := surfaceMaxDiff(res, want); d > 1e-6 {
		t.Fatalf("retried solve differs from Jacobi reference by %g C (> 1e-6)", d)
	}

	// Solve 2 is not probed: the multigrid preconditioner is restored and
	// the solve is clean.
	if _, err := s.Solve(pm); err != nil {
		t.Fatalf("solve after retry: %v", err)
	}
	if s.MGLevels() == 0 {
		t.Fatal("retry permanently dropped the multigrid preconditioner")
	}
	if got := cfg.Stats.Snapshot().SolveRetries; got != 1 {
		t.Fatalf("clean solve was counted as a retry: SolveRetries = %d", got)
	}
}

// TestSolverSurfacesNotConverged pins the typed error when both the
// preconditioned attempt and the Jacobi retry fail: the caller gets an
// extractable *fault.ErrNotConverged, and the solver recovers afterwards.
func TestSolverSurfacesNotConverged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stats = &fault.Stats{}
	cfg.Inject = &fault.Injector{FailCGSolveN: 1, FailRetry: true}
	pm := faultTestPower(cfg)

	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, serr := s.Solve(pm)
	if serr == nil {
		t.Fatal("doubly-failed solve reported success")
	}
	var nc *fault.ErrNotConverged
	if !errors.As(serr, &nc) {
		t.Fatalf("non-convergence not extractable: %v", serr)
	}
	if nc.Iters <= 0 || !math.IsInf(nc.Residual, 1) {
		t.Fatalf("injected ErrNotConverged fields lost: iters=%d residual=%g", nc.Iters, nc.Residual)
	}
	if got := cfg.Stats.Snapshot().SolveRetries; got != 1 {
		t.Fatalf("SolveRetries = %d, want 1", got)
	}

	// The failure does not poison the solver: solve 2 is clean.
	if _, err := s.Solve(pm); err != nil {
		t.Fatalf("solve after reported non-convergence: %v", err)
	}
}

// TestSolverPanicContained asserts that an injected panic inside a pool task
// surfaces as a located typed error, not a crash, and that the solver, its
// pool and the goroutine count all survive.
func TestSolverPanicContained(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stats = &fault.Stats{}
	cfg.Inject = &fault.Injector{PanicCGSolveN: 1}
	pm := faultTestPower(cfg)

	base := runtime.NumGoroutine()
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, serr := s.Solve(pm)
	var pe *fault.ErrPanic
	if !errors.As(serr, &pe) {
		t.Fatalf("injected panic not contained as *fault.ErrPanic: %v", serr)
	}
	if pe.Where == "" || len(pe.Stack) == 0 {
		t.Fatalf("contained panic lost its location: %+v", pe)
	}
	if cfg.Stats.Snapshot().PanicsContained == 0 {
		t.Fatal("contained panic not recorded in fault.Stats")
	}

	// The solver keeps working after the contained panic.
	if _, err := s.Solve(pm); err != nil {
		t.Fatalf("solve after contained panic: %v", err)
	}
	s.Close()
	waitGoroutines(t, base)
}

// TestSolverCancelMidSolve asserts cancellation of a stalled solve: the
// injected stall parks the solve until the context fires, the caller gets a
// fault.ErrCanceled-matching error, the cancellation is counted, and no
// goroutines leak after Close.
func TestSolverCancelMidSolve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stats = &fault.Stats{}
	cfg.Inject = &fault.Injector{StallCGSolveN: 1}
	pm := faultTestPower(cfg)

	base := runtime.NumGoroutine()
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	_, serr := s.SolveCtx(ctx, pm)
	if !errors.Is(serr, fault.ErrCanceled) {
		t.Fatalf("canceled solve did not report fault.ErrCanceled: %v", serr)
	}
	if cfg.Stats.Snapshot().Canceled == 0 {
		t.Fatal("cancellation not recorded in fault.Stats")
	}

	// Solve 2 is not stalled and runs with a live context.
	if _, err := s.SolveCtx(context.Background(), pm); err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
	s.Close()
	waitGoroutines(t, base)
}

// TestSolveCtxBitIdentical asserts that a context that never fires changes
// nothing: every float of the result matches the plain Solve path exactly.
func TestSolveCtxBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	pm := faultTestPower(cfg)

	a, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for round := 0; round < 2; round++ {
		ra, err := a.Solve(pm)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.SolveCtx(ctx, pm)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Iterations != rb.Iterations || ra.SolverResidual != rb.SolverResidual {
			t.Fatalf("round %d: iteration trace differs: %d/%g vs %d/%g",
				round, ra.Iterations, ra.SolverResidual, rb.Iterations, rb.SolverResidual)
		}
		if d := surfaceMaxDiff(ra, rb); d != 0 {
			t.Fatalf("round %d: SolveCtx differs from Solve by %g C", round, d)
		}
	}
}
