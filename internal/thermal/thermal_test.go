package thermal

import (
	"math"
	"testing"

	"thermplace/internal/geom"
	"thermplace/internal/spice"
)

// testConfig returns a reduced configuration (coarser grid, thinner stack)
// that keeps unit tests fast while exercising the same code paths.
func testConfig(nx, ny int) Config {
	return Config{
		NX: nx, NY: ny,
		Stack: Stack{
			{Name: "si", Thickness: 40, Conductivity: 110},
			{Name: "active", Thickness: 5, Conductivity: 80, Power: true},
			{Name: "beol", Thickness: 10, Conductivity: 2},
		},
		AmbientC: 25,
		HBottom:  1.2e6,
		HTop:     2e4,
		HSide:    1e3,
		Solver:   spice.MethodCG,
	}
}

// dieRegion returns a square die region of the given side in um.
func dieRegion(side float64) geom.Rect { return geom.Rect{Xlo: 0, Ylo: 0, Xhi: side, Yhi: side} }

func TestConfigValidation(t *testing.T) {
	pm := geom.NewGrid(4, 4, dieRegion(100))
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"tiny grid", func(c *Config) { c.NX = 1 }},
		{"empty stack", func(c *Config) { c.Stack = nil }},
		{"no power layer", func(c *Config) {
			c.Stack = Stack{{Name: "x", Thickness: 10, Conductivity: 100}}
		}},
		{"bad layer", func(c *Config) { c.Stack[0].Thickness = 0 }},
		{"no ambient path", func(c *Config) { c.HBottom, c.HTop, c.HSide = 0, 0, 0 }},
	}
	for _, cse := range cases {
		cfg := testConfig(4, 4)
		cse.mut(&cfg)
		if _, err := Solve(pm, cfg); err == nil {
			t.Errorf("%s: expected error", cse.name)
		}
	}
	// Resolution mismatch.
	if _, err := Solve(geom.NewGrid(3, 3, dieRegion(100)), testConfig(4, 4)); err == nil {
		t.Error("power map resolution mismatch must fail")
	}
}

func TestDefaultStackAndConfig(t *testing.T) {
	s := DefaultStack()
	if len(s) != 9 {
		t.Fatalf("default stack has %d layers, the paper uses 9", len(s))
	}
	if s.PowerLayer() < 0 {
		t.Fatal("default stack must have a power layer")
	}
	if s.TotalThickness() <= 0 {
		t.Fatal("stack thickness must be positive")
	}
	cfg := DefaultConfig()
	if cfg.NX != 40 || cfg.NY != 40 {
		t.Fatalf("default grid is %dx%d, the paper uses 40x40", cfg.NX, cfg.NY)
	}
	if err := cfg.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestUniformPowerBasicPhysics(t *testing.T) {
	cfg := testConfig(8, 8)
	pm := geom.NewGrid(8, 8, dieRegion(200))
	totalPower := 0.02 // 20 mW
	perCell := totalPower / 64
	pm.Fill(perCell)
	res, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Everything must be at or above ambient.
	minT, _, _ := res.Surface.Min()
	if minT < cfg.AmbientC-1e-6 {
		t.Fatalf("surface temperature %g below ambient %g", minT, cfg.AmbientC)
	}
	if res.PeakRise <= 0 {
		t.Fatal("peak rise must be positive with non-zero power")
	}
	if res.PeakRise > 200 {
		t.Fatalf("peak rise %g C implausibly large", res.PeakRise)
	}
	// Symmetric uniform heating on a symmetric die: the hottest point is in
	// the interior (cooling through the sides makes the boundary cooler).
	_, ix, iy := res.Surface.Max()
	if ix == 0 || ix == 7 || iy == 0 || iy == 7 {
		t.Errorf("uniform heating peak at boundary cell (%d,%d)", ix, iy)
	}
	// Symmetry: temperature at mirrored cells must match.
	for iy := 0; iy < 8; iy++ {
		for ix := 0; ix < 8; ix++ {
			a := res.Surface.At(ix, iy)
			b := res.Surface.At(7-ix, iy)
			if math.Abs(a-b) > 1e-3 {
				t.Fatalf("x-mirror symmetry broken at (%d,%d): %g vs %g", ix, iy, a, b)
			}
		}
	}
	if res.MeanC() <= cfg.AmbientC {
		t.Fatal("mean temperature must exceed ambient")
	}
	// RiseMap is Surface - ambient.
	rise := res.RiseMap()
	pk, _, _ := rise.Max()
	if math.Abs(pk-res.PeakRise) > 1e-9 {
		t.Fatalf("RiseMap peak %g != PeakRise %g", pk, res.PeakRise)
	}
}

func TestLinearityInPower(t *testing.T) {
	cfg := testConfig(6, 6)
	pm := geom.NewGrid(6, 6, dieRegion(150))
	pm.Set(3, 3, 0.005)
	pm.Set(2, 3, 0.003)
	r1, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pm2 := pm.Clone().Scale(2)
	r2, err := Solve(pm2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.PeakRise-2*r1.PeakRise) > 1e-5*r1.PeakRise {
		t.Fatalf("peak rise not linear in power: %g vs 2*%g", r2.PeakRise, r1.PeakRise)
	}
}

func TestHotspotLocalization(t *testing.T) {
	cfg := testConfig(10, 10)
	pm := geom.NewGrid(10, 10, dieRegion(300))
	// One hot cell in the lower-left quadrant.
	pm.Set(2, 2, 0.01)
	res, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ix, iy := res.Surface.Max()
	if ix != 2 || iy != 2 {
		t.Fatalf("peak at (%d,%d), want at the heated cell (2,2)", ix, iy)
	}
	// Temperature must decay with distance from the hotspot.
	near := res.Surface.At(3, 2)
	far := res.Surface.At(9, 9)
	if !(res.Surface.At(2, 2) > near && near > far) {
		t.Fatalf("no monotone decay: hot=%g near=%g far=%g", res.Surface.At(2, 2), near, far)
	}
	if res.GradientC <= 0 {
		t.Fatal("hotspot must create a spatial gradient")
	}
}

func TestLargerDieLowersPeak(t *testing.T) {
	// The core mechanism the paper exploits: same total power spread over a
	// larger area gives a lower peak temperature.
	cfg := testConfig(8, 8)
	total := 0.03
	small := geom.NewGrid(8, 8, dieRegion(200))
	small.Fill(total / 64)
	large := geom.NewGrid(8, 8, dieRegion(240)) // +44% area
	large.Fill(total / 64)
	rs, err := Solve(small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Solve(large, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rl.PeakRise >= rs.PeakRise {
		t.Fatalf("larger die must be cooler: %g vs %g", rl.PeakRise, rs.PeakRise)
	}
	reduction := (rs.PeakRise - rl.PeakRise) / rs.PeakRise
	if reduction < 0.05 || reduction > 0.60 {
		t.Fatalf("44%% area increase gives %.1f%% reduction; expected a sizeable but sub-proportional effect", reduction*100)
	}
}

func TestLocalDensityMattersNotJustTotalPower(t *testing.T) {
	// Two maps with identical total power: one concentrates it in a 2x2
	// patch, the other spreads it over a 4x4 patch. The concentrated one
	// must run hotter — this is what makes hotspot-targeted whitespace more
	// effective than blind spreading.
	cfg := testConfig(12, 12)
	region := dieRegion(300)
	total := 0.02
	tight := geom.NewGrid(12, 12, region)
	for iy := 5; iy < 7; iy++ {
		for ix := 5; ix < 7; ix++ {
			tight.Set(ix, iy, total/4)
		}
	}
	spread := geom.NewGrid(12, 12, region)
	for iy := 4; iy < 8; iy++ {
		for ix := 4; ix < 8; ix++ {
			spread.Set(ix, iy, total/16)
		}
	}
	rt, err := Solve(tight, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := Solve(spread, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.PeakRise <= rsp.PeakRise {
		t.Fatalf("concentrated power must be hotter: tight %g vs spread %g", rt.PeakRise, rsp.PeakRise)
	}
}

func TestSolversAgreeOnThermalNetwork(t *testing.T) {
	cfg := testConfig(5, 5)
	pm := geom.NewGrid(5, 5, dieRegion(120))
	pm.Set(1, 1, 0.004)
	pm.Set(3, 3, 0.002)

	cfgDense := cfg
	cfgDense.Solver = spice.MethodDense
	ref, err := Solve(pm, cfgDense)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []spice.Method{spice.MethodCG, spice.MethodGaussSeidel} {
		c := cfg
		c.Solver = m
		c.Tolerance = 1e-11
		got, err := Solve(pm, c)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for iy := 0; iy < 5; iy++ {
			for ix := 0; ix < 5; ix++ {
				a, b := got.Surface.At(ix, iy), ref.Surface.At(ix, iy)
				if math.Abs(a-b) > 1e-4 {
					t.Fatalf("%v: cell (%d,%d) = %g, dense reference %g", m, ix, iy, a, b)
				}
			}
		}
	}
}

func TestLayersOrderedByDistanceFromSink(t *testing.T) {
	// With the main heat path through the bottom, the power layer must be
	// at least as hot as the bottom layer everywhere.
	cfg := testConfig(6, 6)
	pm := geom.NewGrid(6, 6, dieRegion(150))
	pm.Fill(0.0003)
	res, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != len(cfg.Stack) {
		t.Fatalf("got %d layer maps, want %d", len(res.Layers), len(cfg.Stack))
	}
	bottom := res.Layers[0]
	active := res.Layers[cfg.Stack.PowerLayer()]
	for iy := 0; iy < 6; iy++ {
		for ix := 0; ix < 6; ix++ {
			if active.At(ix, iy) < bottom.At(ix, iy)-1e-9 {
				t.Fatalf("active layer cooler than heat-sink layer at (%d,%d)", ix, iy)
			}
		}
	}
}

func TestBuildNetworkStructure(t *testing.T) {
	cfg := testConfig(4, 4)
	pm := geom.NewGrid(4, 4, dieRegion(100))
	pm.Set(0, 0, 0.001)
	c, err := BuildNetwork(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node count: 4*4*3 thermal nodes + ambient + ground.
	if got, want := c.NumNodes(), 4*4*3+2; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if len(c.CurrentSources()) != 1 {
		t.Fatalf("one powered cell must produce one current source, got %d", len(c.CurrentSources()))
	}
	if len(c.VoltageSources()) != 1 {
		t.Fatalf("expected a single ambient source, got %d", len(c.VoltageSources()))
	}
	if len(c.Resistors()) == 0 {
		t.Fatal("no resistors built")
	}
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	cfg := testConfig(5, 5)
	pm := geom.NewGrid(5, 5, dieRegion(120))
	res, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakRise) > 1e-9 {
		t.Fatalf("zero power must give zero rise, got %g", res.PeakRise)
	}
	if math.Abs(res.MeanC()-cfg.AmbientC) > 1e-9 {
		t.Fatalf("zero power must sit at ambient, mean %g", res.MeanC())
	}
}

func TestPaperScaleGridSolves(t *testing.T) {
	if testing.Short() {
		t.Skip("full 40x40x9 solve skipped in -short mode")
	}
	cfg := DefaultConfig()
	pm := geom.NewGrid(cfg.NX, cfg.NY, dieRegion(360))
	// Roughly the benchmark's power: ~25 mW with a hot block.
	pm.Fill(0.012 / float64(cfg.NX*cfg.NY))
	for iy := 8; iy < 16; iy++ {
		for ix := 8; ix < 16; ix++ {
			pm.Add(ix, iy, 0.010/64)
		}
	}
	res, err := Solve(pm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports peak temperatures from a few degrees to 25 degrees
	// above ambient across its configurations; the calibrated model must
	// land in that order of magnitude.
	if res.PeakRise < 1 || res.PeakRise > 80 {
		t.Fatalf("peak rise %g C outside the plausible band for the benchmark", res.PeakRise)
	}
	// The hotspot must appear over the hot block.
	_, ix, iy := res.Surface.Max()
	if ix < 7 || ix > 17 || iy < 7 || iy > 17 {
		t.Fatalf("peak at (%d,%d), want inside the heated block", ix, iy)
	}
	t.Logf("40x40x9 solve: peak rise %.2f C, %d CG iterations", res.PeakRise, res.Iterations)
}
