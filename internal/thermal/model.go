package thermal

import (
	"context"
	"fmt"

	"thermplace/internal/fault"
	"thermplace/internal/geom"
	"thermplace/internal/sparse"
	"thermplace/internal/spice"
)

// PrecondKind selects the preconditioner of the structured-grid CG solver.
type PrecondKind int

const (
	// PrecondAuto picks the default: the geometric multigrid W-cycle, whose
	// iteration count is essentially independent of the grid resolution.
	PrecondAuto PrecondKind = iota
	// PrecondMG forces the multigrid preconditioner.
	PrecondMG
	// PrecondJacobi falls back to the diagonal preconditioner (the pre-MG
	// behaviour); its iteration count grows with the grid resolution.
	PrecondJacobi
)

// ParsePrecond maps a flag-style name (auto, mg, jacobi; "" means auto)
// onto a PrecondKind. The commands exposing -precond share it.
func ParsePrecond(name string) (PrecondKind, error) {
	switch name {
	case "auto", "":
		return PrecondAuto, nil
	case "mg":
		return PrecondMG, nil
	case "jacobi":
		return PrecondJacobi, nil
	}
	return 0, fmt.Errorf("unknown preconditioner %q (want auto, mg or jacobi)", name)
}

// Config describes one thermal analysis setup.
type Config struct {
	// NX and NY are the lateral grid resolution. The paper uses 40 x 40,
	// which puts fewer than ten standard cells under each measuring point.
	NX, NY int
	// CoarseFactor, when 2 or larger, downsamples the lateral resolution by
	// that factor: the operator is assembled and solved directly on a
	// ceil(NX/f) x ceil(NY/f) grid (never below 2x2). The aggregation is the
	// same piecewise-constant map the multigrid hierarchy coarsens with
	// (sparse.Aggregate), so at a power-of-two factor the coarse grid is
	// exactly an MG level of the full-resolution solve. Power maps may be
	// supplied either at the full NX x NY resolution — the solver restricts
	// them (sparse.Restrict, power-conserving) — or pre-binned at the coarse
	// dims. This is the cheap estimation mode of the adaptive sweep's triage
	// phase; values 0 and 1 mean full resolution.
	CoarseFactor int
	// Stack is the vertical layer stack.
	Stack Stack
	// AmbientC is the ambient temperature in degrees Celsius.
	AmbientC float64
	// HBottom, HTop and HSide are the effective heat-transfer coefficients
	// (W/(m^2*K)) from the bottom layer, top layer and lateral faces of the
	// model to ambient. They lump the package, heat sink and board paths.
	HBottom, HTop, HSide float64
	// Solver selects the linear solver used on the thermal network.
	Solver spice.Method
	// Tolerance is the iterative-solver relative residual target
	// (0 = solver default).
	Tolerance float64
	// Precond selects the fast-path CG preconditioner; the zero value picks
	// multigrid. It has no effect on the SPICE path.
	Precond PrecondKind
	// SurfaceOnly skips materializing the temperature maps of the
	// non-power layers: Result.Layers keeps only the power-injection layer
	// (the entry Surface aliases) and leaves the rest nil. The sweep flow
	// only ever reads Surface, so it sets this to avoid copying NL-1 grids
	// per solve.
	SurfaceOnly bool
	// UseSpice forces the legacy path that builds a string-named SPICE
	// circuit and solves it with package spice. It exists as a
	// cross-validation oracle for the structured-grid fast path (the
	// default whenever Solver is MethodCG) and for SPICE deck export
	// workflows; it is roughly an order of magnitude slower.
	UseSpice bool
	// Stats, when non-nil, receives the solver's robustness counters:
	// multigrid setup failures degraded to Jacobi, non-converged solves
	// retried on the fallback, contained panics, canceled solves. The flow
	// wires its own per-flow Stats into every pooled solver.
	Stats *fault.Stats
	// Inject, when non-nil, arms the deterministic fault-injection probe
	// points of package fault on this solver's solves. Test wiring only;
	// set it before the first solve.
	Inject *fault.Injector
}

// FastPath reports whether the configuration is served by the
// structured-grid CSR solver instead of the SPICE-circuit path. The
// Gauss-Seidel and dense oracle methods always go through package spice.
func (cfg Config) FastPath() bool { return !cfg.UseSpice && cfg.Solver == spice.MethodCG }

// coarseFactor returns the normalized downsampling factor: 1 for the full
// resolution (CoarseFactor 0 or 1), the factor itself otherwise.
func (cfg Config) coarseFactor() int {
	if cfg.CoarseFactor < 2 {
		return 1
	}
	return cfg.CoarseFactor
}

// GridDims returns the lateral resolution the system is actually assembled
// and solved at: NX x NY at full fidelity, ceil(NX/f) x ceil(NY/f) (clamped
// to at least 2x2) with CoarseFactor f. Everything downstream of the
// configuration — matrix assembly, the SPICE oracle, result maps — uses
// these dims, so a coarse solve is simply a solve of a smaller model over
// the same physical region.
func (cfg Config) GridDims() (nx, ny int) {
	f := cfg.coarseFactor()
	nx = (cfg.NX + f - 1) / f
	ny = (cfg.NY + f - 1) / f
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	return nx, ny
}

// Equal reports whether two configurations describe the same thermal model
// and solver setup; package flow uses it to decide whether a cached Solver
// can be reused. The Stats and Inject wiring is deliberately ignored: both
// are observability/test attachments the owner re-applies identically to
// every solver it builds, not part of the model.
func (cfg Config) Equal(o Config) bool {
	if cfg.NX != o.NX || cfg.NY != o.NY ||
		cfg.coarseFactor() != o.coarseFactor() ||
		cfg.AmbientC != o.AmbientC ||
		cfg.HBottom != o.HBottom || cfg.HTop != o.HTop || cfg.HSide != o.HSide ||
		cfg.Solver != o.Solver || cfg.Tolerance != o.Tolerance ||
		cfg.Precond != o.Precond || cfg.SurfaceOnly != o.SurfaceOnly ||
		cfg.UseSpice != o.UseSpice ||
		len(cfg.Stack) != len(o.Stack) {
		return false
	}
	for i, l := range cfg.Stack {
		if l != o.Stack[i] {
			return false
		}
	}
	return true
}

// DefaultConfig returns the configuration used throughout the experiments:
// the paper's 40 x 40 x 9 grid, 25 C ambient and a package path calibrated
// so the synthetic benchmark sits a few degrees to a few tens of degrees
// above ambient, as reported in the paper.
func DefaultConfig() Config {
	return Config{
		NX:       40,
		NY:       40,
		Stack:    DefaultStack(),
		AmbientC: 25.0,
		HBottom:  1.2e6,
		HTop:     2.0e4,
		HSide:    1.0e3,
		Solver:   spice.MethodCG,
	}
}

// Result is the outcome of a thermal analysis.
type Result struct {
	// Surface is the temperature map (degrees C) of the power-injection
	// layer on the NX x NY grid: the paper's "thermal profile".
	Surface *geom.Grid
	// Layers holds the temperature map of every layer, bottom to top. With
	// Config.SurfaceOnly only the power-injection layer is materialized;
	// the other entries are nil.
	Layers []*geom.Grid
	// AmbientC echoes the ambient temperature of the analysis.
	AmbientC float64
	// PeakC is the maximum temperature anywhere in the power layer.
	PeakC float64
	// PeakRise is PeakC - AmbientC, the quantity whose reduction the paper
	// reports.
	PeakRise float64
	// GradientC is the maximum temperature difference between adjacent
	// cells of the surface map (a spatial-gradient figure of merit).
	GradientC float64
	// Iterations and SolverResidual report the linear-solve effort.
	Iterations     int
	SolverResidual float64
}

// validate checks the configuration for obvious mistakes.
func (cfg Config) validate() error {
	if cfg.NX <= 1 || cfg.NY <= 1 {
		return fmt.Errorf("thermal: grid must be at least 2x2, got %dx%d", cfg.NX, cfg.NY)
	}
	if cfg.CoarseFactor < 0 {
		return fmt.Errorf("thermal: negative coarse factor %d", cfg.CoarseFactor)
	}
	if len(cfg.Stack) == 0 {
		return fmt.Errorf("thermal: empty layer stack")
	}
	if cfg.Stack.PowerLayer() < 0 {
		return fmt.Errorf("thermal: no power-injection layer in stack")
	}
	for _, l := range cfg.Stack {
		if l.Thickness <= 0 || l.Conductivity <= 0 {
			return fmt.Errorf("thermal: layer %q must have positive thickness and conductivity", l.Name)
		}
	}
	if cfg.HBottom <= 0 && cfg.HTop <= 0 && cfg.HSide <= 0 {
		return fmt.Errorf("thermal: no heat path to ambient (all heat-transfer coefficients zero)")
	}
	return nil
}

// nodeName returns the network node of thermal cell (ix, iy) in layer l.
func nodeName(l, ix, iy int) string { return fmt.Sprintf("t%d_%d_%d", l, ix, iy) }

const (
	metersPerUm = 1e-6
	ambientNode = "amb"
)

// coarsenPowerMap resolves a power map against the configuration's
// effective dims: at full fidelity — or when the caller pre-binned the map
// at the coarse dims — the map is returned as is; a full-resolution map
// under an active CoarseFactor is restricted onto the coarse grid by
// aggregate summation (power-conserving, fine-index order, the same
// piecewise-constant operator the MG hierarchy restricts with). Any other
// resolution is an error.
func coarsenPowerMap(powerMap *geom.Grid, cfg Config) (*geom.Grid, error) {
	nx, ny := cfg.GridDims()
	if powerMap.NX == nx && powerMap.NY == ny {
		return powerMap, nil
	}
	if powerMap.NX != cfg.NX || powerMap.NY != cfg.NY {
		return nil, fmt.Errorf("thermal: power map resolution %dx%d matches neither config %dx%d nor its coarse grid %dx%d",
			powerMap.NX, powerMap.NY, cfg.NX, cfg.NY, nx, ny)
	}
	out := geom.NewGrid(nx, ny, powerMap.Region)
	sparse.Restrict(powerMap.Values(), sparse.Aggregate(cfg.NX, cfg.NY, 1, nx, ny), out.Values())
	return out, nil
}

// BuildNetwork constructs the steady-state resistive thermal network for the
// given power map. The power map must cover the die area (its Region) and
// hold watts per grid cell; its resolution must match cfg.NX x cfg.NY (or,
// with an active CoarseFactor, may already be binned at cfg.GridDims()).
func BuildNetwork(powerMap *geom.Grid, cfg Config) (*spice.Circuit, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	powerMap, err := coarsenPowerMap(powerMap, cfg)
	if err != nil {
		return nil, err
	}
	nx, ny := powerMap.NX, powerMap.NY
	c := spice.NewCircuit()
	if err := c.AddVoltageSource("amb", ambientNode, cfg.AmbientC); err != nil {
		return nil, err
	}

	dx := powerMap.CellW() * metersPerUm
	dy := powerMap.CellH() * metersPerUm
	cellArea := dx * dy

	rname := 0
	addR := func(a, b string, ohms float64) error {
		rname++
		return c.AddResistor(fmt.Sprintf("r%d", rname), a, b, ohms)
	}

	powerLayer := cfg.Stack.PowerLayer()
	iname := 0

	for l, layer := range cfg.Stack {
		dz := layer.Thickness * metersPerUm
		k := layer.Conductivity
		// Lateral resistances within the layer: R = dx / (k * dy * dz).
		rLatX := dx / (k * dy * dz)
		rLatY := dy / (k * dx * dz)
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				n := nodeName(l, ix, iy)
				if ix+1 < nx {
					if err := addR(n, nodeName(l, ix+1, iy), rLatX); err != nil {
						return nil, err
					}
				}
				if iy+1 < ny {
					if err := addR(n, nodeName(l, ix, iy+1), rLatY); err != nil {
						return nil, err
					}
				}
				// Vertical resistance to the layer above: two half-layer
				// resistances in series.
				if l+1 < len(cfg.Stack) {
					up := cfg.Stack[l+1]
					rVert := (dz/2)/(k*cellArea) + (up.Thickness*metersPerUm/2)/(up.Conductivity*cellArea)
					if err := addR(n, nodeName(l+1, ix, iy), rVert); err != nil {
						return nil, err
					}
				}
				// Ambient boundaries.
				if l == 0 && cfg.HBottom > 0 {
					r := (dz/2)/(k*cellArea) + 1/(cfg.HBottom*cellArea)
					if err := addR(n, ambientNode, r); err != nil {
						return nil, err
					}
				}
				if l == len(cfg.Stack)-1 && cfg.HTop > 0 {
					r := (dz/2)/(k*cellArea) + 1/(cfg.HTop*cellArea)
					if err := addR(n, ambientNode, r); err != nil {
						return nil, err
					}
				}
				if cfg.HSide > 0 && (ix == 0 || ix == nx-1 || iy == 0 || iy == ny-1) {
					// Side face area differs for x and y faces; use the
					// matching one per exposed face.
					if ix == 0 || ix == nx-1 {
						faceArea := dy * dz
						r := (dx/2)/(k*faceArea) + 1/(cfg.HSide*faceArea)
						if err := addR(n, ambientNode, r); err != nil {
							return nil, err
						}
					}
					if iy == 0 || iy == ny-1 {
						faceArea := dx * dz
						r := (dy/2)/(k*faceArea) + 1/(cfg.HSide*faceArea)
						if err := addR(n, ambientNode, r); err != nil {
							return nil, err
						}
					}
				}
				// Power injection.
				if l == powerLayer {
					if p := powerMap.At(ix, iy); p != 0 {
						iname++
						if err := c.AddCurrentSource(fmt.Sprintf("p%d", iname), spice.Ground, n, p); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return c, nil
}

// Solve runs the full analysis: assemble the steady-state system, solve it,
// and collect the per-layer temperature maps and summary metrics.
//
// The default route is the structured-grid fast path (see Solver), which
// assembles integer-indexed CSR directly from the configuration. Callers
// that solve repeatedly should hold a Solver themselves to also reuse the
// assembled structure and warm-start between solves; this function builds a
// fresh one per call. The legacy SPICE-circuit path serves as the oracle
// when cfg.UseSpice is set or a non-CG method is selected.
func Solve(powerMap *geom.Grid, cfg Config) (*Result, error) {
	return SolveCtx(context.Background(), powerMap, cfg)
}

// SolveCtx is Solve with cancellation. On the structured-grid fast path the
// context is checked per CG iteration and per multigrid cycle; the SPICE
// oracle path only checks before starting (its dense factorizations are not
// interruptible).
func SolveCtx(ctx context.Context, powerMap *geom.Grid, cfg Config) (*Result, error) {
	if cfg.FastPath() {
		s, err := NewSolver(cfg)
		if err != nil {
			return nil, err
		}
		// The solver is one-shot here: release its worker pool rather than
		// leaving parked goroutines behind.
		defer s.Close()
		return s.SolveCtx(ctx, powerMap) // reports power-map resolution mismatches
	}
	if err := ctx.Err(); err != nil {
		cfg.Stats.AddCanceled()
		return nil, fmt.Errorf("thermal: spice path: %w", fault.Canceled(err))
	}
	return solveSpice(powerMap, cfg)
}

// solveSpice is the legacy oracle path: build the named-node resistive
// circuit and solve it with package spice.
func solveSpice(powerMap *geom.Grid, cfg Config) (*Result, error) {
	circuit, err := BuildNetwork(powerMap, cfg)
	if err != nil {
		return nil, err
	}
	sol, err := circuit.Solve(spice.SolveOptions{Method: cfg.Solver, Tolerance: cfg.Tolerance})
	if err != nil {
		return nil, fmt.Errorf("thermal: solving network: %w", err)
	}
	res := &Result{
		AmbientC:       cfg.AmbientC,
		Iterations:     sol.Iterations,
		SolverResidual: sol.Residual,
	}
	nx, ny := cfg.GridDims()
	powerLayer := cfg.Stack.PowerLayer()
	res.Layers = make([]*geom.Grid, len(cfg.Stack))
	for l := range cfg.Stack {
		if cfg.SurfaceOnly && l != powerLayer {
			continue
		}
		g := geom.NewGrid(nx, ny, powerMap.Region)
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				g.Set(ix, iy, sol.Voltages[nodeName(l, ix, iy)])
			}
		}
		res.Layers[l] = g
	}
	res.Surface = res.Layers[powerLayer]
	res.PeakC, _, _ = res.Surface.Max()
	res.PeakRise = res.PeakC - cfg.AmbientC
	res.GradientC = res.Surface.Gradient()
	return res, nil
}

// RiseMap returns the surface temperature rise above ambient as a grid.
func (r *Result) RiseMap() *geom.Grid {
	g := r.Surface.Clone()
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			g.Set(ix, iy, g.At(ix, iy)-r.AmbientC)
		}
	}
	return g
}

// MeanC returns the average surface temperature.
func (r *Result) MeanC() float64 { return r.Surface.Mean() }
