// Package thermal implements the on-chip thermal model of the paper: the
// die and its package are meshed into a three-dimensional grid of thermal
// cells (40 x 40 in x/y and 9 layers in z by default), each cell is replaced
// by the equivalent resistive model of Fourier heat conduction, boundary
// cells are tied to the ambient temperature through package/heat-sink
// resistances, the per-cell power consumption is injected as a current
// source, and the resulting resistive network is solved at the steady state
// (the thermal capacitances drop out) by the SPICE-substitute in package
// spice. Node voltages are node temperatures.
package thermal

// Layer is one z-slice of the thermal stack.
type Layer struct {
	// Name describes the layer ("bulk-silicon", "metal-stack", ...).
	Name string
	// Thickness is the layer thickness in micrometres.
	Thickness float64
	// Conductivity is the thermal conductivity in W/(m*K).
	Conductivity float64
	// Power marks the layer into which the cell power map is injected
	// (the active/device layer). Exactly one layer must have Power set.
	Power bool
}

// Stack is the ordered list of layers from the bottom of the model (heat
// sink side) to the top (package mold side).
type Stack []Layer

// PowerLayer returns the index of the power-injection layer, or -1.
func (s Stack) PowerLayer() int {
	for i, l := range s {
		if l.Power {
			return i
		}
	}
	return -1
}

// TotalThickness returns the stack thickness in micrometres.
func (s Stack) TotalThickness() float64 {
	t := 0.0
	for _, l := range s {
		t += l.Thickness
	}
	return t
}

// DefaultStack returns the nine-layer stack used by the experiments. The
// layer count matches the paper (z discretized into 9 layers); the
// conductivities follow the usual on-chip values (silicon ~110 W/mK, the
// back-end-of-line metal/dielectric stack a few W/mK, mold compound below
// 1 W/mK), in the spirit of the Sato et al. data the paper adopts.
//
// The die of the synthetic benchmark is only a few hundred micrometres on a
// side, so the effective vertical path to ambient (DefaultConfig's heat
// transfer coefficients) is chosen to give a lateral thermal spreading
// length of a few tens of micrometres. That keeps hotspots localized at the
// scale of the paper's thermal maps; see the design notes in README.md for
// the calibration note.
func DefaultStack() Stack {
	return Stack{
		{Name: "die-attach", Thickness: 5, Conductivity: 2},
		{Name: "bulk-silicon-1", Thickness: 20, Conductivity: 110},
		{Name: "bulk-silicon-2", Thickness: 20, Conductivity: 110},
		{Name: "bulk-silicon-3", Thickness: 20, Conductivity: 110},
		{Name: "active", Thickness: 5, Conductivity: 80, Power: true},
		{Name: "metal-1-4", Thickness: 6, Conductivity: 2.5},
		{Name: "metal-5-7", Thickness: 6, Conductivity: 2.5},
		{Name: "passivation", Thickness: 8, Conductivity: 1.2},
		{Name: "mold", Thickness: 80, Conductivity: 0.8},
	}
}
