package thermal

import (
	"context"
	"errors"
	"fmt"
	"math"

	"thermplace/internal/fault"
	"thermplace/internal/geom"
	"thermplace/internal/sparse"
)

// Solver is the structured-grid fast path: the steady-state thermal system
// of a (NX x NY x layers) grid assembled directly into an integer-indexed
// CSR matrix, with no string node names, no netlist and no maps anywhere on
// the solve path.
//
// A Solver is built once per grid topology and reused across analyses: a
// new power map only refreshes the right-hand side, and a new die region
// (the sweep strategies grow the core, which changes the cell size and
// hence every conductance) only refreshes the matrix values in place. Each
// solve warm-starts the conjugate-gradient iteration from the previous
// temperature field, which is how consecutive sweep points — whose
// temperature fields differ by a few degrees at most — converge in a
// fraction of the cold-start iteration count.
//
// Node (l, ix, iy) has index (l*NY+iy)*NX + ix, so a layer is a contiguous
// NX*NY block laid out exactly like geom.Grid, and the per-layer
// temperature maps are plain copies.
type Solver struct {
	cfg        Config
	nx, ny, nl int
	n          int // nx*ny*nl unknowns
	powerLayer int

	// cellW/cellH are the die-cell dimensions (um) the matrix values were
	// assembled for; a solve against a region with different cell sizes
	// triggers a value refresh.
	cellW, cellH float64

	mat  *sparse.SymCSR
	cg   *sparse.CG
	pool *sparse.Pool
	// mg is the multigrid preconditioner (nil with PrecondJacobi); its
	// coarse operators are rebuilt by fillValues.
	mg *sparse.MG
	// restrictMap and coarsePM serve configurations with an active
	// CoarseFactor: the aggregation of full-resolution power-map cells onto
	// the coarse grid (sparse.Aggregate, the MG hierarchy's own map) and the
	// reusable coarse scratch the restriction lands in. Both stay nil at
	// full fidelity or when callers pre-bin at the coarse dims.
	restrictMap []int32
	coarsePM    *geom.Grid

	// ambRHS is the constant ambient part of the right-hand side
	// (conductance to ambient times ambient temperature, per node).
	ambRHS []float64
	rhs    []float64
	// x is the temperature field of the previous solve, kept as the CG
	// warm-start guess; xPrev snapshots it before a solve whose failure can
	// be retried on the Jacobi fallback, so the retry starts from the same
	// warm start as the failed attempt.
	x     []float64
	xPrev []float64
	warm  bool

	// baseBudget is the regular CG iteration budget; a degradation retry
	// temporarily raises it by raisedBudgetFactor, and a permanent Jacobi
	// fallback (multigrid setup failure) keeps it raised.
	baseBudget int
}

// raisedBudgetFactor multiplies the CG iteration budget on the Jacobi
// degradation path: without the multigrid preconditioner the iteration count
// grows with the grid resolution, so the fallback gets more room before
// reporting ErrNotConverged.
const raisedBudgetFactor = 4

// NewSolver validates the configuration and builds the sparsity pattern and
// the multigrid hierarchy (unless PrecondJacobi is selected). Matrix values
// are filled on the first Solve, when the die region (and so the cell size)
// is known.
func NewSolver(cfg Config) (*Solver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Snapshot the stack: the caller's slice may be mutated in place after
	// construction, and fillValues re-reads it on every geometry change.
	cfg.Stack = append(Stack(nil), cfg.Stack...)
	nx, ny := cfg.GridDims()
	s := &Solver{
		cfg:        cfg,
		nx:         nx,
		ny:         ny,
		nl:         len(cfg.Stack),
		n:          nx * ny * len(cfg.Stack),
		powerLayer: cfg.Stack.PowerLayer(),
	}
	s.mat = sparse.NewStencil7(s.nx, s.ny, s.nl)
	s.ambRHS = make([]float64, s.n)
	s.rhs = make([]float64, s.n)
	s.x = make([]float64, s.n)
	// One worker pool serves the whole solver stack: the CG iteration ops
	// and the multigrid smoother park on the same goroutines.
	s.pool = sparse.NewPool(sparse.AutoWorkers(s.n))
	s.baseBudget = 10 * s.n
	opts := sparse.CGOptions{
		Tolerance:     cfg.Tolerance,
		MaxIterations: s.baseBudget,
		Pool:          s.pool,
	}
	if cfg.Precond != PrecondJacobi {
		mg, err := sparse.NewMG(s.mat, s.nx, s.ny, s.nl, sparse.MGOptions{Pool: s.pool})
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("thermal: building multigrid hierarchy: %w", err)
		}
		s.mg = mg
		opts.Precond = mg
	}
	s.cg = sparse.NewCG(s.mat, opts)
	return s, nil
}

// index returns the unknown index of thermal cell (ix, iy) in layer l.
func (s *Solver) index(l, ix, iy int) int { return (l*s.ny+iy)*s.nx + ix }

// dropMG permanently degrades the solver to the Jacobi preconditioner with a
// raised iteration budget. It is the terminal state of the graceful
// degradation path: once the multigrid hierarchy has failed to set up there
// is no point retrying it on later geometry changes.
func (s *Solver) dropMG() {
	s.mg = nil
	s.cg.SetPrecond(nil)
	s.cg.SetMaxIterations(raisedBudgetFactor * s.baseBudget)
	s.baseBudget = raisedBudgetFactor * s.baseBudget
}

// fillValues assembles the conductances for the given cell size, writing
// matrix values and the ambient right-hand-side contribution in place, and
// rebuilds the multigrid coarse operators from the new values. The element
// formulas are exactly those of BuildNetwork, so the fast path and the
// SPICE oracle solve the same linear system.
//
// A multigrid refresh failure (a coarse factorization that breaks on the new
// values) does not fail the solve: the solver degrades to Jacobi with a
// raised iteration budget and keeps going, recording the event in
// Config.Stats. The matrix itself is already assembled at that point, so the
// degraded solve computes the same temperatures to within the CG tolerance.
func (s *Solver) fillValues(cellW, cellH float64) {
	s.cellW, s.cellH = cellW, cellH
	dx := cellW * metersPerUm
	dy := cellH * metersPerUm
	cellArea := dx * dy
	cfg := &s.cfg

	for i := range s.mat.Diag {
		s.mat.Diag[i] = 0
		s.ambRHS[i] = 0
	}

	// Per-layer lateral conductances and per-interface vertical
	// conductances.
	gLatX := make([]float64, s.nl)
	gLatY := make([]float64, s.nl)
	gVert := make([]float64, s.nl-1) // between layer l and l+1
	for l, layer := range cfg.Stack {
		dz := layer.Thickness * metersPerUm
		k := layer.Conductivity
		gLatX[l] = 1 / (dx / (k * dy * dz))
		gLatY[l] = 1 / (dy / (k * dx * dz))
		if l+1 < s.nl {
			up := cfg.Stack[l+1]
			rVert := (dz/2)/(k*cellArea) + (up.Thickness*metersPerUm/2)/(up.Conductivity*cellArea)
			gVert[l] = 1 / rVert
		}
	}

	k := 0 // running off-diagonal cursor, in pattern order
	for l, layer := range cfg.Stack {
		dz := layer.Thickness * metersPerUm
		kc := layer.Conductivity
		var gBot, gTop, gSideX, gSideY float64
		if l == 0 && cfg.HBottom > 0 {
			gBot = 1 / ((dz/2)/(kc*cellArea) + 1/(cfg.HBottom*cellArea))
		}
		if l == s.nl-1 && cfg.HTop > 0 {
			gTop = 1 / ((dz/2)/(kc*cellArea) + 1/(cfg.HTop*cellArea))
		}
		if cfg.HSide > 0 {
			faceX := dy * dz
			gSideX = 1 / ((dx/2)/(kc*faceX) + 1/(cfg.HSide*faceX))
			faceY := dx * dz
			gSideY = 1 / ((dy/2)/(kc*faceY) + 1/(cfg.HSide*faceY))
		}
		for iy := 0; iy < s.ny; iy++ {
			for ix := 0; ix < s.nx; ix++ {
				i := s.index(l, ix, iy)
				diag := 0.0
				// Off-diagonals in pattern order: z-1, y-1, x-1, x+1,
				// y+1, z+1.
				if l > 0 {
					s.mat.Val[k] = -gVert[l-1]
					diag += gVert[l-1]
					k++
				}
				if iy > 0 {
					s.mat.Val[k] = -gLatY[l]
					diag += gLatY[l]
					k++
				}
				if ix > 0 {
					s.mat.Val[k] = -gLatX[l]
					diag += gLatX[l]
					k++
				}
				if ix+1 < s.nx {
					s.mat.Val[k] = -gLatX[l]
					diag += gLatX[l]
					k++
				}
				if iy+1 < s.ny {
					s.mat.Val[k] = -gLatY[l]
					diag += gLatY[l]
					k++
				}
				if l+1 < s.nl {
					s.mat.Val[k] = -gVert[l]
					diag += gVert[l]
					k++
				}
				// Ambient boundaries add to the diagonal and to the
				// constant RHS part.
				gAmb := 0.0
				if l == 0 {
					gAmb += gBot
				}
				if l == s.nl-1 {
					gAmb += gTop
				}
				if ix == 0 || ix == s.nx-1 {
					gAmb += gSideX
				}
				if iy == 0 || iy == s.ny-1 {
					gAmb += gSideY
				}
				s.mat.Diag[i] = diag + gAmb
				s.ambRHS[i] = gAmb * cfg.AmbientC
			}
		}
	}
	if s.mg != nil {
		rerr := s.cfg.Inject.MGSetupError()
		if rerr == nil {
			rerr = s.mg.Refresh()
		}
		if rerr != nil {
			s.cfg.Stats.AddMGSetupFailure()
			s.dropMG()
		}
	}
}

// Solve runs one steady-state analysis for the power map, reusing the
// assembled structure and warm-starting from the previous solution. The
// power map must match the solver's NX x NY resolution; its region sets
// the physical cell size. It is SolveCtx with a context that never fires.
func (s *Solver) Solve(powerMap *geom.Grid) (*Result, error) {
	return s.SolveCtx(context.Background(), powerMap)
}

// SolveCtx is Solve with cancellation and fault tolerance:
//
//   - The context is threaded into the CG iteration (checked once per
//     iteration and once per multigrid cycle); an abort returns an error
//     matching fault.ErrCanceled and invalidates the warm start. When the
//     context never fires the solve is bit-identical to Solve.
//   - A multigrid-preconditioned solve that fails to converge is retried
//     once on the Jacobi preconditioner with a raised iteration budget,
//     from the same warm start, before an ErrNotConverged is reported.
//   - A panic anywhere inside the solve (worker task, preconditioner) is
//     contained and returned as a located *fault.ErrPanic.
//
// Degradations, cancellations and contained panics are counted in
// Config.Stats when one is wired.
func (s *Solver) SolveCtx(ctx context.Context, powerMap *geom.Grid) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.warm = false
			s.cfg.Stats.AddPanicContained()
			res = nil
			err = fmt.Errorf("thermal: solving %dx%dx%d system: %w",
				s.nx, s.ny, s.nl, fault.Recovered("thermal.Solver.Solve", v))
		}
	}()
	if powerMap.NX != s.nx || powerMap.NY != s.ny {
		if powerMap.NX != s.cfg.NX || powerMap.NY != s.cfg.NY {
			return nil, fmt.Errorf("thermal: power map resolution %dx%d matches neither solver grid %dx%d nor config %dx%d",
				powerMap.NX, powerMap.NY, s.nx, s.ny, s.cfg.NX, s.cfg.NY)
		}
		// A full-resolution map under an active CoarseFactor: restrict it
		// onto the coarse grid so callers need not know the fidelity.
		powerMap = s.restrictPM(powerMap)
	}

	solveN := s.cfg.Inject.NextSolve()
	if s.cfg.Inject.StallSolve(solveN) {
		// Injected stall: park until the caller cancels. A Background
		// context would park forever, which is exactly the hang the
		// injection simulates — the harness always arms it with a
		// cancelable context.
		<-ctx.Done()
	}
	if cerr := ctx.Err(); cerr != nil {
		s.cfg.Stats.AddCanceled()
		return nil, fmt.Errorf("thermal: solving %dx%dx%d system: %w",
			s.nx, s.ny, s.nl, fault.Canceled(cerr))
	}
	if s.cfg.Inject.PanicSolve(solveN) {
		s.injectPanic(solveN)
	}

	cellW, cellH := powerMap.CellW(), powerMap.CellH()
	if cellW != s.cellW || cellH != s.cellH {
		s.fillValues(cellW, cellH)
	}

	copy(s.rhs, s.ambRHS)
	nxy := s.nx * s.ny
	powerBase := s.powerLayer * nxy
	pw := powerMap.Values() // same iy*NX+ix layout as the solver's layers
	for c, p := range pw {
		if p != 0 {
			s.rhs[powerBase+c] += p
		}
	}

	if !s.warm {
		// First solve: the ambient temperature is a much better guess than
		// zero (the solution is ambient plus a few degrees of rise).
		for i := range s.x {
			s.x[i] = s.cfg.AmbientC
		}
		s.warm = true
	}

	// While a Jacobi fallback retry is possible, snapshot the warm start so
	// the retry begins from the same guess as the failed attempt, not from
	// its diverged iterate.
	retryable := s.mg != nil
	if retryable {
		if s.xPrev == nil {
			s.xPrev = make([]float64, s.n)
		}
		copy(s.xPrev, s.x)
	}
	var (
		iters    int
		residual float64
		serr     error
	)
	if retryable && s.cfg.Inject.FailSolve(solveN, 0) {
		serr = fmt.Errorf("sparse: CG: %w",
			&fault.ErrNotConverged{Iters: s.cg.MaxIterations(), Residual: math.Inf(1)})
	} else {
		iters, residual, serr = s.cg.SolveCtx(ctx, s.rhs, s.x)
	}
	var nc *fault.ErrNotConverged
	if serr != nil && retryable && errors.As(serr, &nc) {
		// Graceful degradation: one Jacobi retry with a raised budget.
		s.cfg.Stats.AddSolveRetry()
		copy(s.x, s.xPrev)
		s.cg.SetPrecond(nil)
		s.cg.SetMaxIterations(raisedBudgetFactor * s.baseBudget)
		if !s.cfg.Inject.FailSolve(solveN, 1) {
			iters, residual, serr = s.cg.SolveCtx(ctx, s.rhs, s.x)
		}
		s.cg.SetPrecond(s.mg)
		s.cg.SetMaxIterations(s.baseBudget)
	}
	if serr != nil {
		s.warm = false // do not warm-start from a failed iterate
		switch {
		case errors.Is(serr, fault.ErrCanceled):
			s.cfg.Stats.AddCanceled()
		default:
			var pe *fault.ErrPanic
			if errors.As(serr, &pe) {
				s.cfg.Stats.AddPanicContained()
			}
		}
		return nil, fmt.Errorf("thermal: solving %dx%dx%d system: %w", s.nx, s.ny, s.nl, serr)
	}

	res = &Result{
		AmbientC:       s.cfg.AmbientC,
		Iterations:     iters,
		SolverResidual: residual,
		Layers:         make([]*geom.Grid, s.nl),
	}
	//repolint:allow ctxpair(result marshalling over a few layers, after the solve already returned)
	for l := 0; l < s.nl; l++ {
		if s.cfg.SurfaceOnly && l != s.powerLayer {
			continue
		}
		g := geom.NewGrid(s.nx, s.ny, powerMap.Region)
		copy(g.Values(), s.x[l*nxy:(l+1)*nxy])
		res.Layers[l] = g
	}
	res.Surface = res.Layers[s.powerLayer]
	res.PeakC, _, _ = res.Surface.Max()
	res.PeakRise = res.PeakC - s.cfg.AmbientC
	res.GradientC = res.Surface.Gradient()
	return res, nil
}

// restrictPM bins a full-resolution power map onto the coarse grid through
// the shared piecewise-constant aggregation (power-conserving, fine-index
// order), reusing a per-solver scratch grid so steady-state coarse solves
// allocate nothing extra.
func (s *Solver) restrictPM(pm *geom.Grid) *geom.Grid {
	if s.restrictMap == nil {
		s.restrictMap = sparse.Aggregate(s.cfg.NX, s.cfg.NY, 1, s.nx, s.ny)
		s.coarsePM = geom.NewGrid(s.nx, s.ny, pm.Region)
	}
	s.coarsePM.Region = pm.Region
	sparse.Restrict(pm.Values(), s.restrictMap, s.coarsePM.Values())
	return s.coarsePM
}

// injectPanic crashes the current solve on purpose (Injector.PanicCGSolveN):
// inside a pool task when the solver runs parallel — exercising the pool's
// panic containment end to end — or directly on the calling goroutine when
// serial. Either way the panic is recovered by SolveCtx and surfaces as a
// located *fault.ErrPanic.
func (s *Solver) injectPanic(solveN int) {
	w := s.cg.Workers()
	if w > 1 && s.pool.Parallel(w) {
		s.pool.Run(w, func(task int) float64 {
			if task == 0 {
				panic(fmt.Sprintf("fault: injected panic inside pool task (solve %d)", solveN))
			}
			return 0
		})
		return
	}
	panic(fmt.Sprintf("fault: injected panic (solve %d)", solveN))
}

// State returns a copy of the temperature field of the last solve (the CG
// warm-start guess), or nil if the solver has not solved yet.
func (s *Solver) State() []float64 {
	if !s.warm {
		return nil
	}
	return append([]float64(nil), s.x...)
}

// SeedState overwrites the warm-start field with the given temperature
// field (length NX*NY*NL, solver node order). Seeding every solve from the
// same recorded field — rather than from whatever the solver happened to
// compute last — makes each solve a pure function of its inputs, which is
// what lets the concurrent sweep produce bit-identical results regardless
// of how points are scheduled across pooled solvers.
func (s *Solver) SeedState(field []float64) error {
	if len(field) != s.n {
		return fmt.Errorf("thermal: seed field length %d does not match %d unknowns", len(field), s.n)
	}
	copy(s.x, field)
	s.warm = true
	return nil
}

// Unknowns returns the size of the assembled linear system.
func (s *Solver) Unknowns() int { return s.n }

// Workers returns the CG solver's degree of parallelism.
func (s *Solver) Workers() int { return s.cg.Workers() }

// MGLevels returns the depth of the multigrid hierarchy (0 with Jacobi).
func (s *Solver) MGLevels() int {
	if s.mg == nil {
		return 0
	}
	return s.mg.Levels()
}

// Close releases the worker pool shared by the CG iteration and the
// multigrid smoother. The solver remains usable, serially.
func (s *Solver) Close() {
	s.cg.Close()
	s.pool.Close()
}
