package timing

import (
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// chainDesign builds a simple inverter chain a -> INV x n -> DFF so the
// critical path is easy to reason about.
func chainDesign(t *testing.T, n int) *netlist.Design {
	t.Helper()
	lib := celllib.Default65nm()
	d := netlist.NewDesign("chain", lib)
	if _, err := d.AddPort("clk", netlist.In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("a", netlist.In); err != nil {
		t.Fatal(err)
	}
	cur := d.Net("a")
	for i := 0; i < n; i++ {
		inst, err := d.AddInstance(fmtInt("inv", i), "INV_X1", "u")
		if err != nil {
			t.Fatal(err)
		}
		next := d.GetOrCreateNet(fmtInt("n", i))
		if err := d.Connect(inst, "A", cur); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(inst, "Z", next); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	ff, err := d.AddInstance("ff", "DFF_X1", "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "D", cur); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "CK", d.Net("clk")); err != nil {
		t.Fatal(err)
	}
	q := d.GetOrCreateNet("q")
	if err := d.Connect(ff, "Z", q); err != nil {
		t.Fatal(err)
	}
	return d
}

func fmtInt(prefix string, i int) string { return prefix + string(rune('a'+i)) }

func TestChainDelayWithoutPlacement(t *testing.T) {
	lib := celllib.Default65nm()
	inv := lib.Master("INV_X1")
	dff := lib.Master("DFF_X1")
	d := chainDesign(t, 4)
	rep, err := Analyze(d, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Expected: 3 intermediate inverters drive one INV_X1 input each, the
	// last drives the DFF D pin; no wire loads.
	want := 0.0
	for i := 0; i < 4; i++ {
		load := inv.PinCap("A")
		if i == 3 {
			load = dff.PinCap("D")
		}
		want += inv.Intrinsic + inv.DriveRes*load
	}
	if diff := rep.CriticalPathPs - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("critical path %g ps, want %g ps", rep.CriticalPathPs, want)
	}
	if rep.Endpoints != 1 {
		t.Fatalf("endpoints = %d, want 1 (the DFF D pin)", rep.Endpoints)
	}
	if rep.MaxFrequencyGHz <= 0 || rep.SlackPs != 1000-rep.CriticalPathPs {
		t.Fatalf("derived metrics wrong: %+v", rep)
	}
	if len(rep.CriticalPath) == 0 {
		t.Fatal("critical path steps missing")
	}
	// Arrival times must be monotone along the path.
	for i := 1; i < len(rep.CriticalPath); i++ {
		if rep.CriticalPath[i].ArrivalPs < rep.CriticalPath[i-1].ArrivalPs {
			t.Fatal("critical path arrivals not monotone")
		}
	}
}

func TestLongerChainIsSlower(t *testing.T) {
	short := chainDesign(t, 3)
	long := chainDesign(t, 9)
	rs, err := Analyze(short, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analyze(long, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rl.CriticalPathPs <= rs.CriticalPathPs {
		t.Fatalf("longer chain must be slower: %g vs %g", rl.CriticalPathPs, rs.CriticalPathPs)
	}
}

func placedBenchmark(t *testing.T) (*netlist.Design, *place.Placement) {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestPlacementAddsWireDelay(t *testing.T) {
	d, p := placedBenchmark(t)
	noWire, err := Analyze(d, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	withWire, err := Analyze(d, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if withWire.CriticalPathPs <= noWire.CriticalPathPs {
		t.Fatalf("placed analysis must include wire delay: %g vs %g", withWire.CriticalPathPs, noWire.CriticalPathPs)
	}
	// The small benchmark at 1 GHz should be within an order of magnitude of
	// the clock period — sanity band for the delay model's units.
	if withWire.CriticalPathPs < 100 || withWire.CriticalPathPs > 20000 {
		t.Fatalf("critical path %g ps outside plausibility band", withWire.CriticalPathPs)
	}
}

func TestTemperatureDeratingSlowsDesign(t *testing.T) {
	d, p := placedBenchmark(t)
	cold, err := Analyze(d, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hotMap := geom.NewGrid(10, 10, p.FP.Core)
	hotMap.Fill(95) // 70 C above the 25 C nominal
	opts := DefaultOptions()
	opts.TemperatureMap = hotMap
	hot, err := Analyze(d, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hot.CriticalPathPs <= cold.CriticalPathPs {
		t.Fatal("a hot die must be slower than a cold one")
	}
	// 70 C above nominal at 4%/10C derating: cells get ~28% slower, wires
	// ~35%; the overall path should land in that range.
	ov := Overhead(cold, hot)
	if ov < 0.20 || ov > 0.40 {
		t.Fatalf("70C derating produced %.1f%% slowdown, want roughly 28-35%%", ov*100)
	}
}

func TestOverheadHelper(t *testing.T) {
	a := &Report{CriticalPathPs: 100}
	b := &Report{CriticalPathPs: 102}
	if ov := Overhead(a, b); ov < 0.0199 || ov > 0.0201 {
		t.Fatalf("Overhead = %g, want 0.02", ov)
	}
	if Overhead(nil, b) != 0 || Overhead(a, nil) != 0 || Overhead(&Report{}, b) != 0 {
		t.Fatal("degenerate Overhead cases must return 0")
	}
}

func TestAnalyzeErrorPaths(t *testing.T) {
	lib := celllib.Default65nm()
	d := netlist.NewDesign("loop", lib)
	u1, _ := d.AddInstance("u1", "INV_X1", "")
	u2, _ := d.AddInstance("u2", "INV_X1", "")
	n1 := d.GetOrCreateNet("n1")
	n2 := d.GetOrCreateNet("n2")
	_ = d.Connect(u1, "A", n2)
	_ = d.Connect(u1, "Z", n1)
	_ = d.Connect(u2, "A", n1)
	_ = d.Connect(u2, "Z", n2)
	if _, err := Analyze(d, nil, DefaultOptions()); err == nil {
		t.Fatal("combinational loop must be rejected")
	}

	open := netlist.NewDesign("open", lib)
	g, _ := open.AddInstance("g", "NAND2_X1", "")
	_ = open.Connect(g, "Z", open.GetOrCreateNet("z"))
	if _, err := Analyze(open, nil, DefaultOptions()); err == nil {
		t.Fatal("unconnected input must be rejected")
	}
}

func TestPostPlacementTransformTimingOverheadIsSmall(t *testing.T) {
	// The paper reports a maximum timing overhead around 2% for its
	// transforms. Verify the claim's spirit here with a pure vertical
	// stretch of the placement (the ERI effect on cell positions): the
	// critical path grows only mildly.
	d, p := placedBenchmark(t)
	before, err := Analyze(d, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an ERI-like stretch: move the top half of the rows up by
	// four row heights (the real transform is exercised in bench_test.go at
	// the repository root; here we only need the STA sensitivity).
	stretched := p.Clone()
	stretched.FP.Core.Yhi += 4 * p.FP.RowHeight
	for i := 0; i < 4; i++ {
		if err := stretched.FP.InsertRows(stretched.FP.NumRows(), 1); err != nil {
			t.Fatal(err)
		}
	}
	mid := p.FP.Core.Center().Y
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		if l, ok := stretched.Loc(inst); ok && l.Y > mid {
			l.Row += 4
			l.Y = stretched.FP.Rows[l.Row].Y
			stretched.SetLoc(inst, l)
		}
	}
	place.Legalize(stretched)
	after, err := Analyze(d, stretched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ov := Overhead(before, after)
	t.Logf("stretch timing overhead: %.2f%%", ov*100)
	if ov > 0.10 {
		t.Fatalf("timing overhead %.1f%% far above the paper's ~2%% claim", ov*100)
	}
}
