package timing

import (
	"testing"

	"thermplace/internal/celllib"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// libWithDINFlop returns the default library extended with a flip-flop whose
// data pin is named DIN rather than D, modelled on DFF_X1.
func libWithDINFlop(t *testing.T) *celllib.Library {
	t.Helper()
	lib := celllib.Default65nm()
	dff := lib.Master("DFF_X1")
	if dff == nil {
		t.Fatal("library has no DFF_X1")
	}
	err := lib.AddMaster(&celllib.Master{
		Name:  "DFFDIN_X1",
		Width: dff.Width,
		Pins: []celllib.Pin{
			{Name: "DIN", Dir: celllib.Input, Cap: dff.PinCap("D")},
			{Name: "CK", Dir: celllib.Input, Cap: dff.PinCap("CK")},
			{Name: "Q", Dir: celllib.Output},
		},
		Function:     celllib.FuncDFF,
		DriveRes:     dff.DriveRes,
		Intrinsic:    dff.Intrinsic,
		Leakage:      dff.Leakage,
		SwitchEnergy: dff.SwitchEnergy,
		Sequential:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// Regression for the hardcoded consider(ff.Conn("D")) endpoint scan: a
// sequential master whose data pin is not literally named "D" must still
// contribute its data net as a timing endpoint.
func TestEndpointPinNotNamedD(t *testing.T) {
	lib := libWithDINFlop(t)
	d := netlist.NewDesign("dinchain", lib)
	if _, err := d.AddPort("clk", netlist.In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("a", netlist.In); err != nil {
		t.Fatal(err)
	}
	cur := d.Net("a")
	for i := 0; i < 3; i++ {
		inst, err := d.AddInstance(fmtInt("inv", i), "INV_X1", "u")
		if err != nil {
			t.Fatal(err)
		}
		next := d.GetOrCreateNet(fmtInt("n", i))
		if err := d.Connect(inst, "A", cur); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(inst, "Z", next); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	ff, err := d.AddInstance("ff", "DFFDIN_X1", "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "DIN", cur); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "CK", d.Net("clk")); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(ff, "Q", d.GetOrCreateNet("q")); err != nil {
		t.Fatal(err)
	}

	rep, err := Analyze(d, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints != 1 {
		t.Fatalf("Endpoints = %d, want 1 (the DIN net)", rep.Endpoints)
	}
	if want := rep.ArrivalPs[cur.Name]; rep.CriticalPathPs != want {
		t.Fatalf("critical path %g ps, want the DIN-net arrival %g ps", rep.CriticalPathPs, want)
	}
}

// Regression for the endpoint double count: a net that is both a flip-flop
// data input and a primary output is one endpoint, not two.
func TestEndpointCountedOnceWhenDataNetIsPrimaryOutput(t *testing.T) {
	d := chainDesign(t, 3)
	y, err := d.AddPort("y", netlist.Out)
	if err != nil {
		t.Fatal(err)
	}
	// Rebind the output port to the FF's data net, making it both kinds of
	// endpoint at once.
	ff := d.Instance("ff")
	y.Net = ff.Conn("D")
	rep, err := Analyze(d, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints != 1 {
		t.Fatalf("Endpoints = %d, want 1 (FF data net == primary output)", rep.Endpoints)
	}
}

// Regression for the zero-value option conflation: explicitly zero derates
// with a temperature map must disable derating, not silently become the
// 4%/10C / 5%/10C defaults.
func TestZeroDeratesAreExpressible(t *testing.T) {
	d, p := placedBenchmark(t)
	plain, err := Analyze(d, p, Options{ClockPeriodPs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	hotMap := geom.NewGrid(10, 10, p.FP.Core)
	hotMap.Fill(95)
	derated, err := Analyze(d, p, Options{
		TemperatureMap: hotMap,
		ClockPeriodPs:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if derated.CriticalPathPs != plain.CriticalPathPs {
		t.Fatalf("zero derates must be inert: %g ps with map vs %g ps without",
			derated.CriticalPathPs, plain.CriticalPathPs)
	}
}

// Regression for the zero-value option conflation: NominalC 0 must mean
// "characterized at 0 C", not silently become 25 C.
func TestZeroNominalIsExpressible(t *testing.T) {
	d, p := placedBenchmark(t)
	plain, err := Analyze(d, p, Options{ClockPeriodPs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	atNominal := geom.NewGrid(10, 10, p.FP.Core)
	atNominal.Fill(0) // the die sits exactly at the 0 C nominal
	same, err := Analyze(d, p, Options{
		TemperatureMap:   atNominal,
		NominalC:         0,
		CellDeratePer10C: 0.04,
		WireDeratePer10C: 0.05,
		ClockPeriodPs:    1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if same.CriticalPathPs != plain.CriticalPathPs {
		t.Fatalf("die at the 0 C nominal must not derate: %g ps vs %g ps",
			same.CriticalPathPs, plain.CriticalPathPs)
	}
}

// stretchWithDelta applies the ERI-like vertical stretch of
// TestPostPlacementTransformTimingOverheadIsSmall under delta recording,
// returning the derived placement and its recorded delta.
func stretchWithDelta(t *testing.T, d *netlist.Design, p *place.Placement) (*place.Placement, *place.Delta) {
	t.Helper()
	stretched := p.Clone()
	stretched.BeginDelta()
	stretched.FP.Core.Yhi += 4 * p.FP.RowHeight
	for i := 0; i < 4; i++ {
		if err := stretched.FP.InsertRows(stretched.FP.NumRows(), 1); err != nil {
			t.Fatal(err)
		}
	}
	mid := p.FP.Core.Center().Y
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		if l, ok := stretched.Loc(inst); ok && l.Y > mid {
			l.Row += 4
			l.Y = stretched.FP.Rows[l.Row].Y
			stretched.SetLoc(inst, l)
		}
	}
	place.Legalize(stretched)
	return stretched, stretched.EndDelta()
}

// gradientMap builds a non-uniform temperature field so the derates vary
// across the core and the incremental path has to re-derate moved cells.
func gradientMap(core geom.Rect) *geom.Grid {
	g := geom.NewGrid(10, 10, core)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			g.Set(ix, iy, 40+3*float64(ix)+2*float64(iy))
		}
	}
	return g
}

// TestAnalyzerUpdateMatchesFromScratch pins the incremental contract: after
// a recorded placement delta, Update must be bit-identical (== on floats) to
// a from-scratch Analyze of the derived placement.
func TestAnalyzerUpdateMatchesFromScratch(t *testing.T) {
	d, p := placedBenchmark(t)
	a, err := NewAnalyzer(d)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TemperatureMap = gradientMap(p.FP.Core)
	base := a.Analyze(p, opts)

	stretched, delta := stretchWithDelta(t, d, p)
	if delta.IsFull() || delta.Empty() {
		t.Fatalf("expected a sparse non-empty delta, got full=%v empty=%v", delta.IsFull(), delta.Empty())
	}
	full := a.Analyze(stretched, opts)
	inc := a.Update(base, stretched, delta, opts)

	if inc.CriticalPathPs != full.CriticalPathPs || inc.SlackPs != full.SlackPs ||
		inc.MaxFrequencyGHz != full.MaxFrequencyGHz || inc.Endpoints != full.Endpoints {
		t.Fatalf("incremental summary differs:\n inc  %+v\n full %+v",
			[]any{inc.CriticalPathPs, inc.SlackPs, inc.MaxFrequencyGHz, inc.Endpoints},
			[]any{full.CriticalPathPs, full.SlackPs, full.MaxFrequencyGHz, full.Endpoints})
	}
	if len(inc.ArrivalPs) != len(full.ArrivalPs) {
		t.Fatalf("arrival map size differs: %d vs %d", len(inc.ArrivalPs), len(full.ArrivalPs))
	}
	for name, want := range full.ArrivalPs {
		if got, ok := inc.ArrivalPs[name]; !ok || got != want {
			t.Fatalf("arrival of %q differs: %v (present=%v) vs %v", name, got, ok, want)
		}
	}
	if len(inc.CriticalPath) != len(full.CriticalPath) {
		t.Fatalf("critical path length differs: %d vs %d", len(inc.CriticalPath), len(full.CriticalPath))
	}
	for i := range full.CriticalPath {
		if inc.CriticalPath[i] != full.CriticalPath[i] {
			t.Fatalf("critical path step %d differs: %+v vs %+v", i, inc.CriticalPath[i], full.CriticalPath[i])
		}
	}
	changed := 0
	for name, v := range full.ArrivalPs {
		if base.ArrivalPs[name] != v {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("stretch did not change any arrival; the equality above proved nothing")
	}
	t.Logf("stretch moved %d of %d arrivals; incremental bit-identical", changed, len(full.ArrivalPs))
}

// TestAnalyzerUpdateNegativeUnderReportedDelta is the PR 5-style corruption
// check: feeding Update a delta that hides the moves (here: an empty one for
// a placement that really changed) must produce a report that the
// bit-identity comparison rejects — proving the equality test above can
// fail.
func TestAnalyzerUpdateNegativeUnderReportedDelta(t *testing.T) {
	d, p := placedBenchmark(t)
	a, err := NewAnalyzer(d)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TemperatureMap = gradientMap(p.FP.Core)
	base := a.Analyze(p, opts)

	// Record nothing, then move cells anyway: the delta under-reports.
	lying := p.Clone()
	lying.BeginDelta()
	empty := lying.EndDelta()
	lying.FP.Core.Yhi += 4 * p.FP.RowHeight
	for i := 0; i < 4; i++ {
		if err := lying.FP.InsertRows(lying.FP.NumRows(), 1); err != nil {
			t.Fatal(err)
		}
	}
	mid := p.FP.Core.Center().Y
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		if l, ok := lying.Loc(inst); ok && l.Y > mid {
			l.Row += 4
			l.Y = lying.FP.Rows[l.Row].Y
			lying.SetLoc(inst, l)
		}
	}
	place.Legalize(lying)

	full := a.Analyze(lying, opts)
	inc := a.Update(base, lying, empty, opts)
	differs := 0
	for name, v := range full.ArrivalPs {
		if inc.ArrivalPs[name] != v {
			differs++
		}
	}
	if differs == 0 {
		t.Fatal("under-reported delta went undetected: incremental equals from-scratch")
	}
}

// TestAnalyzerUpdateFallsBackOnChangedOptions: different options (including
// a different temperature map) must not reuse the previous propagation.
func TestAnalyzerUpdateFallsBackOnChangedOptions(t *testing.T) {
	d, p := placedBenchmark(t)
	a, err := NewAnalyzer(d)
	if err != nil {
		t.Fatal(err)
	}
	base := a.Analyze(p, DefaultOptions())
	stretched, delta := stretchWithDelta(t, d, p)
	opts := DefaultOptions()
	opts.TemperatureMap = gradientMap(p.FP.Core)
	full := a.Analyze(stretched, opts)
	inc := a.Update(base, stretched, delta, opts)
	if inc.CriticalPathPs != full.CriticalPathPs {
		t.Fatalf("option-change fallback broken: %g vs %g", inc.CriticalPathPs, full.CriticalPathPs)
	}
}
