// Package timing is a small static timing analyzer for placed gate-level
// designs. It supports the paper's two timing-related claims:
//
//   - the post-placement transforms cause only a small ("around 2%") increase
//     of the critical-path delay, because cell movements are local;
//   - temperature affects delay (the paper's motivation): MOS drive strength
//     drops about 4% per 10 degrees C and interconnect delay grows about 5%
//     per 10 degrees C, so the analyzer can derate each cell and wire with
//     the local temperature from a thermal map.
//
// The delay model is the usual linear one: cell delay = intrinsic +
// drive-resistance * load, wire delay from a lumped Elmore term computed on
// the placed net's half-perimeter wirelength.
//
// The analyzer caches everything that depends only on the netlist — the
// levelized gate order, the sequential elements and the deduplicated
// endpoint nets — in an Analyzer, so a sweep re-analyzing many placements
// of one design pays the graph construction once. Analyzer.Update
// additionally re-propagates only the fan-out cone of a placement delta's
// dirty nets, bit-identical to a from-scratch Analyze.
package timing

import (
	"fmt"
	"sort"
	"strings"

	"thermplace/internal/geom"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// Options configures a timing analysis. The values are used verbatim: a zero
// derate disables that derating term and NominalC 0 derates relative to 0
// degrees C. DefaultOptions supplies the paper's characterization point;
// build on it to get the 4%/10C and 5%/10C derates.
type Options struct {
	// TemperatureMap, when non-nil, derates every cell and wire with the
	// temperature of its location (degrees C, absolute). The map must cover
	// the core.
	TemperatureMap *geom.Grid
	// NominalC is the temperature at which the library delays are
	// characterized.
	NominalC float64
	// CellDeratePer10C is the fractional cell-delay increase per 10 C above
	// nominal. Zero disables cell derating.
	CellDeratePer10C float64
	// WireDeratePer10C is the fractional wire-delay increase per 10 C above
	// nominal. Zero disables wire derating.
	WireDeratePer10C float64
	// ClockPeriodPs, when positive, is used to report slack.
	ClockPeriodPs float64
}

// DefaultOptions returns the paper's characterization point — delays
// characterized at 25 C, 4%/10C cell and 5%/10C wire derates (inert until a
// TemperatureMap is set) — at a 1 GHz clock (1000 ps period).
func DefaultOptions() Options {
	return Options{
		NominalC:         25,
		CellDeratePer10C: 0.04,
		WireDeratePer10C: 0.05,
		ClockPeriodPs:    1000,
	}
}

// PathStep is one hop of a timing path.
type PathStep struct {
	// Inst is the driving cell of this step (nil for a primary input).
	Inst *netlist.Instance
	// Net is the net the step drives.
	Net *netlist.Net
	// DelayPs is the step's contribution (cell + wire) in picoseconds.
	DelayPs float64
	// ArrivalPs is the cumulative arrival time at the net in picoseconds.
	ArrivalPs float64
}

// Report is the result of a timing analysis.
type Report struct {
	// CriticalPathPs is the worst arrival time at any endpoint (flip-flop
	// data input or primary output) in picoseconds.
	CriticalPathPs float64
	// CriticalPath lists the steps of the worst path, start to end.
	CriticalPath []PathStep
	// SlackPs is ClockPeriodPs - CriticalPathPs when a period was given.
	SlackPs float64
	// MaxFrequencyGHz is 1000 / CriticalPathPs.
	MaxFrequencyGHz float64
	// ArrivalPs maps every reached net name to its worst arrival time.
	ArrivalPs map[string]float64
	// Endpoints is the number of distinct timing endpoint nets analyzed.
	Endpoints int

	// Incremental-update state: the per-net (by ordinal) arrival times,
	// reachability and worst driver steps this report was computed from, and
	// the options that produced it. Analyzer.Update starts from these
	// instead of re-propagating the whole graph.
	opts    Options
	arrival []float64
	reached []bool
	steps   []PathStep
}

// MemoryBytes coarsely estimates the retained size of the report's numeric
// payload — the per-net arrival/step state kept for incremental updates and
// the arrival-time map. It feeds flow.Analysis.MemoryBytes, the accounting
// unit of the query server's result cache.
func (r *Report) MemoryBytes() int64 {
	n := int64(len(r.arrival))*8 + int64(len(r.reached)) + int64(len(r.steps))*48
	n += int64(len(r.ArrivalPs)) * 48 // map entry + short name, coarse
	n += int64(len(r.CriticalPath)) * 48
	return n
}

// Overhead returns the fractional critical-path increase of after relative
// to before; negative values mean the path got faster.
func Overhead(before, after *Report) float64 {
	if before == nil || after == nil || before.CriticalPathPs <= 0 {
		return 0
	}
	return (after.CriticalPathPs - before.CriticalPathPs) / before.CriticalPathPs
}

// node is the per-gate record used during levelized arrival propagation.
type node struct {
	inst   *netlist.Instance
	inNets []*netlist.Net
	outNet *netlist.Net
}

// Analyzer holds the placement-independent timing graph of one design: the
// combinational nodes in a fixed topological order, the sequential launch
// points and the deduplicated endpoint nets. It is immutable after
// construction and safe for concurrent use; building it once and calling
// Analyze per placement skips the graph extraction and levelization that
// dominate small analyses.
type Analyzer struct {
	d       *netlist.Design
	nodes   []node // topological order
	seqs    []*netlist.Instance
	endNets []*netlist.Net // deduped: FF data-input nets, then primary outputs
	numNets int
}

// NewAnalyzer extracts and levelizes the timing graph of the design.
func NewAnalyzer(d *netlist.Design) (*Analyzer, error) {
	a := &Analyzer{d: d, numNets: d.NumNets()}
	var nodes []node
	for _, inst := range d.Instances() {
		m := inst.Master
		switch {
		case m.Filler:
			continue
		case m.Sequential:
			a.seqs = append(a.seqs, inst)
		default:
			out := inst.Conn(m.OutputPin())
			if out == nil {
				return nil, fmt.Errorf("timing: gate %q output unconnected", inst.Name)
			}
			n := node{inst: inst, outNet: out}
			for _, pin := range m.Inputs() {
				net := inst.Conn(pin)
				if net == nil {
					return nil, fmt.Errorf("timing: pin %s.%s unconnected", inst.Name, pin)
				}
				n.inNets = append(n.inNets, net)
			}
			nodes = append(nodes, n)
		}
	}
	order, err := levelize(nodes)
	if err != nil {
		return nil, err
	}
	a.nodes = order

	// Endpoint nets: every sequential data input (any input pin that is not
	// a clock — the pin name is not hardwired to "D") plus the primary
	// outputs, deduplicated so a net that is both is counted once.
	endSeen := make([]bool, a.numNets)
	addEnd := func(net *netlist.Net) {
		if net == nil || endSeen[net.Ord()] {
			return
		}
		endSeen[net.Ord()] = true
		a.endNets = append(a.endNets, net)
	}
	for _, ff := range a.seqs {
		for _, pin := range ff.Master.Inputs() {
			if isClockPin(pin) {
				continue
			}
			addEnd(ff.Conn(pin))
		}
	}
	for _, port := range d.Ports() {
		if port.Dir == netlist.Out {
			addEnd(port.Net)
		}
	}
	return a, nil
}

// isClockPin reports whether a sequential input pin name denotes a clock
// rather than a data input. This mirrors the load-side heuristic logicsim
// uses to identify clock nets.
func isClockPin(name string) bool {
	switch strings.ToLower(name) {
	case "ck", "clk", "clock", "cp", "ckb", "clkb":
		return true
	}
	return false
}

// Analyze runs a full-chip static timing analysis on the placed design.
// The placement may be nil, in which case wire delay and wire load are
// ignored (useful to isolate the pure gate-delay component).
func Analyze(d *netlist.Design, p *place.Placement, opts Options) (*Report, error) {
	a, err := NewAnalyzer(d)
	if err != nil {
		return nil, err
	}
	return a.Analyze(p, opts), nil
}

// Analyze propagates arrival times through the cached graph for one
// placement. It is safe for concurrent use.
func (a *Analyzer) Analyze(p *place.Placement, opts Options) *Report {
	arrival := make([]float64, a.numNets)
	reached := make([]bool, a.numNets)
	steps := make([]PathStep, a.numNets)

	// Launch points: primary inputs at t=0 and flip-flop outputs at their
	// clock-to-output delay.
	for _, port := range a.d.Ports() {
		if port.Dir == netlist.In && port.Net != nil {
			reached[port.Net.Ord()] = true
		}
	}
	for _, ff := range a.seqs {
		out := ff.Conn(ff.Master.OutputPin())
		if out == nil {
			continue
		}
		o := out.Ord()
		t := cellDelay(a.d, p, ff, out, opts) + wireDelay(a.d, p, out, opts)
		if t > arrival[o] {
			arrival[o] = t
			reached[o] = true
			steps[o] = PathStep{Inst: ff, Net: out, DelayPs: t, ArrivalPs: t}
		}
	}

	// Propagate arrivals in topological order.
	for i := range a.nodes {
		n := &a.nodes[i]
		worst := 0.0
		for _, in := range n.inNets {
			if t := arrival[in.Ord()]; t >= worst {
				worst = t
			}
		}
		delay := cellDelay(a.d, p, n.inst, n.outNet, opts) + wireDelay(a.d, p, n.outNet, opts)
		t := worst + delay
		o := n.outNet.Ord()
		if t > arrival[o] {
			arrival[o] = t
			reached[o] = true
			steps[o] = PathStep{Inst: n.inst, Net: n.outNet, DelayPs: delay, ArrivalPs: t}
		}
	}
	return a.finish(opts, arrival, reached, steps)
}

// Update re-analyzes the design after a placement delta, re-derating and
// re-propagating only the fan-out cone of the delta's dirty nets. The result
// is bit-identical to a.Analyze(p, opts) — same float operations on the same
// operands — provided prev came from this analyzer, p was derived from
// prev's placement by the moves the delta records (port locations
// unchanged), and opts equals prev's options including the identical
// TemperatureMap grid. When any precondition is not met (nil/full delta,
// different options, foreign report) it falls back to the full propagation.
func (a *Analyzer) Update(prev *Report, p *place.Placement, delta *place.Delta, opts Options) *Report {
	if prev == nil || prev.arrival == nil || len(prev.arrival) != a.numNets ||
		prev.opts != opts || delta == nil || delta.IsFull() {
		return a.Analyze(p, opts)
	}
	if delta.Empty() {
		return prev
	}
	dirty := make([]bool, a.numNets)
	any := false
	for _, ord := range delta.DirtyNets() {
		if int(ord) < a.numNets {
			dirty[ord] = true
			any = true
		}
	}
	if !any {
		return prev
	}
	arrival := append([]float64(nil), prev.arrival...)
	reached := append([]bool(nil), prev.reached...)
	steps := append([]PathStep(nil), prev.steps...)
	// affected marks nets whose arrival (or reachability) changed; a node is
	// re-evaluated when its own delay may have changed (dirty output net) or
	// any of its inputs was affected — the dirty fan-out cone.
	affected := make([]bool, a.numNets)

	// set replicates the from-scratch launch/propagation decision for a
	// single-driver net starting from the zero state: arrival t is recorded
	// iff t > 0.
	set := func(o int, t float64, step PathStep) {
		nt, nr := 0.0, false
		if t > 0 {
			nt, nr = t, true
		}
		if nt != arrival[o] || nr != reached[o] {
			arrival[o], reached[o] = nt, nr
			affected[o] = true
		}
		if nr {
			steps[o] = step
		} else {
			steps[o] = PathStep{}
		}
	}

	for _, ff := range a.seqs {
		out := ff.Conn(ff.Master.OutputPin())
		if out == nil || !dirty[out.Ord()] {
			continue
		}
		t := cellDelay(a.d, p, ff, out, opts) + wireDelay(a.d, p, out, opts)
		set(out.Ord(), t, PathStep{Inst: ff, Net: out, DelayPs: t, ArrivalPs: t})
	}
	for i := range a.nodes {
		n := &a.nodes[i]
		o := n.outNet.Ord()
		recompute := dirty[o]
		if !recompute {
			for _, in := range n.inNets {
				if affected[in.Ord()] {
					recompute = true
					break
				}
			}
			if !recompute {
				continue
			}
		}
		var delay float64
		if dirty[o] {
			delay = cellDelay(a.d, p, n.inst, n.outNet, opts) + wireDelay(a.d, p, n.outNet, opts)
		} else {
			// The net's pins did not move, so the delay the previous pass
			// recorded on its driver step is the value a from-scratch
			// propagation would recompute.
			delay = steps[o].DelayPs
		}
		worst := 0.0
		for _, in := range n.inNets {
			if t := arrival[in.Ord()]; t >= worst {
				worst = t
			}
		}
		t := worst + delay
		set(o, t, PathStep{Inst: n.inst, Net: n.outNet, DelayPs: delay, ArrivalPs: t})
	}
	return a.finish(opts, arrival, reached, steps)
}

// finish derives the report from a propagated arrival state. Analyze and
// Update share it, so their endpoint selection, path reconstruction and
// derived metrics are the same code on the same operands.
func (a *Analyzer) finish(opts Options, arrival []float64, reached []bool, steps []PathStep) *Report {
	rep := &Report{
		ArrivalPs: make(map[string]float64, a.numNets),
		opts:      opts,
		arrival:   arrival,
		reached:   reached,
		steps:     steps,
	}
	for _, net := range a.d.Nets() {
		if reached[net.Ord()] {
			rep.ArrivalPs[net.Name] = arrival[net.Ord()]
		}
	}
	var worstNet *netlist.Net
	for _, net := range a.endNets {
		rep.Endpoints++
		if t := arrival[net.Ord()]; t >= rep.CriticalPathPs {
			rep.CriticalPathPs = t
			worstNet = net
		}
	}
	if rep.Endpoints == 0 {
		// Purely combinational fan-out-free design: fall back to the worst
		// arrival anywhere, scanning nets in creation order so the reported
		// worst net is deterministic.
		for _, net := range a.d.Nets() {
			if !reached[net.Ord()] {
				continue
			}
			rep.Endpoints++
			if t := arrival[net.Ord()]; t >= rep.CriticalPathPs {
				rep.CriticalPathPs = t
				worstNet = net
			}
		}
	}
	rep.CriticalPath = a.tracePath(arrival, steps, worstNet)
	if rep.CriticalPathPs > 0 {
		rep.MaxFrequencyGHz = 1000 / rep.CriticalPathPs
	}
	if opts.ClockPeriodPs > 0 {
		rep.SlackPs = opts.ClockPeriodPs - rep.CriticalPathPs
	}
	return rep
}

// levelize orders the combinational nodes topologically.
func levelize(nodes []node) ([]node, error) {
	driver := make(map[*netlist.Net]int, len(nodes))
	for i, n := range nodes {
		driver[n.outNet] = i
	}
	indeg := make([]int, len(nodes))
	deps := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, in := range n.inNets {
			if di, ok := driver[in]; ok {
				indeg[i]++
				deps[di] = append(deps[di], i)
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	out := make([]node, 0, len(nodes))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		out = append(out, nodes[i])
		for _, j := range deps[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(out) != len(nodes) {
		return nil, fmt.Errorf("timing: combinational loop detected (%d gates unorderable)", len(nodes)-len(out))
	}
	return out, nil
}

// tracePath rebuilds the critical path from the per-net driver steps.
func (a *Analyzer) tracePath(arrival []float64, steps []PathStep, end *netlist.Net) []PathStep {
	var rev []PathStep
	seen := make([]bool, a.numNets)
	for net := end; net != nil && !seen[net.Ord()]; {
		seen[net.Ord()] = true
		step := steps[net.Ord()]
		if step.Net == nil {
			break
		}
		rev = append(rev, step)
		// Move to the worst input of the driver.
		if step.Inst == nil || step.Inst.Master.Sequential {
			break
		}
		var worst *netlist.Net
		worstT := -1.0
		for _, pin := range step.Inst.Master.Inputs() {
			in := step.Inst.Conn(pin)
			if in == nil {
				continue
			}
			if t := arrival[in.Ord()]; t > worstT {
				worstT = t
				worst = in
			}
		}
		net = worst
	}
	// Reverse into launch-to-capture order.
	sort.SliceStable(rev, func(i, j int) bool { return rev[i].ArrivalPs < rev[j].ArrivalPs })
	return rev
}

// derate returns the multiplicative delay derating factor for a point.
func derate(opts Options, per10C float64, at geom.Point) float64 {
	if opts.TemperatureMap == nil {
		return 1
	}
	ix, iy := opts.TemperatureMap.CellOf(at)
	t := opts.TemperatureMap.At(ix, iy)
	d := 1 + per10C*(t-opts.NominalC)/10
	if d < 0.5 {
		d = 0.5
	}
	return d
}

// cellDelay returns the delay of a gate driving its output net in ps.
func cellDelay(d *netlist.Design, p *place.Placement, inst *netlist.Instance, out *netlist.Net, opts Options) float64 {
	lib := d.Lib
	load := 0.0 // fF
	for _, l := range out.Loads {
		if l.Inst != nil {
			load += l.Inst.Master.PinCap(l.Pin)
		}
	}
	if p != nil {
		load += p.HPWL(out) * lib.WireCapPerUm
	}
	// kOhm * fF = ps.
	delay := inst.Master.Intrinsic + inst.Master.DriveRes*load
	if p != nil {
		delay *= derate(opts, opts.CellDeratePer10C, p.Center(inst))
	}
	return delay
}

// wireDelay returns the lumped Elmore wire delay of the net in ps.
func wireDelay(d *netlist.Design, p *place.Placement, net *netlist.Net, opts Options) float64 {
	if p == nil {
		return 0
	}
	lib := d.Lib
	length := p.HPWL(net)
	rw := length * lib.WireResPerUm // ohm
	cw := length * lib.WireCapPerUm // fF
	pinCap := 0.0
	for _, l := range net.Loads {
		if l.Inst != nil {
			pinCap += l.Inst.Master.PinCap(l.Pin)
		}
	}
	// ohm * fF = 1e-3 ps.
	delay := (0.5*rw*cw + rw*pinCap) * 1e-3
	bbox := p.NetBBox(net)
	return delay * derate(opts, opts.WireDeratePer10C, bbox.Center())
}
