// Package timing is a small static timing analyzer for placed gate-level
// designs. It supports the paper's two timing-related claims:
//
//   - the post-placement transforms cause only a small ("around 2%") increase
//     of the critical-path delay, because cell movements are local;
//   - temperature affects delay (the paper's motivation): MOS drive strength
//     drops about 4% per 10 degrees C and interconnect delay grows about 5%
//     per 10 degrees C, so the analyzer can derate each cell and wire with
//     the local temperature from a thermal map.
//
// The delay model is the usual linear one: cell delay = intrinsic +
// drive-resistance * load, wire delay from a lumped Elmore term computed on
// the placed net's half-perimeter wirelength.
package timing

import (
	"fmt"
	"sort"

	"thermplace/internal/geom"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// Options configures a timing analysis.
type Options struct {
	// TemperatureMap, when non-nil, derates every cell and wire with the
	// temperature of its location (degrees C). The map must cover the core.
	TemperatureMap *geom.Grid
	// NominalC is the temperature at which the library delays are
	// characterized. Zero means 25.
	NominalC float64
	// CellDeratePer10C is the fractional cell-delay increase per 10 C above
	// nominal. Zero means 0.04 (the paper's 4% drive-current loss).
	CellDeratePer10C float64
	// WireDeratePer10C is the fractional wire-delay increase per 10 C above
	// nominal. Zero means 0.05 (the paper's 5%).
	WireDeratePer10C float64
	// ClockPeriodPs, when positive, is used to report slack.
	ClockPeriodPs float64
}

// DefaultOptions returns options without temperature derating at a 1 GHz
// clock (1000 ps period).
func DefaultOptions() Options { return Options{ClockPeriodPs: 1000} }

func (o Options) withDefaults() Options {
	if o.NominalC == 0 {
		o.NominalC = 25
	}
	if o.CellDeratePer10C == 0 {
		o.CellDeratePer10C = 0.04
	}
	if o.WireDeratePer10C == 0 {
		o.WireDeratePer10C = 0.05
	}
	return o
}

// PathStep is one hop of a timing path.
type PathStep struct {
	// Inst is the driving cell of this step (nil for a primary input).
	Inst *netlist.Instance
	// Net is the net the step drives.
	Net *netlist.Net
	// DelayPs is the step's contribution (cell + wire) in picoseconds.
	DelayPs float64
	// ArrivalPs is the cumulative arrival time at the net in picoseconds.
	ArrivalPs float64
}

// Report is the result of a timing analysis.
type Report struct {
	// CriticalPathPs is the worst arrival time at any endpoint (flip-flop
	// D input or primary output) in picoseconds.
	CriticalPathPs float64
	// CriticalPath lists the steps of the worst path, start to end.
	CriticalPath []PathStep
	// SlackPs is ClockPeriodPs - CriticalPathPs when a period was given.
	SlackPs float64
	// MaxFrequencyGHz is 1000 / CriticalPathPs.
	MaxFrequencyGHz float64
	// ArrivalPs maps every net name to its worst arrival time.
	ArrivalPs map[string]float64
	// Endpoints is the number of timing endpoints analyzed.
	Endpoints int
}

// Overhead returns the fractional critical-path increase of after relative
// to before; negative values mean the path got faster.
func Overhead(before, after *Report) float64 {
	if before == nil || after == nil || before.CriticalPathPs <= 0 {
		return 0
	}
	return (after.CriticalPathPs - before.CriticalPathPs) / before.CriticalPathPs
}

// node is the per-gate record used during levelized arrival propagation.
type node struct {
	inst   *netlist.Instance
	inNets []*netlist.Net
	outNet *netlist.Net
}

// Analyze runs a full-chip static timing analysis on the placed design.
// The placement may be nil, in which case wire delay and wire load are
// ignored (useful to isolate the pure gate-delay component).
func Analyze(d *netlist.Design, p *place.Placement, opts Options) (*Report, error) {
	opts = opts.withDefaults()

	// Collect combinational nodes and sequential elements.
	var nodes []node
	var seqs []*netlist.Instance
	for _, inst := range d.Instances() {
		m := inst.Master
		switch {
		case m.Filler:
			continue
		case m.Sequential:
			seqs = append(seqs, inst)
		default:
			out := inst.Conn(m.OutputPin())
			if out == nil {
				return nil, fmt.Errorf("timing: gate %q output unconnected", inst.Name)
			}
			n := node{inst: inst, outNet: out}
			for _, pin := range m.Inputs() {
				net := inst.Conn(pin)
				if net == nil {
					return nil, fmt.Errorf("timing: pin %s.%s unconnected", inst.Name, pin)
				}
				n.inNets = append(n.inNets, net)
			}
			nodes = append(nodes, n)
		}
	}

	order, err := levelize(nodes)
	if err != nil {
		return nil, err
	}

	arrival := make(map[*netlist.Net]float64, d.NumNets())
	prev := make(map[*netlist.Net]PathStep, d.NumNets())

	// Launch points: primary inputs at t=0 and flip-flop outputs at their
	// clock-to-output delay.
	for _, port := range d.Ports() {
		if port.Dir == netlist.In {
			arrival[port.Net] = 0
		}
	}
	for _, ff := range seqs {
		out := ff.Conn(ff.Master.OutputPin())
		if out == nil {
			continue
		}
		t := cellDelay(d, p, ff, out, opts) + wireDelay(d, p, out, opts)
		if t > arrival[out] {
			arrival[out] = t
			prev[out] = PathStep{Inst: ff, Net: out, DelayPs: t, ArrivalPs: t}
		}
	}

	// Propagate arrivals in topological order.
	for _, n := range order {
		worst := 0.0
		for _, in := range n.inNets {
			if a := arrival[in]; a >= worst {
				worst = a
			}
		}
		delay := cellDelay(d, p, n.inst, n.outNet, opts) + wireDelay(d, p, n.outNet, opts)
		t := worst + delay
		if t > arrival[n.outNet] {
			arrival[n.outNet] = t
			prev[n.outNet] = PathStep{Inst: n.inst, Net: n.outNet, DelayPs: delay, ArrivalPs: t}
		}
	}

	// Endpoints: flip-flop D nets and primary-output nets.
	rep := &Report{ArrivalPs: make(map[string]float64, len(arrival))}
	for net, t := range arrival {
		rep.ArrivalPs[net.Name] = t
	}
	var worstNet *netlist.Net
	consider := func(net *netlist.Net) {
		if net == nil {
			return
		}
		rep.Endpoints++
		if t := arrival[net]; t >= rep.CriticalPathPs {
			rep.CriticalPathPs = t
			worstNet = net
		}
	}
	for _, ff := range seqs {
		consider(ff.Conn("D"))
	}
	for _, port := range d.Ports() {
		if port.Dir == netlist.Out {
			consider(port.Net)
		}
	}
	if rep.Endpoints == 0 {
		// Purely combinational fan-out-free design: fall back to the worst
		// arrival anywhere.
		for net, t := range arrival {
			rep.Endpoints++
			if t >= rep.CriticalPathPs {
				rep.CriticalPathPs = t
				worstNet = net
			}
		}
	}

	// Reconstruct the critical path by walking prev links backwards through
	// the worst input of each step's driver.
	rep.CriticalPath = tracePath(d, prev, arrival, worstNet)
	if rep.CriticalPathPs > 0 {
		rep.MaxFrequencyGHz = 1000 / rep.CriticalPathPs
	}
	if opts.ClockPeriodPs > 0 {
		rep.SlackPs = opts.ClockPeriodPs - rep.CriticalPathPs
	}
	return rep, nil
}

// levelize orders the combinational nodes topologically.
func levelize(nodes []node) ([]node, error) {
	driver := make(map[*netlist.Net]int, len(nodes))
	for i, n := range nodes {
		driver[n.outNet] = i
	}
	indeg := make([]int, len(nodes))
	deps := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, in := range n.inNets {
			if di, ok := driver[in]; ok {
				indeg[i]++
				deps[di] = append(deps[di], i)
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	out := make([]node, 0, len(nodes))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		out = append(out, nodes[i])
		for _, j := range deps[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(out) != len(nodes) {
		return nil, fmt.Errorf("timing: combinational loop detected (%d gates unorderable)", len(nodes)-len(out))
	}
	return out, nil
}

// tracePath rebuilds the critical path from the prev-step links.
func tracePath(d *netlist.Design, prev map[*netlist.Net]PathStep, arrival map[*netlist.Net]float64, end *netlist.Net) []PathStep {
	var rev []PathStep
	seen := make(map[*netlist.Net]bool)
	for net := end; net != nil && !seen[net]; {
		seen[net] = true
		step, ok := prev[net]
		if !ok {
			break
		}
		rev = append(rev, step)
		// Move to the worst input of the driver.
		if step.Inst == nil || step.Inst.Master.Sequential {
			break
		}
		var worst *netlist.Net
		worstT := -1.0
		for _, pin := range step.Inst.Master.Inputs() {
			in := step.Inst.Conn(pin)
			if in == nil {
				continue
			}
			if t := arrival[in]; t > worstT {
				worstT = t
				worst = in
			}
		}
		net = worst
	}
	// Reverse into launch-to-capture order.
	sort.SliceStable(rev, func(i, j int) bool { return rev[i].ArrivalPs < rev[j].ArrivalPs })
	return rev
}

// derate returns the multiplicative delay derating factor for a point.
func derate(opts Options, per10C float64, at geom.Point) float64 {
	if opts.TemperatureMap == nil {
		return 1
	}
	ix, iy := opts.TemperatureMap.CellOf(at)
	t := opts.TemperatureMap.At(ix, iy)
	d := 1 + per10C*(t-opts.NominalC)/10
	if d < 0.5 {
		d = 0.5
	}
	return d
}

// cellDelay returns the delay of a gate driving its output net in ps.
func cellDelay(d *netlist.Design, p *place.Placement, inst *netlist.Instance, out *netlist.Net, opts Options) float64 {
	lib := d.Lib
	load := 0.0 // fF
	for _, l := range out.Loads {
		if l.Inst != nil {
			load += l.Inst.Master.PinCap(l.Pin)
		}
	}
	if p != nil {
		load += p.HPWL(out) * lib.WireCapPerUm
	}
	// kOhm * fF = ps.
	delay := inst.Master.Intrinsic + inst.Master.DriveRes*load
	if p != nil {
		delay *= derate(opts, opts.CellDeratePer10C, p.Center(inst))
	}
	return delay
}

// wireDelay returns the lumped Elmore wire delay of the net in ps.
func wireDelay(d *netlist.Design, p *place.Placement, net *netlist.Net, opts Options) float64 {
	if p == nil {
		return 0
	}
	lib := d.Lib
	length := p.HPWL(net)
	rw := length * lib.WireResPerUm // ohm
	cw := length * lib.WireCapPerUm // fF
	pinCap := 0.0
	for _, l := range net.Loads {
		if l.Inst != nil {
			pinCap += l.Inst.Master.PinCap(l.Pin)
		}
	}
	// ohm * fF = 1e-3 ps.
	delay := (0.5*rw*cw + rw*pinCap) * 1e-3
	bbox := p.NetBBox(net)
	return delay * derate(opts, opts.WireDeratePer10C, bbox.Center())
}
