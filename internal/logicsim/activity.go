package logicsim

import (
	"fmt"
	"math/rand"
	"sort"

	"thermplace/internal/netlist"
)

// Activity holds per-net switching activities extracted from a simulation
// run: the average number of transitions per clock cycle of every net.
// It is the hand-off between logic simulation and power estimation.
type Activity struct {
	// TogglesPerCycle maps net name to its average transitions per cycle.
	TogglesPerCycle map[string]float64
	// Cycles is the number of simulated cycles the averages are based on.
	Cycles int
}

// For returns the toggle rate of the named net (0 when unknown).
func (a *Activity) For(net string) float64 { return a.TogglesPerCycle[net] }

// Uniform returns an Activity that assigns the same toggle rate to every net
// of the design; useful as a quick estimate when no simulation is wanted.
func Uniform(d *netlist.Design, rate float64) *Activity {
	act := &Activity{TogglesPerCycle: make(map[string]float64, d.NumNets()), Cycles: 0}
	for _, n := range d.Nets() {
		if isClockNet(n) {
			act.TogglesPerCycle[n.Name] = 2.0
			continue
		}
		act.TogglesPerCycle[n.Name] = rate
	}
	return act
}

// StimulusFunc decides, for each primary input and cycle, whether the input
// toggles. It receives the port name and the cycle number.
type StimulusFunc func(port string, cycle int) bool

// RandomStimulus returns a StimulusFunc that toggles each primary input with
// the probability returned by activityFor(port), using the given seed.
// activityFor typically routes through a bench.Workload keyed on the unit
// prefix of the port name.
func RandomStimulus(seed int64, activityFor func(port string) float64) StimulusFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(port string, cycle int) bool {
		return rng.Float64() < activityFor(port)
	}
}

// RunRandom simulates the design for the given number of cycles, driving
// primary inputs with the stimulus function, and returns the extracted
// switching activities. Clock nets are reported with two transitions per
// cycle (one rising and one falling edge).
func RunRandom(d *netlist.Design, cycles int, stim StimulusFunc) (*Activity, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("logicsim: cycle count must be positive, got %d", cycles)
	}
	sim, err := New(d)
	if err != nil {
		return nil, err
	}
	// Current input values; toggled per the stimulus. Inputs are visited in
	// sorted order so that a given seed always produces the same vectors.
	names := sim.Inputs()
	sort.Strings(names)
	inputVals := make(map[string]bool, len(names))
	for c := 0; c < cycles; c++ {
		for _, name := range names {
			if stim(name, c) {
				inputVals[name] = !inputVals[name]
			}
			if err := sim.SetInput(name, inputVals[name]); err != nil {
				return nil, err
			}
		}
		sim.Step()
	}
	act := &Activity{TogglesPerCycle: make(map[string]float64, len(sim.netNames)), Cycles: cycles}
	denom := float64(cycles - 1)
	if denom <= 0 {
		denom = 1
	}
	for i, name := range sim.netNames {
		if sim.clockNets[i] {
			act.TogglesPerCycle[name] = 2.0
			continue
		}
		act.TogglesPerCycle[name] = float64(sim.toggles[i]) / denom
	}
	return act, nil
}

// MeanActivity returns the average toggle rate over all non-clock nets; a
// convenient summary statistic for tests and reports.
func (a *Activity) MeanActivity() float64 {
	if len(a.TogglesPerCycle) == 0 {
		return 0
	}
	// Accumulate in sorted-key order: float addition does not commute in
	// rounding, so summing in map order would make the mean differ in the
	// last bits from run to run.
	names := make([]string, 0, len(a.TogglesPerCycle))
	for name := range a.TogglesPerCycle {
		names = append(names, name)
	}
	sort.Strings(names)
	sum, n := 0.0, 0
	for _, name := range names {
		v := a.TogglesPerCycle[name]
		if v == 2.0 { // clock convention
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
