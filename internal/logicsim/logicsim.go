// Package logicsim is a cycle-based gate-level logic simulator used to
// derive per-net switching activities from randomly generated test vectors,
// playing the role Synopsys VCS plays in the paper's flow.
//
// Semantics are zero-delay and cycle-based: within a clock cycle all
// combinational logic settles instantly, flip-flops capture their D inputs
// on the (implicit) rising clock edge, and toggle counts are taken between
// the settled states of consecutive cycles. Glitch power is therefore
// excluded, which matches the averaged-activity power-estimation flow the
// paper relies on.
package logicsim

import (
	"fmt"
	"sort"

	"thermplace/internal/celllib"
	"thermplace/internal/netlist"
)

// Simulator simulates one design instance.
type Simulator struct {
	design *netlist.Design

	netIndex map[*netlist.Net]int
	netNames []string
	values   []bool
	prev     []bool
	toggles  []int64

	// gates holds combinational instances in topological order.
	gates []gate
	// dffs holds the sequential elements.
	dffs []dff
	// inputs maps primary-input port name to net index (clock excluded).
	inputs map[string]int
	// clockNets are nets driven by ports identified as clocks ("clk"/"CK"
	// loads only); their activity is reported as two toggles per cycle.
	clockNets map[int]bool

	cycles int
}

type gate struct {
	inst   *netlist.Instance
	fn     celllib.Func
	inIdx  []int
	outIdx int
}

type dff struct {
	inst   *netlist.Instance
	dIdx   int
	outIdx int
	state  bool
}

// New builds a simulator for the design. It returns an error when the design
// contains combinational loops, undriven nets feeding logic, or masters the
// simulator cannot evaluate.
func New(d *netlist.Design) (*Simulator, error) {
	s := &Simulator{
		design:    d,
		netIndex:  make(map[*netlist.Net]int),
		inputs:    make(map[string]int),
		clockNets: make(map[int]bool),
	}
	for i, n := range d.Nets() {
		s.netIndex[n] = i
		s.netNames = append(s.netNames, n.Name)
	}
	s.values = make([]bool, len(s.netNames))
	s.prev = make([]bool, len(s.netNames))
	s.toggles = make([]int64, len(s.netNames))

	for _, p := range d.Ports() {
		if p.Dir != netlist.In {
			continue
		}
		idx, ok := s.netIndex[p.Net]
		if !ok {
			return nil, fmt.Errorf("logicsim: port %q net not indexed", p.Name)
		}
		if isClockNet(p.Net) {
			s.clockNets[idx] = true
			continue
		}
		s.inputs[p.Name] = idx
	}

	var combo []gate
	for _, inst := range d.Instances() {
		m := inst.Master
		switch {
		case m.Filler:
			continue
		case m.Sequential:
			dNet := inst.Conn("D")
			outNet := inst.Conn(m.OutputPin())
			if dNet == nil || outNet == nil {
				return nil, fmt.Errorf("logicsim: flip-flop %q missing D or output connection", inst.Name)
			}
			s.dffs = append(s.dffs, dff{inst: inst, dIdx: s.netIndex[dNet], outIdx: s.netIndex[outNet]})
		default:
			g := gate{inst: inst, fn: m.Function}
			for _, pin := range m.Inputs() {
				net := inst.Conn(pin)
				if net == nil {
					return nil, fmt.Errorf("logicsim: pin %s.%s unconnected", inst.Name, pin)
				}
				g.inIdx = append(g.inIdx, s.netIndex[net])
			}
			outNet := inst.Conn(m.OutputPin())
			if outNet == nil {
				return nil, fmt.Errorf("logicsim: gate %q output unconnected", inst.Name)
			}
			g.outIdx = s.netIndex[outNet]
			combo = append(combo, g)
		}
	}

	ordered, err := topoSort(combo, s)
	if err != nil {
		return nil, err
	}
	s.gates = ordered
	return s, nil
}

// isClockNet reports whether the net looks like a clock: it is named "clk"
// or "clock", or every instance load is a CK pin.
func isClockNet(n *netlist.Net) bool {
	if n.Name == "clk" || n.Name == "clock" || n.Name == "CK" {
		return true
	}
	if len(n.Loads) == 0 {
		return false
	}
	for _, l := range n.Loads {
		if l.Inst == nil || l.Pin != "CK" {
			return false
		}
	}
	return true
}

// topoSort orders the combinational gates so that every gate appears after
// all gates driving its inputs. Sources are primary inputs, flip-flop
// outputs and constant (tie) cells.
func topoSort(gates []gate, s *Simulator) ([]gate, error) {
	// Map from net index to the combinational gate driving it (if any).
	driverOf := make(map[int]int) // net index -> gate position in gates
	for gi, g := range gates {
		driverOf[g.outIdx] = gi
	}
	indeg := make([]int, len(gates))
	dependents := make([][]int, len(gates))
	for gi, g := range gates {
		for _, in := range g.inIdx {
			if di, ok := driverOf[in]; ok {
				indeg[gi]++
				dependents[di] = append(dependents[di], gi)
			}
		}
	}
	queue := make([]int, 0, len(gates))
	for gi, deg := range indeg {
		if deg == 0 {
			queue = append(queue, gi)
		}
	}
	ordered := make([]gate, 0, len(gates))
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		ordered = append(ordered, gates[gi])
		for _, dep := range dependents[gi] {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if len(ordered) != len(gates) {
		return nil, fmt.Errorf("logicsim: combinational loop detected (%d of %d gates unorderable)", len(gates)-len(ordered), len(gates))
	}
	return ordered, nil
}

// SetInput sets the value of a primary input for the current cycle.
func (s *Simulator) SetInput(port string, v bool) error {
	idx, ok := s.inputs[port]
	if !ok {
		return fmt.Errorf("logicsim: unknown primary input %q", port)
	}
	s.values[idx] = v
	return nil
}

// Inputs returns the names of the drivable primary inputs (clock excluded)
// in sorted order, so callers that drive vectors positionally are
// reproducible.
func (s *Simulator) Inputs() []string {
	out := make([]string, 0, len(s.inputs))
	for name := range s.inputs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Eval propagates the current input and register values through the
// combinational logic.
func (s *Simulator) Eval() {
	// Drive flip-flop outputs from their stored state.
	for _, f := range s.dffs {
		s.values[f.outIdx] = f.state
	}
	buf := make([]bool, 0, 4)
	for _, g := range s.gates {
		buf = buf[:0]
		for _, idx := range g.inIdx {
			buf = append(buf, s.values[idx])
		}
		s.values[g.outIdx] = g.fn.Eval(buf)
	}
}

// Step advances one clock cycle: combinational settle, register capture,
// settle again with the new register values, then toggle accounting against
// the previous cycle's settled state.
func (s *Simulator) Step() {
	s.Eval()
	// Capture D inputs.
	for i := range s.dffs {
		s.dffs[i].state = s.values[s.dffs[i].dIdx]
	}
	// Propagate the new register outputs.
	s.Eval()
	// Toggle accounting.
	if s.cycles > 0 {
		for i := range s.values {
			if s.values[i] != s.prev[i] {
				s.toggles[i]++
			}
		}
	}
	copy(s.prev, s.values)
	s.cycles++
}

// Cycles returns the number of Step calls so far.
func (s *Simulator) Cycles() int { return s.cycles }

// NetValue returns the current settled value of the named net.
func (s *Simulator) NetValue(name string) (bool, error) {
	n := s.design.Net(name)
	if n == nil {
		return false, fmt.Errorf("logicsim: unknown net %q", name)
	}
	return s.values[s.netIndex[n]], nil
}

// ReadBus reads port nets named prefix0, prefix1, ... and returns them as an
// unsigned integer (bit 0 = prefix0). Missing indices terminate the bus.
func (s *Simulator) ReadBus(prefix string) (uint64, int) {
	var val uint64
	width := 0
	for i := 0; ; i++ {
		n := s.design.Net(fmt.Sprintf("%s%d", prefix, i))
		if n == nil {
			break
		}
		if s.values[s.netIndex[n]] && i < 64 {
			val |= 1 << uint(i)
		}
		width++
	}
	return val, width
}

// SetBus drives primary inputs named prefix0.. with the bits of val.
func (s *Simulator) SetBus(prefix string, val uint64) error {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if _, ok := s.inputs[name]; !ok {
			if i == 0 {
				return fmt.Errorf("logicsim: no input bus %q", prefix)
			}
			return nil
		}
		if err := s.SetInput(name, val&(1<<uint(i)) != 0); err != nil {
			return err
		}
	}
}
