package logicsim

import (
	"testing"

	"thermplace/internal/celllib"
	"thermplace/internal/netlist"
)

// buildCombDesign creates: z = (a NAND b) inverted = a AND b.
func buildCombDesign(t *testing.T) *netlist.Design {
	t.Helper()
	lib := celllib.Default65nm()
	d := netlist.NewDesign("comb", lib)
	mustPort := func(n string, dir netlist.PortDir) *netlist.Port {
		p, err := d.AddPort(n, dir)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mustPort("a", netlist.In)
	mustPort("b", netlist.In)
	mustPort("z", netlist.Out)
	u1, _ := d.AddInstance("u1", "NAND2_X1", "")
	u2, _ := d.AddInstance("u2", "INV_X1", "")
	n1 := d.GetOrCreateNet("n1")
	conn := func(inst *netlist.Instance, pin string, net *netlist.Net) {
		t.Helper()
		if err := d.Connect(inst, pin, net); err != nil {
			t.Fatal(err)
		}
	}
	conn(u1, "A", d.Net("a"))
	conn(u1, "B", d.Net("b"))
	conn(u1, "Z", n1)
	conn(u2, "A", n1)
	conn(u2, "Z", d.Net("z"))
	return d
}

// buildSeqDesign creates a 1-bit toggle register: q <= q XOR en.
func buildSeqDesign(t *testing.T) *netlist.Design {
	t.Helper()
	lib := celllib.Default65nm()
	d := netlist.NewDesign("seq", lib)
	if _, err := d.AddPort("clk", netlist.In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("en", netlist.In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("q", netlist.Out); err != nil {
		t.Fatal(err)
	}
	x, _ := d.AddInstance("x", "XOR2_X1", "")
	ff, _ := d.AddInstance("ff", "DFF_X1", "")
	buf, _ := d.AddInstance("ob", "BUF_X1", "")
	dNet := d.GetOrCreateNet("d")
	qNet := d.GetOrCreateNet("qi")
	conn := func(inst *netlist.Instance, pin string, net *netlist.Net) {
		t.Helper()
		if err := d.Connect(inst, pin, net); err != nil {
			t.Fatal(err)
		}
	}
	conn(x, "A", qNet)
	conn(x, "B", d.Net("en"))
	conn(x, "Z", dNet)
	conn(ff, "D", dNet)
	conn(ff, "CK", d.Net("clk"))
	conn(ff, "Z", qNet)
	conn(buf, "A", qNet)
	conn(buf, "Z", d.Net("q"))
	return d
}

func TestCombinationalEvaluation(t *testing.T) {
	d := buildCombDesign(t)
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want bool }{
		{false, false, false},
		{true, false, false},
		{false, true, false},
		{true, true, true},
	}
	for _, c := range cases {
		if err := sim.SetInput("a", c.a); err != nil {
			t.Fatal(err)
		}
		if err := sim.SetInput("b", c.b); err != nil {
			t.Fatal(err)
		}
		sim.Eval()
		got, err := sim.NetValue("z")
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("a=%v b=%v: z=%v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSequentialToggle(t *testing.T) {
	d := buildSeqDesign(t)
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("en", true); err != nil {
		t.Fatal(err)
	}
	// With enable high, q toggles every cycle: 0 -> 1 -> 0 -> 1 ...
	want := []bool{true, false, true, false}
	for i, w := range want {
		sim.Step()
		got, _ := sim.NetValue("q")
		if got != w {
			t.Fatalf("cycle %d: q=%v, want %v", i, got, w)
		}
	}
	// With enable low, q holds.
	if err := sim.SetInput("en", false); err != nil {
		t.Fatal(err)
	}
	prev, _ := sim.NetValue("q")
	sim.Step()
	got, _ := sim.NetValue("q")
	if got != prev {
		t.Fatal("q should hold when enable is low")
	}
}

func TestClockNetDetection(t *testing.T) {
	d := buildSeqDesign(t)
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.inputs["clk"]; ok {
		t.Fatal("clock must not be a drivable input")
	}
	if _, ok := sim.inputs["en"]; !ok {
		t.Fatal("en must be a drivable input")
	}
}

func TestSetInputErrors(t *testing.T) {
	d := buildCombDesign(t)
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("nope", true); err == nil {
		t.Fatal("unknown input must error")
	}
	if _, err := sim.NetValue("nope"); err == nil {
		t.Fatal("unknown net must error")
	}
}

func TestCombinationalLoopDetection(t *testing.T) {
	lib := celllib.Default65nm()
	d := netlist.NewDesign("loop", lib)
	u1, _ := d.AddInstance("u1", "INV_X1", "")
	u2, _ := d.AddInstance("u2", "INV_X1", "")
	n1 := d.GetOrCreateNet("n1")
	n2 := d.GetOrCreateNet("n2")
	_ = d.Connect(u1, "A", n2)
	_ = d.Connect(u1, "Z", n1)
	_ = d.Connect(u2, "A", n1)
	_ = d.Connect(u2, "Z", n2)
	if _, err := New(d); err == nil {
		t.Fatal("combinational loop must be rejected")
	}
}

func TestUnconnectedPinRejected(t *testing.T) {
	lib := celllib.Default65nm()
	d := netlist.NewDesign("open", lib)
	u1, _ := d.AddInstance("u1", "NAND2_X1", "")
	_ = d.Connect(u1, "A", d.GetOrCreateNet("a"))
	_ = d.Connect(u1, "Z", d.GetOrCreateNet("z"))
	if _, err := New(d); err == nil {
		t.Fatal("unconnected input pin must be rejected")
	}
}

func TestToggleCountingAndActivity(t *testing.T) {
	d := buildSeqDesign(t)
	// Always-toggling enable: internal q net toggles every cycle.
	act, err := RunRandom(d, 101, func(port string, cycle int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	// en never toggles (starts false) -> q holds at 0 -> zero activity.
	if r := act.For("qi"); r != 0 {
		t.Fatalf("q activity with idle enable = %v, want 0", r)
	}
	if act.For("clk") != 2.0 {
		t.Fatalf("clock activity = %v, want 2", act.For("clk"))
	}

	// Stimulus that always toggles en: en alternates, q toggles when en is 1.
	act2, err := RunRandom(d, 200, func(port string, cycle int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if r := act2.For("qi"); r < 0.3 || r > 0.7 {
		t.Fatalf("q activity with alternating enable = %v, want about 0.5", r)
	}
	if act2.Cycles != 200 {
		t.Fatalf("Cycles = %d", act2.Cycles)
	}
	if act2.MeanActivity() <= 0 {
		t.Fatal("mean activity should be positive")
	}
}

func TestRunRandomValidation(t *testing.T) {
	d := buildCombDesign(t)
	if _, err := RunRandom(d, 0, func(string, int) bool { return false }); err == nil {
		t.Fatal("zero cycles must error")
	}
}

func TestUniformActivity(t *testing.T) {
	d := buildSeqDesign(t)
	act := Uniform(d, 0.3)
	if act.For("d") != 0.3 {
		t.Fatalf("uniform activity = %v", act.For("d"))
	}
	if act.For("clk") != 2.0 {
		t.Fatalf("clock uniform activity = %v", act.For("clk"))
	}
}

func TestRandomStimulusRespectsProbability(t *testing.T) {
	stim := RandomStimulus(42, func(port string) float64 {
		if port == "hot" {
			return 1.0
		}
		return 0.0
	})
	hot, cold := 0, 0
	for c := 0; c < 100; c++ {
		if stim("hot", c) {
			hot++
		}
		if stim("cold", c) {
			cold++
		}
	}
	if hot != 100 || cold != 0 {
		t.Fatalf("stimulus probabilities not respected: hot=%d cold=%d", hot, cold)
	}
}

func TestBusHelpers(t *testing.T) {
	lib := celllib.Default65nm()
	d := netlist.NewDesign("bus", lib)
	for i := 0; i < 4; i++ {
		if _, err := d.AddPort(fmtName("a", i), netlist.In); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AddPort(fmtName("z", i), netlist.Out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		u, _ := d.AddInstance(fmtName("u", i), "BUF_X1", "")
		_ = d.Connect(u, "A", d.Net(fmtName("a", i)))
		_ = d.Connect(u, "Z", d.Net(fmtName("z", i)))
	}
	sim, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetBus("a", 0b1010); err != nil {
		t.Fatal(err)
	}
	sim.Eval()
	v, w := sim.ReadBus("z")
	if w != 4 || v != 0b1010 {
		t.Fatalf("ReadBus = %b (width %d), want 1010 (4)", v, w)
	}
	if err := sim.SetBus("nonexistent", 1); err == nil {
		t.Fatal("SetBus on missing bus must error")
	}
}

func fmtName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
