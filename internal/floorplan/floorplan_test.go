package floorplan

import (
	"math"
	"testing"
	"testing/quick"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

func smallDesign(t *testing.T) *netlist.Design {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewFloorplanUtilization(t *testing.T) {
	d := smallDesign(t)
	for _, util := range []float64{0.6, 0.75, 0.85, 0.95} {
		fp, err := New(d, Config{Utilization: util, AspectRatio: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		got := d.TotalCellArea() / fp.CoreArea()
		// Snapping to rows/sites only ever grows the core, so the achieved
		// utilization must be <= the request and close to it.
		if got > util+1e-9 {
			t.Errorf("util %g: achieved %g exceeds request", util, got)
		}
		if got < util*0.9 {
			t.Errorf("util %g: achieved %g too far below request", util, got)
		}
		// Rows must tile the core height exactly.
		if want := float64(fp.NumRows()) * fp.RowHeight; math.Abs(want-fp.Core.H()) > 1e-9 {
			t.Errorf("rows (%d x %g) do not tile core height %g", fp.NumRows(), fp.RowHeight, fp.Core.H())
		}
	}
}

func TestNewFloorplanValidation(t *testing.T) {
	d := smallDesign(t)
	if _, err := New(d, Config{Utilization: 0}); err == nil {
		t.Error("zero utilization must fail")
	}
	if _, err := New(d, Config{Utilization: 1.5}); err == nil {
		t.Error("utilization > 1 must fail")
	}
	lib := celllib.Default65nm()
	empty := netlist.NewDesign("empty", lib)
	if _, err := New(empty, DefaultConfig()); err == nil {
		t.Error("empty design must fail")
	}
}

func TestRegionsTileCore(t *testing.T) {
	d := smallDesign(t)
	fp, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	units := d.Units()
	if len(fp.Regions) != len(units) {
		t.Fatalf("regions = %d, units = %d", len(fp.Regions), len(units))
	}
	// Regions must cover the core area exactly (they are a partition).
	sum := 0.0
	for _, reg := range fp.Regions {
		sum += reg.Rect.Area()
		if reg.Rect.Empty() {
			t.Errorf("region %s is empty", reg.Unit)
		}
		if reg.Rect.Intersect(fp.Core) != reg.Rect {
			t.Errorf("region %s extends outside the core", reg.Unit)
		}
	}
	if math.Abs(sum-fp.CoreArea()) > 1e-6*fp.CoreArea() {
		t.Fatalf("regions cover %g of core %g", sum, fp.CoreArea())
	}
	// Regions must not overlap each other.
	regs := make([]*Region, 0, len(fp.Regions))
	for _, r := range fp.Regions {
		regs = append(regs, r)
	}
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			if ov := regs[i].Rect.Intersect(regs[j].Rect); ov.Area() > 1e-6 {
				t.Errorf("regions %s and %s overlap by %g", regs[i].Unit, regs[j].Unit, ov.Area())
			}
		}
	}
	// Region area should be roughly proportional to cell area.
	for _, reg := range fp.Regions {
		wantFrac := reg.CellArea / d.TotalCellArea()
		gotFrac := reg.Rect.Area() / fp.CoreArea()
		if math.Abs(wantFrac-gotFrac) > 0.10 {
			t.Errorf("region %s area fraction %g vs cell fraction %g", reg.Unit, gotFrac, wantFrac)
		}
	}
}

func TestRegionLocalUtilization(t *testing.T) {
	d := smallDesign(t)
	fp, err := New(d, Config{Utilization: 0.8, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every region must be able to hold its unit's cells (local utilization
	// no higher than ~1).
	for _, reg := range fp.Regions {
		if reg.CellArea > reg.Rect.Area()*1.001 {
			t.Errorf("region %s cannot hold its cells: %g > %g", reg.Unit, reg.CellArea, reg.Rect.Area())
		}
	}
}

func TestRowAtAndRowRect(t *testing.T) {
	d := smallDesign(t)
	fp, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r0 := fp.RowAt(fp.Core.Ylo + 0.1)
	if r0 == nil || r0.Index != 0 {
		t.Fatalf("RowAt(bottom) = %+v", r0)
	}
	rTop := fp.RowAt(fp.Core.Yhi + 100)
	if rTop.Index != fp.NumRows()-1 {
		t.Fatalf("RowAt above core should clamp to the top row, got %d", rTop.Index)
	}
	rect := fp.Rows[0].Rect(fp.RowHeight)
	if rect.H() != fp.RowHeight || rect.W() != fp.Rows[0].Width() {
		t.Fatalf("row rect = %v", rect)
	}
}

func TestInsertRows(t *testing.T) {
	d := smallDesign(t)
	fp, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	origRows := fp.NumRows()
	origHeight := fp.Core.H()
	origArea := fp.CoreArea()
	clone := fp.Clone()

	at := origRows / 2
	if err := clone.InsertRows(at, 4); err != nil {
		t.Fatal(err)
	}
	if clone.NumRows() != origRows+4 {
		t.Fatalf("rows after insert = %d, want %d", clone.NumRows(), origRows+4)
	}
	if math.Abs(clone.Core.H()-(origHeight+4*fp.RowHeight)) > 1e-9 {
		t.Fatalf("core height after insert = %g", clone.Core.H())
	}
	// The original must be untouched.
	if fp.NumRows() != origRows || fp.CoreArea() != origArea {
		t.Fatal("InsertRows must not modify the original floorplan (Clone broken)")
	}
	// Area overhead matches count*rowHeight*coreWidth.
	wantOverhead := 4 * fp.RowHeight * fp.Core.W()
	if math.Abs((clone.CoreArea()-origArea)-wantOverhead) > 1e-6 {
		t.Fatalf("area overhead = %g, want %g", clone.CoreArea()-origArea, wantOverhead)
	}
	// Regions above the insertion point must have shifted up; regions
	// spanning it must have stretched. Total region area grows by the
	// inserted area or stays covered.
	for unit, reg := range clone.Regions {
		orig := fp.Regions[unit].Rect
		if reg.Rect.W() != orig.W() {
			t.Errorf("region %s width changed", unit)
		}
		if reg.Rect.H() < orig.H()-1e-9 {
			t.Errorf("region %s shrank", unit)
		}
	}

	if err := clone.InsertRows(-1, 1); err == nil {
		t.Error("negative insertion index must fail")
	}
	if err := clone.InsertRows(0, 0); err == nil {
		t.Error("zero count must fail")
	}
}

func TestInsertRowsRegionStretch(t *testing.T) {
	// Hand-built floorplan for precise region arithmetic.
	fp := &Floorplan{
		Core:      geom.Rect{Xlo: 0, Ylo: 0, Xhi: 10, Yhi: 10},
		RowHeight: 1, SiteWidth: 0.2, Utilization: 1,
		Regions: map[string]*Region{
			"below": {Unit: "below", Rect: geom.Rect{Xlo: 0, Ylo: 0, Xhi: 10, Yhi: 4}},
			"above": {Unit: "above", Rect: geom.Rect{Xlo: 0, Ylo: 6, Xhi: 10, Yhi: 10}},
			"span":  {Unit: "span", Rect: geom.Rect{Xlo: 0, Ylo: 4, Xhi: 10, Yhi: 6}},
		},
	}
	fp.rebuildRows(10)
	if err := fp.InsertRows(5, 2); err != nil {
		t.Fatal(err)
	}
	if got := fp.Regions["below"].Rect; got != (geom.Rect{Xlo: 0, Ylo: 0, Xhi: 10, Yhi: 4}) {
		t.Errorf("below region moved: %v", got)
	}
	if got := fp.Regions["above"].Rect; got != (geom.Rect{Xlo: 0, Ylo: 8, Xhi: 10, Yhi: 12}) {
		t.Errorf("above region not shifted: %v", got)
	}
	if got := fp.Regions["span"].Rect; got != (geom.Rect{Xlo: 0, Ylo: 4, Xhi: 10, Yhi: 8}) {
		t.Errorf("spanning region not stretched: %v", got)
	}
}

func TestBisectProperty(t *testing.T) {
	// Property: bisect returns one rect per area, they tile the input, and
	// each rect's area fraction tracks its weight fraction.
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 || len(seeds) > 12 {
			return true
		}
		areas := make([]float64, len(seeds))
		total := 0.0
		for i, s := range seeds {
			areas[i] = float64(s%50) + 1
			total += areas[i]
		}
		rect := geom.Rect{Xlo: 0, Ylo: 0, Xhi: 100, Yhi: 80}
		rects := bisect(rect, areas)
		if len(rects) != len(areas) {
			return false
		}
		sum := 0.0
		for i, r := range rects {
			if r.Empty() && areas[i] > 0 {
				return false
			}
			sum += r.Area()
			wantFrac := areas[i] / total
			gotFrac := r.Area() / rect.Area()
			if math.Abs(wantFrac-gotFrac) > 0.25 {
				return false
			}
		}
		return math.Abs(sum-rect.Area()) < 1e-6*rect.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Utilization != 0.85 || cfg.AspectRatio != 1.0 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
}
