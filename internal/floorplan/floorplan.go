// Package floorplan derives the physical outline of the design: the core
// area implied by a target row-utilization factor, the standard-cell rows
// inside it, and the rectangular regions assigned to each logical unit.
//
// The utilization factor follows the paper's definition: total cell area
// divided by core area. Relaxing it ("Default" strategy in the paper) grows
// the core and spreads cells uniformly; the post-placement techniques
// instead allocate the extra whitespace only where the hotspots are.
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"thermplace/internal/geom"
	"thermplace/internal/netlist"
)

// Row is one standard-cell placement row spanning the core horizontally.
type Row struct {
	// Index is the row number counted from the bottom of the core.
	Index int
	// Y is the y coordinate of the row's bottom edge in um.
	Y float64
	// X0 and X1 are the usable horizontal extent of the row in um.
	X0, X1 float64
}

// Width returns the usable width of the row.
func (r Row) Width() float64 { return r.X1 - r.X0 }

// Rect returns the row rectangle given the row height.
func (r Row) Rect(rowHeight float64) geom.Rect {
	return geom.Rect{Xlo: r.X0, Ylo: r.Y, Xhi: r.X1, Yhi: r.Y + rowHeight}
}

// Region is the rectangular placement region assigned to one logical unit.
type Region struct {
	Unit string
	Rect geom.Rect
	// CellArea is the total standard-cell area of the unit in um^2.
	CellArea float64
}

// Floorplan is the physical outline of a design.
type Floorplan struct {
	// Core is the placeable core area.
	Core geom.Rect
	// RowHeight and SiteWidth mirror the library technology values.
	RowHeight float64
	SiteWidth float64
	// Utilization is the target utilization the floorplan was built for.
	Utilization float64
	// AspectRatio is the target core aspect ratio (height / width) the
	// floorplan was built for, before row/site snapping. Derived floorplans
	// (place.Placement.Reflow) rebuild at a new utilization with this same
	// target, so they match a from-scratch floorplan bit for bit.
	AspectRatio float64
	// Rows are the placement rows from bottom to top.
	Rows []Row
	// Regions maps unit name to its assigned region.
	Regions map[string]*Region
}

// Config controls floorplan construction.
type Config struct {
	// Utilization is the target row-utilization factor (cell area / core
	// area), e.g. 0.85. Must be in (0, 1].
	Utilization float64
	// AspectRatio is core height / width; 1.0 gives a square die.
	AspectRatio float64
}

// DefaultConfig returns the configuration used by the experiments: a square
// core at 85% utilization, a typical high-density starting point.
func DefaultConfig() Config {
	return Config{Utilization: 0.85, AspectRatio: 1.0}
}

// New builds a floorplan for the design at the requested utilization.
// The core is sized so that totalCellArea / coreArea == cfg.Utilization,
// with the width snapped to placement sites and the height to whole rows.
// Each logical unit of the design receives a region whose area is
// proportional to its cell area, computed by recursive bisection so the
// units tile the core exactly.
func New(d *netlist.Design, cfg Config) (*Floorplan, error) {
	if cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("floorplan: utilization %g out of range (0, 1]", cfg.Utilization)
	}
	if cfg.AspectRatio <= 0 {
		cfg.AspectRatio = 1.0
	}
	lib := d.Lib
	cellArea := d.TotalCellArea()
	if cellArea <= 0 {
		return nil, fmt.Errorf("floorplan: design %q has no standard cells", d.Name)
	}
	coreArea := cellArea / cfg.Utilization
	width := math.Sqrt(coreArea / cfg.AspectRatio)
	height := coreArea / width
	// Snap: height to whole rows (round up), width to whole sites so the
	// actual utilization is never above the request.
	nRows := int(math.Ceil(height / lib.RowHeight))
	if nRows < 1 {
		nRows = 1
	}
	height = float64(nRows) * lib.RowHeight
	width = lib.SnapToSite(coreArea / height)

	fp := &Floorplan{
		Core:        geom.Rect{Xlo: 0, Ylo: 0, Xhi: width, Yhi: height},
		RowHeight:   lib.RowHeight,
		SiteWidth:   lib.SiteWidth,
		Utilization: cfg.Utilization,
		AspectRatio: cfg.AspectRatio,
		Regions:     make(map[string]*Region),
	}
	fp.rebuildRows(nRows)

	// Assign unit regions by recursive bisection over cell area.
	units := d.Units()
	if len(units) > 0 {
		type unitArea struct {
			name string
			area float64
		}
		var ua []unitArea
		untagged := 0.0
		for _, u := range units {
			a := 0.0
			for _, inst := range d.InstancesInUnit(u) {
				if !inst.IsFiller() {
					a += inst.Master.Area(lib.RowHeight)
				}
			}
			ua = append(ua, unitArea{u, a})
		}
		for _, inst := range d.Instances() {
			if inst.Unit == "" && !inst.IsFiller() {
				untagged += inst.Master.Area(lib.RowHeight)
			}
		}
		// Untagged glue logic is folded into the largest unit's region.
		if untagged > 0 && len(ua) > 0 {
			sort.Slice(ua, func(i, j int) bool { return ua[i].area > ua[j].area })
			ua[0].area += untagged
		}
		names := make([]string, len(ua))
		areas := make([]float64, len(ua))
		// Deterministic order: by name.
		sort.Slice(ua, func(i, j int) bool { return ua[i].name < ua[j].name })
		for i, u := range ua {
			names[i] = u.name
			areas[i] = u.area
		}
		rects := bisect(fp.Core, areas)
		for i, name := range names {
			fp.Regions[name] = &Region{Unit: name, Rect: rects[i], CellArea: areas[i]}
		}
	}
	return fp, nil
}

// rebuildRows regenerates the row list for the current core rectangle.
func (fp *Floorplan) rebuildRows(nRows int) {
	fp.Rows = fp.Rows[:0]
	for i := 0; i < nRows; i++ {
		fp.Rows = append(fp.Rows, Row{
			Index: i,
			Y:     fp.Core.Ylo + float64(i)*fp.RowHeight,
			X0:    fp.Core.Xlo,
			X1:    fp.Core.Xhi,
		})
	}
}

// NumRows returns the number of placement rows.
func (fp *Floorplan) NumRows() int { return len(fp.Rows) }

// CoreArea returns the core area in um^2.
func (fp *Floorplan) CoreArea() float64 { return fp.Core.Area() }

// RowAt returns the row whose vertical span contains y, or the nearest row
// when y lies outside the core.
func (fp *Floorplan) RowAt(y float64) *Row {
	if len(fp.Rows) == 0 {
		return nil
	}
	idx := int(math.Floor((y - fp.Core.Ylo) / fp.RowHeight))
	idx = geom.ClampInt(idx, 0, len(fp.Rows)-1)
	return &fp.Rows[idx]
}

// RegionOf returns the region of the unit, or nil when the unit is unknown.
func (fp *Floorplan) RegionOf(unit string) *Region { return fp.Regions[unit] }

// Clone returns a deep copy of the floorplan, so that post-placement
// transforms can stretch the core without affecting the original.
func (fp *Floorplan) Clone() *Floorplan {
	out := &Floorplan{
		Core:        fp.Core,
		RowHeight:   fp.RowHeight,
		SiteWidth:   fp.SiteWidth,
		Utilization: fp.Utilization,
		AspectRatio: fp.AspectRatio,
		Rows:        append([]Row(nil), fp.Rows...),
		Regions:     make(map[string]*Region, len(fp.Regions)),
	}
	for k, v := range fp.Regions {
		r := *v
		out.Regions[k] = &r
	}
	return out
}

// InsertRows grows the core vertically by count rows inserted starting at
// row index at (rows at and above shift up), renumbering and repositioning
// all rows. Regions overlapping the insertion point are stretched so they
// keep covering the same cells after the shift. This is the floorplan-level
// half of the paper's Empty Row Insertion.
func (fp *Floorplan) InsertRows(at, count int) error {
	if count <= 0 {
		return fmt.Errorf("floorplan: InsertRows count must be positive, got %d", count)
	}
	if at < 0 || at > len(fp.Rows) {
		return fmt.Errorf("floorplan: InsertRows index %d out of range [0, %d]", at, len(fp.Rows))
	}
	shift := float64(count) * fp.RowHeight
	yInsert := fp.Core.Ylo + float64(at)*fp.RowHeight
	fp.Core.Yhi += shift
	fp.rebuildRows(len(fp.Rows) + count)
	for _, reg := range fp.Regions {
		r := reg.Rect
		if r.Ylo >= yInsert {
			reg.Rect = r.Translate(0, shift)
		} else if r.Yhi > yInsert {
			reg.Rect = geom.Rect{Xlo: r.Xlo, Ylo: r.Ylo, Xhi: r.Xhi, Yhi: r.Yhi + shift}
		}
	}
	return nil
}

// bisect splits rect into len(areas) sub-rectangles whose areas are
// proportional to areas, by recursively splitting the item list into two
// halves of roughly equal total area and cutting the rectangle along its
// longer dimension.
func bisect(rect geom.Rect, areas []float64) []geom.Rect {
	out := make([]geom.Rect, len(areas))
	idx := make([]int, len(areas))
	for i := range idx {
		idx[i] = i
	}
	var recurse func(r geom.Rect, items []int)
	recurse = func(r geom.Rect, items []int) {
		if len(items) == 1 {
			out[items[0]] = r
			return
		}
		// Sort a copy by area descending to balance the split.
		sorted := append([]int(nil), items...)
		sort.Slice(sorted, func(i, j int) bool { return areas[sorted[i]] > areas[sorted[j]] })
		total := 0.0
		for _, i := range sorted {
			total += areas[i]
		}
		var left, right []int
		leftArea, rightArea := 0.0, 0.0
		for _, i := range sorted {
			if leftArea <= rightArea {
				left = append(left, i)
				leftArea += areas[i]
			} else {
				right = append(right, i)
				rightArea += areas[i]
			}
		}
		frac := 0.5
		if total > 0 {
			frac = leftArea / total
		}
		if r.W() >= r.H() {
			cut := r.Xlo + frac*r.W()
			recurse(geom.Rect{Xlo: r.Xlo, Ylo: r.Ylo, Xhi: cut, Yhi: r.Yhi}, left)
			recurse(geom.Rect{Xlo: cut, Ylo: r.Ylo, Xhi: r.Xhi, Yhi: r.Yhi}, right)
		} else {
			cut := r.Ylo + frac*r.H()
			recurse(geom.Rect{Xlo: r.Xlo, Ylo: r.Ylo, Xhi: r.Xhi, Yhi: cut}, left)
			recurse(geom.Rect{Xlo: r.Xlo, Ylo: cut, Xhi: r.Xhi, Yhi: r.Yhi}, right)
		}
	}
	if len(areas) > 0 {
		recurse(rect, idx)
	}
	return out
}
