package analysis

import "fmt"

// Run applies every analyzer to every package and returns the surviving
// diagnostics in stable (file, line, column, analyzer) order.
//
// Beyond the analyzers' own findings, Run enforces the hygiene of the
// escape hatch itself, under the reserved analyzer name "repolint":
//
//   - a malformed //repolint:allow directive (bad syntax or empty reason)
//     is a finding;
//   - a directive naming an analyzer not part of this run is a finding
//     (it is a typo, or the check it referred to no longer exists);
//   - a directive that suppressed nothing is a finding (the code it
//     excused has been fixed or moved — stale allows must not linger to
//     silently excuse future regressions).
//
// "repolint" diagnostics cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var directives []*directive
	report := func(d Diagnostic) { diags = append(diags, d) }

	var raw []Diagnostic
	for _, pkg := range pkgs {
		directives = append(directives, parseDirectives(pkg, report)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	idx := indexDirectives(directives)
	for _, d := range raw {
		if !idx.suppress(d) {
			diags = append(diags, d)
		}
	}
	for _, dir := range directives {
		switch {
		case !known[dir.analyzer]:
			diags = append(diags, Diagnostic{
				Pos:      dir.pos,
				Position: dir.position,
				Analyzer: "repolint",
				Message:  fmt.Sprintf("allow directive names unknown analyzer %q", dir.analyzer),
			})
		case !dir.used:
			diags = append(diags, Diagnostic{
				Pos:      dir.pos,
				Position: dir.position,
				Analyzer: "repolint",
				Message:  fmt.Sprintf("unused allow directive for %s: the finding it excused is gone; delete the directive", dir.analyzer),
			})
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}
