// Package lintest is an analysistest-style golden harness for the repolint
// analyzers: testdata packages carry `// want "regexp"` comments on the
// lines where diagnostics are expected, and the harness fails the test on
// any unexpected, missing or mismatched diagnostic. Like the loader it
// mimics, it resolves the testdata packages' (standard-library) imports
// through `go list -export`, so it runs offline on a bare toolchain.
package lintest

import (
	"regexp"
	"strings"
	"testing"

	"thermplace/internal/analysis"
)

// Run loads the given packages from srcRoot (a testdata/src-style tree,
// each element a directory path relative to it), applies the analyzer, and
// compares the diagnostics against the // want comments in the sources.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunAll(t, srcRoot, []*analysis.Analyzer{a}, pkgs...)
}

// RunAll is Run with several analyzers applied together (used to test the
// driver-level directive hygiene, which spans analyzers).
func RunAll(t *testing.T, srcRoot string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loaded, err := analysis.LoadTestdata(".", srcRoot, pkgs...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	diags, err := analysis.Run(loaded, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*wantExpr)
	for _, pkg := range loaded {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, w := range parseWants(t, c.Text) {
						pos := pkg.Fset.Position(c.Pos())
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], w)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type wantExpr struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the backquoted or double-quoted expectation strings from
// a `// want "..." `...`` comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts the expectations of one comment. The comment must be
// of the form
//
//	// want "regexp" `another regexp`
//
// with one expectation per diagnostic expected on that line.
func parseWants(t *testing.T, text string) []*wantExpr {
	t.Helper()
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil
	}
	var out []*wantExpr
	for _, q := range wantRE.FindAllString(rest, -1) {
		body := q[1 : len(q)-1]
		if q[0] == '"' {
			body = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(body)
		}
		re, err := regexp.Compile(body)
		if err != nil {
			t.Fatalf("bad want pattern %s: %v", q, err)
		}
		out = append(out, &wantExpr{re: re})
	}
	if len(out) == 0 {
		t.Fatalf("want comment with no quoted patterns: %s", text)
	}
	return out
}
