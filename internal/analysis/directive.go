package analysis

import (
	"go/token"
	"regexp"
	"strings"
)

// A directive is one parsed //repolint:allow comment. It suppresses the
// named analyzer's diagnostics on its own line and on the line directly
// below, so it works both as a trailing comment on the offending line and
// as a standalone comment above it:
//
//	//repolint:allow bareGo(this IS the worker pool the rule points to)
//	go p.worker(w)
//
// The reason is mandatory: an allow without a recorded justification is
// exactly the silent contract erosion repolint exists to prevent.
type directive struct {
	pos      token.Pos
	position token.Position
	analyzer string
	reason   string
	used     bool
}

const directivePrefix = "//repolint:allow"

var directiveRE = regexp.MustCompile(`^//repolint:allow\s+([A-Za-z][A-Za-z0-9_]*)\(([^)]*)\)\s*$`)

// parseDirectives extracts the allow directives of one loaded package.
// Malformed directives (bad syntax, or an empty reason) are reported as
// diagnostics under the reserved analyzer name "repolint" — they can never
// be suppressed.
func parseDirectives(pkg *Package, report func(Diagnostic)) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				m := directiveRE.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					report(Diagnostic{
						Pos:      c.Pos(),
						Position: pkg.Fset.Position(c.Pos()),
						Analyzer: "repolint",
						Message:  "malformed allow directive: want //repolint:allow analyzer(reason), with a non-empty reason",
					})
					continue
				}
				out = append(out, &directive{
					pos:      c.Pos(),
					position: pkg.Fset.Position(c.Pos()),
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// directiveIndex answers "is there an allow for analyzer a covering file f
// line l" in O(1).
type directiveIndex map[directiveKey]*directive

type directiveKey struct {
	file     string
	line     int
	analyzer string
}

func indexDirectives(ds []*directive) directiveIndex {
	idx := make(directiveIndex)
	for _, d := range ds {
		idx[directiveKey{d.position.Filename, d.position.Line, d.analyzer}] = d
	}
	return idx
}

// suppress reports whether a directive covers the diagnostic, marking the
// directive used. A directive on line L covers diagnostics on L and L+1.
func (idx directiveIndex) suppress(d Diagnostic) bool {
	if d.Analyzer == "repolint" {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		if dir, ok := idx[directiveKey{d.Position.Filename, line, d.Analyzer}]; ok {
			dir.used = true
			return true
		}
	}
	return false
}
