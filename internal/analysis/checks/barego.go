package checks

import (
	"go/ast"
	"strings"

	"thermplace/internal/analysis"
)

// BareGo forbids raw `go` statements in the numeric-core packages. The
// pipeline's concurrency runs on exactly two primitives — sparse.Pool
// (parked, panic-containing solver workers) and core's runTasks (bounded
// sweep group with sibling cancellation and lowest-index error selection)
// — and the leak/robustness suites assert their guarantees: a contained
// panic instead of a crash, zero goroutines left behind after Close, and
// deterministic error selection. A goroutine spawned outside them has none
// of that coverage. The primitives' own spawn sites carry
// //repolint:allow bareGo(...) directives: they are the implementation the
// rule points everyone else to.
var BareGo = &analysis.Analyzer{
	Name: "bareGo",
	Doc: "forbid raw go statements in the numeric core; concurrency must run on " +
		"sparse.Pool or core's runTasks, which own panic containment and leak accounting",
	Run: runBareGo,
}

// bareGoPackages extends the numeric core for this one analyzer: the query
// server (internal/serve) holds no numeric code — which is why it is not in
// corePackages and the clock-hostile nondeterminism analyzer leaves it alone
// — but its drain contract ("zero goroutines after Close, every in-flight
// request tracked") depends on no goroutine existing outside the tracked
// request path, so raw spawns are forbidden there too.
var bareGoPackages = map[string]bool{
	"serve": true,
}

func inBareGoPackage(path string) bool {
	if inCorePackage(path) {
		return true
	}
	for _, seg := range strings.Split(path, "/") {
		if bareGoPackages[seg] {
			return true
		}
	}
	return false
}

func runBareGo(pass *analysis.Pass) error {
	if !inBareGoPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw goroutine in the numeric core bypasses sparse.Pool/runTasks panic containment and leak accounting; run the work on one of those primitives")
			}
			return true
		})
	}
	return nil
}
