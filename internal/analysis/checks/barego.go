package checks

import (
	"go/ast"

	"thermplace/internal/analysis"
)

// BareGo forbids raw `go` statements in the numeric-core packages. The
// pipeline's concurrency runs on exactly two primitives — sparse.Pool
// (parked, panic-containing solver workers) and core's runTasks (bounded
// sweep group with sibling cancellation and lowest-index error selection)
// — and the leak/robustness suites assert their guarantees: a contained
// panic instead of a crash, zero goroutines left behind after Close, and
// deterministic error selection. A goroutine spawned outside them has none
// of that coverage. The primitives' own spawn sites carry
// //repolint:allow bareGo(...) directives: they are the implementation the
// rule points everyone else to.
var BareGo = &analysis.Analyzer{
	Name: "bareGo",
	Doc: "forbid raw go statements in the numeric core; concurrency must run on " +
		"sparse.Pool or core's runTasks, which own panic containment and leak accounting",
	Run: runBareGo,
}

func runBareGo(pass *analysis.Pass) error {
	if !inCorePackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw goroutine in the numeric core bypasses sparse.Pool/runTasks panic containment and leak accounting; run the work on one of those primitives")
			}
			return true
		})
	}
	return nil
}
