package checks

import (
	"go/types"

	"thermplace/internal/analysis"
)

// Nondeterminism forbids the three ambient-input families inside the
// numeric core (sparse, thermal, place, power, core, flow): wall-clock
// reads, the global math/rand source, and environment variables. Every
// sweep result is asserted bit-identical across worker counts, incremental
// modes and re-runs; an analysis that consults the clock, an unseeded
// generator or the environment is a function of something other than its
// declared inputs, and the bit-identity harness can only catch it by luck.
// Randomness is fine when it is seeded and threaded explicitly
// (rand.New(rand.NewSource(seed)), as internal/bench and logicsim do).
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid time.Now/Since/Until, the global math/rand source and env reads in the " +
		"numeric core; results must be pure functions of their declared inputs",
	Run: runNondeterminism,
}

// forbiddenFuncs maps package path -> function name -> replacement advice.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "thread timestamps in from the caller",
		"Since": "thread timestamps in from the caller",
		"Until": "thread timestamps in from the caller",
	},
	"os": {
		"Getenv":    "take configuration through Config fields",
		"LookupEnv": "take configuration through Config fields",
		"Environ":   "take configuration through Config fields",
		"ExpandEnv": "take configuration through Config fields",
	},
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators — the deterministic idiom the rule points callers to.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNondeterminism(pass *analysis.Pass) error {
	if !inCorePackage(pass.Path) {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		pkgPath := fn.Pkg().Path()
		switch pkgPath {
		case "time", "os":
			if advice, ok := forbiddenFuncs[pkgPath][fn.Name()]; ok && isPackageLevel(fn) {
				pass.Reportf(id.Pos(),
					"%s.%s in the numeric core makes results depend on ambient state; %s",
					pkgPath, fn.Name(), advice)
			}
		case "math/rand", "math/rand/v2":
			if isPackageLevel(fn) && !randConstructors[fn.Name()] {
				pass.Reportf(id.Pos(),
					"global %s.%s is unseeded and nondeterministic; use rand.New(rand.NewSource(seed)) with a seed threaded from the scenario",
					pkgPath, fn.Name())
			}
		}
	}
	return nil
}

// isPackageLevel reports whether fn is a package-scope function (methods,
// e.g. (*rand.Rand).Intn on an explicitly seeded generator, are fine).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
