package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"thermplace/internal/analysis"
)

// ErrProv enforces error provenance: the internal/fault taxonomy is only
// extractable (errors.Is(err, fault.ErrCanceled), errors.As(err, &nc)) if
// every layer wraps rather than flattens. Three patterns break the chain:
//
//   - fmt.Errorf formatting an error argument without a %w verb flattens
//     it to text;
//   - comparing errors with == misses wrapped sentinels (use errors.Is);
//   - type-asserting or type-switching on an error value misses wrapped
//     typed errors (use errors.As).
//
// Methods named Is, As or Unwrap are exempt: they implement the errors
// protocol itself, where identity comparison and assertions are the point.
var ErrProv = &analysis.Analyzer{
	Name: "errprov",
	Doc: "errors must stay extractable: fmt.Errorf with an error argument needs %w, " +
		"sentinel comparisons need errors.Is, and error type dispatch needs errors.As",
	Run: runErrProv,
}

func runErrProv(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && (fd.Name.Name == "Is" || fd.Name.Name == "As" || fd.Name.Name == "Unwrap") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					checkErrorfWrap(pass, x)
				case *ast.BinaryExpr:
					checkSentinelCompare(pass, x)
				case *ast.TypeAssertExpr:
					if x.Type != nil && isErrorInterface(pass.TypeOf(x.X)) {
						pass.Reportf(x.Pos(),
							"type assertion on an error misses wrapped errors; use errors.As")
					}
				case *ast.TypeSwitchStmt:
					if operand := typeSwitchOperand(x); operand != nil && isErrorInterface(pass.TypeOf(operand)) {
						pass.Reportf(x.Pos(),
							"type switch on an error misses wrapped errors; use errors.As per case")
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format at least one
// error-typed argument but use no %w verb, flattening the cause to text.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if formatHasWrapVerb(constant.StringVal(tv.Value)) {
		return
	}
	for _, arg := range call.Args[1:] {
		if implementsError(pass.TypeOf(arg)) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w: the cause becomes unreachable for errors.Is/errors.As (the fault taxonomy breaks here); use %%w")
			return
		}
	}
}

// formatHasWrapVerb scans a printf format string for a %w verb,
// tolerating %% escapes and flag/width characters between % and the verb.
func formatHasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // %% escape
			}
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
				if c == 'w' {
					return true
				}
				break
			}
			i++ // flag, width, precision or index character
		}
	}
	return false
}

// checkSentinelCompare flags ==/!= between an error and a non-nil value.
func checkSentinelCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isNilExpr(pass, be.X) || isNilExpr(pass, be.Y) {
		return // err == nil is the idiomatic success check
	}
	if isErrorInterface(pass.TypeOf(be.X)) || isErrorInterface(pass.TypeOf(be.Y)) {
		pass.Reportf(be.OpPos,
			"%s on errors misses wrapped sentinels; use errors.Is", be.Op)
	}
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// typeSwitchOperand extracts the expression a type switch inspects.
func typeSwitchOperand(ts *ast.TypeSwitchStmt) ast.Expr {
	var ta *ast.TypeAssertExpr
	switch st := ts.Assign.(type) {
	case *ast.ExprStmt:
		ta, _ = ast.Unparen(st.X).(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			ta, _ = ast.Unparen(st.Rhs[0]).(*ast.TypeAssertExpr)
		}
	}
	if ta == nil {
		return nil
	}
	return ta.X
}
