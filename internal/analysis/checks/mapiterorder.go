package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"thermplace/internal/analysis"
)

// MapIterOrder flags `range` statements over maps whose bodies fold the
// iteration into order-sensitive shared state: accumulating floats (float
// addition does not commute in rounding, so the result depends on the
// random iteration order — the exact bug PR 3 fixed in power.Report) or
// appending to a slice declared outside the loop (the element order becomes
// random). Iterate sorted keys, or a design-order index, instead.
var MapIterOrder = &analysis.Analyzer{
	Name: "mapiterorder",
	Doc: "flag range-over-map bodies that accumulate floats or append to outer slices; " +
		"map iteration order is randomized, so both break bit-reproducibility",
	Run: runMapIterOrder,
}

func runMapIterOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				checkMapRangeBody(pass, rs, fd.Body)
				return true
			})
		}
	}
	return nil
}

func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	// outside reports whether the identifier's object is declared outside
	// the range statement — i.e. the loop mutates state that survives it.
	outside := func(id *ast.Ident) bool {
		obj := pass.ObjectOf(id)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	}
	isFloat := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}

	inspectSkipFuncLit(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				root := rootIdent(lhs)
				if root != nil && outside(root) && isFloat(lhs) {
					pass.Reportf(as.Pos(),
						"float accumulation into %s inside range over map: the result depends on the randomized iteration order; iterate sorted keys instead",
						root.Name)
					return true
				}
			}
		case token.ASSIGN:
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				root := rootIdent(lhs)
				if root == nil || !outside(root) {
					continue
				}
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.BinaryExpr:
					// x = x + v (and -, *, /) written longhand.
					if !isFloat(lhs) {
						continue
					}
					switch rhs.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
						if exprUsesObject(pass, rhs, pass.ObjectOf(root)) {
							pass.Reportf(as.Pos(),
								"float accumulation into %s inside range over map: the result depends on the randomized iteration order; iterate sorted keys instead",
								root.Name)
							return true
						}
					}
				case *ast.CallExpr:
					// s = append(s, ...) collects elements in random order —
					// unless the slice is handed to sort/slices afterwards,
					// which is precisely the sorted-keys guard the fix idiom
					// uses (collect keys, sort, iterate sorted).
					if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
						if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
							if !sortedAfter(pass, fnBody, rs, pass.ObjectOf(root)) {
								pass.Reportf(as.Pos(),
									"append to %s inside range over map without a sorted-keys guard: the element order follows the randomized iteration order; sort the slice afterwards or iterate sorted keys",
									root.Name)
							}
							return true
						}
					}
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether, later in the enclosing function body, the
// accumulated slice is passed into the sort or slices package — the
// sorted-keys guard that restores a deterministic order after collecting
// from a map in random order.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil || obj == nil {
		return false
	}
	guarded := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if guarded {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprUsesObject(pass, arg, obj) {
				guarded = true
				return false
			}
		}
		return true
	})
	return guarded
}

// exprUsesObject reports whether any identifier in e resolves to obj.
func exprUsesObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
