// Package checks holds the repolint analyzers: structural enforcement of
// the pipeline's determinism, cancellation and error-provenance contracts.
// Each analyzer guards an invariant the test suite can only probe
// dynamically (and only on the paths a test happens to cover):
//
//   - mapiterorder: bit-reproducibility against map iteration order (the
//     PR 3 power.Report bug class);
//   - ctxpair: Foo/FooCtx pairs stay thin delegates and *Ctx loops keep
//     cancellation checks;
//   - errprov: errors wrap (%w, errors.Is/As) so the fault taxonomy stays
//     extractable through every layer;
//   - nondeterminism: no clocks, global randomness or environment reads in
//     the numeric core;
//   - bareGo: no raw goroutines outside the pooled primitives that own
//     panic containment and leak accounting.
//
// Findings are suppressed case by case with
//
//	//repolint:allow analyzer(reason)
//
// on, or directly above, the offending line; the reason is mandatory.
package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"thermplace/internal/analysis"
)

// All returns every repolint analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapIterOrder,
		CtxPair,
		ErrProv,
		Nondeterminism,
		BareGo,
	}
}

// corePackages names the numeric-core packages whose output feeds the
// bit-identity contracts. A package is "core" when any segment of its load
// path matches — which covers both the real tree (thermplace/internal/…)
// and the analyzers' testdata packages.
var corePackages = map[string]bool{
	"sparse":     true,
	"thermal":    true,
	"place":      true,
	"power":      true,
	"core":       true,
	"flow":       true,
	"timing":     true,
	"congestion": true,
	"hotspot":    true,
	"logicsim":   true,
}

func inCorePackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if corePackages[seg] {
			return true
		}
	}
	return false
}

// inspectSkipFuncLit walks the subtree rooted at n without descending into
// function literals: a closure's body does not run where it is written, so
// loop- and accumulation-shaped checks must not attribute its statements to
// the enclosing context.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// rootIdent unwraps selectors, indexing, stars and parens down to the
// leftmost identifier: the variable that is actually mutated by an
// assignment to the expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isRealCall reports whether e is a genuine function or method call — not a
// type conversion and not a call of a compile-time builtin.
func isRealCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			return false
		}
	}
	return true
}

// errorInterface is the universe error type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface)
}

// isErrorInterface reports whether t is exactly the error interface type.
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
