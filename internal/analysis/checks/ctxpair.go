package checks

import (
	"go/ast"
	"strings"

	"thermplace/internal/analysis"
)

// CtxPair enforces the two structural halves of the repository's
// cancellation contract:
//
//  1. When a function Foo has a sibling FooCtx (same package; same
//     receiver for methods), Foo must be a thin delegate — a single
//     statement forwarding to a *Ctx variant with a fresh context as the
//     first argument. That makes the "bit-identical when the context never
//     fires" guarantee structural: there is only one implementation, so
//     the pair cannot drift apart.
//  2. A *Ctx function that loops without ever consulting its context —
//     no ctx.Err()/ctx.Done(), and no call receiving the context — has a
//     window in which cancellation cannot land. Cheap pure-arithmetic
//     loops (no function calls) are exempt.
var CtxPair = &analysis.Analyzer{
	Name: "ctxpair",
	Doc: "Foo with a FooCtx sibling must thinly delegate to the Ctx variant, and loops " +
		"inside *Ctx functions must reference the context (directly or via their calls)",
	Run: runCtxPair,
}

func runCtxPair(pass *analysis.Pass) error {
	// Index the package's functions by (receiver base type, name) so Foo
	// can find FooCtx across files.
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls[funcKey(fd)] = fd
		}
	}

	for key, fd := range decls {
		name := fd.Name.Name
		if strings.HasSuffix(name, "Ctx") {
			checkCtxLoops(pass, fd)
			continue
		}
		sibling, ok := decls[key+"Ctx"]
		if !ok || fd.Body == nil {
			continue
		}
		if !isThinDelegate(pass, fd) {
			pass.Reportf(fd.Name.Pos(),
				"%s has a context sibling %s but is not a thin delegate: its body must be a single forward to a *Ctx variant (e.g. return %s(context.Background(), ...)), so the pair cannot drift apart",
				name, sibling.Name.Name, sibling.Name.Name)
		}
	}
	return nil
}

// funcKey is "Recv.Name" for methods and "Name" for functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// isThinDelegate reports whether the function body is exactly one forward
// to a *Ctx call whose first argument is a context. Accepted shapes:
//
//	return FooCtx(context.Background(), ...)
//	x.FooCtx(ctx, ...)        // no results
//	_ = x.FooCtx(ctx, ...)    // results deliberately discarded
func isThinDelegate(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(st.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(st.X).(*ast.CallExpr)
	case *ast.AssignStmt:
		if len(st.Rhs) != 1 {
			return false
		}
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return false
			}
		}
		call, _ = ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	default:
		return false
	}
	if call == nil {
		return false
	}
	var callee string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	default:
		return false
	}
	if !strings.HasSuffix(callee, "Ctx") {
		return false
	}
	return len(call.Args) > 0 && isContextType(pass.TypeOf(call.Args[0]))
}

// checkCtxLoops flags loops inside a *Ctx function that do real work (at
// least one genuine call) without referencing any context value.
func checkCtxLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !hasContextParam(pass, fd) {
		return
	}
	name := fd.Name.Name
	inspectSkipFuncLit(fd.Body, func(n ast.Node) bool {
		var body ast.Node
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			body = n
		default:
			return true
		}
		if loopReferencesContext(pass, body) {
			// The loop consults (or forwards) the context; an inner loop is
			// covered by the per-iteration check around it.
			return false
		}
		if loopHasRealCall(pass, body) {
			pass.Reportf(n.Pos(),
				"loop in %s never consults the context: add a ctx.Err()/ctx.Done() check or pass ctx into the loop's calls, or the cancellation contract has a blind window here",
				name)
		}
		return false
	})
}

func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// loopReferencesContext reports whether the loop subtree (closures
// excluded) mentions any value of type context.Context.
func loopReferencesContext(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	inspectSkipFuncLit(loop, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pass.ObjectOf(id); obj != nil && obj.Pkg() != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopHasRealCall reports whether the loop subtree (closures excluded)
// contains a genuine function or method call — the proxy for "this loop
// can run long enough that cancellation matters".
func loopHasRealCall(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	inspectSkipFuncLit(loop, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !found && isRealCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}
