package checks_test

import (
	"path/filepath"
	"testing"

	"thermplace/internal/analysis/checks"
	"thermplace/internal/analysis/lintest"
)

var testdata = filepath.Join("..", "testdata", "src")

func TestMapIterOrder(t *testing.T) {
	lintest.Run(t, testdata, checks.MapIterOrder, "mapiterorder")
}

func TestCtxPair(t *testing.T) {
	lintest.Run(t, testdata, checks.CtxPair, "ctxpair")
}

func TestErrProv(t *testing.T) {
	lintest.Run(t, testdata, checks.ErrProv, "errprov")
}

func TestNondeterminism(t *testing.T) {
	lintest.Run(t, testdata, checks.Nondeterminism, "nondeterminism/core", "nondeterminism/util")
}

func TestBareGo(t *testing.T) {
	lintest.Run(t, testdata, checks.BareGo, "barego/sparse", "barego/util", "barego/serve")
}
