// Package serve stands in for the query-server layer: it is outside the
// numeric core (wall clocks are fine here), but the drain contract — zero
// goroutines after Close, every in-flight request tracked — makes raw
// spawns just as dangerous, so bareGo covers it through its extended
// package set.
package serve

func handle(reqs []func()) {
	for _, r := range reqs {
		go r() // want `raw goroutine in the numeric core`
	}
}

// drainNotifier models the one legitimate spawn: the drain machinery itself,
// which owns the tracking the rule exists to protect.
func drainNotifier(idle chan struct{}) {
	//repolint:allow bareGo(the drain machinery is the tracking primitive itself)
	go func() { close(idle) }()
}
