// Package util is outside the numeric-core package list: goroutines here
// (reporting, harness plumbing) are not the analyzer's business.
package util

func Background(fn func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	return done
}
