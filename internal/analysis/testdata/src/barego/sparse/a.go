// Package sparse stands in for a numeric-core package (the path's last
// segment is what the analyzer keys on): raw goroutines are forbidden here.
package sparse

import "sync"

func fanOut(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() { // want `raw goroutine in the numeric core`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// pool models the one legitimate spawn site: the worker-pool implementation
// itself, marked with the escape hatch. The identical statement in fanOut
// stays flagged.
type pool struct{ workers int }

func (p *pool) start() {
	for w := 0; w < p.workers; w++ {
		//repolint:allow bareGo(this is the worker-pool implementation itself)
		go p.worker(w)
	}
}

func (p *pool) worker(int) {}
