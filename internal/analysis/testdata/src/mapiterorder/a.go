// Package mapiterorder exercises the mapiterorder analyzer: range-over-map
// bodies that fold the randomized iteration order into shared state.
package mapiterorder

import "sort"

// reportPR3 reproduces the PR 3 power.Report bug shape: per-instance float
// contributions summed in map iteration order made the sweep's totals
// differ bit-for-bit between runs.
func reportPR3(breakdown map[string]float64) float64 {
	total := 0.0
	for _, p := range breakdown {
		total += p // want `float accumulation into total`
	}
	return total
}

func longhand(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v*v // want `float accumulation into sum`
	}
	return sum
}

type report struct{ total float64 }

func intoField(m map[string]float64, r *report) {
	for _, v := range m {
		r.total += v // want `float accumulation into r`
	}
}

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map without a sorted-keys guard`
	}
	return out
}

// sortedKeysGuard is the fix idiom the analyzer must not flag: collecting
// keys is fine when the slice is sorted before use.
func sortedKeysGuard(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// intCounts commute exactly; integer accumulation is order-independent.
func intCounts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// loopLocal accumulates into a variable scoped to the iteration; nothing
// escapes in iteration order.
func loopLocal(m map[string][]float64) int {
	hot := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > 1 {
			hot++
		}
	}
	return hot
}

// closures collected in a map range do not run there; their bodies must
// not be attributed to the loop.
func closureBodyExempt(m map[string]float64) []func() float64 {
	total := 0.0
	var fns []func() float64
	for k := range m {
		_ = k
		fns = append(fns, func() float64 { // want `append to fns inside range over map without a sorted-keys guard`
			total += 1 // runs later, outside the range
			return total
		})
	}
	return fns
}

// allowed demonstrates the escape hatch: the directive suppresses exactly
// the one finding below it, while reportPR3 above stays flagged.
func allowed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//repolint:allow mapiterorder(demonstration: consumer tolerates any order)
		total += v
	}
	return total
}
