// Package util is outside the numeric-core package list: the same ambient
// reads that are flagged in ../core must pass untouched here.
package util

import (
	"math/rand"
	"os"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() int { return rand.Intn(10) }

func Debug() string { return os.Getenv("THERM_DEBUG") }
