// Package core stands in for a numeric-core package (the path's last
// segment is what the analyzer keys on): ambient inputs are forbidden here.
package core

import (
	"math/rand"
	"os"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want `time\.Now in the numeric core`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in the numeric core`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn is unseeded`
}

// seededOK is the idiom the rule points to: an explicit source threaded
// from the caller. Constructors and methods on the seeded generator pass.
func seededOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func env() string {
	return os.Getenv("THERM_DEBUG") // want `os\.Getenv in the numeric core`
}

// fileOK: os use that is not an environment read is out of scope.
func fileOK(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// allowedClock shows the escape hatch: the directive suppresses exactly
// this read, while the one in clock stays flagged.
func allowedClock() int64 {
	//repolint:allow nondeterminism(telemetry only; value never reaches results)
	return time.Now().UnixNano()
}
