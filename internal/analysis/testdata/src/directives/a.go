// Package directives exercises the driver's directive hygiene: malformed,
// unknown-analyzer and stale allow directives are findings themselves.
package directives

// Malformed: the reason is mandatory.
//repolint:allow bareGo()

// Unknown analyzer: a typo, or a check that no longer exists.
//repolint:allow nosuchcheck(the reason does not rescue a bad name)

// Stale: there is no finding on this line or the next to suppress.
//repolint:allow errprov(stale excuse)

func placeholder() {}
