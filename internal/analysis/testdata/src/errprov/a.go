// Package errprov exercises the errprov analyzer: wrap-vs-flatten,
// sentinel comparison and error type dispatch.
package errprov

import (
	"errors"
	"fmt"
)

var ErrBudget = errors.New("iteration budget exceeded")

type parseError struct{ line int }

func (e *parseError) Error() string { return fmt.Sprintf("parse error at line %d", e.line) }

// wrapOK keeps the cause reachable for errors.Is/As.
func wrapOK(err error) error { return fmt.Errorf("solve: %w", err) }

// leafOK creates a new error with no cause to lose.
func leafOK(n int) error { return fmt.Errorf("bad grid dimension %d", n) }

func flatten(err error) error {
	return fmt.Errorf("solve: %v", err) // want `fmt.Errorf formats an error without %w`
}

func flattenTyped(e *parseError) error {
	return fmt.Errorf("deck line %d: %s", e.line, e) // want `fmt.Errorf formats an error without %w`
}

func compare(err error) bool {
	return err == ErrBudget // want `== on errors misses wrapped sentinels`
}

func compareNeq(err error) bool {
	return err != ErrBudget // want `!= on errors misses wrapped sentinels`
}

// compareOK: errors.Is for sentinels, == nil for the success check.
func compareOK(err error) bool {
	return errors.Is(err, ErrBudget) || err == nil
}

func assert(err error) int {
	if pe, ok := err.(*parseError); ok { // want `type assertion on an error misses wrapped errors`
		return pe.line
	}
	return 0
}

func assertOK(err error) int {
	var pe *parseError
	if errors.As(err, &pe) {
		return pe.line
	}
	return 0
}

func dispatch(err error) string {
	switch err.(type) { // want `type switch on an error misses wrapped errors`
	case *parseError:
		return "parse"
	default:
		return "other"
	}
}

// Is implements the errors protocol; identity comparison is the point here
// and the analyzer must stay out.
func (e *parseError) Is(target error) bool { return target == ErrBudget }

// allowedCompare shows the escape hatch: the directive suppresses exactly
// this comparison, while the identical one in compare stays flagged.
func allowedCompare(err error) bool {
	//repolint:allow errprov(identity check against a process-local singleton)
	return err == ErrBudget
}
