// Package ctxpair exercises the ctxpair analyzer: Foo/FooCtx thin-delegate
// pairs and context checks inside *Ctx loops.
package ctxpair

import "context"

func step(x int) int { return x + 1 }

// Sweep is the contract shape: a thin delegate to its Ctx sibling.
func Sweep(n int) (int, error) {
	return SweepCtx(context.Background(), n)
}

// SweepCtx consults its context every iteration: compliant.
func SweepCtx(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total = step(total)
	}
	return total, nil
}

// Analyze duplicates the implementation instead of delegating; the pair
// can drift apart.
func Analyze(n int) int { // want `Analyze has a context sibling AnalyzeCtx but is not a thin delegate`
	total := 0
	for i := 0; i < n; i++ {
		total = step(total)
	}
	return total
}

// AnalyzeCtx takes a context but its loop never consults it.
func AnalyzeCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `loop in AnalyzeCtx never consults the context`
		total = step(total)
	}
	return total
}

type solver struct{}

// Solve delegates with discarded results — an accepted thin-delegate shape.
func (s *solver) Solve(n int) { _, _ = s.SolveCtx(context.Background(), n) }

func (s *solver) SolveCtx(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total = step(total)
	}
	return total, nil
}

// helper has no Ctx sibling; it is free to loop however it likes.
func helper(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total = step(total)
	}
	return total
}

// NormCtx's loop is pure arithmetic — no calls, so no cancellation window
// worth a per-iteration check.
func NormCtx(ctx context.Context, xs []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return s, nil
}

// TasksCtx only builds closures in its loop; the closure bodies run
// elsewhere and must not be attributed to the loop.
func TasksCtx(ctx context.Context, n int) ([]func() int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var tasks []func() int
	for i := 0; i < n; i++ {
		i := i
		tasks = append(tasks, func() int { return step(i) })
	}
	return tasks, nil
}

// ForwardCtx forwards the context into the loop's call — that is how the
// deeper layer gets its chance to observe cancellation.
func ForwardCtx(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		v, err := SweepCtx(ctx, i)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// GridCtx shows the escape hatch: the directive suppresses exactly this
// loop, while the identical one in AnalyzeCtx stays flagged.
func GridCtx(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := 0
	//repolint:allow ctxpair(bounded bookkeeping loop, no solves inside)
	for i := 0; i < n; i++ {
		total = step(total)
	}
	return total, nil
}
