package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"thermplace/internal/analysis"
	"thermplace/internal/analysis/checks"
)

// TestDirectiveHygiene drives the full set of analyzers over a package
// whose only content is broken allow directives, and checks that each kind
// is reported under the reserved "repolint" name. These cases cannot use
// lintest's // want comments: the expectation would have to share the
// directive's own comment line, which would itself change what is parsed.
func TestDirectiveHygiene(t *testing.T) {
	pkgs, err := analysis.LoadTestdata(".", filepath.Join("testdata", "src"), "directives")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	diags, err := analysis.Run(pkgs, checks.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	want := []struct {
		line    int
		message string
	}{
		{6, "malformed allow directive"},
		{9, `allow directive names unknown analyzer "nosuchcheck"`},
		{12, "unused allow directive for errprov"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, d := range diags {
		if d.Analyzer != "repolint" {
			t.Errorf("diag %d: analyzer = %q, want repolint", i, d.Analyzer)
		}
		if d.Position.Line != want[i].line {
			t.Errorf("diag %d: line = %d, want %d (%s)", i, d.Position.Line, want[i].line, d)
		}
		if !strings.Contains(d.Message, want[i].message) {
			t.Errorf("diag %d: message %q does not contain %q", i, d.Message, want[i].message)
		}
	}
}
