package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads, parses and type-checks the packages matching the patterns
// (for example "./...") relative to dir, which must lie inside a module.
//
// Dependencies are resolved through compiler export data produced by
// `go list -export`, so loading needs no network and no pre-installed
// artifacts beyond the go toolchain itself: the go command compiles (or
// reuses from the build cache) whatever the matched packages import.
// Only non-test files are analyzed — the contracts repolint enforces
// govern the shipped pipeline, and test files routinely (and legitimately)
// use the patterns the analyzers forbid, e.g. map-order iteration in
// set-comparison helpers or raw goroutines in deadlock probes.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Export,Standard,DepOnly,Error", "--"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	var targets []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Name == "" || len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadTestdata loads one package per relative directory under srcRoot (a
// testdata source tree laid out like analysistest's testdata/src). The
// files may import only standard-library packages; moduleDir anchors the
// `go list` call that resolves their export data.
func LoadTestdata(moduleDir, srcRoot string, pkgRels ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	type parsed struct {
		rel   string
		files []*ast.File
	}
	var all []parsed
	imports := make(map[string]bool)
	for _, rel := range pkgRels {
		dir := filepath.Join(srcRoot, filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: testdata package %s: %w", rel, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil {
					imports[path] = true
				}
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("analysis: testdata package %s has no go files", rel)
		}
		all = append(all, parsed{rel: rel, files: files})
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		args := []string{"list", "-export", "-deps", "-json=ImportPath,Export,Error", "--"}
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args = append(args, paths...)
		out, err := runGo(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPackage
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
			}
			if p.Error != nil {
				return nil, fmt.Errorf("analysis: go list: %s", p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range all {
		pkg, err := typecheckFiles(fset, imp, filepath.ToSlash(p.rel), p.files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// runGo runs the go command in dir and returns its stdout.
func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// exportImporter resolves imports through the compiler export data recorded
// by `go list -export`. One importer instance is shared across a whole load
// so each dependency is read at most once.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func typecheck(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheckFiles(fset, imp, path, files)
}

func typecheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
