// Package analysis is a dependency-free reimplementation of the slice of
// the golang.org/x/tools/go/analysis API that repolint needs: an Analyzer
// runs over one type-checked package at a time and reports position-tagged
// diagnostics. The module deliberately has no external dependencies, so the
// x/tools framework itself is out of reach; the Analyzer/Pass surface is
// kept shape-compatible with it so the checks in internal/analysis/checks
// could be ported to a real multichecker by changing only their imports.
//
// The pipeline's correctness contracts — bit-identical sweeps across
// worker counts and incremental modes, typed extractable errors, zero
// goroutine leaks — are enforced dynamically by the test suite, but only on
// the paths a test happens to exercise. The analyzers built on this package
// enforce them structurally, at every call site, on every build (see
// internal/analysis/checks and cmd/repolint).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow directives. It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// the pass. A non-nil error aborts the whole repolint run (it means the
	// analyzer itself failed, not that the code has findings).
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the import path the package was loaded under. For packages
	// loaded from a testdata tree it is the directory path relative to the
	// testdata src root.
	Path string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the expression is not part of
// the type-checked package.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// A Diagnostic is one finding, tagged with the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, then analyzer, so
// output is stable regardless of analyzer or package visit order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
