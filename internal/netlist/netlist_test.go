package netlist

import (
	"testing"

	"thermplace/internal/celllib"
)

// buildSmallDesign constructs a tiny two-gate design used by several tests:
//
//	a, b --NAND2(u1)--> n1 --INV(u2)--> z
func buildSmallDesign(t *testing.T) *Design {
	t.Helper()
	lib := celllib.Default65nm()
	d := NewDesign("tiny", lib)
	if _, err := d.AddPort("a", In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("b", In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("z", Out); err != nil {
		t.Fatal(err)
	}
	u1, err := d.AddInstance("u1", "NAND2_X1", "blockA")
	if err != nil {
		t.Fatal(err)
	}
	u2, err := d.AddInstance("u2", "INV_X1", "")
	if err != nil {
		t.Fatal(err)
	}
	n1 := d.GetOrCreateNet("n1")
	mustConnect := func(inst *Instance, pin string, net *Net) {
		t.Helper()
		if err := d.Connect(inst, pin, net); err != nil {
			t.Fatal(err)
		}
	}
	mustConnect(u1, "A", d.Net("a"))
	mustConnect(u1, "B", d.Net("b"))
	mustConnect(u1, "Z", n1)
	mustConnect(u2, "A", n1)
	mustConnect(u2, "Z", d.Net("z"))
	return d
}

func TestDesignConstruction(t *testing.T) {
	d := buildSmallDesign(t)
	if d.NumInstances() != 2 {
		t.Fatalf("NumInstances = %d", d.NumInstances())
	}
	if d.NumNets() != 4 {
		t.Fatalf("NumNets = %d, want 4 (a, b, z, n1)", d.NumNets())
	}
	if len(d.Ports()) != 3 {
		t.Fatalf("Ports = %d", len(d.Ports()))
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Fatalf("Check reported errors: %v", errs)
	}
	// Net connectivity.
	n1 := d.Net("n1")
	if n1.Driver.Inst == nil || n1.Driver.Inst.Name != "u1" || n1.Driver.Pin != "Z" {
		t.Fatalf("n1 driver = %v", n1.Driver)
	}
	if len(n1.Loads) != 1 || n1.Loads[0].Inst.Name != "u2" {
		t.Fatalf("n1 loads = %v", n1.Loads)
	}
	// Port nets.
	a := d.Net("a")
	if !a.Driver.IsPort() || a.Driver.Port.Name != "a" {
		t.Fatalf("input port a should drive its net, got %v", a.Driver)
	}
	z := d.Net("z")
	if len(z.Loads) != 1 || !z.Loads[0].IsPort() {
		t.Fatalf("output port z should load its net, got %v", z.Loads)
	}
	if d.Fanout(d.Instance("u1")) != 1 {
		t.Fatalf("Fanout(u1) = %d", d.Fanout(d.Instance("u1")))
	}
}

func TestDesignErrorPaths(t *testing.T) {
	lib := celllib.Default65nm()
	d := NewDesign("err", lib)
	if _, err := d.AddPort("p", In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("p", In); err == nil {
		t.Error("duplicate port should fail")
	}
	if _, err := d.AddNet("p"); err == nil {
		t.Error("duplicate net should fail")
	}
	if _, err := d.AddInstance("i1", "NOPE", ""); err == nil {
		t.Error("unknown master should fail")
	}
	if _, err := d.AddInstance("i1", "INV_X1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddInstance("i1", "INV_X1", ""); err == nil {
		t.Error("duplicate instance should fail")
	}
	inst := d.Instance("i1")
	if err := d.Connect(inst, "Q", d.Net("p")); err == nil {
		t.Error("unknown pin should fail")
	}
	if err := d.Connect(inst, "A", d.Net("p")); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(inst, "A", d.Net("p")); err == nil {
		t.Error("double connection of a pin should fail")
	}
	// Two drivers on one net.
	n := d.GetOrCreateNet("n")
	if err := d.Connect(inst, "Z", n); err != nil {
		t.Fatal(err)
	}
	i2, _ := d.AddInstance("i2", "INV_X1", "")
	if err := d.Connect(i2, "Z", n); err == nil {
		t.Error("second driver on a net should fail")
	}
	// Input port on an already-driven net.
	if _, err := d.AddPort("n", In); err == nil {
		t.Error("input port on a driven net should fail")
	}
}

func TestCheckFindsProblems(t *testing.T) {
	lib := celllib.Default65nm()
	d := NewDesign("broken", lib)
	inst, _ := d.AddInstance("u1", "NAND2_X1", "")
	n := d.GetOrCreateNet("n")
	// Leave pins unconnected and give net a load but no driver.
	if err := d.Connect(inst, "A", n); err != nil {
		t.Fatal(err)
	}
	errs := d.Check()
	if len(errs) < 2 {
		t.Fatalf("Check should report unconnected pins and undriven net, got %v", errs)
	}
}

func TestCheckIgnoresFillerPins(t *testing.T) {
	lib := celllib.Default65nm()
	d := NewDesign("f", lib)
	if _, err := d.AddInstance("fill", "FILL4", ""); err != nil {
		t.Fatal(err)
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Fatalf("filler cells need no connections, got %v", errs)
	}
}

func TestUnitsAndArea(t *testing.T) {
	d := buildSmallDesign(t)
	units := d.Units()
	if len(units) != 1 || units[0] != "blockA" {
		t.Fatalf("Units = %v", units)
	}
	in := d.InstancesInUnit("blockA")
	if len(in) != 1 || in[0].Name != "u1" {
		t.Fatalf("InstancesInUnit = %v", in)
	}
	lib := d.Lib
	want := lib.Master("NAND2_X1").Area(lib.RowHeight) + lib.Master("INV_X1").Area(lib.RowHeight)
	if got := d.TotalCellArea(); got != want {
		t.Fatalf("TotalCellArea = %v, want %v", got, want)
	}
	counts := d.CountByMaster()
	if counts["NAND2_X1"] != 1 || counts["INV_X1"] != 1 {
		t.Fatalf("CountByMaster = %v", counts)
	}
}

func TestTotalCellAreaExcludesFillers(t *testing.T) {
	d := buildSmallDesign(t)
	before := d.TotalCellArea()
	if _, err := d.AddInstance("fillX", "FILL16", ""); err != nil {
		t.Fatal(err)
	}
	if d.TotalCellArea() != before {
		t.Fatal("filler cells must not count towards cell area")
	}
}

func TestPinRefString(t *testing.T) {
	d := buildSmallDesign(t)
	n1 := d.Net("n1")
	if n1.Driver.String() != "u1.Z" {
		t.Fatalf("Driver.String = %q", n1.Driver.String())
	}
	a := d.Net("a")
	if a.Driver.String() != "a" {
		t.Fatalf("port ref String = %q", a.Driver.String())
	}
}

func TestPortDirString(t *testing.T) {
	if In.String() != "input" || Out.String() != "output" {
		t.Fatal("PortDir.String mismatch")
	}
}

func TestInstanceConnsCopy(t *testing.T) {
	d := buildSmallDesign(t)
	u1 := d.Instance("u1")
	conns := u1.Conns()
	delete(conns, "A")
	if u1.Conn("A") == nil {
		t.Fatal("Conns must return a copy, not the internal map")
	}
}
