// Package netlist models a flat gate-level design: library cell instances,
// the nets connecting them and the top-level ports. It also provides a
// structural "Verilog-lite" reader and writer so designs can be exchanged
// with the command-line tools.
//
// The netlist is purely logical: physical placement lives in package place,
// mirroring the paper's flow where the placed netlist is the combination of
// the synthesized netlist and the placement data produced by the back-end
// tool.
package netlist

import (
	"fmt"
	"sort"

	"thermplace/internal/celllib"
)

// PortDir is the direction of a top-level port.
type PortDir int

const (
	// In marks a primary input.
	In PortDir = iota
	// Out marks a primary output.
	Out
)

func (d PortDir) String() string {
	if d == In {
		return "input"
	}
	return "output"
}

// Port is a top-level design port.
type Port struct {
	Name string
	Dir  PortDir
	// Net is the net attached to the port.
	Net *Net
	// ord is the dense per-design ordinal, assigned at creation.
	ord int
}

// Ord returns the port's dense ordinal: its index in the design's creation
// order, stable for the lifetime of the design. Slices keyed by Ord replace
// map[*Port] lookups in the placement hot paths.
func (p *Port) Ord() int { return p.ord }

// Instance is one placed-or-unplaced occurrence of a library cell.
type Instance struct {
	// Name is the unique instance name within the design.
	Name string
	// Master is the library cell this instance instantiates.
	Master *celllib.Master
	// Unit is the logical block (e.g. "mult0") the instance belongs to.
	// The benchmark generator tags each arithmetic unit so that the placer
	// can region-constrain them and the workload model can assign per-unit
	// activities. It may be empty for glue logic.
	Unit string
	// conns maps pin name to the connected net.
	conns map[string]*Net
	// ord is the dense per-design ordinal, assigned at creation.
	ord int
}

// Ord returns the instance's dense ordinal: its index in the design's
// creation order (Design.Instances()[inst.Ord()] == inst), stable for the
// lifetime of the design. The placement engine keys its location and
// occupancy slices by this ordinal instead of map[*Instance] lookups.
func (inst *Instance) Ord() int { return inst.ord }

// Conn returns the net connected to the named pin, or nil.
func (inst *Instance) Conn(pin string) *Net { return inst.conns[pin] }

// Conns returns a copy of the pin -> net connection map.
func (inst *Instance) Conns() map[string]*Net {
	out := make(map[string]*Net, len(inst.conns))
	for k, v := range inst.conns {
		out[k] = v
	}
	return out
}

// IsFiller reports whether the instance is a dummy/filler cell.
func (inst *Instance) IsFiller() bool { return inst.Master.Filler }

// PinRef identifies one connection point on a net: either an instance pin
// (Inst != nil) or a top-level port (Port != nil).
type PinRef struct {
	Inst *Instance
	Pin  string
	Port *Port
}

// IsPort reports whether the reference points at a top-level port.
func (r PinRef) IsPort() bool { return r.Port != nil }

// String renders the reference as "inst.PIN" or "port".
func (r PinRef) String() string {
	if r.IsPort() {
		return r.Port.Name
	}
	return r.Inst.Name + "." + r.Pin
}

// Net is an electrical node connecting one driver to zero or more loads.
type Net struct {
	Name string
	// Driver is the single source of the net: an instance output pin or a
	// primary input port. It is zero-valued for undriven (floating) nets,
	// which Check reports as errors.
	Driver PinRef
	// Loads are the sinks: instance input pins and primary output ports.
	Loads []PinRef
	// ord is the dense per-design ordinal, assigned at creation.
	ord int
}

// Ord returns the net's dense ordinal: its index in the design's creation
// order (Design.Nets()[n.Ord()] == n), stable for the lifetime of the
// design. The placement bounding-box cache is keyed by this ordinal.
func (n *Net) Ord() int { return n.ord }

// HasDriver reports whether the net has a driver.
func (n *Net) HasDriver() bool { return n.Driver.Inst != nil || n.Driver.Port != nil }

// Design is a flat gate-level netlist bound to a cell library.
type Design struct {
	Name string
	Lib  *celllib.Library

	instances map[string]*Instance
	nets      map[string]*Net
	ports     map[string]*Port

	// instOrder and netOrder preserve creation order so that iteration,
	// file output and downstream algorithms are deterministic.
	instOrder []*Instance
	netOrder  []*Net
	portOrder []*Port
}

// NewDesign creates an empty design bound to lib.
func NewDesign(name string, lib *celllib.Library) *Design {
	return &Design{
		Name:      name,
		Lib:       lib,
		instances: make(map[string]*Instance),
		nets:      make(map[string]*Net),
		ports:     make(map[string]*Port),
	}
}

// AddPort creates a top-level port and its attached net of the same name.
func (d *Design) AddPort(name string, dir PortDir) (*Port, error) {
	if _, ok := d.ports[name]; ok {
		return nil, fmt.Errorf("netlist: duplicate port %q", name)
	}
	p := &Port{Name: name, Dir: dir}
	net, err := d.AddNet(name)
	if err != nil {
		// A net of the same name already exists; attach to it.
		net = d.Net(name)
	}
	p.Net = net
	if dir == In {
		if net.HasDriver() {
			return nil, fmt.Errorf("netlist: net %q already driven, cannot attach input port", name)
		}
		net.Driver = PinRef{Port: p}
	} else {
		net.Loads = append(net.Loads, PinRef{Port: p})
	}
	p.ord = len(d.portOrder)
	d.ports[name] = p
	d.portOrder = append(d.portOrder, p)
	return p, nil
}

// AddNet creates a new, unconnected net.
func (d *Design) AddNet(name string) (*Net, error) {
	if _, ok := d.nets[name]; ok {
		return nil, fmt.Errorf("netlist: duplicate net %q", name)
	}
	n := &Net{Name: name, ord: len(d.netOrder)}
	d.nets[name] = n
	d.netOrder = append(d.netOrder, n)
	return n, nil
}

// GetOrCreateNet returns the named net, creating it when necessary.
func (d *Design) GetOrCreateNet(name string) *Net {
	if n, ok := d.nets[name]; ok {
		return n
	}
	n, _ := d.AddNet(name)
	return n
}

// AddInstance creates an instance of the named master. The master must exist
// in the design's library.
func (d *Design) AddInstance(name, masterName, unit string) (*Instance, error) {
	if _, ok := d.instances[name]; ok {
		return nil, fmt.Errorf("netlist: duplicate instance %q", name)
	}
	m := d.Lib.Master(masterName)
	if m == nil {
		return nil, fmt.Errorf("netlist: instance %q references unknown master %q", name, masterName)
	}
	inst := &Instance{Name: name, Master: m, Unit: unit, conns: make(map[string]*Net), ord: len(d.instOrder)}
	d.instances[name] = inst
	d.instOrder = append(d.instOrder, inst)
	return inst, nil
}

// Connect attaches the instance pin to the net, registering the pin as
// driver or load according to the pin direction in the master.
func (d *Design) Connect(inst *Instance, pin string, net *Net) error {
	var dir celllib.PinDir
	found := false
	for _, p := range inst.Master.Pins {
		if p.Name == pin {
			dir = p.Dir
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("netlist: instance %q (master %s) has no pin %q", inst.Name, inst.Master.Name, pin)
	}
	if _, connected := inst.conns[pin]; connected {
		return fmt.Errorf("netlist: pin %s.%s already connected", inst.Name, pin)
	}
	inst.conns[pin] = net
	ref := PinRef{Inst: inst, Pin: pin}
	if dir == celllib.Output {
		if net.HasDriver() {
			return fmt.Errorf("netlist: net %q already driven by %s, cannot add driver %s", net.Name, net.Driver, ref)
		}
		net.Driver = ref
	} else {
		net.Loads = append(net.Loads, ref)
	}
	return nil
}

// Instance returns the named instance or nil.
func (d *Design) Instance(name string) *Instance { return d.instances[name] }

// Net returns the named net or nil.
func (d *Design) Net(name string) *Net { return d.nets[name] }

// Port returns the named port or nil.
func (d *Design) Port(name string) *Port { return d.ports[name] }

// Instances returns all instances in creation order.
func (d *Design) Instances() []*Instance { return d.instOrder }

// Nets returns all nets in creation order.
func (d *Design) Nets() []*Net { return d.netOrder }

// Ports returns all ports in creation order.
func (d *Design) Ports() []*Port { return d.portOrder }

// NumInstances returns the number of cell instances (fillers included).
func (d *Design) NumInstances() int { return len(d.instOrder) }

// NumNets returns the number of nets.
func (d *Design) NumNets() int { return len(d.netOrder) }

// Units returns the sorted list of distinct non-empty unit names.
func (d *Design) Units() []string {
	seen := make(map[string]bool)
	for _, inst := range d.instOrder {
		if inst.Unit != "" {
			seen[inst.Unit] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// InstancesInUnit returns all instances tagged with the unit, in order.
func (d *Design) InstancesInUnit(unit string) []*Instance {
	var out []*Instance
	for _, inst := range d.instOrder {
		if inst.Unit == unit {
			out = append(out, inst)
		}
	}
	return out
}

// TotalCellArea returns the summed area of all non-filler instances in um^2.
func (d *Design) TotalCellArea() float64 {
	total := 0.0
	for _, inst := range d.instOrder {
		if !inst.IsFiller() {
			total += inst.Master.Area(d.Lib.RowHeight)
		}
	}
	return total
}

// CountByMaster returns the number of instances per master name.
func (d *Design) CountByMaster() map[string]int {
	out := make(map[string]int)
	for _, inst := range d.instOrder {
		out[inst.Master.Name]++
	}
	return out
}

// Check validates structural consistency: every non-filler instance has all
// pins connected, every net with loads has a driver, and every primary
// output is driven. It returns all problems found.
func (d *Design) Check() []error {
	var errs []error
	for _, inst := range d.instOrder {
		if inst.IsFiller() {
			continue
		}
		for _, p := range inst.Master.Pins {
			if inst.Conn(p.Name) == nil {
				errs = append(errs, fmt.Errorf("netlist: pin %s.%s unconnected", inst.Name, p.Name))
			}
		}
	}
	for _, n := range d.netOrder {
		if len(n.Loads) > 0 && !n.HasDriver() {
			errs = append(errs, fmt.Errorf("netlist: net %q has loads but no driver", n.Name))
		}
	}
	return errs
}

// Fanout returns the number of loads on the net driven by the instance's
// output pin, or 0 when it drives nothing.
func (d *Design) Fanout(inst *Instance) int {
	out := inst.Master.OutputPin()
	if out == "" {
		return 0
	}
	n := inst.Conn(out)
	if n == nil {
		return 0
	}
	return len(n.Loads)
}
