package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"thermplace/internal/celllib"
)

// This file implements a structural "Verilog-lite" reader and writer.
// The subset supported is what gate-level netlists from a synthesis flow
// look like:
//
//	module top (a, b, z);
//	  input a, b;
//	  output z;
//	  wire n1;
//	  (* unit = "adder0" *)
//	  NAND2_X1 u1 (.A(a), .B(b), .Z(n1));
//	  INV_X1 u2 (.A(n1), .Z(z));
//	endmodule
//
// Attribute blocks carry the logical-unit tag used by the region-constrained
// placer and the workload model.

// WriteVerilog writes the design as structural Verilog-lite.
func WriteVerilog(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	// Header: module and port list.
	var portNames []string
	for _, p := range d.Ports() {
		portNames = append(portNames, p.Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", d.Name, strings.Join(portNames, ", "))
	for _, p := range d.Ports() {
		fmt.Fprintf(bw, "  %s %s;\n", p.Dir, p.Name)
	}
	// Wire declarations for internal nets (nets that are not ports).
	for _, n := range d.Nets() {
		if d.Port(n.Name) == nil {
			fmt.Fprintf(bw, "  wire %s;\n", n.Name)
		}
	}
	// Instances.
	for _, inst := range d.Instances() {
		if inst.Unit != "" {
			fmt.Fprintf(bw, "  (* unit = \"%s\" *)\n", inst.Unit)
		}
		var conns []string
		for _, p := range inst.Master.Pins {
			if net := inst.Conn(p.Name); net != nil {
				conns = append(conns, fmt.Sprintf(".%s(%s)", p.Name, net.Name))
			}
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", inst.Master.Name, inst.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// verilogTokenizer produces tokens for the Verilog-lite subset.
func tokenizeVerilog(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '(' && i+1 < len(s) && s[i+1] == '*':
			// attribute start token
			toks = append(toks, "(*")
			i += 2
		case c == '*' && i+1 < len(s) && s[i+1] == ')':
			toks = append(toks, "*)")
			i += 2
		case strings.ContainsRune("();,.=", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			toks = append(toks, "\""+s[i+1:j])
			i = j + 1
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r();,.=\"", rune(s[j])) {
				// stop before attribute markers
				if s[j] == '(' || (s[j] == '*' && j+1 < len(s) && s[j+1] == ')') {
					break
				}
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

type verilogParser struct {
	toks []string
	pos  int
	lib  *celllib.Library
}

func (p *verilogParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *verilogParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *verilogParser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("netlist: verilog parse error: expected %q, got %q (token %d)", tok, got, p.pos-1)
	}
	return nil
}

// ParseVerilog reads one module of structural Verilog-lite and builds a
// Design bound to lib. Instance masters must all exist in lib.
func ParseVerilog(r io.Reader, lib *celllib.Library) (*Design, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("netlist: reading verilog input: %w", err)
	}
	p := &verilogParser{toks: tokenizeVerilog(string(data)), lib: lib}
	return p.parseModule()
}

func (p *verilogParser) parseModule() (*Design, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if name == "" {
		return nil, fmt.Errorf("netlist: verilog parse error: missing module name")
	}
	d := NewDesign(name, p.lib)
	// Port list: record names; directions come from the declarations below.
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var headerPorts []string
	for p.peek() != ")" && p.peek() != "" {
		tok := p.next()
		if tok != "," {
			headerPorts = append(headerPorts, tok)
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	portDirs := make(map[string]PortDir)

	pendingUnit := ""
	for {
		switch tok := p.peek(); tok {
		case "endmodule":
			p.next()
			// Declare ports in header order now that directions are known.
			for _, pn := range headerPorts {
				dir, ok := portDirs[pn]
				if !ok {
					return nil, fmt.Errorf("netlist: port %q listed in header but never declared", pn)
				}
				if _, err := d.AddPort(pn, dir); err != nil {
					return nil, err
				}
			}
			return d, p.reconnectPorts(d)
		case "":
			return nil, fmt.Errorf("netlist: verilog parse error: missing endmodule")
		case "input", "output":
			p.next()
			dir := In
			if tok == "output" {
				dir = Out
			}
			for {
				n := p.next()
				if n == ";" {
					break
				}
				if n == "," {
					continue
				}
				portDirs[n] = dir
			}
		case "wire":
			p.next()
			for {
				n := p.next()
				if n == ";" {
					break
				}
				if n == "," {
					continue
				}
				if _, err := d.AddNet(n); err != nil {
					return nil, err
				}
			}
		case "(*":
			unit, err := p.parseAttribute()
			if err != nil {
				return nil, err
			}
			pendingUnit = unit
		default:
			if err := p.parseInstance(d, pendingUnit); err != nil {
				return nil, err
			}
			pendingUnit = ""
		}
	}
}

// parseAttribute parses `(* unit = "name" *)` and returns the unit name.
func (p *verilogParser) parseAttribute() (string, error) {
	if err := p.expect("(*"); err != nil {
		return "", err
	}
	key := p.next()
	if err := p.expect("="); err != nil {
		return "", err
	}
	val := p.next()
	if err := p.expect("*)"); err != nil {
		return "", err
	}
	if key != "unit" {
		return "", fmt.Errorf("netlist: unsupported attribute %q", key)
	}
	return strings.TrimPrefix(val, "\""), nil
}

// parseInstance parses `MASTER instname (.PIN(net), ...);`.
func (p *verilogParser) parseInstance(d *Design, unit string) error {
	master := p.next()
	instName := p.next()
	if master == "" || instName == "" {
		return fmt.Errorf("netlist: verilog parse error: malformed instance near token %d", p.pos)
	}
	inst, err := d.AddInstance(instName, master, unit)
	if err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	for p.peek() != ")" && p.peek() != "" {
		if p.peek() == "," {
			p.next()
			continue
		}
		if err := p.expect("."); err != nil {
			return err
		}
		pin := p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		netName := p.next()
		if err := p.expect(")"); err != nil {
			return err
		}
		net := d.GetOrCreateNet(netName)
		if err := d.Connect(inst, pin, net); err != nil {
			return err
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	return p.expect(";")
}

// reconnectPorts is a no-op hook kept for symmetry: ports are added after all
// instances, and AddPort attaches them to the already-existing nets (created
// by GetOrCreateNet during instance parsing), so nothing further is needed.
// It validates that every port ended up attached to a net.
func (p *verilogParser) reconnectPorts(d *Design) error {
	for _, port := range d.Ports() {
		if port.Net == nil {
			return fmt.Errorf("netlist: port %q not attached to any net", port.Name)
		}
	}
	return nil
}
