package netlist

import (
	"strings"
	"testing"

	"thermplace/internal/celllib"
)

func TestVerilogRoundTrip(t *testing.T) {
	d := buildSmallDesign(t)
	var buf strings.Builder
	if err := WriteVerilog(&buf, d); err != nil {
		t.Fatalf("WriteVerilog: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"module tiny", "input a", "output z", "wire n1", "NAND2_X1 u1", "(* unit = \"blockA\" *)", "endmodule"} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog output missing %q:\n%s", want, text)
		}
	}

	got, err := ParseVerilog(strings.NewReader(text), d.Lib)
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	if got.Name != d.Name {
		t.Fatalf("module name %q != %q", got.Name, d.Name)
	}
	if got.NumInstances() != d.NumInstances() || got.NumNets() != d.NumNets() || len(got.Ports()) != len(d.Ports()) {
		t.Fatalf("structure mismatch after round trip: %d/%d instances, %d/%d nets, %d/%d ports",
			got.NumInstances(), d.NumInstances(), got.NumNets(), d.NumNets(), len(got.Ports()), len(d.Ports()))
	}
	if errs := got.Check(); len(errs) != 0 {
		t.Fatalf("round-tripped design fails Check: %v", errs)
	}
	u1 := got.Instance("u1")
	if u1 == nil || u1.Unit != "blockA" {
		t.Fatalf("unit attribute lost: %+v", u1)
	}
	if u1.Conn("A") == nil || u1.Conn("A").Name != "a" {
		t.Fatalf("u1.A connection lost")
	}
	n1 := got.Net("n1")
	if n1 == nil || n1.Driver.String() != "u1.Z" || len(n1.Loads) != 1 {
		t.Fatalf("n1 connectivity lost: %+v", n1)
	}
}

func TestParseVerilogHandComposed(t *testing.T) {
	src := `
// hand-written example
module half_adder (a, b, sum, carry);
  input a;
  input b;
  output sum, carry;
  XOR2_X1 x1 (.A(a), .B(b), .Z(sum));
  AND2_X1 a1 (.A(a), .B(b), .Z(carry));
endmodule
`
	d, err := ParseVerilog(strings.NewReader(src), celllib.Default65nm())
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	if d.Name != "half_adder" || d.NumInstances() != 2 || len(d.Ports()) != 4 {
		t.Fatalf("parsed structure wrong: %s, %d instances, %d ports", d.Name, d.NumInstances(), len(d.Ports()))
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Fatalf("Check: %v", errs)
	}
	sum := d.Net("sum")
	if sum.Driver.String() != "x1.Z" {
		t.Fatalf("sum driver = %v", sum.Driver)
	}
}

func TestParseVerilogErrors(t *testing.T) {
	lib := celllib.Default65nm()
	cases := []struct {
		name string
		src  string
	}{
		{"missing module", "input a;"},
		{"missing endmodule", "module m (a); input a;"},
		{"unknown master", "module m (a); input a; BOGUS u1 (.A(a)); endmodule"},
		{"unknown pin", "module m (a); input a; INV_X1 u1 (.Q(a)); endmodule"},
		{"undeclared port", "module m (a, b); input a; INV_X1 u1 (.A(a), .Z(b)); endmodule"},
		{"unsupported attribute", "module m (a); input a; (* color = \"red\" *) INV_X1 u1 (.A(a), .Z(n)); endmodule"},
		{"duplicate instance", "module m (a); input a; INV_X1 u1 (.A(a), .Z(n)); INV_X1 u1 (.A(n), .Z(k)); endmodule"},
	}
	for _, c := range cases {
		if _, err := ParseVerilog(strings.NewReader(c.src), lib); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseVerilogMultiBitWires(t *testing.T) {
	src := `
module m (a, z);
  input a;
  output z;
  wire n1, n2, n3;
  INV_X1 u1 (.A(a), .Z(n1));
  INV_X1 u2 (.A(n1), .Z(n2));
  INV_X1 u3 (.A(n2), .Z(n3));
  BUF_X1 u4 (.A(n3), .Z(z));
endmodule
`
	d, err := ParseVerilog(strings.NewReader(src), celllib.Default65nm())
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	if d.NumNets() != 5 {
		t.Fatalf("NumNets = %d, want 5", d.NumNets())
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Fatalf("Check: %v", errs)
	}
}
