package power

import (
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/place"
)

// sameReport requires bit-identical breakdowns for every instance.
func sameReport(t *testing.T, want, got *Report, label string) {
	t.Helper()
	if len(want.Instances()) != len(got.Instances()) {
		t.Fatalf("%s: instance count differs: %d vs %d", label, len(got.Instances()), len(want.Instances()))
	}
	for _, inst := range want.Instances() {
		w, g := want.Breakdown(inst), got.Breakdown(inst)
		if w != g {
			t.Fatalf("%s: %s breakdown differs:\n  got  %+v\n  want %+v", label, inst.Name, g, w)
		}
	}
	if want.Total() != got.Total() {
		t.Fatalf("%s: totals differ: %v vs %v", label, got.Total(), want.Total())
	}
}

// TestEstimatorMatchesEstimate pins the estimator's split evaluation
// (precomputed statics + placement pass) to the one-shot Estimate on both a
// placed and an unplaced design.
func TestEstimatorMatchesEstimate(t *testing.T) {
	d, p, act := preparedDesign(t, bench.UniformWorkload(0.3))
	est := NewEstimator(d, act, 1e9)
	sameReport(t, Estimate(d, p, act, 1e9), est.Report(p), "placed")
	sameReport(t, Estimate(d, nil, act, 1e9), est.Report(nil), "unplaced")
}

// TestUpdateBitIdenticalToFreshReport moves a handful of cells under delta
// recording and requires Report.Update to reproduce a from-scratch estimate
// of the edited placement exactly — the power half of the incremental
// pipeline's bit-identity guarantee.
func TestUpdateBitIdenticalToFreshReport(t *testing.T) {
	d, p, act := preparedDesign(t, bench.UniformWorkload(0.3))
	est := NewEstimator(d, act, 1e9)
	base := est.Report(p)

	edited := p.Clone()
	edited.BeginDelta()
	insts := d.Instances()
	for i := 5; i < len(insts) && i < 400; i += 37 {
		inst := insts[i]
		if inst.IsFiller() {
			continue
		}
		l, ok := edited.Loc(inst)
		if !ok {
			continue
		}
		row := (l.Row + 3) % edited.FP.NumRows()
		edited.SetLoc(inst, place.Loc{X: l.X, Y: edited.FP.Rows[row].Y, Row: row})
	}
	place.Legalize(edited)
	delta := edited.EndDelta()
	if delta.Empty() || delta.IsFull() {
		t.Fatalf("edit should record a surgical delta, got full=%v empty=%v", delta.IsFull(), delta.Empty())
	}

	sameReport(t, est.Report(edited), base.Update(edited, delta), "update")

	// An untouched instance's breakdown must be carried over (not merely
	// equal): spot-check that at least one entry is shared unchanged.
	carried := 0
	movedSet := make(map[int32]bool)
	for _, ord := range delta.Moved() {
		movedSet[ord] = true
	}
	for _, inst := range base.Instances() {
		if !movedSet[int32(inst.Ord())] {
			carried++
		}
	}
	if carried == 0 {
		t.Fatal("edit moved every instance; delta test needs untouched cells")
	}

	// A full delta must also fall back to a correct full report.
	sameReport(t, est.Report(edited), base.Update(edited, place.FullDelta()), "full-fallback")
}

// TestUpdateAfterComposedDeltas chains two recorded edits and updates the
// original report across the merged delta.
func TestUpdateAfterComposedDeltas(t *testing.T) {
	d, p, act := preparedDesign(t, bench.UniformWorkload(0.3))
	est := NewEstimator(d, act, 1e9)
	base := est.Report(p)

	step1 := p.Clone()
	step1.BeginDelta()
	insts := d.Instances()
	l0, _ := step1.Loc(insts[10])
	step1.SetLoc(insts[10], place.Loc{X: l0.X + 2*step1.FP.SiteWidth, Y: l0.Y, Row: l0.Row})
	place.Legalize(step1)
	d1 := step1.EndDelta()

	step2 := step1.Clone()
	step2.BeginDelta()
	l1, _ := step2.Loc(insts[200])
	row := (l1.Row + 1) % step2.FP.NumRows()
	step2.SetLoc(insts[200], place.Loc{X: l1.X, Y: step2.FP.Rows[row].Y, Row: row})
	place.Legalize(step2)
	d2 := step2.EndDelta()

	sameReport(t, est.Report(step2), base.Update(step2, d1.Merge(d2)), "composed")
}
