// Package power estimates per-cell power consumption from annotated
// switching activities and builds the power-density maps consumed by the
// thermal simulator. It plays the role of Synopsys Power Compiler in the
// paper's flow.
//
// The model is the standard cell-based one:
//
//	P_cell = P_internal + P_load + P_leak
//	P_internal = E_switch * alpha_out * f
//	P_load     = 1/2 * C_load * Vdd^2 * alpha_out * f
//	P_clockpin = 1/2 * C_ck * Vdd^2 * 2 * f            (sequential cells)
//	P_leak     = constant per master
//
// where alpha_out is the output-net toggle rate (transitions per cycle),
// C_load is the sum of fanout pin capacitances plus estimated wire
// capacitance from the placed net's half-perimeter wirelength, and f is the
// clock frequency. Filler (dummy) cells consume exactly zero power.
package power

import (
	"sort"

	"thermplace/internal/geom"
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// Unit conversion constants.
const (
	femto = 1e-15
	nano  = 1e-9
)

// Breakdown is the power of one instance split by mechanism, in watts.
type Breakdown struct {
	Internal float64
	Load     float64
	Clock    float64
	Leakage  float64
}

// Total returns the summed power of the breakdown in watts.
func (b Breakdown) Total() float64 { return b.Internal + b.Load + b.Clock + b.Leakage }

// Report holds the power estimate of a whole design for one placement.
// Per-instance breakdowns live in a dense ordinal-indexed slice, which is
// what makes deriving an updated report from a placement delta
// (Report.Update) a slice copy plus a handful of re-evaluated entries
// rather than a map rebuild.
type Report struct {
	// ClockHz is the clock frequency the estimate was computed for.
	ClockHz float64
	// insts lists the estimated instances in design order. Every
	// accumulation over the report iterates this slice: float addition is
	// order sensitive, and an unstable order would make totals and power
	// maps differ bit-wise between runs (which in turn would break the
	// bit-identical concurrent sweep).
	insts []*netlist.Instance
	// perInst holds each instance's breakdown, indexed by instance ordinal
	// (zero for fillers and unplaced ordinals).
	perInst []Breakdown
	// est is the estimator that produced the report; Update re-evaluates
	// dirty entries through it.
	est *Estimator
}

// Instances returns the estimated instances in deterministic design order.
func (r *Report) Instances() []*netlist.Instance { return r.insts }

// MemoryBytes estimates the retained size of the report's own storage: the
// instance list (pointers into the shared design) and the dense per-ordinal
// breakdowns. It is part of the memory accounting of a resident cached
// analysis.
func (r *Report) MemoryBytes() int64 {
	const ptr = 8
	return ptr*int64(len(r.insts)) + int64(len(r.perInst))*4*8
}

// Breakdown returns the power breakdown of one instance.
func (r *Report) Breakdown(inst *netlist.Instance) Breakdown {
	if ord := inst.Ord(); ord < len(r.perInst) {
		return r.perInst[ord]
	}
	return Breakdown{}
}

// Total returns the total design power in watts.
func (r *Report) Total() float64 {
	t := 0.0
	for _, inst := range r.insts {
		t += r.perInst[inst.Ord()].Total()
	}
	return t
}

// TotalBreakdown returns the design-level power split by mechanism.
func (r *Report) TotalBreakdown() Breakdown {
	var out Breakdown
	for _, inst := range r.insts {
		b := r.perInst[inst.Ord()]
		out.Internal += b.Internal
		out.Load += b.Load
		out.Clock += b.Clock
		out.Leakage += b.Leakage
	}
	return out
}

// InstancePower returns the total power of one instance in watts.
func (r *Report) InstancePower(inst *netlist.Instance) float64 {
	return r.Breakdown(inst).Total()
}

// PerUnit returns total power per logical unit, plus the power of untagged
// cells under the empty-string key when any exist.
func (r *Report) PerUnit() map[string]float64 {
	out := make(map[string]float64)
	for _, inst := range r.insts {
		out[inst.Unit] += r.perInst[inst.Ord()].Total()
	}
	return out
}

// TopConsumers returns the n highest-power instances in descending order.
func (r *Report) TopConsumers(n int) []*netlist.Instance {
	insts := append([]*netlist.Instance(nil), r.insts...)
	sort.Slice(insts, func(i, j int) bool {
		pi, pj := r.InstancePower(insts[i]), r.InstancePower(insts[j])
		if pi != pj {
			return pi > pj
		}
		return insts[i].Name < insts[j].Name
	})
	if n > len(insts) {
		n = len(insts)
	}
	return insts[:n]
}

// Estimate computes the power report for a placed design: a one-shot
// Estimator build plus its placement pass. Callers that estimate several
// placements of the same design under the same activity (the sweep) hold
// an Estimator instead and amortize the netlist traversal.
//
// The placement is used for the wire-capacitance component of the switching
// load; pass a nil placement to get a wire-load-free estimate (useful before
// placement exists).
func Estimate(d *netlist.Design, p *place.Placement, act *logicsim.Activity, clockHz float64) *Report {
	return NewEstimator(d, act, clockHz).Report(p)
}

// Map bins the per-instance power onto an nx-by-ny grid over the placement's
// core area, spreading each cell's power over the grid cells its footprint
// overlaps. The result is in watts per grid cell and is the "power profile"
// of the paper's Figure 5 (left).
func Map(rep *Report, p *place.Placement, nx, ny int) *geom.Grid {
	g := geom.NewGrid(nx, ny, p.FP.Core)
	// Iterate in design order: the spread accumulates into shared grid
	// cells, and float addition order must be reproducible for the sweep
	// results to be bit-identical across runs.
	for _, inst := range rep.insts {
		r, ok := p.CellRect(inst)
		if !ok {
			continue
		}
		g.SpreadRect(r, rep.perInst[inst.Ord()].Total())
	}
	return g
}

// DensityMap returns the power density in W/um^2 on the same grid as Map.
func DensityMap(rep *Report, p *place.Placement, nx, ny int) *geom.Grid {
	g := Map(rep, p, nx, ny)
	return g.Scale(1 / g.CellArea())
}
