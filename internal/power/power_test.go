package power

import (
	"math"
	"strings"
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// preparedDesign returns a placed small benchmark with simulated activities.
func preparedDesign(t *testing.T, wl bench.Workload) (*netlist.Design, *place.Placement, *logicsim.Activity) {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	stim := logicsim.RandomStimulus(99, func(port string) float64 {
		return wl.ActivityFor(strings.SplitN(port, "_", 2)[0])
	})
	act, err := logicsim.RunRandom(d, 64, stim)
	if err != nil {
		t.Fatal(err)
	}
	return d, p, act
}

func TestEstimateBasicProperties(t *testing.T) {
	d, p, act := preparedDesign(t, bench.UniformWorkload(0.3))
	rep := Estimate(d, p, act, 1e9)
	if rep.Total() <= 0 {
		t.Fatal("total power must be positive")
	}
	// Sanity band: a few-hundred-cell 65nm block at 1 GHz should consume
	// somewhere between 10 uW and 100 mW.
	if rep.Total() < 10e-6 || rep.Total() > 0.1 {
		t.Fatalf("total power %g W outside plausible band", rep.Total())
	}
	bd := rep.TotalBreakdown()
	if bd.Internal <= 0 || bd.Load <= 0 || bd.Leakage <= 0 || bd.Clock <= 0 {
		t.Fatalf("all power components should be positive: %+v", bd)
	}
	if math.Abs(bd.Total()-rep.Total()) > 1e-12 {
		t.Fatal("TotalBreakdown inconsistent with Total")
	}
	// No filler instances in the report, every non-filler present.
	for _, inst := range rep.Instances() {
		if inst.IsFiller() {
			t.Fatalf("filler %q has a power entry", inst.Name)
		}
	}
	nonFiller := 0
	for _, inst := range d.Instances() {
		if !inst.IsFiller() {
			nonFiller++
		}
	}
	if len(rep.Instances()) != nonFiller {
		t.Fatalf("report covers %d of %d cells", len(rep.Instances()), nonFiller)
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	d, p, actLow := preparedDesign(t, bench.UniformWorkload(0.05))
	_, _, actHigh := preparedDesign(t, bench.UniformWorkload(0.6))
	low := Estimate(d, p, actLow, 1e9).Total()
	high := Estimate(d, p, actHigh, 1e9).Total()
	if high <= low {
		t.Fatalf("higher activity must give higher power: %g vs %g", high, low)
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	d, p, act := preparedDesign(t, bench.UniformWorkload(0.3))
	p1 := Estimate(d, p, act, 1e9)
	p2 := Estimate(d, p, act, 2e9)
	// Dynamic power doubles, leakage stays: total must grow but less than 2x.
	if p2.Total() <= p1.Total() {
		t.Fatal("power must increase with frequency")
	}
	b1, b2 := p1.TotalBreakdown(), p2.TotalBreakdown()
	if math.Abs(b2.Internal-2*b1.Internal) > 1e-9*b1.Internal {
		t.Fatal("internal power must scale linearly with frequency")
	}
	if math.Abs(b2.Leakage-b1.Leakage) > 1e-15 {
		t.Fatal("leakage must not depend on frequency")
	}
}

func TestZeroActivityLeavesOnlyLeakageAndClock(t *testing.T) {
	d, p, _ := preparedDesign(t, bench.UniformWorkload(0.3))
	zero := logicsim.Uniform(d, 0)
	// Zero out the clock convention too, to isolate pure leakage.
	rep := Estimate(d, p, zero, 1e9)
	bd := rep.TotalBreakdown()
	if bd.Internal > 1e-6*bd.Leakage {
		// Clock nets are reported as 2 toggles/cycle by Uniform, so cells
		// driven by clock nets may still switch; internal power of ordinary
		// gates must be ~0.
		t.Logf("internal = %g, leakage = %g", bd.Internal, bd.Leakage)
	}
	if bd.Leakage <= 0 {
		t.Fatal("leakage must remain with zero activity")
	}
	if bd.Clock <= 0 {
		t.Fatal("clock pin power must remain with zero data activity")
	}
}

func TestHotUnitDominatesPowerMap(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.Config{Name: "two", ClockGHz: 1, Units: []bench.UnitSpec{
		{Name: "hotm", Kind: bench.KindMultiplier, Width: 8},
		{Name: "coldm", Kind: bench.KindMultiplier, Width: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	wl := bench.Workload{Name: "skew", Activity: map[string]float64{"hotm": 0.6}, Default: 0.02}
	stim := logicsim.RandomStimulus(7, func(port string) float64 {
		return wl.ActivityFor(strings.SplitN(port, "_", 2)[0])
	})
	act, err := logicsim.RunRandom(d, 128, stim)
	if err != nil {
		t.Fatal(err)
	}
	rep := Estimate(d, p, act, 1e9)
	perUnit := rep.PerUnit()
	if perUnit["hotm"] <= 2*perUnit["coldm"] {
		t.Fatalf("hot unit power %g should dominate cold unit %g", perUnit["hotm"], perUnit["coldm"])
	}
	// The power map peak must lie inside the hot unit's region.
	g := Map(rep, p, 20, 20)
	_, ix, iy := g.Max()
	peak := g.CellCenter(ix, iy)
	hotRegion := fp.RegionOf("hotm").Rect
	if !hotRegion.Expand(2 * lib.RowHeight).ContainsClosed(peak) {
		t.Fatalf("power peak %v not inside hot region %v", peak, hotRegion)
	}
	// Map conserves total power.
	if math.Abs(g.Sum()-rep.Total()) > 1e-9*rep.Total() {
		t.Fatalf("power map sum %g != total %g", g.Sum(), rep.Total())
	}
	// Density map is map / cell area.
	dm := DensityMap(rep, p, 20, 20)
	if math.Abs(dm.At(ix, iy)-g.At(ix, iy)/g.CellArea()) > 1e-18 {
		t.Fatal("density map inconsistent with power map")
	}
}

func TestTopConsumers(t *testing.T) {
	d, p, act := preparedDesign(t, bench.UniformWorkload(0.4))
	rep := Estimate(d, p, act, 1e9)
	top := rep.TopConsumers(10)
	if len(top) != 10 {
		t.Fatalf("TopConsumers returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if rep.InstancePower(top[i]) > rep.InstancePower(top[i-1]) {
			t.Fatal("TopConsumers not sorted by descending power")
		}
	}
	all := rep.TopConsumers(1 << 20)
	if len(all) != len(rep.Instances()) {
		t.Fatal("TopConsumers with huge n must return all instances")
	}
}

func TestEstimateWithoutPlacement(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	act := logicsim.Uniform(d, 0.2)
	rep := Estimate(d, nil, act, 1e9)
	if rep.Total() <= 0 {
		t.Fatal("placement-free estimate must still be positive")
	}
	// A placed estimate includes wire load, so it must be at least as large.
	fp, _ := floorplan.New(d, floorplan.DefaultConfig())
	p, err := place.Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	placedRep := Estimate(d, p, act, 1e9)
	if placedRep.Total() < rep.Total() {
		t.Fatalf("placed estimate %g should include wire load and exceed %g", placedRep.Total(), rep.Total())
	}
}
