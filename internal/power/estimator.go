package power

import (
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

// Estimator precomputes every placement-independent part of the power model
// for one (design, activity, clock) binding: the internal/clock/leakage
// breakdown terms, the per-instance output net, its toggle rate, and the
// summed fanout pin capacitance. A placement then only contributes the
// wire capacitance term, so estimating the power of one more placement —
// or re-estimating just the instances a place.Delta touched — is a pass
// over cached floats plus one (cached) net-bounding-box query per output
// net, with no netlist or activity-map traversal.
//
// The per-instance arithmetic mirrors the historical single-pass Estimate
// expression for expression (same operand order, same accumulation order),
// so an Estimator-built report is bit-identical to one computed from
// scratch; that equivalence is what lets the incremental analysis pipeline
// claim bit-identical sweep results.
//
// An Estimator is immutable after construction and safe for concurrent
// Report/Update calls on distinct placements.
type Estimator struct {
	design  *netlist.Design
	clockHz float64
	vdd2    float64
	wireCap float64 // per um, femtofarads

	insts []*netlist.Instance // non-filler instances in design order

	// Per instance ordinal:
	static    []Breakdown    // Internal, Clock, Leakage; Load left zero
	outNet    []*netlist.Net // nil when the master has no connected output
	alpha     []float64      // output-net toggle rate
	pinCapSum []float64      // fanout pin capacitance in fF, summed in load order
}

// NewEstimator builds the placement-independent power model.
func NewEstimator(d *netlist.Design, act *logicsim.Activity, clockHz float64) *Estimator {
	lib := d.Lib
	n := d.NumInstances()
	e := &Estimator{
		design:    d,
		clockHz:   clockHz,
		vdd2:      lib.Vdd * lib.Vdd,
		wireCap:   lib.WireCapPerUm,
		static:    make([]Breakdown, n),
		outNet:    make([]*netlist.Net, n),
		alpha:     make([]float64, n),
		pinCapSum: make([]float64, n),
	}
	for _, inst := range d.Instances() {
		if inst.IsFiller() {
			continue
		}
		ord := inst.Ord()
		m := inst.Master
		var b Breakdown
		b.Leakage = m.Leakage * nano

		if outPin := m.OutputPin(); outPin != "" {
			if outNet := inst.Conn(outPin); outNet != nil {
				alpha := act.For(outNet.Name)
				// Fanout pin capacitance, summed in net load order — the
				// same order (and so the same float) as a from-scratch
				// estimate's accumulation.
				loadCap := 0.0
				for _, l := range outNet.Loads {
					if l.Inst != nil {
						loadCap += l.Inst.Master.PinCap(l.Pin)
					}
				}
				b.Internal = m.SwitchEnergy * femto * alpha * clockHz
				e.outNet[ord] = outNet
				e.alpha[ord] = alpha
				e.pinCapSum[ord] = loadCap
			}
		}
		if m.Sequential {
			// The clock pin toggles twice per cycle regardless of data
			// activity.
			ckCap := m.PinCap("CK")
			b.Clock = 0.5 * ckCap * femto * e.vdd2 * 2 * clockHz
		}
		e.static[ord] = b
		e.insts = append(e.insts, inst)
	}
	return e
}

// ClockHz returns the clock frequency the estimator was built for.
func (e *Estimator) ClockHz() float64 { return e.clockHz }

// loadPower evaluates the wirelength-dependent switching-load term for one
// instance on the given placement, with exactly the historical Estimate
// expression: loadCap accumulates pin caps first (precomputed, same order)
// and then the wire capacitance from the placed net's HPWL.
func (e *Estimator) loadPower(ord int, p *place.Placement) float64 {
	loadCap := e.pinCapSum[ord]
	if p != nil {
		loadCap += p.HPWL(e.outNet[ord]) * e.wireCap
	}
	return 0.5 * loadCap * femto * e.vdd2 * e.alpha[ord] * e.clockHz
}

// Report estimates the power of the placement (nil for a wire-load-free
// estimate), bit-identical to power.Estimate.
func (e *Estimator) Report(p *place.Placement) *Report {
	rep := &Report{
		ClockHz: e.clockHz,
		insts:   e.insts,
		perInst: make([]Breakdown, len(e.static)),
		est:     e,
	}
	for _, inst := range e.insts {
		ord := inst.Ord()
		b := e.static[ord]
		if e.outNet[ord] != nil {
			b.Load = e.loadPower(ord, p)
		}
		rep.perInst[ord] = b
	}
	return rep
}

// Update derives the report of placement p from r by re-evaluating only
// the instances whose output net the delta marks dirty — every other
// breakdown is carried over unchanged. Because a placement change can only
// alter the wire-capacitance term, and that term is re-evaluated with the
// full-report arithmetic, the result is bit-identical to a from-scratch
// Report(p). A nil or full delta falls back to the full pass.
//
// The delta must describe the difference between the placement r was
// computed for and p.
func (r *Report) Update(p *place.Placement, delta *place.Delta) *Report {
	e := r.est // always set: every Report is built by an Estimator
	if delta == nil || delta.IsFull() {
		return e.Report(p)
	}
	out := &Report{
		ClockHz: r.ClockHz,
		insts:   r.insts,
		perInst: append([]Breakdown(nil), r.perInst...),
		est:     e,
	}
	nets := e.design.Nets()
	for _, netOrd := range delta.DirtyNets() {
		// The only breakdown a net's wirelength feeds is its driver's
		// switching-load term — and a moved cell marks all its nets dirty,
		// so every affected driver is reached through its own output net.
		drv := nets[netOrd].Driver.Inst
		if drv == nil {
			continue
		}
		ord := drv.Ord()
		if e.outNet[ord] != nets[netOrd] {
			continue
		}
		out.perInst[ord].Load = e.loadPower(ord, p)
	}
	return out
}
