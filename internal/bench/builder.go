// Package bench generates the synthetic benchmark circuits used by the
// paper's evaluation: a design of roughly 12,000 standard cells composed of
// nine arithmetic units of various sizes, clocked at 1 GHz, whose hotspot
// size and position are controlled by the workload (per-unit switching
// activity).
//
// The paper used Synopsys Design Compiler on RTL; here the units are
// constructed directly at the gate level from the cell library, which gives
// the same kind of netlist a synthesis run would produce (adders built from
// full-adder gate pairs, array multipliers from AND gates plus carry-save
// adder rows, registered outputs).
package bench

import (
	"strconv"

	"thermplace/internal/netlist"
)

// builder wraps a Design under construction with naming helpers so that the
// individual unit generators stay readable.
type builder struct {
	d    *netlist.Design
	unit string
	seq  int
	clk  *netlist.Net
}

// newBuilder creates a builder adding cells tagged with the given unit name.
func newBuilder(d *netlist.Design, unit string, clk *netlist.Net) *builder {
	return &builder{d: d, unit: unit, clk: clk}
}

// newNet creates a fresh uniquely-named internal net for this unit.
func (b *builder) newNet() *netlist.Net {
	b.seq++
	return b.d.GetOrCreateNet(b.unit + "_n" + strconv.Itoa(b.seq))
}

// input creates (or returns) a primary input port net named after the unit.
func (b *builder) input(name string) *netlist.Net {
	full := b.unit + "_" + name
	if p := b.d.Port(full); p != nil {
		return p.Net
	}
	port, err := b.d.AddPort(full, netlist.In)
	if err != nil {
		panic(err)
	}
	return port.Net
}

// output creates a primary output port and attaches net to it.
func (b *builder) output(name string, net *netlist.Net) {
	full := b.unit + "_" + name
	p, err := b.d.AddPort(full, netlist.Out)
	if err != nil {
		panic(err)
	}
	// AddPort created/attached a net named after the port; to expose an
	// existing internal net we buffer it into the port net. This mirrors
	// what synthesis output buffers do and keeps one-driver-per-net intact.
	buf := b.gate("BUF_X2", map[string]*netlist.Net{"A": net, "Z": p.Net})
	_ = buf
}

// inputBus creates n primary inputs name[0..n-1] and returns their nets.
func (b *builder) inputBus(name string, n int) []*netlist.Net {
	out := make([]*netlist.Net, n)
	for i := range out {
		out[i] = b.input(name + strconv.Itoa(i))
	}
	return out
}

// outputBus exposes the nets as primary outputs name[0..n-1].
func (b *builder) outputBus(name string, nets []*netlist.Net) {
	for i, n := range nets {
		b.output(name+strconv.Itoa(i), n)
	}
}

// gate instantiates master with the given pin connections and returns the
// net on pin Z (creating it when absent from conns).
func (b *builder) gate(master string, conns map[string]*netlist.Net) *netlist.Net {
	b.seq++
	name := b.unit + "_g" + strconv.Itoa(b.seq)
	inst, err := b.d.AddInstance(name, master, b.unit)
	if err != nil {
		panic(err)
	}
	out, hasOut := conns["Z"]
	if !hasOut {
		out = b.newNet()
		conns["Z"] = out
	}
	for pin, net := range conns {
		if err := b.d.Connect(inst, pin, net); err != nil {
			panic(err)
		}
	}
	return out
}

// inv, and2, or2, xor2, nand2, mux2 are small wrappers used by the unit
// generators; they return the output net of the created gate.
func (b *builder) inv(a *netlist.Net) *netlist.Net {
	return b.gate("INV_X1", map[string]*netlist.Net{"A": a})
}

func (b *builder) and2(a, c *netlist.Net) *netlist.Net {
	return b.gate("AND2_X1", map[string]*netlist.Net{"A": a, "B": c})
}

func (b *builder) or2(a, c *netlist.Net) *netlist.Net {
	return b.gate("OR2_X1", map[string]*netlist.Net{"A": a, "B": c})
}

func (b *builder) xor2(a, c *netlist.Net) *netlist.Net {
	return b.gate("XOR2_X1", map[string]*netlist.Net{"A": a, "B": c})
}

func (b *builder) nand2(a, c *netlist.Net) *netlist.Net {
	return b.gate("NAND2_X1", map[string]*netlist.Net{"A": a, "B": c})
}

func (b *builder) nor2(a, c *netlist.Net) *netlist.Net {
	return b.gate("NOR2_X1", map[string]*netlist.Net{"A": a, "B": c})
}

func (b *builder) mux2(a, c, s *netlist.Net) *netlist.Net {
	return b.gate("MUX2_X1", map[string]*netlist.Net{"A": a, "B": c, "S": s})
}

// dff registers d on the unit clock and returns the Q-equivalent output net.
// The library DFF output pin is Z to keep single-output masters uniform.
func (b *builder) dff(d *netlist.Net) *netlist.Net {
	return b.gate("DFF_X1", map[string]*netlist.Net{"D": d, "CK": b.clk})
}

// register registers every net in the bus and returns the registered bus.
func (b *builder) register(bus []*netlist.Net) []*netlist.Net {
	out := make([]*netlist.Net, len(bus))
	for i, n := range bus {
		out[i] = b.dff(n)
	}
	return out
}

// halfAdder returns (sum, carry) built from XOR2 + AND2.
func (b *builder) halfAdder(a, c *netlist.Net) (sum, carry *netlist.Net) {
	return b.xor2(a, c), b.and2(a, c)
}

// fullAdder returns (sum, carry) built from the XOR3 and MAJ3 library cells,
// the classic two-cell full-adder mapping.
func (b *builder) fullAdder(a, c, cin *netlist.Net) (sum, carry *netlist.Net) {
	sum = b.gate("XOR3_X1", map[string]*netlist.Net{"A": a, "B": c, "C": cin})
	carry = b.gate("MAJ3_X1", map[string]*netlist.Net{"A": a, "B": c, "C": cin})
	return sum, carry
}

// rippleAdder adds the two equal-width buses and returns the sum bits plus
// the final carry-out. cin may be nil for no carry input.
func (b *builder) rippleAdder(a, c []*netlist.Net, cin *netlist.Net) (sum []*netlist.Net, cout *netlist.Net) {
	if len(a) != len(c) {
		panic("bench: rippleAdder operand width mismatch")
	}
	sum = make([]*netlist.Net, len(a))
	carry := cin
	for i := range a {
		if carry == nil {
			sum[i], carry = b.halfAdder(a[i], c[i])
		} else {
			sum[i], carry = b.fullAdder(a[i], c[i], carry)
		}
	}
	return sum, carry
}

// carrySelectAdder adds the buses in fixed-size blocks computing each block
// for carry-in 0 and 1 and selecting with the incoming carry; this is the
// "faster, bigger" adder used for the wide adder unit.
func (b *builder) carrySelectAdder(a, c []*netlist.Net, blockSize int) (sum []*netlist.Net, cout *netlist.Net) {
	if len(a) != len(c) {
		panic("bench: carrySelectAdder operand width mismatch")
	}
	n := len(a)
	sum = make([]*netlist.Net, n)
	var carry *netlist.Net
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		if lo == 0 {
			s, co := b.rippleAdder(a[lo:hi], c[lo:hi], nil)
			copy(sum[lo:hi], s)
			carry = co
			continue
		}
		zero := b.gate("TIE0_X1", map[string]*netlist.Net{})
		one := b.gate("TIE1_X1", map[string]*netlist.Net{})
		s0, co0 := b.rippleAdder(a[lo:hi], c[lo:hi], zero)
		s1, co1 := b.rippleAdder(a[lo:hi], c[lo:hi], one)
		for i := lo; i < hi; i++ {
			sum[i] = b.mux2(s0[i-lo], s1[i-lo], carry)
		}
		carry = b.mux2(co0, co1, carry)
	}
	return sum, carry
}

// arrayMultiplier multiplies the two buses with a carry-save array and a
// final ripple stage, returning len(a)+len(c) product bits.
func (b *builder) arrayMultiplier(a, c []*netlist.Net) []*netlist.Net {
	n, m := len(a), len(c)
	// Partial products pp[j][i] = a[i] AND c[j].
	pp := make([][]*netlist.Net, m)
	for j := 0; j < m; j++ {
		pp[j] = make([]*netlist.Net, n)
		for i := 0; i < n; i++ {
			pp[j][i] = b.and2(a[i], c[j])
		}
	}
	product := make([]*netlist.Net, n+m)
	// Row accumulation. After processing row j, acc[i] holds the running-sum
	// bit of weight j+i and top holds the bit of weight j+n (the carry-out
	// of the row). The lowest accumulator bit of each row is final and
	// becomes product[j].
	acc := make([]*netlist.Net, n)
	copy(acc, pp[0])
	var top *netlist.Net
	product[0] = acc[0]
	for j := 1; j < m; j++ {
		row := pp[j]
		next := make([]*netlist.Net, n)
		var carry *netlist.Net
		for i := 0; i < n; i++ {
			// The running-sum bit with the same weight as row[i] is
			// acc[i+1] (or the previous row's carry-out for the top column).
			hi := top
			if i+1 < n {
				hi = acc[i+1]
			}
			switch {
			case hi == nil && carry == nil:
				next[i] = row[i]
			case hi == nil:
				next[i], carry = b.halfAdder(row[i], carry)
			case carry == nil:
				next[i], carry = b.halfAdder(row[i], hi)
			default:
				next[i], carry = b.fullAdder(row[i], hi, carry)
			}
		}
		acc, top = next, carry
		product[j] = acc[0]
	}
	// Remaining accumulator bits are the top product bits.
	for i := 1; i < n; i++ {
		product[m+i-1] = acc[i]
	}
	if top != nil {
		product[n+m-1] = top
	} else {
		// Single-row multiply (m == 1): the top bit is constant zero.
		product[n+m-1] = b.gate("TIE0_X1", map[string]*netlist.Net{})
	}
	return product
}
