package bench

import (
	"math/rand"
	"strings"
	"testing"

	"thermplace/internal/celllib"
	"thermplace/internal/logicsim"
	"thermplace/internal/netlist"
)

func TestDefaultConfigHasNineUnits(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Units) != 9 {
		t.Fatalf("paper benchmark must have nine arithmetic units, got %d", len(cfg.Units))
	}
	if cfg.ClockGHz != 1.0 {
		t.Fatalf("paper benchmark clock is 1 GHz, got %v", cfg.ClockGHz)
	}
	if cfg.ClockHz() != 1e9 {
		t.Fatalf("ClockHz = %v", cfg.ClockHz())
	}
}

func TestGenerateDefaultBenchmarkSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark generation skipped in -short mode")
	}
	lib := celllib.Default65nm()
	d, err := Generate(lib, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumInstances()
	// The paper says "about 12000 standard cells"; accept a reasonable band.
	if n < 10000 || n > 14500 {
		t.Fatalf("default benchmark has %d cells, want about 12000", n)
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Fatalf("generated benchmark fails Check: %v", errs[0])
	}
	units := d.Units()
	if len(units) != 9 {
		t.Fatalf("generated benchmark has %d units, want 9", len(units))
	}
	// Every unit must have a meaningful number of cells.
	for _, u := range units {
		if c := len(d.InstancesInUnit(u)); c < 100 {
			t.Errorf("unit %s has only %d cells", u, c)
		}
	}
	t.Logf("default benchmark: %d cells, %d nets", n, d.NumNets())
}

func TestGenerateErrors(t *testing.T) {
	lib := celllib.Default65nm()
	if _, err := Generate(lib, Config{Name: "x"}); err == nil {
		t.Error("empty unit list must fail")
	}
	if _, err := Generate(lib, Config{Name: "x", Units: []UnitSpec{{Name: "u", Kind: KindMultiplier, Width: 0}}}); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := Generate(lib, Config{Name: "x", Units: []UnitSpec{
		{Name: "u", Kind: KindMultiplier, Width: 4},
		{Name: "u", Kind: KindMultiplier, Width: 4},
	}}); err == nil {
		t.Error("duplicate unit names must fail")
	}
}

func TestUnitKindString(t *testing.T) {
	kinds := []UnitKind{KindMultiplier, KindRippleAdder, KindCarrySelectAdder, KindMAC, KindALU, KindComparator}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "UnitKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

// genUnit builds a single-unit design for functional testing.
func genUnit(t *testing.T, spec UnitSpec) *netlist.Design {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := Generate(lib, Config{Name: "one_" + spec.Name, ClockGHz: 1, Units: []UnitSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runCycle drives the unit inputs, clocks once so registers capture, and
// returns a simulator ready to read the registered outputs.
func runCycle(t *testing.T, d *netlist.Design, set func(sim *logicsim.Simulator)) *logicsim.Simulator {
	t.Helper()
	sim, err := logicsim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	set(sim)
	sim.Step()
	return sim
}

func TestRippleAdderFunctional(t *testing.T) {
	d := genUnit(t, UnitSpec{Name: "add8", Kind: KindRippleAdder, Width: 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		sim := runCycle(t, d, func(s *logicsim.Simulator) {
			if err := s.SetBus("add8_a", a); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBus("add8_b", b); err != nil {
				t.Fatal(err)
			}
		})
		got, width := sim.ReadBus("add8_s")
		if width != 9 {
			t.Fatalf("sum width = %d, want 9", width)
		}
		if got != a+b {
			t.Fatalf("adder: %d + %d = %d, want %d", a, b, got, a+b)
		}
	}
}

func TestCarrySelectAdderFunctional(t *testing.T) {
	d := genUnit(t, UnitSpec{Name: "cs16", Kind: KindCarrySelectAdder, Width: 16})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		sim := runCycle(t, d, func(s *logicsim.Simulator) {
			if err := s.SetBus("cs16_a", a); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBus("cs16_b", b); err != nil {
				t.Fatal(err)
			}
		})
		got, _ := sim.ReadBus("cs16_s")
		if got != a+b {
			t.Fatalf("carry-select adder: %d + %d = %d, want %d", a, b, got, a+b)
		}
	}
}

func TestArrayMultiplierFunctional(t *testing.T) {
	d := genUnit(t, UnitSpec{Name: "m8", Kind: KindMultiplier, Width: 8})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		sim := runCycle(t, d, func(s *logicsim.Simulator) {
			if err := s.SetBus("m8_a", a); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBus("m8_b", b); err != nil {
				t.Fatal(err)
			}
		})
		got, width := sim.ReadBus("m8_p")
		if width != 16 {
			t.Fatalf("product width = %d, want 16", width)
		}
		if got != a*b {
			t.Fatalf("multiplier: %d * %d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestMACAccumulates(t *testing.T) {
	d := genUnit(t, UnitSpec{Name: "mac4", Kind: KindMAC, Width: 4})
	sim, err := logicsim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate 3*5 for three cycles: acc = 15, 30, 45.
	if err := sim.SetBus("mac4_a", 3); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetBus("mac4_b", 5); err != nil {
		t.Fatal(err)
	}
	want := []uint64{15, 30, 45}
	for i, w := range want {
		sim.Step()
		got, _ := sim.ReadBus("mac4_acc")
		if got != w {
			t.Fatalf("cycle %d: acc = %d, want %d", i, got, w)
		}
	}
}

func TestALUFunctional(t *testing.T) {
	d := genUnit(t, UnitSpec{Name: "alu8", Kind: KindALU, Width: 8})
	a, b := uint64(0xC5), uint64(0x3A)
	cases := []struct {
		op0, op1 bool
		want     uint64
		name     string
	}{
		{false, false, (a + b) & 0xFF, "add"},
		{true, false, a & b, "and"},
		{false, true, a | b, "or"},
		{true, true, a ^ b, "xor"},
	}
	for _, c := range cases {
		sim := runCycle(t, d, func(s *logicsim.Simulator) {
			if err := s.SetBus("alu8_a", a); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBus("alu8_b", b); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInput("alu8_op0", c.op0); err != nil {
				t.Fatal(err)
			}
			if err := s.SetInput("alu8_op1", c.op1); err != nil {
				t.Fatal(err)
			}
		})
		got, _ := sim.ReadBus("alu8_r")
		if got != c.want {
			t.Errorf("ALU %s: got %#x, want %#x", c.name, got, c.want)
		}
	}
}

func TestComparatorFunctional(t *testing.T) {
	d := genUnit(t, UnitSpec{Name: "cmp8", Kind: KindComparator, Width: 8})
	cases := []struct {
		a, b   uint64
		eq, gt bool
	}{
		{5, 5, true, false},
		{9, 5, false, true},
		{5, 9, false, false},
		{0, 0, true, false},
		{255, 0, false, true},
	}
	for _, c := range cases {
		sim := runCycle(t, d, func(s *logicsim.Simulator) {
			if err := s.SetBus("cmp8_a", c.a); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBus("cmp8_b", c.b); err != nil {
				t.Fatal(err)
			}
		})
		eq, err := sim.NetValue("cmp8_eq")
		if err != nil {
			t.Fatal(err)
		}
		gt, err := sim.NetValue("cmp8_gt")
		if err != nil {
			t.Fatal(err)
		}
		if eq != c.eq || gt != c.gt {
			t.Errorf("cmp(%d,%d): eq=%v gt=%v, want eq=%v gt=%v", c.a, c.b, eq, gt, c.eq, c.gt)
		}
	}
}

func TestWorkloadProfiles(t *testing.T) {
	sc := ScatteredSmallHotspots()
	if sc.ActivityFor("mult16a") <= sc.ActivityFor("mult32") {
		t.Fatal("scattered workload must heat the small multipliers, not mult32")
	}
	hotUnits := 0
	for _, u := range DefaultConfig().Units {
		if sc.ActivityFor(u.Name) > 2*sc.Default {
			hotUnits++
		}
	}
	if hotUnits != 4 {
		t.Fatalf("scattered workload should heat four units, got %d", hotUnits)
	}

	cc := ConcentratedLargeHotspot()
	if cc.ActivityFor("mult32") <= cc.ActivityFor("mult16a") {
		t.Fatal("concentrated workload must heat mult32")
	}

	un := UniformWorkload(0.3)
	if un.ActivityFor("anything") != 0.3 {
		t.Fatal("uniform workload must apply its default everywhere")
	}
}

func TestSmallConfigGenerates(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := Generate(lib, SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumInstances() < 100 || d.NumInstances() > 2000 {
		t.Fatalf("small benchmark has %d cells, want a few hundred", d.NumInstances())
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Fatalf("Check: %v", errs[0])
	}
}

func TestGeneratedDesignSimulates(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := Generate(lib, SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl := UniformWorkload(0.4)
	stim := logicsim.RandomStimulus(1, func(port string) float64 {
		return wl.ActivityFor(strings.SplitN(port, "_", 2)[0])
	})
	act, err := logicsim.RunRandom(d, 64, stim)
	if err != nil {
		t.Fatal(err)
	}
	if act.MeanActivity() <= 0 {
		t.Fatal("simulated benchmark should have non-zero switching activity")
	}
}

// Property-style test: the hotter workload produces strictly more switching
// in the hot unit than the cold workload does, which is the mechanism the
// paper relies on to position hotspots.
func TestWorkloadControlsUnitActivity(t *testing.T) {
	lib := celllib.Default65nm()
	d, err := Generate(lib, Config{Name: "two", ClockGHz: 1, Units: []UnitSpec{
		{Name: "hotm", Kind: KindMultiplier, Width: 8},
		{Name: "coldm", Kind: KindMultiplier, Width: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	wl := Workload{Name: "skewed", Activity: map[string]float64{"hotm": 0.6}, Default: 0.02}
	stim := logicsim.RandomStimulus(5, func(port string) float64 {
		return wl.ActivityFor(strings.SplitN(port, "_", 2)[0])
	})
	act, err := logicsim.RunRandom(d, 128, stim)
	if err != nil {
		t.Fatal(err)
	}
	sumFor := func(unit string) float64 {
		total := 0.0
		for _, inst := range d.InstancesInUnit(unit) {
			out := inst.Master.OutputPin()
			if out == "" {
				continue
			}
			if net := inst.Conn(out); net != nil {
				total += act.For(net.Name)
			}
		}
		return total
	}
	hot, cold := sumFor("hotm"), sumFor("coldm")
	if hot <= 2*cold {
		t.Fatalf("hot unit activity %v should dominate cold unit activity %v", hot, cold)
	}
}
