package bench

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"thermplace/internal/celllib"
	"thermplace/internal/def"
	"thermplace/internal/floorplan"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

func TestFamiliesAndParse(t *testing.T) {
	fams := Families()
	if len(fams) < 4 {
		t.Fatalf("need at least four scenario families, got %d", len(fams))
	}
	seen := map[Family]bool{}
	for _, f := range fams {
		if seen[f] {
			t.Fatalf("duplicate family %q", f)
		}
		seen[f] = true
		got, err := ParseFamily(string(f))
		if err != nil || got != f {
			t.Fatalf("ParseFamily(%q) = %q, %v", f, got, err)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Fatal("unknown family must fail to parse")
	}
}

func TestScenarioNormalizeAndValidate(t *testing.T) {
	sc := Scenario{Family: FamilyGradientMix}.Normalized()
	if sc.TargetCells != 12000 || sc.ClockGHz != 1.0 || sc.AspectRatio != 1.0 || sc.Utilization != 0.85 {
		t.Fatalf("defaults not applied: %+v", sc)
	}
	bad := []Scenario{
		{Family: "bogus"},
		{Family: FamilyManyUnits, TargetCells: 10},
		{Family: FamilyManyUnits, ClockGHz: -1},
		{Family: FamilyManyUnits, AspectRatio: -2},
		{Family: FamilyManyUnits, Utilization: 1.5},
		{Family: FamilyManyUnits, HotActivity: 1.5},
	}
	for _, sc := range bad {
		if err := sc.Normalized().Validate(); err == nil {
			t.Errorf("scenario %+v must fail validation", sc)
		}
	}
}

// serializeScenario generates the scenario and returns the Verilog and DEF
// bytes of the result; the DEF comes from a deterministic placement of the
// generated design.
func serializeScenario(t *testing.T, sc Scenario) (verilog, defBytes []byte, g *Generated) {
	t.Helper()
	g, err := sc.Generate(celllib.Default65nm())
	if err != nil {
		t.Fatalf("generating %v: %v", sc, err)
	}
	var vbuf bytes.Buffer
	if err := netlist.WriteVerilog(&vbuf, g.Design); err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(g.Design, floorplan.Config{
		Utilization: g.Scenario.Utilization,
		AspectRatio: g.Scenario.AspectRatio,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.PlaceWithoutFillers(g.Design, fp)
	if err != nil {
		t.Fatal(err)
	}
	place.InsertFillers(p)
	var dbuf bytes.Buffer
	if err := def.Write(&dbuf, p); err != nil {
		t.Fatal(err)
	}
	return vbuf.Bytes(), dbuf.Bytes(), g
}

// TestScenarioSeedDeterminism is the generator's reproducibility contract:
// the same seed yields byte-identical netlist and DEF output; a different
// seed yields a different design or workload.
func TestScenarioSeedDeterminism(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			sc := Scenario{Family: fam, Seed: 5, TargetCells: 2500}
			v1, d1, g1 := serializeScenario(t, sc)
			v2, d2, g2 := serializeScenario(t, sc)
			if !bytes.Equal(v1, v2) {
				t.Fatal("same seed must produce byte-identical Verilog")
			}
			if !bytes.Equal(d1, d2) {
				t.Fatal("same seed must produce byte-identical DEF")
			}
			if g1.Workload.Default != g2.Workload.Default || len(g1.Workload.Activity) != len(g2.Workload.Activity) {
				t.Fatal("same seed must produce the identical workload")
			}
			for u, a := range g1.Workload.Activity {
				if g2.Workload.Activity[u] != a {
					t.Fatalf("same seed changed activity of %s: %v vs %v", u, a, g2.Workload.Activity[u])
				}
			}

			v3, _, g3 := serializeScenario(t, Scenario{Family: fam, Seed: 6, TargetCells: 2500})
			netlistDiffers := !bytes.Equal(stripModuleName(v1), stripModuleName(v3))
			workloadDiffers := workloadsDiffer(g1.Workload, g3.Workload)
			if !netlistDiffers && !workloadDiffers {
				t.Fatal("different seeds must change the netlist or the workload")
			}
			// Every family except paper-synth9 (whose unit mix is pinned to
			// the paper) must produce a structurally different netlist.
			if fam != FamilyPaperSynth9 && !netlistDiffers {
				t.Fatal("different seeds must change the generated netlist")
			}
		})
	}
}

// stripModuleName drops the seed-bearing module header line so that
// different-seed comparisons look at the circuit structure, not the name.
func stripModuleName(v []byte) []byte {
	lines := bytes.SplitN(v, []byte("\n"), 2)
	if len(lines) == 2 {
		return lines[1]
	}
	return v
}

func workloadsDiffer(a, b Workload) bool {
	if a.Default != b.Default || len(a.Activity) != len(b.Activity) {
		return true
	}
	for u, v := range a.Activity {
		if b.Activity[u] != v {
			return true
		}
	}
	return false
}

// TestScenarioFamilySizes checks every family tracks its target cell count
// at multiple sizes and always produces a checked design with a hot unit.
func TestScenarioFamilySizes(t *testing.T) {
	sizes := []int{1200, 4000}
	if !testing.Short() {
		sizes = append(sizes, 12000)
	}
	lib := celllib.Default65nm()
	for _, fam := range Families() {
		for _, cells := range sizes {
			fam, cells := fam, cells
			t.Run(fmt.Sprintf("%s/cells=%d", fam, cells), func(t *testing.T) {
				g, err := Scenario{Family: fam, Seed: 3, TargetCells: cells}.Generate(lib)
				if err != nil {
					t.Fatal(err)
				}
				n := g.Design.NumInstances()
				if lo, hi := int(0.75*float64(cells)), int(1.25*float64(cells)); n < lo || n > hi {
					t.Fatalf("%s at target %d generated %d cells (want within ±25%%)", fam, cells, n)
				}
				if errs := g.Design.Check(); len(errs) != 0 {
					t.Fatalf("generated design fails checks: %v", errs[0])
				}
				if len(g.Design.Units()) != len(g.Config.Units) {
					t.Fatalf("design has %d units, config %d", len(g.Design.Units()), len(g.Config.Units))
				}
				// The workload must single out at least one hot unit so the
				// thermal transforms have something to target.
				hot := 0
				for _, u := range g.Config.Units {
					if g.Workload.ActivityFor(u.Name) >= 2*g.Workload.Default {
						hot++
					}
				}
				if hot == 0 {
					t.Fatal("workload has no hot units")
				}
				t.Logf("%s target=%d: %d cells in %d units, %d hot", fam, cells, n, len(g.Config.Units), hot)
			})
		}
	}
}

// TestScenarioFamilyCharacter pins the qualitative property each family is
// named for.
func TestScenarioFamilyCharacter(t *testing.T) {
	lib := celllib.Default65nm()
	gen := func(fam Family) *Generated {
		g, err := Scenario{Family: fam, Seed: 11, TargetCells: 6000}.Generate(lib)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		return g
	}

	paper := gen(FamilyPaperSynth9)
	if len(paper.Config.Units) != 9 {
		t.Errorf("paper-synth9 must keep the paper's nine units, got %d", len(paper.Config.Units))
	}

	cluster := gen(FamilyHotspotCluster)
	hot := 0
	for _, u := range cluster.Config.Units {
		if cluster.Workload.ActivityFor(u.Name) >= 2*cluster.Workload.Default {
			hot++
		}
	}
	if hot < 2 || hot > 3 {
		t.Errorf("hotspot-cluster should heat 2-3 units, got %d", hot)
	}

	many := gen(FamilyManyUnits)
	if len(many.Config.Units) < 25 {
		t.Errorf("many-units at 6000 cells should have dozens of units, got %d", len(many.Config.Units))
	}

	wide := gen(FamilyWideDatapath)
	maxWidth := 0
	for _, u := range wide.Config.Units {
		if u.Width > maxWidth {
			maxWidth = u.Width
		}
	}
	if maxWidth < 20 {
		t.Errorf("wide-datapath should contain a wide unit, widest is %d bits", maxWidth)
	}

	grad := gen(FamilyGradientMix)
	kinds := map[UnitKind]bool{}
	for _, u := range grad.Config.Units {
		kinds[u.Kind] = true
	}
	if len(kinds) < 4 {
		t.Errorf("gradient-mix should mix unit kinds, got %d kinds", len(kinds))
	}
	first := grad.Workload.ActivityFor(grad.Config.Units[0].Name)
	last := grad.Workload.ActivityFor(grad.Config.Units[len(grad.Config.Units)-1].Name)
	if first <= 2*last {
		t.Errorf("gradient-mix activity should ramp down the unit list: first %v, last %v", first, last)
	}
}

// TestScenarioUnitNamesFlowSafe guards the flow's port-to-unit mapping: a
// port is attributed to its unit by splitting at the first underscore, so
// generated unit names must never contain one.
func TestScenarioUnitNamesFlowSafe(t *testing.T) {
	lib := celllib.Default65nm()
	for _, fam := range Families() {
		g, err := Scenario{Family: fam, Seed: 2, TargetCells: 2000}.Generate(lib)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range g.Config.Units {
			if strings.Contains(u.Name, "_") {
				t.Fatalf("%s: unit name %q contains an underscore", fam, u.Name)
			}
		}
	}
}

// TestEstimateCellsMatchesGenerator cross-checks the planner's closed-form
// cell-count model against what the generators actually build.
func TestEstimateCellsMatchesGenerator(t *testing.T) {
	lib := celllib.Default65nm()
	specs := []UnitSpec{
		{Name: "m8", Kind: KindMultiplier, Width: 8},
		{Name: "m17", Kind: KindMultiplier, Width: 17},
		{Name: "a16", Kind: KindRippleAdder, Width: 16},
		{Name: "cs24", Kind: KindCarrySelectAdder, Width: 24},
		{Name: "cs30", Kind: KindCarrySelectAdder, Width: 30},
		{Name: "mac9", Kind: KindMAC, Width: 9},
		{Name: "alu12", Kind: KindALU, Width: 12},
		{Name: "cmp21", Kind: KindComparator, Width: 21},
	}
	for _, spec := range specs {
		d, err := Generate(lib, Config{Name: "est", ClockGHz: 1, Units: []UnitSpec{spec}})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		got := d.NumInstances()
		est := EstimateCells(spec)
		if math.Abs(float64(got-est)) > 0.05*float64(got) {
			t.Errorf("%s (%v w=%d): estimate %d vs generated %d", spec.Name, spec.Kind, spec.Width, est, got)
		}
	}
}

// TestScenarioActivityOverrides checks the hot/base activity knobs.
func TestScenarioActivityOverrides(t *testing.T) {
	lib := celllib.Default65nm()
	g, err := Scenario{
		Family: FamilyHotspotCluster, Seed: 4, TargetCells: 1500,
		HotActivity: 0.9, BaseActivity: 0.01,
	}.Generate(lib)
	if err != nil {
		t.Fatal(err)
	}
	if g.Workload.Default != 0.01 {
		t.Fatalf("base activity override not applied: %v", g.Workload.Default)
	}
	maxA := 0.0
	for _, a := range g.Workload.Activity {
		if a > maxA {
			maxA = a
		}
	}
	if maxA < 0.8 {
		t.Fatalf("hot activity override not applied: max %v", maxA)
	}
}
