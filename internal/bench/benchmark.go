package bench

import (
	"fmt"

	"thermplace/internal/celllib"
	"thermplace/internal/netlist"
)

// Config describes a synthetic benchmark to generate.
type Config struct {
	// Name is the top-level module name.
	Name string
	// ClockGHz is the clock frequency in GHz (the paper uses 1 GHz).
	ClockGHz float64
	// Units lists the arithmetic units to instantiate.
	Units []UnitSpec
}

// ClockHz returns the clock frequency in hertz.
func (c Config) ClockHz() float64 { return c.ClockGHz * 1e9 }

// DefaultConfig returns the paper's benchmark configuration: nine arithmetic
// units of various sizes totalling roughly 12,000 standard cells, clocked at
// 1 GHz.
func DefaultConfig() Config {
	return Config{
		Name:     "synth9",
		ClockGHz: 1.0,
		Units: []UnitSpec{
			{Name: "mult32", Kind: KindMultiplier, Width: 32},
			{Name: "mult28", Kind: KindMultiplier, Width: 28},
			{Name: "mult24", Kind: KindMultiplier, Width: 24},
			{Name: "mult20", Kind: KindMultiplier, Width: 20},
			{Name: "mult16a", Kind: KindMultiplier, Width: 16},
			{Name: "mult16b", Kind: KindMultiplier, Width: 16},
			{Name: "mac16", Kind: KindMAC, Width: 16},
			{Name: "alu32", Kind: KindALU, Width: 32},
			{Name: "csadd64", Kind: KindCarrySelectAdder, Width: 64},
		},
	}
}

// SmallConfig returns a reduced benchmark (a few hundred cells) useful for
// fast tests and the quickstart example.
func SmallConfig() Config {
	return Config{
		Name:     "synth_small",
		ClockGHz: 1.0,
		Units: []UnitSpec{
			{Name: "mult8", Kind: KindMultiplier, Width: 8},
			{Name: "add16", Kind: KindRippleAdder, Width: 16},
			{Name: "alu8", Kind: KindALU, Width: 8},
			{Name: "cmp16", Kind: KindComparator, Width: 16},
		},
	}
}

// Generate builds the benchmark design described by cfg using lib.
// The returned design has a single clock input named "clk" connected to all
// flip-flops and one set of primary inputs/outputs per unit, each tagged
// with its unit name.
func Generate(lib *celllib.Library, cfg Config) (*netlist.Design, error) {
	if len(cfg.Units) == 0 {
		return nil, fmt.Errorf("bench: configuration has no units")
	}
	d := netlist.NewDesign(cfg.Name, lib)
	clkPort, err := d.AddPort("clk", netlist.In)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, u := range cfg.Units {
		if u.Width <= 0 {
			return nil, fmt.Errorf("bench: unit %q has invalid width %d", u.Name, u.Width)
		}
		if seen[u.Name] {
			return nil, fmt.Errorf("bench: duplicate unit name %q", u.Name)
		}
		seen[u.Name] = true
		buildUnit(d, u, clkPort.Net)
	}
	if errs := d.Check(); len(errs) != 0 {
		return nil, fmt.Errorf("bench: generated design fails checks: %w (and %d more)", errs[0], len(errs)-1)
	}
	return d, nil
}

// Workload assigns a primary-input switching activity to every unit; this is
// how the paper controls the size and position of hotspots ("we are able to
// control the size and position of hotspots using different workloads").
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Activity maps unit name to the per-cycle toggle probability of that
	// unit's primary inputs.
	Activity map[string]float64
	// Default is the activity applied to units not listed in Activity.
	Default float64
}

// ActivityFor returns the input toggle probability for the unit.
func (w Workload) ActivityFor(unit string) float64 {
	if a, ok := w.Activity[unit]; ok {
		return a
	}
	return w.Default
}

// ScatteredSmallHotspots is the paper's first test set: four small units run
// hot while the rest of the circuit stays quiet, producing four small
// scattered hotspots.
func ScatteredSmallHotspots() Workload {
	return Workload{
		Name: "scattered-small",
		Activity: map[string]float64{
			"mult16a": 0.55,
			"mult16b": 0.55,
			"mac16":   0.50,
			"mult20":  0.45,
		},
		Default: 0.04,
	}
}

// ConcentratedLargeHotspot is the paper's second test set: the single
// largest unit runs hot, producing one large concentrated hotspot.
func ConcentratedLargeHotspot() Workload {
	return Workload{
		Name: "concentrated-large",
		Activity: map[string]float64{
			"mult32": 0.55,
		},
		Default: 0.04,
	}
}

// UniformWorkload drives every unit with the same activity; useful as a
// control case and in tests.
func UniformWorkload(activity float64) Workload {
	return Workload{Name: "uniform", Default: activity}
}
