package bench

import (
	"fmt"

	"thermplace/internal/netlist"
)

// UnitSpec describes one arithmetic unit of the synthetic benchmark.
type UnitSpec struct {
	// Name is the unit tag applied to every instance of the unit.
	Name string
	// Kind selects the generator.
	Kind UnitKind
	// Width is the operand bit width (multiplier/adder/ALU width).
	Width int
}

// UnitKind enumerates the available arithmetic-unit generators.
type UnitKind int

const (
	// KindMultiplier is an array multiplier with registered product.
	KindMultiplier UnitKind = iota
	// KindRippleAdder is a ripple-carry adder with registered sum.
	KindRippleAdder
	// KindCarrySelectAdder is a carry-select adder with registered sum.
	KindCarrySelectAdder
	// KindMAC is a multiply-accumulate unit: multiplier + accumulator adder
	// + accumulator register fed back.
	KindMAC
	// KindALU is a simple per-bit ALU (add / and / or / xor selected by two
	// control inputs) with registered result.
	KindALU
	// KindComparator is an equality/magnitude comparator tree.
	KindComparator
)

func (k UnitKind) String() string {
	switch k {
	case KindMultiplier:
		return "multiplier"
	case KindRippleAdder:
		return "ripple-adder"
	case KindCarrySelectAdder:
		return "carry-select-adder"
	case KindMAC:
		return "mac"
	case KindALU:
		return "alu"
	case KindComparator:
		return "comparator"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// buildUnit adds one unit to the design, tagging all its cells with
// spec.Name, and returns the number of instances created for it.
func buildUnit(d *netlist.Design, spec UnitSpec, clk *netlist.Net) int {
	before := d.NumInstances()
	b := newBuilder(d, spec.Name, clk)
	switch spec.Kind {
	case KindMultiplier:
		buildMultiplier(b, spec.Width)
	case KindRippleAdder:
		buildRippleAdder(b, spec.Width)
	case KindCarrySelectAdder:
		buildCarrySelectAdder(b, spec.Width)
	case KindMAC:
		buildMAC(b, spec.Width)
	case KindALU:
		buildALU(b, spec.Width)
	case KindComparator:
		buildComparator(b, spec.Width)
	default:
		panic(fmt.Sprintf("bench: unknown unit kind %v", spec.Kind))
	}
	return d.NumInstances() - before
}

func buildMultiplier(b *builder, width int) {
	a := b.inputBus("a", width)
	c := b.inputBus("b", width)
	p := b.arrayMultiplier(a, c)
	reg := b.register(p)
	b.outputBus("p", reg)
}

func buildRippleAdder(b *builder, width int) {
	a := b.inputBus("a", width)
	c := b.inputBus("b", width)
	sum, cout := b.rippleAdder(a, c, nil)
	reg := b.register(append(sum, cout))
	b.outputBus("s", reg)
}

func buildCarrySelectAdder(b *builder, width int) {
	a := b.inputBus("a", width)
	c := b.inputBus("b", width)
	sum, cout := b.carrySelectAdder(a, c, 8)
	reg := b.register(append(sum, cout))
	b.outputBus("s", reg)
}

func buildMAC(b *builder, width int) {
	a := b.inputBus("a", width)
	c := b.inputBus("b", width)
	p := b.arrayMultiplier(a, c)
	// Accumulator is 2*width+4 bits wide; feedback register.
	accWidth := 2*width + 4
	// Extend the product with zeros.
	zero := b.gate("TIE0_X1", map[string]*netlist.Net{})
	ext := make([]*netlist.Net, accWidth)
	for i := range ext {
		if i < len(p) {
			ext[i] = p[i]
		} else {
			ext[i] = zero
		}
	}
	// Feedback accumulator: acc <= acc + product. Registers are created
	// first conceptually, but gate-level construction needs the adder output
	// first, so build DFFs on the adder outputs and use their outputs as the
	// second adder operand (a one-cycle accumulate loop).
	// To break the chicken-and-egg we create the register output nets up
	// front, then connect the DFF outputs onto them.
	accOut := make([]*netlist.Net, accWidth)
	for i := range accOut {
		accOut[i] = b.newNet()
	}
	sum, _ := b.rippleAdder(ext, accOut, nil)
	for i := range sum {
		b.gate("DFF_X1", map[string]*netlist.Net{"D": sum[i], "CK": b.clk, "Z": accOut[i]})
	}
	b.outputBus("acc", accOut)
}

func buildALU(b *builder, width int) {
	a := b.inputBus("a", width)
	c := b.inputBus("b", width)
	op0 := b.input("op0")
	op1 := b.input("op1")
	sum, _ := b.rippleAdder(a, c, nil)
	res := make([]*netlist.Net, width)
	for i := 0; i < width; i++ {
		andV := b.and2(a[i], c[i])
		orV := b.or2(a[i], c[i])
		xorV := b.xor2(a[i], c[i])
		lo := b.mux2(sum[i], andV, op0)
		hi := b.mux2(orV, xorV, op0)
		res[i] = b.mux2(lo, hi, op1)
	}
	reg := b.register(res)
	b.outputBus("r", reg)
}

func buildComparator(b *builder, width int) {
	a := b.inputBus("a", width)
	c := b.inputBus("b", width)
	// Equality: AND-tree of per-bit XNORs.
	eqBits := make([]*netlist.Net, width)
	for i := 0; i < width; i++ {
		eqBits[i] = b.gate("XNOR2_X1", map[string]*netlist.Net{"A": a[i], "B": c[i]})
	}
	eq := reduceTree(b, eqBits, b.and2)
	// Greater-than via a borrow chain: a > b iff the subtraction a - b - 1
	// produces no borrow. Implemented with the ripple adder on a and the
	// inverted b (a + ~b, carry-out = a >= b), then refined with eq.
	cinv := make([]*netlist.Net, width)
	for i := 0; i < width; i++ {
		cinv[i] = b.inv(c[i])
	}
	one := b.gate("TIE1_X1", map[string]*netlist.Net{})
	_, geCarry := b.rippleAdder(a, cinv, one)
	gt := b.and2(geCarry, b.inv(eq))
	regEq := b.dff(eq)
	regGt := b.dff(gt)
	b.output("eq", regEq)
	b.output("gt", regGt)
}

// reduceTree folds the nets pairwise with op until a single net remains.
func reduceTree(b *builder, nets []*netlist.Net, op func(a, c *netlist.Net) *netlist.Net) *netlist.Net {
	if len(nets) == 0 {
		panic("bench: reduceTree on empty slice")
	}
	for len(nets) > 1 {
		var next []*netlist.Net
		for i := 0; i+1 < len(nets); i += 2 {
			next = append(next, op(nets[i], nets[i+1]))
		}
		if len(nets)%2 == 1 {
			next = append(next, nets[len(nets)-1])
		}
		nets = next
	}
	return nets[0]
}
