package harness

import (
	"testing"
	"time"

	"thermplace/internal/bench"
)

// TestLoadChaosServer is the query-server acceptance test: concurrent
// clients storm two resident designs through tight admission bounds while
// stalls, shed admissions and a non-converging solve are injected, then a
// drain begins with stalled queries still parked in-flight. Every contract
// the server documents — bit-identical completed responses, typed fault
// categories, bounded cache memory, zero post-drain admissions, zero
// goroutine leakage — is asserted by the harness.
func TestLoadChaosServer(t *testing.T) {
	opts := LoadChaosOptions{}
	if testing.Short() {
		opts.Cells = 500
		opts.Clients = 3
		opts.DeadlineMS = 800
		opts.DrainTimeout = 250 * time.Millisecond
	}
	rep, err := RunLoadChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() < 6 {
		t.Errorf("only %d load/chaos properties verified: %+v", rep.Passed(), rep.Checks)
	}
	for _, c := range rep.Checks {
		t.Logf("%-28s %s%s", c.Name, c.Detail, skipMark(c))
	}
}

// TestLoadChaosRejectsBadScenario propagates generator validation errors.
func TestLoadChaosRejectsBadScenario(t *testing.T) {
	if _, err := RunLoadChaos(LoadChaosOptions{Families: []bench.Family{"no-such-family"}}); err == nil {
		t.Fatal("unknown family must fail")
	}
}
