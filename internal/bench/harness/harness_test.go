package harness

import (
	"fmt"
	"strings"
	"testing"

	"thermplace/internal/bench"
)

// TestScenarioFamiliesFullFlow is the metamorphic acceptance test: every
// scenario family, at two sizes each, runs the entire place → power →
// thermal → sweep pipeline and must satisfy every cross-implementation
// property (fast path vs SPICE oracle, MG vs Jacobi, warm vs cold solves,
// Workers=1 vs Workers=N bit-identity, placement legality). In -short mode
// one small seed per family still covers the full flow, which is what the
// CI scenario-harness job runs.
func TestScenarioFamiliesFullFlow(t *testing.T) {
	sizes := []int{1500, 3500}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, fam := range bench.Families() {
		for _, cells := range sizes {
			fam, cells := fam, cells
			t.Run(fmt.Sprintf("%s/cells=%d", fam, cells), func(t *testing.T) {
				rep, err := Run(bench.Scenario{Family: fam, Seed: 7, TargetCells: cells}, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if lo, hi := int(0.75*float64(cells)), int(1.25*float64(cells)); rep.Cells < lo || rep.Cells > hi {
					t.Errorf("generated %d cells for target %d", rep.Cells, cells)
				}
				if rep.PeakRise <= 0 {
					t.Errorf("baseline peak rise %v must be positive", rep.PeakRise)
				}
				if rep.Passed() < 6 {
					t.Errorf("only %d properties verified: %+v", rep.Passed(), rep.Checks)
				}
				for _, c := range rep.Checks {
					t.Logf("%-28s %s%s", c.Name, c.Detail, skipMark(c))
				}
			})
		}
	}
}

func skipMark(c Check) string {
	if c.Skipped {
		return " (skipped)"
	}
	return ""
}

// TestHarnessOptionKnobs exercises the non-default option paths: a custom
// grid above the oracle limit (oracle skipped), sweep disabled, and
// refinement disabled.
func TestHarnessOptionKnobs(t *testing.T) {
	sc := bench.Scenario{Family: bench.FamilyHotspotCluster, Seed: 9, TargetCells: 1200}
	rep, err := Run(sc, Options{
		Grid:         24,
		SimCycles:    32,
		RefinePasses: -1,
		Workers:      2,
		// 24*24*9 = 5184 unknowns; force the oracle to be skipped.
		OracleMaxUnknowns: 1000,
		SkipSweep:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracleSkipped, sweepSkipped := false, false
	for _, c := range rep.Checks {
		switch c.Name {
		case "fastpath-vs-spice-oracle":
			oracleSkipped = c.Skipped
		case "sweep-workers-equality":
			sweepSkipped = c.Skipped
		}
	}
	if !oracleSkipped {
		t.Error("oracle check should be skipped above OracleMaxUnknowns")
	}
	if !sweepSkipped {
		t.Error("sweep check should be skipped with SkipSweep")
	}
	if rep.Passed() < 4 {
		t.Errorf("only %d properties verified: %+v", rep.Passed(), rep.Checks)
	}
}

// TestHarnessRejectsBadScenario propagates generator validation errors.
func TestHarnessRejectsBadScenario(t *testing.T) {
	if _, err := Run(bench.Scenario{Family: "no-such-family"}, Options{}); err == nil {
		t.Fatal("unknown family must fail")
	}
	if _, err := Run(bench.Scenario{Family: bench.FamilyManyUnits, TargetCells: 50}, Options{}); err == nil {
		t.Fatal("absurd target cell count must fail")
	}
}

// TestHarnessFailsOnCorruptedSolver proves the harness cannot silently
// pass: a deliberately biased thermal result must trip the
// cross-implementation checks.
func TestHarnessFailsOnCorruptedSolver(t *testing.T) {
	sc := bench.Scenario{Family: bench.FamilyPaperSynth9, Seed: 5, TargetCells: 1500}
	_, err := Run(sc, Options{InjectThermalBiasC: 0.25, SkipSweep: true, SkipDeterminism: true})
	if err == nil {
		t.Fatal("harness passed with a corrupted thermal solver")
	}
	if !strings.Contains(err.Error(), "warm vs cold") {
		t.Fatalf("corrupted solver tripped the wrong check: %v", err)
	}
}

// TestHarnessFailsOnCorruptedTimingDelta proves the incremental-timing
// equality check bites: a cell moved after the ERI delta was recorded (so
// the delta under-reports the dirty cone) must fail the run.
func TestHarnessFailsOnCorruptedTimingDelta(t *testing.T) {
	sc := bench.Scenario{Family: bench.FamilyHotspotCluster, Seed: 9, TargetCells: 1200}
	_, err := Run(sc, Options{CorruptTimingDelta: true, SkipSweep: true, SkipDeterminism: true})
	if err == nil {
		t.Fatal("harness passed with an under-reported timing delta")
	}
	if !strings.Contains(err.Error(), "timing incremental") {
		t.Fatalf("corrupted timing delta tripped the wrong check: %v", err)
	}
}

// TestHarnessFailsOnCorruptedAdaptiveEstimates proves the
// adaptive-front-exactness check bites: biased coarse estimates make the
// triage drop true-front candidates, which must fail the run.
func TestHarnessFailsOnCorruptedAdaptiveEstimates(t *testing.T) {
	sc := bench.Scenario{Family: bench.FamilyHotspotCluster, Seed: 9, TargetCells: 1200}
	_, err := Run(sc, Options{InjectAdaptiveBiasC: 1000, SkipDeterminism: true})
	if err == nil {
		t.Fatal("harness passed with corrupted adaptive estimates")
	}
	if !strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("corrupted adaptive estimates tripped the wrong check: %v", err)
	}
}

// TestHarnessFailsOnCorruptedPlacement proves the legality check bites: a
// cell knocked off the site grid must fail the run.
func TestHarnessFailsOnCorruptedPlacement(t *testing.T) {
	sc := bench.Scenario{Family: bench.FamilyPaperSynth9, Seed: 5, TargetCells: 1500}
	_, err := Run(sc, Options{CorruptPlacement: true, SkipSweep: true, SkipDeterminism: true})
	if err == nil {
		t.Fatal("harness passed with an illegal placement")
	}
	if !strings.Contains(err.Error(), "placement invalid") {
		t.Fatalf("corrupted placement tripped the wrong check: %v", err)
	}
}
