// Package harness runs the entire analysis flow over generated scenarios
// and checks metamorphic, cross-implementation properties instead of golden
// numbers: the structured-grid fast path against the SPICE oracle, the
// multigrid preconditioner against the Jacobi fallback, warm-started pooled
// solves against cold solves, the concurrent sweep engine against the
// sequential one, and the placer's legality invariants — each of which must
// hold for every design the scenario generator can produce, not just the
// paper's single 12k-cell point.
//
// The harness is the test driver behind `go test ./internal/bench/...` and
// the CI scenario job; it is a normal package (no testing dependency) so
// commands and benchmarks can reuse it.
package harness

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/congestion"
	"thermplace/internal/core"
	"thermplace/internal/flow"
	"thermplace/internal/geom"
	"thermplace/internal/hotspot"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
	"thermplace/internal/thermal"
	"thermplace/internal/timing"
)

// Options tunes how deep the harness drives the flow for one scenario.
type Options struct {
	// Grid is the square thermal-grid resolution (NX = NY). Zero means 20.
	Grid int
	// SimCycles is the random-vector simulation depth. Zero means 48.
	SimCycles int
	// RefinePasses is the number of detailed-placement passes; zero means 1
	// (so the refiner's invariants are exercised), negative disables.
	RefinePasses int
	// Overheads are the sweep area-overhead points. Nil means {0.25}.
	Overheads []float64
	// Workers is the concurrent sweep width compared against Workers=1.
	// Zero means 4.
	Workers int
	// OracleMaxUnknowns bounds the system size for the SPICE-oracle check
	// (the oracle is dense in names and an order of magnitude slower); the
	// check is skipped on larger systems. Zero means 8000.
	OracleMaxUnknowns int
	// TolC is the cross-implementation temperature tolerance in degrees
	// Celsius. Zero means 1e-6.
	TolC float64
	// SkipDeterminism skips the regenerate-and-compare netlist check.
	SkipDeterminism bool
	// SkipSweep skips the sequential-versus-concurrent sweep comparison
	// and the incremental-versus-from-scratch comparison.
	SkipSweep bool

	// InjectThermalBiasC, when nonzero, deliberately corrupts the baseline
	// fast-path thermal result by this many degrees before the
	// cross-implementation checks run. It exists to test the harness
	// itself: a corrupted solver must make Run fail, proving the checks
	// cannot silently pass.
	InjectThermalBiasC float64
	// CorruptPlacement, when true, deliberately knocks one placed cell off
	// the site grid before the legality check. Like InjectThermalBiasC it
	// exists to prove the harness catches a broken placer.
	CorruptPlacement bool
	// CorruptTimingDelta, when true, deliberately moves one cell of the ERI
	// placement after its delta was recorded, so the incremental timing
	// update works from an under-reported delta. Like the knobs above it
	// exists to prove the timing-incremental-equality check cannot silently
	// pass: Run must fail when the delta contract is broken.
	CorruptTimingDelta bool
	// InjectAdaptiveBiasC, when nonzero, deliberately corrupts the adaptive
	// sweep's coarse estimates (core.AdaptiveOptions.InjectEstRiseBiasC) so
	// the triage drops true-front candidates. Like the knobs above it exists
	// to prove the adaptive-front-exactness check cannot silently pass.
	InjectAdaptiveBiasC float64
}

func (o Options) normalized() Options {
	if o.Grid == 0 {
		o.Grid = 20
	}
	if o.SimCycles == 0 {
		o.SimCycles = 48
	}
	switch {
	case o.RefinePasses == 0:
		o.RefinePasses = 1
	case o.RefinePasses < 0:
		o.RefinePasses = 0
	}
	if len(o.Overheads) == 0 {
		o.Overheads = []float64{0.25}
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.OracleMaxUnknowns == 0 {
		o.OracleMaxUnknowns = 8000
	}
	if o.TolC == 0 {
		o.TolC = 1e-6
	}
	return o
}

// Check records one property the harness verified (or skipped) for a
// scenario.
type Check struct {
	// Name identifies the property, e.g. "fastpath-vs-spice-oracle".
	Name string
	// Detail reports the measured margin, e.g. "max |dT| = 1.9e-10 C".
	Detail string
	// Skipped marks a check that did not apply to this scenario (for
	// example the SPICE oracle on a grid above OracleMaxUnknowns).
	Skipped bool
}

// Report summarizes one harness run.
type Report struct {
	// Scenario is the normalized scenario that was driven through the flow.
	Scenario bench.Scenario
	// Cells is the generated standard-cell count.
	Cells int
	// Units is the number of logical units in the design.
	Units int
	// PeakRise is the baseline peak temperature rise in kelvin.
	PeakRise float64
	// Hotspots is the number of hotspots detected on the baseline.
	Hotspots int
	// Checks lists every verified property in execution order.
	Checks []Check
}

func (r *Report) pass(name, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Detail: detail})
}
func (r *Report) skipped(name, why string) {
	r.Checks = append(r.Checks, Check{Name: name, Detail: why, Skipped: true})
}

// Passed returns the number of checks that ran and held.
func (r *Report) Passed() int {
	n := 0
	for _, c := range r.Checks {
		if !c.Skipped {
			n++
		}
	}
	return n
}

// Run generates the scenario, drives it through place → power → thermal →
// sweep, and verifies every cross-implementation property. It returns a
// report of the checks performed; the first violated property aborts the
// run with a descriptive error.
func Run(sc bench.Scenario, opts Options) (*Report, error) {
	opts = opts.normalized()
	gen, err := sc.Generate(celllib.Default65nm())
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scenario: gen.Scenario,
		Cells:    gen.Design.NumInstances(),
		Units:    len(gen.Config.Units),
	}

	// Property: the generator's reproducibility contract. Regenerating the
	// scenario must produce a byte-identical netlist.
	if opts.SkipDeterminism {
		rep.skipped("netlist-determinism", "disabled by options")
	} else {
		again, err := sc.Generate(celllib.Default65nm())
		if err != nil {
			return rep, fmt.Errorf("harness: regenerating %s: %w", gen.Scenario, err)
		}
		var b1, b2 bytes.Buffer
		if err := netlist.WriteVerilog(&b1, gen.Design); err != nil {
			return rep, err
		}
		if err := netlist.WriteVerilog(&b2, again.Design); err != nil {
			return rep, err
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			return rep, fmt.Errorf("harness: %s: regenerated netlist differs from the first generation", gen.Scenario)
		}
		rep.pass("netlist-determinism", fmt.Sprintf("%d bytes identical", b1.Len()))
	}

	cfg := flow.ScenarioConfig(gen.Scenario)
	cfg.SimCycles = opts.SimCycles
	cfg.RefinePasses = opts.RefinePasses
	cfg.Thermal.NX, cfg.Thermal.NY = opts.Grid, opts.Grid

	f := flow.New(gen.Design, gen.Workload, cfg)
	defer f.Close()
	base, err := f.AnalyzeBaseline()
	if err != nil {
		return rep, fmt.Errorf("harness: %s: baseline analysis: %w", gen.Scenario, err)
	}
	rep.PeakRise = base.PeakRise()
	rep.Hotspots = len(base.Hotspots)

	// Negative injection (testing the harness itself): corrupt the solver
	// output or the placement and let the checks below catch it.
	if opts.InjectThermalBiasC != 0 {
		for i, v := range base.Thermal.Surface.Values() {
			base.Thermal.Surface.Values()[i] = v + opts.InjectThermalBiasC
		}
	}
	if opts.CorruptPlacement {
		for _, inst := range gen.Design.Instances() {
			if inst.IsFiller() {
				continue
			}
			if l, ok := base.Placement.Loc(inst); ok {
				l.X += base.Placement.FP.SiteWidth / 3
				base.Placement.SetLoc(inst, l)
				break
			}
		}
	}

	// Property: the baseline placement satisfies every legality invariant
	// (in-core, row-aligned, site-aligned, non-overlapping, gap-free with
	// fillers).
	if errs := base.Placement.Validate(); len(errs) != 0 {
		return rep, fmt.Errorf("harness: %s: baseline placement invalid: %w (and %d more)",
			gen.Scenario, errs[0], len(errs)-1)
	}
	rep.pass("placement-invariants", fmt.Sprintf("%d cells legal", rep.Cells))

	// Property: a warm-started pooled solve equals a cold fresh-solver
	// solve on the same power map.
	cold, err := thermal.Solve(base.PowerMap, cfg.Thermal)
	if err != nil {
		return rep, fmt.Errorf("harness: %s: cold solve: %w", gen.Scenario, err)
	}
	if d := maxAbsDiff(base.Thermal.Surface, cold.Surface); d > opts.TolC {
		return rep, fmt.Errorf("harness: %s: warm vs cold solve differ by %.3g C (tol %.3g)", gen.Scenario, d, opts.TolC)
	} else {
		rep.pass("warm-vs-cold-solve", fmt.Sprintf("max |dT| = %.3g C", d))
	}

	// Property: the multigrid-preconditioned solve agrees with the Jacobi
	// fallback (same system, different preconditioner).
	jcfg := cfg.Thermal
	jcfg.Precond = thermal.PrecondJacobi
	jac, err := thermal.Solve(base.PowerMap, jcfg)
	if err != nil {
		return rep, fmt.Errorf("harness: %s: jacobi solve: %w", gen.Scenario, err)
	}
	if d := maxAbsDiff(base.Thermal.Surface, jac.Surface); d > opts.TolC {
		return rep, fmt.Errorf("harness: %s: MG vs Jacobi differ by %.3g C (tol %.3g)", gen.Scenario, d, opts.TolC)
	} else {
		rep.pass("mg-vs-jacobi", fmt.Sprintf("max |dT| = %.3g C", d))
	}

	// Property: the structured-grid fast path matches the SPICE-circuit
	// oracle on grids small enough to afford it.
	unknowns := cfg.Thermal.NX * cfg.Thermal.NY * len(cfg.Thermal.Stack)
	if unknowns > opts.OracleMaxUnknowns {
		rep.skipped("fastpath-vs-spice-oracle", fmt.Sprintf("%d unknowns > limit %d", unknowns, opts.OracleMaxUnknowns))
	} else {
		scfg := cfg.Thermal
		scfg.UseSpice = true
		oracle, err := thermal.Solve(base.PowerMap, scfg)
		if err != nil {
			return rep, fmt.Errorf("harness: %s: spice oracle: %w", gen.Scenario, err)
		}
		if d := maxAbsDiff(base.Thermal.Surface, oracle.Surface); d > opts.TolC {
			return rep, fmt.Errorf("harness: %s: fast path vs SPICE oracle differ by %.3g C (tol %.3g)", gen.Scenario, d, opts.TolC)
		} else {
			rep.pass("fastpath-vs-spice-oracle", fmt.Sprintf("max |dT| = %.3g C over %d unknowns", d, unknowns))
		}
	}

	if err := coAnalysisChecks(rep, gen, base, opts); err != nil {
		return rep, err
	}

	skipSweepChecks := func(why string) {
		rep.skipped("sweep-workers-equality", why)
		rep.skipped("sweep-incremental-equality", why)
		rep.skipped("sweep-adaptive-exactness", why)
	}
	if opts.SkipSweep {
		skipSweepChecks("disabled by options")
		return rep, nil
	}
	if len(base.Hotspots) == 0 {
		skipSweepChecks("baseline has no hotspots to optimize")
		return rep, nil
	}

	// Property: the concurrent sweep engine is bit-identical to the
	// sequential one — == on every float, not approximate equality — and a
	// fresh flow reproduces the first flow's baseline exactly.
	runSweep := func(workers int, keep, incremental bool) (*core.SweepResult, error) {
		g := flow.New(gen.Design, gen.Workload, cfg)
		defer g.Close()
		return core.SweepEfficiency(g, core.SweepOptions{
			Overheads:    opts.Overheads,
			Workers:      workers,
			KeepAnalyses: keep,
			Incremental:  incremental,
		})
	}
	seq, err := runSweep(1, true, false)
	if err != nil {
		if strings.Contains(err.Error(), "no detectable hotspots") {
			skipSweepChecks("sweep found no hotspots")
			return rep, nil
		}
		return rep, fmt.Errorf("harness: %s: sequential sweep: %w", gen.Scenario, err)
	}
	if seq.Baseline.PeakRise() != base.PeakRise() {
		return rep, fmt.Errorf("harness: %s: fresh flow baseline %v differs from first flow %v",
			gen.Scenario, seq.Baseline.PeakRise(), base.PeakRise())
	}
	rep.pass("fresh-flow-reproducibility", fmt.Sprintf("baseline peak rise %.6f C reproduced", base.PeakRise()))

	con, err := runSweep(opts.Workers, false, false)
	if err != nil {
		return rep, fmt.Errorf("harness: %s: concurrent sweep (workers=%d): %w", gen.Scenario, opts.Workers, err)
	}
	if err := compareSweeps(seq, con); err != nil {
		return rep, fmt.Errorf("harness: %s: workers=1 vs workers=%d: %w", gen.Scenario, opts.Workers, err)
	}
	rep.pass("sweep-workers-equality", fmt.Sprintf("%d points bit-identical at workers=%d", len(seq.Points), opts.Workers))

	// Property: the incremental analysis pipeline — Default points
	// reflowed from the cached baseline, power reports updated through
	// placement deltas — is bit-identical to the from-scratch sweep.
	inc, err := runSweep(opts.Workers, false, true)
	if err != nil {
		return rep, fmt.Errorf("harness: %s: incremental sweep: %w", gen.Scenario, err)
	}
	if err := compareSweeps(seq, inc); err != nil {
		return rep, fmt.Errorf("harness: %s: incremental vs from-scratch: %w", gen.Scenario, err)
	}
	rep.pass("sweep-incremental-equality", fmt.Sprintf("%d points bit-identical incrementally", len(inc.Points)))

	// Property: the adaptive multi-fidelity sweep is exact — every point it
	// returns is bit-identical (== on every float) to the exhaustive
	// (Margin=+Inf) run's measurement of the same candidate over the same
	// densified grid, and the exhaustive run's 2D Pareto front survives the
	// triage and is exactly the adaptive run's front.
	adOverheads := opts.Overheads
	if len(adOverheads) < 2 {
		// The adaptive grid needs an axis to densify; span one around the
		// single configured overhead.
		adOverheads = []float64{0.5 * adOverheads[0], 1.6 * adOverheads[0]}
	}
	runAdaptive := func(margin, bias float64) (*core.SweepResult, error) {
		g := flow.New(gen.Design, gen.Workload, cfg)
		defer g.Close()
		return core.SweepEfficiency(g, core.SweepOptions{
			Overheads:   adOverheads,
			Workers:     opts.Workers,
			Incremental: true,
			Adaptive: &core.AdaptiveOptions{
				GridScale:          2,
				Margin:             margin,
				CoarseFactor:       2,
				InjectEstRiseBiasC: bias,
			},
		})
	}
	exRef, err := runAdaptive(math.Inf(1), 0)
	if err != nil {
		return rep, fmt.Errorf("harness: %s: exhaustive adaptive reference: %w", gen.Scenario, err)
	}
	ad, err := runAdaptive(adaptiveHarnessMargin, opts.InjectAdaptiveBiasC)
	if err != nil {
		return rep, fmt.Errorf("harness: %s: adaptive sweep: %w", gen.Scenario, err)
	}
	if err := compareAdaptive(exRef, ad); err != nil {
		return rep, fmt.Errorf("harness: %s: adaptive vs exhaustive: %w", gen.Scenario, err)
	}
	ts := ad.Triage
	rep.pass("sweep-adaptive-exactness",
		fmt.Sprintf("%d/%d candidates triaged, %d-point front preserved, max est err %.3g C",
			ts.Candidates-ts.Survivors, ts.Candidates, len(exRef.Front2D()), ts.MaxEstErrC))

	// Property: every placement the sweep produced is legal.
	validated := 0
	for _, pt := range seq.Points {
		if pt.Placement == nil {
			continue
		}
		if errs := pt.Placement.Validate(); len(errs) != 0 {
			return rep, fmt.Errorf("harness: %s: %s point at overhead %.2f invalid: %w",
				gen.Scenario, pt.Strategy, pt.AreaOverhead, errs[0])
		}
		validated++
	}
	rep.pass("sweep-placement-invariants", fmt.Sprintf("%d swept placements legal", validated))
	return rep, nil
}

// coAnalysisChecks verifies the metamorphic properties of the thermal-aware
// timing and congestion co-analysis on the baseline:
//
//   - timing-temperature-monotonicity: uniformly heating the solved surface
//     can only slow the design, so the derated critical path is
//     non-decreasing in temperature;
//   - eri-congestion-hotspot: empty-row insertion spreads the hotspot cells
//     apart, so it must not increase the congestion overflow count in the
//     hotspot region (mapped through the vertical stretch);
//   - timing-incremental-equality: Analyzer.Update through the ERI delta is
//     bit-identical (== on every float) to a from-scratch analysis of the
//     same placement under the same options.
func coAnalysisChecks(rep *Report, gen *bench.Generated, base *flow.Analysis, opts Options) error {
	ta, err := timing.NewAnalyzer(gen.Design)
	if err != nil {
		return fmt.Errorf("harness: %s: timing analyzer: %w", gen.Scenario, err)
	}
	topts := timing.DefaultOptions()
	topts.TemperatureMap = base.Thermal.Surface
	prev := ta.Analyze(base.Placement, topts)

	// Property: derated critical path is monotone non-decreasing in
	// temperature.
	cp := prev.CriticalPathPs
	for _, bias := range []float64{15, 30} {
		hot := base.Thermal.Surface.Clone()
		for i, v := range hot.Values() {
			hot.Values()[i] = v + bias
		}
		hopts := topts
		hopts.TemperatureMap = hot
		hr := ta.Analyze(base.Placement, hopts)
		if hr.CriticalPathPs < cp {
			return fmt.Errorf("harness: %s: derated critical path fell from %.6f ps to %.6f ps under +%g C",
				gen.Scenario, cp, hr.CriticalPathPs, bias)
		}
		cp = hr.CriticalPathPs
	}
	rep.pass("timing-temperature-monotonicity",
		fmt.Sprintf("critical path %.1f ps grows to %.1f ps at +30 C", prev.CriticalPathPs, cp))

	if len(base.Hotspots) == 0 {
		rep.skipped("eri-congestion-hotspot", "baseline has no hotspots")
		rep.skipped("timing-incremental-equality", "baseline has no hotspots")
		return nil
	}
	const eriRows = 4
	eriP, eriDelta, err := core.EmptyRowInsertionDelta(base.Placement, base.Hotspots, core.DefaultERIOptions(eriRows))
	if err != nil {
		return fmt.Errorf("harness: %s: eri for co-analysis checks: %w", gen.Scenario, err)
	}

	// Property: ERI must not increase the overflow count in the hotspot
	// region. The region is mapped through the vertical stretch: cells that
	// started inside it end no higher than the inserted height above it.
	region := hotspot.MergedRect(base.Hotspots)
	mapped := region
	mapped.Yhi += float64(eriRows) * base.Placement.FP.RowHeight
	baseCong := congestion.Estimate(base.Placement, congestion.Options{})
	eriCong := congestion.Estimate(eriP, congestion.Options{})
	before, after := baseCong.RegionOverflows(region), eriCong.RegionOverflows(mapped)
	if after > before {
		return fmt.Errorf("harness: %s: ERI raised hotspot-region overflow bins from %d to %d",
			gen.Scenario, before, after)
	}
	rep.pass("eri-congestion-hotspot", fmt.Sprintf("hotspot overflow bins %d -> %d", before, after))

	// Negative injection (testing the harness itself): one extra move the
	// delta never recorded — the equality check below must catch it.
	if opts.CorruptTimingDelta {
		if err := corruptDelta(gen.Design, eriP, eriDelta, prev); err != nil {
			return fmt.Errorf("harness: %s: %w", gen.Scenario, err)
		}
	}

	// Property: the incremental update through the ERI delta is
	// bit-identical to analyzing the stretched placement from scratch.
	full := ta.Analyze(eriP, topts)
	inc := ta.Update(prev, eriP, eriDelta, topts)
	if err := timingReportsEqual(full, inc); err != nil {
		return fmt.Errorf("harness: %s: timing incremental vs from-scratch: %w", gen.Scenario, err)
	}
	rep.pass("timing-incremental-equality",
		fmt.Sprintf("%d arrivals bit-identical through %d dirty nets", len(full.ArrivalPs), len(eriDelta.DirtyNets())))
	return nil
}

// corruptDelta moves one cell the delta does not cover: a non-filler driver
// of a reached, fan-out net none of whose ordinals are in the delta's dirty
// set, displaced by half the core width.
func corruptDelta(d *netlist.Design, p *place.Placement, delta *place.Delta, prev *timing.Report) error {
	dirty := map[int32]bool{}
	for _, o := range delta.DirtyNets() {
		dirty[o] = true
	}
	for _, n := range d.Nets() {
		if dirty[int32(n.Ord())] || n.Driver.Inst == nil || n.Driver.Inst.IsFiller() ||
			len(n.Loads) == 0 || prev.ArrivalPs[n.Name] <= 0 {
			continue
		}
		inst := n.Driver.Inst
		clean := true
		for _, cn := range inst.Conns() {
			if cn != nil && dirty[int32(cn.Ord())] {
				clean = false
				break
			}
		}
		if !clean {
			continue
		}
		l, ok := p.Loc(inst)
		if !ok {
			continue
		}
		if l.X > p.FP.Core.Center().X {
			l.X -= p.FP.Core.W() / 2
		} else {
			l.X += p.FP.Core.W() / 2
		}
		p.SetLoc(inst, l)
		return nil
	}
	return fmt.Errorf("corrupt timing delta: no movable cell outside the delta's dirty cone")
}

// timingReportsEqual requires exactly identical timing reports: == on every
// float, every arrival entry, every critical-path step.
func timingReportsEqual(full, inc *timing.Report) error {
	if full.CriticalPathPs != inc.CriticalPathPs || full.SlackPs != inc.SlackPs ||
		full.MaxFrequencyGHz != inc.MaxFrequencyGHz || full.Endpoints != inc.Endpoints {
		return fmt.Errorf("summary differs: full {cp %v slack %v fmax %v ep %d} vs inc {cp %v slack %v fmax %v ep %d}",
			full.CriticalPathPs, full.SlackPs, full.MaxFrequencyGHz, full.Endpoints,
			inc.CriticalPathPs, inc.SlackPs, inc.MaxFrequencyGHz, inc.Endpoints)
	}
	if len(full.ArrivalPs) != len(inc.ArrivalPs) {
		return fmt.Errorf("arrival count differs: %d vs %d", len(full.ArrivalPs), len(inc.ArrivalPs))
	}
	for name, at := range full.ArrivalPs {
		if iat, ok := inc.ArrivalPs[name]; !ok || iat != at {
			return fmt.Errorf("arrival at %q differs: %v vs %v", name, at, iat)
		}
	}
	if len(full.CriticalPath) != len(inc.CriticalPath) {
		return fmt.Errorf("critical path length differs: %d vs %d", len(full.CriticalPath), len(inc.CriticalPath))
	}
	for i, s := range full.CriticalPath {
		c := inc.CriticalPath[i]
		if s.Inst != c.Inst || s.Net != c.Net || s.DelayPs != c.DelayPs || s.ArrivalPs != c.ArrivalPs {
			return fmt.Errorf("critical path step %d differs", i)
		}
	}
	return nil
}

// adaptiveHarnessMargin is the triage margin the harness drives the
// adaptive sweep with. The harness scenarios run on deliberately tiny
// thermal grids, where the downsampled estimates carry residual errors up
// to ~30% of the rise range, so the margin is set generously above the
// worst observed differential error (front losses appeared at 0.10 and
// below across the scenario families): what the harness pins is the
// exactness contract — points bit-identical to the exhaustive run, front
// preserved — not triage aggressiveness, which the paper-scale benchmark
// exercises on grids fine enough for tight margins.
const adaptiveHarnessMargin = 0.25

// compareAdaptive requires the adaptive sweep to be a subset of the
// exhaustive run's exact measurements (bit-identical, == on floats) with an
// identical 2D Pareto front.
func compareAdaptive(ex, ad *core.SweepResult) error {
	type key struct {
		strategy core.Strategy
		rows     int
		aspect   float64
		util     float64
	}
	kf := func(p *core.EfficiencyPoint) key {
		return key{p.Strategy, p.Rows, p.Aspect, p.Utilization}
	}
	exact := make(map[key]core.EfficiencyPoint, len(ex.Points))
	for _, p := range ex.Points {
		exact[kf(&p)] = p
	}
	for i := range ad.Points {
		p := ad.Points[i]
		ref, ok := exact[kf(&p)]
		if !ok {
			return fmt.Errorf("adaptive point %+v has no exhaustive counterpart", p)
		}
		if p != ref {
			return fmt.Errorf("adaptive point is not the exact measurement:\n  adaptive:   %+v\n  exhaustive: %+v", p, ref)
		}
	}
	exFront := map[key]bool{}
	for _, i := range ex.Front2D() {
		exFront[kf(&ex.Points[i])] = true
	}
	adFront := map[key]bool{}
	for _, i := range ad.Front2D() {
		adFront[kf(&ad.Points[i])] = true
	}
	for k := range exFront {
		if !adFront[k] {
			return fmt.Errorf("true front point %+v was triaged away", k)
		}
	}
	for k := range adFront {
		if !exFront[k] {
			return fmt.Errorf("adaptive front point %+v is not on the true front", k)
		}
	}
	return nil
}

// compareSweeps requires exactly identical sweep output: same point
// identities in the same order and bit-identical floats.
func compareSweeps(seq, con *core.SweepResult) error {
	if seq.Baseline.PeakRise() != con.Baseline.PeakRise() {
		return fmt.Errorf("baseline peak rise differs: %v vs %v", seq.Baseline.PeakRise(), con.Baseline.PeakRise())
	}
	if len(seq.Points) != len(con.Points) {
		return fmt.Errorf("point count differs: %d vs %d", len(seq.Points), len(con.Points))
	}
	for i := range seq.Points {
		s, c := seq.Points[i], con.Points[i]
		if s.Strategy != c.Strategy || s.Rows != c.Rows {
			return fmt.Errorf("point %d identity differs: %s/%d vs %s/%d", i, s.Strategy, s.Rows, c.Strategy, c.Rows)
		}
		if s.PeakRise != c.PeakRise || s.TempReduction != c.TempReduction ||
			s.AreaOverhead != c.AreaOverhead || s.Utilization != c.Utilization {
			return fmt.Errorf("point %d (%s) differs:\n  seq %+v\n  con %+v", i, s.Strategy, s, c)
		}
		if s.CriticalPathPs != c.CriticalPathPs || s.WorstSlackPs != c.WorstSlackPs ||
			s.HPWL != c.HPWL || s.CongestionOverflows != c.CongestionOverflows ||
			s.CongestionMaxUtil != c.CongestionMaxUtil {
			return fmt.Errorf("point %d (%s) co-analysis metrics differ:\n  seq %+v\n  con %+v", i, s.Strategy, s, c)
		}
	}
	return nil
}

// maxAbsDiff returns the largest absolute element difference between two
// equally-sized grids.
func maxAbsDiff(a, b *geom.Grid) float64 {
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range av {
		if x := math.Abs(av[i] - bv[i]); x > d {
			d = x
		}
	}
	return d
}
