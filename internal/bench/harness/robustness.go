package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/core"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
)

// RobustnessOptions tunes the fault-injection suite for one scenario.
type RobustnessOptions struct {
	// Grid is the square thermal-grid resolution (NX = NY). Zero means 20.
	Grid int
	// SimCycles is the random-vector simulation depth. Zero means 48.
	SimCycles int
	// Overheads are the sweep area-overhead points. Nil means {0.25}.
	Overheads []float64
	// Workers is the concurrent sweep width. Zero means 4.
	Workers int
	// TolC bounds how far a gracefully degraded solve (Jacobi fallback) may
	// drift from the clean multigrid solve, in degrees Celsius. Zero means
	// 1e-6.
	TolC float64
	// CancelLatency bounds how long a mid-sweep cancellation may take to
	// surface, from the context firing to the sweep returning. Zero means
	// 100ms.
	CancelLatency time.Duration
	// Incremental runs the cancellation sweeps on the incremental
	// (delta-driven) pipeline, the configuration the paper-scale reproduction
	// uses.
	Incremental bool
}

func (o RobustnessOptions) normalized() RobustnessOptions {
	if o.Grid == 0 {
		o.Grid = 20
	}
	if o.SimCycles == 0 {
		o.SimCycles = 48
	}
	if len(o.Overheads) == 0 {
		o.Overheads = []float64{0.25}
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.TolC == 0 {
		o.TolC = 1e-6
	}
	if o.CancelLatency == 0 {
		o.CancelLatency = 100 * time.Millisecond
	}
	return o
}

// RunRobustness drives one scenario through the fault-injection suite: every
// failure mode the pipeline claims to tolerate is injected deterministically
// and the documented reaction — typed error, graceful degradation, contained
// panic, prompt cancellation, zero goroutine leakage — is verified. Like
// Run, it returns a report of the checks performed; the first violated
// property aborts with a descriptive error.
func RunRobustness(sc bench.Scenario, opts RobustnessOptions) (*Report, error) {
	opts = opts.normalized()
	gen, err := sc.Generate(celllib.Default65nm())
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scenario: gen.Scenario,
		Cells:    gen.Design.NumInstances(),
		Units:    len(gen.Config.Units),
	}

	mkFlow := func(inject *fault.Injector) *flow.Flow {
		cfg := flow.ScenarioConfig(gen.Scenario)
		cfg.SimCycles = opts.SimCycles
		cfg.RefinePasses = 0
		cfg.Thermal.NX, cfg.Thermal.NY = opts.Grid, opts.Grid
		cfg.Thermal.Inject = inject
		return flow.New(gen.Design, gen.Workload, cfg)
	}
	sweepOpts := core.SweepOptions{
		Overheads:   opts.Overheads,
		Workers:     opts.Workers,
		Incremental: opts.Incremental,
	}

	baseGoroutines := runtime.NumGoroutine()

	// Clean reference: the baseline analysis every degraded run is compared
	// against, and the reference sweep for the context bit-identity check.
	clean := mkFlow(nil)
	cleanBase, err := clean.AnalyzeBaseline()
	if err != nil {
		clean.Close()
		return rep, fmt.Errorf("harness: %s: clean baseline: %w", gen.Scenario, err)
	}
	hasHotspots := len(cleanBase.Hotspots) > 0
	rep.PeakRise = cleanBase.PeakRise()
	rep.Hotspots = len(cleanBase.Hotspots)

	// Property: a context that never fires changes nothing — the Ctx sweep
	// is bit-identical (== on every float) to the context-free one.
	if !hasHotspots {
		rep.skipped("sweep-ctx-bit-identity", "baseline has no hotspots to sweep")
	} else {
		ref, err := core.SweepEfficiency(clean, sweepOpts)
		if err != nil {
			clean.Close()
			return rep, fmt.Errorf("harness: %s: reference sweep: %w", gen.Scenario, err)
		}
		g := mkFlow(nil)
		liveCtx, liveCancel := context.WithCancel(context.Background())
		ctxRes, err := core.SweepEfficiencyCtx(liveCtx, g, sweepOpts)
		liveCancel()
		g.Close()
		if err != nil {
			clean.Close()
			return rep, fmt.Errorf("harness: %s: ctx sweep: %w", gen.Scenario, err)
		}
		if err := compareSweeps(ref, ctxRes); err != nil {
			clean.Close()
			return rep, fmt.Errorf("harness: %s: ctx sweep vs plain sweep: %w", gen.Scenario, err)
		}
		rep.pass("sweep-ctx-bit-identity", fmt.Sprintf("%d points bit-identical under a live context", len(ref.Points)))
	}

	// Property: a mid-sweep cancellation surfaces as a typed error within
	// the latency bound, even when the canceled solve is stalled (injected
	// hang — the worst case a flaky environment can produce).
	if !hasHotspots {
		rep.skipped("sweep-cancel-latency", "baseline has no hotspots to sweep")
	} else {
		// Solve 1 is the baseline; stalling solve 2 parks the first sweep
		// point until the context fires.
		f := mkFlow(&fault.Injector{StallCGSolveN: 2})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, serr := core.SweepEfficiencyCtx(ctx, f, sweepOpts)
			done <- serr
		}()
		// Let the sweep reach the stalled solve; whether it has or not, the
		// cancel below must surface within the bound.
		time.Sleep(50 * time.Millisecond)
		tCancel := time.Now()
		cancel()
		serr := <-done
		latency := time.Since(tCancel)
		f.Close()
		if !errors.Is(serr, fault.ErrCanceled) {
			return rep, fmt.Errorf("harness: %s: canceled sweep returned %w, want fault.ErrCanceled", gen.Scenario, serr)
		}
		if latency > opts.CancelLatency {
			return rep, fmt.Errorf("harness: %s: cancellation took %v (bound %v)", gen.Scenario, latency, opts.CancelLatency)
		}
		if f.FaultStats().Canceled == 0 {
			return rep, fmt.Errorf("harness: %s: cancellation not recorded in FaultStats", gen.Scenario)
		}
		rep.pass("sweep-cancel-latency", fmt.Sprintf("stalled solve canceled in %v (bound %v)", latency, opts.CancelLatency))
	}

	// Property: a multigrid setup failure degrades to the Jacobi fallback —
	// the analysis completes, within TolC of the clean result, and the
	// degradation is visible in the flow's fault stats.
	{
		f := mkFlow(&fault.Injector{FailMGSetup: true})
		an, err := f.AnalyzeBaseline()
		if err != nil {
			f.Close()
			return rep, fmt.Errorf("harness: %s: MG-setup-failure analysis did not degrade: %w", gen.Scenario, err)
		}
		d := maxAbsDiff(an.Thermal.Surface, cleanBase.Thermal.Surface)
		stats := f.FaultStats()
		f.Close()
		if stats.MGSetupFailures == 0 {
			return rep, fmt.Errorf("harness: %s: MG setup failure not recorded in FaultStats", gen.Scenario)
		}
		if d > opts.TolC {
			return rep, fmt.Errorf("harness: %s: MG-degraded solve differs from clean by %.3g C (tol %.3g)", gen.Scenario, d, opts.TolC)
		}
		rep.pass("mg-setup-degradation", fmt.Sprintf("Jacobi fallback within %.3g C, %d failures recorded", d, stats.MGSetupFailures))
	}

	// Property: a non-converging multigrid-preconditioned solve is retried
	// once on Jacobi and completes within TolC of the clean result.
	{
		f := mkFlow(&fault.Injector{FailCGSolveN: 1})
		an, err := f.AnalyzeBaseline()
		if err != nil {
			f.Close()
			return rep, fmt.Errorf("harness: %s: non-convergence was not retried: %w", gen.Scenario, err)
		}
		d := maxAbsDiff(an.Thermal.Surface, cleanBase.Thermal.Surface)
		stats := f.FaultStats()
		f.Close()
		if stats.SolveRetries == 0 {
			return rep, fmt.Errorf("harness: %s: solve retry not recorded in FaultStats", gen.Scenario)
		}
		if d > opts.TolC {
			return rep, fmt.Errorf("harness: %s: retried solve differs from clean by %.3g C (tol %.3g)", gen.Scenario, d, opts.TolC)
		}
		rep.pass("nonconvergence-retry", fmt.Sprintf("Jacobi retry within %.3g C, %d retries recorded", d, stats.SolveRetries))
	}

	// Property: when the retry fails too, the caller gets the typed
	// *fault.ErrNotConverged — extractable through every wrapping layer —
	// not a silent bad result.
	{
		f := mkFlow(&fault.Injector{FailCGSolveN: 1, FailRetry: true})
		_, err := f.AnalyzeBaseline()
		f.Close()
		var nc *fault.ErrNotConverged
		if err == nil || !errors.As(err, &nc) {
			return rep, fmt.Errorf("harness: %s: doubly-failed solve did not surface ErrNotConverged: %w", gen.Scenario, err)
		}
		rep.pass("nonconvergence-surfaced", fmt.Sprintf("typed error after %d iterations", nc.Iters))
	}

	// Property: a panic inside a worker task surfaces as a located typed
	// error, not a crash, and the flow keeps working afterwards.
	{
		f := mkFlow(&fault.Injector{PanicCGSolveN: 1})
		_, err := f.AnalyzeBaseline()
		var pe *fault.ErrPanic
		if err == nil || !errors.As(err, &pe) {
			f.Close()
			return rep, fmt.Errorf("harness: %s: injected panic not contained: %w", gen.Scenario, err)
		}
		if pe.Where == "" {
			f.Close()
			return rep, fmt.Errorf("harness: %s: contained panic lost its location", gen.Scenario)
		}
		if _, err := f.AnalyzeBaseline(); err != nil {
			f.Close()
			return rep, fmt.Errorf("harness: %s: flow broken after contained panic: %w", gen.Scenario, err)
		}
		f.Close()
		rep.pass("panic-containment", fmt.Sprintf("panic located at %q, flow usable after", pe.Where))
	}

	// Property: a corrupted power profile is rejected before the thermal
	// solve, as a typed setup error naming the stage.
	{
		f := mkFlow(&fault.Injector{CorruptPowerW: math.NaN()})
		_, err := f.AnalyzeBaseline()
		f.Close()
		var se *fault.ErrSetup
		if err == nil || !errors.As(err, &se) || se.Stage != "power-map" {
			return rep, fmt.Errorf("harness: %s: corrupted power map not detected: %w", gen.Scenario, err)
		}
		rep.pass("corrupt-power-detected", fmt.Sprintf("rejected at stage %q", se.Stage))
	}

	clean.Close()

	// Property: after every injected failure, cancellation and Close above,
	// the goroutine count settles back to where it started — nothing leaked.
	if err := waitGoroutines(baseGoroutines, 5*time.Second); err != nil {
		return rep, fmt.Errorf("harness: %s: %w", gen.Scenario, err)
	}
	rep.pass("zero-goroutine-leak", fmt.Sprintf("settled at baseline %d goroutines", baseGoroutines))
	return rep, nil
}

// waitGoroutines polls until the goroutine count returns to base or the
// timeout expires.
func waitGoroutines(base int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutines leaked: %d running, %d at baseline", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
