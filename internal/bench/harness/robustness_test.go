package harness

import (
	"fmt"
	"testing"

	"thermplace/internal/bench"
)

// TestScenarioFamiliesRobustness is the fault-injection acceptance test:
// every scenario family runs the robustness suite — deterministic
// injections of multigrid setup failure, CG non-convergence, worker panics,
// stalled solves and corrupted power maps — and must exhibit the documented
// reactions: graceful degradation within tolerance, typed extractable
// errors, prompt cancellation and zero goroutine leakage.
func TestScenarioFamiliesRobustness(t *testing.T) {
	families := bench.Families()
	if testing.Short() {
		families = families[:1]
	}
	for _, fam := range families {
		fam := fam
		t.Run(fmt.Sprintf("%s/cells=1500", fam), func(t *testing.T) {
			rep, err := RunRobustness(bench.Scenario{Family: fam, Seed: 7, TargetCells: 1500},
				RobustnessOptions{Incremental: true})
			if err != nil {
				t.Fatal(err)
			}
			// The injection checks never skip; only the two sweep-level
			// checks may (hotspot-free baselines).
			if rep.Passed() < 7 {
				t.Errorf("only %d robustness properties verified: %+v", rep.Passed(), rep.Checks)
			}
			for _, c := range rep.Checks {
				t.Logf("%-28s %s%s", c.Name, c.Detail, skipMark(c))
			}
		})
	}
}

// TestRobustnessRejectsBadScenario propagates generator validation errors.
func TestRobustnessRejectsBadScenario(t *testing.T) {
	if _, err := RunRobustness(bench.Scenario{Family: "no-such-family"}, RobustnessOptions{}); err == nil {
		t.Fatal("unknown family must fail")
	}
}
