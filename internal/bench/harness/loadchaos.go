package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/serve"
)

// LoadChaosOptions tunes the query-server load/chaos suite.
type LoadChaosOptions struct {
	// Families are the scenario families loaded as resident designs. Nil
	// means {paper-synth9, hotspot-cluster}.
	Families []bench.Family
	// Seed is the scenario generation seed. Zero means 7.
	Seed int64
	// Cells is the approximate cell count per design. Zero means 800.
	Cells int
	// Grid is the square thermal-grid resolution. Zero means 16.
	Grid int
	// SimCycles is the random-vector simulation depth. Zero means 32.
	SimCycles int
	// Clients is the number of concurrent clients per design. Zero means 4.
	Clients int
	// MaxInFlight / MaxQueue are the per-design admission bounds. Zeros
	// mean 2 / 2 — deliberately tight, so the storm actually sheds.
	MaxInFlight int
	MaxQueue    int
	// CacheBytes is the per-design solved-state budget. Zero means 512 KiB —
	// room for about two solved analyses now that each carries its timing
	// and congestion reports, so the query set still forces evictions.
	CacheBytes int64
	// DeadlineMS is the per-query deadline the clients send. Zero means 1500.
	DeadlineMS int
	// DrainTimeout bounds the graceful drain before stragglers are canceled.
	// Zero means 400ms.
	DrainTimeout time.Duration
}

func (o LoadChaosOptions) normalized() LoadChaosOptions {
	if len(o.Families) == 0 {
		o.Families = []bench.Family{bench.FamilyPaperSynth9, bench.FamilyHotspotCluster}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Cells == 0 {
		o.Cells = 800
	}
	if o.Grid == 0 {
		o.Grid = 16
	}
	if o.SimCycles == 0 {
		o.SimCycles = 32
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 2
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 2
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 512 << 10
	}
	if o.DeadlineMS == 0 {
		o.DeadlineMS = 1500
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 400 * time.Millisecond
	}
	return o
}

// chaosQuery is one entry of the per-design query set the clients hammer.
type chaosQuery struct {
	path   string // endpoint, e.g. "/analyze"
	params string // canonical parameters, e.g. "util=0.7"
	query  serve.Query
}

// chaosTally accumulates client-side observations under a lock.
type chaosTally struct {
	mu         sync.Mutex
	completed  int // 200s
	cacheHits  int
	shed       map[string]int // 503 categories
	deadlines  int            // 504s
	faulted    map[string]int // 500 categories
	unexpected []string
	mismatches []string
}

func (t *chaosTally) unexpectedf(format string, a ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.unexpected) < 8 {
		t.unexpected = append(t.unexpected, fmt.Sprintf(format, a...))
	}
}

func (t *chaosTally) mismatchf(format string, a ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.mismatches) < 8 {
		t.mismatches = append(t.mismatches, fmt.Sprintf(format, a...))
	}
}

// RunLoadChaos drives the query server the way a hostile production day
// would: for every design, N concurrent clients hammer a mixed query set
// through tight admission bounds while deterministic faults are injected
// (stalled analyses, shed admissions, a non-converging solve), a laggard
// client asks for impossible deadlines, a client disconnects mid-flight, and
// finally a drain begins while stalled queries are still parked in-flight.
//
// It verifies the service contracts end to end:
//
//   - every completed (200) response is bit-identical — == on every float —
//     to a direct serve.Exec / flow.AnalyzeCtx on a fresh reference flow;
//   - every non-200 carries a recognized fault category, and shed queries
//     never started (admission counters stay consistent);
//   - the solved-state cache stays inside its byte budget and evicts under
//     pressure rather than growing;
//   - after BeginDrain no query is admitted, stragglers are canceled within
//     the drain timeout, and the goroutine count settles back to baseline.
func RunLoadChaos(opts LoadChaosOptions) (*Report, error) {
	opts = opts.normalized()
	lib := celllib.Default65nm()
	baseGoroutines := runtime.NumGoroutine()

	srv := serve.NewServer(serve.Config{
		MaxInFlight: opts.MaxInFlight,
		MaxQueue:    opts.MaxQueue,
		CacheBytes:  opts.CacheBytes,
	})

	type residentDesign struct {
		name   string
		gen    *bench.Generated
		fcfg   flow.Config
		inject *fault.Injector
		ref    *flow.Flow // clean reference for bit-identity
	}
	var designs []*residentDesign
	closeAll := func() {
		srv.Close()
		for _, d := range designs {
			d.ref.Close()
		}
	}

	rep := &Report{}
	for i, fam := range opts.Families {
		sc := bench.Scenario{Family: fam, Seed: opts.Seed, TargetCells: opts.Cells}
		gen, err := sc.Generate(lib)
		if err != nil {
			closeAll()
			return rep, fmt.Errorf("harness: generating %s: %w", fam, err)
		}
		if i == 0 {
			rep.Scenario = gen.Scenario
			rep.Cells = gen.Design.NumInstances()
			rep.Units = len(gen.Config.Units)
		}
		fcfg := flow.ScenarioConfig(gen.Scenario)
		fcfg.SimCycles = opts.SimCycles
		fcfg.RefinePasses = 0
		fcfg.Thermal.NX, fcfg.Thermal.NY = opts.Grid, opts.Grid
		d := &residentDesign{
			name:   string(fam),
			gen:    gen,
			fcfg:   fcfg,
			inject: &fault.Injector{}, // wired now, armed after warm-up
			ref:    flow.New(gen.Design, gen.Workload, fcfg),
		}
		if err := srv.AddDesign(context.Background(), d.name, gen.Design, gen.Workload, fcfg, d.inject); err != nil {
			closeAll()
			return rep, fmt.Errorf("harness: loading %s: %w", fam, err)
		}
		designs = append(designs, d)
	}

	// The per-design query set: mixed kinds, including the baseline
	// fast path and a small sweep.
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	querySet := func(d *residentDesign) []chaosQuery {
		baseUtil := d.fcfg.Utilization
		return []chaosQuery{
			{"/analyze", "util=" + ff(baseUtil), serve.Query{Kind: serve.KindAnalyze, Utilization: baseUtil}},
			{"/analyze", "util=0.7", serve.Query{Kind: serve.KindAnalyze, Utilization: 0.7}},
			{"/analyze", "util=0.78", serve.Query{Kind: serve.KindAnalyze, Utilization: 0.78}},
			{"/delta", "strategy=eri&rows=2", serve.Query{Kind: serve.KindERI, Rows: 2}},
			{"/delta", "strategy=hw&overhead=0.25", serve.Query{Kind: serve.KindHW, Overhead: 0.25}},
			{"/sweep", "overheads=0.3", serve.Query{Kind: serve.KindSweep, Overheads: []float64{0.3}}},
		}
	}

	// Reference results, computed directly on the clean flows: the values
	// every completed server response must match bit-for-bit. Queries whose
	// reference itself fails (e.g. HW with no hotspots) are dropped from the
	// set — the server would report the same typed failure.
	expected := map[string]*serve.Result{} // design + path + params
	var queries = map[string][]chaosQuery{}
	for _, d := range designs {
		for _, cq := range querySet(d) {
			want, _, err := serve.Exec(context.Background(), d.ref, cq.query)
			if err != nil {
				continue
			}
			queries[d.name] = append(queries[d.name], cq)
			expected[d.name+cq.path+"?"+cq.params] = want
		}
		if len(queries[d.name]) < 4 {
			closeAll()
			return rep, fmt.Errorf("harness: %s: only %d of %d reference queries computable", d.name, len(queries[d.name]), len(querySet(d)))
		}
	}
	rep.pass("reference-queries", fmt.Sprintf("%d designs x %d query kinds solved directly", len(designs), len(queries[designs[0].name])))

	// Cross-check the execution path itself: serve.Exec's analyze result
	// must equal a direct flow.ReflowAt + AnalyzeCtx — the plain pipeline a
	// non-server caller would run.
	{
		d := designs[0]
		key := d.name + "/analyze?util=0.7"
		p, _, err := d.ref.ReflowAt(0.7)
		if err != nil {
			closeAll()
			return rep, fmt.Errorf("harness: %s: direct reflow: %w", d.name, err)
		}
		an, err := d.ref.AnalyzeCtx(context.Background(), p)
		if err != nil {
			closeAll()
			return rep, fmt.Errorf("harness: %s: direct AnalyzeCtx: %w", d.name, err)
		}
		if want := expected[key]; want == nil || an.Thermal.PeakRise != want.PeakRiseK || an.Power.Total() != want.TotalPowerW {
			closeAll()
			return rep, fmt.Errorf("harness: %s: serve.Exec differs from direct AnalyzeCtx: rise %v vs %v",
				d.name, want.PeakRiseK, an.Thermal.PeakRise)
		}
		rep.pass("exec-vs-direct-analyzectx", fmt.Sprintf("peak rise %.6f K bit-identical", an.Thermal.PeakRise))
	}

	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	tally := &chaosTally{shed: map[string]int{}, faulted: map[string]int{}}

	// Arm the chaos. The injector pointers were wired before warm-up (which
	// consumed analysis ordinal 1 and solve ordinal 1); arming happens
	// strictly before the client goroutines start, so the happens-before edge
	// is the spawn. Design 0: the next two analyses (prefix ordinals 2..3)
	// stall until their deadline cancels them — two, because the mid-flight
	// disconnect client can consume at most one of them invisibly. Design 1:
	// the first three admissions are shed, and solve ordinal 3 (the second
	// post-warm-up solve) fails CG and its Jacobi retry, surfacing a typed
	// not-converged failure. The misbehaving clients below are confined to
	// design 0 so that ordinal is always drawn by a client with a generous
	// deadline: the failure must reach a tallied response, not vanish into a
	// canceled solve or a tolerated transport error.
	designs[0].inject.StallAnalyzeN = 3
	if len(designs) > 1 {
		designs[1].inject.FailAdmitN = 3
		designs[1].inject.FailCGSolveN = 3
		designs[1].inject.FailRetry = true
	}

	do := func(d *residentDesign, cq chaosQuery, deadlineMS int) int {
		url := ts.URL + cq.path + "?design=" + d.name + "&" + cq.params + "&deadline_ms=" + strconv.Itoa(deadlineMS)
		resp, err := client.Get(url)
		if err != nil {
			tally.unexpectedf("%s: transport error: %v", url, err)
			return 0
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var res serve.Result
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				tally.unexpectedf("%s: bad 200 body: %v", url, err)
				return resp.StatusCode
			}
			if res.Degraded {
				// No breaker trips are injected (one not-converged failure is
				// below the trip threshold): nothing may be served degraded.
				tally.unexpectedf("%s: unexpected degraded response", url)
				return resp.StatusCode
			}
			want := expected[d.name+cq.path+"?"+cq.params]
			if want == nil {
				tally.unexpectedf("%s: no reference for completed query", url)
				return resp.StatusCode
			}
			if res.PeakRiseK != want.PeakRiseK || res.TempReduction != want.TempReduction ||
				res.TotalPowerW != want.TotalPowerW || res.AreaOverhead != want.AreaOverhead ||
				res.Utilization != want.Utilization || len(res.Points) != len(want.Points) {
				tally.mismatchf("%s: served %+v, reference %+v", url, res, want)
				return resp.StatusCode
			}
			for i := range want.Points {
				if res.Points[i] != want.Points[i] {
					tally.mismatchf("%s: sweep point %d: served %+v, reference %+v", url, i, res.Points[i], want.Points[i])
					return resp.StatusCode
				}
			}
			tally.mu.Lock()
			tally.completed++
			if res.Cached {
				tally.cacheHits++
			}
			tally.mu.Unlock()
		default:
			var eb struct {
				Category string `json:"category"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Category == "" {
				tally.unexpectedf("%s: status %d without a fault category", url, resp.StatusCode)
				return resp.StatusCode
			}
			tally.mu.Lock()
			switch resp.StatusCode {
			case http.StatusServiceUnavailable:
				tally.shed[eb.Category]++
			case http.StatusGatewayTimeout:
				tally.deadlines++
			case http.StatusInternalServerError:
				tally.faulted[eb.Category]++
			default:
				if len(tally.unexpected) < 8 {
					tally.unexpected = append(tally.unexpected, fmt.Sprintf("%s: unexpected status %d (%s)", url, resp.StatusCode, eb.Category))
				}
			}
			tally.mu.Unlock()
		}
		return resp.StatusCode
	}

	// Phase 1 — the storm: N clients per design, each walking the query set
	// from a different offset. Design 0 additionally gets a laggard client
	// demanding a 1ms deadline and one client that disconnects mid-flight
	// (the misbehavior stays off design 1 — see the arming comment above).
	var wg sync.WaitGroup
	for _, d := range designs {
		qs := queries[d.name]
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func(d *residentDesign, offset int) {
				defer wg.Done()
				for k := 0; k < len(qs); k++ {
					do(d, qs[(offset+k)%len(qs)], opts.DeadlineMS)
				}
			}(d, c)
		}
	}
	wg.Add(1)
	go func(d *residentDesign) { // laggard: every deadline already hopeless
		defer wg.Done()
		qs := queries[d.name]
		for k := 0; k < 3; k++ {
			do(d, qs[k%len(qs)], 1)
		}
	}(designs[0])
	wg.Add(1)
	go func(d *residentDesign) { // disconnects mid-flight
		defer wg.Done()
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(cctx, http.MethodGet,
			ts.URL+"/analyze?design="+d.name+"&util=0.74", nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	}(designs[0])
	wg.Wait()

	// Phase 2 — sequential settle pass: the full-coverage bit-identity check.
	// Contention is over, but a leftover injected fault can still land here
	// (the doubly-failed solve draws whichever query reaches that solve
	// ordinal), so each query gets a bounded number of attempts: the probes
	// are finite prefixes, so a retry must reach a clean 200.
	for _, d := range designs {
		for _, cq := range queries[d.name] {
			ok := false
			for attempt := 0; attempt < 3 && !ok; attempt++ {
				ok = do(d, cq, 10_000) == http.StatusOK
			}
			if !ok {
				closeAll()
				return rep, fmt.Errorf("harness: settle: %s%s?%s failed 3 attempts; unexpected=%v mismatches=%v",
					d.name, cq.path, cq.params, tally.unexpected, tally.mismatches)
			}
		}
	}
	if len(tally.mismatches) > 0 {
		closeAll()
		return rep, fmt.Errorf("harness: served responses diverged from direct execution: %v", tally.mismatches)
	}
	if len(tally.unexpected) > 0 {
		closeAll()
		return rep, fmt.Errorf("harness: unexpected client observations: %v", tally.unexpected)
	}
	rep.pass("storm-bit-identity", fmt.Sprintf("%d completed responses bit-identical (%d cache hits, %d shed, %d deadline-expired)",
		tally.completed, tally.cacheHits, tallySum(tally.shed), tally.deadlines))

	// The armed solve fault may not have been drawn yet: after its first
	// computes the storm can satisfy design 1 from cache, and cache hits
	// consume no solve ordinals. In that case the ordinal sits at exactly 2
	// (warm-up plus one compute), so a single fresh, uncached analyze — which
	// consumes exactly one solve ordinal — must draw ordinal 3 and report the
	// typed failure.
	if len(designs) > 1 && tally.faulted["not-converged"] == 0 {
		do(designs[1], chaosQuery{"/analyze", "util=0.69",
			serve.Query{Kind: serve.KindAnalyze, Utilization: 0.69}}, 10_000)
	}

	// The injected faults must all have surfaced: stalls became deadline
	// expiries, shed admissions were counted, and the doubly-failed solve
	// surfaced exactly once as a typed not-converged failure.
	if tally.deadlines == 0 {
		closeAll()
		return rep, fmt.Errorf("harness: stalled analyses produced no deadline expiries")
	}
	snap0 := srv.StatsFor(designs[0].name)
	if snap0.TimedOut == 0 {
		closeAll()
		return rep, fmt.Errorf("harness: timed-out queries not recorded in stats: %+v", snap0)
	}
	if len(designs) > 1 {
		snap1 := srv.StatsFor(designs[1].name)
		if snap1.Shed < 3 {
			closeAll()
			return rep, fmt.Errorf("harness: injected admission failures not shed: %+v", snap1)
		}
		if tally.faulted["not-converged"] != 1 {
			closeAll()
			return rep, fmt.Errorf("harness: injected solver fault surfaced %d times, want 1 (faulted=%v)",
				tally.faulted["not-converged"], tally.faulted)
		}
	}
	rep.pass("injected-faults-surfaced", fmt.Sprintf("deadlines=%d shed=%v faulted=%v",
		tally.deadlines, tally.shed, tally.faulted))

	// Bounded memory: every design's cache stayed inside its budget, and the
	// distinct-query pressure forced evictions somewhere (the budget is
	// deliberately smaller than the working set).
	evictions := uint64(0)
	for _, d := range designs {
		if got := srv.CacheBytesFor(d.name); got > opts.CacheBytes {
			closeAll()
			return rep, fmt.Errorf("harness: %s: cache footprint %d exceeds budget %d", d.name, got, opts.CacheBytes)
		}
		evictions += srv.StatsFor(d.name).Evicted
	}
	if evictions == 0 {
		closeAll()
		return rep, fmt.Errorf("harness: no evictions under a %d-byte budget; memory bounding unexercised", opts.CacheBytes)
	}
	rep.pass("cache-budget-bounded", fmt.Sprintf("%d evictions, every footprint <= %d bytes", evictions, opts.CacheBytes))

	// Phase 3 — drain while queries are parked in-flight. Every subsequent
	// analysis stalls (no deadline), so the drain must cancel them through
	// their contexts; nothing may be admitted after BeginDrain.
	//
	// The injector fields are plain ints, so re-arming requires a
	// happens-before edge over any straggling handler (the mid-flight
	// disconnect's handler can outlive its client): spin until the tracker
	// reports quiescence — its mutex is the edge.
	quiesce := time.Now().Add(5 * time.Second)
	for srv.InFlightRequests() != 0 {
		if time.Now().After(quiesce) {
			closeAll()
			return rep, fmt.Errorf("harness: server never quiesced before the drain phase (%d still in flight)", srv.InFlightRequests())
		}
		time.Sleep(2 * time.Millisecond)
	}
	designs[0].inject.StallAnalyzeN = 1 << 30
	preDrain := srv.StatsFor(designs[0].name).Admitted
	wantParked := uint64(opts.MaxInFlight)
	if wantParked > 3 {
		wantParked = 3
	}
	parked := make(chan int, 3)
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			resp, err := client.Get(ts.URL + "/analyze?design=" + designs[0].name +
				"&util=0.8" + strconv.Itoa(k+1) + "&deadline_ms=0")
			if err != nil {
				parked <- -1
				return
			}
			resp.Body.Close()
			parked <- resp.StatusCode
		}(k)
	}
	// Wait until the stalled queries hold every in-flight slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.StatsFor(designs[0].name).Admitted < preDrain+wantParked {
		if time.Now().After(deadline) {
			closeAll()
			return rep, fmt.Errorf("harness: stalled queries never occupied the in-flight slots")
		}
		time.Sleep(2 * time.Millisecond)
	}
	admittedBefore := uint64(0)
	for _, d := range designs {
		admittedBefore += srv.StatsFor(d.name).Admitted
	}

	srv.BeginDrain()
	// A query after BeginDrain is shed without being admitted.
	resp, err := client.Get(ts.URL + "/analyze?design=" + designs[0].name + "&util=0.7")
	if err != nil {
		closeAll()
		return rep, fmt.Errorf("harness: post-drain probe: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		closeAll()
		return rep, fmt.Errorf("harness: post-drain query got status %d, want 503", resp.StatusCode)
	}

	t0 := time.Now()
	stragglers := srv.Drain(opts.DrainTimeout)
	drainTook := time.Since(t0)
	if stragglers == 0 {
		closeAll()
		return rep, fmt.Errorf("harness: drain reported no canceled stragglers despite parked queries")
	}
	if drainTook > opts.DrainTimeout+2*time.Second {
		closeAll()
		return rep, fmt.Errorf("harness: drain took %v (timeout %v): stragglers did not cancel", drainTook, opts.DrainTimeout)
	}
	wg.Wait()
	close(parked)
	for code := range parked {
		if code == http.StatusOK {
			closeAll()
			return rep, fmt.Errorf("harness: a parked query completed with 200 after a hard drain")
		}
	}
	admittedAfter := uint64(0)
	for _, d := range designs {
		admittedAfter += srv.StatsFor(d.name).Admitted
	}
	if admittedAfter != admittedBefore {
		closeAll()
		return rep, fmt.Errorf("harness: %d queries admitted after BeginDrain", admittedAfter-admittedBefore)
	}
	rep.pass("drain-contract", fmt.Sprintf("%d stragglers canceled in %v, zero post-drain admissions", stragglers, drainTook.Round(time.Millisecond)))

	ts.Close()
	closeAll()

	// Nothing may leak: client goroutines joined, handlers unwound, solver
	// pools closed.
	if err := waitGoroutines(baseGoroutines, 5*time.Second); err != nil {
		return rep, fmt.Errorf("harness: %w", err)
	}
	rep.pass("zero-goroutine-leak", fmt.Sprintf("settled at baseline %d goroutines", baseGoroutines))
	return rep, nil
}

func tallySum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
