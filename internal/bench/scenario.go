package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"thermplace/internal/celllib"
	"thermplace/internal/netlist"
)

// Family names one scenario family: a recipe that turns (seed, knobs) into a
// concrete unit mix and workload. Families differ in how they spend the cell
// budget and where they put the heat, so together they cover qualitatively
// different placement and thermal regimes instead of the paper's single
// design point.
type Family string

const (
	// FamilyPaperSynth9 reproduces the paper's nine-unit mix, scaled to the
	// target cell count, under a jittered scattered-small-hotspot workload.
	// The unit list is seed-independent by design (fidelity to the paper);
	// the seed only perturbs the workload activities.
	FamilyPaperSynth9 Family = "paper-synth9"
	// FamilyHotspotCluster packs two or three very hot small multipliers
	// into a sea of quiet random logic: few, tight, concentrated hotspots.
	FamilyHotspotCluster Family = "hotspot-cluster"
	// FamilyGradientMix cycles through every unit kind with a linear
	// activity ramp across the unit list: a broad thermal gradient rather
	// than isolated hotspots.
	FamilyGradientMix Family = "gradient-mix"
	// FamilyManyUnits splits the budget into dozens of small units with
	// random activities: it stresses per-unit bookkeeping, floorplan
	// regions and the placer's row structures.
	FamilyManyUnits Family = "many-units"
	// FamilyWideDatapath spends the budget on a few very wide units: large
	// contiguous unit regions with one wide hot block.
	FamilyWideDatapath Family = "wide-datapath"
)

// Families returns every scenario family, in a stable order.
func Families() []Family {
	return []Family{
		FamilyPaperSynth9,
		FamilyHotspotCluster,
		FamilyGradientMix,
		FamilyManyUnits,
		FamilyWideDatapath,
	}
}

// ParseFamily resolves a family name as used on command lines.
func ParseFamily(s string) (Family, error) {
	for _, f := range Families() {
		if string(f) == s {
			return f, nil
		}
	}
	return "", fmt.Errorf("bench: unknown scenario family %q (known: %v)", s, Families())
}

// Scenario is a seeded, parameterized benchmark description: a family plus
// the knobs the generator exposes. The same Scenario always produces a
// byte-identical netlist and workload (the generator draws every random
// choice from a deterministic RNG derived from Family and Seed), which is
// the reproducibility contract the metamorphic harness and the CI benchmarks
// rely on.
type Scenario struct {
	// Family selects the generation recipe.
	Family Family
	// Seed drives every random choice of the generator.
	Seed int64
	// TargetCells is the approximate standard-cell count to generate
	// (within a few percent for most families). Zero means 12000, the
	// paper's size.
	TargetCells int
	// ClockGHz is the clock frequency; zero means 1.0.
	ClockGHz float64
	// AspectRatio is the intended core aspect ratio (height / width) for
	// flows built from this scenario; zero means 1.0.
	AspectRatio float64
	// Utilization is the intended baseline placement utilization; zero
	// means 0.85.
	Utilization float64
	// HotActivity overrides the family's center toggle probability for hot
	// units (zero keeps the family default).
	HotActivity float64
	// BaseActivity overrides the family's background toggle probability
	// (zero keeps the family default).
	BaseActivity float64
}

// Normalized returns the scenario with every zero knob replaced by its
// default. Family-level activity defaults are resolved during Generate.
func (sc Scenario) Normalized() Scenario {
	if sc.TargetCells == 0 {
		sc.TargetCells = 12000
	}
	if sc.ClockGHz == 0 {
		sc.ClockGHz = 1.0
	}
	if sc.AspectRatio == 0 {
		sc.AspectRatio = 1.0
	}
	if sc.Utilization == 0 {
		sc.Utilization = 0.85
	}
	return sc
}

// Validate checks the (normalized) scenario for usable knob values.
func (sc Scenario) Validate() error {
	if _, err := ParseFamily(string(sc.Family)); err != nil {
		return err
	}
	if sc.TargetCells < 300 || sc.TargetCells > 2_000_000 {
		return fmt.Errorf("bench: target cell count %d outside [300, 2000000]", sc.TargetCells)
	}
	if sc.ClockGHz <= 0 {
		return fmt.Errorf("bench: clock %v GHz must be positive", sc.ClockGHz)
	}
	if sc.AspectRatio <= 0 {
		return fmt.Errorf("bench: aspect ratio %v must be positive", sc.AspectRatio)
	}
	if sc.Utilization <= 0 || sc.Utilization > 1 {
		return fmt.Errorf("bench: utilization %v outside (0, 1]", sc.Utilization)
	}
	if sc.HotActivity < 0 || sc.HotActivity > 1 || sc.BaseActivity < 0 || sc.BaseActivity > 1 {
		return fmt.Errorf("bench: activities must lie in [0, 1]")
	}
	return nil
}

// Name returns a stable human-readable identifier for the scenario.
func (sc Scenario) Name() string {
	sc = sc.Normalized()
	return fmt.Sprintf("%s_s%d_c%d", sanitizeIdent(string(sc.Family)), sc.Seed, sc.TargetCells)
}

func (sc Scenario) String() string { return sc.Name() }

// sanitizeIdent maps a family name onto a Verilog-safe identifier chunk.
func sanitizeIdent(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// rngSeed mixes the family name into the seed so that two families at the
// same seed draw independent random streams.
func (sc Scenario) rngSeed() int64 {
	h := fnv.New64a()
	h.Write([]byte(sc.Family))
	return sc.Seed ^ int64(h.Sum64())
}

// Generated bundles everything a Scenario produces: the concrete unit-level
// configuration, the gate-level design and the workload that positions its
// hotspots.
type Generated struct {
	// Scenario is the normalized scenario that produced the rest.
	Scenario Scenario
	// Config is the concrete unit list handed to Generate.
	Config Config
	// Workload is the per-unit switching-activity profile.
	Workload Workload
	// Design is the generated gate-level netlist.
	Design *netlist.Design
}

// Generate builds the scenario's design and workload. Generation is fully
// deterministic: calling Generate twice with equal scenarios yields designs
// whose Verilog and DEF serializations are byte-identical.
func (sc Scenario) Generate(lib *celllib.Library) (*Generated, error) {
	sc = sc.Normalized()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.rngSeed()))
	units, wl := sc.plan(rng)
	cfg := Config{Name: sc.Name(), ClockGHz: sc.ClockGHz, Units: units}
	d, err := Generate(lib, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: scenario %s: %w", sc, err)
	}
	return &Generated{Scenario: sc, Config: cfg, Workload: wl, Design: d}, nil
}

// EstimateCells predicts the number of standard cells buildUnit creates for
// spec. The formulas follow the unit generators exactly (partial-product
// arrays, two cells per adder position, registers and output buffers), so
// the scenario planners can hit a target cell count without generating.
func EstimateCells(spec UnitSpec) int {
	w := spec.Width
	switch spec.Kind {
	case KindMultiplier:
		// w^2 partial products + 2w(w-1) carry-save cells + 2w DFF + 2w BUF.
		return 3*w*w + 2*w
	case KindRippleAdder:
		// 2w adder cells + (w+1) DFF + (w+1) BUF.
		return 4*w + 2
	case KindCarrySelectAdder:
		// First block: plain ripple. Later blocks: 2 ties + two ripples with
		// carry-in + (block+1) muxes. Registers and buffers on w+1 bits.
		first := csaBlock
		if w < first {
			first = w
		}
		cells := 2 * first // first block
		rem := w - first
		for rem > 0 {
			blk := csaBlock
			if rem < blk {
				blk = rem
			}
			cells += 2 + 4*blk + blk + 1
			rem -= blk
		}
		return cells + 2*(w+1)
	case KindMAC:
		// Multiplier core (no registers) + TIE0 + ripple over 2w+4 bits +
		// (2w+4) DFF + (2w+4) BUF.
		return 3*w*w - 2*w + 1 + 4*(2*w+4)
	case KindALU:
		// 2w ripple + 6 cells per bit (and/or/xor + 3 muxes) + w DFF + w BUF.
		return 10 * w
	case KindComparator:
		// w XNOR + (w-1) AND tree + w INV + TIE1 + 2w ripple + INV + AND +
		// 2 DFF + 2 BUF.
		return 5*w + 6
	default:
		return 0
	}
}

// csaBlock is the carry-select block size used by buildCarrySelectAdder.
const csaBlock = 8

// unitPlan accumulates units with deterministic, underscore-free names (the
// flow maps a port to its unit by splitting at the first underscore, so unit
// names must not contain one).
type unitPlan struct {
	units []UnitSpec
	est   int
	seen  map[string]int
}

func newUnitPlan() *unitPlan { return &unitPlan{seen: map[string]int{}} }

// add appends a unit of the given kind and width and returns its name.
func (p *unitPlan) add(kind UnitKind, width int) string {
	base := kindPrefix(kind) + fmt.Sprint(width)
	n := p.seen[base]
	p.seen[base]++
	name := base + alphaSuffix(n)
	p.units = append(p.units, UnitSpec{Name: name, Kind: kind, Width: width})
	p.est += EstimateCells(UnitSpec{Kind: kind, Width: width})
	return name
}

func kindPrefix(kind UnitKind) string {
	switch kind {
	case KindMultiplier:
		return "mult"
	case KindRippleAdder:
		return "add"
	case KindCarrySelectAdder:
		return "csadd"
	case KindMAC:
		return "mac"
	case KindALU:
		return "alu"
	case KindComparator:
		return "cmp"
	default:
		return "unit"
	}
}

// alphaSuffix returns "", "a", "b", ..., "z", "aa", ... for n = 0, 1, 2, ...
func alphaSuffix(n int) string {
	if n == 0 {
		return ""
	}
	var b []byte
	for n > 0 {
		n--
		b = append([]byte{byte('a' + n%26)}, b...)
		n /= 26
	}
	return string(b)
}

// fillToTarget tops the plan up to the target with ripple adders sized to
// the remaining budget, which brings every family within a few percent of
// TargetCells regardless of how coarse its big units are.
func (p *unitPlan) fillToTarget(target int) {
	for p.est < target {
		w := (target - p.est - 2) / 4
		if w > 64 {
			w = 64
		}
		if w < 4 {
			break
		}
		p.add(KindRippleAdder, w)
	}
}

// activity resolves the scenario's hot/base activity overrides against the
// family defaults.
func (sc Scenario) activity(hotDefault, baseDefault float64) (hot, base float64) {
	hot, base = hotDefault, baseDefault
	if sc.HotActivity > 0 {
		hot = sc.HotActivity
	}
	if sc.BaseActivity > 0 {
		base = sc.BaseActivity
	}
	return hot, base
}

// jitter returns v perturbed by up to ±frac (relative), drawn from rng and
// clamped to the [0, 1] toggle-probability domain.
func jitter(rng *rand.Rand, v, frac float64) float64 {
	v *= 1 + frac*(2*rng.Float64()-1)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// plan dispatches to the family planner and assembles the workload.
func (sc Scenario) plan(rng *rand.Rand) ([]UnitSpec, Workload) {
	switch sc.Family {
	case FamilyPaperSynth9:
		return sc.planPaperSynth9(rng)
	case FamilyHotspotCluster:
		return sc.planHotspotCluster(rng)
	case FamilyGradientMix:
		return sc.planGradientMix(rng)
	case FamilyManyUnits:
		return sc.planManyUnits(rng)
	case FamilyWideDatapath:
		return sc.planWideDatapath(rng)
	default:
		// Validate rejects unknown families before plan runs.
		panic(fmt.Sprintf("bench: unplanned family %q", sc.Family))
	}
}

// paperBaseCells is EstimateCells summed over the paper's nine units; the
// paper-synth9 planner scales widths by sqrt(target/paperBaseCells).
const paperBaseCells = 11808

func (sc Scenario) planPaperSynth9(rng *rand.Rand) ([]UnitSpec, Workload) {
	base := []struct {
		kind  UnitKind
		width int
		hot   bool
	}{
		{KindMultiplier, 32, false},
		{KindMultiplier, 28, false},
		{KindMultiplier, 24, false},
		{KindMultiplier, 20, true},
		{KindMultiplier, 16, true},
		{KindMultiplier, 16, true},
		{KindMAC, 16, true},
		{KindALU, 32, false},
		{KindCarrySelectAdder, 64, false},
	}
	scale := math.Sqrt(float64(sc.TargetCells) / paperBaseCells)
	hot, cold := sc.activity(0.50, 0.04)
	p := newUnitPlan()
	wl := Workload{
		Name:     "scattered-" + sc.Name(),
		Activity: map[string]float64{},
		Default:  cold,
	}
	for _, u := range base {
		w := int(math.Round(float64(u.width) * scale))
		if w < 4 {
			w = 4
		}
		name := p.add(u.kind, w)
		if u.hot {
			wl.Activity[name] = jitter(rng, hot, 0.10)
		}
	}
	return p.units, wl
}

func (sc Scenario) planHotspotCluster(rng *rand.Rand) ([]UnitSpec, Workload) {
	hot, cold := sc.activity(0.58, 0.02)
	nHot := 2 + rng.Intn(2)
	// Spend no more than about half the budget on the hot cluster.
	wHot := clampInt(int(math.Sqrt(float64(sc.TargetCells)/(8*float64(nHot)))), 6, 14)
	p := newUnitPlan()
	wl := Workload{
		Name:     "cluster-" + sc.Name(),
		Activity: map[string]float64{},
		Default:  cold,
	}
	for i := 0; i < nHot; i++ {
		w := clampInt(wHot+rng.Intn(3)-1, 4, 16)
		name := p.add(KindMultiplier, w)
		wl.Activity[name] = jitter(rng, hot, 0.08)
	}
	coldKinds := []UnitKind{KindRippleAdder, KindALU, KindComparator, KindCarrySelectAdder}
	for p.est < sc.TargetCells && len(p.units) < 4096 {
		kind := coldKinds[rng.Intn(len(coldKinds))]
		w := 8 + rng.Intn(25)
		if p.est+EstimateCells(UnitSpec{Kind: kind, Width: w}) > sc.TargetCells {
			break
		}
		p.add(kind, w)
	}
	p.fillToTarget(sc.TargetCells)
	return p.units, wl
}

func (sc Scenario) planGradientMix(rng *rand.Rand) ([]UnitSpec, Workload) {
	hot, cold := sc.activity(0.55, 0.02)
	kinds := []UnitKind{
		KindMultiplier, KindALU, KindCarrySelectAdder,
		KindComparator, KindMAC, KindRippleAdder,
	}
	p := newUnitPlan()
	for i := 0; p.est < sc.TargetCells && len(p.units) < 4096; i++ {
		kind := kinds[i%len(kinds)]
		var w int
		switch kind {
		case KindMultiplier, KindMAC:
			w = 8 + rng.Intn(9)
		case KindCarrySelectAdder:
			w = 16 + rng.Intn(33)
		default:
			w = 16 + rng.Intn(17)
		}
		if p.est+EstimateCells(UnitSpec{Kind: kind, Width: w}) > sc.TargetCells {
			break
		}
		p.add(kind, w)
	}
	p.fillToTarget(sc.TargetCells)
	// Activity ramps linearly from hot to cold across the unit list,
	// producing a thermal gradient instead of discrete spots.
	wl := Workload{
		Name:     "gradient-" + sc.Name(),
		Activity: map[string]float64{},
		Default:  cold,
	}
	n := len(p.units)
	for i, u := range p.units {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		a := hot - (hot-cold)*frac
		a = jitter(rng, a, 0.05)
		if a < cold {
			a = cold
		}
		wl.Activity[u.Name] = a
	}
	return p.units, wl
}

func (sc Scenario) planManyUnits(rng *rand.Rand) ([]UnitSpec, Workload) {
	hot, cold := sc.activity(0.60, 0.05)
	kinds := []UnitKind{
		KindMultiplier, KindRippleAdder, KindCarrySelectAdder,
		KindMAC, KindALU, KindComparator,
	}
	p := newUnitPlan()
	wl := Workload{
		Name:     "many-" + sc.Name(),
		Activity: map[string]float64{},
		Default:  cold,
	}
	for p.est < sc.TargetCells && len(p.units) < 8192 {
		kind := kinds[rng.Intn(len(kinds))]
		var w int
		switch kind {
		case KindMultiplier, KindMAC:
			w = 4 + rng.Intn(4)
		default:
			w = 6 + rng.Intn(11)
		}
		name := p.add(kind, w)
		wl.Activity[name] = cold + (hot/2-cold)*rng.Float64()
	}
	// Boost one deterministic unit so the design always has a clear
	// hotspot for the transforms to target.
	if len(p.units) > 0 {
		wl.Activity[p.units[rng.Intn(len(p.units))].Name] = hot
	}
	return p.units, wl
}

func (sc Scenario) planWideDatapath(rng *rand.Rand) ([]UnitSpec, Workload) {
	hot, cold := sc.activity(0.52, 0.04)
	p := newUnitPlan()
	wl := Workload{
		Name:     "wide-" + sc.Name(),
		Activity: map[string]float64{},
		Default:  cold,
	}
	// One wide hot multiplier consuming about a third of the budget, its
	// exact width jittered by the seed.
	wMult := clampInt(int(math.Sqrt(float64(sc.TargetCells)/9))+rng.Intn(5)-2, 12, 56)
	hotName := p.add(KindMultiplier, wMult)
	wl.Activity[hotName] = jitter(rng, hot, 0.06)
	for p.est < sc.TargetCells && len(p.units) < 1024 {
		var kind UnitKind
		var w int
		switch rng.Intn(4) {
		case 0:
			kind, w = KindCarrySelectAdder, 48+rng.Intn(81)
		case 1:
			kind, w = KindALU, 32+rng.Intn(33)
		case 2:
			kind, w = KindMAC, 12+rng.Intn(13)
		default:
			kind, w = KindMultiplier, clampInt(wMult/2+rng.Intn(9)-4, 8, 48)
		}
		if p.est+EstimateCells(UnitSpec{Kind: kind, Width: w}) > sc.TargetCells {
			break
		}
		p.add(kind, w)
	}
	p.fillToTarget(sc.TargetCells)
	return p.units, wl
}
