// Package congestion provides a probabilistic routing-congestion estimate
// for placed designs. The paper notes that empty-row insertion "increases
// the distance between rows of cells, thus reducing routing congestion in
// the hotspot regions"; this package quantifies that by-product.
//
// The model is the standard bounding-box one: every net's expected wiring is
// its half-perimeter wirelength distributed uniformly over the bins its
// bounding box overlaps, split into horizontal and vertical demand. Bin
// capacity comes from the number of routing tracks the bin offers (bin
// extent divided by track pitch times the number of routing layers per
// direction).
package congestion

import (
	"math"

	"thermplace/internal/geom"
	"thermplace/internal/place"
)

// Options configures the congestion estimate.
type Options struct {
	// NX, NY is the congestion-grid resolution. Zero selects 32 x 32.
	NX, NY int
	// TrackPitchUm is the routing track pitch in micrometres. Zero selects
	// 0.2 um (a typical 65 nm intermediate-layer pitch).
	TrackPitchUm float64
	// HLayers and VLayers are the number of horizontal and vertical routing
	// layers. Zero selects 3 each.
	HLayers, VLayers int
}

// DefaultOptions returns the settings used in the experiments.
func DefaultOptions() Options {
	return Options{NX: 32, NY: 32, TrackPitchUm: 0.2, HLayers: 3, VLayers: 3}
}

func (o Options) withDefaults() Options {
	if o.NX <= 0 {
		o.NX = 32
	}
	if o.NY <= 0 {
		o.NY = 32
	}
	if o.TrackPitchUm <= 0 {
		o.TrackPitchUm = 0.2
	}
	if o.HLayers <= 0 {
		o.HLayers = 3
	}
	if o.VLayers <= 0 {
		o.VLayers = 3
	}
	return o
}

// Report holds the congestion maps and summary statistics.
type Report struct {
	// HDemand and VDemand are the horizontal and vertical wiring demand per
	// bin in track-lengths (um of wire / um of bin extent).
	HDemand, VDemand *geom.Grid
	// HUtil and VUtil are demand divided by capacity per bin.
	HUtil, VUtil *geom.Grid
	// Utilization is the per-bin maximum of HUtil and VUtil.
	Utilization *geom.Grid
	// MaxUtilization and MeanUtilization summarize Utilization.
	MaxUtilization, MeanUtilization float64
	// Overflows counts bins whose utilization exceeds 1.
	Overflows int
	// TotalWirelength is the summed HPWL of all nets in um.
	TotalWirelength float64
}

// Estimate computes the congestion report for a placement.
func Estimate(p *place.Placement, opts Options) *Report {
	opts = opts.withDefaults()
	core := p.FP.Core
	rep := &Report{
		HDemand: geom.NewGrid(opts.NX, opts.NY, core),
		VDemand: geom.NewGrid(opts.NX, opts.NY, core),
	}

	// Degenerate boxes still occupy one bin line; give them a minimal
	// extent so the spreading below works.
	minExt := math.Min(core.W(), core.H()) / float64(opts.NX) / 4
	for _, net := range p.Design.Nets() {
		bbox := p.NetBBox(net)
		if bbox.Empty() && bbox.W() == 0 && bbox.H() == 0 {
			// Single-pin or unplaced net: no routing demand.
			continue
		}
		rep.TotalWirelength += bbox.HalfPerimeter()
		spread := bbox
		if spread.W() < minExt {
			spread.Xhi = spread.Xlo + minExt
		}
		if spread.H() < minExt {
			spread.Yhi = spread.Ylo + minExt
		}
		// Horizontal wire of length bbox.W spread over the box; vertical
		// wire of length bbox.H likewise, decomposed into bins once.
		geom.SpreadRectPair(rep.HDemand, rep.VDemand, spread, bbox.W(), bbox.H())
	}

	// Capacity per bin: tracks * bin extent in the routing direction.
	binW := rep.HDemand.CellW()
	binH := rep.HDemand.CellH()
	hTracks := binH / opts.TrackPitchUm * float64(opts.HLayers)
	vTracks := binW / opts.TrackPitchUm * float64(opts.VLayers)
	hCap := hTracks * binW // um of horizontal wire the bin can hold
	vCap := vTracks * binH

	rep.HUtil = rep.HDemand.Clone().Scale(1 / hCap)
	rep.VUtil = rep.VDemand.Clone().Scale(1 / vCap)
	rep.Utilization = geom.NewGrid(opts.NX, opts.NY, core)
	for iy := 0; iy < opts.NY; iy++ {
		for ix := 0; ix < opts.NX; ix++ {
			u := math.Max(rep.HUtil.At(ix, iy), rep.VUtil.At(ix, iy))
			rep.Utilization.Set(ix, iy, u)
			if u > 1 {
				rep.Overflows++
			}
		}
	}
	rep.MaxUtilization, _, _ = rep.Utilization.Max()
	rep.MeanUtilization = rep.Utilization.Mean()
	return rep
}

// MemoryBytes coarsely estimates the retained size of the report's grids.
// It feeds flow.Analysis.MemoryBytes, the accounting unit of the query
// server's result cache.
func (r *Report) MemoryBytes() int64 {
	n := int64(0)
	for _, g := range []*geom.Grid{r.HDemand, r.VDemand, r.HUtil, r.VUtil, r.Utilization} {
		if g != nil {
			n += 8 * int64(len(g.Values()))
		}
	}
	return n
}

// RegionOverflows counts the overflowing bins (utilization > 1) among the
// bins overlapping the given region; used to check that empty-row insertion
// does not worsen congestion inside the hotspot region it targets.
func (r *Report) RegionOverflows(region geom.Rect) int {
	n := 0
	for iy := 0; iy < r.Utilization.NY; iy++ {
		for ix := 0; ix < r.Utilization.NX; ix++ {
			if r.Utilization.At(ix, iy) > 1 && r.Utilization.CellRect(ix, iy).Intersects(region) {
				n++
			}
		}
	}
	return n
}

// RegionUtilization returns the mean congestion utilization of the bins
// overlapping the given region; used to compare the hotspot region before
// and after a transform.
func (r *Report) RegionUtilization(region geom.Rect) float64 {
	sum, n := 0.0, 0
	for iy := 0; iy < r.Utilization.NY; iy++ {
		for ix := 0; ix < r.Utilization.NX; ix++ {
			if r.Utilization.CellRect(ix, iy).Intersects(region) {
				sum += r.Utilization.At(ix, iy)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
