package congestion

import (
	"testing"

	"thermplace/internal/bench"
	"thermplace/internal/celllib"
	"thermplace/internal/floorplan"
	"thermplace/internal/geom"
	"thermplace/internal/netlist"
	"thermplace/internal/place"
)

func placedSmall(t *testing.T, util float64) (*netlist.Design, *place.Placement) {
	t.Helper()
	lib := celllib.Default65nm()
	d, err := bench.Generate(lib, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(d, floorplan.Config{Utilization: util, AspectRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(d, fp)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestEstimateBasics(t *testing.T) {
	_, p := placedSmall(t, 0.85)
	rep := Estimate(p, DefaultOptions())
	if rep.TotalWirelength <= 0 {
		t.Fatal("total wirelength must be positive")
	}
	if rep.MaxUtilization <= 0 || rep.MeanUtilization <= 0 {
		t.Fatal("utilization must be positive")
	}
	if rep.MaxUtilization < rep.MeanUtilization {
		t.Fatal("max must be at least the mean")
	}
	if rep.Overflows < 0 {
		t.Fatal("negative overflow count")
	}
	// Demand grids conserve the decomposed wirelength.
	total := rep.HDemand.Sum() + rep.VDemand.Sum()
	if total <= 0 || total > rep.TotalWirelength*1.2 {
		t.Fatalf("spread demand %g inconsistent with HPWL %g", total, rep.TotalWirelength)
	}
	// Utilization = max(H, V) per bin.
	for iy := 0; iy < rep.Utilization.NY; iy++ {
		for ix := 0; ix < rep.Utilization.NX; ix++ {
			h, v, u := rep.HUtil.At(ix, iy), rep.VUtil.At(ix, iy), rep.Utilization.At(ix, iy)
			if u < h-1e-12 || u < v-1e-12 {
				t.Fatalf("utilization at (%d,%d) below its components", ix, iy)
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	_, p := placedSmall(t, 0.85)
	rep := Estimate(p, Options{})
	if rep.Utilization.NX != 32 || rep.Utilization.NY != 32 {
		t.Fatalf("default grid not applied: %dx%d", rep.Utilization.NX, rep.Utilization.NY)
	}
}

func TestLowerUtilizationReducesCongestion(t *testing.T) {
	// The same design at lower placement utilization has more room per bin,
	// so peak congestion must not increase.
	_, dense := placedSmall(t, 0.95)
	_, sparse := placedSmall(t, 0.6)
	dRep := Estimate(dense, DefaultOptions())
	sRep := Estimate(sparse, DefaultOptions())
	if sRep.MeanUtilization >= dRep.MeanUtilization {
		t.Fatalf("sparser placement should be less congested on average: %g vs %g",
			sRep.MeanUtilization, dRep.MeanUtilization)
	}
}

func TestRegionUtilization(t *testing.T) {
	_, p := placedSmall(t, 0.85)
	rep := Estimate(p, DefaultOptions())
	whole := rep.RegionUtilization(p.FP.Core)
	if whole <= 0 {
		t.Fatal("whole-core region utilization must be positive")
	}
	if off := rep.RegionUtilization(geom.Rect{Xlo: -500, Ylo: -500, Xhi: -400, Yhi: -400}); off != 0 {
		t.Fatalf("off-core region utilization = %g, want 0", off)
	}
	// The region mean over the whole core equals the global mean.
	if diff := whole - rep.MeanUtilization; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("whole-core region utilization %g != mean %g", whole, rep.MeanUtilization)
	}
}

func TestCongestionTracksPlacementSpreading(t *testing.T) {
	// Stretching rows apart (the ERI effect) adds bins without wires, so the
	// mean congestion over the stretched core must drop.
	_, p := placedSmall(t, 0.9)
	before := Estimate(p, DefaultOptions())
	stretched := p.Clone()
	extraRows := 6
	if err := stretched.FP.InsertRows(stretched.FP.NumRows()/2, extraRows); err != nil {
		t.Fatal(err)
	}
	mid := p.FP.Core.Center().Y
	for _, inst := range p.Design.Instances() {
		if inst.IsFiller() {
			continue
		}
		if l, ok := stretched.Loc(inst); ok && l.Y >= mid {
			l.Row += extraRows
			l.Y = stretched.FP.Rows[l.Row].Y
			stretched.SetLoc(inst, l)
		}
	}
	place.Legalize(stretched)
	after := Estimate(stretched, DefaultOptions())
	if after.MeanUtilization >= before.MeanUtilization {
		t.Fatalf("row insertion should reduce mean congestion: %g -> %g",
			before.MeanUtilization, after.MeanUtilization)
	}
}
