package geom

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Grid is a dense 2-D field of float64 values laid over a physical region.
// It is used for power-density maps, thermal maps and congestion maps.
// Cell (0,0) is the lower-left cell of the region.
type Grid struct {
	NX, NY int  // number of cells in x and y
	Region Rect // physical region covered by the grid
	data   []float64
}

// NewGrid creates an all-zero grid of nx by ny cells covering region.
// It panics when nx or ny is not positive or the region is empty,
// because every caller constructs grids from validated configuration.
func NewGrid(nx, ny int, region Rect) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("geom: invalid grid size %dx%d", nx, ny))
	}
	if region.Empty() {
		panic("geom: empty grid region")
	}
	return &Grid{NX: nx, NY: ny, Region: region, data: make([]float64, nx*ny)}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{NX: g.NX, NY: g.NY, Region: g.Region, data: make([]float64, len(g.data))}
	copy(out.data, g.data)
	return out
}

// CellW returns the physical width of one grid cell.
func (g *Grid) CellW() float64 { return g.Region.W() / float64(g.NX) }

// CellH returns the physical height of one grid cell.
func (g *Grid) CellH() float64 { return g.Region.H() / float64(g.NY) }

// CellArea returns the physical area of one grid cell.
func (g *Grid) CellArea() float64 { return g.CellW() * g.CellH() }

// index converts (ix, iy) to a linear index; it panics on out-of-range
// coordinates since those always indicate a programming error.
func (g *Grid) index(ix, iy int) int {
	if ix < 0 || ix >= g.NX || iy < 0 || iy >= g.NY {
		panic(fmt.Sprintf("geom: grid index (%d,%d) out of range %dx%d", ix, iy, g.NX, g.NY))
	}
	return iy*g.NX + ix
}

// At returns the value stored at cell (ix, iy).
func (g *Grid) At(ix, iy int) float64 { return g.data[g.index(ix, iy)] }

// Set stores v at cell (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) { g.data[g.index(ix, iy)] = v }

// Add accumulates v into cell (ix, iy).
func (g *Grid) Add(ix, iy int, v float64) { g.data[g.index(ix, iy)] += v }

// Fill sets every cell to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Values returns the underlying storage in row-major order (y-major:
// index = iy*NX + ix). The caller must not resize it.
func (g *Grid) Values() []float64 { return g.data }

// CellOf returns the grid coordinates of the cell containing physical point
// p, clamped to the grid boundary.
func (g *Grid) CellOf(p Point) (ix, iy int) {
	ix = int(math.Floor((p.X - g.Region.Xlo) / g.CellW()))
	iy = int(math.Floor((p.Y - g.Region.Ylo) / g.CellH()))
	return ClampInt(ix, 0, g.NX-1), ClampInt(iy, 0, g.NY-1)
}

// CellRect returns the physical rectangle covered by cell (ix, iy).
func (g *Grid) CellRect(ix, iy int) Rect {
	w, h := g.CellW(), g.CellH()
	x := g.Region.Xlo + float64(ix)*w
	y := g.Region.Ylo + float64(iy)*h
	return Rect{x, y, x + w, y + h}
}

// CellCenter returns the physical centre of cell (ix, iy).
func (g *Grid) CellCenter(ix, iy int) Point { return g.CellRect(ix, iy).Center() }

// AddAt accumulates v into the cell containing physical point p.
func (g *Grid) AddAt(p Point, v float64) {
	ix, iy := g.CellOf(p)
	g.Add(ix, iy, v)
}

// SpreadRect distributes total over all grid cells overlapped by r,
// proportionally to the overlap area. Rectangles completely outside the
// grid region contribute nothing.
func (g *Grid) SpreadRect(r Rect, total float64) {
	spreadRectPair(g, nil, r, total, 0)
}

// SpreadRectPair distributes totalA over ga and totalB over gb for the
// cells overlapped by r, proportionally to the overlap area. Both grids
// must share the same geometry (it panics otherwise). The rectangle is
// decomposed into bins once instead of twice and the per-bin division is
// hoisted out of the loop, so deposits agree with two separate SpreadRect
// calls to within one rounding of the per-bin fraction (not bit-exactly).
// Callers spreading the horizontal and vertical demand of the same net
// bounding box use this to halve the per-net cost.
func SpreadRectPair(ga, gb *Grid, r Rect, totalA, totalB float64) {
	if ga.NX != gb.NX || ga.NY != gb.NY || ga.Region != gb.Region {
		panic("geom: SpreadRectPair grids differ in geometry")
	}
	spreadRectPair(ga, gb, r, totalA, totalB)
}

func spreadRectPair(g, gb *Grid, r Rect, total, totalB float64) {
	clipped := r.Intersect(g.Region)
	if clipped.Empty() || (total == 0 && (gb == nil || totalB == 0)) {
		return
	}
	// Bin the clipped corners inline with the cell extents hoisted; the
	// expressions match CellOf exactly, so the covered bin range is the
	// same one CellOf would pick.
	cw, ch := g.CellW(), g.CellH()
	ix0 := ClampInt(int(math.Floor((clipped.Xlo-g.Region.Xlo)/cw)), 0, g.NX-1)
	iy0 := ClampInt(int(math.Floor((clipped.Ylo-g.Region.Ylo)/ch)), 0, g.NY-1)
	ix1 := ClampInt(int(math.Floor((math.Nextafter(clipped.Xhi, clipped.Xlo)-g.Region.Xlo)/cw)), 0, g.NX-1)
	iy1 := ClampInt(int(math.Floor((math.Nextafter(clipped.Yhi, clipped.Ylo)-g.Region.Ylo)/ch)), 0, g.NY-1)
	area := clipped.Area()
	if area <= 0 {
		// Degenerate rectangle: deposit at the containing cell.
		if total != 0 {
			g.AddAt(clipped.Center(), total)
		}
		if gb != nil && totalB != 0 {
			gb.AddAt(clipped.Center(), totalB)
		}
		return
	}
	// The cell/rectangle overlap is separable, so the per-cell area is the
	// product of a per-column and a per-row extent. Computing the column
	// extents once per call instead of intersecting a full Rect per cell
	// keeps wide rectangles (net bounding boxes spanning most of the core)
	// cheap. wx*wy below multiplies the same two values W()*H() would, so
	// single-grid deposits are bit-identical to the per-cell Intersect form.
	var wxbuf [64]float64
	wxs := wxbuf[:0]
	if n := ix1 - ix0 + 1; n > len(wxbuf) {
		wxs = make([]float64, 0, n)
	}
	for ix := ix0; ix <= ix1; ix++ {
		xlo := g.Region.Xlo + float64(ix)*cw
		wx := math.Min(xlo+cw, clipped.Xhi) - math.Max(xlo, clipped.Xlo)
		if wx < 0 {
			wx = 0
		}
		wxs = append(wxs, wx)
	}
	// The pair path divides once per call instead of once per bin; it only
	// serves the congestion estimator, which has no bit-exact legacy
	// outputs to preserve. The single-grid path keeps the historical
	// total*ov/area ordering because the power and occupancy maps built
	// through it feed the thermal solver's pinned results.
	kA, kB := total/area, totalB/area
	for iy := iy0; iy <= iy1; iy++ {
		ylo := g.Region.Ylo + float64(iy)*ch
		wy := math.Min(ylo+ch, clipped.Yhi) - math.Max(ylo, clipped.Ylo)
		if wy <= 0 {
			continue
		}
		lo, hi := g.index(ix0, iy), g.index(ix1, iy)+1
		row := g.data[lo:hi]
		if gb == nil {
			for i, wx := range wxs {
				if ov := wx * wy; ov > 0 {
					row[i] += total * ov / area
				}
			}
			continue
		}
		rowB := gb.data[lo:hi]
		for i, wx := range wxs {
			ov := wx * wy
			if ov <= 0 {
				continue
			}
			row[i] += kA * ov
			rowB[i] += kB * ov
		}
	}
}

// Max returns the maximum value in the grid and its cell coordinates.
func (g *Grid) Max() (v float64, ix, iy int) {
	v = math.Inf(-1)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if x := g.At(i, j); x > v {
				v, ix, iy = x, i, j
			}
		}
	}
	return v, ix, iy
}

// Min returns the minimum value in the grid and its cell coordinates.
func (g *Grid) Min() (v float64, ix, iy int) {
	v = math.Inf(1)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if x := g.At(i, j); x < v {
				v, ix, iy = x, i, j
			}
		}
	}
	return v, ix, iy
}

// Sum returns the sum of all cell values.
func (g *Grid) Sum() float64 {
	s := 0.0
	for _, v := range g.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all cell values.
func (g *Grid) Mean() float64 { return g.Sum() / float64(len(g.data)) }

// Percentile returns the p-th percentile (0..100) of the cell values.
func (g *Grid) Percentile(p float64) float64 {
	vals := make([]float64, len(g.data))
	copy(vals, g.data)
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	idx := p / 100 * float64(len(vals)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return vals[lo]
	}
	frac := idx - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// Gradient returns the maximum absolute difference between any two
// 4-neighbouring cells; a simple spatial-gradient figure of merit.
func (g *Grid) Gradient() float64 {
	max := 0.0
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			v := g.At(i, j)
			if i+1 < g.NX {
				if d := math.Abs(v - g.At(i+1, j)); d > max {
					max = d
				}
			}
			if j+1 < g.NY {
				if d := math.Abs(v - g.At(i, j+1)); d > max {
					max = d
				}
			}
		}
	}
	return max
}

// Resample returns a new grid with nx by ny cells covering the same region,
// where each target cell receives the area-weighted average of the source.
func (g *Grid) Resample(nx, ny int) *Grid {
	out := NewGrid(nx, ny, g.Region)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			cell := out.CellRect(i, j)
			total, area := 0.0, 0.0
			// Find overlapping source cells.
			sx0, sy0 := g.CellOf(Point{cell.Xlo, cell.Ylo})
			sx1, sy1 := g.CellOf(Point{math.Nextafter(cell.Xhi, cell.Xlo), math.Nextafter(cell.Yhi, cell.Ylo)})
			for sy := sy0; sy <= sy1; sy++ {
				for sx := sx0; sx <= sx1; sx++ {
					ov := g.CellRect(sx, sy).Intersect(cell).Area()
					total += g.At(sx, sy) * ov
					area += ov
				}
			}
			if area > 0 {
				out.Set(i, j, total/area)
			}
		}
	}
	return out
}

// Scale multiplies every cell by k and returns the grid for chaining.
func (g *Grid) Scale(k float64) *Grid {
	for i := range g.data {
		g.data[i] *= k
	}
	return g
}

// AddGrid accumulates other into g cell-by-cell; the two grids must have the
// same dimensions.
func (g *Grid) AddGrid(other *Grid) {
	if g.NX != other.NX || g.NY != other.NY {
		panic("geom: AddGrid dimension mismatch")
	}
	for i := range g.data {
		g.data[i] += other.data[i]
	}
}

// String renders the grid as a whitespace-separated matrix with the
// top row (largest y) first, matching the orientation of the paper's plots.
func (g *Grid) String() string {
	var b strings.Builder
	for j := g.NY - 1; j >= 0; j-- {
		for i := 0; i < g.NX; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", g.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCIIHeatmap renders a coarse character heat-map of the grid using the
// provided palette (from coldest to hottest); handy for terminal inspection.
func (g *Grid) ASCIIHeatmap() string {
	palette := []byte(" .:-=+*#%@")
	lo, _, _ := g.Min()
	hi, _, _ := g.Max()
	span := hi - lo
	var b strings.Builder
	for j := g.NY - 1; j >= 0; j-- {
		for i := 0; i < g.NX; i++ {
			idx := 0
			if span > 0 {
				idx = int((g.At(i, j) - lo) / span * float64(len(palette)-1))
			}
			b.WriteByte(palette[ClampInt(idx, 0, len(palette)-1)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
