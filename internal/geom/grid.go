package geom

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Grid is a dense 2-D field of float64 values laid over a physical region.
// It is used for power-density maps, thermal maps and congestion maps.
// Cell (0,0) is the lower-left cell of the region.
type Grid struct {
	NX, NY int  // number of cells in x and y
	Region Rect // physical region covered by the grid
	data   []float64
}

// NewGrid creates an all-zero grid of nx by ny cells covering region.
// It panics when nx or ny is not positive or the region is empty,
// because every caller constructs grids from validated configuration.
func NewGrid(nx, ny int, region Rect) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("geom: invalid grid size %dx%d", nx, ny))
	}
	if region.Empty() {
		panic("geom: empty grid region")
	}
	return &Grid{NX: nx, NY: ny, Region: region, data: make([]float64, nx*ny)}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{NX: g.NX, NY: g.NY, Region: g.Region, data: make([]float64, len(g.data))}
	copy(out.data, g.data)
	return out
}

// CellW returns the physical width of one grid cell.
func (g *Grid) CellW() float64 { return g.Region.W() / float64(g.NX) }

// CellH returns the physical height of one grid cell.
func (g *Grid) CellH() float64 { return g.Region.H() / float64(g.NY) }

// CellArea returns the physical area of one grid cell.
func (g *Grid) CellArea() float64 { return g.CellW() * g.CellH() }

// index converts (ix, iy) to a linear index; it panics on out-of-range
// coordinates since those always indicate a programming error.
func (g *Grid) index(ix, iy int) int {
	if ix < 0 || ix >= g.NX || iy < 0 || iy >= g.NY {
		panic(fmt.Sprintf("geom: grid index (%d,%d) out of range %dx%d", ix, iy, g.NX, g.NY))
	}
	return iy*g.NX + ix
}

// At returns the value stored at cell (ix, iy).
func (g *Grid) At(ix, iy int) float64 { return g.data[g.index(ix, iy)] }

// Set stores v at cell (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) { g.data[g.index(ix, iy)] = v }

// Add accumulates v into cell (ix, iy).
func (g *Grid) Add(ix, iy int, v float64) { g.data[g.index(ix, iy)] += v }

// Fill sets every cell to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Values returns the underlying storage in row-major order (y-major:
// index = iy*NX + ix). The caller must not resize it.
func (g *Grid) Values() []float64 { return g.data }

// CellOf returns the grid coordinates of the cell containing physical point
// p, clamped to the grid boundary.
func (g *Grid) CellOf(p Point) (ix, iy int) {
	ix = int(math.Floor((p.X - g.Region.Xlo) / g.CellW()))
	iy = int(math.Floor((p.Y - g.Region.Ylo) / g.CellH()))
	return ClampInt(ix, 0, g.NX-1), ClampInt(iy, 0, g.NY-1)
}

// CellRect returns the physical rectangle covered by cell (ix, iy).
func (g *Grid) CellRect(ix, iy int) Rect {
	w, h := g.CellW(), g.CellH()
	x := g.Region.Xlo + float64(ix)*w
	y := g.Region.Ylo + float64(iy)*h
	return Rect{x, y, x + w, y + h}
}

// CellCenter returns the physical centre of cell (ix, iy).
func (g *Grid) CellCenter(ix, iy int) Point { return g.CellRect(ix, iy).Center() }

// AddAt accumulates v into the cell containing physical point p.
func (g *Grid) AddAt(p Point, v float64) {
	ix, iy := g.CellOf(p)
	g.Add(ix, iy, v)
}

// SpreadRect distributes total over all grid cells overlapped by r,
// proportionally to the overlap area. Rectangles completely outside the
// grid region contribute nothing.
func (g *Grid) SpreadRect(r Rect, total float64) {
	clipped := r.Intersect(g.Region)
	if clipped.Empty() || total == 0 {
		return
	}
	ix0, iy0 := g.CellOf(Point{clipped.Xlo, clipped.Ylo})
	ix1, iy1 := g.CellOf(Point{math.Nextafter(clipped.Xhi, clipped.Xlo), math.Nextafter(clipped.Yhi, clipped.Ylo)})
	area := clipped.Area()
	if area <= 0 {
		// Degenerate rectangle: deposit at the containing cell.
		g.AddAt(clipped.Center(), total)
		return
	}
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			ov := g.CellRect(ix, iy).Intersect(clipped).Area()
			if ov > 0 {
				g.Add(ix, iy, total*ov/area)
			}
		}
	}
}

// Max returns the maximum value in the grid and its cell coordinates.
func (g *Grid) Max() (v float64, ix, iy int) {
	v = math.Inf(-1)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if x := g.At(i, j); x > v {
				v, ix, iy = x, i, j
			}
		}
	}
	return v, ix, iy
}

// Min returns the minimum value in the grid and its cell coordinates.
func (g *Grid) Min() (v float64, ix, iy int) {
	v = math.Inf(1)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if x := g.At(i, j); x < v {
				v, ix, iy = x, i, j
			}
		}
	}
	return v, ix, iy
}

// Sum returns the sum of all cell values.
func (g *Grid) Sum() float64 {
	s := 0.0
	for _, v := range g.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all cell values.
func (g *Grid) Mean() float64 { return g.Sum() / float64(len(g.data)) }

// Percentile returns the p-th percentile (0..100) of the cell values.
func (g *Grid) Percentile(p float64) float64 {
	vals := make([]float64, len(g.data))
	copy(vals, g.data)
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	idx := p / 100 * float64(len(vals)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return vals[lo]
	}
	frac := idx - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// Gradient returns the maximum absolute difference between any two
// 4-neighbouring cells; a simple spatial-gradient figure of merit.
func (g *Grid) Gradient() float64 {
	max := 0.0
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			v := g.At(i, j)
			if i+1 < g.NX {
				if d := math.Abs(v - g.At(i+1, j)); d > max {
					max = d
				}
			}
			if j+1 < g.NY {
				if d := math.Abs(v - g.At(i, j+1)); d > max {
					max = d
				}
			}
		}
	}
	return max
}

// Resample returns a new grid with nx by ny cells covering the same region,
// where each target cell receives the area-weighted average of the source.
func (g *Grid) Resample(nx, ny int) *Grid {
	out := NewGrid(nx, ny, g.Region)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			cell := out.CellRect(i, j)
			total, area := 0.0, 0.0
			// Find overlapping source cells.
			sx0, sy0 := g.CellOf(Point{cell.Xlo, cell.Ylo})
			sx1, sy1 := g.CellOf(Point{math.Nextafter(cell.Xhi, cell.Xlo), math.Nextafter(cell.Yhi, cell.Ylo)})
			for sy := sy0; sy <= sy1; sy++ {
				for sx := sx0; sx <= sx1; sx++ {
					ov := g.CellRect(sx, sy).Intersect(cell).Area()
					total += g.At(sx, sy) * ov
					area += ov
				}
			}
			if area > 0 {
				out.Set(i, j, total/area)
			}
		}
	}
	return out
}

// Scale multiplies every cell by k and returns the grid for chaining.
func (g *Grid) Scale(k float64) *Grid {
	for i := range g.data {
		g.data[i] *= k
	}
	return g
}

// AddGrid accumulates other into g cell-by-cell; the two grids must have the
// same dimensions.
func (g *Grid) AddGrid(other *Grid) {
	if g.NX != other.NX || g.NY != other.NY {
		panic("geom: AddGrid dimension mismatch")
	}
	for i := range g.data {
		g.data[i] += other.data[i]
	}
}

// String renders the grid as a whitespace-separated matrix with the
// top row (largest y) first, matching the orientation of the paper's plots.
func (g *Grid) String() string {
	var b strings.Builder
	for j := g.NY - 1; j >= 0; j-- {
		for i := 0; i < g.NX; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", g.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCIIHeatmap renders a coarse character heat-map of the grid using the
// provided palette (from coldest to hottest); handy for terminal inspection.
func (g *Grid) ASCIIHeatmap() string {
	palette := []byte(" .:-=+*#%@")
	lo, _, _ := g.Min()
	hi, _, _ := g.Max()
	span := hi - lo
	var b strings.Builder
	for j := g.NY - 1; j >= 0; j-- {
		for i := 0; i < g.NX; i++ {
			idx := 0
			if span > 0 {
				idx = int((g.At(i, j) - lo) / span * float64(len(palette)-1))
			}
			b.WriteByte(palette[ClampInt(idx, 0, len(palette)-1)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
