package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v, want (4,1)", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v, want (-2,3)", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := p.Dist(q); !almostEqual(got, math.Sqrt(13), 1e-12) {
		t.Errorf("Dist = %v, want sqrt(13)", got)
	}
	if got := p.Manhattan(q); got != 5 {
		t.Errorf("Manhattan = %v, want 5", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 10, 4}
	if r.W() != 10 || r.H() != 4 || r.Area() != 40 {
		t.Fatalf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Fatal("rect should not be empty")
	}
	if (Rect{3, 3, 3, 9}).Area() != 0 {
		t.Fatal("degenerate rect must have zero area")
	}
	if c := r.Center(); c != (Point{5, 2}) {
		t.Fatalf("Center = %v", c)
	}
	if !r.Contains(Point{0, 0}) || r.Contains(Point{10, 4}) {
		t.Fatal("Contains must be lower-inclusive, upper-exclusive")
	}
	if !r.ContainsClosed(Point{10, 4}) {
		t.Fatal("ContainsClosed must include the upper corner")
	}
	if r.HalfPerimeter() != 14 {
		t.Fatalf("HalfPerimeter = %v", r.HalfPerimeter())
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	c := Rect{20, 20, 30, 30}

	if !a.Intersects(b) {
		t.Fatal("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a and c should not intersect")
	}
	in := a.Intersect(b)
	if in != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersect = %v", in)
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersection must be empty")
	}
	un := a.Union(b)
	if un != (Rect{0, 0, 15, 15}) {
		t.Fatalf("Union = %v", un)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Fatalf("empty union identity failed: %v", got)
	}
}

func TestRectExpandTranslate(t *testing.T) {
	r := Rect{2, 2, 4, 4}
	if got := r.Expand(1); got != (Rect{1, 1, 5, 5}) {
		t.Fatalf("Expand = %v", got)
	}
	if got := r.Translate(3, -2); got != (Rect{5, 0, 7, 2}) {
		t.Fatalf("Translate = %v", got)
	}
	if got := r.ExpandToInclude(Point{10, 0}); got != (Rect{2, 0, 10, 4}) {
		t.Fatalf("ExpandToInclude = %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	if !BoundingBox(nil).Empty() {
		t.Fatal("bounding box of no points must be empty")
	}
	bb := BoundingBox([]Point{{1, 1}, {4, -2}, {0, 3}})
	if bb != (Rect{0, -2, 4, 3}) {
		t.Fatalf("BoundingBox = %v", bb)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp failed")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Fatal("ClampInt failed")
	}
}

// Property: intersection area is never larger than either operand's area,
// and union always contains both operands.
func TestRectIntersectUnionProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		// Keep coordinates in a sane range to avoid inf/NaN artefacts.
		norm := func(v float64) float64 { return math.Mod(v, 1000) }
		a := NewRect(norm(x1), norm(y1), norm(x2), norm(y2))
		b := NewRect(norm(x3), norm(y3), norm(x4), norm(y4))
		in := a.Intersect(b)
		un := a.Union(b)
		if in.Area() > a.Area()+1e-9 || in.Area() > b.Area()+1e-9 {
			return false
		}
		if un.Area()+1e-9 < a.Area() || un.Area()+1e-9 < b.Area() {
			return false
		}
		// The intersection must be contained in the union.
		if !in.Empty() && un.Intersect(in) != in {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Manhattan distance >= Euclidean distance and both are symmetric.
func TestDistanceProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		norm := func(v float64) float64 { return math.Mod(v, 1e6) }
		p := Point{norm(ax), norm(ay)}
		q := Point{norm(bx), norm(by)}
		if p.Manhattan(q)+1e-9 < p.Dist(q) {
			return false
		}
		return almostEqual(p.Dist(q), q.Dist(p), 1e-9) && almostEqual(p.Manhattan(q), q.Manhattan(p), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
