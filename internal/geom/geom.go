// Package geom provides the low-level geometric primitives used throughout
// the placement and thermal-analysis code: integer/float points, rectangles,
// dense 2-D scalar grids and a few small statistics helpers.
//
// All physical coordinates are expressed in micrometres (um) as float64;
// discrete grid coordinates are plain ints.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point in micrometres.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Manhattan returns the Manhattan (L1) distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with inclusive lower-left corner and
// exclusive upper-right corner, in micrometres. A Rect with Xhi <= Xlo or
// Yhi <= Ylo is considered empty.
type Rect struct {
	Xlo, Ylo, Xhi, Yhi float64
}

// NewRect builds a rectangle from two opposite corners in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

// W returns the width of the rectangle (0 if empty).
func (r Rect) W() float64 {
	if r.Xhi <= r.Xlo {
		return 0
	}
	return r.Xhi - r.Xlo
}

// H returns the height of the rectangle (0 if empty).
func (r Rect) H() float64 {
	if r.Yhi <= r.Ylo {
		return 0
	}
	return r.Yhi - r.Ylo
}

// Area returns the area of the rectangle in um^2.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.Xhi <= r.Xlo || r.Yhi <= r.Ylo }

// Center returns the centre point of the rectangle.
func (r Rect) Center() Point { return Point{(r.Xlo + r.Xhi) / 2, (r.Ylo + r.Yhi) / 2} }

// Contains reports whether p lies inside the rectangle (lower/left edges
// inclusive, upper/right edges exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Xlo && p.X < r.Xhi && p.Y >= r.Ylo && p.Y < r.Yhi
}

// ContainsClosed reports whether p lies inside the closed rectangle
// (all edges inclusive).
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Xlo && p.X <= r.Xhi && p.Y >= r.Ylo && p.Y <= r.Yhi
}

// Intersects reports whether r and s overlap with non-zero area.
func (r Rect) Intersects(s Rect) bool {
	return r.Xlo < s.Xhi && s.Xlo < r.Xhi && r.Ylo < s.Yhi && s.Ylo < r.Yhi
}

// Intersect returns the overlapping region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		math.Max(r.Xlo, s.Xlo), math.Max(r.Ylo, s.Ylo),
		math.Min(r.Xhi, s.Xhi), math.Min(r.Yhi, s.Yhi),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and s. An empty rectangle acts as the
// identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		math.Min(r.Xlo, s.Xlo), math.Min(r.Ylo, s.Ylo),
		math.Max(r.Xhi, s.Xhi), math.Max(r.Yhi, s.Yhi),
	}
}

// Expand grows the rectangle by d on every side. A negative d shrinks it.
func (r Rect) Expand(d float64) Rect {
	return Rect{r.Xlo - d, r.Ylo - d, r.Xhi + d, r.Yhi + d}
}

// Translate moves the rectangle by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.Xlo + dx, r.Ylo + dy, r.Xhi + dx, r.Yhi + dy}
}

// ExpandToInclude grows the rectangle so that it contains p.
func (r Rect) ExpandToInclude(p Point) Rect {
	if r.Empty() {
		return Rect{p.X, p.Y, p.X, p.Y}
	}
	return Rect{
		math.Min(r.Xlo, p.X), math.Min(r.Ylo, p.Y),
		math.Max(r.Xhi, p.X), math.Max(r.Yhi, p.Y),
	}
}

// HalfPerimeter returns the half-perimeter wirelength of the rectangle,
// the usual HPWL net-length estimate.
func (r Rect) HalfPerimeter() float64 { return r.W() + r.H() }

func (r Rect) String() string {
	return fmt.Sprintf("[%.3f %.3f %.3f %.3f]", r.Xlo, r.Ylo, r.Xhi, r.Yhi)
}

// BoundingBox returns the smallest rectangle containing all points.
// It returns an empty Rect when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r = Rect{
			math.Min(r.Xlo, p.X), math.Min(r.Ylo, p.Y),
			math.Max(r.Xhi, p.X), math.Max(r.Yhi, p.Y),
		}
	}
	return r
}

// Clamp restricts v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt restricts v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
