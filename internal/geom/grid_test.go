package geom

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testGrid() *Grid { return NewGrid(4, 4, Rect{0, 0, 40, 40}) }

func TestNewGridValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-sized grid")
		}
	}()
	NewGrid(0, 4, Rect{0, 0, 1, 1})
}

func TestNewGridEmptyRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty region")
		}
	}()
	NewGrid(4, 4, Rect{})
}

func TestGridSetGet(t *testing.T) {
	g := testGrid()
	g.Set(1, 2, 3.5)
	if g.At(1, 2) != 3.5 {
		t.Fatalf("At = %v", g.At(1, 2))
	}
	g.Add(1, 2, 1.5)
	if g.At(1, 2) != 5 {
		t.Fatalf("Add result = %v", g.At(1, 2))
	}
	if g.CellW() != 10 || g.CellH() != 10 || g.CellArea() != 100 {
		t.Fatalf("cell dims = %v x %v", g.CellW(), g.CellH())
	}
}

func TestGridCellOfClamps(t *testing.T) {
	g := testGrid()
	ix, iy := g.CellOf(Point{-5, 45})
	if ix != 0 || iy != 3 {
		t.Fatalf("CellOf out-of-range = (%d,%d)", ix, iy)
	}
	ix, iy = g.CellOf(Point{15, 25})
	if ix != 1 || iy != 2 {
		t.Fatalf("CellOf = (%d,%d)", ix, iy)
	}
}

func TestGridCellRectAndCenter(t *testing.T) {
	g := testGrid()
	r := g.CellRect(2, 1)
	if r != (Rect{20, 10, 30, 20}) {
		t.Fatalf("CellRect = %v", r)
	}
	if c := g.CellCenter(2, 1); c != (Point{25, 15}) {
		t.Fatalf("CellCenter = %v", c)
	}
}

func TestSpreadRectConservesTotal(t *testing.T) {
	g := testGrid()
	g.SpreadRect(Rect{5, 5, 25, 15}, 8.0)
	if !almostEqual(g.Sum(), 8.0, 1e-9) {
		t.Fatalf("Sum = %v, want 8", g.Sum())
	}
	// The rectangle covers cells (0,0),(1,0),(2,0),(0,1),(1,1),(2,1) with
	// different overlap fractions; check one exactly: cell (1,0) overlap is
	// 10x5=50 of total 200 -> 2.0.
	if !almostEqual(g.At(1, 0), 2.0, 1e-9) {
		t.Fatalf("At(1,0) = %v, want 2", g.At(1, 0))
	}
}

func TestSpreadRectOutsideRegion(t *testing.T) {
	g := testGrid()
	g.SpreadRect(Rect{100, 100, 110, 110}, 5)
	if g.Sum() != 0 {
		t.Fatalf("outside rect should contribute nothing, sum=%v", g.Sum())
	}
}

func TestGridStats(t *testing.T) {
	g := testGrid()
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.Set(i, j, float64(i+4*j))
		}
	}
	if max, ix, iy := g.Max(); max != 15 || ix != 3 || iy != 3 {
		t.Fatalf("Max = %v at (%d,%d)", max, ix, iy)
	}
	if min, ix, iy := g.Min(); min != 0 || ix != 0 || iy != 0 {
		t.Fatalf("Min = %v at (%d,%d)", min, ix, iy)
	}
	if g.Sum() != 120 {
		t.Fatalf("Sum = %v", g.Sum())
	}
	if g.Mean() != 7.5 {
		t.Fatalf("Mean = %v", g.Mean())
	}
	if p := g.Percentile(0); p != 0 {
		t.Fatalf("P0 = %v", p)
	}
	if p := g.Percentile(100); p != 15 {
		t.Fatalf("P100 = %v", p)
	}
	if p := g.Percentile(50); !almostEqual(p, 7.5, 1e-9) {
		t.Fatalf("P50 = %v", p)
	}
	// Gradient: max neighbour difference is 4 (vertical step).
	if gr := g.Gradient(); gr != 4 {
		t.Fatalf("Gradient = %v", gr)
	}
}

func TestGridCloneIndependence(t *testing.T) {
	g := testGrid()
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original data")
	}
}

func TestGridScaleAndAddGrid(t *testing.T) {
	g := testGrid()
	g.Fill(2)
	g.Scale(3)
	if g.At(1, 1) != 6 {
		t.Fatalf("Scale result = %v", g.At(1, 1))
	}
	h := testGrid()
	h.Fill(1)
	g.AddGrid(h)
	if g.At(2, 2) != 7 {
		t.Fatalf("AddGrid result = %v", g.At(2, 2))
	}
}

func TestGridAddGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	testGrid().AddGrid(NewGrid(2, 2, Rect{0, 0, 1, 1}))
}

func TestGridResample(t *testing.T) {
	g := testGrid()
	g.Fill(3)
	r := g.Resample(2, 2)
	if r.NX != 2 || r.NY != 2 {
		t.Fatalf("resampled dims = %dx%d", r.NX, r.NY)
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			if !almostEqual(r.At(i, j), 3, 1e-9) {
				t.Fatalf("resampled value = %v", r.At(i, j))
			}
		}
	}
	// Upsampling a constant field stays constant too.
	u := g.Resample(8, 8)
	if !almostEqual(u.At(7, 7), 3, 1e-9) {
		t.Fatalf("upsampled value = %v", u.At(7, 7))
	}
}

func TestGridStringOrientation(t *testing.T) {
	g := NewGrid(2, 2, Rect{0, 0, 2, 2})
	g.Set(0, 1, 7) // top-left in printed output
	s := g.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "7") {
		t.Fatalf("top row should start with 7: %q", lines[0])
	}
}

func TestASCIIHeatmap(t *testing.T) {
	g := NewGrid(3, 3, Rect{0, 0, 3, 3})
	g.Set(1, 1, 10)
	hm := g.ASCIIHeatmap()
	if !strings.Contains(hm, "@") {
		t.Fatalf("heatmap should contain hottest glyph: %q", hm)
	}
	lines := strings.Split(strings.TrimSuffix(hm, "\n"), "\n")
	if len(lines) != 3 || len(lines[0]) != 3 {
		t.Fatalf("heatmap shape wrong: %q", hm)
	}
}

// Property: SpreadRect conserves the deposited total for rectangles inside
// the grid region, regardless of alignment.
func TestSpreadRectConservationProperty(t *testing.T) {
	f := func(x, y, w, h, total float64) bool {
		g := NewGrid(8, 8, Rect{0, 0, 80, 80})
		rx := math.Mod(math.Abs(x), 60)
		ry := math.Mod(math.Abs(y), 60)
		rw := 1 + math.Mod(math.Abs(w), 20)
		rh := 1 + math.Mod(math.Abs(h), 20)
		tv := math.Mod(math.Abs(total), 1000)
		g.SpreadRect(Rect{rx, ry, rx + rw, ry + rh}, tv)
		return almostEqual(g.Sum(), tv, 1e-6*math.Max(1, tv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: resampling conserves the mean of a field (area-weighted average),
// for divisor resolutions.
func TestResampleMeanProperty(t *testing.T) {
	f := func(seed uint8) bool {
		g := NewGrid(8, 8, Rect{0, 0, 80, 80})
		v := float64(seed)
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				g.Set(i, j, v+float64(i*j))
			}
		}
		r := g.Resample(4, 4)
		return almostEqual(r.Mean(), g.Mean(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadRectPairMatchesTwoCalls(t *testing.T) {
	// Irregular region and resolutions so cell boundaries are not round
	// numbers; the pair call hoists the per-bin division, so it must agree
	// with two independent SpreadRect calls to within one rounding.
	region := Rect{1.3, -2.7, 97.1, 55.9}
	rects := []Rect{
		{5, 5, 80, 50},          // wide, many cells
		{10.01, 3.3, 10.02, 40}, // sliver column
		{-50, -50, 3, 1},        // partially outside
		{200, 200, 210, 210},    // fully outside
		{12, 12, 12, 12},        // degenerate point
	}
	ga := NewGrid(7, 5, region)
	gb := NewGrid(7, 5, region)
	wa := NewGrid(7, 5, region)
	wb := NewGrid(7, 5, region)
	for i, r := range rects {
		ta := 1.7 * float64(i+1)
		tb := 0.3 * float64(i)
		SpreadRectPair(ga, gb, r, ta, tb)
		wa.SpreadRect(r, ta)
		wb.SpreadRect(r, tb)
	}
	for i, v := range ga.Values() {
		if !almostEqual(v, wa.Values()[i], 1e-12) {
			t.Fatalf("grid A bin %d: pair=%v single=%v", i, v, wa.Values()[i])
		}
	}
	for i, v := range gb.Values() {
		if !almostEqual(v, wb.Values()[i], 1e-12) {
			t.Fatalf("grid B bin %d: pair=%v single=%v", i, v, wb.Values()[i])
		}
	}
}

func TestSpreadRectPairGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched grid geometry")
		}
	}()
	SpreadRectPair(testGrid(), NewGrid(5, 4, Rect{0, 0, 40, 40}), Rect{1, 1, 2, 2}, 1, 1)
}
