package spice

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// voltageDivider builds V=10 -> R1=1k -> mid -> R2=3k -> ground.
// Expected: v(mid) = 10 * 3k/(1k+3k) = 7.5.
func voltageDivider(t *testing.T) *Circuit {
	t.Helper()
	c := NewCircuit()
	if err := c.AddVoltageSource("src", "top", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("1", "top", "mid", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("2", "mid", "0", 3000); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVoltageDividerAllMethods(t *testing.T) {
	for _, m := range []Method{MethodCG, MethodGaussSeidel, MethodDense} {
		c := voltageDivider(t)
		sol, err := c.Solve(SolveOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !almostEqual(sol.Voltages["mid"], 7.5, 1e-6) {
			t.Errorf("%v: v(mid) = %g, want 7.5", m, sol.Voltages["mid"])
		}
		if sol.Voltages["top"] != 10 || sol.Voltages["0"] != 0 {
			t.Errorf("%v: fixed node voltages wrong: %v", m, sol.Voltages)
		}
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	// 1 mA into node n through 2 kOhm to ground: v(n) = 2 V.
	c := NewCircuit()
	if err := c.AddCurrentSource("in", "0", "n", 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("g", "n", "0", 2000); err != nil {
		t.Fatal(err)
	}
	sol, err := c.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Voltages["n"], 2.0, 1e-9) {
		t.Fatalf("v(n) = %g, want 2", sol.Voltages["n"])
	}
}

func TestWheatstoneBridge(t *testing.T) {
	// Balanced bridge: equal arms, the bridge resistor carries no current so
	// both mid nodes sit at half the source voltage.
	c := NewCircuit()
	mustV := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustV(c.AddVoltageSource("s", "vin", 8))
	mustV(c.AddResistor("a1", "vin", "l", 100))
	mustV(c.AddResistor("a2", "l", "0", 100))
	mustV(c.AddResistor("b1", "vin", "r", 200))
	mustV(c.AddResistor("b2", "r", "0", 200))
	mustV(c.AddResistor("bridge", "l", "r", 50))
	sol, err := c.Solve(SolveOptions{Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Voltages["l"], 4, 1e-9) || !almostEqual(sol.Voltages["r"], 4, 1e-9) {
		t.Fatalf("bridge voltages %g / %g, want 4 / 4", sol.Voltages["l"], sol.Voltages["r"])
	}
}

func TestSolversAgreeOnGridNetwork(t *testing.T) {
	// A small 2-D resistor grid with a few sources; all three solvers must
	// agree on the node voltages.
	build := func() *Circuit {
		c := NewCircuit()
		n := 6
		name := func(i, j int) string { return fmt.Sprintf("n%d_%d", i, j) }
		rCount := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i+1 < n {
					rCount++
					_ = c.AddResistor(fmt.Sprintf("h%d", rCount), name(i, j), name(i+1, j), 10)
				}
				if j+1 < n {
					rCount++
					_ = c.AddResistor(fmt.Sprintf("v%d", rCount), name(i, j), name(i, j+1), 10)
				}
			}
		}
		// Boundary ties to a 25 V reference (ambient) on the four corners.
		for k, corner := range []string{name(0, 0), name(0, n-1), name(n-1, 0), name(n-1, n-1)} {
			_ = c.AddResistor(fmt.Sprintf("amb%d", k), corner, "amb", 5)
		}
		_ = c.AddVoltageSource("vamb", "amb", 25)
		_ = c.AddCurrentSource("p1", "0", name(2, 2), 0.5)
		_ = c.AddCurrentSource("p2", "0", name(3, 4), 0.25)
		return c
	}
	ref, err := build().Solve(SolveOptions{Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodCG, MethodGaussSeidel} {
		sol, err := build().Solve(SolveOptions{Method: m, Tolerance: 1e-11})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for node, want := range ref.Voltages {
			if !almostEqual(sol.Voltages[node], want, 1e-5*math.Max(1, math.Abs(want))) {
				t.Fatalf("%v: node %s = %g, dense reference %g", m, node, sol.Voltages[node], want)
			}
		}
		if sol.Iterations <= 0 {
			t.Errorf("%v: expected iterative work, got %d iterations", m, sol.Iterations)
		}
	}
}

func TestSuperpositionProperty(t *testing.T) {
	// Property: for a fixed resistive network, node voltages are linear in
	// the injected currents (superposition).
	build := func(i1, i2 float64) map[string]float64 {
		c := NewCircuit()
		_ = c.AddResistor("a", "x", "0", 100)
		_ = c.AddResistor("b", "x", "y", 50)
		_ = c.AddResistor("c", "y", "0", 200)
		_ = c.AddCurrentSource("s1", "0", "x", i1)
		_ = c.AddCurrentSource("s2", "0", "y", i2)
		sol, err := c.Solve(SolveOptions{Method: MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		return sol.Voltages
	}
	f := func(a, b uint8) bool {
		i1 := float64(a) / 100
		i2 := float64(b) / 100
		v1 := build(i1, 0)
		v2 := build(0, i2)
		v12 := build(i1, i2)
		for _, node := range []string{"x", "y"} {
			if !almostEqual(v12[node], v1[node]+v2[node], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitValidation(t *testing.T) {
	c := NewCircuit()
	if err := c.AddResistor("r1", "a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("r1", "a", "c", 10); err == nil {
		t.Error("duplicate element name must fail")
	}
	if err := c.AddResistor("bad", "a", "a", 10); err == nil {
		t.Error("self-loop resistor must fail")
	}
	if err := c.AddResistor("neg", "a", "c", -5); err == nil {
		t.Error("negative resistance must fail")
	}
	if err := c.AddVoltageSource("vg", "0", 5); err == nil {
		t.Error("voltage source on ground must fail")
	}
	if err := c.AddResistor("", "a", "c", 5); err == nil {
		t.Error("empty element name must fail")
	}
}

func TestFloatingNodeRejected(t *testing.T) {
	c := NewCircuit()
	_ = c.AddResistor("r1", "a", "b", 10)
	_ = c.AddCurrentSource("i1", "0", "a", 1)
	// Neither a nor b has a path to ground or a voltage source.
	if _, err := c.Solve(SolveOptions{}); err == nil {
		t.Fatal("floating subnetwork must be rejected")
	}
}

func TestConflictingVoltageSources(t *testing.T) {
	c := NewCircuit()
	_ = c.AddVoltageSource("v1", "a", 5)
	_ = c.AddVoltageSource("v2", "a", 7)
	_ = c.AddResistor("r", "a", "0", 10)
	if _, err := c.Solve(SolveOptions{}); err == nil {
		t.Fatal("conflicting voltage sources on one node must be rejected")
	}
}

func TestOnlyKnownNodes(t *testing.T) {
	// A circuit with no unknowns (source directly across a resistor).
	c := NewCircuit()
	_ = c.AddVoltageSource("v", "a", 3)
	_ = c.AddResistor("r", "a", "0", 10)
	sol, err := c.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Voltages["a"] != 3 {
		t.Fatalf("v(a) = %g", sol.Voltages["a"])
	}
}

func TestDenseRefusesHugeSystems(t *testing.T) {
	c := NewCircuit()
	prev := "0"
	for i := 0; i < 6100; i++ {
		node := fmt.Sprintf("n%d", i)
		_ = c.AddResistor(fmt.Sprintf("r%d", i), prev, node, 1)
		prev = node
	}
	_ = c.AddCurrentSource("i", "0", prev, 1)
	if _, err := c.Solve(SolveOptions{Method: MethodDense}); err == nil {
		t.Fatal("dense solver must refuse very large systems")
	}
}

func TestAccessors(t *testing.T) {
	c := voltageDivider(t)
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.NumElements() != 3 {
		t.Fatalf("NumElements = %d", c.NumElements())
	}
	if len(c.Resistors()) != 2 || len(c.VoltageSources()) != 1 || len(c.CurrentSources()) != 0 {
		t.Fatal("element accessors wrong")
	}
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0] != "0" {
		t.Fatalf("Nodes = %v", nodes)
	}
	for _, m := range []Method{MethodCG, MethodGaussSeidel, MethodDense, Method(99)} {
		if m.String() == "" {
			t.Error("empty method string")
		}
	}
}

func TestDeckRoundTrip(t *testing.T) {
	c := voltageDivider(t)
	if err := c.AddCurrentSource("inj", "0", "mid", 0.001); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteDeck(&buf, c, "divider test"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "* divider test") || !strings.Contains(text, ".end") {
		t.Fatalf("deck missing header/footer:\n%s", text)
	}
	parsed, err := ParseDeck(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumElements() != c.NumElements() || parsed.NumNodes() != c.NumNodes() {
		t.Fatalf("round trip changed structure: %d/%d elements", parsed.NumElements(), c.NumElements())
	}
	want, err := c.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := parsed.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for node, v := range want.Voltages {
		if !almostEqual(got.Voltages[node], v, 1e-9) {
			t.Fatalf("node %s: %g != %g after round trip", node, got.Voltages[node], v)
		}
	}
}

func TestParseDeckErrors(t *testing.T) {
	cases := []struct {
		name string
		deck string
	}{
		{"bad fields", "R1 a b\n.end\n"},
		{"bad value", "R1 a b xyz\n.end\n"},
		{"unknown card", "Q1 a b 5\n.end\n"},
		{"short name", "R a b 5\n.end\n"},
		{"vsource not to ground", "V1 a b 5\n.end\n"},
		{"negative resistor", "R1 a b -5\n.end\n"},
	}
	for _, c := range cases {
		if _, err := ParseDeck(strings.NewReader(c.deck)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseDeckSkipsCommentsAndBlankLines(t *testing.T) {
	deck := `* title comment

* another comment
Rload n1 0 100
Vsup n1 0 5
.end
`
	c, err := ParseDeck(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumElements() != 2 {
		t.Fatalf("NumElements = %d", c.NumElements())
	}
}
