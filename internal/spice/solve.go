package spice

import (
	"fmt"
	"math"
	"sort"
)

// Method selects the linear solver used for the nodal equations.
type Method int

const (
	// MethodCG is Jacobi-preconditioned conjugate gradients; the default and
	// the right choice for the large sparse symmetric systems produced by
	// the 3-D thermal grid.
	MethodCG Method = iota
	// MethodGaussSeidel is plain Gauss-Seidel relaxation.
	MethodGaussSeidel
	// MethodDense is dense Cholesky factorization; only sensible for small
	// circuits (a few thousand nodes) and for cross-checking the iterative
	// solvers.
	MethodDense
)

func (m Method) String() string {
	switch m {
	case MethodCG:
		return "cg"
	case MethodGaussSeidel:
		return "gauss-seidel"
	case MethodDense:
		return "dense-cholesky"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SolveOptions tunes the solver.
type SolveOptions struct {
	Method Method
	// Tolerance is the relative residual at which iterative methods stop.
	// Zero means the default of 1e-9.
	Tolerance float64
	// MaxIterations bounds iterative methods. Zero means 10 * number of
	// unknowns (CG) or 20 * number of unknowns (Gauss-Seidel).
	MaxIterations int
}

// Solution is the result of solving the circuit.
type Solution struct {
	// Voltages maps every node (including ground and voltage-source nodes)
	// to its solved voltage.
	Voltages map[string]float64
	// Iterations is the number of iterations the solver used (0 for dense).
	Iterations int
	// Residual is the final relative residual of the iterative solve.
	Residual float64
	// Method is the solver that produced the solution.
	Method Method
}

// assembled is the nodal system over the unknown nodes.
type assembled struct {
	idx    map[string]int // unknown node -> index
	order  []string       // index -> node name
	known  map[string]float64
	diag   []float64
	offIdx [][]int32
	offVal [][]float64
	rhs    []float64
}

// Solve computes all node voltages.
func (c *Circuit) Solve(opts SolveOptions) (*Solution, error) {
	sys, err := c.assemble()
	if err != nil {
		return nil, err
	}
	n := len(sys.order)
	sol := &Solution{Voltages: make(map[string]float64, len(c.nodes)), Method: opts.Method}
	for node, v := range sys.known {
		sol.Voltages[node] = v
	}
	if n == 0 {
		return sol, nil
	}

	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	var x []float64
	switch opts.Method {
	case MethodCG:
		maxIter := opts.MaxIterations
		if maxIter <= 0 {
			maxIter = 10 * n
		}
		x, sol.Iterations, sol.Residual, err = solveCG(sys, tol, maxIter)
	case MethodGaussSeidel:
		maxIter := opts.MaxIterations
		if maxIter <= 0 {
			maxIter = 20 * n
		}
		x, sol.Iterations, sol.Residual, err = solveGaussSeidel(sys, tol, maxIter)
	case MethodDense:
		x, err = solveDenseCholesky(sys)
	default:
		err = fmt.Errorf("spice: unknown solve method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	for i, node := range sys.order {
		sol.Voltages[node] = x[i]
	}
	return sol, nil
}

// assemble builds the reduced nodal system. Voltage-source nodes and ground
// are "known"; all other nodes are unknowns. It verifies that every unknown
// node has a resistive path to some known node (otherwise the system is
// singular) and that no node carries two voltage sources.
func (c *Circuit) assemble() (*assembled, error) {
	known := map[string]float64{Ground: 0}
	for _, vs := range c.vsources {
		if prev, ok := known[vs.Node]; ok && prev != vs.Volts {
			return nil, fmt.Errorf("spice: node %q driven to both %g and %g volts", vs.Node, prev, vs.Volts)
		}
		known[vs.Node] = vs.Volts
	}
	sys := &assembled{idx: make(map[string]int, len(c.nodes)), known: known}
	nodes := c.Nodes()
	nodeID := make(map[string]int, len(nodes))
	for id, node := range nodes {
		nodeID[node] = id
		if _, isKnown := known[node]; !isKnown {
			sys.idx[node] = len(sys.order)
			sys.order = append(sys.order, node)
		}
	}
	n := len(sys.order)
	sys.diag = make([]float64, n)
	sys.rhs = make([]float64, n)
	sys.offIdx = make([][]int32, n)
	sys.offVal = make([][]float64, n)

	// Reachability check: every unknown must reach a known node through
	// resistors. The resistor graph is scanned over integer node ids in CSR
	// form; node names are only touched once to build nodeID above.
	total := len(nodes)
	adjPtr := make([]int32, total+1)
	for _, r := range c.resistors {
		adjPtr[nodeID[r.A]+1]++
		adjPtr[nodeID[r.B]+1]++
	}
	for i := 0; i < total; i++ {
		adjPtr[i+1] += adjPtr[i]
	}
	adj := make([]int32, 2*len(c.resistors))
	cursor := make([]int32, total)
	copy(cursor, adjPtr[:total])
	for _, r := range c.resistors {
		a, b := nodeID[r.A], nodeID[r.B]
		adj[cursor[a]] = int32(b)
		cursor[a]++
		adj[cursor[b]] = int32(a)
		cursor[b]++
	}
	reached := make([]bool, total)
	queue := make([]int32, 0, total)
	for node := range known {
		if id, ok := nodeID[node]; ok && !reached[id] {
			reached[id] = true
			queue = append(queue, int32(id))
		}
	}
	// Sort the seeds so the BFS visits nodes in a reproducible order
	// regardless of the map iteration above.
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for k := adjPtr[cur]; k < adjPtr[cur+1]; k++ {
			if nb := adj[k]; !reached[nb] {
				reached[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, node := range sys.order {
		if !reached[nodeID[node]] {
			return nil, fmt.Errorf("spice: node %q has no resistive path to a voltage reference (floating)", node)
		}
	}

	// Pre-size every row's off-diagonal storage so the fill below never
	// reallocates mid-append.
	offCount := make([]int32, n)
	for _, r := range c.resistors {
		ia, aUnknown := sys.idx[r.A]
		ib, bUnknown := sys.idx[r.B]
		if aUnknown && bUnknown {
			offCount[ia]++
			offCount[ib]++
		}
	}
	for i := 0; i < n; i++ {
		if offCount[i] > 0 {
			sys.offIdx[i] = make([]int32, 0, offCount[i])
			sys.offVal[i] = make([]float64, 0, offCount[i])
		}
	}

	addOff := func(i, j int, g float64) {
		sys.offIdx[i] = append(sys.offIdx[i], int32(j))
		sys.offVal[i] = append(sys.offVal[i], -g)
	}
	for _, r := range c.resistors {
		g := 1 / r.Ohms
		ia, aUnknown := sys.idx[r.A]
		ib, bUnknown := sys.idx[r.B]
		if aUnknown {
			sys.diag[ia] += g
			if bUnknown {
				addOff(ia, ib, g)
			} else {
				sys.rhs[ia] += g * known[r.B]
			}
		}
		if bUnknown {
			sys.diag[ib] += g
			if aUnknown {
				addOff(ib, ia, g)
			} else {
				sys.rhs[ib] += g * known[r.A]
			}
		}
	}
	for _, is := range c.isources {
		if i, ok := sys.idx[is.To]; ok {
			sys.rhs[i] += is.Amps
		}
		if i, ok := sys.idx[is.From]; ok {
			sys.rhs[i] -= is.Amps
		}
	}
	for i := range sys.diag {
		if sys.diag[i] <= 0 {
			return nil, fmt.Errorf("spice: node %q has no resistive connection (zero conductance)", sys.order[i])
		}
	}
	return sys, nil
}

// matVec computes y = A*x for the assembled sparse system.
func (s *assembled) matVec(x, y []float64) {
	for i := range y {
		v := s.diag[i] * x[i]
		idxs, vals := s.offIdx[i], s.offVal[i]
		for k, j := range idxs {
			v += vals[k] * x[j]
		}
		y[i] = v
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// solveCG solves the system with Jacobi-preconditioned conjugate gradients.
func solveCG(s *assembled, tol float64, maxIter int) (x []float64, iters int, residual float64, err error) {
	n := len(s.rhs)
	x = make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	copy(r, s.rhs)
	bnorm := norm(s.rhs)
	if bnorm == 0 {
		return x, 0, 0, nil
	}
	for i := range z {
		z[i] = r[i] / s.diag[i]
	}
	copy(p, z)
	rz := dot(r, z)
	for iters = 0; iters < maxIter; iters++ {
		residual = norm(r) / bnorm
		if residual <= tol {
			return x, iters, residual, nil
		}
		s.matVec(p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, iters, residual, fmt.Errorf("spice: CG breakdown (non-positive curvature); system not positive definite")
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		for i := range z {
			z[i] = r[i] / s.diag[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	residual = norm(r) / bnorm
	if residual > tol {
		return nil, iters, residual, fmt.Errorf("spice: CG did not converge in %d iterations (residual %g)", maxIter, residual)
	}
	return x, iters, residual, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// solveGaussSeidel solves the system with Gauss-Seidel relaxation.
func solveGaussSeidel(s *assembled, tol float64, maxIter int) (x []float64, iters int, residual float64, err error) {
	n := len(s.rhs)
	x = make([]float64, n)
	r := make([]float64, n)
	bnorm := norm(s.rhs)
	if bnorm == 0 {
		return x, 0, 0, nil
	}
	for iters = 0; iters < maxIter; iters++ {
		for i := 0; i < n; i++ {
			sum := s.rhs[i]
			idxs, vals := s.offIdx[i], s.offVal[i]
			for k, j := range idxs {
				sum -= vals[k] * x[j]
			}
			x[i] = sum / s.diag[i]
		}
		// Residual check every few sweeps to keep the cost dominated by the
		// relaxation itself.
		if iters%8 == 0 || iters == maxIter-1 {
			s.matVec(x, r)
			for i := range r {
				r[i] = s.rhs[i] - r[i]
			}
			residual = norm(r) / bnorm
			if residual <= tol {
				return x, iters + 1, residual, nil
			}
		}
	}
	return nil, iters, residual, fmt.Errorf("spice: Gauss-Seidel did not converge in %d iterations (residual %g)", maxIter, residual)
}

// solveDenseCholesky solves the system by dense Cholesky factorization.
func solveDenseCholesky(s *assembled) ([]float64, error) {
	n := len(s.rhs)
	if n > 6000 {
		return nil, fmt.Errorf("spice: dense solver refuses %d unknowns; use MethodCG", n)
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = s.diag[i]
		idxs, vals := s.offIdx[i], s.offVal[i]
		for k, j := range idxs {
			a[i][j] += vals[k]
		}
	}
	// Cholesky: A = L * L^T.
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("spice: matrix not positive definite at row %d", i)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward substitution L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := s.rhs[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * y[k]
		}
		y[i] = sum / l[i][i]
	}
	// Back substitution L^T*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x, nil
}
