// Package spice implements a small resistive-network circuit solver: the
// role SPICE plays in the paper's thermal flow. The thermal model of the
// paper (after the steady-state simplification that removes all capacitors)
// is a netlist of resistors, current sources and voltage sources; package
// thermal builds such a netlist and this package solves it for the node
// voltages, which are the node temperatures of the thermal network.
//
// Supported elements:
//   - resistors between any two nodes,
//   - independent current sources injecting current into a node,
//   - independent voltage sources from a node to ground (node "0"), which is
//     all the thermal model needs for ambient-temperature boundaries.
//
// Node voltages are found by assembling the nodal-analysis system G*v = i
// over the unknown nodes (voltage-source nodes and ground have known
// voltages and are folded into the right-hand side) and solving it with one
// of three methods: preconditioned conjugate gradients (the default, ideal
// for the large sparse symmetric systems the thermal grid produces),
// Gauss-Seidel relaxation, or dense Cholesky for small systems and
// cross-checking.
package spice

import (
	"fmt"
	"sort"
)

// Ground is the reference node name; its voltage is always zero.
const Ground = "0"

// Resistor is a two-terminal resistance in ohms.
type Resistor struct {
	Name string
	A, B string
	Ohms float64
}

// CurrentSource injects Amps into node To and removes it from node From
// (conventional current flow From -> To through the source).
type CurrentSource struct {
	Name     string
	From, To string
	Amps     float64
}

// VoltageSource fixes the voltage of Node (relative to ground) to Volts.
type VoltageSource struct {
	Name  string
	Node  string
	Volts float64
}

// Circuit is a resistive network under construction.
type Circuit struct {
	resistors []Resistor
	isources  []CurrentSource
	vsources  []VoltageSource
	nodes     map[string]bool
	names     map[string]bool
}

// NewCircuit returns an empty circuit containing only the ground node.
func NewCircuit() *Circuit {
	return &Circuit{
		nodes: map[string]bool{Ground: true},
		names: make(map[string]bool),
	}
}

func (c *Circuit) registerName(name string) error {
	if name == "" {
		return fmt.Errorf("spice: element with empty name")
	}
	if c.names[name] {
		return fmt.Errorf("spice: duplicate element name %q", name)
	}
	c.names[name] = true
	return nil
}

// AddResistor adds a resistor between nodes a and b.
func (c *Circuit) AddResistor(name, a, b string, ohms float64) error {
	if err := c.registerName(name); err != nil {
		return err
	}
	if ohms <= 0 {
		return fmt.Errorf("spice: resistor %q must have positive resistance, got %g", name, ohms)
	}
	if a == b {
		return fmt.Errorf("spice: resistor %q connects node %q to itself", name, a)
	}
	c.nodes[a], c.nodes[b] = true, true
	c.resistors = append(c.resistors, Resistor{Name: name, A: a, B: b, Ohms: ohms})
	return nil
}

// AddCurrentSource adds a current source driving amps from node from into
// node to.
func (c *Circuit) AddCurrentSource(name, from, to string, amps float64) error {
	if err := c.registerName(name); err != nil {
		return err
	}
	c.nodes[from], c.nodes[to] = true, true
	c.isources = append(c.isources, CurrentSource{Name: name, From: from, To: to, Amps: amps})
	return nil
}

// AddVoltageSource fixes the voltage of node (to ground) at volts.
func (c *Circuit) AddVoltageSource(name, node string, volts float64) error {
	if err := c.registerName(name); err != nil {
		return err
	}
	if node == Ground {
		return fmt.Errorf("spice: voltage source %q cannot drive the ground node", name)
	}
	c.nodes[node] = true
	c.vsources = append(c.vsources, VoltageSource{Name: name, Node: node, Volts: volts})
	return nil
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// NumElements returns the number of circuit elements.
func (c *Circuit) NumElements() int {
	return len(c.resistors) + len(c.isources) + len(c.vsources)
}

// Nodes returns all node names in sorted order.
func (c *Circuit) Nodes() []string {
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resistors returns a copy of the resistor list.
func (c *Circuit) Resistors() []Resistor { return append([]Resistor(nil), c.resistors...) }

// CurrentSources returns a copy of the current-source list.
func (c *Circuit) CurrentSources() []CurrentSource {
	return append([]CurrentSource(nil), c.isources...)
}

// VoltageSources returns a copy of the voltage-source list.
func (c *Circuit) VoltageSources() []VoltageSource {
	return append([]VoltageSource(nil), c.vsources...)
}
