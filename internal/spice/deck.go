package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file provides a minimal SPICE-deck reader and writer so that the
// thermal networks built by package thermal can be dumped to disk, inspected
// and re-solved — mirroring the paper's flow where the thermal simulator
// emits a SPICE netlist of resistors, current sources and voltage sources.
//
// Supported card formats (one element per line, '*' starts a comment):
//
//	R<name> <nodeA> <nodeB> <ohms>
//	I<name> <nodeFrom> <nodeTo> <amps>
//	V<name> <node> 0 <volts>
//	.end
//

// WriteDeck writes the circuit as a SPICE-like deck.
func WriteDeck(w io.Writer, c *Circuit, title string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* %s\n", title)
	for _, r := range c.resistors {
		fmt.Fprintf(bw, "R%s %s %s %g\n", r.Name, r.A, r.B, r.Ohms)
	}
	for _, i := range c.isources {
		fmt.Fprintf(bw, "I%s %s %s %g\n", i.Name, i.From, i.To, i.Amps)
	}
	for _, v := range c.vsources {
		fmt.Fprintf(bw, "V%s %s 0 %g\n", v.Name, v.Node, v.Volts)
	}
	fmt.Fprintf(bw, ".end\n")
	return bw.Flush()
}

// ParseDeck reads a SPICE-like deck written by WriteDeck (or by hand in the
// same subset) and reconstructs the circuit.
func ParseDeck(r io.Reader) (*Circuit, error) {
	c := NewCircuit()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if strings.EqualFold(line, ".end") {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("spice: line %d: expected 4 fields, got %d: %q", lineNo, len(fields), line)
		}
		card := fields[0]
		if len(card) < 2 {
			return nil, fmt.Errorf("spice: line %d: malformed element name %q", lineNo, card)
		}
		value, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("spice: line %d: bad value %q: %w", lineNo, fields[3], err)
		}
		name := card[1:]
		switch card[0] {
		case 'R', 'r':
			err = c.AddResistor(name, fields[1], fields[2], value)
		case 'I', 'i':
			err = c.AddCurrentSource(name, fields[1], fields[2], value)
		case 'V', 'v':
			if fields[2] != Ground {
				return nil, fmt.Errorf("spice: line %d: voltage sources must reference ground, got %q", lineNo, fields[2])
			}
			err = c.AddVoltageSource(name, fields[1], value)
		default:
			return nil, fmt.Errorf("spice: line %d: unsupported element card %q", lineNo, card)
		}
		if err != nil {
			return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading deck: %w", err)
	}
	return c, nil
}
