// Package serve is the analysis-as-a-service layer: a long-running HTTP/JSON
// query server that loads designs once, keeps their flow.Flow instances
// resident (cached baselines, solver pools, activity) and answers concurrent
// what-if queries — analyze at a utilization, apply an ERI or HW transform,
// run a small efficiency sweep — with robustness as the headline feature:
//
//   - Per-design admission control: a bounded number of in-flight queries
//     plus a bounded queue. A query that cannot even be queued is shed with
//     503 + Retry-After, and a queued query whose deadline expires before a
//     slot frees is shed without ever starting.
//   - Per-request deadlines propagated as contexts into flow.AnalyzeWithCtx
//     and core.SweepEfficiencyCtx, so an abandoned or timed-out request
//     cancels its CG iterations within milliseconds instead of wasting a
//     solver on an answer nobody will read.
//   - A circuit breaker around the multigrid preconditioner per design:
//     after N ErrNotConverged/ErrSetup trips the design is pinned to a
//     Jacobi-preconditioned fallback flow for a cooldown window, then a
//     half-open probe decides whether the primary recovered. Degraded
//     responses are flagged, never silent.
//   - An LRU of solved analyses keyed by query lineage under a configurable
//     memory budget. Eviction only ever forces the warm-start fallback (the
//     query recomputes from the resident baseline, bit-identical); it can
//     never produce a wrong answer.
//   - Graceful drain: BeginDrain stops admissions (readyz flips to 503),
//     in-flight queries get up to a drain timeout to finish, stragglers are
//     then canceled through their contexts.
//
// Every error response carries the fault-taxonomy category of its cause, and
// every admission/degradation decision is counted in the per-design
// fault.Stats exposed on /statz.
//
// The query execution itself (Exec) is a pure function of the resident flow
// and the query, which is what the chaos harness exploits: any completed
// response must be bit-identical to a direct flow.AnalyzeWithCtx call for
// the same query on an equivalently configured flow.
package serve

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thermplace/internal/bench"
	"thermplace/internal/fault"
	"thermplace/internal/flow"
	"thermplace/internal/netlist"
	"thermplace/internal/thermal"
)

// Config tunes the service layer. Every knob has a usable default; see
// DefaultConfig.
type Config struct {
	// MaxInFlight bounds the queries of one design that execute
	// concurrently. Zero means 4.
	MaxInFlight int
	// MaxQueue bounds the queries of one design waiting for an in-flight
	// slot; a query arriving beyond it is shed immediately. Zero means 16.
	MaxQueue int
	// DefaultDeadline is the per-request deadline applied when the client
	// does not send one (deadline_ms query parameter). Zero means 30s;
	// negative means no default deadline.
	DefaultDeadline time.Duration
	// RetryAfter is the Retry-After hint attached to shed (503) responses.
	// Zero means 1s.
	RetryAfter time.Duration
	// BreakerTrips is the number of consecutive solver-fault query failures
	// (ErrNotConverged / ErrSetup) that opens a design's multigrid circuit
	// breaker. Zero means 3.
	BreakerTrips int
	// BreakerCooldown is how long an open breaker pins the design to the
	// Jacobi fallback before a half-open probe retries the primary. Zero
	// means 5s.
	BreakerCooldown time.Duration
	// CacheBytes is the per-design memory budget of the solved-analysis
	// LRU. Zero means 64 MiB; negative disables caching.
	CacheBytes int64
}

// DefaultConfig returns the production defaults documented on Config.
func DefaultConfig() Config {
	return Config{
		MaxInFlight:     4,
		MaxQueue:        16,
		DefaultDeadline: 30 * time.Second,
		RetryAfter:      time.Second,
		BreakerTrips:    3,
		BreakerCooldown: 5 * time.Second,
		CacheBytes:      64 << 20,
	}
}

func (c Config) normalized() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerTrips == 0 {
		c.BreakerTrips = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	return c
}

// design is one resident design: its primary flow, the lazily built Jacobi
// fallback behind the circuit breaker, and the per-design robustness state.
type design struct {
	name string
	wl   bench.Workload
	net  *netlist.Design
	fcfg flow.Config

	primary *flow.Flow
	adm     *admission
	brk     *breaker
	cache   *resultCache
	stats   *fault.Stats

	// Baseline co-analysis scalars, captured once at AddDesign warm-up and
	// reported on /statz. All zero when co-analysis is off for the design.
	baseCritPathPs   float64
	baseWorstSlackPs float64
	baseHPWL         float64
	baseOverflows    int

	// Adaptive-sweep triage counters, accumulated across freshly computed
	// (non-cached) adaptive sweep queries and reported on /statz.
	adaptiveSweeps     atomic.Int64
	adaptiveCandidates atomic.Int64
	adaptiveTriaged    atomic.Int64
	adaptiveExact      atomic.Int64

	// fallbackOnce builds the Jacobi fallback flow on the breaker's first
	// open; flow.New is infallible (solvers are built on first solve), so
	// a plain Once suffices.
	fallbackOnce sync.Once
	fallback     *flow.Flow
}

func (d *design) jacobiFallback() *flow.Flow {
	d.fallbackOnce.Do(func() {
		cfg := d.fcfg
		cfg.Thermal.Precond = thermal.PrecondJacobi
		// The fallback reports into the same per-design Stats but carries no
		// injector: the degraded path must stay clean, or an injected fault
		// storm could never be survived.
		cfg.Thermal.Inject = nil
		cfg.Thermal.Stats = d.stats
		d.fallback = flow.New(d.net, d.wl, cfg)
	})
	return d.fallback
}

// Server is the query server. Designs are registered with AddDesign before
// serving; Handler returns the http.Handler wiring every endpoint.
type Server struct {
	cfg Config

	mu      sync.Mutex
	designs map[string]*design
	order   []string // registration order, for deterministic /statz output

	// base is canceled by hard drain (and Close); every request context is
	// linked to it so stragglers unwind when the drain timeout expires.
	base       context.Context
	cancelBase context.CancelFunc

	track tracker

	// now is the clock, swappable in tests (the breaker shares it).
	now func() time.Time
}

// NewServer creates an empty server with the given configuration.
func NewServer(cfg Config) *Server {
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg.normalized(),
		designs:    map[string]*design{},
		base:       base,
		cancelBase: cancel,
		now:        time.Now,
	}
}

// AddDesign registers a design under the given name and warms it up: the
// baseline placement and analysis are computed once, so every query that
// follows reuses the resident baseline (and its recorded warm-start field,
// which is what makes query results pure functions of their lineage). The
// injector, when non-nil, is wired into the primary flow's thermal config —
// note the warm-up itself consumes analysis ordinal 1 and solve ordinal 1,
// so probes armed afterwards count from ordinal 2.
func (s *Server) AddDesign(ctx context.Context, name string, net *netlist.Design, wl bench.Workload, fcfg flow.Config, inject *fault.Injector) error {
	stats := &fault.Stats{}
	fcfg.Thermal.Stats = stats
	fcfg.Thermal.Inject = inject
	d := &design{
		name:    name,
		wl:      wl,
		net:     net,
		fcfg:    fcfg,
		primary: flow.New(net, wl, fcfg),
		adm:     newAdmission(s.cfg.MaxInFlight, s.cfg.MaxQueue),
		brk:     newBreaker(s.cfg.BreakerTrips, s.cfg.BreakerCooldown, s.clock),
		cache:   newResultCache(s.cfg.CacheBytes, stats),
		stats:   stats,
	}
	baseline, err := d.primary.AnalyzeBaselineCtx(ctx)
	if err != nil {
		d.primary.Close()
		return err
	}
	d.baseHPWL = baseline.HPWL
	if baseline.Timing != nil {
		d.baseCritPathPs = baseline.Timing.CriticalPathPs
		d.baseWorstSlackPs = baseline.Timing.SlackPs
	}
	if baseline.Congestion != nil {
		d.baseOverflows = baseline.Congestion.Overflows
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.designs[name]; dup {
		d.primary.Close()
		return &httpStatusError{status: http.StatusConflict, category: "duplicate-design", msg: "design " + name + " already registered"}
	}
	s.designs[name] = d
	s.order = append(s.order, name)
	return nil
}

func (s *Server) clock() time.Time { return s.now() }

// Designs returns the registered design names, in registration order.
func (s *Server) Designs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

func (s *Server) design(name string) *design {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.designs[name]
}

// Draining reports whether admissions have stopped.
func (s *Server) Draining() bool { return s.track.isDraining() }

// BeginDrain stops admissions: every query arriving afterwards is shed with
// 503 and /readyz flips to 503. In-flight queries keep running. Idempotent.
func (s *Server) BeginDrain() { s.track.beginDrain() }

// Drain performs the full graceful shutdown: admissions stop, in-flight
// queries get up to timeout to finish, stragglers are then canceled through
// their contexts (every request context is linked to the server's base
// context) and awaited. It returns the number of queries that had to be
// canceled.
func (s *Server) Drain(timeout time.Duration) int {
	s.BeginDrain()
	idle := s.track.awaitIdle()
	select {
	case <-idle:
		return 0
	case <-time.After(timeout):
	}
	stragglers := s.track.inflight()
	s.cancelBase()
	<-idle
	return stragglers
}

// Close releases every resident flow's solver pools and cancels the base
// context. Call after Drain; queries issued after Close fail.
func (s *Server) Close() {
	s.cancelBase()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range s.order {
		d := s.designs[name]
		d.primary.Close()
		if d.fallback != nil {
			d.fallback.Close()
		}
	}
}

// tracker counts in-flight requests and gates admissions during drain. It
// replaces a sync.WaitGroup because Add-after-Wait is undefined there, while
// a drain must atomically flip "no new entries" and then wait.
type tracker struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{}
}

// enter registers a request; false once draining (the request must be shed).
func (t *tracker) enter() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return false
	}
	t.n++
	return true
}

func (t *tracker) exit() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n--
	if t.draining && t.n == 0 && t.idle != nil {
		close(t.idle)
		t.idle = nil
	}
}

func (t *tracker) isDraining() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

func (t *tracker) inflight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func (t *tracker) beginDrain() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return
	}
	t.draining = true
	t.idle = make(chan struct{})
	if t.n == 0 {
		close(t.idle)
		t.idle = nil
	}
}

// awaitIdle returns a channel closed when the in-flight count reaches zero
// under drain (immediately when it already has).
func (t *tracker) awaitIdle() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.idle == nil {
		done := make(chan struct{})
		close(done)
		return done
	}
	return t.idle
}

// InFlightRequests returns the number of requests currently tracked, from
// admission through response. A zero return is a quiescent point: the
// mutex-protected tracker gives the caller a happens-before edge over
// everything those requests did — which is what lets the chaos harness
// re-arm injector probe fields between phases without racing a straggling
// handler.
func (s *Server) InFlightRequests() int { return s.track.inflight() }

// StatsFor returns the fault/service counter snapshot of one design (zero
// snapshot for an unknown name).
func (s *Server) StatsFor(name string) fault.StatsSnapshot {
	if d := s.design(name); d != nil {
		return d.stats.Snapshot()
	}
	return fault.StatsSnapshot{}
}

// CacheBytesFor returns the current solved-analysis cache footprint of one
// design in bytes.
func (s *Server) CacheBytesFor(name string) int64 {
	if d := s.design(name); d != nil {
		return d.cache.footprint()
	}
	return 0
}

// sortedOverheads returns a copy of vs in ascending order (sweep canonical
// form, so equivalent queries share a cache key).
func sortedOverheads(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	return out
}
