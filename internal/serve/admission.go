package serve

import (
	"context"
	"sync/atomic"
)

// admission is the per-design two-stage admission controller: a channel
// semaphore bounds the queries executing concurrently, and an atomic counter
// bounds the queries waiting for a slot. A query that cannot even queue is
// shed immediately (ShedQueueFull); a queued query whose context expires
// before a slot frees is shed without ever starting (ShedDeadline).
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(inflight, queue int) *admission {
	return &admission{
		slots:    make(chan struct{}, inflight),
		maxQueue: int64(queue),
	}
}

// acquire blocks until an in-flight slot is available, the context fires, or
// the queue bound rejects the query outright. On success it returns the
// release function for the slot; on failure the returned error is a
// *shedError and no slot is held. draining is re-checked after a queued wait
// so a query admitted to the queue before a drain began still never starts
// after it.
func (a *admission) acquire(ctx context.Context, draining func() bool) (func(), error) {
	// A query arriving with an already-expired deadline is shed outright —
	// it must never start, even when a slot is free.
	if cerr := ctx.Err(); cerr != nil {
		return nil, &shedError{reason: ShedDeadline, cause: cerr}
	}
	release := func() { <-a.slots }
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, &shedError{reason: ShedQueueFull}
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		// A slot and an expired deadline can race; a query whose deadline
		// already passed must be shed, never started.
		if cerr := ctx.Err(); cerr != nil {
			release()
			return nil, &shedError{reason: ShedDeadline, cause: cerr}
		}
		if draining != nil && draining() {
			release()
			return nil, &shedError{reason: ShedDraining}
		}
		return release, nil
	case <-ctx.Done():
		return nil, &shedError{reason: ShedDeadline, cause: ctx.Err()}
	}
}

// inQueue returns the current number of queued queries (observability only).
func (a *admission) inQueue() int64 { return a.queued.Load() }

// inFlight returns the current number of executing queries.
func (a *admission) inFlight() int { return len(a.slots) }
